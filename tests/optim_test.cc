// Tests for optimizers, gradient clipping and LR schedules — including
// convergence property tests on small least-squares problems.
#include "optim/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace missl {
namespace {

using optim::Adam;
using optim::AdamW;
using optim::ClipGradNorm;
using optim::SGD;
using optim::StepDecaySchedule;
using optim::WarmupInvSqrtSchedule;

// Loss for fitting w to target t: ||w - t||^2.
Tensor QuadLoss(const Tensor& w, const Tensor& t) { return Sum(Square(Sub(w, t))); }

TEST(SgdTest, SingleStepMatchesManual) {
  Tensor w = Tensor::FromData({1.0f, 2.0f}, {2}, true);
  Tensor t = Tensor::Zeros({2});
  SGD opt({w}, /*lr=*/0.1f);
  QuadLoss(w, t).Backward();  // grad = 2w = [2, 4]
  opt.Step();
  testing::ExpectTensorNear(w, {1.0f - 0.2f, 2.0f - 0.4f});
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor w = Tensor::FromData({5.0f, -3.0f}, {2}, true);
  Tensor t = Tensor::FromData({1.0f, 1.0f}, {2});
  SGD opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    QuadLoss(w, t).Backward();
    opt.Step();
  }
  testing::ExpectTensorNear(w, {1.0f, 1.0f}, 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Tensor w1 = Tensor::FromData({5.0f}, {1}, true);
  Tensor w2 = Tensor::FromData({5.0f}, {1}, true);
  Tensor t = Tensor::Zeros({1});
  SGD plain({w1}, 0.01f);
  SGD heavy({w2}, 0.01f, /*momentum=*/0.9f);
  for (int i = 0; i < 20; ++i) {
    plain.ZeroGrad();
    QuadLoss(w1, t).Backward();
    plain.Step();
    heavy.ZeroGrad();
    QuadLoss(w2, t).Backward();
    heavy.Step();
  }
  EXPECT_LT(std::fabs(w2.item()), std::fabs(w1.item()));
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Tensor w = Tensor::FromData({1.0f}, {1}, true);
  SGD opt({w}, 0.1f, 0.0f, /*weight_decay=*/1.0f);
  // Zero-gradient step: only decay applies.
  w.impl()->EnsureGrad();
  opt.Step();
  EXPECT_NEAR(w.item(), 0.9f, 1e-6f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor w = Tensor::FromData({4.0f, -4.0f, 2.0f}, {3}, true);
  Tensor t = Tensor::FromData({1.0f, 2.0f, 3.0f}, {3});
  Adam opt({w}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    QuadLoss(w, t).Backward();
    opt.Step();
  }
  testing::ExpectTensorNear(w, {1.0f, 2.0f, 3.0f}, 1e-2f);
}

TEST(AdamTest, FirstStepSizeBoundedByLr) {
  // Adam's bias-corrected first step is ~lr regardless of gradient scale.
  Tensor w = Tensor::FromData({0.0f}, {1}, true);
  Adam opt({w}, 0.1f);
  Sum(MulScalar(w, 1000.0f)).Backward();
  opt.Step();
  EXPECT_NEAR(w.item(), -0.1f, 1e-3f);
}

TEST(AdamWTest, DecoupledDecayActsWithoutGradient) {
  Tensor w = Tensor::FromData({2.0f}, {1}, true);
  AdamW opt({w}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.5f);
  w.impl()->EnsureGrad();  // zero grad buffer
  opt.Step();
  // update from zero grad is 0; decay: w -= lr * wd * w = 2 - 0.1*0.5*2
  EXPECT_NEAR(w.item(), 1.9f, 1e-4f);
}

TEST(OptimizerTest, SkipsParamsWithoutGrad) {
  Tensor w1 = Tensor::FromData({1.0f}, {1}, true);
  Tensor w2 = Tensor::FromData({1.0f}, {1}, true);
  SGD opt({w1, w2}, 0.5f);
  Sum(w1).Backward();  // only w1 gets grad
  opt.Step();
  EXPECT_NEAR(w1.item(), 0.5f, 1e-6f);
  EXPECT_EQ(w2.item(), 1.0f);
}

TEST(ClipTest, NormAboveThresholdIsScaled) {
  Tensor w = Tensor::FromData({0.0f, 0.0f}, {2}, true);
  const std::vector<float> g = {3.0f, 4.0f};  // norm 5
  w.impl()->grad.copy_from(g.data(), 2);
  float pre = ClipGradNorm({w}, 1.0f);
  EXPECT_NEAR(pre, 5.0f, 1e-5f);
  EXPECT_NEAR(w.impl()->grad[0], 0.6f, 1e-5f);
  EXPECT_NEAR(w.impl()->grad[1], 0.8f, 1e-5f);
}

TEST(ClipTest, NormBelowThresholdUntouched) {
  Tensor w = Tensor::FromData({0.0f}, {1}, true);
  const float g = 0.5f;
  w.impl()->grad.copy_from(&g, 1);
  ClipGradNorm({w}, 1.0f);
  EXPECT_EQ(w.impl()->grad[0], 0.5f);
}

TEST(ScheduleTest, StepDecay) {
  StepDecaySchedule s(1.0f, 10, 0.5f);
  EXPECT_FLOAT_EQ(s.LrAt(0), 1.0f);
  EXPECT_FLOAT_EQ(s.LrAt(9), 1.0f);
  EXPECT_FLOAT_EQ(s.LrAt(10), 0.5f);
  EXPECT_FLOAT_EQ(s.LrAt(25), 0.25f);
}

TEST(ScheduleTest, WarmupThenDecay) {
  WarmupInvSqrtSchedule s(1.0f, 10);
  EXPECT_LT(s.LrAt(0), s.LrAt(5));
  EXPECT_LT(s.LrAt(5), s.LrAt(9));
  EXPECT_NEAR(s.LrAt(9), 1.0f, 1e-5f);
  EXPECT_GT(s.LrAt(9), s.LrAt(100));
}

TEST(TrainingIntegration, LinearRegressionFitsData) {
  // y = 2x + 1 with Adam on a Linear layer.
  Rng rng(99);
  nn::Linear fc(1, 1, &rng);
  Adam opt(fc.Parameters(), 0.05f);
  std::vector<float> xs, ys;
  for (int i = 0; i < 32; ++i) {
    float x = static_cast<float>(i) / 16.0f - 1.0f;
    xs.push_back(x);
    ys.push_back(2.0f * x + 1.0f);
  }
  Tensor x = Tensor::FromData(xs, {32, 1});
  Tensor y = Tensor::FromData(ys, {32, 1});
  float last_loss = 1e9f;
  for (int epoch = 0; epoch < 400; ++epoch) {
    opt.ZeroGrad();
    Tensor loss = Mean(Square(Sub(fc.Forward(x), y)));
    loss.Backward();
    opt.Step();
    last_loss = loss.item();
  }
  EXPECT_LT(last_loss, 1e-3f);
  EXPECT_NEAR(fc.weight().item(), 2.0f, 0.05f);
  EXPECT_NEAR(fc.bias().item(), 1.0f, 0.05f);
}

// Property sweep: all optimizers decrease a convex loss.
class OptimizerFamily : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerFamily, DecreasesConvexLoss) {
  Tensor w = Tensor::FromData({3.0f, -2.0f}, {2}, true);
  Tensor t = Tensor::Zeros({2});
  std::unique_ptr<optim::Optimizer> opt;
  switch (GetParam()) {
    case 0: opt = std::make_unique<SGD>(std::vector<Tensor>{w}, 0.05f); break;
    case 1:
      opt = std::make_unique<SGD>(std::vector<Tensor>{w}, 0.05f, 0.9f);
      break;
    case 2: opt = std::make_unique<Adam>(std::vector<Tensor>{w}, 0.05f); break;
    default:
      opt = std::make_unique<AdamW>(std::vector<Tensor>{w}, 0.05f);
      break;
  }
  float initial = QuadLoss(w, t).item();
  for (int i = 0; i < 50; ++i) {
    opt->ZeroGrad();
    QuadLoss(w, t).Backward();
    opt->Step();
  }
  EXPECT_LT(QuadLoss(w, t).item(), initial * 0.5f);
}

INSTANTIATE_TEST_SUITE_P(All, OptimizerFamily, ::testing::Range(0, 4));

}  // namespace
}  // namespace missl
