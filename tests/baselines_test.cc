// Behavior-specific tests for individual baselines (beyond the generic zoo
// contract): POP ranking, ItemKNN neighborhoods, STOSA distance scoring,
// EBM gating, NMTR cascading, BERT4Rec masking.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "baselines/bert4rec.h"
#include "baselines/ebm.h"
#include "baselines/nmtr.h"
#include "baselines/pop.h"
#include "baselines/stosa.h"
#include "data/batch.h"
#include "data/synthetic.h"

namespace missl::baselines {
namespace {

data::Dataset MakeDs() {
  data::SyntheticConfig cfg;
  cfg.num_users = 40;
  cfg.num_items = 80;
  cfg.num_clusters = 8;
  cfg.min_events = 15;
  cfg.max_events = 30;
  cfg.seed = 5;
  return data::GenerateSynthetic(cfg);
}

data::Batch MakeBatch(const data::Dataset& ds, int64_t max_len = 12) {
  data::SplitView split(ds);
  data::BatchBuilder builder(ds, max_len);
  std::vector<data::SplitView::TrainExample> ex(
      split.train_examples.begin(), split.train_examples.begin() + 6);
  return builder.Build(ex);
}

TEST(PopTest, RanksPopularAboveRare) {
  // Hand-built dataset where item 1 is hot and item 7 is cold.
  data::Dataset ds(4, 10, 2, "pop");
  int64_t t = 0;
  for (int32_t u = 0; u < 4; ++u) {
    ds.Add({u, 1, data::Behavior::kClick, t++});
    ds.Add({u, 1, data::Behavior::kCart, t++});
    ds.Add({u, 2, data::Behavior::kClick, t++});
  }
  ds.Add({0, 7, data::Behavior::kClick, t++});
  ds.Finalize();
  Pop pop(ds);
  data::Batch batch;
  batch.batch_size = 1;
  batch.max_len = 4;
  batch.num_behaviors = 2;
  batch.merged_items = {1, 2, 1, 2};
  batch.merged_behaviors = {0, 0, 1, 0};
  Tensor s = pop.ScoreCandidates(batch, {1, 7, 2}, 3);
  EXPECT_GT(s.at({0, 0}), s.at({0, 1}));  // 1 beats 7
  EXPECT_GT(s.at({0, 2}), s.at({0, 1}));  // 2 beats 7
}

TEST(PopTest, HasNoParameters) {
  data::Dataset ds = MakeDs();
  Pop pop(ds);
  EXPECT_TRUE(pop.Parameters().empty());
  EXPECT_EQ(pop.NumParams(), 0);
}

TEST(ItemKnnTest, CooccurringItemsScoreHigher) {
  // Users who interact with item 3 also interact with item 4; item 11 never
  // co-occurs with 3.
  data::Dataset ds(6, 12, 2, "knn");
  int64_t t = 0;
  for (int32_t u = 0; u < 5; ++u) {
    ds.Add({u, 3, data::Behavior::kClick, t++});
    ds.Add({u, 4, data::Behavior::kClick, t++});
    ds.Add({u, static_cast<int32_t>(5 + u), data::Behavior::kCart, t++});
  }
  ds.Add({5, 9, data::Behavior::kClick, t++});
  ds.Add({5, 10, data::Behavior::kCart, t++});
  ds.Finalize();
  ItemKnn knn(ds);
  data::Batch batch;
  batch.batch_size = 1;
  batch.max_len = 2;
  batch.num_behaviors = 2;
  batch.merged_items = {-1, 3};  // history = item 3
  batch.merged_behaviors = {-1, 0};
  Tensor s = knn.ScoreCandidates(batch, {4, 11}, 2);
  EXPECT_GT(s.at({0, 0}), s.at({0, 1}));
  EXPECT_EQ(s.at({0, 1}), 0.0f);  // no co-occurrence at all
}

TEST(ItemKnnTest, SymmetricSimilarity) {
  data::Dataset ds(3, 6, 2, "sym");
  int64_t t = 0;
  for (int32_t u = 0; u < 3; ++u) {
    ds.Add({u, 0, data::Behavior::kClick, t++});
    ds.Add({u, 1, data::Behavior::kClick, t++});
  }
  ds.Finalize();
  ItemKnn knn(ds);
  data::Batch b0;
  b0.batch_size = 1;
  b0.max_len = 1;
  b0.num_behaviors = 2;
  b0.merged_items = {0};
  b0.merged_behaviors = {0};
  data::Batch b1 = b0;
  b1.merged_items = {1};
  EXPECT_FLOAT_EQ(knn.ScoreCandidates(b0, {1}, 1).item(),
                  knn.ScoreCandidates(b1, {0}, 1).item());
}

TEST(StosaTest, IdenticalDistributionsScoreHighest) {
  data::Dataset ds = MakeDs();
  StosaConfig cfg;
  cfg.dim = 16;
  cfg.dropout = 0.0f;
  Stosa model(ds.num_items(), 12, cfg);
  model.SetTraining(false);
  NoGradGuard ng;
  data::Batch batch = MakeBatch(ds);
  // Scores are negative squared distances -> all must be <= 0.
  std::vector<int32_t> cands;
  for (int64_t i = 0; i < batch.batch_size * 4; ++i)
    cands.push_back(static_cast<int32_t>(i % ds.num_items()));
  Tensor s = model.ScoreCandidates(batch, cands, 4);
  for (int64_t i = 0; i < s.numel(); ++i) EXPECT_LE(s.data()[i], 1e-4f);
}

TEST(EbmTest, GatesAreProbabilitiesAndZeroOnPadding) {
  data::Dataset ds = MakeDs();
  EbmConfig cfg;
  cfg.dim = 16;
  Ebm model(ds.num_items(), ds.num_behaviors(), 12, cfg);
  model.SetTraining(false);
  NoGradGuard ng;
  data::Batch batch = MakeBatch(ds);
  Tensor g = model.Gates(batch);
  EXPECT_EQ(g.size(0), batch.batch_size);
  EXPECT_EQ(g.size(2), 1);
  for (int64_t row = 0; row < batch.batch_size; ++row) {
    for (int64_t i = 0; i < batch.max_len; ++i) {
      float gv = g.at({row, i, 0});
      EXPECT_GE(gv, 0.0f);
      EXPECT_LE(gv, 1.0f);
      if (batch.merged_items[static_cast<size_t>(row * batch.max_len + i)] < 0) {
        EXPECT_EQ(gv, 0.0f) << "gate on padding";
      }
    }
  }
}

TEST(EbmTest, GateRegularizerIncreasesLoss) {
  data::Dataset ds = MakeDs();
  data::Batch batch = MakeBatch(ds);
  EbmConfig with;
  with.dim = 16;
  with.dropout = 0.0f;
  with.lambda_gate = 1.0f;
  EbmConfig without = with;
  without.lambda_gate = 0.0f;
  Ebm m1(ds.num_items(), ds.num_behaviors(), 12, with);
  Ebm m2(ds.num_items(), ds.num_behaviors(), 12, without);
  // Same seed => same weights => difference is exactly the regularizer.
  EXPECT_GT(m1.Loss(batch).item(), m2.Loss(batch).item());
}

TEST(NmtrTest, CascadeDiffersFromSingleHead) {
  data::Dataset ds = MakeDs();
  NmtrConfig cfg;
  cfg.dim = 16;
  cfg.dropout = 0.0f;
  Nmtr model(ds.num_items(), ds.num_behaviors(), 12, cfg);
  data::Batch batch = MakeBatch(ds);
  // All heads participate in the loss -> all receive gradient.
  model.Loss(batch).Backward();
  int64_t head_params_with_grad = 0;
  for (const auto& [name, p] : model.NamedParameters()) {
    if (name.rfind("head", 0) == 0 && p.has_grad()) ++head_params_with_grad;
  }
  EXPECT_EQ(head_params_with_grad, ds.num_behaviors() * 2);  // W + b each
}

TEST(Bert4RecTest, TrainingLossUsesMaskToken) {
  data::Dataset ds = MakeDs();
  Bert4RecConfig cfg;
  cfg.dim = 16;
  cfg.mask_prob = 1.0f;  // mask everything -> loss must still be finite
  Bert4Rec model(ds.num_items(), 12, cfg);
  data::Batch batch = MakeBatch(ds);
  Tensor loss = model.Loss(batch);
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 0.0f);
}

}  // namespace
}  // namespace missl::baselines
