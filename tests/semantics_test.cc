// Discriminative semantics tests: verify each model family actually uses
// the inputs that define it (behavior tags, multiple channels, hypergraph
// structure) and that behavior-agnostic baselines ignore them.
#include <gtest/gtest.h>

#include "baselines/zoo.h"
#include "data/batch.h"
#include "data/synthetic.h"
#include "hypergraph/incidence.h"

namespace missl {
namespace {

struct Ctx {
  data::Dataset ds;
  data::Batch batch;

  Ctx() : ds(MakeDs()), batch(MakeBatch(ds)) {}

  static data::Dataset MakeDs() {
    data::SyntheticConfig cfg;
    cfg.num_users = 30;
    cfg.num_items = 60;
    cfg.min_events = 12;
    cfg.max_events = 24;
    cfg.seed = 44;
    return data::GenerateSynthetic(cfg);
  }
  static data::Batch MakeBatch(const data::Dataset& ds) {
    data::SplitView split(ds);
    data::BatchBuilder builder(ds, 10);
    std::vector<data::SplitView::TrainExample> ex(
        split.train_examples.begin(), split.train_examples.begin() + 5);
    return builder.Build(ex);
  }

  baselines::ZooConfig Zoo() const {
    baselines::ZooConfig zc;
    zc.dim = 12;
    zc.max_len = 10;
    zc.num_interests = 2;
    return zc;
  }

  // Scores under the original and behavior-permuted batch.
  std::pair<Tensor, Tensor> ScoresWithPermutedBehaviors(
      const std::string& name) {
    auto model = baselines::CreateModel(name, ds, Zoo());
    model->SetTraining(false);
    NoGradGuard ng;
    std::vector<int32_t> cands;
    for (int64_t i = 0; i < batch.batch_size * 4; ++i)
      cands.push_back(static_cast<int32_t>(i % ds.num_items()));
    Tensor s1 = model->ScoreCandidates(batch, cands, 4);
    data::Batch permuted = batch;
    for (auto& b : permuted.merged_behaviors) {
      if (b >= 0) b = (b + 1) % ds.num_behaviors();
    }
    Tensor s2 = model->ScoreCandidates(permuted, cands, 4);
    return {s1, s2};
  }
};

TEST(SemanticsTest, BehaviorAgnosticModelsIgnoreBehaviorTags) {
  Ctx ctx;
  for (const char* name : {"GRU4Rec", "SASRec", "ComiRec", "STOSA"}) {
    auto [s1, s2] = ctx.ScoresWithPermutedBehaviors(name);
    for (int64_t i = 0; i < s1.numel(); ++i) {
      ASSERT_EQ(s1.data()[i], s2.data()[i])
          << name << " reacted to behavior tags";
    }
  }
}

TEST(SemanticsTest, MultiBehaviorModelsUseBehaviorTags) {
  Ctx ctx;
  for (const char* name : {"MB-GRU", "MB-STR", "MBHT", "EBM", "NMTR", "MISSL"}) {
    auto [s1, s2] = ctx.ScoresWithPermutedBehaviors(name);
    bool differs = false;
    for (int64_t i = 0; i < s1.numel(); ++i) {
      differs |= s1.data()[i] != s2.data()[i];
    }
    EXPECT_TRUE(differs) << name << " ignored behavior tags";
  }
}

TEST(SemanticsTest, SequenceOrderMattersToSequentialModels) {
  Ctx ctx;
  for (const char* name : {"GRU4Rec", "SASRec", "MISSL"}) {
    auto model = baselines::CreateModel(name, ctx.ds, ctx.Zoo());
    model->SetTraining(false);
    NoGradGuard ng;
    std::vector<int32_t> cands;
    for (int64_t i = 0; i < ctx.batch.batch_size * 4; ++i)
      cands.push_back(static_cast<int32_t>(i % ctx.ds.num_items()));
    Tensor s1 = model->ScoreCandidates(ctx.batch, cands, 4);
    // Reverse the valid suffix of every row (keeps the pad prefix).
    data::Batch reversed = ctx.batch;
    int64_t t = reversed.max_len;
    for (int64_t row = 0; row < reversed.batch_size; ++row) {
      int64_t first = 0;
      while (first < t &&
             reversed.merged_items[static_cast<size_t>(row * t + first)] < 0) {
        ++first;
      }
      for (int64_t i = first, j = t - 1; i < j; ++i, --j) {
        std::swap(reversed.merged_items[static_cast<size_t>(row * t + i)],
                  reversed.merged_items[static_cast<size_t>(row * t + j)]);
        std::swap(reversed.merged_behaviors[static_cast<size_t>(row * t + i)],
                  reversed.merged_behaviors[static_cast<size_t>(row * t + j)]);
      }
    }
    Tensor s2 = model->ScoreCandidates(reversed, cands, 4);
    bool differs = false;
    for (int64_t i = 0; i < s1.numel(); ++i) {
      differs |= std::fabs(s1.data()[i] - s2.data()[i]) > 1e-6f;
    }
    EXPECT_TRUE(differs) << name << " is order-invariant";
  }
}

TEST(SemanticsTest, PopIsHistoryInvariant) {
  Ctx ctx;
  auto model = baselines::CreateModel("POP", ctx.ds, ctx.Zoo());
  NoGradGuard ng;
  std::vector<int32_t> cands;
  for (int64_t i = 0; i < ctx.batch.batch_size * 4; ++i)
    cands.push_back(static_cast<int32_t>(i % ctx.ds.num_items()));
  Tensor s1 = model->ScoreCandidates(ctx.batch, cands, 4);
  data::Batch scrambled = ctx.batch;
  for (auto& it : scrambled.merged_items) {
    if (it >= 0) it = (it + 13) % ctx.ds.num_items();
  }
  Tensor s2 = model->ScoreCandidates(scrambled, cands, 4);
  for (int64_t i = 0; i < s1.numel(); ++i) {
    EXPECT_EQ(s1.data()[i], s2.data()[i]);
  }
}

// Incidence property sweep: under the default config every valid position
// belongs to at least one hyperedge and padding to none, across random
// sequences.
class IncidenceCoverage : public ::testing::TestWithParam<int> {};

TEST_P(IncidenceCoverage, ValidCoveredPaddingNot) {
  Rng rng(600 + GetParam());
  int64_t b = 3, t = 12;
  std::vector<int32_t> items(static_cast<size_t>(b * t), -1);
  std::vector<int32_t> behs(static_cast<size_t>(b * t), -1);
  for (int64_t row = 0; row < b; ++row) {
    int64_t n = 1 + static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(t)));
    for (int64_t i = t - n; i < t; ++i) {
      items[static_cast<size_t>(row * t + i)] =
          static_cast<int32_t>(rng.UniformInt(20));
      behs[static_cast<size_t>(row * t + i)] =
          static_cast<int32_t>(rng.UniformInt(4));
    }
  }
  hypergraph::HypergraphConfig cfg;
  Tensor inc = hypergraph::BuildIncidence(items, behs, b, t, 4, cfg);
  for (int64_t row = 0; row < b; ++row) {
    for (int64_t i = 0; i < t; ++i) {
      float cover = 0;
      for (int64_t e = 0; e < inc.size(1); ++e) cover += inc.at({row, e, i});
      if (items[static_cast<size_t>(row * t + i)] >= 0) {
        EXPECT_GE(cover, 1.0f) << "valid position uncovered";
      } else {
        EXPECT_EQ(cover, 0.0f) << "padding covered";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, IncidenceCoverage, ::testing::Range(0, 8));

}  // namespace
}  // namespace missl
