// Shared helpers for the test suite: finite-difference gradient checking and
// tolerant float comparison.
#ifndef MISSL_TESTS_TEST_UTIL_H_
#define MISSL_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace missl::testing {

/// Checks analytic gradients of `fn` (mapping inputs -> scalar loss) against
/// central finite differences for every element of every input tensor.
/// `fn` must be deterministic and must not capture the inputs' grads.
inline void GradCheck(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                      std::vector<Tensor> inputs, float eps = 1e-3f,
                      float rtol = 5e-2f, float atol = 1e-3f) {
  for (auto& in : inputs) in.set_requires_grad(true);
  Tensor loss = fn(inputs);
  ASSERT_EQ(loss.numel(), 1) << "GradCheck loss must be scalar";
  loss.Backward();
  for (size_t t = 0; t < inputs.size(); ++t) {
    Tensor& in = inputs[t];
    ASSERT_TRUE(in.has_grad()) << "input " << t << " got no gradient";
    std::vector<float> analytic = in.impl()->grad.ToVector();
    for (int64_t i = 0; i < in.numel(); ++i) {
      float orig = in.data()[i];
      in.data()[i] = orig + eps;
      float fp;
      {
        NoGradGuard ng;
        fp = fn(inputs).item();
      }
      in.data()[i] = orig - eps;
      float fm;
      {
        NoGradGuard ng;
        fm = fn(inputs).item();
      }
      in.data()[i] = orig;
      float numeric = (fp - fm) / (2.0f * eps);
      float a = analytic[static_cast<size_t>(i)];
      float tol = atol + rtol * std::max(std::fabs(a), std::fabs(numeric));
      EXPECT_NEAR(a, numeric, tol)
          << "input " << t << " element " << i << " analytic=" << a
          << " numeric=" << numeric;
    }
  }
}

/// Element-wise tensor comparison with tolerance.
inline void ExpectTensorNear(const Tensor& a, const std::vector<float>& expect,
                             float tol = 1e-5f) {
  ASSERT_EQ(static_cast<size_t>(a.numel()), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_NEAR(a.data()[i], expect[i], tol) << "element " << i;
  }
}

}  // namespace missl::testing

#endif  // MISSL_TESTS_TEST_UTIL_H_
