// Tests for the observability subsystem (src/obs/): metrics registry
// semantics, zero-cost disabled path, concurrent updates from pool workers,
// Chrome trace export (syntactic validity + span nesting), tensor memory
// accounting, the autograd-graph leak regression, and end-to-end training
// telemetry.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/zoo.h"
#include "data/synthetic.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"
#include "runtime/runtime.h"
#include "tensor/ops.h"
#include "train/trainer.h"
#include "utils/rng.h"

#include "json_test_util.h"

namespace missl {
namespace {

using testutil::JVal;
using testutil::ParseJsonOrFail;

// Metrics are opt-in; every test here runs with them on and restores the
// default (off) afterwards so cross-test state stays predictable.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::SetMetricsEnabled(true); }
  void TearDown() override {
    obs::StopTracing();
    obs::SetMetricsEnabled(false);
  }
};

TEST_F(ObsTest, CounterGaugeSemantics) {
  obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("test.counter");
  c.Reset();
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&c, &obs::MetricsRegistry::Global().GetCounter("test.counter"));

  obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge("test.gauge");
  g.Set(7);
  g.Add(-3);
  EXPECT_EQ(g.value(), 4);
}

TEST_F(ObsTest, HistogramBucketsAndPercentiles) {
  obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram("test.hist");
  h.Reset();
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 6);
  EXPECT_DOUBLE_EQ(h.mean(), 1.5);
  EXPECT_EQ(h.bucket(0), 1);  // the value 0
  EXPECT_EQ(h.bucket(1), 1);  // [1, 1]
  EXPECT_EQ(h.bucket(2), 2);  // [2, 3]
  EXPECT_EQ(h.ApproxPercentile(0.5), 1);
  EXPECT_EQ(h.ApproxPercentile(1.0), 3);
  // Huge values land in the top bucket instead of overflowing.
  h.Observe(int64_t{1} << 62);
  EXPECT_EQ(h.count(), 5);
}

TEST_F(ObsTest, DisabledPathLeavesInstrumentsUntouched) {
  obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("test.disabled");
  obs::Histogram& h =
      obs::MetricsRegistry::Global().GetHistogram("test.disabled.hist");
  c.Reset();
  h.Reset();
  obs::SetMetricsEnabled(false);
  c.Add(5);
  h.Observe(100);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  obs::SetMetricsEnabled(true);
  c.Add(5);
  EXPECT_EQ(c.value(), 5);
}

TEST_F(ObsTest, ConcurrentCounterIncrementsAreExact) {
  runtime::ScopedNumThreads threads(4);
  obs::Counter& c = obs::MetricsRegistry::Global().GetCounter("test.parallel");
  c.Reset();
  constexpr int64_t kN = 20000;
  runtime::ParallelFor(0, kN, 64, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) c.Add(1);
  });
  EXPECT_EQ(c.value(), kN);
}

TEST_F(ObsTest, RegistryExportsParse) {
  obs::MetricsRegistry::Global().GetCounter("test.export").Add(3);
  obs::MetricsRegistry::Global().GetHistogram("test.export.hist").Observe(9);
  JVal root =
      ParseJsonOrFail(obs::MetricsRegistry::Global().ToJson(), "ToJson()");
  ASSERT_EQ(root.type, JVal::kObj);
  EXPECT_NE(root.Get("counters"), nullptr);
  EXPECT_NE(root.Get("gauges"), nullptr);
  EXPECT_NE(root.Get("histograms"), nullptr);
  ASSERT_NE(root.Get("memory"), nullptr);
  EXPECT_NE(root.Get("memory")->Get("live_bytes"), nullptr);
  // Text export mentions the instrument and the memory gauges.
  std::string text = obs::MetricsRegistry::Global().ToText();
  EXPECT_NE(text.find("test.export"), std::string::npos);
  EXPECT_NE(text.find("memory.live_bytes"), std::string::npos);
}

TEST_F(ObsTest, JsonEscapeAndNumber) {
  EXPECT_EQ(obs::JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  JVal v = ParseJsonOrFail("\"" + obs::JsonEscape(std::string("\x01\t ok")) +
                               "\"",
                           "escaped string");
  EXPECT_EQ(v.type, JVal::kStr);
  // Non-finite numbers must not leak into JSON output.
  EXPECT_EQ(obs::JsonNumber(std::numeric_limits<double>::infinity()), "0");
}

TEST_F(ObsTest, MemoryAccountingTracksAllocAndFree) {
  obs::MemoryStats base = obs::CurrentMemoryStats();
  {
    Tensor t = Tensor::Zeros({1000});
    obs::MemoryStats during = obs::CurrentMemoryStats();
    EXPECT_EQ(during.live_tensors, base.live_tensors + 1);
    EXPECT_GE(during.live_bytes, base.live_bytes + 4000);
    // Allocating the grad buffer is accounted too.
    t.impl()->EnsureGrad();
    EXPECT_GE(obs::CurrentMemoryStats().live_bytes, base.live_bytes + 8000);
  }
  obs::MemoryStats after = obs::CurrentMemoryStats();
  EXPECT_EQ(after.live_tensors, base.live_tensors);
  EXPECT_EQ(after.live_bytes, base.live_bytes);
}

TEST_F(ObsTest, PeakBytesHighWaterMark) {
  obs::ResetPeakBytes();
  int64_t floor = obs::CurrentMemoryStats().peak_bytes;
  { Tensor t = Tensor::Zeros({4096}); }
  obs::MemoryStats s = obs::CurrentMemoryStats();
  EXPECT_GE(s.peak_bytes, floor + 4096 * 4);  // tensor is gone, peak remains
  EXPECT_LT(s.live_bytes, s.peak_bytes);
  obs::ResetPeakBytes();
  EXPECT_LT(obs::CurrentMemoryStats().peak_bytes, s.peak_bytes);
}

// Regression test for the autograd self-cycle leak: backward closures used
// to capture the op's output Tensor by value, so every grad-recording
// forward whose result was dropped without Backward() kept its whole graph
// alive forever. The live-autograd-node gauge must return to baseline both
// after Backward() and after simply dropping a recorded forward result.
TEST_F(ObsTest, AutogradGraphReleasedWithAndWithoutBackward) {
  Rng rng(11);
  obs::MemoryStats base = obs::CurrentMemoryStats();
  {
    Tensor a = Tensor::Randn({8, 8}, &rng, 1.0f, /*requires_grad=*/true);
    Tensor b = Tensor::Randn({8, 8}, &rng, 1.0f, /*requires_grad=*/true);
    for (int i = 0; i < 3; ++i) {
      Tensor loss = Sum(Mul(Relu(MatMul(a, b)), a));
      EXPECT_GT(obs::CurrentMemoryStats().live_autograd_nodes,
                base.live_autograd_nodes);
      loss.Backward();
      // Backward() clears the visited graph.
      EXPECT_EQ(obs::CurrentMemoryStats().live_autograd_nodes,
                base.live_autograd_nodes);
    }
    for (int i = 0; i < 3; ++i) {
      // Dropped without Backward(): destruction alone must free the graph.
      Tensor dropped = Sum(Mul(Relu(MatMul(a, b)), a));
    }
    EXPECT_EQ(obs::CurrentMemoryStats().live_autograd_nodes,
              base.live_autograd_nodes);
  }
  obs::MemoryStats after = obs::CurrentMemoryStats();
  EXPECT_EQ(after.live_autograd_nodes, base.live_autograd_nodes);
  EXPECT_EQ(after.live_tensors, base.live_tensors);
  EXPECT_EQ(after.live_bytes, base.live_bytes);
}

TEST_F(ObsTest, OpDispatchCountersCountCalls) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 4}, &rng);
  Tensor b = Tensor::Randn({4, 4}, &rng);
  obs::Counter& calls =
      obs::MetricsRegistry::Global().GetCounter("tensor.op.MatMul.calls");
  obs::Counter& nanos =
      obs::MetricsRegistry::Global().GetCounter("tensor.op.MatMul.nanos");
  int64_t before = calls.value();
  NoGradGuard ng;
  for (int i = 0; i < 3; ++i) MatMul(a, b);
  EXPECT_EQ(calls.value(), before + 3);
  EXPECT_GT(nanos.value(), 0);
  // Named elementwise ops go through the shared templates but still count
  // under their own name.
  int64_t add_before =
      obs::MetricsRegistry::Global().GetCounter("tensor.op.Add.calls").value();
  Add(a, b);
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("tensor.op.Add.calls").value(),
      add_before + 1);
}

// Extracts (tid, start_us, end_us, name) for every trace event.
struct SpanRec {
  double tid;
  double ts;
  double end;
  std::string name;
};

std::vector<SpanRec> ExtractSpans(const JVal& root) {
  std::vector<SpanRec> spans;
  const JVal* events = root.Get("traceEvents");
  if (events == nullptr) return spans;
  for (const JVal& e : events->arr) {
    SpanRec r;
    r.tid = e.Get("tid")->num;
    r.ts = e.Get("ts")->num;
    r.end = r.ts + e.Get("dur")->num;
    r.name = e.Get("name")->str;
    spans.push_back(std::move(r));
  }
  return spans;
}

TEST_F(ObsTest, TraceExportIsValidAndWellNested) {
  runtime::ScopedNumThreads threads(2);
  obs::StartTracing();
  {
    obs::TraceSpan outer("outer", "test", "{\"k\":1}");
    {
      obs::TraceSpan inner("inner", "test");
      Rng rng(5);
      Tensor a = Tensor::Randn({64, 64}, &rng);
      NoGradGuard ng;
      MatMul(a, a);  // fans out -> pool.job + pool.run spans
    }
  }
  obs::StopTracing();
  EXPECT_GT(obs::TraceEventCount(), 0u);

  JVal root = ParseJsonOrFail(obs::TraceToJson(), "trace");
  ASSERT_EQ(root.type, JVal::kObj);
  ASSERT_NE(root.Get("traceEvents"), nullptr);
  std::vector<SpanRec> spans = ExtractSpans(root);
  ASSERT_GE(spans.size(), 3u);

  auto has = [&](const char* name) {
    for (const auto& s : spans) {
      if (s.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("outer"));
  EXPECT_TRUE(has("inner"));
  EXPECT_TRUE(has("MatMul"));
  EXPECT_TRUE(has("pool.job"));

  // Spans on one thread's track must nest: any two either don't overlap or
  // one contains the other. RAII scopes guarantee this by construction; a
  // violation means ts/dur bookkeeping is broken.
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = i + 1; j < spans.size(); ++j) {
      const SpanRec& x = spans[i];
      const SpanRec& y = spans[j];
      if (x.tid != y.tid) continue;
      bool disjoint = x.end <= y.ts || y.end <= x.ts;
      bool x_in_y = y.ts <= x.ts && x.end <= y.end;
      bool y_in_x = x.ts <= y.ts && y.end <= x.end;
      EXPECT_TRUE(disjoint || x_in_y || y_in_x)
          << x.name << " [" << x.ts << ", " << x.end << ") vs " << y.name
          << " [" << y.ts << ", " << y.end << ") on tid " << x.tid;
    }
  }

  // Disabled spans record nothing.
  size_t count = obs::TraceEventCount();
  { obs::TraceSpan ignored("ignored", "test"); }
  EXPECT_EQ(obs::TraceEventCount(), count);
  obs::ClearTrace();
  EXPECT_EQ(obs::TraceEventCount(), 0u);
}

TEST_F(ObsTest, TrainTelemetrySmoke) {
  data::SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 220;
  cfg.min_events = 15;
  cfg.max_events = 25;
  cfg.seed = 33;
  data::Dataset ds = data::GenerateSynthetic(cfg);
  data::SplitView split(ds);
  eval::EvalConfig ec;
  ec.max_len = 15;
  eval::Evaluator evaluator(ds, split, ec);

  baselines::ZooConfig zc;
  zc.dim = 16;
  zc.max_len = 15;
  zc.num_interests = 2;
  auto model = baselines::CreateModel("MISSL", ds, zc);

  const std::string trace_path = "obs_test_trace.json";
  const std::string telemetry_path = "obs_test_telemetry.jsonl";
  train::TrainConfig tc;
  tc.max_epochs = 2;
  tc.max_batches_per_epoch = 4;
  tc.max_len = ec.max_len;
  tc.batch_size = 32;
  tc.num_threads = 2;  // so the trace contains pool-worker tracks
  tc.trace_path = trace_path;
  tc.telemetry_path = telemetry_path;
  train::TrainResult result =
      train::Fit(model.get(), ds, split, evaluator, tc);
  EXPECT_EQ(result.epochs_run, 2);

  // Telemetry: one epoch line per epoch plus a final summary, all valid JSON.
  std::ifstream tf(telemetry_path);
  ASSERT_TRUE(tf.is_open());
  std::string line;
  int64_t epoch_lines = 0, final_lines = 0;
  while (std::getline(tf, line)) {
    if (line.empty()) continue;
    JVal v = ParseJsonOrFail(line, "telemetry line");
    ASSERT_NE(v.Get("event"), nullptr);
    if (v.Get("event")->str == "epoch") {
      ++epoch_lines;
      EXPECT_NE(v.Get("loss"), nullptr);
      EXPECT_NE(v.Get("grad_norm"), nullptr);
      EXPECT_NE(v.Get("examples_per_s"), nullptr);
      EXPECT_NE(v.Get("valid_ndcg10"), nullptr);
      ASSERT_NE(v.Get("peak_bytes"), nullptr);
      EXPECT_GT(v.Get("peak_bytes")->num, 0);
      EXPECT_EQ(v.Get("threads")->num, 2);
    } else {
      EXPECT_EQ(v.Get("event")->str, "final");
      ++final_lines;
      EXPECT_NE(v.Get("test_ndcg10"), nullptr);
    }
  }
  EXPECT_EQ(epoch_lines, result.epochs_run);
  EXPECT_EQ(final_lines, 1);

  // Trace: valid Chrome trace JSON with spans from all three layers —
  // trainer epochs, tensor ops, and the runtime pool.
  std::ifstream trf(trace_path);
  ASSERT_TRUE(trf.is_open());
  std::stringstream buf;
  buf << trf.rdbuf();
  JVal root = ParseJsonOrFail(buf.str(), "training trace");
  std::vector<SpanRec> spans = ExtractSpans(root);
  auto count_named = [&](const char* name) {
    int64_t n = 0;
    for (const auto& s : spans) {
      if (s.name == name) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_named("train.fit"), 1);
  EXPECT_EQ(count_named("train.epoch"), result.epochs_run);
  EXPECT_GT(count_named("train.validate"), 0);
  EXPECT_GT(count_named("eval.evaluate"), 0);
  EXPECT_GT(count_named("Tensor::Backward"), 0);
  EXPECT_GT(count_named("MatMul"), 0);
  EXPECT_GT(count_named("pool.job"), 0);
  EXPECT_GT(count_named("pool.run"), 0);

  std::remove(trace_path.c_str());
  std::remove(telemetry_path.c_str());
}

}  // namespace
}  // namespace missl
