// Tests for the extended evaluation protocols (popularity negatives, full
// ranking), sampled-softmax training, interest-routing modes, and trainer
// disk checkpointing.
#include <cstdio>

#include <gtest/gtest.h>

#include "baselines/zoo.h"
#include "core/missl.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "nn/serialize.h"
#include "train/trainer.h"

namespace missl {
namespace {

data::Dataset SmallDs() {
  data::SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 150;
  cfg.min_events = 15;
  cfg.max_events = 30;
  cfg.seed = 31;
  return data::GenerateSynthetic(cfg);
}

eval::EvalConfig Ec(eval::CandidateMode mode) {
  eval::EvalConfig ec;
  ec.max_len = 12;
  ec.num_negatives = 20;
  ec.mode = mode;
  return ec;
}

// Scores candidates by their id (higher id = higher score) — deterministic
// and protocol-sensitive.
class IdScoreModel : public core::SeqRecModel {
 public:
  std::string Name() const override { return "IdScore"; }
  Tensor Loss(const data::Batch&) override { return Tensor::Scalar(0.0f); }
  Tensor ScoreCandidates(const data::Batch&,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override {
    int64_t b = static_cast<int64_t>(cand_ids.size()) / num_cands;
    Tensor s = Tensor::Zeros({b, num_cands});
    for (size_t i = 0; i < cand_ids.size(); ++i)
      s.data()[i] = static_cast<float>(cand_ids[i]);
    return s;
  }
};

TEST(ProtocolTest, PopularityNegativesAreHarderForPopChasers) {
  data::Dataset ds = SmallDs();
  data::SplitView split(ds);
  eval::Evaluator uni(ds, split, Ec(eval::CandidateMode::kUniformNegatives));
  eval::Evaluator pop(ds, split,
                      Ec(eval::CandidateMode::kPopularityNegatives));
  // A popularity model faces its own distribution as distractors under the
  // popularity protocol, so its metrics must drop.
  auto model = baselines::CreateModel("POP", ds, baselines::ZooConfig{});
  double u = uni.Evaluate(model.get(), true).ndcg10;
  double p = pop.Evaluate(model.get(), true).ndcg10;
  EXPECT_LT(p, u);
}

TEST(ProtocolTest, FullRankingMatchesManualRank) {
  data::Dataset ds = SmallDs();
  data::SplitView split(ds);
  eval::Evaluator full(ds, split, Ec(eval::CandidateMode::kFullRanking));
  IdScoreModel model;
  // With id-based scores the rank of a target is the number of *unseen*
  // items with a larger id. Verify MRR against a manual computation.
  double mrr = 0;
  int64_t count = 0;
  data::NegativeSampler sampler(ds);
  for (int32_t u : full.eval_users()) {
    const auto& events = ds.user(u).events;
    int32_t target =
        events[static_cast<size_t>(split.test_pos[static_cast<size_t>(u)])].item;
    const auto& seen = sampler.SeenItems(u);
    int64_t rank = 0;
    for (int32_t j = target + 1; j < ds.num_items(); ++j) {
      if (!std::binary_search(seen.begin(), seen.end(), j)) ++rank;
    }
    mrr += 1.0 / static_cast<double>(rank + 1);
    ++count;
  }
  mrr /= static_cast<double>(count);
  eval::EvalResult r = full.Evaluate(&model, true);
  EXPECT_NEAR(r.mrr, mrr, 1e-9);
}

TEST(ProtocolTest, FullRankingIsHarderThanSampled) {
  data::Dataset ds = SmallDs();
  data::SplitView split(ds);
  eval::Evaluator uni(ds, split, Ec(eval::CandidateMode::kUniformNegatives));
  eval::Evaluator full(ds, split, Ec(eval::CandidateMode::kFullRanking));
  auto model = baselines::CreateModel("ItemKNN", ds, baselines::ZooConfig{});
  // 20 negatives vs ~150-catalog ranking: sampled metrics are inflated.
  EXPECT_GE(uni.Evaluate(model.get(), true).hr10,
            full.Evaluate(model.get(), true).hr10);
}

TEST(SampledSoftmaxTest, BatchCarriesRequestedNegatives) {
  data::Dataset ds = SmallDs();
  data::SplitView split(ds);
  data::BatchBuilder builder(ds, 12);
  data::NegativeSampler sampler(ds);
  builder.EnableTrainNegatives(&sampler, 7, 99);
  std::vector<data::SplitView::TrainExample> ex(
      split.train_examples.begin(), split.train_examples.begin() + 4);
  data::Batch b = builder.Build(ex);
  EXPECT_EQ(b.num_train_negatives, 7);
  ASSERT_EQ(b.train_negatives.size(), 4u * 7u);
  for (int64_t row = 0; row < 4; ++row) {
    for (int32_t j = 0; j < 7; ++j) {
      EXPECT_NE(b.train_negatives[static_cast<size_t>(row * 7 + j)],
                b.targets[static_cast<size_t>(row)]);
    }
  }
}

TEST(SampledSoftmaxTest, MisslTrainsWithSampledNegatives) {
  data::Dataset ds = SmallDs();
  data::SplitView split(ds);
  eval::Evaluator ev(ds, split, Ec(eval::CandidateMode::kUniformNegatives));
  core::MisslConfig mcfg;
  mcfg.dim = 16;
  mcfg.num_interests = 2;
  core::MisslModel model(ds.num_items(), ds.num_behaviors(), 12, mcfg);
  // Reference: the untrained total loss on a fixed sampled-negative batch.
  data::BatchBuilder builder(ds, 12);
  data::NegativeSampler sampler(ds);
  builder.EnableTrainNegatives(&sampler, 30, 7);
  std::vector<data::SplitView::TrainExample> ex(
      split.train_examples.begin(), split.train_examples.begin() + 32);
  data::Batch probe = builder.Build(ex);
  float before = model.Loss(probe).item();
  model.ZeroGrad();

  train::TrainConfig tc;
  tc.max_epochs = 8;
  tc.max_len = 12;
  tc.batch_size = 64;
  tc.lr = 5e-3f;  // small fixture needs an aggressive rate to move in time
  tc.train_negatives = 30;
  train::TrainResult r = train::Fit(&model, ds, split, ev, tc);
  // Training on the sampled-softmax objective must clearly reduce it.
  // (Ranking metrics are too coarse to assert on for this tiny fixture:
  // the 21-candidate protocol has a chance HR@10 of 10/21.)
  model.SetTraining(false);
  float after = model.Loss(probe).item();
  model.ZeroGrad();
  EXPECT_LT(after, before * 0.85f);
  EXPECT_GT(r.test.num_users, 0);
}

TEST(RoutingTest, MeanRoutingChangesScores) {
  data::Dataset ds = SmallDs();
  data::SplitView split(ds);
  data::BatchBuilder builder(ds, 12);
  std::vector<data::SplitView::TrainExample> ex(
      split.train_examples.begin(), split.train_examples.begin() + 4);
  data::Batch batch = builder.Build(ex);
  core::MisslConfig max_cfg;
  max_cfg.dim = 16;
  max_cfg.num_interests = 3;
  max_cfg.dropout = 0.0f;
  core::MisslConfig mean_cfg = max_cfg;
  mean_cfg.routing = core::InterestRouting::kMean;
  core::MisslModel m1(ds.num_items(), ds.num_behaviors(), 12, max_cfg);
  core::MisslModel m2(ds.num_items(), ds.num_behaviors(), 12, mean_cfg);
  m1.SetTraining(false);
  m2.SetTraining(false);
  NoGradGuard ng;
  std::vector<int32_t> cands;
  for (int64_t i = 0; i < batch.batch_size * 5; ++i)
    cands.push_back(static_cast<int32_t>(i % ds.num_items()));
  Tensor s1 = m1.ScoreCandidates(batch, cands, 5);
  Tensor s2 = m2.ScoreCandidates(batch, cands, 5);
  // Same seed => same weights; only routing differs. Max >= mean always.
  bool any_diff = false;
  for (int64_t i = 0; i < s1.numel(); ++i) {
    EXPECT_GE(s1.data()[i], s2.data()[i] - 1e-5f);
    any_diff |= std::fabs(s1.data()[i] - s2.data()[i]) > 1e-6f;
  }
  EXPECT_TRUE(any_diff);
}

TEST(CheckpointTest, TrainerWritesLoadableCheckpoint) {
  data::Dataset ds = SmallDs();
  data::SplitView split(ds);
  eval::Evaluator ev(ds, split, Ec(eval::CandidateMode::kUniformNegatives));
  auto model = baselines::CreateModel("SASRec", ds, [] {
    baselines::ZooConfig zc;
    zc.dim = 16;
    zc.max_len = 12;
    return zc;
  }());
  train::TrainConfig tc;
  tc.max_epochs = 2;
  tc.max_len = 12;
  std::string path = ::testing::TempDir() + "/trainer_ckpt.bin";
  tc.checkpoint_path = path;
  train::TrainResult r = train::Fit(model.get(), ds, split, ev, tc);
  // A fresh model loaded from the checkpoint must reproduce the test score.
  auto fresh = baselines::CreateModel("SASRec", ds, [] {
    baselines::ZooConfig zc;
    zc.dim = 16;
    zc.max_len = 12;
    zc.seed = 999;  // different init — must be overwritten by the load
    return zc;
  }());
  ASSERT_TRUE(nn::LoadParameters(fresh.get(), path).ok());
  eval::EvalResult again = ev.Evaluate(fresh.get(), true);
  EXPECT_DOUBLE_EQ(r.test.ndcg10, again.ndcg10);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace missl
