// Integration tests for the training loop: early stopping, best-checkpoint
// restore, and end-to-end learning above chance on synthetic data.
#include "train/trainer.h"

#include <gtest/gtest.h>

#include "baselines/zoo.h"
#include "data/synthetic.h"

namespace missl::train {
namespace {

struct Bundle {
  data::Dataset ds;
  data::SplitView split;
  eval::Evaluator evaluator;

  Bundle()
      : ds(MakeDs()), split(ds), evaluator(ds, split, MakeEvalCfg()) {}

  static data::Dataset MakeDs() {
    data::SyntheticConfig cfg;
    cfg.num_users = 120;
    cfg.num_items = 250;
    cfg.num_clusters = 10;
    cfg.min_events = 20;
    cfg.max_events = 45;
    cfg.seed = 21;
    return data::GenerateSynthetic(cfg);
  }
  static eval::EvalConfig MakeEvalCfg() {
    eval::EvalConfig ec;
    ec.max_len = 20;
    return ec;
  }

  TrainConfig Tc(int64_t epochs) const {
    TrainConfig tc;
    tc.max_epochs = epochs;
    tc.max_len = 20;
    tc.batch_size = 64;
    return tc;
  }
  baselines::ZooConfig Zoo() const {
    baselines::ZooConfig zc;
    zc.dim = 24;
    zc.max_len = 20;
    zc.num_interests = 2;
    return zc;
  }
};

TEST(TrainerTest, MisslLearnsAboveChance) {
  Bundle b;
  auto model = baselines::CreateModel("MISSL", b.ds, b.Zoo());
  TrainResult r = Fit(model.get(), b.ds, b.split, b.evaluator, b.Tc(5));
  // Chance HR@10 with 100 candidates is 0.10.
  EXPECT_GT(r.test.hr10, 0.15) << "MISSL failed to learn above chance";
  EXPECT_GT(r.epochs_run, 0);
  EXPECT_GT(r.total_seconds, 0.0);
}

TEST(TrainerTest, BaselineLearnsAboveChance) {
  Bundle b;
  auto model = baselines::CreateModel("GRU4Rec", b.ds, b.Zoo());
  TrainResult r = Fit(model.get(), b.ds, b.split, b.evaluator, b.Tc(5));
  EXPECT_GT(r.test.hr10, 0.13);
}

TEST(TrainerTest, MoreEpochsDontHurtBestValid) {
  // best_valid is monotone in epoch budget (same seed => same trajectory).
  Bundle b;
  auto m1 = baselines::CreateModel("SASRec", b.ds, b.Zoo());
  auto m2 = baselines::CreateModel("SASRec", b.ds, b.Zoo());
  TrainResult r1 = Fit(m1.get(), b.ds, b.split, b.evaluator, b.Tc(1));
  TrainResult r2 = Fit(m2.get(), b.ds, b.split, b.evaluator, b.Tc(4));
  EXPECT_GE(r2.best_valid.ndcg10 + 1e-9, r1.best_valid.ndcg10);
}

TEST(TrainerTest, EarlyStoppingRespectsPatience) {
  Bundle b;
  auto model = baselines::CreateModel("GRU4Rec", b.ds, b.Zoo());
  TrainConfig tc = b.Tc(50);
  tc.patience = 1;
  tc.lr = 10.0f;  // absurd LR forces immediate divergence -> early stop
  TrainResult r = Fit(model.get(), b.ds, b.split, b.evaluator, tc);
  EXPECT_LT(r.epochs_run, 50);
}

TEST(TrainerTest, TestMetricsComeFromBestCheckpoint) {
  // With a diverging LR after epoch 0, the final test metrics must reflect
  // the best (early) checkpoint rather than the diverged weights: train a
  // model with tiny budget, then verify Fit's reported test equals an
  // evaluation of the restored model.
  Bundle b;
  auto model = baselines::CreateModel("SASRec", b.ds, b.Zoo());
  TrainResult r = Fit(model.get(), b.ds, b.split, b.evaluator, b.Tc(3));
  eval::EvalResult again = b.evaluator.Evaluate(model.get(), true);
  EXPECT_DOUBLE_EQ(r.test.ndcg10, again.ndcg10);
  EXPECT_DOUBLE_EQ(r.test.hr10, again.hr10);
}

TEST(TrainerTest, MaxBatchesPerEpochCapsWork) {
  Bundle b;
  auto m1 = baselines::CreateModel("GRU4Rec", b.ds, b.Zoo());
  TrainConfig tc = b.Tc(1);
  tc.max_batches_per_epoch = 1;
  TrainResult r = Fit(m1.get(), b.ds, b.split, b.evaluator, tc);
  EXPECT_EQ(r.epochs_run, 1);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  Bundle b;
  auto m1 = baselines::CreateModel("GRU4Rec", b.ds, b.Zoo());
  auto m2 = baselines::CreateModel("GRU4Rec", b.ds, b.Zoo());
  TrainResult r1 = Fit(m1.get(), b.ds, b.split, b.evaluator, b.Tc(2));
  TrainResult r2 = Fit(m2.get(), b.ds, b.split, b.evaluator, b.Tc(2));
  EXPECT_DOUBLE_EQ(r1.test.ndcg10, r2.test.ndcg10);
  EXPECT_FLOAT_EQ(r1.final_train_loss, r2.final_train_loss);
}

}  // namespace
}  // namespace missl::train
