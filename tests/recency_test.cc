// Tests for the recency-bucket feature: batch-layer bucket computation and
// the MISSL input-layer integration.
#include <gtest/gtest.h>

#include "core/missl.h"
#include "data/batch.h"
#include "data/synthetic.h"

namespace missl {
namespace {

TEST(RecencyTest, BucketsAreLogSpaced) {
  // gap -> expected bucket: bucket = max b with 2^b <= gap+1, capped at 15.
  data::Dataset ds(1, 10, 2, "rec");
  // Events at t = 0, 1, 3, 7, 1000; target (cart) at t = 1007.
  int64_t times[] = {0, 1, 3, 7, 1000};
  for (int i = 0; i < 5; ++i) {
    ds.Add({0, i + 1, data::Behavior::kClick, times[i]});
  }
  ds.Add({0, 9, data::Behavior::kCart, 1007});
  ds.Finalize();
  data::BatchBuilder builder(ds, 5);
  data::Batch b = builder.Build({{0, 5}});
  // gaps to target: 1007, 1006, 1004, 1000, 7
  // buckets: floor(log2(gap+1)) -> 9, 9, 9, 9, 3
  EXPECT_EQ(b.merged_recency[0], 9);
  EXPECT_EQ(b.merged_recency[3], 9);
  EXPECT_EQ(b.merged_recency[4], 3);
}

TEST(RecencyTest, ZeroGapIsBucketZeroAndPadIsMinusOne) {
  data::Dataset ds(1, 10, 2, "rec0");
  ds.Add({0, 1, data::Behavior::kClick, 5});
  ds.Add({0, 2, data::Behavior::kCart, 5});  // same timestamp -> gap 0
  ds.Finalize();
  data::BatchBuilder builder(ds, 3);
  data::Batch b = builder.Build({{0, 1}});
  EXPECT_EQ(b.merged_recency[0], -1);  // padding
  EXPECT_EQ(b.merged_recency[1], -1);
  EXPECT_EQ(b.merged_recency[2], 0);   // gap 0 -> bucket 0
}

TEST(RecencyTest, HugeGapCapsAtLastBucket) {
  data::Dataset ds(1, 10, 2, "reccap");
  ds.Add({0, 1, data::Behavior::kClick, 0});
  ds.Add({0, 2, data::Behavior::kCart, int64_t{1} << 40});
  ds.Finalize();
  data::BatchBuilder builder(ds, 1);
  data::Batch b = builder.Build({{0, 1}});
  EXPECT_EQ(b.merged_recency[0], data::kNumRecencyBuckets - 1);
}

TEST(RecencyTest, MisslUsesRecencyOnlyWhenEnabled) {
  data::SyntheticConfig cfg;
  cfg.num_users = 20;
  cfg.num_items = 50;
  cfg.min_events = 10;
  cfg.max_events = 16;
  cfg.seed = 8;
  data::Dataset ds = data::GenerateSynthetic(cfg);
  data::SplitView split(ds);
  data::BatchBuilder builder(ds, 8);
  data::Batch batch = builder.Build({split.train_examples[0]});

  core::MisslConfig off;
  off.dim = 8;
  off.num_interests = 2;
  off.dropout = 0.0f;
  core::MisslConfig on = off;
  on.use_recency = true;

  core::MisslModel m_off(ds.num_items(), ds.num_behaviors(), 8, off);
  core::MisslModel m_on(ds.num_items(), ds.num_behaviors(), 8, on);
  // The recency table only appears among named parameters when enabled.
  auto has_recency = [](const core::MisslModel& m) {
    for (const auto& [name, p] : m.NamedParameters()) {
      if (name.find("recency") != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_FALSE(has_recency(m_off));
  EXPECT_TRUE(has_recency(m_on));

  // Perturbing recency buckets changes scores only for the enabled model.
  NoGradGuard ng;
  m_off.SetTraining(false);
  m_on.SetTraining(false);
  std::vector<int32_t> cands = {1, 2, 3};
  data::Batch perturbed = batch;
  for (auto& r : perturbed.merged_recency) {
    if (r >= 0) r = (r + 5) % data::kNumRecencyBuckets;
  }
  Tensor off1 = m_off.ScoreCandidates(batch, cands, 3);
  Tensor off2 = m_off.ScoreCandidates(perturbed, cands, 3);
  for (int64_t i = 0; i < off1.numel(); ++i) {
    EXPECT_EQ(off1.data()[i], off2.data()[i]);
  }
  Tensor on1 = m_on.ScoreCandidates(batch, cands, 3);
  Tensor on2 = m_on.ScoreCandidates(perturbed, cands, 3);
  bool any_diff = false;
  for (int64_t i = 0; i < on1.numel(); ++i) {
    any_diff |= on1.data()[i] != on2.data()[i];
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace missl
