// Planned-executor contract tests (src/infer/, docs/INFERENCE.md).
//
// The central property: PlannedExecutor::Run is bitwise identical to the
// training-mode MisslModel::ScoreAllItems forward — the graph path is the
// oracle — across every SIMD tier x thread count, for every model
// configuration the compiler supports. On top of that: plans are reusable
// across batches of varying (smaller) sizes, steady-state Runs perform zero
// allocator traffic, and the RecoService wiring serves bitwise-identical
// top-K answers on either executor.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/missl.h"
#include "data/batch.h"
#include "infer/plan.h"
#include "nn/serialize.h"
#include "runtime/runtime.h"
#include "serve/service.h"
#include "tensor/alloc.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "utils/rng.h"
#include "utils/status.h"

namespace missl {
namespace {

constexpr int32_t kItems = 57;
constexpr int32_t kBehaviors = 3;
constexpr int64_t kMaxLen = 14;

std::unique_ptr<core::MisslModel> MakeModel(const core::MisslConfig& cfg) {
  return std::make_unique<core::MisslModel>(kItems, kBehaviors, kMaxLen, cfg);
}

core::MisslConfig BaseConfig() {
  core::MisslConfig cfg;
  cfg.dim = 16;
  cfg.heads = 2;
  cfg.num_interests = 3;
  cfg.seed = 21;
  return cfg;
}

/// A deterministic inference batch with padding rows, single-behavior rows
/// and repeated items (exercising every hyperedge family and the
/// empty-channel indicator path).
data::Batch MakeBatch(int64_t batch_size, uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.batch_size = batch_size;
  b.max_len = kMaxLen;
  b.num_behaviors = kBehaviors;
  int64_t bt = batch_size * kMaxLen;
  b.merged_items.assign(static_cast<size_t>(bt), -1);
  b.merged_behaviors.assign(static_cast<size_t>(bt), -1);
  b.merged_recency.assign(static_cast<size_t>(bt), -1);
  b.targets.assign(static_cast<size_t>(batch_size), -1);
  b.target_behavior.assign(static_cast<size_t>(batch_size), kBehaviors - 1);
  b.users.resize(static_cast<size_t>(batch_size));
  for (int64_t row = 0; row < batch_size; ++row) {
    b.users[static_cast<size_t>(row)] = static_cast<int32_t>(row);
    // Row 0 stays fully padded-short (one event); later rows fill more.
    int64_t n = 1 + (row * 5) % kMaxLen;
    for (int64_t i = 0; i < n; ++i) {
      size_t pos = static_cast<size_t>(row * kMaxLen + (kMaxLen - n + i));
      // Bias toward repeats so repeat hyperedges materialize.
      int32_t item = static_cast<int32_t>(rng.UniformInt(kItems / 3));
      int32_t beh = static_cast<int32_t>(rng.UniformInt(kBehaviors));
      if (row % 3 == 1) beh = kBehaviors - 1;  // target-channel-only row
      if (row % 3 == 2) beh = 0;  // aux-only row (empty target channel)
      b.merged_items[pos] = item;
      b.merged_behaviors[pos] = beh;
      b.merged_recency[pos] = static_cast<int32_t>(rng.UniformInt(8));
    }
  }
  return b;
}

/// Compiles a plan for `cfg` and asserts Run == ScoreAllItems bitwise on
/// every tier x thread-count combination.
void ExpectBitwiseParity(const core::MisslConfig& cfg, int64_t batch_size,
                         int64_t max_batch) {
  auto model = MakeModel(cfg);
  model->SetTraining(false);
  data::Batch batch = MakeBatch(batch_size, /*seed=*/cfg.seed + 7);
  Tensor catalog;
  {
    NoGradGuard ng;
    catalog = model->PrecomputeCatalog();
  }
  Status status;
  auto plan =
      infer::PlannedExecutor::Compile(*model, catalog, max_batch, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_NE(plan, nullptr);

  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  if (simd::Avx2Available()) tiers.push_back(simd::Tier::kAvx2);
  // The scalar 1-thread result is the reference semantics; every other
  // (tier, threads) combination must reproduce it exactly, on both paths.
  std::vector<float> reference;
  for (simd::Tier tier : tiers) {
    simd::ScopedTier tier_guard(tier);
    for (int threads : {1, 2, 4}) {
      runtime::ScopedNumThreads thread_guard(threads);
      Tensor oracle;
      {
        NoGradGuard ng;
        oracle = model->ScoreAllItems(batch, kItems, catalog);
      }
      const float* got = plan->Run(batch);
      ASSERT_EQ(oracle.numel(), batch_size * kItems);
      size_t mismatch = 0;
      for (int64_t i = 0; i < oracle.numel(); ++i) {
        if (got[i] != oracle.data()[i]) ++mismatch;
      }
      EXPECT_EQ(mismatch, 0u)
          << mismatch << " of " << oracle.numel()
          << " scores differ from the graph oracle at tier="
          << simd::TierName(tier) << " threads=" << threads;
      if (reference.empty()) {
        reference.assign(oracle.data(), oracle.data() + oracle.numel());
      } else {
        for (int64_t i = 0; i < oracle.numel(); ++i) {
          ASSERT_EQ(oracle.data()[i], reference[static_cast<size_t>(i)])
              << "graph forward itself diverged across tiers/threads at " << i;
        }
      }
    }
  }
}

TEST(PlannedExecutorTest, BitwiseParityDefaultConfig) {
  ExpectBitwiseParity(BaseConfig(), /*batch_size=*/6, /*max_batch=*/6);
}

TEST(PlannedExecutorTest, BitwiseParitySmallerBatchThanCapacity) {
  // Plans compiled for max_batch serve any smaller batch, including b = 1.
  ExpectBitwiseParity(BaseConfig(), /*batch_size=*/1, /*max_batch=*/8);
  ExpectBitwiseParity(BaseConfig(), /*batch_size=*/3, /*max_batch=*/8);
}

TEST(PlannedExecutorTest, BitwiseParityRecency) {
  core::MisslConfig cfg = BaseConfig();
  cfg.use_recency = true;
  ExpectBitwiseParity(cfg, 5, 5);
}

TEST(PlannedExecutorTest, BitwiseParityNoAuxBehaviors) {
  core::MisslConfig cfg = BaseConfig();
  cfg.use_aux_behaviors = false;
  ExpectBitwiseParity(cfg, 5, 5);
}

TEST(PlannedExecutorTest, BitwiseParityNoCommonInterest) {
  core::MisslConfig cfg = BaseConfig();
  cfg.use_common_interest = false;
  ExpectBitwiseParity(cfg, 5, 5);
}

TEST(PlannedExecutorTest, BitwiseParityNoHypergraph) {
  core::MisslConfig cfg = BaseConfig();
  cfg.use_hypergraph = false;
  ExpectBitwiseParity(cfg, 5, 5);
}

TEST(PlannedExecutorTest, BitwiseParityMeanRouting) {
  core::MisslConfig cfg = BaseConfig();
  cfg.routing = core::InterestRouting::kMean;
  ExpectBitwiseParity(cfg, 5, 5);
}

TEST(PlannedExecutorTest, BitwiseParitySingleHeadSingleInterest) {
  core::MisslConfig cfg = BaseConfig();
  cfg.heads = 1;
  cfg.use_multi_interest = false;  // forces K = 1
  ExpectBitwiseParity(cfg, 5, 5);
}

TEST(PlannedExecutorTest, BitwiseParityDeepStack) {
  core::MisslConfig cfg = BaseConfig();
  cfg.seq_layers = 2;
  cfg.hgat_layers = 2;
  ExpectBitwiseParity(cfg, 4, 4);
}

TEST(PlannedExecutorTest, SteadyStateRunsAllocateNothing) {
  auto model = MakeModel(BaseConfig());
  model->SetTraining(false);
  Tensor catalog;
  {
    NoGradGuard ng;
    catalog = model->PrecomputeCatalog();
  }
  Status status;
  auto plan = infer::PlannedExecutor::Compile(*model, catalog, 8, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  data::Batch big = MakeBatch(8, 11);
  data::Batch small = MakeBatch(3, 12);
  plan->Run(big);  // warmup (first-touch only; the arena exists already)
  alloc::AllocStats before = alloc::GetAllocStats();
  for (int i = 0; i < 20; ++i) plan->Run(i % 2 == 0 ? big : small);
  alloc::AllocStats after = alloc::GetAllocStats();
  // Zero Storage traffic of ANY kind per steady-state Run: no pool churn,
  // no system allocations. This is the allocation half of the inference
  // contract (the churn gate in bench_m1_alloc holds the end-to-end
  // serve-batch variant of the same property).
  EXPECT_EQ(after.pool_hits - before.pool_hits, 0);
  EXPECT_EQ(after.pool_misses - before.pool_misses, 0);
  EXPECT_EQ(after.system_allocs - before.system_allocs, 0);
}

TEST(PlannedExecutorTest, CompileValidatesInputs) {
  auto model = MakeModel(BaseConfig());
  model->SetTraining(false);
  Tensor catalog;
  {
    NoGradGuard ng;
    catalog = model->PrecomputeCatalog();
  }
  Status status;
  // Bad max_batch.
  EXPECT_EQ(infer::PlannedExecutor::Compile(*model, catalog, 0, &status),
            nullptr);
  EXPECT_FALSE(status.ok());
  // Catalog in the untransposed [V, d] orientation.
  EXPECT_EQ(infer::PlannedExecutor::Compile(*model, Transpose(catalog), 4,
                                            &status),
            nullptr);
  EXPECT_FALSE(status.ok());
  // Undefined catalog.
  EXPECT_EQ(infer::PlannedExecutor::Compile(*model, Tensor(), 4, &status),
            nullptr);
  EXPECT_FALSE(status.ok());
}

TEST(PlannedExecutorTest, PlanIntrospection) {
  auto model = MakeModel(BaseConfig());
  model->SetTraining(false);
  Tensor catalog;
  {
    NoGradGuard ng;
    catalog = model->PrecomputeCatalog();
  }
  Status status;
  auto plan = infer::PlannedExecutor::Compile(*model, catalog, 4, &status);
  ASSERT_TRUE(status.ok());
  EXPECT_GT(plan->num_ops(), 10);
  EXPECT_GT(plan->scratch_bytes(), 0);
  EXPECT_EQ(plan->max_batch(), 4);
  EXPECT_EQ(plan->max_len(), kMaxLen);
  EXPECT_EQ(plan->num_items(), kItems);
  std::string dump = plan->ToString();
  EXPECT_NE(dump.find("embed_sum"), std::string::npos);
  EXPECT_NE(dump.find("catalog_score"), std::string::npos);
  EXPECT_NE(dump.find("interest_extract"), std::string::npos);
}

TEST(PlannedExecutorServiceTest, PlannedServiceMatchesGraphService) {
  core::MisslConfig cfg = BaseConfig();
  auto saved = MakeModel(cfg);
  std::string path = ::testing::TempDir() + "/infer_planned_ckpt.bin";
  ASSERT_TRUE(nn::SaveParameters(*saved, path).ok());

  serve::ServeConfig sc;
  sc.max_len = kMaxLen;
  sc.max_batch = 4;
  sc.max_wait_us = 0;
  Status status;
  auto graph_svc = serve::RecoService::Load(MakeModel(cfg), kItems, kBehaviors,
                                            path, sc, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  sc.executor = serve::ExecutorKind::kPlanned;
  auto planned_svc = serve::RecoService::Load(MakeModel(cfg), kItems,
                                              kBehaviors, path, sc, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_NE(planned_svc->planned_executor(), nullptr);
  EXPECT_EQ(graph_svc->planned_executor(), nullptr);

  Rng rng(5);
  for (int round = 0; round < 12; ++round) {
    serve::Query q;
    int64_t len = 1 + static_cast<int64_t>(rng.UniformInt(2 * kMaxLen));
    for (int64_t i = 0; i < len; ++i) {
      q.items.push_back(static_cast<int32_t>(rng.UniformInt(kItems)));
      q.behaviors.push_back(static_cast<int32_t>(rng.UniformInt(kBehaviors)));
    }
    q.k = 7;
    serve::TopKResult a, b;
    ASSERT_TRUE(graph_svc->TopK(q, &a).ok());
    ASSERT_TRUE(planned_svc->TopK(q, &b).ok());
    ASSERT_EQ(a.items.size(), b.items.size());
    for (size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_EQ(a.items[i], b.items[i]) << "rank " << i << " round " << round;
      EXPECT_EQ(a.scores[i], b.scores[i]) << "rank " << i << " round " << round;
    }
  }
  std::remove(path.c_str());
}

/// Minimal non-MISSL model: enough interface to pass checkpoint loading.
class StubModel : public core::SeqRecModel {
 public:
  StubModel() { w_ = RegisterParameter("w", Tensor::Zeros({1})); }
  std::string Name() const override { return "Stub"; }
  Tensor Loss(const data::Batch&) override { return Tensor::Zeros({1}); }
  Tensor ScoreCandidates(const data::Batch& batch, const std::vector<int32_t>&,
                         int64_t num_cands) override {
    return Tensor::Zeros({batch.batch_size, num_cands});
  }

 private:
  Tensor w_;
};

TEST(PlannedExecutorServiceTest, PlannedRejectsNonMisslModel) {
  // kPlanned requires the concrete MISSL forward; Load must fail with a
  // clear status instead of silently falling back to the graph path.
  std::string path = ::testing::TempDir() + "/infer_stub_ckpt.bin";
  StubModel saved;
  ASSERT_TRUE(nn::SaveParameters(saved, path).ok());
  serve::ServeConfig sc;
  sc.max_len = kMaxLen;
  sc.executor = serve::ExecutorKind::kPlanned;
  Status status;
  auto svc = serve::RecoService::Load(std::make_unique<StubModel>(), kItems,
                                      kBehaviors, path, sc, &status);
  EXPECT_EQ(svc, nullptr);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("MISSL"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace missl
