// Tests for the data substrate: dataset storage, TSV round-trip,
// leave-one-out split semantics, batch collation, and negative sampling.
#include "data/batch.h"
#include "data/dataset.h"

#include <cstdio>
#include <set>

#include <gtest/gtest.h>

namespace missl::data {
namespace {

// Small hand-built dataset: 2 users, 10 items, behaviors {click=0, buy=1}.
Dataset MakeTiny() {
  Dataset ds(2, 10, 2, "tiny");
  // user 0: click 1, click 2, buy 3, click 4, buy 5, buy 6
  int64_t t = 0;
  for (auto [item, beh] : std::vector<std::pair<int, int>>{
           {1, 0}, {2, 0}, {3, 1}, {4, 0}, {5, 1}, {6, 1}}) {
    ds.Add({0, item, static_cast<Behavior>(beh), t++});
  }
  // user 1: click 7, buy 8, buy 9, buy 1
  for (auto [item, beh] :
       std::vector<std::pair<int, int>>{{7, 0}, {8, 1}, {9, 1}, {1, 1}}) {
    ds.Add({1, item, static_cast<Behavior>(beh), t++});
  }
  ds.Finalize();
  return ds;
}

TEST(DatasetTest, StatsCountPerBehavior) {
  Dataset ds = MakeTiny();
  DatasetStats s = ds.Stats();
  EXPECT_EQ(s.num_users, 2);
  EXPECT_EQ(s.num_items, 10);
  EXPECT_EQ(s.num_interactions, 10);
  EXPECT_EQ(s.per_behavior[0], 4);  // clicks
  EXPECT_EQ(s.per_behavior[1], 6);  // buys
  EXPECT_DOUBLE_EQ(s.avg_seq_len, 5.0);
}

TEST(DatasetTest, EventsSortedByTimestamp) {
  Dataset ds(1, 5, 2, "unsorted");
  ds.Add({0, 1, Behavior::kClick, 30});
  ds.Add({0, 2, Behavior::kClick, 10});
  ds.Add({0, 3, Behavior::kClick, 20});
  ds.Finalize();
  const auto& ev = ds.user(0).events;
  EXPECT_EQ(ev[0].item, 2);
  EXPECT_EQ(ev[1].item, 3);
  EXPECT_EQ(ev[2].item, 1);
}

TEST(DatasetTest, TargetBehaviorIsDeepest) {
  Dataset ds2(1, 2, 2, "d2");
  EXPECT_EQ(ds2.target_behavior(), Behavior::kCart);
  Dataset ds4(1, 2, 4, "d4");
  EXPECT_EQ(ds4.target_behavior(), Behavior::kBuy);
}

TEST(DatasetTest, TsvRoundTrip) {
  Dataset ds = MakeTiny();
  std::string path = ::testing::TempDir() + "/tiny.tsv";
  ASSERT_TRUE(ds.SaveTsv(path).ok());
  Dataset loaded(1, 1, 2);
  ASSERT_TRUE(Dataset::LoadTsv(path, &loaded).ok());
  EXPECT_EQ(loaded.num_users(), 2);
  EXPECT_EQ(loaded.num_items(), 10);
  DatasetStats s = loaded.Stats();
  EXPECT_EQ(s.num_interactions, 10);
  EXPECT_EQ(s.per_behavior[1], 6);
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadTsvRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage.tsv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not a valid line\n", f);
  std::fclose(f);
  Dataset out(1, 1, 2);
  Status s = Dataset::LoadTsv(path, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadTsvMissingFile) {
  Dataset out(1, 1, 2);
  EXPECT_EQ(Dataset::LoadTsv("/no/such/file.tsv", &out).code(),
            StatusCode::kIOError);
}

TEST(SplitTest, LeaveOneOutPositions) {
  Dataset ds = MakeTiny();
  SplitView split(ds, /*min_target_events=*/3);
  // user 0 buys at positions 2, 4, 5 -> test=5, valid=4, train cut=2.
  EXPECT_EQ(split.test_pos[0], 5);
  EXPECT_EQ(split.valid_pos[0], 4);
  // user 1 buys at positions 1, 2, 3 -> test=3, valid=2, train cut=1.
  EXPECT_EQ(split.test_pos[1], 3);
  EXPECT_EQ(split.valid_pos[1], 2);
  ASSERT_EQ(split.train_examples.size(), 2u);
  EXPECT_EQ(split.train_examples[0].user, 0);
  EXPECT_EQ(split.train_examples[0].cut, 2);
  EXPECT_EQ(split.train_examples[1].user, 1);
  EXPECT_EQ(split.train_examples[1].cut, 1);
  EXPECT_EQ(split.NumEvalUsers(), 2);
}

TEST(SplitTest, UsersBelowMinTargetExcluded) {
  Dataset ds(1, 10, 2, "sparse");
  ds.Add({0, 1, Behavior::kClick, 0});
  ds.Add({0, 2, Behavior::kCart, 1});  // only 1 target event (2 behaviors)
  ds.Finalize();
  SplitView split(ds, 3);
  EXPECT_EQ(split.test_pos[0], -1);
  EXPECT_EQ(split.NumEvalUsers(), 0);
}

TEST(SplitTest, TrainCutsNeverLeakEvalTargets) {
  Dataset ds = MakeTiny();
  SplitView split(ds, 3);
  for (const auto& ex : split.train_examples) {
    EXPECT_LT(ex.cut, split.valid_pos[static_cast<size_t>(ex.user)]);
  }
}

TEST(BatchTest, FrontPaddingAndTargets) {
  Dataset ds = MakeTiny();
  SplitView split(ds, 3);
  BatchBuilder builder(ds, /*max_len=*/4);
  Batch b = builder.Build({{0, 5}});  // predict user 0's last buy (item 6)
  EXPECT_EQ(b.batch_size, 1);
  EXPECT_EQ(b.targets[0], 6);
  EXPECT_EQ(b.target_behavior[0], 1);
  // Merged history before cut 5 is items 1,2,3,4,5; last 4 kept: 2,3,4,5.
  EXPECT_EQ(b.merged_items[0], 2);
  EXPECT_EQ(b.merged_items[1], 3);
  EXPECT_EQ(b.merged_items[2], 4);
  EXPECT_EQ(b.merged_items[3], 5);
  EXPECT_EQ(b.merged_behaviors[1], 1);  // item 3 was a buy
  // Click channel: clicks before cut = 1,2,4 -> front-padded.
  EXPECT_EQ(b.beh_items[0][0], -1);
  EXPECT_EQ(b.beh_items[0][1], 1);
  EXPECT_EQ(b.beh_items[0][2], 2);
  EXPECT_EQ(b.beh_items[0][3], 4);
  // Buy channel: buys before cut = 3,5.
  EXPECT_EQ(b.beh_items[1][2], 3);
  EXPECT_EQ(b.beh_items[1][3], 5);
  EXPECT_EQ(b.beh_items[1][0], -1);
}

TEST(BatchTest, MultiRowCollation) {
  Dataset ds = MakeTiny();
  BatchBuilder builder(ds, 4);
  Batch b = builder.Build({{0, 2}, {1, 3}});
  EXPECT_EQ(b.batch_size, 2);
  EXPECT_EQ(b.targets[0], 3);
  EXPECT_EQ(b.targets[1], 1);
  EXPECT_EQ(b.users[0], 0);
  EXPECT_EQ(b.users[1], 1);
}

TEST(BatchTest, HistoryNeverIncludesCutEvent) {
  Dataset ds = MakeTiny();
  BatchBuilder builder(ds, 8);
  Batch b = builder.Build({{0, 2}});  // target item 3
  for (int32_t it : b.merged_items) EXPECT_NE(it, 3);
}

TEST(NegativeSamplerTest, AvoidsSeenItemsAndTarget) {
  Dataset ds = MakeTiny();
  NegativeSampler sampler(ds);
  Rng rng(5);
  // user 0 saw items {1,2,3,4,5,6}.
  std::vector<int32_t> negs = sampler.Sample(0, 0, 3, &rng);
  EXPECT_EQ(negs.size(), 3u);
  std::set<int32_t> forbidden = {0, 1, 2, 3, 4, 5, 6};
  std::set<int32_t> unique(negs.begin(), negs.end());
  EXPECT_EQ(unique.size(), 3u);  // distinct
  for (int32_t n : negs) EXPECT_EQ(forbidden.count(n), 0u);
}

TEST(NegativeSamplerTest, DeterministicGivenSeed) {
  Dataset ds = MakeTiny();
  NegativeSampler sampler(ds);
  Rng r1(9), r2(9);
  EXPECT_EQ(sampler.Sample(1, 0, 4, &r1), sampler.Sample(1, 0, 4, &r2));
}

TEST(MiniBatcherTest, CoversAllExamplesOncePerEpoch) {
  std::vector<SplitView::TrainExample> ex;
  for (int i = 0; i < 10; ++i) ex.push_back({i, 1});
  MiniBatcher mb(ex, 3, 42);
  EXPECT_EQ(mb.batches_per_epoch(), 4);
  std::set<int32_t> seen;
  std::vector<SplitView::TrainExample> chunk;
  int batches = 0;
  while (mb.Next(&chunk)) {
    ++batches;
    for (const auto& e : chunk) seen.insert(e.user);
  }
  EXPECT_EQ(batches, 4);
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_FALSE(mb.Next(&chunk));
  mb.Reset();
  EXPECT_TRUE(mb.Next(&chunk));
}

TEST(MiniBatcherTest, ShufflesBetweenEpochs) {
  std::vector<SplitView::TrainExample> ex;
  for (int i = 0; i < 50; ++i) ex.push_back({i, 1});
  MiniBatcher mb(ex, 50, 7);
  std::vector<SplitView::TrainExample> e1, e2;
  mb.Next(&e1);
  mb.Reset();
  mb.Next(&e2);
  bool same = true;
  for (size_t i = 0; i < e1.size(); ++i) same &= e1[i].user == e2[i].user;
  EXPECT_FALSE(same);
}

TEST(BehaviorTest, Names) {
  EXPECT_STREQ(BehaviorName(Behavior::kClick), "click");
  EXPECT_STREQ(BehaviorName(Behavior::kBuy), "buy");
}

}  // namespace
}  // namespace missl::data
