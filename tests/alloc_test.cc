// Tests for the pooled tensor allocator (tensor/alloc.h): size-class
// rounding, the 32-byte alignment guarantee, block reuse and stats, the
// cross-thread free path, Trim, the obs metric mirrors, Storage container
// semantics, a multi-thread stress run (meaningful under TSan), and the
// determinism contract — a seeded 2-epoch training golden that must be
// bitwise identical between MISSL_ALLOC=pool and MISSL_ALLOC=system at
// 1/2/4 threads on every SIMD tier.
#include <cstdint>
#include <cstring>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/zoo.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "tensor/alloc.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "train/trainer.h"

namespace missl {
namespace {

TEST(AllocTest, RoundUpBytesFollowsSizeClasses) {
  EXPECT_EQ(alloc::RoundUpBytes(1), 64);
  EXPECT_EQ(alloc::RoundUpBytes(64), 64);
  EXPECT_EQ(alloc::RoundUpBytes(65), 128);
  EXPECT_EQ(alloc::RoundUpBytes(4096), 4096);
  EXPECT_EQ(alloc::RoundUpBytes(4097), 8192);
  EXPECT_EQ(alloc::RoundUpBytes(int64_t{1} << 26), int64_t{1} << 26);
  // Oversize blocks bypass the pool classes: next multiple of kAlignment.
  EXPECT_EQ(alloc::RoundUpBytes((int64_t{1} << 26) + 1),
            (int64_t{1} << 26) + alloc::kAlignment);
  EXPECT_EQ(alloc::RoundUpBytes((int64_t{1} << 26) + alloc::kAlignment),
            (int64_t{1} << 26) + alloc::kAlignment);
}

TEST(AllocTest, StorageAlignedInBothModes) {
  for (alloc::Mode mode : {alloc::Mode::kPool, alloc::Mode::kSystem}) {
    alloc::ScopedMode sm(mode);
    // Includes an oversize allocation (> 64 MiB class cap).
    const int64_t sizes[] = {1, 3, 16, 1000, 100000, (int64_t{1} << 24) + 3};
    for (int64_t n : sizes) {
      Storage s;
      s.assign(n, 1.0f);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(s.data()) %
                    static_cast<uintptr_t>(alloc::kAlignment),
                0u)
          << "mode=" << alloc::ModeName(mode) << " n=" << n;
      EXPECT_EQ(s.capacity_bytes(),
                alloc::RoundUpBytes(n * static_cast<int64_t>(sizeof(float))));
    }
  }
}

TEST(AllocTest, PoolReusesFreedBlocksWithoutSystemAllocs) {
  if (!alloc::PoolAvailable()) GTEST_SKIP() << "pool compiled out (ASan)";
  alloc::ScopedMode sm(alloc::Mode::kPool);
  // Warm up: make sure one block of this class is cached.
  { Storage s; s.assign(1000, 0.5f); }
  alloc::AllocStats before = alloc::GetAllocStats();
  for (int i = 0; i < 10; ++i) {
    Storage s;
    s.assign(1000, static_cast<float>(i));
    EXPECT_EQ(s[999], static_cast<float>(i));
  }
  alloc::AllocStats after = alloc::GetAllocStats();
  EXPECT_GE(after.pool_hits - before.pool_hits, 10);
  EXPECT_EQ(after.system_allocs, before.system_allocs)
      << "steady-state reuse must not touch the system allocator";
}

TEST(AllocTest, LiveAndCachedBytesTrackStorageLifecycle) {
  if (!alloc::PoolAvailable()) GTEST_SKIP() << "pool compiled out (ASan)";
  alloc::ScopedMode sm(alloc::Mode::kPool);
  const int64_t n = 5000;  // 20000 B -> 32 KiB class
  const int64_t cap = alloc::RoundUpBytes(n * 4);
  alloc::AllocStats base = alloc::GetAllocStats();
  {
    Storage s;
    s.assign(n, 0.0f);
    alloc::AllocStats live = alloc::GetAllocStats();
    EXPECT_EQ(live.live_bytes - base.live_bytes, cap);
  }
  alloc::AllocStats freed = alloc::GetAllocStats();
  EXPECT_EQ(freed.live_bytes, base.live_bytes);
  // The block is parked in a free list, not returned to the system.
  EXPECT_GE(freed.cached_bytes, cap);
}

TEST(AllocTest, TrimReleasesCachedBlocks) {
  if (!alloc::PoolAvailable()) GTEST_SKIP() << "pool compiled out (ASan)";
  alloc::ScopedMode sm(alloc::Mode::kPool);
  // Park a handful of blocks in the calling thread's cache.
  for (int i = 0; i < 4; ++i) {
    Storage s;
    s.assign(10000, 1.0f);
  }
  alloc::AllocStats before = alloc::GetAllocStats();
  ASSERT_GT(before.cached_bytes, 0);
  int64_t released = alloc::Trim();
  alloc::AllocStats after = alloc::GetAllocStats();
  EXPECT_GT(released, 0);
  EXPECT_EQ(after.cached_bytes, before.cached_bytes - released);
  // Everything reachable from this thread was drained.
  EXPECT_EQ(after.cached_bytes, 0);
  EXPECT_GT(after.system_frees, before.system_frees)
      << "trimmed blocks go back to the system";
}

TEST(AllocTest, CrossThreadFreeRoutesBackToPool) {
  if (!alloc::PoolAvailable()) GTEST_SKIP() << "pool compiled out (ASan)";
  alloc::ScopedMode sm(alloc::Mode::kPool);
  alloc::AllocStats before = alloc::GetAllocStats();
  // Allocate on this thread, destroy on another; then the reverse.
  {
    Storage s;
    s.assign(3000, 2.0f);
    std::thread t([moved = std::move(s)]() mutable {
      EXPECT_EQ(moved[0], 2.0f);
      moved.reset();
    });
    t.join();
  }
  Storage from_worker;
  std::thread t2([&] {
    Storage s;
    s.assign(3000, 3.0f);
    from_worker = std::move(s);
  });
  t2.join();
  EXPECT_EQ(from_worker[2999], 3.0f);
  from_worker.reset();
  alloc::AllocStats after = alloc::GetAllocStats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
}

TEST(AllocTest, ObsMirrorsMatchAllocStats) {
  bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  {
    alloc::ScopedMode sm(alloc::PoolAvailable() ? alloc::Mode::kPool
                                                : alloc::Mode::kSystem);
    // An alloc/free cycle publishes both gauges while metrics are on (the
    // mirror Sets the absolute value on every change, so the gauges catch
    // up even if earlier activity happened with metrics off).
    Storage s;
    s.assign(100, 1.0f);
    s.reset();
    auto& reg = obs::MetricsRegistry::Global();
    alloc::AllocStats stats = alloc::GetAllocStats();
    EXPECT_EQ(reg.GetGauge("alloc.live_bytes").value(), stats.live_bytes);
    EXPECT_EQ(reg.GetGauge("alloc.cached_bytes").value(), stats.cached_bytes);
    if (alloc::PoolAvailable()) {
      // Counters only tick while metrics are enabled; a reuse cycle must
      // move the mirrored hit counter.
      int64_t hits0 = reg.GetCounter("alloc.pool_hits").value();
      s.assign(100, 2.0f);
      EXPECT_GT(reg.GetCounter("alloc.pool_hits").value(), hits0);
    }
  }
  obs::SetMetricsEnabled(was_enabled);
}

TEST(AllocTest, ScopedModeRestoresAndNamesAreStable) {
  alloc::Mode prev = alloc::ActiveMode();
  {
    alloc::ScopedMode sm(alloc::Mode::kSystem);
    EXPECT_EQ(alloc::ActiveMode(), alloc::Mode::kSystem);
    {
      alloc::ScopedMode inner(alloc::Mode::kPool);
      EXPECT_EQ(alloc::ActiveMode(), alloc::PoolAvailable()
                                         ? alloc::Mode::kPool
                                         : alloc::Mode::kSystem);
    }
    EXPECT_EQ(alloc::ActiveMode(), alloc::Mode::kSystem);
  }
  EXPECT_EQ(alloc::ActiveMode(), prev);
  EXPECT_STREQ(alloc::ModeName(alloc::Mode::kPool), "pool");
  EXPECT_STREQ(alloc::ModeName(alloc::Mode::kSystem), "system");
}

TEST(AllocTest, SystemModeBlocksFreeCleanlyAfterModeFlip) {
  // A block allocated in system mode must go back to the system even if the
  // active mode is pool by the time it is destroyed (origin routing).
  alloc::AllocStats before = alloc::GetAllocStats();
  Storage s;
  {
    alloc::ScopedMode sm(alloc::Mode::kSystem);
    s.assign(2000, 4.0f);
  }
  {
    alloc::ScopedMode sm(alloc::Mode::kPool);
    s.reset();
  }
  alloc::AllocStats after = alloc::GetAllocStats();
  EXPECT_EQ(after.live_bytes, before.live_bytes);
  EXPECT_EQ(after.cached_bytes, before.cached_bytes)
      << "system-origin block must not land in a pool free list";
}

TEST(AllocTest, StorageContainerSemantics) {
  Storage s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.capacity_bytes(), 0);

  s.assign(5, 1.5f);
  EXPECT_EQ(s.size(), 5);
  for (float v : s) EXPECT_EQ(v, 1.5f);

  // Shrinking assign reuses the block (capacity never shrinks, like vector).
  int64_t cap = s.capacity_bytes();
  s.assign(2, 9.0f);
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.capacity_bytes(), cap);
  EXPECT_EQ(s[0], 9.0f);

  const std::vector<float> src = {1, 2, 3, 4, 5, 6, 7};
  s.copy_from(src.data(), static_cast<int64_t>(src.size()));
  EXPECT_EQ(s.ToVector(), src);

  Storage moved = std::move(s);
  EXPECT_TRUE(s.empty());  // NOLINT(bugprone-use-after-move): tested state
  EXPECT_EQ(moved.ToVector(), src);

  moved.reset();
  EXPECT_TRUE(moved.empty());
  EXPECT_EQ(moved.capacity_bytes(), 0);
}

// Hammer the allocator from several threads with mixed sizes and handoffs;
// run under TSan in CI. Content checks catch any block handed to two owners.
TEST(AllocTest, ConcurrentStressKeepsBlocksExclusive) {
  alloc::ScopedMode sm(alloc::PoolAvailable() ? alloc::Mode::kPool
                                              : alloc::Mode::kSystem);
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const int64_t sizes[] = {17, 256, 1000, 4096, 10000};
      for (int i = 0; i < kIters; ++i) {
        const int64_t n = sizes[(t + i) % 5];
        const float tag = static_cast<float>(t * kIters + i);
        Storage s;
        s.assign(n, tag);
        ASSERT_EQ(s[0], tag);
        ASSERT_EQ(s[n - 1], tag);
        Storage s2 = std::move(s);
        ASSERT_EQ(s2[n / 2], tag);
      }
    });
  }
  for (auto& th : threads) th.join();
}

// ---- Determinism golden: pool vs system -------------------------------------

// The zero-fill/full-overwrite contract (tensor/alloc.h) means recycled
// bytes are unobservable, so pooled storage must reproduce the seed's
// std::vector numerics bit for bit. Two epochs of real training on the
// paper model — losses, eval metrics, and every final weight — compared
// between the pool and plain system allocation on every tier × thread
// count. Combined with kernel_property_test's tier golden (all tiers ×
// threads agree under the default pool), this pins the full matrix.
TEST(AllocTest, TrainTwoEpochsGoldenPoolVsSystem) {
  data::SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 120;
  cfg.num_clusters = 6;
  cfg.min_events = 12;
  cfg.max_events = 25;
  cfg.seed = 33;
  data::Dataset ds = data::GenerateSynthetic(cfg);
  data::SplitView split(ds);
  eval::EvalConfig ec;
  ec.max_len = 12;
  eval::Evaluator evaluator(ds, split, ec);

  baselines::ZooConfig zc;
  zc.dim = 16;
  zc.max_len = 12;
  zc.num_interests = 2;

  auto run = [&](alloc::Mode mode, simd::Tier tier, int threads) {
    alloc::ScopedMode sm(mode);
    simd::ScopedTier st(tier);
    train::TrainConfig tc;
    tc.max_epochs = 2;
    tc.batch_size = 32;
    tc.max_len = 12;
    tc.num_threads = threads;
    auto model = baselines::CreateModel("MISSL", ds, zc);
    train::TrainResult r = train::Fit(model.get(), ds, split, evaluator, tc);
    std::vector<float> params;
    for (const Tensor& p : model->Parameters()) {
      params.insert(params.end(), p.data(), p.data() + p.numel());
    }
    return std::make_tuple(r.final_train_loss, r.test.ndcg10, r.test.hr10,
                           std::move(params));
  };

  std::vector<simd::Tier> tiers{simd::Tier::kScalar};
  if (simd::Avx2Available()) tiers.push_back(simd::Tier::kAvx2);

  auto ref = run(alloc::Mode::kPool, simd::Tier::kScalar, 1);
  for (simd::Tier tier : tiers) {
    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE(std::string("system tier=") + simd::TierName(tier) +
                   " threads=" + std::to_string(threads));
      auto got = run(alloc::Mode::kSystem, tier, threads);
      EXPECT_EQ(std::get<0>(ref), std::get<0>(got)) << "final train loss";
      EXPECT_DOUBLE_EQ(std::get<1>(ref), std::get<1>(got)) << "test ndcg10";
      EXPECT_DOUBLE_EQ(std::get<2>(ref), std::get<2>(got)) << "test hr10";
      const auto& pw = std::get<3>(ref);
      const auto& gw = std::get<3>(got);
      ASSERT_EQ(pw.size(), gw.size());
      EXPECT_EQ(std::memcmp(pw.data(), gw.data(), pw.size() * sizeof(float)),
                0)
          << "final parameters differ between pool and system";
    }
  }
}

}  // namespace
}  // namespace missl
