// Tests for forward values and analytic gradients of every tensor op,
// including finite-difference gradient checks over randomized shapes.
#include "tensor/ops.h"

#include <memory>

#include <gtest/gtest.h>

#include "runtime/runtime.h"
#include "tensor/simd.h"
#include "test_util.h"
#include "utils/rng.h"

namespace missl {
namespace {

using testing::ExpectTensorNear;
using testing::GradCheck;

TEST(OpsElementwise, AddSameShape) {
  Tensor a = Tensor::FromData({1, 2}, {2});
  Tensor b = Tensor::FromData({10, 20}, {2});
  ExpectTensorNear(Add(a, b), {11, 22});
}

TEST(OpsElementwise, BroadcastRowVector) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::FromData({10, 20, 30}, {3});
  ExpectTensorNear(Add(a, b), {11, 22, 33, 14, 25, 36});
}

TEST(OpsElementwise, BroadcastColumnVector) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::FromData({100, 200}, {2, 1});
  ExpectTensorNear(Add(a, b), {101, 102, 103, 204, 205, 206});
}

TEST(OpsElementwise, BroadcastScalar) {
  Tensor a = Tensor::FromData({1, 2}, {2});
  Tensor s = Tensor::Scalar(5);
  ExpectTensorNear(Mul(a, s), {5, 10});
}

TEST(OpsElementwise, Broadcast3dAgainst2d) {
  Tensor a = Tensor::Ones({2, 2, 2});
  Tensor b = Tensor::FromData({1, 2, 3, 4}, {2, 2});
  Tensor c = Mul(a, b);
  ExpectTensorNear(c, {1, 2, 3, 4, 1, 2, 3, 4});
}

TEST(OpsElementwise, SubDivValues) {
  Tensor a = Tensor::FromData({6, 8}, {2});
  Tensor b = Tensor::FromData({2, 4}, {2});
  ExpectTensorNear(Sub(a, b), {4, 4});
  ExpectTensorNear(Div(a, b), {3, 2});
}

TEST(OpsElementwise, OperatorsSugar) {
  Tensor a = Tensor::FromData({1, 2}, {2});
  Tensor b = Tensor::FromData({3, 4}, {2});
  ExpectTensorNear(a + b, {4, 6});
  ExpectTensorNear(a - b, {-2, -2});
  ExpectTensorNear(a * b, {3, 8});
  ExpectTensorNear(a / b, {1.0f / 3.0f, 0.5f});
  ExpectTensorNear(a + 1.0f, {2, 3});
  ExpectTensorNear(a * 2.0f, {2, 4});
  ExpectTensorNear(-a, {-1, -2});
}

TEST(OpsElementwise, UnaryValues) {
  Tensor a = Tensor::FromData({-1, 0, 2}, {3});
  ExpectTensorNear(Relu(a), {0, 0, 2});
  ExpectTensorNear(Abs(a), {1, 0, 2});
  ExpectTensorNear(Square(a), {1, 0, 4});
  ExpectTensorNear(Clamp(a, -0.5f, 1.0f), {-0.5f, 0, 1});
  ExpectTensorNear(Sigmoid(Tensor::Scalar(0.0f)), {0.5f});
  ExpectTensorNear(Tanh(Tensor::Scalar(0.0f)), {0.0f});
  ExpectTensorNear(Exp(Tensor::Scalar(0.0f)), {1.0f});
  ExpectTensorNear(Log(Tensor::Scalar(1.0f)), {0.0f});
  ExpectTensorNear(Sqrt(Tensor::Scalar(9.0f)), {3.0f});
  ExpectTensorNear(Pow(Tensor::Scalar(2.0f), 3.0f), {8.0f});
}

TEST(OpsElementwise, GeluMatchesReference) {
  // Reference values from the tanh approximation.
  Tensor a = Tensor::FromData({0.0f, 1.0f, -1.0f}, {3});
  Tensor y = Gelu(a);
  EXPECT_NEAR(y.data()[0], 0.0f, 1e-6f);
  EXPECT_NEAR(y.data()[1], 0.841192f, 1e-4f);
  EXPECT_NEAR(y.data()[2], -0.158808f, 1e-4f);
}

TEST(OpsGrad, BinaryOpsGradCheck) {
  Rng rng(7);
  Tensor a = Tensor::Randn({3, 4}, &rng);
  Tensor b = Tensor::Randn({3, 4}, &rng);
  // Shift b away from zero for Div stability.
  for (int64_t i = 0; i < b.numel(); ++i)
    b.data()[i] = b.data()[i] > 0 ? b.data()[i] + 1.0f : b.data()[i] - 1.0f;
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Add(in[0], in[1])); },
            {a.Clone(), b.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Sub(in[0], in[1])); },
            {a.Clone(), b.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Mul(in[0], in[1])); },
            {a.Clone(), b.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Div(in[0], in[1])); },
            {a.Clone(), b.Clone()});
}

TEST(OpsGrad, BroadcastGradReducesCorrectly) {
  Rng rng(11);
  Tensor a = Tensor::Randn({2, 3}, &rng);
  Tensor b = Tensor::Randn({3}, &rng);
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Mul(in[0], in[1])); },
            {a.Clone(), b.Clone()});
  Tensor c = Tensor::Randn({2, 1}, &rng);
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Mul(in[0], in[1])); },
            {a.Clone(), c.Clone()});
  Tensor d = Tensor::Randn({4, 2, 3}, &rng);
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Add(in[0], in[1])); },
            {d.Clone(), a.Clone()});
}

TEST(OpsGrad, UnaryOpsGradCheck) {
  Rng rng(13);
  Tensor a = Tensor::Randn({2, 5}, &rng);
  // Keep values in smooth regions (away from relu/abs kinks and log domain).
  for (int64_t i = 0; i < a.numel(); ++i) {
    float v = a.data()[i];
    if (std::fabs(v) < 0.2f) a.data()[i] = v < 0 ? v - 0.3f : v + 0.3f;
  }
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Relu(in[0])); },
            {a.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Gelu(in[0])); },
            {a.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Sigmoid(in[0])); },
            {a.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Tanh(in[0])); },
            {a.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Exp(in[0])); },
            {a.Clone()});
  Tensor pos = Tensor::Rand({6}, &rng, 0.5f, 2.0f);
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Log(in[0])); },
            {pos.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Sqrt(in[0])); },
            {pos.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Square(in[0])); },
            {a.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Pow(in[0], 3.0f)); },
            {pos.Clone()});
  // a was nudged away from 0 above, which is also Abs's kink.
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Abs(in[0])); },
            {a.Clone()});
}

TEST(OpsGrad, ScalarOpsGradCheck) {
  Rng rng(14);
  Tensor a = Tensor::Randn({2, 5}, &rng);
  // Composed with Square so the incoming gradient varies per element.
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(AddScalar(in[0], 0.7f)));
      },
      {a.Clone()});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(MulScalar(in[0], -1.6f)));
      },
      {a.Clone()});
  GradCheck(
      [](const std::vector<Tensor>& in) { return Sum(Square(Neg(in[0]))); },
      {a.Clone()});
}

TEST(OpsGrad, ClampGradCheck) {
  // Mix of clamped and pass-through elements, all well away from the
  // lo/hi kinks relative to the finite-difference step.
  Tensor a = Tensor::FromData({-2.0f, -0.5f, 0.1f, 0.6f, 1.5f, 3.0f}, {6});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Clamp(in[0], -0.8f, 0.8f)));
      },
      {a.Clone()});
}

TEST(OpsGrad, DropoutGradCheck) {
  Rng rng(15);
  Tensor a = Tensor::Randn({3, 6}, &rng);
  // A fresh generator per invocation keeps the mask identical across the
  // analytic pass and every finite-difference probe.
  GradCheck(
      [](const std::vector<Tensor>& in) {
        Rng mask_rng(55);
        return Sum(Square(Dropout(in[0], 0.4f, true, &mask_rng)));
      },
      {a.Clone()});
}

TEST(OpsMatmul, MatMul2dValues) {
  Tensor a = Tensor::FromData({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::FromData({5, 6, 7, 8}, {2, 2});
  ExpectTensorNear(MatMul(a, b), {19, 22, 43, 50});
}

TEST(OpsMatmul, MatMulRectangular) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor b = Tensor::FromData({1, 0, 0, 1, 1, 1}, {3, 2});
  ExpectTensorNear(MatMul(a, b), {4, 5, 10, 11});
}

TEST(OpsMatmul, BatchedMatMul) {
  Tensor a = Tensor::FromData({1, 0, 0, 1, 2, 0, 0, 2}, {2, 2, 2});
  Tensor b = Tensor::FromData({1, 2, 3, 4, 1, 2, 3, 4}, {2, 2, 2});
  ExpectTensorNear(MatMul(a, b), {1, 2, 3, 4, 2, 4, 6, 8});
}

TEST(OpsMatmul, BatchedTimesShared2d) {
  Tensor a = Tensor::FromData({1, 0, 0, 1, 2, 0, 0, 2}, {2, 2, 2});
  Tensor b = Tensor::FromData({1, 2, 3, 4}, {2, 2});
  ExpectTensorNear(MatMul(a, b), {1, 2, 3, 4, 2, 4, 6, 8});
}

TEST(OpsMatmul, GradCheckAllForms) {
  Rng rng(17);
  Tensor a2 = Tensor::Randn({3, 4}, &rng);
  Tensor b2 = Tensor::Randn({4, 2}, &rng);
  GradCheck(
      [](const std::vector<Tensor>& in) { return Sum(MatMul(in[0], in[1])); },
      {a2.Clone(), b2.Clone()});
  Tensor a3 = Tensor::Randn({2, 3, 4}, &rng);
  Tensor b3 = Tensor::Randn({2, 4, 2}, &rng);
  GradCheck(
      [](const std::vector<Tensor>& in) { return Sum(MatMul(in[0], in[1])); },
      {a3.Clone(), b3.Clone()});
  GradCheck(
      [](const std::vector<Tensor>& in) { return Sum(MatMul(in[0], in[1])); },
      {a3.Clone(), b2.Clone()});
}

TEST(OpsMatmul, TransposeValuesAndGrad) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  ExpectTensorNear(Transpose(a), {1, 4, 2, 5, 3, 6});
  Rng rng(19);
  Tensor b = Tensor::Randn({2, 3, 4}, &rng);
  Tensor bt = Transpose(b);
  EXPECT_EQ(bt.size(0), 2);
  EXPECT_EQ(bt.size(1), 4);
  EXPECT_EQ(bt.size(2), 3);
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Mul(Transpose(in[0]), Transpose(in[0])));
      },
      {b.Clone()});
}

TEST(OpsShape, ReshapeInferredDim) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  Tensor r = Reshape(a, {3, -1});
  EXPECT_EQ(r.size(0), 3);
  EXPECT_EQ(r.size(1), 2);
  ExpectTensorNear(r, {1, 2, 3, 4, 5, 6});
}

TEST(OpsShape, SliceMiddleDim) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, {2, 3, 2});
  Tensor s = Slice(a, 1, 1, 3);
  EXPECT_EQ(s.size(1), 2);
  ExpectTensorNear(s, {3, 4, 5, 6, 9, 10, 11, 12});
}

TEST(OpsShape, SliceNegativeIndices) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5}, {5});
  ExpectTensorNear(Slice(a, 0, -2, 5), {4, 5});
}

TEST(OpsShape, ConcatDim0AndDim1) {
  Tensor a = Tensor::FromData({1, 2, 3, 4}, {2, 2});
  Tensor b = Tensor::FromData({5, 6}, {1, 2});
  ExpectTensorNear(Concat({a, b}, 0), {1, 2, 3, 4, 5, 6});
  Tensor c = Tensor::FromData({7, 8}, {2, 1});
  ExpectTensorNear(Concat({a, c}, 1), {1, 2, 7, 3, 4, 8});
}

TEST(OpsShape, ShapeOpsGradCheck) {
  Rng rng(23);
  Tensor a = Tensor::Randn({2, 3}, &rng);
  Tensor b = Tensor::Randn({2, 2}, &rng);
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Reshape(in[0], {3, 2})));
      },
      {a.Clone()});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Slice(in[0], 1, 0, 2)));
      },
      {a.Clone()});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Concat({in[0], in[1]}, 1)));
      },
      {a.Clone(), b.Clone()});
}

TEST(OpsShape, IndexSelect0ValuesAndGrad) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {3, 2});
  Tensor s = IndexSelect0(a, {2, 0, 2});
  ExpectTensorNear(s, {5, 6, 1, 2, 5, 6});
  // Duplicated rows must accumulate gradient.
  Tensor w = Tensor::FromData({1, 2, 3, 4, 5, 6}, {3, 2}, true);
  Sum(Square(IndexSelect0(w, {2, 0, 2}))).Backward();
  ExpectTensorNear(w.grad(), {2, 4, 0, 0, 20, 24});
}

TEST(OpsShape, EmbeddingLookupBasics) {
  Tensor w = Tensor::FromData({1, 2, 3, 4, 5, 6}, {3, 2});
  Tensor e = EmbeddingLookup(w, {0, 2, -1, 1}, {2, 2});
  EXPECT_EQ(e.dim(), 3);
  ExpectTensorNear(e, {1, 2, 5, 6, 0, 0, 3, 4});
}

TEST(OpsShape, EmbeddingLookupGradSkipsPadding) {
  Tensor w = Tensor::FromData({1, 2, 3, 4}, {2, 2}, true);
  Sum(Square(EmbeddingLookup(w, {1, -1, 1}, {3}))).Backward();
  ExpectTensorNear(w.grad(), {0, 0, 12, 16});
}

TEST(OpsReduce, SumMeanAll) {
  Tensor a = Tensor::FromData({1, 2, 3, 4}, {2, 2});
  EXPECT_FLOAT_EQ(Sum(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 2.5f);
}

TEST(OpsReduce, SumAlongDims) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  ExpectTensorNear(Sum(a, 0, false), {5, 7, 9});
  ExpectTensorNear(Sum(a, 1, false), {6, 15});
  Tensor k = Sum(a, 1, true);
  EXPECT_EQ(k.size(0), 2);
  EXPECT_EQ(k.size(1), 1);
}

TEST(OpsReduce, MeanAlongDim) {
  Tensor a = Tensor::FromData({2, 4, 6, 8}, {2, 2});
  ExpectTensorNear(Mean(a, 1, false), {3, 7});
}

TEST(OpsReduce, MaxValuesArgmaxAndGrad) {
  Tensor a = Tensor::FromData({1, 5, 3, 9, 2, 4}, {2, 3});
  std::vector<int64_t> arg;
  Tensor m = Max(a, 1, false, &arg);
  ExpectTensorNear(m, {5, 9});
  EXPECT_EQ(arg[0], 1);
  EXPECT_EQ(arg[1], 0);
  Tensor w = Tensor::FromData({1, 5, 3, 9, 2, 4}, {2, 3}, true);
  Sum(Max(w, 1, false)).Backward();
  ExpectTensorNear(w.grad(), {0, 1, 0, 1, 0, 0});
}

TEST(OpsReduce, ReduceGradCheck) {
  Rng rng(29);
  Tensor a = Tensor::Randn({2, 3, 2}, &rng);
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Sum(in[0], 1, false)));
      },
      {a.Clone()});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Mean(in[0], 2, true)));
      },
      {a.Clone()});
  // Full-tensor Mean (scalar output).
  GradCheck(
      [](const std::vector<Tensor>& in) { return Mean(Square(in[0])); },
      {a.Clone()});
}

TEST(OpsReduce, MaxGradCheck) {
  // Values separated by far more than the finite-difference step so the
  // argmax cannot flip mid-check.
  Tensor a = Tensor::FromData({0.1f, 1.2f, -0.9f, 2.5f, 0.4f, -1.8f}, {2, 3});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Max(in[0], 1, false)));
      },
      {a.Clone()});
}

TEST(OpsNN, SoftmaxRowsSumToOne) {
  Rng rng(31);
  Tensor a = Tensor::Randn({4, 7}, &rng, 3.0f);
  Tensor s = Softmax(a);
  for (int64_t r = 0; r < 4; ++r) {
    float sum = 0;
    for (int64_t i = 0; i < 7; ++i) sum += s.data()[r * 7 + i];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsNN, SoftmaxNumericallyStableWithLargeInputs) {
  Tensor a = Tensor::FromData({1000.0f, 1001.0f}, {1, 2});
  Tensor s = Softmax(a);
  EXPECT_NEAR(s.data()[0] + s.data()[1], 1.0f, 1e-5f);
  EXPECT_GT(s.data()[1], s.data()[0]);
}

TEST(OpsNN, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(37);
  Tensor a = Tensor::Randn({3, 5}, &rng);
  Tensor ls = LogSoftmax(a);
  Tensor s = Softmax(a);
  for (int64_t i = 0; i < a.numel(); ++i)
    EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-4f);
}

TEST(OpsNN, SoftmaxGradCheck) {
  Rng rng(41);
  Tensor a = Tensor::Randn({3, 4}, &rng);
  Tensor w = Tensor::Randn({3, 4}, &rng);  // weights make grad non-trivial
  GradCheck(
      [&w](const std::vector<Tensor>& in) { return Sum(Mul(Softmax(in[0]), w)); },
      {a.Clone()});
  GradCheck(
      [&w](const std::vector<Tensor>& in) {
        return Sum(Mul(LogSoftmax(in[0]), w));
      },
      {a.Clone()});
}

TEST(OpsNN, LayerNormNormalizesRows) {
  Rng rng(43);
  Tensor x = Tensor::Randn({5, 8}, &rng, 4.0f);
  Tensor g = Tensor::Ones({8});
  Tensor b = Tensor::Zeros({8});
  Tensor y = LayerNorm(x, g, b);
  for (int64_t r = 0; r < 5; ++r) {
    float mu = 0, var = 0;
    for (int64_t i = 0; i < 8; ++i) mu += y.data()[r * 8 + i];
    mu /= 8;
    for (int64_t i = 0; i < 8; ++i) {
      float c = y.data()[r * 8 + i] - mu;
      var += c * c;
    }
    var /= 8;
    EXPECT_NEAR(mu, 0.0f, 1e-4f);
    EXPECT_NEAR(var, 1.0f, 1e-2f);
  }
}

TEST(OpsNN, LayerNormGradCheck) {
  Rng rng(47);
  Tensor x = Tensor::Randn({3, 6}, &rng);
  Tensor g = Tensor::Rand({6}, &rng, 0.5f, 1.5f);
  Tensor b = Tensor::Randn({6}, &rng);
  Tensor w = Tensor::Randn({3, 6}, &rng);
  GradCheck(
      [&w](const std::vector<Tensor>& in) {
        return Sum(Mul(LayerNorm(in[0], in[1], in[2]), w));
      },
      {x.Clone(), g.Clone(), b.Clone()}, 1e-2f, 8e-2f, 2e-3f);
}

TEST(OpsNN, DropoutIdentityWhenEval) {
  Rng rng(53);
  Tensor x = Tensor::Randn({10}, &rng);
  Tensor y = Dropout(x, 0.5f, /*training=*/false, &rng);
  ExpectTensorNear(y, x.ToVector());
}

TEST(OpsNN, DropoutZeroesAndRescales) {
  Rng rng(59);
  Tensor x = Tensor::Ones({1000});
  Tensor y = Dropout(x, 0.5f, true, &rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    if (y.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.data()[i], 2.0f, 1e-6f);
    }
  }
  EXPECT_GT(zeros, 400);
  EXPECT_LT(zeros, 600);
}

TEST(OpsNN, CrossEntropyKnownValue) {
  // Uniform logits over 4 classes -> loss = log(4).
  Tensor logits = Tensor::Zeros({2, 4});
  Tensor loss = CrossEntropyLoss(logits, {0, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
}

TEST(OpsNN, CrossEntropyIgnoresNegativeTargets) {
  Tensor logits = Tensor::Zeros({3, 2});
  logits.data()[0] = 10.0f;  // row 0 confidently class 0
  Tensor loss = CrossEntropyLoss(logits, {0, -1, -1});
  EXPECT_LT(loss.item(), 1e-3f);
}

TEST(OpsNN, CrossEntropyGradCheck) {
  Rng rng(61);
  Tensor logits = Tensor::Randn({4, 5}, &rng);
  std::vector<int32_t> targets = {1, 4, -1, 0};
  GradCheck(
      [&targets](const std::vector<Tensor>& in) {
        return CrossEntropyLoss(in[0], targets);
      },
      {logits.Clone()});
}

TEST(OpsNN, L2NormalizeUnitNorm) {
  Tensor x = Tensor::FromData({3, 4, 0, 0.5}, {2, 2});
  Tensor y = L2Normalize(x);
  EXPECT_NEAR(y.data()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(y.data()[1], 0.8f, 1e-5f);
  EXPECT_NEAR(y.data()[2], 0.0f, 1e-5f);
  EXPECT_NEAR(y.data()[3], 1.0f, 1e-5f);
}

TEST(OpsNN, L2NormalizeGradCheck) {
  Rng rng(67);
  Tensor x = Tensor::Rand({3, 4}, &rng, 0.5f, 2.0f);
  Tensor w = Tensor::Randn({3, 4}, &rng);
  GradCheck(
      [&w](const std::vector<Tensor>& in) {
        return Sum(Mul(L2Normalize(in[0]), w));
      },
      {x.Clone()});
}

// Gradchecks under a multi-threaded runtime: the analytic backward passes
// run through ParallelFor with 4 threads while the finite-difference probes
// re-run the forward the same way. Covers the reduction-style backwards
// (scatter-add, matmul dB) whose owner-computes partitioning is easiest to
// get wrong.
TEST(OpsThreaded, EmbeddingScatterAddGradCheckWithDuplicates) {
  runtime::ScopedNumThreads t(4);
  Rng rng(7);
  // Duplicate ids force several contributions into the same weight row.
  std::vector<int32_t> ids = {2, 0, 2, 5, 2, -1, 0, 5};
  GradCheck(
      [ids](const std::vector<Tensor>& in) {
        return Sum(EmbeddingLookup(in[0], ids,
                                   {static_cast<int64_t>(ids.size())}));
      },
      {Tensor::Randn({6, 5}, &rng)});
}

TEST(OpsThreaded, IndexSelect0GradCheckWithDuplicates) {
  runtime::ScopedNumThreads t(4);
  Rng rng(8);
  std::vector<int32_t> idx = {1, 1, 3, 0, 1, 3};
  GradCheck(
      [idx](const std::vector<Tensor>& in) {
        return Sum(Square(IndexSelect0(in[0], idx)));
      },
      {Tensor::Randn({4, 6}, &rng)});
}

TEST(OpsThreaded, BatchedMatMulGradCheck) {
  runtime::ScopedNumThreads t(4);
  Rng rng(9);
  GradCheck(
      [](const std::vector<Tensor>& in) { return Sum(MatMul(in[0], in[1])); },
      {Tensor::Randn({3, 4, 5}, &rng), Tensor::Randn({3, 5, 2}, &rng)});
  // Shared right operand: dB accumulates across the batch dimension too.
  GradCheck(
      [](const std::vector<Tensor>& in) { return Sum(MatMul(in[0], in[1])); },
      {Tensor::Randn({3, 4, 5}, &rng), Tensor::Randn({5, 2}, &rng)});
}

TEST(OpsThreaded, SoftmaxGradCheck) {
  runtime::ScopedNumThreads t(4);
  Rng rng(10);
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Softmax(in[0])));
      },
      {Tensor::Randn({6, 9}, &rng)});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(LogSoftmax(in[0])));
      },
      {Tensor::Randn({6, 9}, &rng)});
}

// Gradchecks on the SIMD tier: the same analytic-vs-finite-difference
// probes with the AVX2 kernels active (skipped where unavailable), composed
// with a 4-thread runtime so tier × threading interactions are covered.
// Bitwise tier identity is enforced separately by kernel_property_test;
// these verify the SIMD path's gradients are also *correct*, not just
// consistent.
class OpsSimd : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::Avx2Available()) {
      GTEST_SKIP() << "AVX2 tier not compiled in or not supported";
    }
    tier_ = std::make_unique<simd::ScopedTier>(simd::Tier::kAvx2);
    threads_ = std::make_unique<runtime::ScopedNumThreads>(4);
  }
  std::unique_ptr<simd::ScopedTier> tier_;
  std::unique_ptr<runtime::ScopedNumThreads> threads_;
};

TEST_F(OpsSimd, BinaryOpsGradCheck) {
  Rng rng(41);
  Tensor a = Tensor::Randn({3, 9}, &rng);
  Tensor b = Tensor::Rand({3, 9}, &rng, 0.5f, 2.0f);
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Add(in[0], in[1])); },
            {a.Clone(), b.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Sub(in[0], in[1])); },
            {a.Clone(), b.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Mul(in[0], in[1])); },
            {a.Clone(), b.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Div(in[0], in[1])); },
            {a.Clone(), b.Clone()});
}

TEST_F(OpsSimd, ScalarAndReluGradCheck) {
  Rng rng(42);
  Tensor a = Tensor::Randn({2, 17}, &rng);
  for (int64_t i = 0; i < a.numel(); ++i) {
    float v = a.data()[i];
    if (std::fabs(v) < 0.2f) a.data()[i] = v < 0 ? v - 0.3f : v + 0.3f;
  }
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Relu(in[0])); },
            {a.Clone()});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(AddScalar(in[0], -0.4f)));
      },
      {a.Clone()});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(MulScalar(in[0], 2.3f)));
      },
      {a.Clone()});
}

TEST_F(OpsSimd, MatMulAllFormsGradCheck) {
  Rng rng(43);
  GradCheck(
      [](const std::vector<Tensor>& in) { return Sum(MatMul(in[0], in[1])); },
      {Tensor::Randn({3, 5}, &rng), Tensor::Randn({5, 9}, &rng)});
  GradCheck(
      [](const std::vector<Tensor>& in) { return Sum(MatMul(in[0], in[1])); },
      {Tensor::Randn({2, 3, 4}, &rng), Tensor::Randn({2, 4, 9}, &rng)});
  GradCheck(
      [](const std::vector<Tensor>& in) { return Sum(MatMul(in[0], in[1])); },
      {Tensor::Randn({2, 3, 4}, &rng), Tensor::Randn({4, 9}, &rng)});
}

TEST_F(OpsSimd, NnOpsGradCheck) {
  Rng rng(44);
  // Moderate logit scale keeps the softmax away from saturation, where
  // float32 finite differences get too noisy for the default tolerance.
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Softmax(in[0])));
      },
      {Tensor::Randn({4, 9}, &rng, 0.5f)});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(LogSoftmax(in[0])));
      },
      {Tensor::Randn({4, 9}, &rng, 0.5f)});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(LayerNorm(in[0], in[1], in[2])));
      },
      {Tensor::Randn({3, 9}, &rng), Tensor::Rand({9}, &rng, 0.5f, 1.5f),
       Tensor::Randn({9}, &rng)});
  std::vector<int32_t> targets = {2, 0, -1, 4};
  GradCheck(
      [targets](const std::vector<Tensor>& in) {
        return CrossEntropyLoss(in[0], targets);
      },
      {Tensor::Randn({4, 9}, &rng)});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(L2Normalize(in[0])));
      },
      {Tensor::Randn({3, 9}, &rng)});
}

TEST(OpsDeath, MatMulDimMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2, 2});
  EXPECT_DEATH(MatMul(a, b), "inner-dim");
}

TEST(OpsDeath, IncompatibleBroadcastAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2, 4});
  EXPECT_DEATH(Add(a, b), "broadcast");
}

TEST(OpsDeath, ConcatMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2, 4});
  EXPECT_DEATH(Concat({a, b}, 0), "mismatch");
}

// Property sweep: Sum along each dim equals manual accumulation, for a
// variety of shapes.
class SumDimProperty : public ::testing::TestWithParam<int> {};

TEST_P(SumDimProperty, MatchesNaive) {
  Rng rng(100 + GetParam());
  Shape shape = {2 + GetParam() % 3, 3, 2 + GetParam() % 2};
  Tensor a = Tensor::Randn(shape, &rng);
  for (int64_t dim = 0; dim < 3; ++dim) {
    Tensor s = Sum(a, dim, false);
    // naive
    std::vector<float> expect(static_cast<size_t>(s.numel()), 0.0f);
    for (int64_t i = 0; i < shape[0]; ++i)
      for (int64_t j = 0; j < shape[1]; ++j)
        for (int64_t k = 0; k < shape[2]; ++k) {
          float v = a.at({i, j, k});
          int64_t oi;
          if (dim == 0) {
            oi = j * shape[2] + k;
          } else if (dim == 1) {
            oi = i * shape[2] + k;
          } else {
            oi = i * shape[1] + j;
          }
          expect[static_cast<size_t>(oi)] += v;
        }
    for (size_t i = 0; i < expect.size(); ++i)
      EXPECT_NEAR(s.data()[i], expect[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SumDimProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace missl
