// Kernel correctness harness for the SIMD tier (tensor/simd.h).
//
// The tier contract is "tiers change wall clock, never numbers": for every
// op with a vectorized path, scalar vs AVX2 vs threaded×AVX2 execution must
// produce bitwise-identical tensors — forward AND backward — at any shape,
// including ragged tails narrower than one vector width and size-0/1 edges.
// This file enforces that with randomized shape sweeps (memcmp, not
// EXPECT_NEAR), runs gradcheck on the SIMD tier, pins the tier
// dispatch/gauge plumbing, checks the contiguity guard, and locks the whole
// stack down with a seeded 2-epoch end-to-end training golden compared
// bitwise across every tier × thread-count combination.
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/zoo.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "tensor/alloc.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "test_util.h"
#include "train/trainer.h"

namespace missl {
namespace {

using simd::Tier;
using testing::GradCheck;

std::vector<Tier> TiersToTest() {
  std::vector<Tier> tiers{Tier::kScalar};
  if (simd::Avx2Available()) tiers.push_back(Tier::kAvx2);
  return tiers;
}

// Mixed-sign data with an optional fraction of exact zeros (exercises the
// matmul zero-skip branch, which must behave identically on every tier).
std::vector<float> RandomData(int64_t n, Rng* rng, float zero_frac = 0.0f) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) {
    x = rng->Uniform() < zero_frac ? 0.0f : rng->Uniform(-2.0f, 2.0f);
  }
  return v;
}

struct CaseResult {
  std::vector<float> out;
  std::vector<std::vector<float>> grads;
};

// Runs `fn` over fresh tensors built from `data`/`shapes` under the given
// tier and thread count; captures the forward output and (optionally) every
// input's gradient after backprop from Sum(out).
CaseResult RunOpCase(Tier tier, int threads,
                     const std::function<Tensor(std::vector<Tensor>&)>& fn,
                     const std::vector<std::vector<float>>& data,
                     const std::vector<Shape>& shapes, bool backward) {
  simd::ScopedTier st(tier);
  runtime::ScopedNumThreads snt(threads);
  std::vector<Tensor> inputs;
  for (size_t i = 0; i < data.size(); ++i) {
    inputs.push_back(Tensor::FromData(data[i], shapes[i], backward));
  }
  Tensor out = fn(inputs);
  CaseResult res;
  res.out = out.ToVector();
  if (backward) {
    Tensor loss = out.numel() == 1 ? out : Sum(out);
    loss.Backward();
    for (Tensor& in : inputs) {
      res.grads.push_back(in.has_grad() ? in.impl()->grad.ToVector()
                                        : std::vector<float>());
    }
  }
  return res;
}

void ExpectBitwise(const std::vector<float>& want,
                   const std::vector<float>& got, const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  if (!want.empty()) {
    EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                             want.size() * sizeof(float)))
        << what << ": bitwise mismatch";
  }
}

// The sweep core: reference run on (scalar, 1 thread), then every tier ×
// {1, 2, 4} threads must reproduce it bit for bit.
void SweepOp(const std::string& name,
             const std::function<Tensor(std::vector<Tensor>&)>& fn,
             const std::vector<std::vector<float>>& data,
             const std::vector<Shape>& shapes, bool backward = true) {
  CaseResult ref = RunOpCase(Tier::kScalar, 1, fn, data, shapes, backward);
  for (Tier tier : TiersToTest()) {
    for (int threads : {1, 2, 4}) {
      SCOPED_TRACE(name + " tier=" + simd::TierName(tier) +
                   " threads=" + std::to_string(threads));
      CaseResult got = RunOpCase(tier, threads, fn, data, shapes, backward);
      ExpectBitwise(ref.out, got.out, "forward");
      ASSERT_EQ(ref.grads.size(), got.grads.size());
      for (size_t i = 0; i < ref.grads.size(); ++i) {
        ExpectBitwise(ref.grads[i], got.grads[i],
                      "grad of input " + std::to_string(i));
      }
    }
  }
}

// ---- Tier dispatch ----------------------------------------------------------

TEST(SimdTierTest, ScalarAlwaysAvailableAndNamed) {
  EXPECT_STREQ("scalar", simd::TierName(Tier::kScalar));
  EXPECT_STREQ("avx2", simd::TierName(Tier::kAvx2));
  simd::ScopedTier st(Tier::kScalar);
  EXPECT_EQ(Tier::kScalar, simd::ActiveTier());
}

TEST(SimdTierTest, ScopedTierRestoresPrevious) {
  Tier before = simd::ActiveTier();
  {
    simd::ScopedTier st(Tier::kScalar);
    EXPECT_EQ(Tier::kScalar, simd::ActiveTier());
    if (simd::Avx2Available()) {
      simd::ScopedTier inner(Tier::kAvx2);
      EXPECT_EQ(Tier::kAvx2, simd::ActiveTier());
    }
    EXPECT_EQ(Tier::kScalar, simd::ActiveTier());
  }
  EXPECT_EQ(before, simd::ActiveTier());
}

TEST(SimdTierTest, GaugeReportsActiveTier) {
  obs::SetMetricsEnabled(true);
  auto& gauge = obs::MetricsRegistry::Global().GetGauge("simd.tier");
  Tier before = simd::ActiveTier();
  simd::SetTier(Tier::kScalar);
  EXPECT_EQ(0, gauge.value());
  if (simd::Avx2Available()) {
    simd::SetTier(Tier::kAvx2);
    EXPECT_EQ(1, gauge.value());
  }
  simd::SetTier(before);
  obs::SetMetricsEnabled(false);
}

// ---- Property-based shape sweeps -------------------------------------------

// Elementwise binary ops, same-shape fast path. Shapes deliberately include
// sub-vector-width (n < 8), exact multiples, n % 8 tails, and size-0/1.
TEST(KernelPropertyTest, ElementwiseBinarySweep) {
  Rng rng;
  rng.Seed(101);
  const std::vector<Shape> shapes = {{0},      {1},      {7},     {8},
                                     {9},      {3, 5},   {4, 8},  {2, 17},
                                     {5, 33},  {2, 3, 20}};
  struct BinCase {
    const char* name;
    Tensor (*op)(const Tensor&, const Tensor&);
  };
  const BinCase cases[] = {
      {"Add", Add}, {"Sub", Sub}, {"Mul", Mul}, {"Div", Div}};
  for (const Shape& s : shapes) {
    int64_t n = NumElements(s);
    std::vector<float> a = RandomData(n, &rng);
    // Keep divisors away from zero so Div stays finite.
    std::vector<float> b(static_cast<size_t>(n));
    for (float& x : b) {
      x = rng.Uniform(0.5f, 2.5f) * (rng.Bernoulli(0.5f) ? 1.0f : -1.0f);
    }
    for (const BinCase& c : cases) {
      SweepOp(std::string(c.name) + " " + ShapeToString(s),
              [op = c.op](std::vector<Tensor>& in) { return op(in[0], in[1]); },
              {a, b}, {s, s}, /*backward=*/n > 0);
    }
  }
}

// The broadcast (different-shape) path has no vector kernel; it must still
// agree with itself across tiers and threads (i.e. stay untouched).
TEST(KernelPropertyTest, ElementwiseBroadcastSweep) {
  Rng rng;
  rng.Seed(202);
  std::vector<float> a = RandomData(6 * 9, &rng);
  std::vector<float> b = RandomData(9, &rng);
  SweepOp("Add broadcast [6,9]+[9]",
          [](std::vector<Tensor>& in) { return Add(in[0], in[1]); }, {a, b},
          {{6, 9}, {9}});
  SweepOp("Mul broadcast [6,9]*[9]",
          [](std::vector<Tensor>& in) { return Mul(in[0], in[1]); }, {a, b},
          {{6, 9}, {9}});
}

TEST(KernelPropertyTest, ElementwiseUnarySweep) {
  Rng rng;
  rng.Seed(303);
  const std::vector<Shape> shapes = {{0},     {1},    {7},    {8},
                                     {15},    {16},   {17},   {3, 11},
                                     {2, 40}, {129}};
  for (const Shape& s : shapes) {
    int64_t n = NumElements(s);
    std::vector<float> a = RandomData(n, &rng, /*zero_frac=*/0.1f);
    SweepOp("Relu " + ShapeToString(s),
            [](std::vector<Tensor>& in) { return Relu(in[0]); }, {a}, {s},
            n > 0);
    SweepOp("AddScalar " + ShapeToString(s),
            [](std::vector<Tensor>& in) { return AddScalar(in[0], 0.37f); },
            {a}, {s}, n > 0);
    SweepOp("MulScalar " + ShapeToString(s),
            [](std::vector<Tensor>& in) { return MulScalar(in[0], -1.7f); },
            {a}, {s}, n > 0);
    SweepOp("Neg " + ShapeToString(s),
            [](std::vector<Tensor>& in) { return Neg(in[0]); }, {a}, {s},
            n > 0);
  }
}

// MatMul: output-column counts sweep across the 32-wide register-blocked
// path, the 8-wide path, and the scalar tail — plus batched and shared-B
// variants. ~20% exact zeros in A exercise the zero-skip branch.
TEST(KernelPropertyTest, MatMulSweep) {
  Rng rng;
  rng.Seed(404);
  struct Dims {
    int64_t m, k, n;
  };
  const Dims dims[] = {{1, 1, 1},  {2, 3, 1},  {3, 4, 7},   {4, 5, 8},
                       {5, 6, 9},  {3, 8, 31}, {2, 7, 32},  {3, 5, 33},
                       {4, 9, 40}, {2, 16, 67}};
  for (const Dims& d : dims) {
    std::vector<float> a = RandomData(d.m * d.k, &rng, /*zero_frac=*/0.2f);
    std::vector<float> b = RandomData(d.k * d.n, &rng);
    SweepOp("MatMul [" + std::to_string(d.m) + "," + std::to_string(d.k) +
                "]x[" + std::to_string(d.k) + "," + std::to_string(d.n) + "]",
            [](std::vector<Tensor>& in) { return MatMul(in[0], in[1]); },
            {a, b}, {{d.m, d.k}, {d.k, d.n}});
  }
  // Batched and shared-right-operand forms.
  const int64_t bt = 3, m = 4, k = 5, n = 33;
  std::vector<float> a3 = RandomData(bt * m * k, &rng, 0.2f);
  std::vector<float> b3 = RandomData(bt * k * n, &rng);
  std::vector<float> b2 = RandomData(k * n, &rng);
  SweepOp("MatMul batched",
          [](std::vector<Tensor>& in) { return MatMul(in[0], in[1]); },
          {a3, b3}, {{bt, m, k}, {bt, k, n}});
  SweepOp("MatMul shared-B",
          [](std::vector<Tensor>& in) { return MatMul(in[0], in[1]); },
          {a3, b2}, {{bt, m, k}, {k, n}});
}

TEST(KernelPropertyTest, SoftmaxFamilySweep) {
  Rng rng;
  rng.Seed(505);
  const std::vector<Shape> shapes = {{1, 1},  {1, 7},  {3, 8},  {4, 9},
                                     {2, 33}, {5, 17}, {2, 3, 11}};
  for (const Shape& s : shapes) {
    int64_t n = NumElements(s);
    std::vector<float> a = RandomData(n, &rng);
    SweepOp("Softmax " + ShapeToString(s),
            [](std::vector<Tensor>& in) { return Softmax(in[0]); }, {a}, {s});
    SweepOp("LogSoftmax " + ShapeToString(s),
            [](std::vector<Tensor>& in) { return LogSoftmax(in[0]); }, {a},
            {s});
    SweepOp("L2Normalize " + ShapeToString(s),
            [](std::vector<Tensor>& in) { return L2Normalize(in[0]); }, {a},
            {s});
  }
}

TEST(KernelPropertyTest, LayerNormSweep) {
  Rng rng;
  rng.Seed(606);
  const std::vector<Shape> shapes = {{1, 1},  {2, 7},  {3, 8},
                                     {4, 9},  {2, 33}, {3, 2, 17}};
  for (const Shape& s : shapes) {
    int64_t d = s.back();
    std::vector<float> x = RandomData(NumElements(s), &rng);
    std::vector<float> gamma = RandomData(d, &rng);
    std::vector<float> beta = RandomData(d, &rng);
    SweepOp("LayerNorm " + ShapeToString(s),
            [](std::vector<Tensor>& in) {
              return LayerNorm(in[0], in[1], in[2]);
            },
            {x, gamma, beta}, {s, {d}, {d}});
  }
}

TEST(KernelPropertyTest, CrossEntropySweep) {
  Rng rng;
  rng.Seed(707);
  for (int64_t c : {1, 7, 8, 9, 33, 50}) {
    const int64_t bsz = 5;
    std::vector<float> logits = RandomData(bsz * c, &rng);
    std::vector<int32_t> targets;
    for (int64_t r = 0; r < bsz; ++r) {
      // Mix in an ignored (-1) target to cover that branch too.
      targets.push_back(r == 2 ? -1
                               : static_cast<int32_t>(rng.UniformInt(
                                     static_cast<uint64_t>(c))));
    }
    SweepOp("CrossEntropy C=" + std::to_string(c),
            [targets](std::vector<Tensor>& in) {
              return CrossEntropyLoss(in[0], targets);
            },
            {logits}, {{bsz, c}});
  }
}

// ---- Gradcheck on the SIMD tier --------------------------------------------

TEST(KernelPropertyTest, GradcheckOnSimdTier) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 tier not available";
  simd::ScopedTier st(Tier::kAvx2);
  Rng rng;
  rng.Seed(808);
  Tensor a = Tensor::Rand({3, 9}, &rng, -1.0f, 1.0f);
  Tensor b = Tensor::Rand({3, 9}, &rng, 0.5f, 1.5f);
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Add(in[0], in[1])); },
            {a.Clone(), b.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Mul(in[0], in[1])); },
            {a.Clone(), b.Clone()});
  GradCheck([](const std::vector<Tensor>& in) { return Sum(Div(in[0], in[1])); },
            {a.Clone(), b.Clone()});
  GradCheck(
      [](const std::vector<Tensor>& in) { return Sum(MulScalar(in[0], -1.3f)); },
      {a.Clone()});
  Tensor ma = Tensor::Rand({4, 5}, &rng, -1.0f, 1.0f);
  Tensor mb = Tensor::Rand({5, 9}, &rng, -1.0f, 1.0f);
  GradCheck(
      [](const std::vector<Tensor>& in) { return Sum(MatMul(in[0], in[1])); },
      {ma, mb});
  Tensor x = Tensor::Rand({3, 9}, &rng, -1.0f, 1.0f);
  Tensor gamma = Tensor::Rand({9}, &rng, 0.5f, 1.5f);
  Tensor beta = Tensor::Rand({9}, &rng, -0.5f, 0.5f);
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(LayerNorm(in[0], in[1], in[2])));
      },
      {x, gamma, beta});
  Tensor s = Tensor::Rand({2, 9}, &rng, -1.0f, 1.0f);
  GradCheck(
      [](const std::vector<Tensor>& in) { return Sum(Square(Softmax(in[0]))); },
      {s.Clone()});
  GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(LogSoftmax(in[0])));
      },
      {s.Clone()});
}

// ---- Contiguity guard -------------------------------------------------------

// A hand-assembled impl whose storage does not match its shape simulates the
// strided/transposed views this library does not support; kernels must
// refuse it instead of reading the wrong elements.
TEST(KernelPropertyTest, NonContiguousInputIsRejected) {
  Tensor a = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_TRUE(a.IsContiguous());
  a.impl()->shape = {3, 3};  // storage still holds 6 floats
  EXPECT_FALSE(a.IsContiguous());
  Tensor b = Tensor::Ones({3, 2});
  EXPECT_DEATH(MatMul(a, b), "contiguous");
  EXPECT_DEATH(Add(a, Tensor::Ones({3, 3})), "contiguous");
  EXPECT_DEATH(Softmax(a), "contiguous");
  EXPECT_DEATH(LayerNorm(a, Tensor::Ones({3}), Tensor::Zeros({3})),
               "contiguous");
}

// Transpose materializes a dense copy, so its output is contiguous and safe
// to feed the kernels; the result must match a hand-computed product.
TEST(KernelPropertyTest, TransposedInputIsDenseAndMatches) {
  Rng rng;
  rng.Seed(909);
  Tensor a = Tensor::Rand({3, 4}, &rng, -1.0f, 1.0f);
  Tensor at = Transpose(a);
  EXPECT_TRUE(at.IsContiguous());
  Tensor b = Tensor::Rand({3, 9}, &rng, -1.0f, 1.0f);
  Tensor out = MatMul(at, b);  // [4,3] x [3,9]
  for (Tier tier : TiersToTest()) {
    simd::ScopedTier st(tier);
    Tensor again = MatMul(Transpose(a), b);
    ExpectBitwise(out.ToVector(), again.ToVector(),
                  std::string("transposed matmul on ") +
                      simd::TierName(tier));
  }
}

// ---- Pooled-storage alignment and the AVX2 aligned-load fast path -----------

// The allocator contract the AVX2 tier's vmovaps fast path rests on: every
// tensor buffer is 32-byte aligned, in pool AND system mode (tensor/alloc.h
// kAlignment). A violation here would make the aligned loads fault.
TEST(KernelPropertyTest, TensorBuffersAre32ByteAligned) {
  Rng rng(4242);
  for (alloc::Mode mode : {alloc::Mode::kPool, alloc::Mode::kSystem}) {
    alloc::ScopedMode sm(mode);
    for (int64_t n : {1, 7, 8, 9, 16, 33, 100, 1000, 4097}) {
      Tensor t = Tensor::Rand({n}, &rng);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) % 32, 0u)
          << "mode=" << alloc::ModeName(alloc::ActiveMode()) << " n=" << n;
      t.set_requires_grad(true);
      Sum(t).Backward();
      EXPECT_EQ(reinterpret_cast<uintptr_t>(t.impl()->grad.data()) % 32, 0u)
          << "grad buffer, mode=" << alloc::ModeName(alloc::ActiveMode())
          << " n=" << n;
    }
  }
}

// The aligned-load fast path must be invisible in the numbers: loads and
// stores carry no rounding, so vmovaps vs vmovups sequences are bitwise
// identical. Sweep shapes whose row widths hit both the aligned path
// (multiples of 8 floats keep 32-byte alignment row to row) and the
// unaligned fallback (odd widths break it mid-tensor), forward and
// backward, comparing pool against system storage on every tier.
TEST(KernelPropertyTest, AlignedFastPathMatchesUnalignedAcrossModes) {
  Rng rng(7575);
  const std::vector<Shape> shapes = {{4, 8}, {4, 16}, {3, 7}, {5, 9},
                                     {2, 3, 8}, {2, 3, 5}, {1, 64}, {6, 1}};
  for (const Shape& shape : shapes) {
    const int64_t n = NumElements(shape);
    const auto a = RandomData(n, &rng, 0.1f);
    const auto b = RandomData(n, &rng, 0.1f);
    auto run_all = [&](alloc::Mode mode, Tier tier) {
      alloc::ScopedMode sm(mode);
      std::vector<CaseResult> results;
      const std::vector<std::vector<float>> data1 = {a};
      const std::vector<std::vector<float>> data2 = {a, b};
      const std::vector<Shape> shapes1 = {shape};
      const std::vector<Shape> shapes2 = {shape, shape};
      results.push_back(RunOpCase(
          tier, 1,
          [&](std::vector<Tensor>& in) { return Add(in[0], in[1]); }, data2,
          shapes2, true));
      results.push_back(RunOpCase(
          tier, 1,
          [&](std::vector<Tensor>& in) { return Mul(in[0], in[1]); }, data2,
          shapes2, true));
      results.push_back(RunOpCase(
          tier, 1, [&](std::vector<Tensor>& in) { return Relu(in[0]); },
          data1, shapes1, true));
      results.push_back(RunOpCase(
          tier, 1,
          [&](std::vector<Tensor>& in) { return MulScalar(in[0], 1.7f); },
          data1, shapes1, true));
      results.push_back(RunOpCase(
          tier, 1,
          [&](std::vector<Tensor>& in) { return Softmax(in[0]); }, data1,
          shapes1, true));
      return results;
    };
    for (Tier tier : TiersToTest()) {
      auto pool = run_all(alloc::Mode::kPool, tier);
      auto system = run_all(alloc::Mode::kSystem, tier);
      ASSERT_EQ(pool.size(), system.size());
      for (size_t c = 0; c < pool.size(); ++c) {
        SCOPED_TRACE(std::string("tier=") + simd::TierName(tier) + " case=" +
                     std::to_string(c) + " shape=" + ShapeToString(shape));
        ExpectBitwise(pool[c].out, system[c].out, "forward pool-vs-system");
        ASSERT_EQ(pool[c].grads.size(), system[c].grads.size());
        for (size_t g = 0; g < pool[c].grads.size(); ++g) {
          ExpectBitwise(pool[c].grads[g], system[c].grads[g],
                        "grad pool-vs-system");
        }
      }
    }
  }
}

// ---- Seeded end-to-end training golden --------------------------------------

// Two epochs of real training (the paper model, synthetic multi-behavior
// data) must produce identical losses, metrics, and final weights on every
// tier × thread-count combination. This is the drift tripwire: any kernel
// change that alters a single bit anywhere in forward/backward/optimizer
// shows up here.
TEST(KernelPropertyTest, TrainTwoEpochsGoldenAcrossTiersAndThreads) {
  data::SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 120;
  cfg.num_clusters = 6;
  cfg.min_events = 12;
  cfg.max_events = 25;
  cfg.seed = 33;
  data::Dataset ds = data::GenerateSynthetic(cfg);
  data::SplitView split(ds);
  eval::EvalConfig ec;
  ec.max_len = 12;
  eval::Evaluator evaluator(ds, split, ec);

  baselines::ZooConfig zc;
  zc.dim = 16;
  zc.max_len = 12;
  zc.num_interests = 2;

  auto run = [&](Tier tier, int threads) {
    simd::ScopedTier st(tier);
    train::TrainConfig tc;
    tc.max_epochs = 2;
    tc.batch_size = 32;
    tc.max_len = 12;
    tc.num_threads = threads;
    auto model = baselines::CreateModel("MISSL", ds, zc);
    train::TrainResult r =
        train::Fit(model.get(), ds, split, evaluator, tc);
    std::vector<float> params;
    for (const Tensor& p : model->Parameters()) {
      params.insert(params.end(), p.data(), p.data() + p.numel());
    }
    return std::make_tuple(r.final_train_loss, r.test.ndcg10, r.test.hr10,
                           std::move(params));
  };

  auto ref = run(Tier::kScalar, 1);
  for (Tier tier : TiersToTest()) {
    for (int threads : {1, 2, 4}) {
      if (tier == Tier::kScalar && threads == 1) continue;
      SCOPED_TRACE(std::string("tier=") + simd::TierName(tier) +
                   " threads=" + std::to_string(threads));
      auto got = run(tier, threads);
      EXPECT_EQ(std::get<0>(ref), std::get<0>(got)) << "final train loss";
      EXPECT_DOUBLE_EQ(std::get<1>(ref), std::get<1>(got)) << "test ndcg10";
      EXPECT_DOUBLE_EQ(std::get<2>(ref), std::get<2>(got)) << "test hr10";
      ExpectBitwise(std::get<3>(ref), std::get<3>(got), "final parameters");
    }
  }
}

}  // namespace
}  // namespace missl
