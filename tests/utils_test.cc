// Tests for the utility substrate: Status, Table rendering, RNG statistical
// sanity, and logging levels.
#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "utils/logging.h"
#include "utils/rng.h"
#include "utils/status.h"
#include "utils/table.h"

namespace missl {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk on fire");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"Name", "Value"});
  t.Row().Cell("alpha").Num(0.5, 2);
  t.Row().Cell("b").Int(42);
  std::string s = t.ToString();
  EXPECT_NE(s.find("| Name  | Value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 0.50  |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 42    |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, WideCellsGrowColumn) {
  Table t({"X"});
  t.Row().Cell("very-long-content");
  EXPECT_NE(t.ToString().find("very-long-content"), std::string::npos);
}

TEST(TableDeathTest, CellBeforeRowAborts) {
  Table t({"X"});
  EXPECT_DEATH(t.Cell("boom"), "Row");
}

TEST(RngTest, UniformMeanAndRange) {
  Rng rng(1);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    float u = rng.Uniform();
    ASSERT_GE(u, 0.0f);
    ASSERT_LT(u, 1.0f);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(2);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    float v = rng.Normal();
    sum += v;
    sq += double(v) * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, UniformIntUnbiasedOverSmallRange) {
  Rng rng(3);
  std::map<uint64_t, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[rng.UniformInt(3)]++;
  for (auto& [v, c] : counts) {
    EXPECT_LT(v, 3u);
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 3.0, 0.02);
  }
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(4);
  std::vector<float> w = {1.0f, 3.0f};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += rng.Categorical(w) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(5);
  int64_t low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    size_t r = rng.Zipf(100, 1.1);
    ASSERT_LT(r, 100u);
    (r < 10 ? low : high)++;
  }
  EXPECT_GT(low, high);  // top-10 ranks dominate the tail 90
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(6);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.2f) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.2, 0.015);
}

TEST(RngDeathTest, CategoricalRejectsAllZeros) {
  Rng rng(8);
  std::vector<float> w = {0.0f, 0.0f};
  EXPECT_DEATH(rng.Categorical(w), "zero");
}

TEST(LoggingTest, LevelFilters) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  MISSL_LOG_INFO << "this should be swallowed";
  SetLogLevel(prev);
}

}  // namespace
}  // namespace missl
