// Tests for the self-supervised objectives (InfoNCE, disentanglement) and
// the shared scoring/pooling helpers in core/common.
#include "core/common.h"
#include "core/ssl.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/embedding.h"
#include "test_util.h"

namespace missl::core {
namespace {

TEST(InfoNceTest, AlignedViewsGiveLowLoss) {
  Rng rng(1);
  Tensor a = Tensor::Randn({8, 16}, &rng);
  Tensor aligned = MulScalar(a, 3.0f);  // same direction -> cos = 1
  Tensor shuffled = Tensor::Zeros({8, 16});
  for (int64_t i = 0; i < 8; ++i)
    for (int64_t j = 0; j < 16; ++j)
      shuffled.data()[i * 16 + j] = a.data()[((i + 3) % 8) * 16 + j];
  float low = InfoNce(a, aligned, 0.2f).item();
  float high = InfoNce(a, shuffled, 0.2f).item();
  EXPECT_LT(low, high);
}

TEST(InfoNceTest, TemperatureSharpens) {
  Rng rng(2);
  Tensor a = Tensor::Randn({6, 8}, &rng);
  Tensor b = Add(a, Tensor::Randn({6, 8}, &rng, 0.1f));
  // With near-identical views, lower temperature gives lower loss.
  EXPECT_LT(InfoNce(a, b, 0.1f).item(), InfoNce(a, b, 1.0f).item());
}

TEST(InfoNceTest, GradientsFlowToBothViews) {
  Rng rng(3);
  Tensor a = Tensor::Randn({4, 8}, &rng).set_requires_grad(true);
  Tensor b = Tensor::Randn({4, 8}, &rng).set_requires_grad(true);
  InfoNce(a, b, 0.3f).Backward();
  EXPECT_TRUE(a.has_grad());
  EXPECT_TRUE(b.has_grad());
}

TEST(InfoNceTest, TrainingSeparatesPairs) {
  // Optimizing InfoNCE should raise the positive-pair similarity relative to
  // negatives.
  Rng rng(4);
  Tensor a = Tensor::Randn({6, 8}, &rng).set_requires_grad(true);
  Tensor b = Tensor::Randn({6, 8}, &rng).set_requires_grad(true);
  float before = InfoNce(a, b, 0.3f).item();
  for (int step = 0; step < 60; ++step) {
    a.ZeroGrad();
    b.ZeroGrad();
    Tensor loss = InfoNce(a, b, 0.3f);
    loss.Backward();
    for (Tensor* t : {&a, &b}) {
      float* w = t->data();
      const float* g = t->impl()->grad.data();
      for (int64_t i = 0; i < t->numel(); ++i) w[i] -= 0.5f * g[i];
    }
  }
  EXPECT_LT(InfoNce(a, b, 0.3f).item(), before * 0.5f);
}

TEST(DisentangleTest, OrthogonalInterestsScoreZero) {
  Tensor v = Tensor::Zeros({1, 2, 4});
  v.data()[0] = 1.0f;  // e0
  v.data()[5] = 1.0f;  // e1
  EXPECT_NEAR(DisentanglePenalty(v).item(), 0.0f, 1e-6f);
}

TEST(DisentangleTest, IdenticalInterestsScoreOne) {
  Tensor v = Tensor::Ones({1, 3, 4});
  EXPECT_NEAR(DisentanglePenalty(v).item(), 1.0f, 1e-5f);
}

TEST(DisentangleTest, SingleInterestIsZero) {
  Rng rng(5);
  Tensor v = Tensor::Randn({4, 1, 8}, &rng);
  EXPECT_EQ(DisentanglePenalty(v).item(), 0.0f);
}

TEST(DisentangleTest, PenaltyDrivesInterestsApart) {
  Rng rng(6);
  Tensor v = Tensor::Randn({2, 3, 8}, &rng, 0.1f).set_requires_grad(true);
  float before = DisentanglePenalty(v).item();
  for (int step = 0; step < 100; ++step) {
    v.ZeroGrad();
    DisentanglePenalty(v).Backward();
    float* w = v.data();
    const float* g = v.impl()->grad.data();
    for (int64_t i = 0; i < v.numel(); ++i) w[i] -= 0.5f * g[i];
  }
  EXPECT_LT(DisentanglePenalty(v).item(), before * 0.5f);
}

TEST(CommonTest, LastPositionReadsFinalSlot) {
  Tensor h = Tensor::FromData({1, 2, 3, 4, 5, 6, 7, 8}, {1, 4, 2});
  testing::ExpectTensorNear(LastPosition(h), {7, 8});
}

TEST(CommonTest, MaskedMeanPoolIgnoresPadding) {
  Tensor h = Tensor::FromData({10, 10, 2, 2, 4, 4}, {1, 3, 2});
  // Position 0 is padding (-1).
  Tensor pooled = MaskedMeanPool(h, {-1, 5, 6}, 1, 3);
  testing::ExpectTensorNear(pooled, {3, 3});
}

TEST(CommonTest, MaskedMeanPoolAllPadGivesZeros) {
  Tensor h = Tensor::Ones({1, 2, 3});
  Tensor pooled = MaskedMeanPool(h, {-1, -1}, 1, 2);
  testing::ExpectTensorNear(pooled, {0, 0, 0}, 1e-4f);
}

TEST(CommonTest, ScoreCandidatesSingleMatchesDots) {
  Rng rng(7);
  nn::Embedding emb(5, 4, &rng);
  Tensor user = Tensor::Randn({2, 4}, &rng);
  Tensor scores = ScoreCandidatesSingle(user, emb, {0, 1, 2, 3}, 2, 2);
  // Manual dot products.
  for (int64_t b = 0; b < 2; ++b) {
    for (int64_t c = 0; c < 2; ++c) {
      float expect = 0;
      int32_t id = static_cast<int32_t>(b * 2 + c);
      for (int64_t d = 0; d < 4; ++d)
        expect += user.at({b, d}) * emb.weight().at({id, d});
      EXPECT_NEAR(scores.at({b, c}), expect, 1e-5f);
    }
  }
}

TEST(CommonTest, MultiInterestScoringTakesMax) {
  Rng rng(8);
  nn::Embedding emb(3, 2, &rng);
  Tensor w = emb.weight();
  w.CopyFrom({1, 0, 0, 1, 1, 1});  // items: e0, e1, e0+e1
  Tensor interests = Tensor::FromData({2, 0, 0, 3}, {1, 2, 2});  // v0=2e0, v1=3e1
  Tensor s = ScoreCandidatesMultiInterest(interests, emb, {0, 1, 2}, 1, 3);
  testing::ExpectTensorNear(s, {2, 3, 3});  // max over interests per item
}

TEST(CommonTest, SelectInterestByTargetPicksBest) {
  Rng rng(9);
  nn::Embedding emb(2, 2, &rng);
  Tensor w = emb.weight();
  w.CopyFrom({1, 0, 0, 1});
  Tensor interests = Tensor::FromData({5, 0, 0, 7}, {1, 2, 2});
  // Target item 1 = e1 -> interest 1 (value {0,7}) wins.
  Tensor sel = SelectInterestByTarget(interests, emb, {1});
  testing::ExpectTensorNear(sel, {0, 7});
  // Target item 0 = e0 -> interest 0.
  testing::ExpectTensorNear(SelectInterestByTarget(interests, emb, {0}), {5, 0});
}

TEST(CommonTest, EmbedWithPositionsZeroesPads) {
  Rng rng(10);
  nn::Embedding item(4, 3, &rng);
  nn::Embedding pos(5, 3, &rng);
  Tensor h = EmbedWithPositions(item, pos, {-1, 2}, 1, 2);
  for (int64_t d = 0; d < 3; ++d) EXPECT_EQ(h.at({0, 0, d}), 0.0f);
  // Valid slot = item emb + position emb at index 1.
  for (int64_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(h.at({0, 1, d}), item.weight().at({2, d}) + pos.weight().at({1, d}),
                1e-6f);
  }
}

TEST(CommonTest, FullCatalogLogitsShape) {
  Rng rng(11);
  nn::Embedding emb(7, 4, &rng);
  Tensor user = Tensor::Randn({3, 4}, &rng);
  Tensor logits = FullCatalogLogits(user, emb);
  EXPECT_EQ(logits.size(0), 3);
  EXPECT_EQ(logits.size(1), 7);
}

}  // namespace
}  // namespace missl::core
