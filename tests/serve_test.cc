// Online serving subsystem tests: frozen checkpoint loading, query-batch
// collation parity with the training-time BatchBuilder, bitwise serve-vs-
// offline top-K equivalence under concurrent clients, micro-batcher
// coalescing, input validation, and the line protocol. The micro-batcher is
// part of the TSan CI job (scripts/check.sh tsan), so every test here must
// be race-free by construction.
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/missl.h"
#include "core/recommend.h"
#include "data/batch.h"
#include "data/dataset.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "utils/rng.h"

namespace missl {
namespace {

constexpr int32_t kItems = 60;
constexpr int32_t kBehaviors = 3;
constexpr int64_t kMaxLen = 12;

std::unique_ptr<core::MisslModel> MakeModel(uint64_t seed) {
  core::MisslConfig cfg;
  cfg.dim = 16;
  cfg.num_interests = 2;
  cfg.seed = seed;
  return std::make_unique<core::MisslModel>(kItems, kBehaviors, kMaxLen, cfg);
}

serve::Query RandomQuery(Rng* rng) {
  serve::Query q;
  int64_t len = 1 + static_cast<int64_t>(rng->UniformInt(2 * kMaxLen));
  for (int64_t i = 0; i < len; ++i) {
    q.items.push_back(static_cast<int32_t>(rng->UniformInt(kItems)));
    q.behaviors.push_back(static_cast<int32_t>(rng->UniformInt(kBehaviors)));
  }
  // Exclude a few ids, deliberately in event (unsorted) order.
  for (int64_t i = 0; i < len; i += 3) {
    q.exclude.push_back(q.items[static_cast<size_t>(i)]);
  }
  q.k = 5 + static_cast<int32_t>(rng->UniformInt(6));
  return q;
}

std::string CkptPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(FrozenLoadTest, PutsModuleInInferenceState) {
  auto saved = MakeModel(3);
  std::string path = CkptPath("serve_frozen1.bin");
  ASSERT_TRUE(nn::SaveParameters(*saved, path).ok());

  auto loaded = MakeModel(99);
  ASSERT_TRUE(nn::LoadParametersForInference(loaded.get(), path).ok());
  EXPECT_FALSE(loaded->training());
  for (const auto& [name, t] : loaded->NamedParameters()) {
    EXPECT_FALSE(t.requires_grad()) << name << " still requires grad";
  }
  auto p1 = saved->NamedParameters();
  auto p2 = loaded->NamedParameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    for (int64_t j = 0; j < p1[i].second.numel(); ++j) {
      ASSERT_EQ(p1[i].second.data()[j], p2[i].second.data()[j])
          << p1[i].first << " differs after round trip";
    }
  }
  std::remove(path.c_str());
}

TEST(FrozenLoadTest, RoundTripScoresIdenticalThroughFrozenPath) {
  auto saved = MakeModel(4);
  std::string path = CkptPath("serve_frozen2.bin");
  ASSERT_TRUE(nn::SaveParameters(*saved, path).ok());
  auto frozen = MakeModel(123);
  ASSERT_TRUE(nn::LoadParametersForInference(frozen.get(), path).ok());

  Rng rng(11);
  std::vector<serve::Query> queries;
  for (int i = 0; i < 6; ++i) queries.push_back(RandomQuery(&rng));
  data::Batch batch = serve::BuildQueryBatch(queries, kMaxLen, kBehaviors);
  auto a = core::RecommendTopN(saved.get(), batch, {}, 8, kItems);
  auto b = core::RecommendTopN(frozen.get(), batch, {}, 8, kItems);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].items, b[i].items);
    EXPECT_EQ(a[i].scores, b[i].scores);  // bitwise: same floats
  }
  std::remove(path.c_str());
}

TEST(BuildQueryBatchTest, MatchesTrainingBatchBuilder) {
  // One user's history collated at serving time must produce the same id
  // arrays as the training-time BatchBuilder given the same events.
  data::Dataset ds(1, kItems, kBehaviors);
  std::vector<int32_t> items = {5, 9, 5, 17, 30, 2};
  std::vector<int32_t> behs = {0, 0, 1, 2, 1, 0};
  for (size_t i = 0; i < items.size(); ++i) {
    ds.Add({0, items[i], static_cast<data::Behavior>(behs[i]),
            static_cast<int64_t>(10 * (i + 1))});
  }
  // Target event: the one BatchBuilder cuts at (history = events before it).
  ds.Add({0, 40, static_cast<data::Behavior>(kBehaviors - 1), 100});
  ds.Finalize();
  data::BatchBuilder builder(ds, kMaxLen);
  data::Batch offline = builder.Build({{0, 6}});

  serve::Query q;
  q.items = items;
  q.behaviors = behs;
  for (size_t i = 0; i < items.size(); ++i) {
    q.timestamps.push_back(static_cast<int64_t>(10 * (i + 1)));
  }
  q.now = 100;  // recency reference = the moment the next event would happen
  data::Batch online = serve::BuildQueryBatch({q}, kMaxLen, kBehaviors);

  EXPECT_EQ(offline.merged_items, online.merged_items);
  EXPECT_EQ(offline.merged_behaviors, online.merged_behaviors);
  EXPECT_EQ(offline.merged_recency, online.merged_recency);
  ASSERT_EQ(offline.beh_items.size(), online.beh_items.size());
  for (size_t b = 0; b < offline.beh_items.size(); ++b) {
    EXPECT_EQ(offline.beh_items[b], online.beh_items[b]) << "channel " << b;
  }
}

TEST(RecoServiceTest, MatchesOfflineBitwiseUnderConcurrentClients) {
  auto offline_model = MakeModel(5);
  std::string path = CkptPath("serve_svc.bin");
  ASSERT_TRUE(nn::SaveParameters(*offline_model, path).ok());

  serve::ServeConfig cfg;
  cfg.max_len = kMaxLen;
  cfg.max_batch = 8;
  cfg.max_wait_us = 2000;
  Status status;
  auto service = serve::RecoService::Load(MakeModel(42), kItems, kBehaviors,
                                          path, cfg, &status);
  ASSERT_NE(service, nullptr) << status.ToString();

  Rng rng(7);
  std::vector<serve::Query> queries;
  for (int i = 0; i < 32; ++i) queries.push_back(RandomQuery(&rng));

  // Offline reference: one big batch through RecommendTopN. Seen sets are
  // passed in raw (unsorted) event order on purpose.
  data::Batch batch = serve::BuildQueryBatch(queries, kMaxLen, kBehaviors);
  std::vector<std::vector<int32_t>> seen;
  for (const auto& q : queries) seen.push_back(q.exclude);
  int32_t max_k = 0;
  for (const auto& q : queries) max_k = std::max(max_k, q.k);
  auto expected =
      core::RecommendTopN(offline_model.get(), batch, seen, max_k, kItems);

  // Serve the same queries from 4 client threads; coalescing compositions
  // vary run to run, the answers must not.
  constexpr int kClients = 4;
  std::vector<serve::TopKResult> results(queries.size());
  std::vector<Status> statuses(queries.size());
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < queries.size();
           i += kClients) {
        statuses[i] = service->TopK(queries[i], &results[i]);
      }
    });
  }
  for (auto& c : clients) c.join();

  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
    size_t want = std::min<size_t>(static_cast<size_t>(queries[i].k),
                                   expected[i].items.size());
    ASSERT_EQ(results[i].items.size(), want) << "query " << i;
    for (size_t j = 0; j < want; ++j) {
      EXPECT_EQ(results[i].items[j], expected[i].items[j])
          << "query " << i << " rank " << j;
      EXPECT_EQ(results[i].scores[j], expected[i].scores[j])
          << "query " << i << " rank " << j;  // bitwise
    }
  }
  EXPECT_EQ(service->requests_served(), static_cast<int64_t>(queries.size()));
  EXPECT_GE(service->batches_run(), 1);
  std::remove(path.c_str());
}

TEST(RecoServiceTest, BatcherCoalescesAndRecordsMetrics) {
  bool metrics_were_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  auto& reg = obs::MetricsRegistry::Global();
  int64_t requests_before = reg.GetCounter("serve.requests").value();
  int64_t wait_count_before = reg.GetHistogram("serve.queue_wait_ns").count();
  int64_t size_count_before = reg.GetHistogram("serve.batch_size").count();

  auto model = MakeModel(6);
  std::string path = CkptPath("serve_batcher.bin");
  ASSERT_TRUE(nn::SaveParameters(*model, path).ok());
  serve::ServeConfig cfg;
  cfg.max_len = kMaxLen;
  // The window is generous so all 8 clients land in few forwards even on a
  // loaded (or TSan-slowed) machine; the batch fires early once full.
  cfg.max_batch = 8;
  cfg.max_wait_us = 1'000'000;
  Status status;
  auto service = serve::RecoService::Load(MakeModel(43), kItems, kBehaviors,
                                          path, cfg, &status);
  ASSERT_NE(service, nullptr) << status.ToString();

  Rng rng(9);
  std::vector<serve::Query> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(RandomQuery(&rng));
  std::vector<serve::TopKResult> results(queries.size());
  std::vector<Status> statuses(queries.size());
  std::vector<std::thread> clients;
  for (size_t i = 0; i < queries.size(); ++i) {
    clients.emplace_back(
        [&, i] { statuses[i] = service->TopK(queries[i], &results[i]); });
  }
  for (auto& c : clients) c.join();
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].ToString();
    EXPECT_FALSE(results[i].items.empty());
  }

  EXPECT_EQ(service->requests_served(), 8);
  // All 8 clients were in flight inside one 1s window, so the batcher must
  // have coalesced at least some of them.
  EXPECT_LE(service->batches_run(), 4);
  EXPECT_EQ(reg.GetCounter("serve.requests").value() - requests_before, 8);
  EXPECT_EQ(reg.GetHistogram("serve.queue_wait_ns").count() -
                wait_count_before, 8);
  EXPECT_EQ(reg.GetHistogram("serve.batch_size").count() - size_count_before,
            service->batches_run());
  obs::SetMetricsEnabled(metrics_were_enabled);
  std::remove(path.c_str());
}

TEST(RecoServiceTest, RejectsMalformedQueriesWithoutCrashing) {
  auto model = MakeModel(8);
  std::string path = CkptPath("serve_validate.bin");
  ASSERT_TRUE(nn::SaveParameters(*model, path).ok());
  serve::ServeConfig cfg;
  cfg.max_len = kMaxLen;
  Status status;
  auto service = serve::RecoService::Load(MakeModel(44), kItems, kBehaviors,
                                          path, cfg, &status);
  ASSERT_NE(service, nullptr) << status.ToString();

  serve::TopKResult out;
  serve::Query bad;
  bad.items = {1, 2};
  bad.behaviors = {0};  // length mismatch
  EXPECT_EQ(service->TopK(bad, &out).code(), StatusCode::kInvalidArgument);

  bad.behaviors = {0, kBehaviors};  // behavior out of range
  EXPECT_EQ(service->TopK(bad, &out).code(), StatusCode::kInvalidArgument);

  bad.behaviors = {0, 0};
  bad.items = {1, kItems};  // item out of range
  EXPECT_EQ(service->TopK(bad, &out).code(), StatusCode::kInvalidArgument);

  serve::Query zero_k;
  zero_k.items = {1};
  zero_k.behaviors = {0};
  zero_k.k = 0;
  EXPECT_EQ(service->TopK(zero_k, &out).code(), StatusCode::kInvalidArgument);

  // The service must still answer well-formed queries afterwards.
  serve::Query good;
  good.items = {1, 2, 3};
  good.behaviors = {0, 1, 2};
  good.k = 4;
  ASSERT_TRUE(service->TopK(good, &out).ok());
  EXPECT_EQ(out.items.size(), 4u);
  std::remove(path.c_str());
}

TEST(RecoServiceTest, LoadRejectsNonPositiveMaxBatch) {
  auto model = MakeModel(50);
  std::string path = CkptPath("serve_cfg_batch.bin");
  ASSERT_TRUE(nn::SaveParameters(*model, path).ok());
  serve::ServeConfig cfg;
  cfg.max_len = kMaxLen;
  cfg.max_batch = 0;
  Status status;
  EXPECT_EQ(serve::RecoService::Load(MakeModel(51), kItems, kBehaviors, path,
                                     cfg, &status),
            nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("max_batch"), std::string::npos);
  cfg.max_batch = -3;
  EXPECT_EQ(serve::RecoService::Load(MakeModel(51), kItems, kBehaviors, path,
                                     cfg, &status),
            nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(RecoServiceTest, LoadRejectsNegativeWaitAndThreads) {
  auto model = MakeModel(52);
  std::string path = CkptPath("serve_cfg_wait.bin");
  ASSERT_TRUE(nn::SaveParameters(*model, path).ok());
  serve::ServeConfig cfg;
  cfg.max_len = kMaxLen;
  cfg.max_wait_us = -1;
  Status status;
  EXPECT_EQ(serve::RecoService::Load(MakeModel(53), kItems, kBehaviors, path,
                                     cfg, &status),
            nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("max_wait_us"), std::string::npos);

  cfg = serve::ServeConfig();
  cfg.max_len = kMaxLen;
  cfg.num_threads = -2;
  EXPECT_EQ(serve::RecoService::Load(MakeModel(53), kItems, kBehaviors, path,
                                     cfg, &status),
            nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(RecoServiceTest, LoadRejectsMaxLenMismatchWithCheckpoint) {
  // The checkpoint's position table has kMaxLen rows; serving with a
  // different max_len would silently index it out of distribution, so Load
  // must reject the combination up front.
  auto model = MakeModel(54);
  std::string path = CkptPath("serve_cfg_len.bin");
  ASSERT_TRUE(nn::SaveParameters(*model, path).ok());
  serve::ServeConfig cfg;
  cfg.max_len = 0;
  Status status;
  EXPECT_EQ(serve::RecoService::Load(MakeModel(55), kItems, kBehaviors, path,
                                     cfg, &status),
            nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);

  cfg.max_len = kMaxLen + 8;  // valid value, wrong for this checkpoint
  auto service = serve::RecoService::Load(MakeModel(55), kItems, kBehaviors,
                                          path, cfg, &status);
  EXPECT_EQ(service, nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("position table"), std::string::npos);

  // The same checkpoint loads fine with the matching max_len.
  cfg.max_len = kMaxLen;
  service = serve::RecoService::Load(MakeModel(55), kItems, kBehaviors, path,
                                     cfg, &status);
  EXPECT_NE(service, nullptr) << status.ToString();
  std::remove(path.c_str());
}

TEST(RecoServiceTest, LoadFailsCleanlyOnBadCheckpoint) {
  serve::ServeConfig cfg;
  cfg.max_len = kMaxLen;
  Status status;
  auto service = serve::RecoService::Load(MakeModel(45), kItems, kBehaviors,
                                          "/nonexistent/ckpt.bin", cfg,
                                          &status);
  EXPECT_EQ(service, nullptr);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

TEST(ProtocolTest, ParsesFullQueryLine) {
  serve::ParsedQuery q;
  Status s = serve::ParseQueryLine("7\t5\t3:0:100,9:1:250,4:2:400\t9,3", &q);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(q.id, 7);
  EXPECT_EQ(q.query.k, 5);
  EXPECT_EQ(q.query.items, (std::vector<int32_t>{3, 9, 4}));
  EXPECT_EQ(q.query.behaviors, (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(q.query.timestamps, (std::vector<int64_t>{100, 250, 400}));
  EXPECT_EQ(q.query.now, 400);  // defaults to the newest event
  EXPECT_EQ(q.query.exclude, (std::vector<int32_t>{9, 3}));

  // Minimal form: no timestamps, no excludes.
  ASSERT_TRUE(serve::ParseQueryLine("0\t10\t5:0,6:1", &q).ok());
  EXPECT_TRUE(q.query.timestamps.empty());
  EXPECT_TRUE(q.query.exclude.empty());
  // "-" also means no excludes.
  ASSERT_TRUE(serve::ParseQueryLine("0\t10\t5:0\t-", &q).ok());
  EXPECT_TRUE(q.query.exclude.empty());
}

TEST(ProtocolTest, RejectsMalformedLines) {
  serve::ParsedQuery q;
  EXPECT_FALSE(serve::ParseQueryLine("", &q).ok());
  EXPECT_FALSE(serve::ParseQueryLine("1\t5", &q).ok());           // no history
  EXPECT_FALSE(serve::ParseQueryLine("x\t5\t1:0", &q).ok());      // bad id
  EXPECT_FALSE(serve::ParseQueryLine("1\t0\t1:0", &q).ok());      // k < 1
  EXPECT_FALSE(serve::ParseQueryLine("1\t5\t1", &q).ok());        // no behavior
  EXPECT_FALSE(serve::ParseQueryLine("1\t5\t1:0:2:3", &q).ok());  // 4 parts
  EXPECT_FALSE(serve::ParseQueryLine("1\t5\t1:0:5,2:1", &q).ok());  // mixed ts
  EXPECT_FALSE(serve::ParseQueryLine("1\t5\t1:0\tx", &q).ok());   // bad excl
}

TEST(ProtocolTest, FormatsTopKJson) {
  serve::TopKResult r;
  r.items = {12, 5, 40};
  r.scores = {1.25f, 1.0f, 0.5f};
  EXPECT_EQ(serve::TopKToJson(7, r),
            "{\"id\":7,\"k\":3,\"items\":[12,5,40],"
            "\"scores\":[1.25,1,0.5]}");
}

}  // namespace
}  // namespace missl
