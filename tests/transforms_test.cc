// Tests for dataset transforms (k-core, truncation, time filtering) and the
// top-N recommendation API with beyond-accuracy list statistics.
#include "core/recommend.h"
#include "data/transforms.h"

#include <gtest/gtest.h>

#include "baselines/zoo.h"
#include "data/batch.h"
#include "data/synthetic.h"

namespace missl {
namespace {

using data::Behavior;
using data::Dataset;
using data::FilterBefore;
using data::KCoreFilter;
using data::TruncateHistories;

Dataset MakeSparse() {
  // 4 users, 8 items, 2 behaviors. User 3 and item 7 are low-degree.
  Dataset ds(4, 8, 2, "sparse");
  int64_t t = 0;
  for (int32_t u = 0; u < 3; ++u) {
    for (int32_t i = 0; i < 4; ++i) {
      ds.Add({u, i, Behavior::kClick, t++});
      ds.Add({u, i, Behavior::kCart, t++});
    }
  }
  ds.Add({3, 7, Behavior::kClick, t++});  // single event
  ds.Finalize();
  return ds;
}

TEST(KCoreTest, DropsLowDegreeUsersAndItems) {
  Dataset ds = MakeSparse();
  auto result = KCoreFilter(ds, /*user_core=*/3, /*item_core=*/3);
  EXPECT_EQ(result.dataset.num_users(), 3);  // user 3 dropped
  EXPECT_EQ(result.dataset.num_items(), 4);  // items 4..7 dropped
  // Mappings point back to original ids.
  EXPECT_EQ(result.user_map.size(), 3u);
  EXPECT_EQ(result.item_map[0], 0);
  // Every surviving user still meets the core.
  for (int32_t u = 0; u < result.dataset.num_users(); ++u) {
    EXPECT_GE(result.dataset.user(u).events.size(), 3u);
  }
}

TEST(KCoreTest, CascadingRemovalIterates) {
  // user 0 -> items {0,1}; user 1 -> item 1 only. With item_core=2,
  // item 0 dies (1 occurrence), which drops user 0 below user_core=2,
  // which in turn drops item 1 to 1 occurrence... everything except the
  // (user1, item1) pair must cascade away, leaving nothing >= core; expect
  // the check to fire OR a consistent fixed point. Build a case with a
  // stable survivor instead: two users sharing two items.
  Dataset ds(3, 3, 2, "cascade");
  int64_t t = 0;
  ds.Add({0, 0, Behavior::kClick, t++});
  ds.Add({0, 1, Behavior::kClick, t++});
  ds.Add({1, 0, Behavior::kClick, t++});
  ds.Add({1, 1, Behavior::kClick, t++});
  ds.Add({2, 2, Behavior::kClick, t++});  // isolated pair, must cascade away
  ds.Finalize();
  auto result = KCoreFilter(ds, 2, 2);
  EXPECT_EQ(result.dataset.num_users(), 2);
  EXPECT_EQ(result.dataset.num_items(), 2);
  EXPECT_EQ(result.dataset.Stats().num_interactions, 4);
}

TEST(KCoreDeathTest, EmptyResultAborts) {
  Dataset ds(1, 2, 2, "tiny");
  ds.Add({0, 0, Behavior::kClick, 0});
  ds.Finalize();
  EXPECT_DEATH(KCoreFilter(ds, 10, 10), "removed everything");
}

TEST(TruncateTest, KeepsMostRecent) {
  Dataset ds(1, 10, 2, "trunc");
  for (int i = 0; i < 8; ++i) {
    ds.Add({0, i, Behavior::kClick, i});
  }
  ds.Finalize();
  Dataset out = TruncateHistories(ds, 3);
  ASSERT_EQ(out.user(0).events.size(), 3u);
  EXPECT_EQ(out.user(0).events[0].item, 5);
  EXPECT_EQ(out.user(0).events[2].item, 7);
}

TEST(FilterBeforeTest, DropsLateEvents) {
  Dataset ds(1, 10, 2, "time");
  for (int i = 0; i < 6; ++i) {
    ds.Add({0, i, Behavior::kClick, i * 10});
  }
  ds.Finalize();
  Dataset out = FilterBefore(ds, 30);
  ASSERT_EQ(out.user(0).events.size(), 3u);  // t = 0, 10, 20
  EXPECT_EQ(out.user(0).events.back().item, 2);
}

class RecommendTest : public ::testing::Test {
 protected:
  RecommendTest()
      : ds_(MakeDs()), split_(ds_), builder_(ds_, 10) {}

  static Dataset MakeDs() {
    data::SyntheticConfig cfg;
    cfg.num_users = 30;
    cfg.num_items = 60;
    cfg.min_events = 12;
    cfg.max_events = 20;
    cfg.seed = 12;
    return data::GenerateSynthetic(cfg);
  }

  Dataset ds_;
  data::SplitView split_;
  data::BatchBuilder builder_;
};

TEST_F(RecommendTest, TopNShapeAndOrdering) {
  auto model = baselines::CreateModel("POP", ds_, baselines::ZooConfig{});
  data::Batch batch = builder_.Build(
      {split_.train_examples[0], split_.train_examples[1]});
  auto recs = core::RecommendTopN(model.get(), batch, {}, 5, ds_.num_items());
  ASSERT_EQ(recs.size(), 2u);
  for (const auto& rec : recs) {
    ASSERT_EQ(rec.items.size(), 5u);
    for (size_t i = 1; i < rec.scores.size(); ++i) {
      EXPECT_GE(rec.scores[i - 1], rec.scores[i]);  // descending
    }
  }
}

TEST_F(RecommendTest, SeenItemsExcluded) {
  auto model = baselines::CreateModel("POP", ds_, baselines::ZooConfig{});
  data::Batch batch = builder_.Build({split_.train_examples[0]});
  // Exclude the 10 globally most popular items; none may appear.
  auto all = core::RecommendTopN(model.get(), batch, {}, 10, ds_.num_items());
  std::vector<int32_t> banned = all[0].items;
  std::sort(banned.begin(), banned.end());
  auto rest = core::RecommendTopN(model.get(), batch, {banned}, 10,
                                  ds_.num_items());
  for (int32_t it : rest[0].items) {
    EXPECT_FALSE(std::binary_search(banned.begin(), banned.end(), it));
  }
}

TEST_F(RecommendTest, UnsortedSeenListsAreExcludedToo) {
  // Regression: exclusion used binary_search on the caller's list, so seen
  // sets passed in event order (as live user histories arrive) silently
  // leaked "seen" items back into the list. Unsorted input must now give
  // exactly the same output as its sorted copy.
  auto model = baselines::CreateModel("POP", ds_, baselines::ZooConfig{});
  data::Batch batch = builder_.Build({split_.train_examples[0]});
  auto all = core::RecommendTopN(model.get(), batch, {}, 10, ds_.num_items());
  std::vector<int32_t> banned_unsorted = all[0].items;
  std::reverse(banned_unsorted.begin(), banned_unsorted.end());
  std::swap(banned_unsorted[0], banned_unsorted[3]);  // definitely unsorted
  std::vector<int32_t> banned_sorted = banned_unsorted;
  std::sort(banned_sorted.begin(), banned_sorted.end());

  auto from_unsorted = core::RecommendTopN(model.get(), batch,
                                           {banned_unsorted}, 10,
                                           ds_.num_items());
  auto from_sorted = core::RecommendTopN(model.get(), batch, {banned_sorted},
                                         10, ds_.num_items());
  EXPECT_EQ(from_unsorted[0].items, from_sorted[0].items);
  EXPECT_EQ(from_unsorted[0].scores, from_sorted[0].scores);
  for (int32_t it : from_unsorted[0].items) {
    EXPECT_FALSE(std::binary_search(banned_sorted.begin(), banned_sorted.end(),
                                    it))
        << "seen item " << it << " leaked into the list";
  }
}

TEST_F(RecommendTest, ListStatsComputeSanely) {
  auto model = baselines::CreateModel("ItemKNN", ds_, baselines::ZooConfig{});
  std::vector<data::SplitView::TrainExample> ex(
      split_.train_examples.begin(), split_.train_examples.begin() + 6);
  data::Batch batch = builder_.Build(ex);
  auto recs = core::RecommendTopN(model.get(), batch, {}, 5, ds_.num_items());
  std::vector<int64_t> pop(static_cast<size_t>(ds_.num_items()), 0);
  for (int32_t u = 0; u < ds_.num_users(); ++u) {
    for (const auto& e : ds_.user(u).events) {
      pop[static_cast<size_t>(e.item)]++;
    }
  }
  Rng rng(3);
  Tensor emb = Tensor::Randn({ds_.num_items(), 8}, &rng);
  core::ListStats stats =
      core::ComputeListStats(recs, ds_.num_items(), emb, pop);
  EXPECT_GT(stats.item_coverage, 0.0);
  EXPECT_LE(stats.item_coverage, 1.0);
  EXPECT_GT(stats.mean_intra_list_distance, 0.0);  // random emb ~ 1.0
  EXPECT_GE(stats.mean_popularity, 0.0);
}

TEST_F(RecommendTest, CoverageOfSingleRepeatedListIsLow) {
  core::Recommendation rec;
  rec.user = 0;
  rec.items = {1, 1, 1};  // degenerate repeated item
  rec.scores = {3, 2, 1};
  core::ListStats stats = core::ComputeListStats({rec, rec}, 100, Tensor(), {});
  EXPECT_NEAR(stats.item_coverage, 0.01, 1e-9);
  EXPECT_EQ(stats.mean_intra_list_distance, 0.0);  // no embedding given
}

}  // namespace
}  // namespace missl
