// Int8 quantized catalog tier tests (src/tensor/quant.h, docs/KERNELS.md
// §int8 tier, docs/INFERENCE.md §quantized catalog tier).
//
// Three layers of contract:
//   1. Quantization arithmetic: symmetric per-row scales, codes clamped to
//      ±127 (never -128), all-zero rows quantize without dividing, and the
//      round-trip error is bounded by scale / 2.
//   2. Kernel parity: simd::Int8DotRows matches quant::Int8DotRef bitwise on
//      every tier — integer accumulation is order-free, so this holds for
//      any blocking by construction, and we verify it anyway.
//   3. Plan-level: a quantize_catalog plan is bitwise deterministic across
//      SIMD tiers x thread counts, allocates nothing in steady state, and
//      ranks close enough to fp32 (NDCG@10 / top-10 overlap bounds below).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/missl.h"
#include "core/recommend.h"
#include "data/batch.h"
#include "infer/plan.h"
#include "nn/serialize.h"
#include "runtime/runtime.h"
#include "serve/service.h"
#include "tensor/alloc.h"
#include "tensor/quant.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "utils/rng.h"
#include "utils/status.h"

namespace missl {
namespace {

// ---------------------------------------------------------------------------
// 1. Quantization arithmetic.
// ---------------------------------------------------------------------------

TEST(QuantizeTest, AllZeroRowStoresZeroScaleAndNeverDivides) {
  std::vector<float> x(13, 0.0f);
  std::vector<int8_t> q(13, 42);
  std::vector<float> scale(1, -1.0f);
  quant::RowQuantStats st;
  quant::QuantizeRowsSymmetric(x.data(), 1, 13, q.data(), scale.data(), &st);
  EXPECT_EQ(scale[0], 0.0f);
  for (int8_t c : q) EXPECT_EQ(c, 0);
  EXPECT_EQ(st.zero_rows, 1);
  EXPECT_EQ(st.saturated, 0);
  EXPECT_EQ(st.min_scale, 0.0f);  // no non-zero scale seen
  EXPECT_EQ(st.max_scale, 0.0f);
}

TEST(QuantizeTest, ConstantRowsHitExactlyPlusMinus127) {
  // A constant row's maxabs is the value itself, so every code is exactly
  // ±127 with no clamping (round(127.0) == 127).
  std::vector<float> x(16, 3.5f);
  std::vector<float> y(16, -0.0625f);
  std::vector<int8_t> qx(16), qy(16);
  float sx = 0, sy = 0;
  quant::RowQuantStats st;
  quant::QuantizeRowsSymmetric(x.data(), 1, 16, qx.data(), &sx, &st);
  quant::QuantizeRowsSymmetric(y.data(), 1, 16, qy.data(), &sy, nullptr);
  EXPECT_FLOAT_EQ(sx, 3.5f / 127.0f);
  EXPECT_FLOAT_EQ(sy, 0.0625f / 127.0f);
  for (int8_t c : qx) EXPECT_EQ(c, 127);
  for (int8_t c : qy) EXPECT_EQ(c, -127);
  EXPECT_EQ(st.saturated, 0);
  EXPECT_EQ(st.zero_rows, 0);
}

TEST(QuantizeTest, ExtremeMagnitudesRoundTripWithinHalfScale) {
  // Scales span ~60 orders of magnitude; the bound |x - s*q| <= s/2 must
  // hold at both ends (s/2 is half a quantization step).
  for (float mag : {1e30f, 1.0f, 1e-30f}) {
    std::vector<float> x = {mag, -mag, 0.5f * mag, -0.25f * mag, 0.0f};
    std::vector<int8_t> q(x.size());
    float scale = 0;
    quant::QuantizeRowsSymmetric(x.data(), 1, static_cast<int64_t>(x.size()),
                                 q.data(), &scale, nullptr);
    ASSERT_GT(scale, 0.0f) << mag;
    for (size_t i = 0; i < x.size(); ++i) {
      EXPECT_GE(q[i], -127);
      EXPECT_LE(q[i], 127);
      float back = scale * static_cast<float>(q[i]);
      // Half-a-step bound with one-ulp relative slack: 0.5 * mag sits
      // exactly on the rounding boundary (63.5 -> 64) where fp32 rounding
      // of scale * q can overshoot the mathematical scale / 2 by an ulp.
      EXPECT_LE(std::fabs(x[i] - back), 0.5f * scale * (1.0f + 1e-5f))
          << "mag=" << mag << " i=" << i;
    }
  }
}

TEST(QuantizeTest, TooSmallScaleClampsToPlusMinus127AndCounts) {
  // With a deliberately tiny scale every non-zero value lands far outside
  // [-127, 127]; the clamp must cap at ±127 (never -128) and be counted.
  std::vector<float> x = {10.0f, -10.0f, 0.0f, 5.0f};
  std::vector<int8_t> q(x.size(), 0);
  int64_t clamped =
      quant::QuantizeRowWithScale(x.data(), static_cast<int64_t>(x.size()),
                                  /*scale=*/1e-3f, q.data());
  EXPECT_EQ(clamped, 3);
  EXPECT_EQ(q[0], 127);
  EXPECT_EQ(q[1], -127);
  EXPECT_EQ(q[2], 0);
  EXPECT_EQ(q[3], 127);
}

TEST(QuantizeTest, RandomRowsRoundTripBoundAndStats) {
  Rng rng(33);
  constexpr int64_t kRows = 40, kN = 48;
  std::vector<float> x(kRows * kN);
  for (auto& v : x) v = rng.Uniform(-2.0f, 2.0f);
  // Make two rows all-zero to exercise the zero_rows accounting inline.
  std::fill(x.begin() + 5 * kN, x.begin() + 6 * kN, 0.0f);
  std::fill(x.begin() + 17 * kN, x.begin() + 18 * kN, 0.0f);
  std::vector<int8_t> q(x.size());
  std::vector<float> scales(kRows);
  quant::RowQuantStats st;
  quant::QuantizeRowsSymmetric(x.data(), kRows, kN, q.data(), scales.data(),
                               &st);
  EXPECT_EQ(st.zero_rows, 2);
  EXPECT_EQ(st.saturated, 0);  // scale = maxabs/127 never clamps
  EXPECT_GT(st.min_scale, 0.0f);
  EXPECT_GE(st.max_scale, st.min_scale);
  std::vector<float> back(kN);
  for (int64_t r = 0; r < kRows; ++r) {
    quant::DequantizeRow(q.data() + r * kN, scales[r], back.data(), kN);
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_LE(std::fabs(x[static_cast<size_t>(r * kN + i)] - back[i]),
                0.5f * scales[r] + 1e-12f)
          << "row " << r << " col " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Kernel parity: Int8DotRows vs the Int8DotRef contract, every tier.
// ---------------------------------------------------------------------------

// Tier x VNNI configurations the int8 kernels can dispatch to: scalar, AVX2
// via the maddubs sign-trick path, and — on CPUs with AVX-VNNI — AVX2 via
// vpdpbusd. All three must agree bitwise, so every parity test sweeps them.
struct KernelConfig {
  simd::Tier tier;
  bool vnni;
};

std::vector<KernelConfig> KernelConfigs() {
  std::vector<KernelConfig> cfgs = {{simd::Tier::kScalar, false}};
  if (simd::Avx2Available()) {
    cfgs.push_back({simd::Tier::kAvx2, false});
    if (simd::AvxVnniAvailable()) cfgs.push_back({simd::Tier::kAvx2, true});
  }
  return cfgs;
}

TEST(Int8DotTest, MatchesReferenceOnEveryTierAndRaggedLengths) {
  Rng rng(7);
  // Lengths straddle the 32-lane AVX2 block and the 4-row unroll.
  for (int64_t k : {1, 7, 31, 32, 33, 64, 96, 100}) {
    constexpr int64_t kR = 9;
    std::vector<int8_t> a(k), b(kR * k);
    for (auto& v : a) v = static_cast<int8_t>(rng.UniformInt(255)) % 127;
    for (auto& v : b) v = static_cast<int8_t>(rng.UniformInt(255)) % 127;
    std::vector<int32_t> want(kR);
    for (int64_t r = 0; r < kR; ++r) {
      want[static_cast<size_t>(r)] = quant::Int8DotRef(a.data(),
                                                       b.data() + r * k, k);
    }
    for (const KernelConfig& cfg : KernelConfigs()) {
      simd::ScopedTier guard(cfg.tier);
      simd::ScopedAvxVnni vguard(cfg.vnni);
      std::vector<int32_t> got(kR, -999);
      simd::Int8DotRows(a.data(), b.data(), got.data(), k, 0, kR);
      for (int64_t r = 0; r < kR; ++r) {
        EXPECT_EQ(got[static_cast<size_t>(r)], want[static_cast<size_t>(r)])
            << "k=" << k << " row=" << r << " tier="
            << simd::TierName(cfg.tier) << " vnni=" << cfg.vnni;
      }
      // Partial row ranges must write exactly [r0, r1).
      std::vector<int32_t> part(kR, -999);
      simd::Int8DotRows(a.data(), b.data(), part.data(), k, 2,
                        std::min<int64_t>(kR, 6));
      for (int64_t r = 2; r < std::min<int64_t>(kR, 6); ++r) {
        EXPECT_EQ(part[static_cast<size_t>(r)], want[static_cast<size_t>(r)]);
      }
      EXPECT_EQ(part[0], -999);
    }
  }
}

TEST(Int8DotTest, ExtremeCodesNeverSaturateTheInt16Intermediate) {
  // All-(±127) inputs maximize every maddubs pair sum (2 * 127 * 127 =
  // 32258 < 2^15): the AVX2 kernel must still be exact. The vpdpbusd path
  // has no int16 intermediate at all but must land on the same totals.
  for (int64_t k : {32, 64, 100}) {
    std::vector<int8_t> a(k, 127), b(k, 127), c(k, -127);
    int32_t want_pp = quant::Int8DotRef(a.data(), b.data(), k);
    int32_t want_pn = quant::Int8DotRef(a.data(), c.data(), k);
    EXPECT_EQ(want_pp, static_cast<int32_t>(k) * 127 * 127);
    EXPECT_EQ(want_pn, -static_cast<int32_t>(k) * 127 * 127);
    for (const KernelConfig& cfg : KernelConfigs()) {
      simd::ScopedTier guard(cfg.tier);
      simd::ScopedAvxVnni vguard(cfg.vnni);
      int32_t got = 0;
      simd::Int8DotRows(a.data(), b.data(), &got, k, 0, 1);
      EXPECT_EQ(got, want_pp) << "k=" << k << " tier="
                              << simd::TierName(cfg.tier)
                              << " vnni=" << cfg.vnni;
      simd::Int8DotRows(a.data(), c.data(), &got, k, 0, 1);
      EXPECT_EQ(got, want_pn) << "k=" << k << " tier="
                              << simd::TierName(cfg.tier)
                              << " vnni=" << cfg.vnni;
    }
  }
}

TEST(Int8DotTest, FusedDotDequantMatchesComposedOnEveryTier) {
  // Int8DotDequantRows must be bitwise identical to Int8DotRows followed by
  // DequantRow, on every tier, for ragged lengths (exercising the preload,
  // tail-k, and remainder-row paths) and partial row ranges. The k > 64
  // cases exceed the AVX2 activation preload window and take its fallback.
  Rng rng(23);
  for (int64_t k : {1, 31, 32, 33, 96, 100, 260}) {
    constexpr int64_t kR = 11;
    std::vector<int8_t> a(k), b(kR * k);
    for (auto& v : a) v = static_cast<int8_t>(rng.UniformInt(255)) % 127;
    for (auto& v : b) v = static_cast<int8_t>(rng.UniformInt(255)) % 127;
    const float act_scale = 0.037f;
    std::vector<float> scales(kR);
    for (auto& s : scales) s = rng.Uniform(1e-3f, 2.0f);
    // Composed reference on the scalar tier.
    std::vector<int32_t> acc(kR);
    std::vector<float> want(kR);
    {
      simd::ScopedTier guard(simd::Tier::kScalar);
      simd::Int8DotRows(a.data(), b.data(), acc.data(), k, 0, kR);
      simd::DequantRow(acc.data(), act_scale, scales.data(), want.data(), kR);
    }
    for (const KernelConfig& cfg : KernelConfigs()) {
      simd::ScopedTier guard(cfg.tier);
      simd::ScopedAvxVnni vguard(cfg.vnni);
      std::vector<float> got(kR, -1.0f);
      simd::Int8DotDequantRows(a.data(), act_scale, b.data(), scales.data(),
                               got.data(), k, 0, kR);
      for (int64_t r = 0; r < kR; ++r) {
        const size_t i = static_cast<size_t>(r);
        EXPECT_EQ(std::memcmp(&got[i], &want[i], sizeof(float)), 0)
            << "k=" << k << " row=" << r << " tier="
            << simd::TierName(cfg.tier) << " vnni=" << cfg.vnni
            << " got=" << got[i] << " want=" << want[i];
      }
      std::vector<float> part(kR, -1.0f);
      simd::Int8DotDequantRows(a.data(), act_scale, b.data(), scales.data(),
                               part.data(), k, 3, 8);
      for (int64_t r = 3; r < 8; ++r) {
        const size_t i = static_cast<size_t>(r);
        EXPECT_EQ(std::memcmp(&part[i], &want[i], sizeof(float)), 0);
      }
      EXPECT_EQ(part[0], -1.0f);
      EXPECT_EQ(part[kR - 1], -1.0f);
    }
  }
}

TEST(Int8DotTest, TileMatchesRowKernelOnEveryTier) {
  // Int8DotDequantTile = na independent Int8DotDequantRows calls, bitwise,
  // on every tier — including odd na (the paired AVX2 sweep plus a single
  // trailing row) and k values off the fixed-shape fast paths.
  Rng rng(31);
  for (int64_t k : {32, 64, 48}) {
    for (int64_t na : {1, 2, 5}) {
      constexpr int64_t kR = 13;
      const int64_t ldo = kR + 3;  // output stride != row count
      std::vector<int8_t> a(na * k), b(kR * k);
      for (auto& v : a) v = static_cast<int8_t>(rng.UniformInt(255)) % 127;
      for (auto& v : b) v = static_cast<int8_t>(rng.UniformInt(255)) % 127;
      std::vector<float> act_scales(na), scales(kR);
      for (auto& s : act_scales) s = rng.Uniform(1e-3f, 0.5f);
      for (auto& s : scales) s = rng.Uniform(1e-3f, 2.0f);
      std::vector<float> want(na * ldo, -7.0f);
      {
        simd::ScopedTier guard(simd::Tier::kScalar);
        for (int64_t i = 0; i < na; ++i) {
          simd::Int8DotDequantRows(a.data() + i * k, act_scales[i], b.data(),
                                   scales.data(), want.data() + i * ldo, k, 0,
                                   kR);
        }
      }
      for (const KernelConfig& cfg : KernelConfigs()) {
        simd::ScopedTier guard(cfg.tier);
        simd::ScopedAvxVnni vguard(cfg.vnni);
        std::vector<float> got(na * ldo, -7.0f);
        simd::Int8DotDequantTile(a.data(), act_scales.data(), na, b.data(),
                                 scales.data(), got.data(), ldo, k, 0, kR);
        for (int64_t i = 0; i < na; ++i) {
          for (int64_t r = 0; r < kR; ++r) {
            const size_t idx = static_cast<size_t>(i * ldo + r);
            EXPECT_EQ(std::memcmp(&got[idx], &want[idx], sizeof(float)), 0)
                << "k=" << k << " na=" << na << " i=" << i << " r=" << r
                << " tier=" << simd::TierName(cfg.tier)
                << " vnni=" << cfg.vnni;
          }
          // Stride padding beyond each row stays untouched.
          EXPECT_EQ(got[static_cast<size_t>(i * ldo + kR)], -7.0f);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 3. Plan-level properties of the int8 catalog tier.
// ---------------------------------------------------------------------------

constexpr int32_t kItems = 57;
constexpr int32_t kBehaviors = 3;
constexpr int64_t kMaxLen = 14;

std::unique_ptr<core::MisslModel> MakeModel(const core::MisslConfig& cfg) {
  return std::make_unique<core::MisslModel>(kItems, kBehaviors, kMaxLen, cfg);
}

core::MisslConfig BaseConfig() {
  core::MisslConfig cfg;
  cfg.dim = 16;
  cfg.heads = 2;
  cfg.num_interests = 3;
  cfg.seed = 21;
  return cfg;
}

/// Same deterministic batch shape as tests/infer_test.cc: padded-short rows,
/// single-channel rows, repeated items.
data::Batch MakeBatch(int64_t batch_size, uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.batch_size = batch_size;
  b.max_len = kMaxLen;
  b.num_behaviors = kBehaviors;
  int64_t bt = batch_size * kMaxLen;
  b.merged_items.assign(static_cast<size_t>(bt), -1);
  b.merged_behaviors.assign(static_cast<size_t>(bt), -1);
  b.merged_recency.assign(static_cast<size_t>(bt), -1);
  b.targets.assign(static_cast<size_t>(batch_size), -1);
  b.target_behavior.assign(static_cast<size_t>(batch_size), kBehaviors - 1);
  b.users.resize(static_cast<size_t>(batch_size));
  for (int64_t row = 0; row < batch_size; ++row) {
    b.users[static_cast<size_t>(row)] = static_cast<int32_t>(row);
    int64_t n = 1 + (row * 5) % kMaxLen;
    for (int64_t i = 0; i < n; ++i) {
      size_t pos = static_cast<size_t>(row * kMaxLen + (kMaxLen - n + i));
      int32_t item = static_cast<int32_t>(rng.UniformInt(kItems / 3));
      int32_t beh = static_cast<int32_t>(rng.UniformInt(kBehaviors));
      if (row % 3 == 1) beh = kBehaviors - 1;
      if (row % 3 == 2) beh = 0;
      b.merged_items[pos] = item;
      b.merged_behaviors[pos] = beh;
      b.merged_recency[pos] = static_cast<int32_t>(rng.UniformInt(8));
    }
  }
  return b;
}

struct PlanPair {
  std::unique_ptr<infer::PlannedExecutor> fp32;
  std::unique_ptr<infer::PlannedExecutor> int8;
};

PlanPair CompileBoth(const core::MisslModel& model, const Tensor& catalog,
                     int64_t max_batch) {
  Status status;
  PlanPair p;
  p.fp32 = infer::PlannedExecutor::Compile(model, catalog, max_batch, &status);
  EXPECT_TRUE(status.ok()) << status.ToString();
  infer::InferConfig icfg;
  icfg.quantize_catalog = true;
  p.int8 = infer::PlannedExecutor::Compile(model, catalog, max_batch, icfg,
                                           &status);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return p;
}

/// The int8 determinism contract: the scalar 1-thread run is the reference
/// and every tier x thread-count combination must reproduce it bitwise.
/// (Stronger than fp32's rule: integer accumulation makes this automatic,
/// but the quantize + dequant stages are fp32 and must stay order-fixed.)
void ExpectInt8Deterministic(const core::MisslConfig& cfg, int64_t batch_size,
                             int64_t max_batch) {
  auto model = MakeModel(cfg);
  model->SetTraining(false);
  data::Batch batch = MakeBatch(batch_size, cfg.seed + 7);
  Tensor catalog;
  {
    NoGradGuard ng;
    catalog = model->PrecomputeCatalog();
  }
  Status status;
  infer::InferConfig icfg;
  icfg.quantize_catalog = true;
  auto plan = infer::PlannedExecutor::Compile(*model, catalog, max_batch, icfg,
                                              &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_TRUE(plan->quantized());

  std::vector<float> reference;
  for (const KernelConfig& kcfg : KernelConfigs()) {
    simd::ScopedTier tier_guard(kcfg.tier);
    simd::ScopedAvxVnni vnni_guard(kcfg.vnni);
    for (int threads : {1, 2, 4}) {
      runtime::ScopedNumThreads thread_guard(threads);
      const float* got = plan->Run(batch);
      if (reference.empty()) {
        reference.assign(got, got + batch_size * kItems);
        continue;
      }
      size_t mismatch = 0;
      for (int64_t i = 0; i < batch_size * kItems; ++i) {
        if (got[i] != reference[static_cast<size_t>(i)]) ++mismatch;
      }
      EXPECT_EQ(mismatch, 0u)
          << mismatch << " of " << batch_size * kItems
          << " int8 scores differ from the scalar/1-thread reference at tier="
          << simd::TierName(kcfg.tier) << " vnni=" << kcfg.vnni
          << " threads=" << threads;
    }
  }
}

TEST(QuantPlanTest, Int8DeterministicAcrossTiersAndThreadsMaxRouting) {
  ExpectInt8Deterministic(BaseConfig(), /*batch_size=*/6, /*max_batch=*/6);
}

TEST(QuantPlanTest, Int8DeterministicAcrossTiersAndThreadsMeanRouting) {
  core::MisslConfig cfg = BaseConfig();
  cfg.routing = core::InterestRouting::kMean;
  ExpectInt8Deterministic(cfg, 5, 5);
}

TEST(QuantPlanTest, Int8DeterministicSmallerBatchThanCapacity) {
  ExpectInt8Deterministic(BaseConfig(), /*batch_size=*/2, /*max_batch=*/8);
}

TEST(QuantPlanTest, SteadyStateInt8RunsAllocateNothing) {
  auto model = MakeModel(BaseConfig());
  model->SetTraining(false);
  Tensor catalog;
  {
    NoGradGuard ng;
    catalog = model->PrecomputeCatalog();
  }
  Status status;
  infer::InferConfig icfg;
  icfg.quantize_catalog = true;
  auto plan =
      infer::PlannedExecutor::Compile(*model, catalog, 8, icfg, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  data::Batch big = MakeBatch(8, 11);
  data::Batch small = MakeBatch(3, 12);
  plan->Run(big);  // warmup
  alloc::AllocStats before = alloc::GetAllocStats();
  for (int i = 0; i < 20; ++i) plan->Run(i % 2 == 0 ? big : small);
  alloc::AllocStats after = alloc::GetAllocStats();
  EXPECT_EQ(after.pool_hits - before.pool_hits, 0);
  EXPECT_EQ(after.pool_misses - before.pool_misses, 0);
  EXPECT_EQ(after.system_allocs - before.system_allocs, 0);
}

TEST(QuantPlanTest, IntrospectionAndMemoryFootprint) {
  auto model = MakeModel(BaseConfig());
  model->SetTraining(false);
  Tensor catalog;
  {
    NoGradGuard ng;
    catalog = model->PrecomputeCatalog();
  }
  PlanPair p = CompileBoth(*model, catalog, 4);
  ASSERT_NE(p.int8, nullptr);
  EXPECT_FALSE(p.fp32->quantized());
  EXPECT_TRUE(p.int8->quantized());
  std::string dump = p.int8->ToString();
  EXPECT_NE(dump.find("catalog_score_q"), std::string::npos) << dump;
  EXPECT_EQ(p.fp32->ToString().find("catalog_score_q"), std::string::npos);

  const infer::QuantInfo& qi = p.int8->quant_info();
  const int64_t d = BaseConfig().dim;
  EXPECT_EQ(qi.fp32_bytes, int64_t{kItems} * d * 4);
  EXPECT_EQ(qi.int8_bytes, int64_t{kItems} * d + int64_t{kItems} * 4);
  // Catalog memory ratio: 4d / (d + 4) — 3.2x at d = 16, approaching 4x as
  // d grows. The bench (bench_m1_infer) gates the d = 32 serving shape.
  EXPECT_GT(static_cast<double>(qi.fp32_bytes) /
                static_cast<double>(qi.int8_bytes),
            3.0);
  EXPECT_GT(qi.max_scale, 0.0f);
  EXPECT_GE(qi.max_scale, qi.min_scale);
  EXPECT_EQ(qi.zero_rows, 0);  // seeded embeddings: no all-zero item rows
}

// NDCG@10 with the fp32 ranking as ground truth: per row, the "relevant"
// item is the fp32 argmax, so fp32 NDCG@10 is exactly 1 and the int8 score
// directly measures how well quantized scoring preserves the fp32 ranking.
// Overlap@10 is |fp32-top10 ∩ int8-top10| / 10 (a Recall@10 with the fp32
// top-10 as the relevant set). Bounds: seeds 21/28 give 1.0/1.0 locally;
// the gates leave room (>= 0.90 / >= 0.80) for platform fp32 drift in the
// pre-quantization forward without letting a broken tier through (a
// misquantized catalog scores ~0.1 overlap).
TEST(QuantPlanTest, Int8RankingStaysCloseToFp32) {
  auto model = MakeModel(BaseConfig());
  model->SetTraining(false);
  constexpr int64_t kBatch = 24;
  data::Batch batch = MakeBatch(kBatch, 28);
  Tensor catalog;
  {
    NoGradGuard ng;
    catalog = model->PrecomputeCatalog();
  }
  PlanPair p = CompileBoth(*model, catalog, kBatch);
  ASSERT_NE(p.fp32, nullptr);
  ASSERT_NE(p.int8, nullptr);
  std::vector<float> fp32(kBatch * kItems);
  std::memcpy(fp32.data(), p.fp32->Run(batch), fp32.size() * sizeof(float));
  const float* q = p.int8->Run(batch);

  constexpr int32_t kK = 10;
  double ndcg_sum = 0, overlap_sum = 0;
  for (int64_t r = 0; r < kBatch; ++r) {
    std::vector<int32_t> fp_items, q_items;
    std::vector<float> fp_scores, q_scores;
    core::TopKRow(fp32.data() + r * kItems, kItems, nullptr, kK, &fp_items,
                  &fp_scores);
    core::TopKRow(q + r * kItems, kItems, nullptr, kK, &q_items, &q_scores);
    ASSERT_EQ(fp_items.size(), static_cast<size_t>(kK));
    int32_t relevant = fp_items[0];  // fp32 argmax
    double ndcg = 0;
    for (size_t j = 0; j < q_items.size(); ++j) {
      if (q_items[j] == relevant) {
        ndcg = 1.0 / std::log2(static_cast<double>(j) + 2.0);
        break;
      }
    }
    ndcg_sum += ndcg;
    int hits = 0;
    for (int32_t it : q_items) {
      if (std::find(fp_items.begin(), fp_items.end(), it) != fp_items.end()) {
        ++hits;
      }
    }
    overlap_sum += static_cast<double>(hits) / kK;
  }
  double mean_ndcg = ndcg_sum / kBatch;
  double mean_overlap = overlap_sum / kBatch;
  EXPECT_GE(mean_ndcg, 0.90) << "int8 NDCG@10 vs fp32-argmax relevance";
  EXPECT_GE(mean_overlap, 0.80) << "top-10 overlap with the fp32 ranking";
}

// ---------------------------------------------------------------------------
// Serving integration.
// ---------------------------------------------------------------------------

TEST(QuantServeTest, Int8RequiresPlannedExecutor) {
  core::MisslConfig cfg = BaseConfig();
  auto saved = MakeModel(cfg);
  std::string path = ::testing::TempDir() + "/quant_reject_ckpt.bin";
  ASSERT_TRUE(nn::SaveParameters(*saved, path).ok());
  serve::ServeConfig sc;
  sc.max_len = kMaxLen;
  sc.precision = serve::Precision::kInt8;  // executor left at kGraph
  Status status;
  auto svc = serve::RecoService::Load(MakeModel(cfg), kItems, kBehaviors, path,
                                      sc, &status);
  EXPECT_EQ(svc, nullptr);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("planned"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(QuantServeTest, Int8ServiceMatchesOfflineInt8Plan) {
  // The serving property: coalescing must not change an int8 answer. Row
  // independence makes every sub-batch bitwise equal to the one-shot full
  // batch through an offline int8 plan, so the comparison is exact.
  core::MisslConfig cfg = BaseConfig();
  auto saved = MakeModel(cfg);
  std::string path = ::testing::TempDir() + "/quant_serve_ckpt.bin";
  ASSERT_TRUE(nn::SaveParameters(*saved, path).ok());

  serve::ServeConfig sc;
  sc.max_len = kMaxLen;
  sc.max_batch = 4;
  sc.max_wait_us = 0;
  sc.executor = serve::ExecutorKind::kPlanned;
  sc.precision = serve::Precision::kInt8;
  Status status;
  auto svc = serve::RecoService::Load(MakeModel(cfg), kItems, kBehaviors, path,
                                      sc, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_NE(svc->planned_executor(), nullptr);
  EXPECT_TRUE(svc->planned_executor()->quantized());

  // Offline reference on the full query set in one batch.
  auto offline = MakeModel(cfg);
  ASSERT_TRUE(nn::LoadParametersForInference(offline.get(), path).ok());
  Tensor catalog;
  {
    NoGradGuard ng;
    catalog = offline->PrecomputeCatalog();
  }
  Rng rng(5);
  std::vector<serve::Query> queries;
  for (int i = 0; i < 12; ++i) {
    serve::Query qq;
    int64_t len = 1 + static_cast<int64_t>(rng.UniformInt(2 * kMaxLen));
    for (int64_t j = 0; j < len; ++j) {
      qq.items.push_back(static_cast<int32_t>(rng.UniformInt(kItems)));
      qq.behaviors.push_back(static_cast<int32_t>(rng.UniformInt(kBehaviors)));
    }
    qq.k = 7;
    queries.push_back(std::move(qq));
  }
  infer::InferConfig icfg;
  icfg.quantize_catalog = true;
  auto plan = infer::PlannedExecutor::Compile(
      *offline, catalog, static_cast<int64_t>(queries.size()), icfg, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  data::Batch batch = serve::BuildQueryBatch(queries, kMaxLen, kBehaviors);
  const float* scores = plan->Run(batch);

  for (size_t i = 0; i < queries.size(); ++i) {
    serve::TopKResult got;
    ASSERT_TRUE(svc->TopK(queries[i], &got).ok());
    std::vector<int32_t> want_items;
    std::vector<float> want_scores;
    core::TopKRow(scores + i * static_cast<size_t>(kItems), kItems, nullptr,
                  queries[i].k, &want_items, &want_scores);
    ASSERT_EQ(got.items.size(), want_items.size()) << "query " << i;
    for (size_t j = 0; j < want_items.size(); ++j) {
      EXPECT_EQ(got.items[j], want_items[j]) << "query " << i << " rank " << j;
      EXPECT_EQ(got.scores[j], want_scores[j])
          << "query " << i << " rank " << j;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace missl
