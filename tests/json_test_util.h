// Minimal strict JSON parser shared by the observability tests
// (tests/obs_test.cc, tests/exposition_test.cc). Validates the exporters'
// output without external dependencies; supports the full JSON grammar the
// exporters can emit. Parse failure fails the test via ParseJsonOrFail.
#ifndef MISSL_TESTS_JSON_TEST_UTIL_H_
#define MISSL_TESTS_JSON_TEST_UTIL_H_

#include <cctype>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace missl::testutil {

struct JVal {
  enum Type { kNull, kBool, kNum, kStr, kArr, kObj };
  Type type = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JVal> arr;
  std::vector<std::pair<std::string, JVal>> obj;

  const JVal* Get(const std::string& key) const {
    for (const auto& kv : obj) {
      if (kv.first == key) return &kv.second;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool Parse(JVal* out) {
    bool ok = Value(out);
    Ws();
    return ok && pos_ == s_.size();
  }

 private:
  void Ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool Literal(const char* lit) {
    size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
                return false;
            }
            pos_ += 4;
            out->push_back('?');  // code point value irrelevant for the tests
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters are invalid JSON
      } else {
        out->push_back(c);
      }
    }
    return false;
  }
  bool Value(JVal* out) {
    Ws();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = JVal::kObj;
      Ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        Ws();
        std::string key;
        if (!String(&key)) return false;
        Ws();
        if (pos_ >= s_.size() || s_[pos_++] != ':') return false;
        JVal v;
        if (!Value(&v)) return false;
        out->obj.emplace_back(std::move(key), std::move(v));
        Ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = JVal::kArr;
      Ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        JVal v;
        if (!Value(&v)) return false;
        out->arr.push_back(std::move(v));
        Ws();
        if (pos_ >= s_.size()) return false;
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->type = JVal::kStr;
      return String(&out->str);
    }
    if (c == 't') {
      out->type = JVal::kBool;
      out->b = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->type = JVal::kBool;
      out->b = false;
      return Literal("false");
    }
    if (c == 'n') return Literal("null");
    // number
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return false;
    out->type = JVal::kNum;
    out->num = std::stod(s_.substr(start, pos_ - start));
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

inline JVal ParseJsonOrFail(const std::string& s, const std::string& what) {
  JVal v;
  EXPECT_TRUE(JsonParser(s).Parse(&v)) << what << " is not valid JSON:\n" << s;
  return v;
}

}  // namespace missl::testutil

#endif  // MISSL_TESTS_JSON_TEST_UTIL_H_
