// Tests for ranking metrics and the leave-one-out evaluator protocol.
#include "eval/evaluator.h"
#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace missl::eval {
namespace {

TEST(MetricsTest, HitRateBoundary) {
  EXPECT_EQ(HitRate(0, 5), 1.0);
  EXPECT_EQ(HitRate(4, 5), 1.0);
  EXPECT_EQ(HitRate(5, 5), 0.0);
  EXPECT_EQ(HitRate(99, 10), 0.0);
}

TEST(MetricsTest, NdcgValues) {
  EXPECT_DOUBLE_EQ(Ndcg(0, 10), 1.0);
  EXPECT_NEAR(Ndcg(1, 10), 1.0 / std::log2(3.0), 1e-12);
  EXPECT_EQ(Ndcg(10, 10), 0.0);
}

TEST(MetricsTest, ReciprocalRank) {
  EXPECT_DOUBLE_EQ(ReciprocalRank(0), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(3), 0.25);
}

TEST(MetricsTest, AccumulatorAverages) {
  MetricAccumulator acc;
  acc.Add(0);   // perfect
  acc.Add(50);  // miss for all K
  acc.Finalize();
  EXPECT_EQ(acc.count, 2);
  EXPECT_DOUBLE_EQ(acc.hr10, 0.5);
  EXPECT_DOUBLE_EQ(acc.ndcg10, 0.5);
  EXPECT_NEAR(acc.mrr, (1.0 + 1.0 / 51.0) / 2.0, 1e-12);
}

TEST(MetricsTest, MonotoneInRank) {
  for (int64_t r = 1; r < 20; ++r) {
    EXPECT_LE(Ndcg(r, 20), Ndcg(r - 1, 20));
    EXPECT_LE(ReciprocalRank(r), ReciprocalRank(r - 1));
  }
}

// An oracle model that always scores the true target highest, and an
// adversarial one that always scores it lowest.
class FixedRankModel : public core::SeqRecModel {
 public:
  explicit FixedRankModel(bool oracle) : oracle_(oracle) {}
  std::string Name() const override { return oracle_ ? "Oracle" : "Worst"; }
  Tensor Loss(const data::Batch&) override { return Tensor::Scalar(0.0f); }
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>&,
                         int64_t num_cands) override {
    Tensor s = Tensor::Zeros({batch.batch_size, num_cands});
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      s.data()[b * num_cands] = oracle_ ? 1.0f : -1.0f;  // index 0 = target
    }
    return s;
  }

 private:
  bool oracle_;
};

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest()
      : ds_(MakeDs()), split_(ds_), evaluator_(ds_, split_, MakeCfg()) {}

  static data::Dataset MakeDs() {
    data::SyntheticConfig cfg;
    cfg.num_users = 50;
    cfg.num_items = 200;
    cfg.min_events = 15;
    cfg.max_events = 30;
    cfg.seed = 9;
    return data::GenerateSynthetic(cfg);
  }
  static EvalConfig MakeCfg() {
    EvalConfig ec;
    ec.num_negatives = 20;
    ec.max_len = 10;
    return ec;
  }

  data::Dataset ds_;
  data::SplitView split_;
  Evaluator evaluator_;
};

TEST_F(EvaluatorTest, OracleGetsPerfectScores) {
  FixedRankModel oracle(true);
  EvalResult r = evaluator_.Evaluate(&oracle);
  EXPECT_DOUBLE_EQ(r.hr5, 1.0);
  EXPECT_DOUBLE_EQ(r.ndcg10, 1.0);
  EXPECT_DOUBLE_EQ(r.mrr, 1.0);
  EXPECT_EQ(r.num_users, 50);
}

TEST_F(EvaluatorTest, WorstModelScoresZeroTopK) {
  FixedRankModel worst(false);
  EvalResult r = evaluator_.Evaluate(&worst);
  EXPECT_DOUBLE_EQ(r.hr10, 0.0);
  EXPECT_DOUBLE_EQ(r.ndcg10, 0.0);
  // rank = 20 (all negatives above) -> MRR = 1/21.
  EXPECT_NEAR(r.mrr, 1.0 / 21.0, 1e-9);
}

TEST_F(EvaluatorTest, SubsetEvaluatesOnlyGivenUsers) {
  FixedRankModel oracle(true);
  std::vector<int32_t> subset = {evaluator_.eval_users()[0],
                                 evaluator_.eval_users()[1]};
  EvalResult r = evaluator_.EvaluateSubset(&oracle, subset, true);
  EXPECT_EQ(r.num_users, 2);
}

TEST_F(EvaluatorTest, ValidAndTestUseDifferentTargets) {
  // A model that memorizes nothing still sees different candidate lists;
  // verify valid/test produce independent (non-identical) results for a
  // score function that depends on candidate id parity.
  class ParityModel : public core::SeqRecModel {
   public:
    std::string Name() const override { return "Parity"; }
    Tensor Loss(const data::Batch&) override { return Tensor::Scalar(0.0f); }
    Tensor ScoreCandidates(const data::Batch&,
                           const std::vector<int32_t>& cand_ids,
                           int64_t num_cands) override {
      int64_t b = static_cast<int64_t>(cand_ids.size()) / num_cands;
      Tensor s = Tensor::Zeros({b, num_cands});
      for (size_t i = 0; i < cand_ids.size(); ++i)
        s.data()[i] = cand_ids[i] % 2 == 0 ? 1.0f : 0.0f;
      return s;
    }
  } model;
  EvalResult test = evaluator_.Evaluate(&model, true);
  EvalResult valid = evaluator_.Evaluate(&model, false);
  EXPECT_NE(test.mrr, valid.mrr);
}

TEST_F(EvaluatorTest, EvalRestoresTrainingMode) {
  FixedRankModel oracle(true);
  oracle.SetTraining(true);
  evaluator_.Evaluate(&oracle);
  EXPECT_TRUE(oracle.training());
}

TEST_F(EvaluatorTest, NegativesInvariantToOtherUsers) {
  // Negatives come from an independent per-user RNG stream, so filtering a
  // user out of the split must not perturb anyone else's candidates. (A
  // single shared RNG would shift every later user's draws.)
  ASSERT_GE(evaluator_.eval_users().size(), 3u);
  int32_t removed = evaluator_.eval_users()[0];
  int32_t kept = evaluator_.eval_users()[2];
  data::SplitView filtered = split_;
  filtered.test_pos[static_cast<size_t>(removed)] = -1;
  Evaluator ev2(ds_, filtered, MakeCfg());
  EXPECT_TRUE(ev2.test_negatives(removed).empty());
  EXPECT_EQ(evaluator_.test_negatives(kept), ev2.test_negatives(kept));
  EXPECT_EQ(evaluator_.valid_negatives(kept), ev2.valid_negatives(kept));
}

TEST_F(EvaluatorTest, TestAndValidNegativesDifferPerUser) {
  // Both cuts draw from the same per-user stream sequentially; they should
  // not be byte-identical lists (targets differ and draws continue).
  int32_t u = evaluator_.eval_users()[0];
  EXPECT_NE(evaluator_.test_negatives(u), evaluator_.valid_negatives(u));
}

TEST_F(EvaluatorTest, NegativesAreReproducibleAcrossEvaluators) {
  // Two evaluators with the same seed must rank identically.
  Evaluator ev2(ds_, split_, MakeCfg());
  FixedRankModel worst(false);
  EvalResult a = evaluator_.Evaluate(&worst);
  EvalResult b = ev2.Evaluate(&worst);
  EXPECT_DOUBLE_EQ(a.mrr, b.mrr);
}

}  // namespace
}  // namespace missl::eval
