// Tests for the exposition layer (obs/exposition.h) and the flight recorder
// (obs/flight_recorder.h): Prometheus text validity (validated end-to-end
// through serve::ParsePrometheusText, the same strict parser the bench and
// CI scrape checks use), name/label sanitization, snapshot JSON/delta/
// percentile semantics, flight-recorder ring behavior (overwrite-oldest,
// fixed capacity, clear, disabled no-op), and a concurrent
// scrape-while-updating run that the TSan CI leg exercises for data races.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/loadgen.h"
#include "utils/rng.h"

#include "json_test_util.h"

namespace missl {
namespace {

using testutil::JVal;
using testutil::ParseJsonOrFail;

// Metrics are opt-in; the flight recorder's startup default depends on the
// environment. Every test here pins both and restores the defaults so
// cross-test state stays predictable.
class ExpositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetMetricsEnabled(true);
    obs::SetFlightRecorderEnabled(true);
    obs::ClearFlightRecorder();
  }
  void TearDown() override {
    obs::StopTracing();
    obs::ClearFlightRecorder();
    obs::SetFlightRecorderEnabled(true);
    obs::SetMetricsEnabled(false);
  }
};

TEST_F(ExpositionTest, PrometheusNameSanitization) {
  EXPECT_EQ(obs::PrometheusName("serve.tcp.bytes_in"), "serve_tcp_bytes_in");
  EXPECT_EQ(obs::PrometheusName("already_fine:name"), "already_fine:name");
  EXPECT_EQ(obs::PrometheusName("weird-chars/and spaces"),
            "weird_chars_and_spaces");
  // A leading digit is prefixed, not replaced, so distinct names stay
  // distinct after sanitization.
  EXPECT_EQ(obs::PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(obs::PrometheusName(""), "_");
}

TEST_F(ExpositionTest, PrometheusLabelEscape) {
  EXPECT_EQ(obs::PrometheusLabelEscape("plain"), "plain");
  EXPECT_EQ(obs::PrometheusLabelEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PrometheusLabelEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::PrometheusLabelEscape("line\nbreak"), "line\\nbreak");
}

TEST_F(ExpositionTest, PrometheusTextParsesAndRoundTripsValues) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter& c = reg.GetCounter("expo.test.requests");
  obs::Gauge& g = reg.GetGauge("expo.test.depth");
  obs::Histogram& h = reg.GetHistogram("expo.test.latency_ns");
  c.Reset();
  h.Reset();
  c.Add(42);
  g.Set(-7);
  for (int i = 0; i < 100; ++i) h.Observe(i * 37);

  std::string text = obs::PrometheusText(reg.Snapshot());

  std::map<std::string, double> scalars;
  std::map<std::string, serve::PromHistogram> histograms;
  ASSERT_TRUE(serve::ParsePrometheusText(text, &scalars, &histograms))
      << "PrometheusText output rejected by the scrape parser:\n"
      << text;

  ASSERT_TRUE(scalars.count("expo_test_requests"));
  EXPECT_EQ(scalars["expo_test_requests"], 42);
  ASSERT_TRUE(scalars.count("expo_test_depth"));
  EXPECT_EQ(scalars["expo_test_depth"], -7);

  ASSERT_TRUE(histograms.count("expo_test_latency_ns"));
  const serve::PromHistogram& ph = histograms["expo_test_latency_ns"];
  EXPECT_EQ(ph.count, h.count());
  EXPECT_EQ(ph.sum, h.sum());
  // Cumulative-monotone with a final +Inf equal to _count is enforced by
  // the parser; pin the shape on top: one le per finite pow2 bound + +Inf.
  ASSERT_EQ(static_cast<int>(ph.buckets.size()), obs::Histogram::kNumBuckets);
  int64_t cum = 0;
  for (int i = 0; i < obs::Histogram::kNumBuckets - 1; ++i) {
    cum += h.bucket(i);
    EXPECT_EQ(ph.buckets[i].first,
              static_cast<double>(obs::Histogram::BucketUpperBound(i)));
    EXPECT_EQ(ph.buckets[i].second, cum);
  }
  EXPECT_EQ(ph.buckets.back().second, h.count());
}

TEST_F(ExpositionTest, PrometheusTextStableOrderingAndByteStable) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("expo.order.b");
  reg.GetCounter("expo.order.a");
  reg.GetGauge("expo.order.c");

  obs::MetricsSnapshot snap = reg.Snapshot();
  std::string text = obs::PrometheusText(snap);
  EXPECT_EQ(text, obs::PrometheusText(snap))
      << "same snapshot must render byte-identically";

  // "# TYPE" families must appear in sorted name order within each section
  // (counters, then gauges, then histograms) so diffs between scrapes are
  // positionally stable.
  std::vector<std::string> counter_families;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream ls(line);
    std::string hash, type, fam, kind;
    if ((ls >> hash >> type >> fam >> kind) && hash == "#" &&
        type == "TYPE" && kind == "counter") {
      counter_families.push_back(fam);
    }
  }
  ASSERT_GE(counter_families.size(), 2u);
  EXPECT_TRUE(std::is_sorted(counter_families.begin(), counter_families.end()))
      << "counter families not in sorted order";
}

TEST_F(ExpositionTest, SnapshotToJsonIsValidJson) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("expo.json.counter").Add(3);
  reg.GetHistogram("expo.json.hist").Observe(1000);

  JVal root = ParseJsonOrFail(obs::SnapshotToJson(reg.Snapshot()),
                              "SnapshotToJson()");
  ASSERT_EQ(root.type, JVal::kObj);
  const JVal* counters = root.Get("counters");
  const JVal* gauges = root.Get("gauges");
  const JVal* histograms = root.Get("histograms");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(histograms, nullptr);
  ASSERT_EQ(histograms->type, JVal::kObj);
  const JVal* h = histograms->Get("expo.json.hist");
  ASSERT_NE(h, nullptr);
  const JVal* count = h->Get("count");
  ASSERT_NE(count, nullptr);
  EXPECT_GE(count->num, 1);
  ASSERT_NE(h->Get("buckets"), nullptr);
  EXPECT_EQ(h->Get("buckets")->type, JVal::kArr);
}

TEST_F(ExpositionTest, SnapshotDeltaSemantics) {
  obs::MetricsSnapshot base;
  base.counters["c.common"] = 10;
  base.gauges["g"] = 5;
  obs::HistogramSnapshot hb;
  hb.count = 4;
  hb.sum = 40;
  hb.buckets[3] = 4;
  base.histograms["h"] = hb;

  obs::MetricsSnapshot cur;
  cur.counters["c.common"] = 25;
  cur.counters["c.new"] = 7;  // absent in base: passes through
  cur.gauges["g"] = 2;
  obs::HistogramSnapshot hc;
  hc.count = 9;
  hc.sum = 100;
  hc.buckets[3] = 6;
  hc.buckets[5] = 3;
  cur.histograms["h"] = hc;

  obs::MetricsSnapshot d = obs::SnapshotDelta(cur, base);
  EXPECT_EQ(d.counters["c.common"], 15);
  EXPECT_EQ(d.counters["c.new"], 7);
  // Gauges are point-in-time: delta keeps the current value.
  EXPECT_EQ(d.gauges["g"], 2);
  EXPECT_EQ(d.histograms["h"].count, 5);
  EXPECT_EQ(d.histograms["h"].sum, 60);
  EXPECT_EQ(d.histograms["h"].buckets[3], 2);
  EXPECT_EQ(d.histograms["h"].buckets[5], 3);
}

TEST_F(ExpositionTest, SnapshotPercentileMatchesApproxPercentile) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Histogram& h = reg.GetHistogram("expo.pct.hist");
  h.Reset();
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    h.Observe(static_cast<int64_t>(rng.UniformInt(1000000)));
  }
  obs::HistogramSnapshot snap = reg.Snapshot().histograms["expo.pct.hist"];
  for (double p : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(obs::SnapshotPercentile(snap, p), h.ApproxPercentile(p))
        << "p=" << p;
  }
  obs::HistogramSnapshot empty;
  EXPECT_EQ(obs::SnapshotPercentile(empty, 0.5), 0);
}

TEST_F(ExpositionTest, SnapshotPercentileEmptyHistogram) {
  // An empty histogram has no data to rank: every percentile is 0, including
  // the out-of-range p values (clamped, not UB).
  obs::HistogramSnapshot empty;
  for (double p : {-1.0, 0.0, 0.5, 0.99, 1.0, 2.0}) {
    EXPECT_EQ(obs::SnapshotPercentile(empty, p), 0) << "p=" << p;
  }
  // A count-zero snapshot with stale bucket entries (e.g. a delta of two
  // identical snapshots after a reset skew) still reports 0.
  obs::HistogramSnapshot zeroed;
  zeroed.buckets[4] = 0;
  EXPECT_EQ(obs::SnapshotPercentile(zeroed, 0.5), 0);
}

TEST_F(ExpositionTest, SnapshotPercentileSingleBucket) {
  // With every observation in one bucket, every percentile (and every
  // clamped out-of-range p) is that bucket's upper bound.
  obs::HistogramSnapshot h;
  h.count = 7;
  h.sum = 7 * 5;
  h.buckets[3] = 7;
  const int64_t bound = obs::Histogram::BucketUpperBound(3);
  for (double p : {-0.5, 0.0, 0.25, 0.5, 0.99, 1.0, 1.5}) {
    EXPECT_EQ(obs::SnapshotPercentile(h, p), bound) << "p=" << p;
  }
  // Single observation: same story, count-1 ranking must not underflow.
  obs::HistogramSnapshot one;
  one.count = 1;
  one.sum = 3;
  one.buckets[2] = 1;
  for (double p : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(obs::SnapshotPercentile(one, p),
              obs::Histogram::BucketUpperBound(2))
        << "p=" << p;
  }
}

TEST_F(ExpositionTest, SnapshotDeltaEmptyAndSingleBucketHistograms) {
  // Empty-histogram corners of SnapshotDelta: identical snapshots cancel to
  // a zero histogram; an instrument absent from base passes through; an
  // instrument absent from cur is dropped (the delta describes cur).
  obs::HistogramSnapshot single;
  single.count = 5;
  single.sum = 50;
  single.buckets[6] = 5;

  obs::MetricsSnapshot base;
  base.histograms["h.same"] = single;
  base.histograms["h.gone"] = single;

  obs::MetricsSnapshot cur;
  cur.histograms["h.same"] = single;
  cur.histograms["h.empty"] = obs::HistogramSnapshot{};
  obs::HistogramSnapshot grown = single;
  grown.count = 8;
  grown.sum = 80;
  grown.buckets[6] = 8;
  cur.histograms["h.new"] = grown;

  obs::MetricsSnapshot d = obs::SnapshotDelta(cur, base);
  ASSERT_EQ(d.histograms.count("h.same"), 1u);
  EXPECT_EQ(d.histograms["h.same"].count, 0);
  EXPECT_EQ(d.histograms["h.same"].sum, 0);
  for (int i = 0; i < obs::Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(d.histograms["h.same"].buckets[i], 0) << "bucket " << i;
  }
  // The cancelled histogram ranks as empty, tying the two APIs together.
  EXPECT_EQ(obs::SnapshotPercentile(d.histograms["h.same"], 0.5), 0);

  // Absent from base: the full cur value passes through, still one bucket.
  ASSERT_EQ(d.histograms.count("h.new"), 1u);
  EXPECT_EQ(d.histograms["h.new"].count, 8);
  EXPECT_EQ(d.histograms["h.new"].buckets[6], 8);
  EXPECT_EQ(obs::SnapshotPercentile(d.histograms["h.new"], 1.0),
            obs::Histogram::BucketUpperBound(6));

  // Empty in cur, absent in base: passes through as empty, not dropped.
  ASSERT_EQ(d.histograms.count("h.empty"), 1u);
  EXPECT_EQ(d.histograms["h.empty"].count, 0);

  // Absent in cur: not resurrected from base.
  EXPECT_EQ(d.histograms.count("h.gone"), 0u);
}

TEST_F(ExpositionTest, BuildRevNonEmpty) {
  ASSERT_NE(obs::BuildRev(), nullptr);
  EXPECT_NE(std::string(obs::BuildRev()), "");
}

// ---- Flight recorder ------------------------------------------------------

// Counts "ph":"X" events in a Chrome trace document and checks the fields
// every event must carry.
int CountTraceEvents(const std::string& json, const std::string& what) {
  JVal root = ParseJsonOrFail(json, what);
  if (root.type != JVal::kObj) return -1;
  const JVal* events = root.Get("traceEvents");
  if (events == nullptr || events->type != JVal::kArr) return -1;
  for (const JVal& e : events->arr) {
    EXPECT_EQ(e.type, JVal::kObj);
    EXPECT_NE(e.Get("name"), nullptr);
    EXPECT_NE(e.Get("ts"), nullptr);
    EXPECT_NE(e.Get("dur"), nullptr);
    const JVal* ph = e.Get("ph");
    EXPECT_NE(ph, nullptr);
    if (ph != nullptr) {
      EXPECT_EQ(ph->str, "X");
    }
  }
  return static_cast<int>(events->arr.size());
}

TEST_F(ExpositionTest, FlightRecorderCapacityClamp) {
  // Capacity is fixed at first use; whatever the environment says, the
  // clamp contract bounds it.
  EXPECT_GE(obs::FlightRingCapacity(), 64u);
  EXPECT_LE(obs::FlightRingCapacity(), size_t{1} << 20);
}

TEST_F(ExpositionTest, FlightRecorderRecordsAndDumps) {
  const char* name = obs::InternedName("expo.flight.span");
  EXPECT_EQ(name, obs::InternedName("expo.flight.span"))
      << "interning must return stable pointers";
  for (int i = 0; i < 10; ++i) {
    obs::FlightRecord(name, "test", 1000 + i * 10, 5);
  }
  EXPECT_EQ(obs::FlightRecorderTotalRecorded(), 10);
  EXPECT_EQ(CountTraceEvents(obs::FlightRecorderToJson(), "flight dump"), 10);
}

TEST_F(ExpositionTest, FlightRecorderOverwritesOldestAtFixedCapacity) {
  const char* name = obs::InternedName("expo.flight.wrap");
  const int64_t cap = static_cast<int64_t>(obs::FlightRingCapacity());
  const int64_t total = cap + 100;
  for (int64_t i = 0; i < total; ++i) {
    obs::FlightRecord(name, "test", i, 1);
  }
  // Everything was counted, but only the newest `cap` records survive.
  EXPECT_EQ(obs::FlightRecorderTotalRecorded(), total);
  int dumped = CountTraceEvents(obs::FlightRecorderToJson(), "wrapped dump");
  EXPECT_LE(dumped, cap);
  EXPECT_GE(dumped, cap - 1);  // at most one slot lost to a dump mid-write
}

TEST_F(ExpositionTest, FlightRecorderClearEmptiesDump) {
  obs::FlightRecord(obs::InternedName("expo.flight.gone"), "test", 1, 1);
  EXPECT_GT(obs::FlightRecorderTotalRecorded(), 0);
  obs::ClearFlightRecorder();
  EXPECT_EQ(obs::FlightRecorderTotalRecorded(), 0);
  EXPECT_EQ(CountTraceEvents(obs::FlightRecorderToJson(), "cleared dump"), 0);
}

TEST_F(ExpositionTest, FlightRecorderDisabledIsNoOp) {
  obs::SetFlightRecorderEnabled(false);
  obs::FlightRecord(obs::InternedName("expo.flight.off"), "test", 1, 1);
  EXPECT_EQ(obs::FlightRecorderTotalRecorded(), 0);
}

TEST_F(ExpositionTest, TraceSpanLandsInRecorderWithoutStartTracing) {
  ASSERT_FALSE(obs::TracingEnabled());
  { obs::TraceSpan span("expo.flight.auto", "test"); }
  EXPECT_EQ(obs::FlightRecorderTotalRecorded(), 1);
  std::string json = obs::FlightRecorderToJson();
  EXPECT_EQ(CountTraceEvents(json, "span dump"), 1);
  EXPECT_NE(json.find("expo.flight.auto"), std::string::npos);
}

TEST_F(ExpositionTest, WriteFlightRecorderProducesValidFile) {
  obs::FlightRecord(obs::InternedName("expo.flight.file"), "test", 1, 2);
  std::string path = ::testing::TempDir() + "missl_flight_test.json";
  ASSERT_TRUE(obs::WriteFlightRecorder(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(CountTraceEvents(buf.str(), "flight file"), 1);
  std::remove(path.c_str());
}

// ---- Concurrency ----------------------------------------------------------

// Scrape-while-updating: worker threads hammer a counter, a histogram, and
// the flight recorder while a scraper loops snapshot -> render -> parse and
// dumps the recorder. The TSan CI leg runs this binary; any unsynchronized
// access in the exposition path or the seqlock rings shows up here. Final
// counts must be exact — scrapes never lose updates.
TEST_F(ExpositionTest, ConcurrentScrapeWhileUpdating) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter& c = reg.GetCounter("expo.conc.counter");
  obs::Histogram& h = reg.GetHistogram("expo.conc.hist");
  c.Reset();
  h.Reset();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<int> done{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const char* name = obs::InternedName("expo.conc.span");
      for (int i = 0; i < kPerThread; ++i) {
        c.Add();
        h.Observe(t * 1000 + i);
        obs::FlightRecord(name, "test", i, 1);
      }
      done.fetch_add(1);
    });
  }

  int scrapes = 0;
  while (done.load() < kThreads) {
    std::string text = obs::PrometheusText(reg.Snapshot());
    std::map<std::string, double> scalars;
    std::map<std::string, serve::PromHistogram> histograms;
    ASSERT_TRUE(serve::ParsePrometheusText(text, &scalars, &histograms))
        << "mid-update scrape must still be well-formed";
    ASSERT_GE(CountTraceEvents(obs::FlightRecorderToJson(), "live dump"), 0);
    ++scrapes;
  }
  for (auto& w : workers) w.join();
  EXPECT_GT(scrapes, 0);

  obs::MetricsSnapshot final_snap = reg.Snapshot();
  EXPECT_EQ(final_snap.counters["expo.conc.counter"], kThreads * kPerThread);
  EXPECT_EQ(final_snap.histograms["expo.conc.hist"].count,
            kThreads * kPerThread);
  EXPECT_EQ(obs::FlightRecorderTotalRecorded(),
            static_cast<int64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace missl
