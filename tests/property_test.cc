// Randomized property tests pitting the tensor engine against naive
// reference implementations across many shapes, plus autograd fuzzing on
// randomly composed expression graphs.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/broadcast.h"
#include "tensor/ops.h"
#include "test_util.h"
#include "utils/rng.h"

namespace missl {
namespace {

// ---- MatMul vs naive over random shapes --------------------------------------

class MatMulProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatMulProperty, MatchesNaive) {
  Rng rng(1000 + GetParam());
  int64_t m = 1 + static_cast<int64_t>(rng.UniformInt(8));
  int64_t k = 1 + static_cast<int64_t>(rng.UniformInt(8));
  int64_t n = 1 + static_cast<int64_t>(rng.UniformInt(8));
  int64_t batch = 1 + static_cast<int64_t>(rng.UniformInt(3));
  Tensor a = Tensor::Randn({batch, m, k}, &rng);
  Tensor b = Tensor::Randn({batch, k, n}, &rng);
  Tensor c = MatMul(a, b);
  for (int64_t s = 0; s < batch; ++s) {
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        double acc = 0;
        for (int64_t kk = 0; kk < k; ++kk)
          acc += double(a.at({s, i, kk})) * b.at({s, kk, j});
        EXPECT_NEAR(c.at({s, i, j}), acc, 1e-4)
            << "s=" << s << " i=" << i << " j=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, MatMulProperty, ::testing::Range(0, 12));

// ---- Broadcasting vs naive ---------------------------------------------------

class BroadcastProperty : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastProperty, MulMatchesNaive) {
  Rng rng(2000 + GetParam());
  // Random pair of broadcast-compatible shapes of rank <= 3.
  int64_t dims[3];
  for (auto& d : dims) d = 1 + static_cast<int64_t>(rng.UniformInt(4));
  Shape sa, sb;
  for (int i = 0; i < 3; ++i) {
    sa.push_back(rng.Bernoulli(0.3f) ? 1 : dims[i]);
    sb.push_back(rng.Bernoulli(0.3f) ? 1 : dims[i]);
  }
  Tensor a = Tensor::Randn(sa, &rng);
  Tensor b = Tensor::Randn(sb, &rng);
  Tensor c = Mul(a, b);
  Shape so = internal::BroadcastShape(sa, sb);
  ASSERT_EQ(c.shape(), so);
  for (int64_t i = 0; i < so[0]; ++i) {
    for (int64_t j = 0; j < so[1]; ++j) {
      for (int64_t k = 0; k < so[2]; ++k) {
        float va = a.at({sa[0] == 1 ? 0 : i, sa[1] == 1 ? 0 : j,
                         sa[2] == 1 ? 0 : k});
        float vb = b.at({sb[0] == 1 ? 0 : i, sb[1] == 1 ? 0 : j,
                         sb[2] == 1 ? 0 : k});
        EXPECT_NEAR(c.at({i, j, k}), va * vb, 1e-5);
      }
    }
  }
}

TEST_P(BroadcastProperty, GradSumsOverBroadcastDims) {
  Rng rng(3000 + GetParam());
  int64_t d0 = 2 + static_cast<int64_t>(rng.UniformInt(3));
  int64_t d1 = 2 + static_cast<int64_t>(rng.UniformInt(3));
  Tensor a = Tensor::Randn({d0, d1}, &rng);
  Tensor b = Tensor::Randn({d1}, &rng);
  testing::GradCheck(
      [](const std::vector<Tensor>& in) {
        return Sum(Square(Mul(in[0], in[1])));
      },
      {a.Clone(), b.Clone()});
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, BroadcastProperty,
                         ::testing::Range(0, 10));

// ---- Autograd fuzz: random op chains pass gradient check ----------------------

class AutogradFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AutogradFuzz, RandomChainGradCheck) {
  Rng shape_rng(4000 + GetParam());
  int64_t rows = 2 + static_cast<int64_t>(shape_rng.UniformInt(3));
  int64_t cols = 2 + static_cast<int64_t>(shape_rng.UniformInt(3));
  Tensor x = Tensor::Rand({rows, cols}, &shape_rng, 0.3f, 1.5f);
  int seed = GetParam();
  auto chain = [seed](const std::vector<Tensor>& in) {
    Rng op_rng(5000 + seed);
    Tensor h = in[0];
    for (int step = 0; step < 4; ++step) {
      switch (op_rng.UniformInt(7)) {
        case 0: h = Sigmoid(h); break;
        case 1: h = Tanh(h); break;
        case 2: h = Gelu(h); break;
        case 3: h = Softmax(h); break;
        case 4: h = AddScalar(Square(h), 0.1f); break;
        case 5: h = L2Normalize(h); break;
        default: h = MulScalar(h, 1.3f); break;
      }
    }
    return Mean(Square(h));
  };
  testing::GradCheck(chain, {x}, 1e-2f, 8e-2f, 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(Chains, AutogradFuzz, ::testing::Range(0, 12));

// ---- Softmax invariances -------------------------------------------------------

class SoftmaxProperty : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxProperty, ShiftInvariant) {
  Rng rng(6000 + GetParam());
  Tensor a = Tensor::Randn({3, 6}, &rng, 2.0f);
  Tensor s1 = Softmax(a);
  Tensor s2 = Softmax(AddScalar(a, 37.5f));
  for (int64_t i = 0; i < a.numel(); ++i)
    EXPECT_NEAR(s1.data()[i], s2.data()[i], 1e-5f);
}

TEST_P(SoftmaxProperty, OrderPreserving) {
  Rng rng(7000 + GetParam());
  Tensor a = Tensor::Randn({1, 8}, &rng, 3.0f);
  Tensor s = Softmax(a);
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      if (a.data()[i] < a.data()[j]) {
        EXPECT_LE(s.data()[i], s.data()[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxProperty, ::testing::Range(0, 6));

// ---- Transpose/reshape round trips -----------------------------------------------

class RoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripProperty, TransposeTwiceIsIdentity) {
  Rng rng(8000 + GetParam());
  int64_t b = 1 + static_cast<int64_t>(rng.UniformInt(3));
  int64_t m = 1 + static_cast<int64_t>(rng.UniformInt(5));
  int64_t n = 1 + static_cast<int64_t>(rng.UniformInt(5));
  Tensor a = Tensor::Randn({b, m, n}, &rng);
  Tensor t2 = Transpose(Transpose(a));
  for (int64_t i = 0; i < a.numel(); ++i)
    EXPECT_EQ(a.data()[i], t2.data()[i]);
}

TEST_P(RoundTripProperty, ConcatOfSlicesIsIdentity) {
  Rng rng(9000 + GetParam());
  int64_t n = 4 + static_cast<int64_t>(rng.UniformInt(5));
  Tensor a = Tensor::Randn({2, n}, &rng);
  int64_t cut = 1 + static_cast<int64_t>(rng.UniformInt(
      static_cast<uint64_t>(n - 1)));
  Tensor joined = Concat({Slice(a, 1, 0, cut), Slice(a, 1, cut, n)}, 1);
  for (int64_t i = 0; i < a.numel(); ++i)
    EXPECT_EQ(a.data()[i], joined.data()[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty, ::testing::Range(0, 8));

// ---- Cross-entropy sanity against LogSoftmax composition -----------------------

TEST(CrossEntropyProperty, MatchesComposedDefinition) {
  Rng rng(99);
  Tensor logits = Tensor::Randn({5, 7}, &rng, 2.0f);
  std::vector<int32_t> targets = {0, 3, 6, 2, 5};
  Tensor fused = CrossEntropyLoss(logits, targets);
  Tensor ls = LogSoftmax(logits);
  double manual = 0;
  for (int64_t r = 0; r < 5; ++r)
    manual -= ls.at({r, targets[static_cast<size_t>(r)]});
  EXPECT_NEAR(fused.item(), manual / 5.0, 1e-5);
}

}  // namespace
}  // namespace missl
