// Numerical reference tests: hand-computed expected values for GRU steps,
// attention with degenerate weights, and optimizer trajectories, catching
// silent formula regressions that shape tests cannot.
#include <cmath>

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/gru.h"
#include "optim/optimizer.h"
#include "test_util.h"

namespace missl {
namespace {

// Overwrites a parameter tensor (aliasing handle) with the given values.
void SetParam(const Tensor& param, const std::vector<float>& values) {
  Tensor alias = param;
  ASSERT_EQ(static_cast<size_t>(alias.numel()), values.size());
  alias.CopyFrom(values);
}

TEST(GruReference, StepMatchesHandComputation) {
  // 1-d GRU with all weights set explicitly. Gate order is (z, r, n):
  //   wx = [0.5, 1.0, 2.0], wh = [0.25, 0.5, 1.0], bias = 0.
  Rng rng(1);
  nn::GRU gru(1, 1, &rng);
  auto named = gru.NamedParameters();
  for (const auto& [name, p] : named) {
    if (name == "wx") {
      SetParam(p, {0.5f, 1.0f, 2.0f});
    } else if (name == "wh") {
      SetParam(p, {0.25f, 0.5f, 1.0f});
    } else {
      SetParam(p, {0.0f, 0.0f, 0.0f});
    }
  }
  float x = 1.0f, h = 0.5f;
  Tensor xt = Tensor::FromData({x}, {1, 1});
  Tensor ht = Tensor::FromData({h}, {1, 1});
  float out = gru.Step(xt, ht).item();

  auto sigmoid = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
  float z = sigmoid(0.5f * x + 0.25f * h);
  float r = sigmoid(1.0f * x + 0.5f * h);
  float n = std::tanh(2.0f * x + r * (1.0f * h));
  float expect = (1.0f - z) * n + z * h;
  EXPECT_NEAR(out, expect, 1e-5f);
}

TEST(GruReference, ZeroWeightsFreezeState) {
  // With wx = wh = b = 0: z = 0.5, n = 0 -> h' = 0.5 h each step.
  Rng rng(2);
  nn::GRU gru(2, 2, &rng);
  for (const auto& [name, p] : gru.NamedParameters()) {
    Tensor alias = p;
    alias.Fill(0.0f);
  }
  Tensor x = Tensor::Ones({1, 2});
  Tensor h = Tensor::FromData({0.8f, -0.4f}, {1, 2});
  Tensor h1 = gru.Step(x, h);
  testing::ExpectTensorNear(h1, {0.4f, -0.2f});
}

TEST(AttentionReference, UniformWeightsAverageValues) {
  // With wq = wk = 0 all attention scores are equal -> output is the mean of
  // the value projections (wv = I, wo = I, no bias).
  Rng rng(3);
  nn::MultiHeadAttention mha(2, 1, 0.0f, &rng);
  for (const auto& [name, p] : mha.NamedParameters()) {
    Tensor alias = p;
    if (name == "wq.weight" || name == "wk.weight") {
      alias.Fill(0.0f);
    } else if (name == "wv.weight" || name == "wo.weight") {
      alias.CopyFrom({1.0f, 0.0f, 0.0f, 1.0f});  // identity
    } else {
      alias.Fill(0.0f);  // biases
    }
  }
  mha.SetTraining(false);
  Tensor x = Tensor::FromData({1, 2, 3, 4, 5, 6}, {1, 3, 2});
  Tensor y = mha.Forward(x, x, x);
  // Mean of rows (1,2), (3,4), (5,6) = (3, 4) at every position.
  for (int64_t t = 0; t < 3; ++t) {
    EXPECT_NEAR(y.at({0, t, 0}), 3.0f, 1e-5f);
    EXPECT_NEAR(y.at({0, t, 1}), 4.0f, 1e-5f);
  }
}

TEST(AttentionReference, SharpScoresSelectOneValue) {
  // Make queries align with key 2 only: wq = I scaled large, keys distinct.
  Rng rng(4);
  nn::MultiHeadAttention mha(2, 1, 0.0f, &rng);
  for (const auto& [name, p] : mha.NamedParameters()) {
    Tensor alias = p;
    if (name == "wq.weight") {
      alias.CopyFrom({100.0f, 0.0f, 0.0f, 100.0f});
    } else if (name == "wk.weight" || name == "wv.weight" ||
               name == "wo.weight") {
      alias.CopyFrom({1.0f, 0.0f, 0.0f, 1.0f});
    } else {
      alias.Fill(0.0f);
    }
  }
  mha.SetTraining(false);
  // Keys: e1, e2; query ~ e2 -> attends to position 1 exclusively.
  Tensor q = Tensor::FromData({0, 1}, {1, 1, 2});
  Tensor kv = Tensor::FromData({1, 0, 0, 1}, {1, 2, 2});
  Tensor y = mha.Forward(q, kv, kv);
  EXPECT_NEAR(y.at({0, 0, 0}), 0.0f, 1e-4f);
  EXPECT_NEAR(y.at({0, 0, 1}), 1.0f, 1e-4f);
}

TEST(AdamReference, MatchesHandComputedTrajectory) {
  // Two manual Adam steps on a fixed gradient of 1.0.
  Tensor w = Tensor::FromData({0.0f}, {1}, true);
  optim::Adam opt({w}, 0.1f, 0.9f, 0.999f, 1e-8f);
  auto step_with_unit_grad = [&] {
    opt.ZeroGrad();
    Sum(w).Backward();  // grad = 1
    opt.Step();
  };
  step_with_unit_grad();
  // t=1: mhat = 1, vhat = 1 -> w -= 0.1 * 1/(1 + eps) ~ -0.1.
  EXPECT_NEAR(w.item(), -0.1f, 1e-5f);
  step_with_unit_grad();
  // t=2: m = 0.19 / (1-0.81) = 1; v = (0.001999)/(1-0.998001) = 1.
  EXPECT_NEAR(w.item(), -0.2f, 1e-4f);
}

}  // namespace
}  // namespace missl
