// Unit tests for the tensor substrate: construction, introspection, and the
// autograd graph mechanics (topological backward, accumulation, NoGradGuard).
#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "test_util.h"

namespace missl {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros({2, 3});
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  EXPECT_EQ(t.size(-1), 3);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorTest, FullAndOnes) {
  Tensor f = Tensor::Full({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(f.data()[i], 2.5f);
  Tensor o = Tensor::Ones({2, 2});
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(o.data()[i], 1.0f);
}

TEST(TensorTest, FromDataAndAt) {
  Tensor t = Tensor::FromData({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 2}), 3.0f);
  EXPECT_EQ(t.at({1, 0}), 4.0f);
  EXPECT_EQ(t.at({1, 2}), 6.0f);
}

TEST(TensorTest, ScalarItem) {
  Tensor s = Tensor::Scalar(3.25f);
  EXPECT_EQ(s.dim(), 0);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.item(), 3.25f);
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  Rng r1(42), r2(42), r3(43);
  Tensor a = Tensor::Randn({16}, &r1);
  Tensor b = Tensor::Randn({16}, &r2);
  Tensor c = Tensor::Randn({16}, &r3);
  bool same_ab = true, same_ac = true;
  for (int64_t i = 0; i < 16; ++i) {
    same_ab &= a.data()[i] == b.data()[i];
    same_ac &= a.data()[i] == c.data()[i];
  }
  EXPECT_TRUE(same_ab);
  EXPECT_FALSE(same_ac);
}

TEST(TensorTest, CopyAliasesStorage) {
  Tensor a = Tensor::Zeros({3});
  Tensor b = a;
  b.data()[0] = 7.0f;
  EXPECT_EQ(a.data()[0], 7.0f);
}

TEST(TensorTest, DetachSharesNothing) {
  Tensor a = Tensor::Ones({3}, /*requires_grad=*/true);
  Tensor d = a.Detach();
  EXPECT_FALSE(d.requires_grad());
  d.data()[0] = 9.0f;
  EXPECT_EQ(a.data()[0], 1.0f);
}

TEST(TensorTest, BackwardSimpleChain) {
  // y = sum((2a + 1)^2); dy/da = 2*(2a+1)*2 = 8a + 4
  Tensor a = Tensor::FromData({1, 2, 3}, {3}, true);
  Tensor y = Sum(Square(AddScalar(MulScalar(a, 2.0f), 1.0f)));
  y.Backward();
  testing::ExpectTensorNear(a.grad(), {12.0f, 20.0f, 28.0f});
}

TEST(TensorTest, BackwardAccumulatesAcrossUses) {
  // y = sum(a * a) via two uses of `a` in Mul: dy/da = 2a.
  Tensor a = Tensor::FromData({3, -2}, {2}, true);
  Tensor y = Sum(Mul(a, a));
  y.Backward();
  testing::ExpectTensorNear(a.grad(), {6.0f, -4.0f});
}

TEST(TensorTest, BackwardDiamondGraph) {
  // b = a*2; c = a*3; y = sum(b*c) = sum(6 a^2) -> dy/da = 12a.
  Tensor a = Tensor::FromData({1, 2}, {2}, true);
  Tensor b = MulScalar(a, 2.0f);
  Tensor c = MulScalar(a, 3.0f);
  Tensor y = Sum(Mul(b, c));
  y.Backward();
  testing::ExpectTensorNear(a.grad(), {12.0f, 24.0f});
}

TEST(TensorTest, SecondBackwardAccumulatesIntoLeafGrad) {
  Tensor a = Tensor::FromData({1.0f}, {1}, true);
  Sum(MulScalar(a, 2.0f)).Backward();
  Sum(MulScalar(a, 2.0f)).Backward();
  testing::ExpectTensorNear(a.grad(), {4.0f});  // 2 + 2
  a.ZeroGrad();
  testing::ExpectTensorNear(a.grad(), {0.0f});
}

TEST(TensorTest, NoGradGuardSkipsGraph) {
  Tensor a = Tensor::Ones({2}, true);
  Tensor y;
  {
    NoGradGuard ng;
    y = Sum(MulScalar(a, 3.0f));
  }
  EXPECT_FALSE(y.requires_grad());
  EXPECT_FALSE(y.impl()->backward_fn != nullptr);
}

TEST(TensorTest, GradWithoutRequiresGradIsNotTracked) {
  Tensor a = Tensor::Ones({2}, false);
  Tensor y = Sum(a);
  EXPECT_FALSE(y.requires_grad());
}

TEST(TensorDeathTest, ItemOnNonScalarAborts) {
  Tensor t = Tensor::Zeros({2});
  EXPECT_DEATH(t.item(), "item");
}

TEST(TensorDeathTest, FromDataSizeMismatchAborts) {
  EXPECT_DEATH(Tensor::FromData({1, 2, 3}, {2, 2}), "data size");
}

TEST(TensorDeathTest, UndefinedUseAborts) {
  Tensor t;
  EXPECT_DEATH(t.numel(), "undefined");
}

TEST(TensorTest, ToStringMentionsShape) {
  Tensor t = Tensor::Zeros({2, 2});
  EXPECT_NE(t.ToString().find("[2, 2]"), std::string::npos);
}

TEST(TensorTest, ShapeHelpers) {
  EXPECT_EQ(NumElements({2, 3, 4}), 24);
  EXPECT_EQ(NumElements({}), 1);
  EXPECT_EQ(ShapeToString({5, 1}), "[5, 1]");
}

}  // namespace
}  // namespace missl
