// Tests for the deterministic parallel runtime: ParallelFor mechanics and
// bitwise 1-vs-2-vs-4-thread equivalence of every parallelized kernel and of
// the evaluator.
#include "runtime/parallel_for.h"
#include "runtime/runtime.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/sasrec.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "tensor/ops.h"
#include "utils/check.h"
#include "utils/rng.h"

namespace missl::runtime {
namespace {

// ---- ParallelFor mechanics --------------------------------------------------

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  ScopedNumThreads t(4);
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 8, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 5, 8, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, RangeSmallerThanGrainIsOneInlineCall) {
  ScopedNumThreads t(4);
  std::vector<std::pair<int64_t, int64_t>> spans;
  ParallelFor(3, 7, 100, [&](int64_t b, int64_t e) {
    spans.emplace_back(b, e);  // single call -> no synchronization needed
    EXPECT_FALSE(InParallelRegion()) << "single chunk must run inline";
  });
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (std::pair<int64_t, int64_t>{3, 7}));
}

TEST(ParallelForTest, ChunksCoverRangeExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    ScopedNumThreads t(threads);
    std::vector<int> hits(101, 0);
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> spans;
    ParallelFor(2, 103, 7, [&](int64_t b, int64_t e) {
      EXPECT_LT(b, e);
      for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i - 2)];
      std::lock_guard<std::mutex> lock(mu);
      spans.emplace_back(b, e);
    });
    for (int h : hits) EXPECT_EQ(h, 1) << "threads=" << threads;
    if (threads == 1) {
      // Serial fallback: the exact pre-runtime path, one call for the range.
      ASSERT_EQ(spans.size(), 1u);
      EXPECT_EQ(spans[0], (std::pair<int64_t, int64_t>{2, 103}));
    } else {
      // With workers, chunk boundaries are a pure function of
      // (begin, end, grain) — the partition must not depend on thread count.
      std::set<std::pair<int64_t, int64_t>> unique(spans.begin(), spans.end());
      EXPECT_EQ(spans.size(), 15u) << "threads=" << threads;
      EXPECT_EQ(unique.size(), spans.size());
      for (const auto& s : spans) EXPECT_LE(s.second - s.first, 7);
    }
  }
}

TEST(ParallelForTest, NestedCallsRunInline) {
  ScopedNumThreads t(4);
  std::atomic<int> inner_calls{0};
  ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
    EXPECT_TRUE(InParallelRegion());
    // A kernel invoked from inside a parallel region must not re-enter the
    // pool; its ParallelFor degenerates to one inline call.
    int local = 0;
    ParallelFor(0, 64, 1, [&](int64_t b, int64_t e) {
      ++local;
      EXPECT_EQ(b, 0);
      EXPECT_EQ(e, 64);
    });
    EXPECT_EQ(local, 1);
    ++inner_calls;
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(inner_calls.load(), 8);
}

TEST(ParallelForTest, WorkersInheritGradMode) {
  ScopedNumThreads t(4);
  ASSERT_TRUE(GradEnabled());
  NoGradGuard ng;
  std::atomic<int> enabled_count{0};
  ParallelFor(0, 16, 1, [&](int64_t, int64_t) {
    if (GradEnabled()) ++enabled_count;
  });
  EXPECT_EQ(enabled_count.load(), 0)
      << "pool workers must inherit the caller's NoGradGuard state";
}

TEST(ParallelForTest, GradModeRestoredAfterJob) {
  ScopedNumThreads t(2);
  {
    NoGradGuard ng;
    ParallelFor(0, 4, 1, [](int64_t, int64_t) {});
    EXPECT_FALSE(GradEnabled());
  }
  EXPECT_TRUE(GradEnabled());
  // And ops created on workers honor the inherited mode end to end.
  NoGradGuard ng;
  std::vector<Tensor> outs(4, Tensor());
  Rng rng(11);
  Tensor a = Tensor::Randn({4, 8}, &rng, 1.0f, /*requires_grad=*/true);
  ParallelFor(0, 4, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) outs[static_cast<size_t>(i)] = Relu(a);
  });
  for (const Tensor& o : outs) EXPECT_FALSE(o.requires_grad());
}

TEST(ParallelForDeathTest, CheckFailureInBodyAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedNumThreads t(2);
        ParallelFor(0, 8, 1, [](int64_t b, int64_t) {
          MISSL_CHECK(b != 5) << "boom in chunk";
        });
      },
      "boom in chunk");
}

TEST(GrainTest, GrainHelpersAreSaneAndPositive) {
  EXPECT_GE(GrainForCost(1), 1);
  EXPECT_GE(GrainForCost(1 << 30), 1);
  EXPECT_EQ(GrainForCost(kMinChunkCost), 1);
  EXPECT_GE(GrainForChunks(0), 1);
  EXPECT_GE(GrainForChunks(1000), 1);
}

TEST(RuntimeTest, SetNumThreadsClampsToOne) {
  ScopedNumThreads outer(3);
  EXPECT_EQ(NumThreads(), 3);
  {
    ScopedNumThreads inner(1);
    EXPECT_EQ(NumThreads(), 1);
  }
  EXPECT_EQ(NumThreads(), 3);
}

// ---- Bitwise kernel equivalence across thread counts ------------------------

using KernelFn = std::function<Tensor(const std::vector<Tensor>&)>;

// Runs `fn` forward + backward on freshly generated inputs at the given
// thread count and returns every buffer that could differ: the output values
// and each input's gradient.
std::vector<std::vector<float>> RunKernel(const KernelFn& fn,
                                          const std::vector<Shape>& shapes,
                                          int threads) {
  ScopedNumThreads t(threads);
  Rng rng(1234);  // same seed -> identical inputs at every thread count
  std::vector<Tensor> inputs;
  for (const Shape& s : shapes) {
    inputs.push_back(Tensor::Randn(s, &rng, 1.0f, /*requires_grad=*/true));
  }
  Tensor out = fn(inputs);
  Sum(out).Backward();
  std::vector<std::vector<float>> buffers;
  buffers.push_back(out.ToVector());
  for (const Tensor& in : inputs) {
    EXPECT_TRUE(in.has_grad());
    buffers.push_back(in.impl()->grad.ToVector());
  }
  return buffers;
}

void ExpectBitwiseEqualAcrossThreads(const KernelFn& fn,
                                     const std::vector<Shape>& shapes) {
  auto ref = RunKernel(fn, shapes, 1);
  for (int threads : {2, 4}) {
    auto got = RunKernel(fn, shapes, threads);
    ASSERT_EQ(got.size(), ref.size());
    for (size_t b = 0; b < ref.size(); ++b) {
      ASSERT_EQ(got[b].size(), ref[b].size()) << "buffer " << b;
      EXPECT_EQ(std::memcmp(got[b].data(), ref[b].data(),
                            sizeof(float) * ref[b].size()),
                0)
          << "buffer " << b << " differs at threads=" << threads;
    }
  }
}

TEST(KernelBitwiseTest, MatMul2d) {
  ExpectBitwiseEqualAcrossThreads(
      [](const std::vector<Tensor>& in) { return MatMul(in[0], in[1]); },
      {{37, 19}, {19, 23}});
}

TEST(KernelBitwiseTest, MatMul3dBatched) {
  ExpectBitwiseEqualAcrossThreads(
      [](const std::vector<Tensor>& in) { return MatMul(in[0], in[1]); },
      {{5, 17, 11}, {5, 11, 13}});
}

TEST(KernelBitwiseTest, MatMul3dSharedRhs) {
  ExpectBitwiseEqualAcrossThreads(
      [](const std::vector<Tensor>& in) { return MatMul(in[0], in[1]); },
      {{5, 17, 11}, {11, 13}});
}

TEST(KernelBitwiseTest, Softmax) {
  ExpectBitwiseEqualAcrossThreads(
      [](const std::vector<Tensor>& in) { return Softmax(in[0]); }, {{33, 21}});
}

TEST(KernelBitwiseTest, LogSoftmax) {
  ExpectBitwiseEqualAcrossThreads(
      [](const std::vector<Tensor>& in) { return LogSoftmax(in[0]); },
      {{33, 21}});
}

TEST(KernelBitwiseTest, LayerNorm) {
  ExpectBitwiseEqualAcrossThreads(
      [](const std::vector<Tensor>& in) {
        return LayerNorm(in[0], in[1], in[2]);
      },
      {{29, 16}, {16}, {16}});
}

TEST(KernelBitwiseTest, ElementwiseSameShape) {
  ExpectBitwiseEqualAcrossThreads(
      [](const std::vector<Tensor>& in) {
        return Mul(Add(in[0], in[1]), in[1]);
      },
      {{9, 41}, {9, 41}});
}

TEST(KernelBitwiseTest, ElementwiseBroadcast) {
  ExpectBitwiseEqualAcrossThreads(
      [](const std::vector<Tensor>& in) { return Add(in[0], in[1]); },
      {{9, 41}, {41}});
}

TEST(KernelBitwiseTest, UnaryOps) {
  ExpectBitwiseEqualAcrossThreads(
      [](const std::vector<Tensor>& in) { return Gelu(Relu(in[0])); },
      {{13, 57}});
}

TEST(KernelBitwiseTest, EmbeddingGatherScatterWithDuplicatesAndPadding) {
  // Duplicate ids exercise the owner-computes scatter-add; -1 is padding.
  std::vector<int32_t> ids = {3, 0, 3, 7, -1, 3, 1, 7, -1, 0, 5, 3};
  ExpectBitwiseEqualAcrossThreads(
      [ids](const std::vector<Tensor>& in) {
        return EmbeddingLookup(in[0], ids,
                               {static_cast<int64_t>(ids.size())});
      },
      {{8, 24}});
}

TEST(KernelBitwiseTest, IndexSelect0WithDuplicates) {
  std::vector<int32_t> idx = {2, 2, 0, 5, 2, 1, 5, 5, 0};
  ExpectBitwiseEqualAcrossThreads(
      [idx](const std::vector<Tensor>& in) { return IndexSelect0(in[0], idx); },
      {{6, 14}});
}

TEST(KernelBitwiseTest, TransformerStyleComposite) {
  // A fused slice of real model compute: attention-ish matmul chain through
  // softmax and layernorm, everything parallel at once.
  ExpectBitwiseEqualAcrossThreads(
      [](const std::vector<Tensor>& in) {
        Tensor att = Softmax(MatMul(in[0], Transpose(in[0])));
        Tensor mixed = MatMul(att, in[0]);
        return LayerNorm(mixed, in[1], in[2]);
      },
      {{4, 12, 16}, {16}, {16}});
}

// ---- Evaluator equivalence across thread counts -----------------------------

class EvaluatorThreadsTest : public ::testing::Test {
 protected:
  static data::Dataset MakeDs() {
    data::SyntheticConfig cfg;
    cfg.num_users = 40;
    cfg.num_items = 120;
    cfg.min_events = 12;
    cfg.max_events = 24;
    cfg.seed = 77;
    return data::GenerateSynthetic(cfg);
  }

  static eval::EvalResult RunEval(const data::Dataset& ds,
                                  const data::SplitView& split,
                                  eval::CandidateMode mode, int threads) {
    ScopedNumThreads t(threads);
    eval::EvalConfig ec;
    ec.num_negatives = 30;
    ec.max_len = 12;
    ec.batch_size = 8;  // several batches -> real parallel fan-out
    ec.mode = mode;
    eval::Evaluator evaluator(ds, split, ec);
    baselines::SasRecConfig mc;
    mc.dim = 16;
    mc.heads = 2;
    mc.layers = 1;
    baselines::SasRec model(ds.num_items(), ec.max_len, mc);
    return evaluator.Evaluate(&model, /*test=*/true);
  }
};

TEST_F(EvaluatorThreadsTest, SampledMetricsIdenticalAtAnyThreadCount) {
  data::Dataset ds = MakeDs();
  data::SplitView split(ds);
  eval::EvalResult ref =
      RunEval(ds, split, eval::CandidateMode::kUniformNegatives, 1);
  EXPECT_GT(ref.num_users, 0);
  for (int threads : {2, 4}) {
    eval::EvalResult got =
        RunEval(ds, split, eval::CandidateMode::kUniformNegatives, threads);
    EXPECT_EQ(ref.num_users, got.num_users);
    EXPECT_EQ(ref.hr5, got.hr5) << "threads=" << threads;
    EXPECT_EQ(ref.hr10, got.hr10) << "threads=" << threads;
    EXPECT_EQ(ref.hr20, got.hr20) << "threads=" << threads;
    EXPECT_EQ(ref.ndcg5, got.ndcg5) << "threads=" << threads;
    EXPECT_EQ(ref.ndcg10, got.ndcg10) << "threads=" << threads;
    EXPECT_EQ(ref.ndcg20, got.ndcg20) << "threads=" << threads;
    EXPECT_EQ(ref.mrr, got.mrr) << "threads=" << threads;
  }
}

TEST_F(EvaluatorThreadsTest, FullRankingMetricsIdenticalAtAnyThreadCount) {
  data::Dataset ds = MakeDs();
  data::SplitView split(ds);
  eval::EvalResult ref =
      RunEval(ds, split, eval::CandidateMode::kFullRanking, 1);
  EXPECT_GT(ref.num_users, 0);
  for (int threads : {2, 4}) {
    eval::EvalResult got =
        RunEval(ds, split, eval::CandidateMode::kFullRanking, threads);
    EXPECT_EQ(ref.mrr, got.mrr) << "threads=" << threads;
    EXPECT_EQ(ref.ndcg10, got.ndcg10) << "threads=" << threads;
    EXPECT_EQ(ref.hr10, got.hr10) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace missl::runtime
