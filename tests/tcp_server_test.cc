// Socket-level tests for the epoll TCP front-end (serve/tcp_server.h).
// These drive a real TcpServer over loopback sockets — the same code path
// the bench and the CLI use — and lock the serving invariants:
//   - answers delivered over TCP are bitwise-identical to offline
//     RecommendTopN, under 8 concurrent pipelining client threads;
//   - graceful shutdown drains in-flight queries to completion while late
//     connects are refused with a clean error line;
//   - the connection limit refuses extras and recovers when slots free up;
//   - malformed lines are answered in-band and the connection stays usable;
//   - a half-closed peer (shutdown(SHUT_WR)) still receives its answers;
//   - the admin plane (/metrics /healthz /statusz /tracez) answers during
//     query load without perturbing answers, flips /healthz to 503 while
//     draining, and turns malformed/oversized HTTP into 4xx without
//     disturbing the query plane.
// tcp_server_test runs in the TSan CI job, so every cross-thread handoff in
// the server is exercised under the race detector here.
#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/missl.h"
#include "core/recommend.h"
#include "nn/serialize.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "utils/rng.h"

#include "json_test_util.h"

namespace missl {
namespace {

using testutil::JVal;
using testutil::ParseJsonOrFail;

constexpr int32_t kItems = 60;
constexpr int32_t kBehaviors = 3;
constexpr int64_t kMaxLen = 12;

std::unique_ptr<core::MisslModel> MakeModel(uint64_t seed) {
  core::MisslConfig cfg;
  cfg.dim = 16;
  cfg.num_interests = 2;
  cfg.seed = seed;
  return std::make_unique<core::MisslModel>(kItems, kBehaviors, kMaxLen, cfg);
}

std::string CkptPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// Builds the service the tests serve from. `model_seed` picks the frozen
// weights; the in-memory module is seeded differently on purpose so only
// the checkpoint contents can explain matching answers.
std::unique_ptr<serve::RecoService> MakeService(const char* ckpt_name,
                                                uint64_t model_seed,
                                                int32_t max_batch,
                                                int64_t max_wait_us,
                                                Status* status) {
  std::string path = CkptPath(ckpt_name);
  {
    auto model = MakeModel(model_seed);
    Status s = nn::SaveParameters(*model, path);
    if (!s.ok()) {
      *status = s;
      return nullptr;
    }
  }
  serve::ServeConfig cfg;
  cfg.max_len = kMaxLen;
  cfg.max_batch = max_batch;
  cfg.max_wait_us = max_wait_us;
  auto service = serve::RecoService::Load(MakeModel(model_seed + 1000),
                                          kItems, kBehaviors, path, cfg,
                                          status);
  std::remove(path.c_str());
  return service;
}

// A wire-representable random query: `now` is implicit on the wire, so it
// must equal the newest timestamp (or be 0 with no timestamps).
serve::Query RandomWireQuery(Rng* rng) {
  serve::Query q;
  int64_t len = 1 + static_cast<int64_t>(rng->UniformInt(2 * kMaxLen));
  bool with_ts = rng->Bernoulli(0.5f);
  int64_t ts = 100;
  for (int64_t i = 0; i < len; ++i) {
    q.items.push_back(static_cast<int32_t>(rng->UniformInt(kItems)));
    q.behaviors.push_back(static_cast<int32_t>(rng->UniformInt(kBehaviors)));
    if (with_ts) {
      ts += 1 + static_cast<int64_t>(rng->UniformInt(50));
      q.timestamps.push_back(ts);
    }
  }
  if (with_ts) q.now = q.timestamps.back();
  // Exclude a few ids, deliberately in event (unsorted) order.
  for (int64_t i = 0; i < len; i += 3) {
    q.exclude.push_back(q.items[static_cast<size_t>(i)]);
  }
  q.k = 5 + static_cast<int32_t>(rng->UniformInt(6));
  return q;
}

// Blocking loopback client socket with a receive-stall guard.
int ConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = 30;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

void SendAllBytes(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t w = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(w, 0) << "send: " << std::strerror(errno);
    off += static_cast<size_t>(w);
  }
}

// Reads one '\n'-terminated line; `acc` carries partial bytes across calls.
// Returns false on EOF-with-empty-buffer or error.
bool RecvLine(int fd, std::string* acc, std::string* line) {
  for (;;) {
    size_t nl = acc->find('\n');
    if (nl != std::string::npos) {
      line->assign(*acc, 0, nl);
      acc->erase(0, nl + 1);
      return true;
    }
    char tmp[4096];
    ssize_t r = ::recv(fd, tmp, sizeof(tmp), 0);
    if (r <= 0) return false;
    acc->append(tmp, static_cast<size_t>(r));
  }
}

// True when the peer has cleanly closed (recv returns 0 with nothing left).
bool RecvEof(int fd) {
  char tmp[64];
  ssize_t r = ::recv(fd, tmp, sizeof(tmp), 0);
  return r == 0;
}

int64_t ExtractId(const std::string& response) {
  size_t pos = response.find("\"id\":");
  if (pos == std::string::npos) return INT64_MIN;
  return std::strtoll(response.c_str() + pos + 5, nullptr, 10);
}

// The offline reference: one big RecommendTopN batch over all queries,
// trimmed to each query's k and rendered through the same JSON formatter
// the server uses, keyed by protocol id. String comparison makes the
// bitwise claim exact — no float reparsing on the client side.
std::map<int64_t, std::string> OfflineExpected(
    core::MisslModel* model, const std::vector<serve::ParsedQuery>& parsed) {
  std::vector<serve::Query> queries;
  std::vector<std::vector<int32_t>> seen;
  int32_t max_k = 0;
  for (const auto& p : parsed) {
    queries.push_back(p.query);
    seen.push_back(p.query.exclude);
    max_k = std::max(max_k, p.query.k);
  }
  data::Batch batch = serve::BuildQueryBatch(queries, kMaxLen, kBehaviors);
  auto recs = core::RecommendTopN(model, batch, seen, max_k, kItems);
  std::map<int64_t, std::string> expected;
  for (size_t i = 0; i < parsed.size(); ++i) {
    size_t want = std::min<size_t>(static_cast<size_t>(parsed[i].query.k),
                                   recs[i].items.size());
    serve::TopKResult trimmed;
    trimmed.items.assign(recs[i].items.begin(),
                         recs[i].items.begin() + static_cast<int64_t>(want));
    trimmed.scores.assign(recs[i].scores.begin(),
                          recs[i].scores.begin() + static_cast<int64_t>(want));
    expected[parsed[i].id] = serve::TopKToJson(parsed[i].id, trimmed);
  }
  return expected;
}

TEST(TcpServerTest, EightClientThreadsBitwiseMatchOffline) {
  // 8 threads x 8 pipelined queries, generated up front so the offline
  // reference sees exactly the same mix.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 8;
  std::vector<std::vector<serve::ParsedQuery>> per_thread(kThreads);
  std::vector<serve::ParsedQuery> all;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(400 + static_cast<uint64_t>(t));
    for (int j = 0; j < kPerThread; ++j) {
      serve::ParsedQuery p;
      p.id = t * 1000 + j;
      p.query = RandomWireQuery(&rng);
      per_thread[static_cast<size_t>(t)].push_back(p);
      all.push_back(p);
    }
  }
  // Frozen weights for the offline reference and the served checkpoint come
  // from the same seed; the serve-side module starts from different init.
  // The offline forward runs BEFORE the service spawns its threads so the
  // main-thread model pass is ordered before any dispatcher activity.
  auto offline_model = MakeModel(21);
  std::map<int64_t, std::string> expected =
      OfflineExpected(offline_model.get(), all);

  std::string path = CkptPath("tcp_bitwise.bin");
  ASSERT_TRUE(nn::SaveParameters(*offline_model, path).ok());
  serve::ServeConfig scfg;
  scfg.max_len = kMaxLen;
  scfg.max_batch = 8;
  scfg.max_wait_us = 2000;
  Status status;
  auto service = serve::RecoService::Load(MakeModel(909), kItems, kBehaviors,
                                          path, scfg, &status);
  std::remove(path.c_str());
  ASSERT_NE(service, nullptr) << status.ToString();

  serve::TcpServerConfig tcfg;
  tcfg.num_workers = 8;
  auto server = serve::TcpServer::Start(service.get(), tcfg, &status);
  ASSERT_NE(server, nullptr) << status.ToString();

  // Each thread pipelines all its requests in one write, then collects the
  // responses — which may come back in any order; "id" is the join key.
  std::vector<std::map<int64_t, std::string>> received(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      int fd = ConnectLoopback(server->port());
      ASSERT_GE(fd, 0);
      std::string batch;
      for (const auto& p : per_thread[static_cast<size_t>(t)]) {
        batch += serve::QueryToLine(p.id, p.query);
        batch += '\n';
      }
      SendAllBytes(fd, batch);
      std::string acc, line;
      for (int j = 0; j < kPerThread; ++j) {
        ASSERT_TRUE(RecvLine(fd, &acc, &line)) << "thread " << t;
        received[static_cast<size_t>(t)][ExtractId(line)] = line;
      }
      ::close(fd);
    });
  }
  for (auto& c : clients) c.join();

  int matched = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& p : per_thread[static_cast<size_t>(t)]) {
      auto it = received[static_cast<size_t>(t)].find(p.id);
      ASSERT_NE(it, received[static_cast<size_t>(t)].end())
          << "no response for id " << p.id;
      EXPECT_EQ(it->second, expected[p.id]) << "id " << p.id;
      ++matched;
    }
  }
  EXPECT_EQ(matched, kThreads * kPerThread);
  EXPECT_EQ(server->connections_accepted(), kThreads);
  EXPECT_EQ(server->connections_refused(), 0);
  EXPECT_EQ(service->requests_served(), kThreads * kPerThread);
  server->Shutdown();
  EXPECT_EQ(server->active_connections(), 0);
}

TEST(TcpServerTest, GracefulShutdownDrainsInFlightAndRefusesLate) {
  // Queries and their offline expectations are computed before the service
  // exists: the main-thread model forward must be ordered before any
  // dispatcher-thread activity.
  constexpr int kConns = 3;
  Rng rng(77);
  std::vector<serve::ParsedQuery> parsed;
  for (int c = 0; c < kConns; ++c) {
    serve::ParsedQuery p;
    p.id = 500 + c;
    p.query = RandomWireQuery(&rng);
    parsed.push_back(p);
  }
  auto offline = MakeModel(23);
  std::map<int64_t, std::string> expected = OfflineExpected(offline.get(),
                                                            parsed);

  Status status;
  // A wide batch window keeps the queries parked inside the micro-batcher
  // when BeginShutdown() fires — genuinely in flight, not yet answered.
  auto service = MakeService("tcp_drain.bin", 23, /*max_batch=*/64,
                             /*max_wait_us=*/200000, &status);
  ASSERT_NE(service, nullptr) << status.ToString();
  serve::TcpServerConfig tcfg;
  tcfg.num_workers = 4;
  auto server = serve::TcpServer::Start(service.get(), tcfg, &status);
  ASSERT_NE(server, nullptr) << status.ToString();

  std::vector<int> fds;
  for (int c = 0; c < kConns; ++c) {
    int fd = ConnectLoopback(server->port());
    ASSERT_GE(fd, 0);
    fds.push_back(fd);
    SendAllBytes(fd, serve::QueryToLine(parsed[static_cast<size_t>(c)].id,
                                        parsed[static_cast<size_t>(c)].query) +
                         "\n");
  }
  // Give the epoll thread time to parse and hand the queries to workers,
  // which are now blocked in the 200ms batch window.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  server->BeginShutdown();

  // A connect arriving after drain begins gets a clean refusal, then EOF.
  int late = ConnectLoopback(server->port());
  ASSERT_GE(late, 0);
  std::string acc, line;
  ASSERT_TRUE(RecvLine(late, &acc, &line));
  EXPECT_EQ(line, "{\"id\":-1,\"error\":\"shutting down\"}");
  EXPECT_TRUE(RecvEof(late));
  ::close(late);

  // Every in-flight query still gets its complete, correct answer, then the
  // drained connection is closed by the server.
  for (int c = 0; c < kConns; ++c) {
    std::string cacc, cline;
    ASSERT_TRUE(RecvLine(fds[static_cast<size_t>(c)], &cacc, &cline))
        << "conn " << c << " lost its in-flight answer";
    EXPECT_EQ(cline, expected[500 + c]) << "conn " << c;
    EXPECT_TRUE(RecvEof(fds[static_cast<size_t>(c)])) << "conn " << c;
    ::close(fds[static_cast<size_t>(c)]);
  }

  server->Shutdown();
  EXPECT_EQ(server->active_connections(), 0);
  EXPECT_GE(server->connections_refused(), 1);
  // After a full Shutdown the listener is gone: connects are refused by the
  // kernel, not parked in the backlog.
  EXPECT_LT(ConnectLoopback(server->port()), 0);
}

TEST(TcpServerTest, ConnectionLimitRefusesExtrasAndRecovers) {
  Status status;
  auto service = MakeService("tcp_limit.bin", 29, /*max_batch=*/4,
                             /*max_wait_us=*/500, &status);
  ASSERT_NE(service, nullptr) << status.ToString();
  serve::TcpServerConfig tcfg;
  tcfg.max_connections = 2;
  auto server = serve::TcpServer::Start(service.get(), tcfg, &status);
  ASSERT_NE(server, nullptr) << status.ToString();

  // Occupy both slots and prove the server processed the accepts by
  // completing a round-trip on each.
  Rng rng(31);
  int fd1 = ConnectLoopback(server->port());
  int fd2 = ConnectLoopback(server->port());
  ASSERT_GE(fd1, 0);
  ASSERT_GE(fd2, 0);
  std::string acc1, acc2, line;
  SendAllBytes(fd1, serve::QueryToLine(1, RandomWireQuery(&rng)) + "\n");
  ASSERT_TRUE(RecvLine(fd1, &acc1, &line));
  EXPECT_EQ(ExtractId(line), 1);
  SendAllBytes(fd2, serve::QueryToLine(2, RandomWireQuery(&rng)) + "\n");
  ASSERT_TRUE(RecvLine(fd2, &acc2, &line));
  EXPECT_EQ(ExtractId(line), 2);

  // Third client: refused in-band, then closed.
  int fd3 = ConnectLoopback(server->port());
  ASSERT_GE(fd3, 0);
  std::string acc3;
  ASSERT_TRUE(RecvLine(fd3, &acc3, &line));
  EXPECT_EQ(line, "{\"id\":-1,\"error\":\"connection limit reached\"}");
  EXPECT_TRUE(RecvEof(fd3));
  ::close(fd3);
  EXPECT_EQ(server->connections_refused(), 1);

  // Freeing a slot lets the next client in.
  ::close(fd1);
  for (int i = 0; i < 200 && server->active_connections() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_LE(server->active_connections(), 1);
  int fd4 = ConnectLoopback(server->port());
  ASSERT_GE(fd4, 0);
  std::string acc4;
  SendAllBytes(fd4, serve::QueryToLine(4, RandomWireQuery(&rng)) + "\n");
  ASSERT_TRUE(RecvLine(fd4, &acc4, &line));
  EXPECT_EQ(ExtractId(line), 4);
  ::close(fd4);
  ::close(fd2);
  server->Shutdown();
}

TEST(TcpServerTest, MalformedLineAnsweredInBandConnectionStaysUsable) {
  Status status;
  auto service = MakeService("tcp_malformed.bin", 37, /*max_batch=*/4,
                             /*max_wait_us=*/500, &status);
  ASSERT_NE(service, nullptr) << status.ToString();
  serve::TcpServerConfig tcfg;
  auto server = serve::TcpServer::Start(service.get(), tcfg, &status);
  ASSERT_NE(server, nullptr) << status.ToString();

  int fd = ConnectLoopback(server->port());
  ASSERT_GE(fd, 0);
  std::string acc, line;

  // Garbage gets an in-band error with id -1 (the line never yielded one).
  SendAllBytes(fd, "definitely not a query\n");
  ASSERT_TRUE(RecvLine(fd, &acc, &line));
  EXPECT_EQ(ExtractId(line), -1);
  EXPECT_NE(line.find("\"error\""), std::string::npos);

  // Blank lines and comments produce no response at all: the next answer on
  // the wire belongs to the valid query after them.
  Rng rng(41);
  SendAllBytes(fd, "\n# a comment line\n" +
                       serve::QueryToLine(88, RandomWireQuery(&rng)) + "\n");
  ASSERT_TRUE(RecvLine(fd, &acc, &line));
  EXPECT_EQ(ExtractId(line), 88);
  EXPECT_EQ(line.find("\"error\""), std::string::npos);
  ::close(fd);
  server->Shutdown();
}

TEST(TcpServerTest, HalfClosedPeerStillReceivesItsAnswers) {
  Status status;
  auto service = MakeService("tcp_halfclose.bin", 43, /*max_batch=*/4,
                             /*max_wait_us=*/2000, &status);
  ASSERT_NE(service, nullptr) << status.ToString();
  serve::TcpServerConfig tcfg;
  auto server = serve::TcpServer::Start(service.get(), tcfg, &status);
  ASSERT_NE(server, nullptr) << status.ToString();

  int fd = ConnectLoopback(server->port());
  ASSERT_GE(fd, 0);
  Rng rng(47);
  std::string batch;
  for (int64_t id = 0; id < 3; ++id) {
    batch += serve::QueryToLine(id, RandomWireQuery(&rng));
    batch += '\n';
  }
  SendAllBytes(fd, batch);
  // Half-close: we will send nothing more, but the in-flight answers must
  // still arrive, after which the server closes its side.
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  std::string acc, line;
  std::map<int64_t, bool> got;
  for (int j = 0; j < 3; ++j) {
    ASSERT_TRUE(RecvLine(fd, &acc, &line)) << "answer " << j;
    EXPECT_EQ(line.find("\"error\""), std::string::npos) << line;
    got[ExtractId(line)] = true;
  }
  EXPECT_EQ(got.size(), 3u);
  EXPECT_TRUE(RecvEof(fd));
  ::close(fd);
  server->Shutdown();
}

// Reads whatever the peer sends until EOF (admin responses are one-shot:
// the server closes after the flush).
std::string RecvAll(int fd) {
  std::string out;
  char tmp[4096];
  for (;;) {
    ssize_t r = ::recv(fd, tmp, sizeof(tmp), 0);
    if (r <= 0) return out;
    out.append(tmp, static_cast<size_t>(r));
  }
}

TEST(TcpServerTest, AdminEndpointsServeDuringLoadWithoutPerturbingAnswers) {
  // Same bitwise-vs-offline workload as the eight-thread test, with a
  // scraper hammering every admin endpoint the whole time. The query
  // answers must not change by a byte, and every scrape must come back
  // well-formed — introspection is read-only.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 8;
  std::vector<std::vector<serve::ParsedQuery>> per_thread(kThreads);
  std::vector<serve::ParsedQuery> all;
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(600 + static_cast<uint64_t>(t));
    for (int j = 0; j < kPerThread; ++j) {
      serve::ParsedQuery p;
      p.id = t * 1000 + j;
      p.query = RandomWireQuery(&rng);
      per_thread[static_cast<size_t>(t)].push_back(p);
      all.push_back(p);
    }
  }
  auto offline_model = MakeModel(61);
  std::map<int64_t, std::string> expected =
      OfflineExpected(offline_model.get(), all);

  std::string path = CkptPath("tcp_admin_load.bin");
  ASSERT_TRUE(nn::SaveParameters(*offline_model, path).ok());
  serve::ServeConfig scfg;
  scfg.max_len = kMaxLen;
  scfg.max_batch = 8;
  scfg.max_wait_us = 2000;
  Status status;
  auto service = serve::RecoService::Load(MakeModel(919), kItems, kBehaviors,
                                          path, scfg, &status);
  std::remove(path.c_str());
  ASSERT_NE(service, nullptr) << status.ToString();

  serve::TcpServerConfig tcfg;
  tcfg.num_workers = 8;
  auto server = serve::TcpServer::Start(service.get(), tcfg, &status);
  ASSERT_NE(server, nullptr) << status.ToString();
  ASSERT_GT(server->admin_port(), 0);

  std::atomic<bool> load_done{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    bool final_pass = false;
    for (;;) {
      serve::HttpResponse r;
      ASSERT_TRUE(
          serve::HttpGet("127.0.0.1", server->admin_port(), "/healthz", &r)
              .ok());
      EXPECT_EQ(r.code, 200);
      EXPECT_EQ(r.body, "ok\n");
      ASSERT_TRUE(
          serve::HttpGet("127.0.0.1", server->admin_port(), "/metrics", &r)
              .ok());
      EXPECT_EQ(r.code, 200);
      std::map<std::string, serve::PromHistogram> hists;
      EXPECT_TRUE(serve::ParsePrometheusText(r.body, nullptr, &hists))
          << "malformed /metrics under load";
      ASSERT_TRUE(
          serve::HttpGet("127.0.0.1", server->admin_port(), "/statusz", &r)
              .ok());
      EXPECT_EQ(r.code, 200);
      JVal statusz = ParseJsonOrFail(r.body, "/statusz");
      EXPECT_NE(statusz.Get("stages"), nullptr);
      ASSERT_TRUE(
          serve::HttpGet("127.0.0.1", server->admin_port(), "/tracez", &r)
              .ok());
      EXPECT_EQ(r.code, 200);
      JVal tracez = ParseJsonOrFail(r.body, "/tracez");
      EXPECT_NE(tracez.Get("traceEvents"), nullptr);
      scrapes.fetch_add(1);
      // One full sweep after the load finishes so at least one scrape
      // observes the final counts.
      if (final_pass) break;
      if (load_done.load()) final_pass = true;
    }
  });

  std::vector<std::map<int64_t, std::string>> received(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      int fd = ConnectLoopback(server->port());
      ASSERT_GE(fd, 0);
      std::string batch;
      for (const auto& p : per_thread[static_cast<size_t>(t)]) {
        batch += serve::QueryToLine(p.id, p.query);
        batch += '\n';
      }
      SendAllBytes(fd, batch);
      std::string acc, line;
      for (int j = 0; j < kPerThread; ++j) {
        ASSERT_TRUE(RecvLine(fd, &acc, &line)) << "thread " << t;
        received[static_cast<size_t>(t)][ExtractId(line)] = line;
      }
      ::close(fd);
    });
  }
  for (auto& c : clients) c.join();
  load_done.store(true);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0);

  for (int t = 0; t < kThreads; ++t) {
    for (const auto& p : per_thread[static_cast<size_t>(t)]) {
      auto it = received[static_cast<size_t>(t)].find(p.id);
      ASSERT_NE(it, received[static_cast<size_t>(t)].end())
          << "no response for id " << p.id;
      EXPECT_EQ(it->second, expected[p.id]) << "id " << p.id;
    }
  }
  // Scrapes ride the admin plane: the query-side accept counter only saw
  // the client connections.
  EXPECT_EQ(server->connections_accepted(), kThreads);
  server->Shutdown();
}

TEST(TcpServerTest, HealthzFlipsDrainingDuringShutdown) {
  Rng rng(83);
  serve::ParsedQuery parked;
  parked.id = 700;
  parked.query = RandomWireQuery(&rng);
  auto offline = MakeModel(67);
  std::map<int64_t, std::string> expected =
      OfflineExpected(offline.get(), {parked});

  std::string path = CkptPath("tcp_admin_drain.bin");
  ASSERT_TRUE(nn::SaveParameters(*offline, path).ok());
  serve::ServeConfig scfg;
  scfg.max_len = kMaxLen;
  // Wide batch window: the query sits in the micro-batcher while healthz
  // flips, so the drain observation is made with work genuinely in flight.
  scfg.max_batch = 64;
  scfg.max_wait_us = 200000;
  Status status;
  auto service = serve::RecoService::Load(MakeModel(929), kItems, kBehaviors,
                                          path, scfg, &status);
  std::remove(path.c_str());
  ASSERT_NE(service, nullptr) << status.ToString();

  serve::TcpServerConfig tcfg;
  auto server = serve::TcpServer::Start(service.get(), tcfg, &status);
  ASSERT_NE(server, nullptr) << status.ToString();
  ASSERT_GT(server->admin_port(), 0);

  serve::HttpResponse r;
  ASSERT_TRUE(
      serve::HttpGet("127.0.0.1", server->admin_port(), "/healthz", &r).ok());
  EXPECT_EQ(r.code, 200);
  EXPECT_EQ(r.body, "ok\n");

  int fd = ConnectLoopback(server->port());
  ASSERT_GE(fd, 0);
  SendAllBytes(fd, serve::QueryToLine(parked.id, parked.query) + "\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  server->BeginShutdown();

  // The admin plane stays reachable while the query plane drains, and
  // reports the drain.
  ASSERT_TRUE(
      serve::HttpGet("127.0.0.1", server->admin_port(), "/healthz", &r).ok());
  EXPECT_EQ(r.code, 503);
  EXPECT_EQ(r.body, "draining\n");
  ASSERT_TRUE(
      serve::HttpGet("127.0.0.1", server->admin_port(), "/statusz", &r).ok());
  EXPECT_EQ(r.code, 200);
  JVal statusz = ParseJsonOrFail(r.body, "/statusz");
  const JVal* draining = statusz.Get("draining");
  ASSERT_NE(draining, nullptr);
  EXPECT_TRUE(draining->b);

  // The parked query still drains to its bitwise-correct answer.
  std::string acc, line;
  ASSERT_TRUE(RecvLine(fd, &acc, &line));
  EXPECT_EQ(line, expected[parked.id]);
  EXPECT_TRUE(RecvEof(fd));
  ::close(fd);

  server->Shutdown();
  // Full shutdown closes the admin listener too.
  EXPECT_FALSE(
      serve::HttpGet("127.0.0.1", server->admin_port(), "/healthz", &r).ok());
}

TEST(TcpServerTest, AdminMalformedRequestsGet4xxQueryPlaneUndisturbed) {
  Status status;
  auto service = MakeService("tcp_admin_bad.bin", 71, /*max_batch=*/4,
                             /*max_wait_us=*/500, &status);
  ASSERT_NE(service, nullptr) << status.ToString();
  serve::TcpServerConfig tcfg;
  auto server = serve::TcpServer::Start(service.get(), tcfg, &status);
  ASSERT_NE(server, nullptr) << status.ToString();
  ASSERT_GT(server->admin_port(), 0);

  // A query connection opened before the abuse, checked after it: the admin
  // plane's failures must not leak into the query plane.
  int qfd = ConnectLoopback(server->port());
  ASSERT_GE(qfd, 0);

  // Garbage request line -> 400.
  int fd = ConnectLoopback(server->admin_port());
  ASSERT_GE(fd, 0);
  SendAllBytes(fd, "definitely not http\r\n\r\n");
  EXPECT_EQ(RecvAll(fd).substr(0, 12), "HTTP/1.0 400");
  ::close(fd);

  // Wrong method -> 405.
  fd = ConnectLoopback(server->admin_port());
  ASSERT_GE(fd, 0);
  SendAllBytes(fd, "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(RecvAll(fd).substr(0, 12), "HTTP/1.0 405");
  ::close(fd);

  // Unknown path -> 404.
  serve::HttpResponse r;
  ASSERT_TRUE(
      serve::HttpGet("127.0.0.1", server->admin_port(), "/nope", &r).ok());
  EXPECT_EQ(r.code, 404);

  // Oversized head without a terminator -> 400 before buffering forever.
  fd = ConnectLoopback(server->admin_port());
  ASSERT_GE(fd, 0);
  SendAllBytes(fd, std::string(9 * 1024, 'a'));
  EXPECT_EQ(RecvAll(fd).substr(0, 12), "HTTP/1.0 400");
  ::close(fd);

  // The well-formed endpoints still answer...
  ASSERT_TRUE(
      serve::HttpGet("127.0.0.1", server->admin_port(), "/healthz", &r).ok());
  EXPECT_EQ(r.code, 200);

  // ...and so does the query connection that sat through all of it.
  Rng rng(89);
  SendAllBytes(qfd, serve::QueryToLine(9, RandomWireQuery(&rng)) + "\n");
  std::string acc, line;
  ASSERT_TRUE(RecvLine(qfd, &acc, &line));
  EXPECT_EQ(ExtractId(line), 9);
  EXPECT_EQ(line.find("\"error\""), std::string::npos);
  ::close(qfd);
  server->Shutdown();
}

TEST(TcpServerTest, StartRejectsBadConfig) {
  Status status;
  auto service = MakeService("tcp_badcfg.bin", 53, 4, 500, &status);
  ASSERT_NE(service, nullptr) << status.ToString();
  serve::TcpServerConfig bad;
  bad.num_workers = 0;
  EXPECT_EQ(serve::TcpServer::Start(service.get(), bad, &status), nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  bad = serve::TcpServerConfig();
  bad.max_connections = 0;
  EXPECT_EQ(serve::TcpServer::Start(service.get(), bad, &status), nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  bad = serve::TcpServerConfig();
  bad.port = -5;
  EXPECT_EQ(serve::TcpServer::Start(service.get(), bad, &status), nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  bad = serve::TcpServerConfig();
  bad.admin_port = 70000;
  EXPECT_EQ(serve::TcpServer::Start(service.get(), bad, &status), nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace missl
