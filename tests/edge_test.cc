// Edge cases and failure injection across the stack: degenerate batch
// shapes, empty channels, corrupted checkpoints, and protocol boundaries.
#include <cstdio>

#include <gtest/gtest.h>

#include "baselines/zoo.h"
#include "core/missl.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "nn/gru.h"
#include "nn/serialize.h"
#include "nn/transformer.h"
#include "train/trainer.h"
#include <unistd.h>

namespace missl {
namespace {

data::Dataset TinyDs() {
  data::SyntheticConfig cfg;
  cfg.num_users = 20;
  cfg.num_items = 60;
  cfg.min_events = 10;
  cfg.max_events = 20;
  cfg.seed = 77;
  return data::GenerateSynthetic(cfg);
}

TEST(EdgeTest, BatchOfOneWorksEverywhere) {
  data::Dataset ds = TinyDs();
  data::SplitView split(ds);
  data::BatchBuilder builder(ds, 8);
  data::Batch b = builder.Build({split.train_examples[0]});
  EXPECT_EQ(b.batch_size, 1);
  for (const auto& name : baselines::ModelZooNames()) {
    baselines::ZooConfig zc;
    zc.dim = 8;
    zc.max_len = 8;
    zc.num_interests = 2;
    auto model = baselines::CreateModel(name, ds, zc);
    EXPECT_TRUE(std::isfinite(model->Loss(b).item())) << name;
    NoGradGuard ng;
    model->SetTraining(false);
    Tensor s = model->ScoreCandidates(b, {1, 2, 3}, 3);
    EXPECT_EQ(s.size(0), 1) << name;
  }
}

TEST(EdgeTest, MaxLenLargerThanAnyHistory) {
  data::Dataset ds = TinyDs();
  data::SplitView split(ds);
  data::BatchBuilder builder(ds, 200);  // far beyond max_events
  data::Batch b = builder.Build({split.train_examples[0]});
  // Leading positions must all be padding.
  EXPECT_EQ(b.merged_items[0], -1);
  core::MisslConfig cfg;
  cfg.dim = 8;
  cfg.num_interests = 2;
  core::MisslModel model(ds.num_items(), ds.num_behaviors(), 200, cfg);
  EXPECT_TRUE(std::isfinite(model.Loss(b).item()));
}

TEST(EdgeTest, MisslHandlesRowWithNoAuxEvents) {
  // Hand-build a dataset where one user's history before the cut is
  // target-behavior only.
  data::Dataset ds(2, 20, 2, "noaux");
  int64_t t = 0;
  // user 0: cart-only history.
  for (int item : {1, 2, 3, 4, 5}) {
    ds.Add({0, item, data::Behavior::kCart, t++});
  }
  // user 1: mixed history (keeps the dataset generally sane).
  for (int item : {6, 7, 8}) {
    ds.Add({1, item, data::Behavior::kClick, t++});
    ds.Add({1, item, data::Behavior::kCart, t++});
  }
  ds.Finalize();
  data::BatchBuilder builder(ds, 6);
  data::Batch b = builder.Build({{0, 4}, {1, 5}});
  core::MisslConfig cfg;
  cfg.dim = 8;
  cfg.num_interests = 2;
  core::MisslModel model(ds.num_items(), ds.num_behaviors(), 6, cfg);
  Tensor loss = model.Loss(b);
  EXPECT_TRUE(std::isfinite(loss.item()));
  // Click-channel interests for user 0 must be exactly zero (indicator).
  Tensor vb = model.BehaviorInterests(b, 0);
  for (int64_t k = 0; k < 2; ++k) {
    for (int64_t d = 0; d < 8; ++d) {
      EXPECT_EQ(vb.at({0, k, d}), 0.0f);
    }
  }
}

TEST(EdgeTest, EvaluateEmptySubsetGivesZeroUsers) {
  data::Dataset ds = TinyDs();
  data::SplitView split(ds);
  eval::EvalConfig ec;
  ec.max_len = 8;
  ec.num_negatives = 10;
  eval::Evaluator ev(ds, split, ec);
  baselines::ZooConfig zc;
  zc.dim = 8;
  zc.max_len = 8;
  auto model = baselines::CreateModel("POP", ds, zc);
  eval::EvalResult r = ev.EvaluateSubset(model.get(), {}, true);
  EXPECT_EQ(r.num_users, 0);
  EXPECT_EQ(r.hr10, 0.0);
}

TEST(EdgeTest, CorruptedCheckpointRejected) {
  Rng rng(1);
  nn::GRU gru(4, 4, &rng);
  std::string path = ::testing::TempDir() + "/corrupt.bin";
  ASSERT_TRUE(nn::SaveParameters(gru, path).ok());
  // Truncate the file mid-payload.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  }
  nn::GRU fresh(4, 4, &rng);
  Status s = nn::LoadParameters(&fresh, path);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(EdgeTest, CheckpointWithFlippedMagicRejected) {
  Rng rng(2);
  nn::GRU gru(3, 3, &rng);
  std::string path = ::testing::TempDir() + "/badmagic.bin";
  ASSERT_TRUE(nn::SaveParameters(gru, path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "r+");
    std::fputc('X', f);
    std::fclose(f);
  }
  Status s = nn::LoadParameters(&gru, path);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(EdgeTest, GruSequenceLengthOne) {
  Rng rng(3);
  nn::GRU gru(4, 6, &rng);
  Tensor x = Tensor::Randn({2, 1, 4}, &rng);
  Tensor last;
  Tensor all = gru.Forward(x, &last);
  EXPECT_EQ(all.size(1), 1);
  for (int64_t i = 0; i < last.numel(); ++i)
    EXPECT_NEAR(all.data()[i], last.data()[i], 1e-6f);
}

TEST(EdgeTest, TransformerAllPaddedRowStaysFinite) {
  Rng rng(4);
  nn::TransformerConfig cfg;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn_hidden = 16;
  cfg.dropout = 0.0f;
  nn::TransformerEncoder enc(cfg, &rng);
  enc.SetTraining(false);
  Tensor x = Tensor::Randn({2, 4, 8}, &rng);
  // Row 0 fully padded.
  std::vector<int32_t> ids = {-1, -1, -1, -1, 1, 2, 3, 4};
  Tensor y = enc.Forward(x, nn::KeyPaddingMask(ids, 2, 4));
  for (int64_t i = 0; i < y.numel(); ++i)
    EXPECT_TRUE(std::isfinite(y.data()[i]));
}

TEST(EdgeTest, TwoBehaviorDatasetEndToEnd) {
  data::SyntheticConfig cfg;
  cfg.num_users = 30;
  cfg.num_items = 80;
  cfg.num_behaviors = 2;
  cfg.min_events = 10;
  cfg.max_events = 20;
  cfg.seed = 5;
  data::Dataset ds = data::GenerateSynthetic(cfg);
  data::SplitView split(ds);
  eval::EvalConfig ec;
  ec.max_len = 10;
  ec.num_negatives = 10;
  eval::Evaluator ev(ds, split, ec);
  core::MisslConfig mcfg;
  mcfg.dim = 8;
  mcfg.num_interests = 2;
  core::MisslModel model(ds.num_items(), ds.num_behaviors(), 10, mcfg);
  train::TrainConfig tc;
  tc.max_epochs = 1;
  tc.max_len = 10;
  tc.batch_size = 16;
  train::TrainResult r = train::Fit(&model, ds, split, ev, tc);
  EXPECT_GT(r.test.num_users, 0);
}

TEST(EdgeDeathTest, BatchBuilderRejectsCutZero) {
  data::Dataset ds = TinyDs();
  data::BatchBuilder builder(ds, 8);
  EXPECT_DEATH(builder.Build({{0, 0}}), "bad cut");
}

TEST(EdgeDeathTest, EvaluatorRejectsIneligibleUser) {
  data::Dataset ds(2, 30, 2, "sparse");
  ds.Add({0, 1, data::Behavior::kClick, 0});
  ds.Add({0, 2, data::Behavior::kCart, 1});
  for (int i = 0; i < 8; ++i) {
    ds.Add({1, 3 + i, data::Behavior::kClick, 2 + 2 * i});
    ds.Add({1, 3 + i, data::Behavior::kCart, 3 + 2 * i});
  }
  ds.Finalize();
  data::SplitView split(ds);
  ASSERT_EQ(split.test_pos[0], -1);  // user 0 excluded
  eval::EvalConfig ec;
  ec.max_len = 8;
  ec.num_negatives = 5;
  eval::Evaluator ev(ds, split, ec);
  baselines::ZooConfig zc;
  auto model = baselines::CreateModel("POP", ds, zc);
  EXPECT_DEATH(ev.EvaluateSubset(model.get(), {0}, true), "not eligible");
}

}  // namespace
}  // namespace missl
