// Fuzz-style negative tests for the serving line protocol. A live request
// stream must never crash the server: every malformed line — truncated
// fields, non-numeric ids, integer overflow, oversized payloads, embedded
// NULs — has to come back as a descriptive InvalidArgument Status. The CI
// ASan job runs this binary, so any out-of-bounds read in the parser that
// a malformed line can reach fails loudly here.
#include "serve/protocol.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "utils/rng.h"

namespace missl::serve {
namespace {

// Must reject with InvalidArgument and a non-empty message; must not crash.
void ExpectRejected(const std::string& line) {
  SCOPED_TRACE("line: \"" + line + "\"");
  ParsedQuery q;
  Status s = ParseQueryLine(line, &q);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty()) << "rejection must say why";
}

// Invariants any accepted line must satisfy — checked after every fuzz
// iteration that happens to parse.
void ExpectWellFormed(const ParsedQuery& q) {
  EXPECT_GE(q.id, 0);
  EXPECT_GE(q.query.k, 1);
  EXPECT_FALSE(q.query.items.empty());
  EXPECT_EQ(q.query.items.size(), q.query.behaviors.size());
  EXPECT_TRUE(q.query.timestamps.empty() ||
              q.query.timestamps.size() == q.query.items.size());
  for (int32_t item : q.query.items) EXPECT_GE(item, 0);
  for (int32_t beh : q.query.behaviors) EXPECT_GE(beh, 0);
  for (int32_t ex : q.query.exclude) EXPECT_GE(ex, 0);
}

TEST(ServeFuzzTest, TruncatedFields) {
  ExpectRejected("");
  ExpectRejected("5");
  ExpectRejected("5\t10");
  ExpectRejected("5\t");
  ExpectRejected("5\t10\t");
  ExpectRejected("\t\t");
  ExpectRejected("5\t10\t1:0\t3\textra");  // too many fields
  ExpectRejected("5\t10\t1:");             // truncated event
  ExpectRejected("5\t10\t:0");
  ExpectRejected("5\t10\t1:0,");           // trailing empty event
  ExpectRejected("5\t10\t1:0:");           // truncated timestamp
}

TEST(ServeFuzzTest, NonNumericIds) {
  ExpectRejected("abc\t10\t1:0");
  ExpectRejected("5x\t10\t1:0");
  ExpectRejected(" 5\t10\t1:0");   // leading space: not a full-consume parse
  ExpectRejected("5\tten\t1:0");
  ExpectRejected("5\t10\tx:0");
  ExpectRejected("5\t10\t1:y");
  ExpectRejected("5\t10\t1:0:zz");
  ExpectRejected("5\t10\t1:0\tfoo");
  ExpectRejected("5\t10\t1.5:0");  // floats are not item ids
  ExpectRejected("5\t10\t1:0:1e3");
}

TEST(ServeFuzzTest, OutOfRangeValues) {
  ExpectRejected("-1\t10\t1:0");                     // negative id
  ExpectRejected("5\t0\t1:0");                       // k < 1
  ExpectRejected("5\t-3\t1:0");                      // negative k
  ExpectRejected("5\t10\t-2:0");                     // negative item
  ExpectRejected("5\t10\t1:-1");                     // negative behavior
  ExpectRejected("5\t10\t1:0\t-4");                  // negative exclude
  ExpectRejected("99999999999999999999\t10\t1:0");   // id overflows int64
  ExpectRejected("5\t4294967296\t1:0");              // k overflows int32
  ExpectRejected("5\t10\t4294967296:0");             // item overflows int32
  ExpectRejected("5\t10\t1:0:99999999999999999999"); // ts overflows int64
}

TEST(ServeFuzzTest, MixedTimestampPresenceRejected) {
  ExpectRejected("5\t10\t1:0:100,2:1");
  ExpectRejected("5\t10\t1:0,2:1:200");
}

TEST(ServeFuzzTest, EmbeddedNulBytes) {
  ExpectRejected(std::string("5\t10\t1:0\0", 9));
  ExpectRejected(std::string("5\00010\t1:0", 9));
  ExpectRejected(std::string("\0", 1));
  // NUL inside a numeric token must not truncate the full-consume check.
  ExpectRejected(std::string("5\t10\t1\0:0", 9));
}

TEST(ServeFuzzTest, OversizedLines) {
  // A huge but well-formed history must parse (bounded only by memory)...
  std::string big = "7\t5\t";
  for (int i = 0; i < 100000; ++i) {
    if (i > 0) big += ',';
    big += std::to_string(i % 1000) + ":" + std::to_string(i % 4);
  }
  ParsedQuery q;
  Status s = ParseQueryLine(big, &q);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(100000u, q.query.items.size());
  ExpectWellFormed(q);
  // ...while a huge garbage token must be rejected, not crash.
  ExpectRejected(std::string(1 << 20, 'A'));
  ExpectRejected("5\t10\t" + std::string(1 << 20, '9') + ":0");
}

// Seeded mutation fuzzing: random byte edits of a valid line. The parser
// must always return (never crash, hang, or trip ASan), and anything it
// accepts must satisfy the query invariants.
TEST(ServeFuzzTest, SeededMutationSweep) {
  const std::string base = "42\t10\t1:0:100,2:1:200,3:0:300\t7,9";
  Rng rng(20240806);
  // Explicit length: the interesting byte set includes NUL, which would
  // otherwise truncate the literal.
  static const char kBytes[] = "0123456789:,\t.-+ex\n\r #\x00\x01\x7f\xff";
  const std::string bytes(kBytes, sizeof(kBytes) - 1);
  for (int iter = 0; iter < 5000; ++iter) {
    std::string line = base;
    int edits = 1 + static_cast<int>(rng.UniformInt(4));
    for (int e = 0; e < edits; ++e) {
      switch (rng.UniformInt(4)) {
        case 0:  // overwrite a byte
          if (!line.empty()) {
            line[rng.UniformInt(line.size())] =
                bytes[rng.UniformInt(bytes.size())];
          }
          break;
        case 1:  // insert a byte
          line.insert(line.begin() + static_cast<int64_t>(
                                         rng.UniformInt(line.size() + 1)),
                      bytes[rng.UniformInt(bytes.size())]);
          break;
        case 2:  // delete a byte
          if (!line.empty()) {
            line.erase(line.begin() +
                       static_cast<int64_t>(rng.UniformInt(line.size())));
          }
          break;
        default:  // truncate
          line.resize(rng.UniformInt(line.size() + 1));
          break;
      }
    }
    SCOPED_TRACE("iter " + std::to_string(iter));
    ParsedQuery q;
    Status s = ParseQueryLine(line, &q);
    if (s.ok()) {
      ExpectWellFormed(q);
    } else {
      EXPECT_FALSE(s.message().empty());
    }
  }
}

}  // namespace
}  // namespace missl::serve
