// Fuzz-style negative tests for the serving line protocol. A live request
// stream must never crash the server: every malformed line — truncated
// fields, non-numeric ids, integer overflow, oversized payloads, embedded
// NULs — has to come back as a descriptive InvalidArgument Status. The CI
// ASan job runs this binary, so any out-of-bounds read in the parser that
// a malformed line can reach fails loudly here.
//
// The Socket* tests below repeat the exercise one layer down, against a
// live epoll TcpServer over loopback: bytes dribbled one at a time, lines
// split mid-token across packets, oversized lines, mid-line disconnects,
// NUL bytes, and a seeded mutation sweep. The server must never crash,
// leak (ASan), or stall — after every hostile exchange a sentinel valid
// query must still come back answered on an aligned pipeline.
#include "serve/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/missl.h"
#include "nn/serialize.h"
#include "serve/service.h"
#include "serve/tcp_server.h"
#include "utils/rng.h"

namespace missl::serve {
namespace {

// Must reject with InvalidArgument and a non-empty message; must not crash.
void ExpectRejected(const std::string& line) {
  SCOPED_TRACE("line: \"" + line + "\"");
  ParsedQuery q;
  Status s = ParseQueryLine(line, &q);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty()) << "rejection must say why";
}

// Invariants any accepted line must satisfy — checked after every fuzz
// iteration that happens to parse.
void ExpectWellFormed(const ParsedQuery& q) {
  EXPECT_GE(q.id, 0);
  EXPECT_GE(q.query.k, 1);
  EXPECT_FALSE(q.query.items.empty());
  EXPECT_EQ(q.query.items.size(), q.query.behaviors.size());
  EXPECT_TRUE(q.query.timestamps.empty() ||
              q.query.timestamps.size() == q.query.items.size());
  for (int32_t item : q.query.items) EXPECT_GE(item, 0);
  for (int32_t beh : q.query.behaviors) EXPECT_GE(beh, 0);
  for (int32_t ex : q.query.exclude) EXPECT_GE(ex, 0);
}

TEST(ServeFuzzTest, TruncatedFields) {
  ExpectRejected("");
  ExpectRejected("5");
  ExpectRejected("5\t10");
  ExpectRejected("5\t");
  ExpectRejected("5\t10\t");
  ExpectRejected("\t\t");
  ExpectRejected("5\t10\t1:0\t3\textra");  // too many fields
  ExpectRejected("5\t10\t1:");             // truncated event
  ExpectRejected("5\t10\t:0");
  ExpectRejected("5\t10\t1:0,");           // trailing empty event
  ExpectRejected("5\t10\t1:0:");           // truncated timestamp
}

TEST(ServeFuzzTest, NonNumericIds) {
  ExpectRejected("abc\t10\t1:0");
  ExpectRejected("5x\t10\t1:0");
  ExpectRejected(" 5\t10\t1:0");   // leading space: not a full-consume parse
  ExpectRejected("5\tten\t1:0");
  ExpectRejected("5\t10\tx:0");
  ExpectRejected("5\t10\t1:y");
  ExpectRejected("5\t10\t1:0:zz");
  ExpectRejected("5\t10\t1:0\tfoo");
  ExpectRejected("5\t10\t1.5:0");  // floats are not item ids
  ExpectRejected("5\t10\t1:0:1e3");
}

TEST(ServeFuzzTest, OutOfRangeValues) {
  ExpectRejected("-1\t10\t1:0");                     // negative id
  ExpectRejected("5\t0\t1:0");                       // k < 1
  ExpectRejected("5\t-3\t1:0");                      // negative k
  ExpectRejected("5\t10\t-2:0");                     // negative item
  ExpectRejected("5\t10\t1:-1");                     // negative behavior
  ExpectRejected("5\t10\t1:0\t-4");                  // negative exclude
  ExpectRejected("99999999999999999999\t10\t1:0");   // id overflows int64
  ExpectRejected("5\t4294967296\t1:0");              // k overflows int32
  ExpectRejected("5\t10\t4294967296:0");             // item overflows int32
  ExpectRejected("5\t10\t1:0:99999999999999999999"); // ts overflows int64
}

TEST(ServeFuzzTest, MixedTimestampPresenceRejected) {
  ExpectRejected("5\t10\t1:0:100,2:1");
  ExpectRejected("5\t10\t1:0,2:1:200");
}

TEST(ServeFuzzTest, EmbeddedNulBytes) {
  ExpectRejected(std::string("5\t10\t1:0\0", 9));
  ExpectRejected(std::string("5\00010\t1:0", 9));
  ExpectRejected(std::string("\0", 1));
  // NUL inside a numeric token must not truncate the full-consume check.
  ExpectRejected(std::string("5\t10\t1\0:0", 9));
}

TEST(ServeFuzzTest, OversizedLines) {
  // A huge but well-formed history must parse (bounded only by memory)...
  std::string big = "7\t5\t";
  for (int i = 0; i < 100000; ++i) {
    if (i > 0) big += ',';
    big += std::to_string(i % 1000) + ":" + std::to_string(i % 4);
  }
  ParsedQuery q;
  Status s = ParseQueryLine(big, &q);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(100000u, q.query.items.size());
  ExpectWellFormed(q);
  // ...while a huge garbage token must be rejected, not crash.
  ExpectRejected(std::string(1 << 20, 'A'));
  ExpectRejected("5\t10\t" + std::string(1 << 20, '9') + ":0");
}

// Seeded mutation fuzzing: random byte edits of a valid line. The parser
// must always return (never crash, hang, or trip ASan), and anything it
// accepts must satisfy the query invariants.
TEST(ServeFuzzTest, SeededMutationSweep) {
  const std::string base = "42\t10\t1:0:100,2:1:200,3:0:300\t7,9";
  Rng rng(20240806);
  // Explicit length: the interesting byte set includes NUL, which would
  // otherwise truncate the literal.
  static const char kBytes[] = "0123456789:,\t.-+ex\n\r #\x00\x01\x7f\xff";
  const std::string bytes(kBytes, sizeof(kBytes) - 1);
  for (int iter = 0; iter < 5000; ++iter) {
    std::string line = base;
    int edits = 1 + static_cast<int>(rng.UniformInt(4));
    for (int e = 0; e < edits; ++e) {
      switch (rng.UniformInt(4)) {
        case 0:  // overwrite a byte
          if (!line.empty()) {
            line[rng.UniformInt(line.size())] =
                bytes[rng.UniformInt(bytes.size())];
          }
          break;
        case 1:  // insert a byte
          line.insert(line.begin() + static_cast<int64_t>(
                                         rng.UniformInt(line.size() + 1)),
                      bytes[rng.UniformInt(bytes.size())]);
          break;
        case 2:  // delete a byte
          if (!line.empty()) {
            line.erase(line.begin() +
                       static_cast<int64_t>(rng.UniformInt(line.size())));
          }
          break;
        default:  // truncate
          line.resize(rng.UniformInt(line.size() + 1));
          break;
      }
    }
    SCOPED_TRACE("iter " + std::to_string(iter));
    ParsedQuery q;
    Status s = ParseQueryLine(line, &q);
    if (s.ok()) {
      ExpectWellFormed(q);
    } else {
      EXPECT_FALSE(s.message().empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Socket-level sweep: the same hostility, delivered through a real TCP
// connection to a live epoll server.

constexpr int32_t kItems = 40;
constexpr int32_t kBehaviors = 3;
constexpr int64_t kMaxLen = 10;

// One server per fixture instance: a tiny frozen model behind a RecoService
// with no batch wait (each request forwards immediately) and a deliberately
// small max_line_bytes so the oversized-line path is cheap to hit.
class SocketFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::MisslConfig cfg;
    cfg.dim = 8;
    cfg.num_interests = 2;
    cfg.seed = 71;
    auto make_model = [&] {
      return std::make_unique<core::MisslModel>(kItems, kBehaviors, kMaxLen,
                                                cfg);
    };
    std::string path = ::testing::TempDir() + "/socket_fuzz.bin";
    ASSERT_TRUE(nn::SaveParameters(*make_model(), path).ok());
    ServeConfig scfg;
    scfg.max_len = kMaxLen;
    scfg.max_batch = 4;
    scfg.max_wait_us = 0;
    Status status;
    service_ = RecoService::Load(make_model(), kItems, kBehaviors, path, scfg,
                                 &status);
    std::remove(path.c_str());
    ASSERT_NE(service_, nullptr) << status.ToString();
    TcpServerConfig tcfg;
    tcfg.num_workers = 2;
    tcfg.max_line_bytes = 1024;
    server_ = TcpServer::Start(service_.get(), tcfg, &status);
    ASSERT_NE(server_, nullptr) << status.ToString();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  int Connect() {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return -1;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{};
    tv.tv_sec = 30;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return fd;
  }

  static void SendBytes(int fd, const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t w =
          ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(w, 0) << "send: " << std::strerror(errno);
      off += static_cast<size_t>(w);
    }
  }

  static bool ReadLine(int fd, std::string* acc, std::string* line) {
    for (;;) {
      size_t nl = acc->find('\n');
      if (nl != std::string::npos) {
        line->assign(*acc, 0, nl);
        acc->erase(0, nl + 1);
        return true;
      }
      char tmp[4096];
      ssize_t r = ::recv(fd, tmp, sizeof(tmp), 0);
      if (r <= 0) return false;
      acc->append(tmp, static_cast<size_t>(r));
    }
  }

  static int64_t ResponseId(const std::string& line) {
    size_t pos = line.find("\"id\":");
    if (pos == std::string::npos) return INT64_MIN;
    return std::strtoll(line.c_str() + pos + 5, nullptr, 10);
  }

  // Round-trips one known-good query and checks the answer is a non-error
  // response echoing `id` — the liveness probe after every hostile exchange.
  void ExpectServerAlive(int fd, std::string* acc, int64_t id) {
    SendBytes(fd, std::to_string(id) + "\t5\t1:0,2:1,3:2\n");
    std::string line;
    ASSERT_TRUE(ReadLine(fd, acc, &line)) << "server did not answer id " << id;
    EXPECT_EQ(ResponseId(line), id);
    EXPECT_EQ(line.find("\"error\""), std::string::npos) << line;
  }

  std::unique_ptr<RecoService> service_;
  std::unique_ptr<TcpServer> server_;
};

TEST_F(SocketFuzzTest, BytesDribbledOneAtATime) {
  int fd = Connect();
  ASSERT_GE(fd, 0);
  std::string acc, line;
  const std::string request = "9\t5\t4:0:10,7:1:20,2:2:30\t7\n";
  // One byte per packet, paced so the epoll thread observes genuinely
  // partial lines rather than one coalesced read.
  for (char c : request) {
    SendBytes(fd, std::string(1, c));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(ReadLine(fd, &acc, &line));
  EXPECT_EQ(ResponseId(line), 9);
  EXPECT_EQ(line.find("\"error\""), std::string::npos) << line;
  ExpectServerAlive(fd, &acc, 1000);
  ::close(fd);
}

TEST_F(SocketFuzzTest, LinesSplitMidTokenAcrossPackets) {
  const std::string request = "3\t6\t1:0:100,2:1:250,3:2:400\t2,3\n";
  int fd = Connect();
  ASSERT_GE(fd, 0);
  std::string acc, line;
  // Every split position, back to back (kernel may coalesce some)...
  for (size_t cut = 1; cut + 1 < request.size(); ++cut) {
    SendBytes(fd, request.substr(0, cut));
    SendBytes(fd, request.substr(cut));
    ASSERT_TRUE(ReadLine(fd, &acc, &line)) << "cut at " << cut;
    EXPECT_EQ(ResponseId(line), 3) << "cut at " << cut;
    EXPECT_EQ(line.find("\"error\""), std::string::npos) << line;
  }
  // ...and a paced subset where the server provably sees the fragments as
  // separate reads, including cuts inside numeric tokens.
  for (size_t cut : {size_t{1}, size_t{4}, request.size() / 2,
                     request.size() - 2}) {
    SendBytes(fd, request.substr(0, cut));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    SendBytes(fd, request.substr(cut));
    ASSERT_TRUE(ReadLine(fd, &acc, &line)) << "paced cut at " << cut;
    EXPECT_EQ(ResponseId(line), 3);
  }
  ExpectServerAlive(fd, &acc, 1001);
  ::close(fd);
}

TEST_F(SocketFuzzTest, OversizedLineAnsweredOnceAndResynced) {
  int fd = Connect();
  ASSERT_GE(fd, 0);
  std::string acc, line;
  // 8 KB with no newline against max_line_bytes = 1024: one error response,
  // everything up to the next newline discarded.
  SendBytes(fd, std::string(8192, '9'));
  ASSERT_TRUE(ReadLine(fd, &acc, &line));
  EXPECT_EQ(ResponseId(line), -1);
  EXPECT_NE(line.find("\"error\""), std::string::npos);
  // More tail bytes of the same monster line must NOT produce more errors;
  // the newline ends discard mode and the next query is answered normally.
  SendBytes(fd, std::string(2048, '8'));
  SendBytes(fd, "\n");
  ExpectServerAlive(fd, &acc, 1002);
  ::close(fd);
}

TEST_F(SocketFuzzTest, MidLineDisconnectsLeaveServerServing) {
  // Peer vanishes mid-line: no response owed, nothing to crash.
  {
    int fd = Connect();
    ASSERT_GE(fd, 0);
    SendBytes(fd, "5\t10\t1:0,2");  // no newline
    ::close(fd);
  }
  // Peer vanishes after a full query but before reading the answer: the
  // in-flight answer is dropped on the floor, server-side only.
  {
    int fd = Connect();
    ASSERT_GE(fd, 0);
    SendBytes(fd, "6\t10\t1:0,2:1\n");
    ::close(fd);
  }
  // Peer sends garbage then slams the connection.
  {
    int fd = Connect();
    ASSERT_GE(fd, 0);
    SendBytes(fd, "\x01\x02garbage");
    ::close(fd);
  }
  // A fresh connection is served normally afterwards, and the dead
  // connections drain out of the server's accounting.
  int fd = Connect();
  ASSERT_GE(fd, 0);
  std::string acc;
  ExpectServerAlive(fd, &acc, 1003);
  ::close(fd);
  for (int i = 0; i < 200 && server_->active_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->active_connections(), 0);
}

TEST_F(SocketFuzzTest, NulBytesAnsweredAsErrorNotCrash) {
  int fd = Connect();
  ASSERT_GE(fd, 0);
  std::string acc, line;
  SendBytes(fd, std::string("5\t10\t1:0\0\n", 10));
  ASSERT_TRUE(ReadLine(fd, &acc, &line));
  EXPECT_EQ(ResponseId(line), -1);
  EXPECT_NE(line.find("\"error\""), std::string::npos);
  SendBytes(fd, std::string("\0\0\0\n", 4));
  ASSERT_TRUE(ReadLine(fd, &acc, &line));
  EXPECT_NE(line.find("\"error\""), std::string::npos);
  ExpectServerAlive(fd, &acc, 1004);
  ::close(fd);
}

// Seeded mutation sweep over the wire: random byte edits of a valid request
// line, each followed by a sentinel valid query with a fresh id. Whatever
// the mutation produced (0, 1, or several response lines), the sentinel
// answer must arrive non-error on the same connection — the server never
// crashed, stalled, or lost pipeline alignment.
TEST_F(SocketFuzzTest, SeededMutationSweepKeepsPipelineAligned) {
  const std::string base = "42\t10\t1:0:100,2:1:200,3:0:300\t7,9";
  static const char kBytes[] = "0123456789:,\t.-+ex\n\r #\x00\x01\x7f\xff";
  const std::string bytes(kBytes, sizeof(kBytes) - 1);
  Rng rng(20240809);
  int fd = Connect();
  ASSERT_GE(fd, 0);
  std::string acc, line;
  for (int iter = 0; iter < 300; ++iter) {
    SCOPED_TRACE("iter " + std::to_string(iter));
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.UniformInt(4));
    for (int e = 0; e < edits; ++e) {
      switch (rng.UniformInt(4)) {
        case 0:
          if (!mutated.empty()) {
            mutated[rng.UniformInt(mutated.size())] =
                bytes[rng.UniformInt(bytes.size())];
          }
          break;
        case 1:
          mutated.insert(
              mutated.begin() +
                  static_cast<int64_t>(rng.UniformInt(mutated.size() + 1)),
              bytes[rng.UniformInt(bytes.size())]);
          break;
        case 2:
          if (!mutated.empty()) {
            mutated.erase(mutated.begin() + static_cast<int64_t>(
                                                rng.UniformInt(mutated.size())));
          }
          break;
        default:
          mutated.resize(rng.UniformInt(mutated.size() + 1));
          break;
      }
    }
    const int64_t sentinel = 1000000 + iter;
    SendBytes(fd, mutated + "\n" + std::to_string(sentinel) +
                      "\t5\t1:0,2:1,3:2\n");
    // Skip whatever the mutated bytes provoked; the sentinel id must show
    // up within a handful of lines or the pipeline is broken.
    bool found = false;
    for (int reads = 0; reads < 8 && !found; ++reads) {
      ASSERT_TRUE(ReadLine(fd, &acc, &line)) << "connection died";
      if (ResponseId(line) == sentinel) {
        EXPECT_EQ(line.find("\"error\""), std::string::npos) << line;
        found = true;
      }
    }
    ASSERT_TRUE(found) << "sentinel " << sentinel << " never answered";
  }
  ::close(fd);
}

}  // namespace
}  // namespace missl::serve
