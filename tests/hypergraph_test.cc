// Tests for incidence construction and the hypergraph attention layer.
#include "hypergraph/hgat.h"
#include "hypergraph/incidence.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace missl::hypergraph {
namespace {

TEST(IncidenceTest, EdgeCountMatchesLayout) {
  HypergraphConfig cfg;
  cfg.window_size = 4;
  cfg.window_stride = 2;
  cfg.max_repeat_edges = 3;
  // t=8: windows start at 0,2,4 then clamp -> (8-4+1)/2 ceil + 1 = 3.
  int64_t e = NumEdges(cfg, 8, 4);
  EXPECT_EQ(e, 4 + 3 + 3);
}

TEST(IncidenceTest, BehaviorEdgesPartitionValidPositions) {
  HypergraphConfig cfg;
  cfg.window_edges = false;
  cfg.repeat_edges = false;
  // One row, t=5: items {1,2,-1,3,4} behaviors {0,1,-1,0,1}.
  Tensor inc = BuildIncidence({1, 2, -1, 3, 4}, {0, 1, -1, 0, 1}, 1, 5, 2, cfg);
  EXPECT_EQ(inc.size(1), 2);
  // behavior 0 edge: positions 0 and 3.
  EXPECT_EQ(inc.at({0, 0, 0}), 1.0f);
  EXPECT_EQ(inc.at({0, 0, 3}), 1.0f);
  EXPECT_EQ(inc.at({0, 0, 1}), 0.0f);
  // behavior 1 edge: positions 1 and 4.
  EXPECT_EQ(inc.at({0, 1, 1}), 1.0f);
  EXPECT_EQ(inc.at({0, 1, 4}), 1.0f);
  // padding belongs to no edge.
  EXPECT_EQ(inc.at({0, 0, 2}), 0.0f);
  EXPECT_EQ(inc.at({0, 1, 2}), 0.0f);
}

TEST(IncidenceTest, RepeatEdgesGroupSameItem) {
  HypergraphConfig cfg;
  cfg.behavior_edges = false;
  cfg.window_edges = false;
  cfg.max_repeat_edges = 2;
  Tensor inc = BuildIncidence({7, 8, 7, 9, 7, 8}, {0, 0, 0, 0, 0, 0}, 1, 6, 1,
                              cfg);
  EXPECT_EQ(inc.size(1), 2);
  // Largest group first: item 7 at positions 0, 2, 4.
  EXPECT_EQ(inc.at({0, 0, 0}), 1.0f);
  EXPECT_EQ(inc.at({0, 0, 2}), 1.0f);
  EXPECT_EQ(inc.at({0, 0, 4}), 1.0f);
  EXPECT_EQ(inc.at({0, 0, 1}), 0.0f);
  // Second group: item 8 at positions 1, 5.
  EXPECT_EQ(inc.at({0, 1, 1}), 1.0f);
  EXPECT_EQ(inc.at({0, 1, 5}), 1.0f);
  EXPECT_EQ(inc.at({0, 1, 3}), 0.0f);  // item 9 occurs once -> no edge
}

TEST(IncidenceTest, WindowEdgesCoverSequence) {
  HypergraphConfig cfg;
  cfg.behavior_edges = false;
  cfg.repeat_edges = false;
  cfg.window_size = 3;
  cfg.window_stride = 2;
  Tensor inc = BuildIncidence({1, 2, 3, 4, 5}, {0, 0, 0, 0, 0}, 1, 5, 1, cfg);
  // Every valid position is in at least one window.
  for (int64_t i = 0; i < 5; ++i) {
    float cover = 0;
    for (int64_t e = 0; e < inc.size(1); ++e) cover += inc.at({0, e, i});
    EXPECT_GE(cover, 1.0f) << "position " << i << " uncovered";
  }
}

TEST(IncidenceTest, BatchRowsIndependent) {
  HypergraphConfig cfg;
  cfg.window_edges = false;
  cfg.repeat_edges = false;
  Tensor inc = BuildIncidence({1, 2, 3, 4}, {0, 0, 1, 1}, 2, 2, 2, cfg);
  EXPECT_EQ(inc.at({0, 0, 0}), 1.0f);  // row 0 all behavior 0
  EXPECT_EQ(inc.at({0, 1, 0}), 0.0f);
  EXPECT_EQ(inc.at({1, 1, 0}), 1.0f);  // row 1 all behavior 1
  EXPECT_EQ(inc.at({1, 0, 0}), 0.0f);
}

TEST(HgatTest, OutputShapePreserved) {
  Rng rng(1);
  HypergraphAttentionLayer layer(16, 0.0f, &rng);
  Tensor x = Tensor::Randn({2, 6, 16}, &rng);
  HypergraphConfig cfg;
  Tensor inc = BuildIncidence(std::vector<int32_t>(12, 1),
                              std::vector<int32_t>(12, 0), 2, 6, 2, cfg);
  Tensor y = layer.Forward(x, inc);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(HgatTest, GradFlowsToAllParams) {
  Rng rng(2);
  HypergraphAttentionLayer layer(8, 0.0f, &rng);
  Tensor x = Tensor::Randn({2, 5, 8}, &rng);
  HypergraphConfig cfg;
  std::vector<int32_t> items = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int32_t> behs = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  Tensor inc = BuildIncidence(items, behs, 2, 5, 2, cfg);
  Sum(Square(layer.Forward(x, inc))).Backward();
  for (const auto& p : layer.Parameters()) {
    EXPECT_TRUE(p.has_grad());
  }
}

TEST(HgatTest, EmptyIncidenceActsAsResidualNorm) {
  // With an all-zero incidence the aggregation is zero, so the layer reduces
  // to LN(x + Wo(0) ...) with only bias contributions — output must be
  // finite and well-formed.
  Rng rng(3);
  HypergraphAttentionLayer layer(8, 0.0f, &rng);
  layer.SetTraining(false);
  Tensor x = Tensor::Randn({1, 4, 8}, &rng);
  Tensor inc = Tensor::Zeros({1, 3, 4});
  Tensor y = layer.Forward(x, inc);
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(HgatTest, MembershipChangesOutput) {
  Rng rng(4);
  HypergraphAttentionLayer layer(8, 0.0f, &rng);
  layer.SetTraining(false);
  Tensor x = Tensor::Randn({1, 4, 8}, &rng);
  HypergraphConfig cfg;
  cfg.window_edges = false;
  cfg.repeat_edges = false;
  Tensor inc1 = BuildIncidence({1, 2, 3, 4}, {0, 0, 1, 1}, 1, 4, 2, cfg);
  Tensor inc2 = BuildIncidence({1, 2, 3, 4}, {0, 1, 0, 1}, 1, 4, 2, cfg);
  Tensor y1 = layer.Forward(x, inc1);
  Tensor y2 = layer.Forward(x, inc2);
  float diff = 0;
  for (int64_t i = 0; i < y1.numel(); ++i)
    diff += std::fabs(y1.data()[i] - y2.data()[i]);
  EXPECT_GT(diff, 1e-3f);
}

}  // namespace
}  // namespace missl::hypergraph
