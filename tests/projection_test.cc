// Tests for the dimensionality-reduction utilities (PCA, exact t-SNE) used
// by the interest-visualization experiment.
#include <cmath>

#include <gtest/gtest.h>

#include "utils/pca.h"
#include "utils/rng.h"
#include "utils/tsne.h"

namespace missl {
namespace {

// Two well-separated Gaussian blobs in d dimensions; returns labels too.
std::vector<float> MakeBlobs(int64_t n_per, int64_t d, float gap,
                             std::vector<int>* labels, uint64_t seed = 3) {
  Rng rng(seed);
  std::vector<float> data;
  labels->clear();
  for (int blob = 0; blob < 2; ++blob) {
    for (int64_t i = 0; i < n_per; ++i) {
      for (int64_t j = 0; j < d; ++j) {
        float center = (blob == 0 ? -gap : gap) * (j == 0 ? 1.0f : 0.0f);
        data.push_back(center + rng.Normal() * 0.3f);
      }
      labels->push_back(blob);
    }
  }
  return data;
}

double SeparationRatio(const std::vector<float>& proj,
                       const std::vector<int>& labels, int64_t k) {
  // between-centroid distance / mean within-cluster distance, in k-D.
  int64_t n = static_cast<int64_t>(labels.size());
  std::vector<double> c0(static_cast<size_t>(k), 0), c1(static_cast<size_t>(k), 0);
  int64_t n0 = 0, n1 = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < k; ++j) {
      (labels[static_cast<size_t>(i)] == 0 ? c0 : c1)[static_cast<size_t>(j)] +=
          proj[static_cast<size_t>(i * k + j)];
    }
    (labels[static_cast<size_t>(i)] == 0 ? n0 : n1)++;
  }
  for (int64_t j = 0; j < k; ++j) {
    c0[static_cast<size_t>(j)] /= n0;
    c1[static_cast<size_t>(j)] /= n1;
  }
  double between = 0;
  for (int64_t j = 0; j < k; ++j) {
    double diff = c0[static_cast<size_t>(j)] - c1[static_cast<size_t>(j)];
    between += diff * diff;
  }
  between = std::sqrt(between);
  double within = 0;
  for (int64_t i = 0; i < n; ++i) {
    const auto& c = labels[static_cast<size_t>(i)] == 0 ? c0 : c1;
    double acc = 0;
    for (int64_t j = 0; j < k; ++j) {
      double diff = proj[static_cast<size_t>(i * k + j)] - c[static_cast<size_t>(j)];
      acc += diff * diff;
    }
    within += std::sqrt(acc);
  }
  within /= n;
  return between / within;
}

TEST(PcaTest, RecoversDominantDirection) {
  // Points along the x-axis with tiny noise elsewhere: first component must
  // capture nearly all variance.
  Rng rng(7);
  std::vector<float> data;
  for (int i = 0; i < 50; ++i) {
    data.push_back(static_cast<float>(i) - 25.0f);  // dominant axis
    data.push_back(rng.Normal() * 0.01f);
    data.push_back(rng.Normal() * 0.01f);
  }
  std::vector<float> proj = PcaProject(data, 50, 3, 2);
  double var1 = 0, var2 = 0;
  for (int i = 0; i < 50; ++i) {
    var1 += proj[static_cast<size_t>(i * 2)] * proj[static_cast<size_t>(i * 2)];
    var2 += proj[static_cast<size_t>(i * 2 + 1)] *
            proj[static_cast<size_t>(i * 2 + 1)];
  }
  EXPECT_GT(var1, var2 * 100);
}

TEST(PcaTest, SeparatesBlobs) {
  std::vector<int> labels;
  std::vector<float> data = MakeBlobs(30, 8, 5.0f, &labels);
  std::vector<float> proj = PcaProject(data, 60, 8, 2);
  EXPECT_GT(SeparationRatio(proj, labels, 2), 3.0);
}

TEST(PcaTest, Deterministic) {
  std::vector<int> labels;
  std::vector<float> data = MakeBlobs(10, 4, 2.0f, &labels);
  std::vector<float> p1 = PcaProject(data, 20, 4, 2);
  std::vector<float> p2 = PcaProject(data, 20, 4, 2);
  EXPECT_EQ(p1, p2);
}

TEST(PcaTest, CentersData) {
  // Adding a constant offset must not change the projection.
  std::vector<int> labels;
  std::vector<float> data = MakeBlobs(10, 4, 2.0f, &labels);
  std::vector<float> shifted = data;
  for (auto& v : shifted) v += 100.0f;
  std::vector<float> p1 = PcaProject(data, 20, 4, 2);
  std::vector<float> p2 = PcaProject(shifted, 20, 4, 2);
  for (size_t i = 0; i < p1.size(); ++i) EXPECT_NEAR(p1[i], p2[i], 1e-2f);
}

TEST(TsneTest, SeparatesBlobs) {
  std::vector<int> labels;
  std::vector<float> data = MakeBlobs(25, 8, 5.0f, &labels);
  TsneConfig cfg;
  cfg.iterations = 250;
  cfg.perplexity = 10.0;
  std::vector<float> proj = TsneProject(data, 50, 8, cfg);
  EXPECT_GT(SeparationRatio(proj, labels, 2), 2.0);
}

TEST(TsneTest, DeterministicGivenSeed) {
  std::vector<int> labels;
  std::vector<float> data = MakeBlobs(10, 4, 3.0f, &labels);
  TsneConfig cfg;
  cfg.iterations = 50;
  std::vector<float> p1 = TsneProject(data, 20, 4, cfg);
  std::vector<float> p2 = TsneProject(data, 20, 4, cfg);
  EXPECT_EQ(p1, p2);
}

TEST(TsneTest, OutputIsFiniteAndSized) {
  std::vector<int> labels;
  std::vector<float> data = MakeBlobs(8, 6, 1.0f, &labels);
  TsneConfig cfg;
  cfg.iterations = 40;
  cfg.perplexity = 5.0;
  std::vector<float> proj = TsneProject(data, 16, 6, cfg);
  ASSERT_EQ(proj.size(), 32u);
  for (float v : proj) EXPECT_TRUE(std::isfinite(v));
}

TEST(TsneDeathTest, RejectsBadPerplexity) {
  std::vector<float> data(16, 0.0f);
  TsneConfig cfg;
  cfg.perplexity = 100.0;  // >= n
  EXPECT_DEATH(TsneProject(data, 4, 4, cfg), "perplexity");
}

}  // namespace
}  // namespace missl
