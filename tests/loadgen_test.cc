// Load-generator tests (serve/loadgen.h): the query mix must be a pure
// function of the seed (so bench rows are reproducible run to run), the
// nearest-rank percentile extraction must match a naive reference, and the
// closed-loop concurrency bound — at most one outstanding request per
// connection — must hold against a real TCP server.
#include "serve/loadgen.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/missl.h"
#include "nn/serialize.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/tcp_server.h"
#include "utils/rng.h"

namespace missl {
namespace {

constexpr int32_t kItems = 60;
constexpr int32_t kBehaviors = 3;
constexpr int64_t kMaxLen = 12;

std::unique_ptr<serve::RecoService> MakeService(const char* ckpt_name,
                                                Status* status) {
  core::MisslConfig cfg;
  cfg.dim = 16;
  cfg.num_interests = 2;
  cfg.seed = 61;
  auto make_model = [&] {
    return std::make_unique<core::MisslModel>(kItems, kBehaviors, kMaxLen,
                                              cfg);
  };
  std::string path = ::testing::TempDir() + "/" + ckpt_name;
  {
    auto model = make_model();
    Status s = nn::SaveParameters(*model, path);
    if (!s.ok()) {
      *status = s;
      return nullptr;
    }
  }
  serve::ServeConfig scfg;
  scfg.max_len = kMaxLen;
  scfg.max_batch = 8;
  scfg.max_wait_us = 1000;
  auto service = serve::RecoService::Load(make_model(), kItems, kBehaviors,
                                          path, scfg, status);
  std::remove(path.c_str());
  return service;
}

serve::LoadGenConfig MixConfig() {
  serve::LoadGenConfig cfg;
  cfg.num_items = kItems;
  cfg.num_behaviors = kBehaviors;
  cfg.max_history = static_cast<int>(kMaxLen);
  return cfg;
}

TEST(LoadGenTest, QueryMixIsDeterministicPerSeed) {
  serve::LoadGenConfig cfg = MixConfig();
  auto draw = [&](uint64_t seed, uint64_t stream) {
    Rng rng(seed, stream);
    std::vector<std::string> lines;
    for (int64_t id = 0; id < 50; ++id) {
      serve::ParsedQuery p = serve::MakeLoadQuery(&rng, id, cfg);
      lines.push_back(serve::QueryToLine(p.id, p.query));
    }
    return lines;
  };
  // Same (seed, stream): identical wire bytes. Different seed or different
  // sub-stream: the mix must diverge somewhere.
  EXPECT_EQ(draw(9, 0), draw(9, 0));
  EXPECT_NE(draw(9, 0), draw(10, 0));
  EXPECT_NE(draw(9, 0), draw(9, 1));
}

TEST(LoadGenTest, MadeQueriesAreWireRepresentable) {
  // Every generated query must survive the wire round trip exactly — the
  // load numbers are meaningless if the server sees a different query than
  // the generator drew (e.g. a `now` the line cannot carry).
  serve::LoadGenConfig cfg = MixConfig();
  Rng rng(123, 4);
  for (int64_t id = 0; id < 200; ++id) {
    serve::ParsedQuery p = serve::MakeLoadQuery(&rng, id, cfg);
    ASSERT_GE(static_cast<int>(p.query.items.size()), cfg.min_history);
    ASSERT_LE(static_cast<int>(p.query.items.size()), cfg.max_history);
    serve::ParsedQuery back;
    Status s = serve::ParseQueryLine(serve::QueryToLine(p.id, p.query), &back);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(back.id, p.id);
    EXPECT_EQ(back.query.items, p.query.items);
    EXPECT_EQ(back.query.behaviors, p.query.behaviors);
    EXPECT_EQ(back.query.timestamps, p.query.timestamps);
    EXPECT_EQ(back.query.now, p.query.now);
    EXPECT_EQ(back.query.exclude, p.query.exclude);
    EXPECT_EQ(back.query.k, p.query.k);
  }
}

TEST(LoadGenTest, PercentileNearestRankMatchesReference) {
  // Known values over 1..100: the p-th percentile is the ceil(p*100)-th
  // smallest sample.
  std::vector<int64_t> v;
  for (int64_t i = 1; i <= 100; ++i) v.push_back(i);
  Rng rng(55);
  rng.Shuffle(&v);  // order must not matter
  EXPECT_EQ(serve::PercentileNearestRank(v, 0.50), 50);
  EXPECT_EQ(serve::PercentileNearestRank(v, 0.99), 99);
  EXPECT_EQ(serve::PercentileNearestRank(v, 0.999), 100);
  EXPECT_EQ(serve::PercentileNearestRank(v, 1.0), 100);
  EXPECT_EQ(serve::PercentileNearestRank(v, 0.0), 1);
  EXPECT_EQ(serve::PercentileNearestRank(v, 0.001), 1);

  // Random sample set vs a naive reference implementation.
  std::vector<int64_t> samples;
  for (int i = 0; i < 777; ++i) {
    samples.push_back(static_cast<int64_t>(rng.UniformInt(1000000)));
  }
  std::vector<int64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {0.25, 0.5, 0.9, 0.99, 0.999}) {
    size_t rank = static_cast<size_t>(
        std::ceil(p * static_cast<double>(sorted.size())));
    EXPECT_EQ(serve::PercentileNearestRank(samples, p), sorted[rank - 1])
        << "p=" << p;
  }

  EXPECT_EQ(serve::PercentileNearestRank({}, 0.5), 0);
  EXPECT_EQ(serve::PercentileNearestRank({42}, 0.5), 42);
}

TEST(LoadGenTest, RejectsBadConfig) {
  serve::LoadGenConfig cfg = MixConfig();
  serve::LoadGenResult out;
  cfg.port = 0;  // unset
  EXPECT_EQ(serve::RunLoadGen(cfg, &out).code(),
            StatusCode::kInvalidArgument);
  cfg.port = 1234;
  cfg.connections = 0;
  EXPECT_EQ(serve::RunLoadGen(cfg, &out).code(),
            StatusCode::kInvalidArgument);
  cfg.connections = 1;
  cfg.total_requests = 0;
  EXPECT_EQ(serve::RunLoadGen(cfg, &out).code(),
            StatusCode::kInvalidArgument);
  cfg.total_requests = 1;
  cfg.target_qps = -1;
  EXPECT_EQ(serve::RunLoadGen(cfg, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(LoadGenTest, ClosedLoopBoundHoldsAgainstRealServer) {
  Status status;
  auto service = MakeService("loadgen_closed.bin", &status);
  ASSERT_NE(service, nullptr) << status.ToString();
  serve::TcpServerConfig tcfg;
  tcfg.num_workers = 4;
  auto server = serve::TcpServer::Start(service.get(), tcfg, &status);
  ASSERT_NE(server, nullptr) << status.ToString();

  serve::LoadGenConfig cfg = MixConfig();
  cfg.port = server->port();
  cfg.connections = 3;
  cfg.target_qps = 0;  // closed loop
  cfg.total_requests = 30;
  cfg.seed = 5;
  serve::LoadGenResult out;
  Status s = serve::RunLoadGen(cfg, &out);
  ASSERT_TRUE(s.ok()) << s.ToString();

  // Every request answered, none as errors; the closed loop never had more
  // outstanding than it has connections; the server agrees on the count.
  EXPECT_EQ(out.sent, 30);
  EXPECT_EQ(out.ok, 30);
  EXPECT_EQ(out.errors, 0);
  EXPECT_GT(out.max_in_flight, 0);
  EXPECT_LE(out.max_in_flight, cfg.connections);
  EXPECT_GT(out.achieved_qps, 0);
  EXPECT_GT(out.wall_seconds, 0);
  EXPECT_LE(out.p50_us, out.p99_us);
  EXPECT_LE(out.p99_us, out.p999_us);
  EXPECT_LE(out.p999_us, out.max_us);
  EXPECT_EQ(service->requests_served(), 30);
  EXPECT_EQ(server->connections_accepted(), cfg.connections);
  server->Shutdown();
}

TEST(LoadGenTest, OpenLoopAnswersEveryScheduledRequest) {
  Status status;
  auto service = MakeService("loadgen_open.bin", &status);
  ASSERT_NE(service, nullptr) << status.ToString();
  serve::TcpServerConfig tcfg;
  tcfg.num_workers = 4;
  auto server = serve::TcpServer::Start(service.get(), tcfg, &status);
  ASSERT_NE(server, nullptr) << status.ToString();

  serve::LoadGenConfig cfg = MixConfig();
  cfg.port = server->port();
  cfg.connections = 2;
  cfg.target_qps = 400;  // well within loopback capacity; run lasts ~0.1s
  cfg.total_requests = 40;
  cfg.seed = 6;
  serve::LoadGenResult out;
  Status s = serve::RunLoadGen(cfg, &out);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(out.sent, 40);
  EXPECT_EQ(out.ok, 40);
  EXPECT_EQ(out.errors, 0);
  EXPECT_EQ(service->requests_served(), 40);
  server->Shutdown();
}

}  // namespace
}  // namespace missl
