// Tests for the nn module layer: registration/traversal, each module's
// forward semantics, masking, GRU recurrence, and checkpoint round-trips.
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/gru.h"
#include "nn/init.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/serialize.h"
#include "nn/transformer.h"
#include "test_util.h"

namespace missl {
namespace {

using nn::CausalMask;
using nn::Embedding;
using nn::FeedForward;
using nn::GRU;
using nn::KeyPaddingMask;
using nn::LayerNormM;
using nn::Linear;
using nn::Module;
using nn::MultiHeadAttention;
using nn::TransformerConfig;
using nn::TransformerEncoder;

TEST(ModuleTest, ParameterRegistrationAndNames) {
  Rng rng(1);
  Linear fc(4, 3, &rng);
  auto named = fc.NamedParameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
  EXPECT_EQ(fc.NumParams(), 4 * 3 + 3);
  EXPECT_TRUE(named[0].second.requires_grad());
}

TEST(ModuleTest, NestedNamesAndTrainingPropagation) {
  Rng rng(2);
  struct Net : Module {
    Linear a, b;
    Net(Rng* r) : a(2, 2, r), b(2, 2, r, /*bias=*/false) {
      RegisterModule("a", &a);
      RegisterModule("b", &b);
    }
  } net(&rng);
  auto named = net.NamedParameters();
  ASSERT_EQ(named.size(), 3u);
  EXPECT_EQ(named[0].first, "a.weight");
  EXPECT_EQ(named[2].first, "b.weight");
  EXPECT_TRUE(net.training());
  net.SetTraining(false);
  EXPECT_FALSE(net.a.training());
  EXPECT_FALSE(net.b.training());
}

TEST(ModuleTest, ZeroGradClearsAllParams) {
  Rng rng(3);
  Linear fc(3, 2, &rng);
  Tensor x = Tensor::Randn({4, 3}, &rng);
  Sum(fc.Forward(x)).Backward();
  EXPECT_TRUE(fc.weight().has_grad());
  fc.ZeroGrad();
  for (int64_t i = 0; i < fc.weight().numel(); ++i)
    EXPECT_EQ(fc.weight().impl()->grad[static_cast<size_t>(i)], 0.0f);
}

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(4);
  Linear fc(2, 2, &rng);
  // Overwrite weights for a deterministic check (handles alias storage).
  Tensor w = fc.weight(), b = fc.bias();
  w.CopyFrom({1, 2, 3, 4});  // [in=2, out=2] row-major
  b.CopyFrom({10, 20});
  Tensor x = Tensor::FromData({1, 1}, {1, 2});
  testing::ExpectTensorNear(fc.Forward(x), {1 + 3 + 10, 2 + 4 + 20});
}

TEST(LinearTest, Rank3Input) {
  Rng rng(5);
  Linear fc(4, 3, &rng);
  Tensor x = Tensor::Randn({2, 5, 4}, &rng);
  Tensor y = fc.Forward(x);
  EXPECT_EQ(y.size(0), 2);
  EXPECT_EQ(y.size(1), 5);
  EXPECT_EQ(y.size(2), 3);
}

TEST(LinearTest, GradFlowsToWeights) {
  Rng rng(6);
  Linear fc(3, 2, &rng);
  Tensor x = Tensor::Randn({4, 3}, &rng);
  Sum(Square(fc.Forward(x))).Backward();
  EXPECT_TRUE(fc.weight().has_grad());
  EXPECT_TRUE(fc.bias().has_grad());
}

TEST(EmbeddingTest, LookupShapeAndPadding) {
  Rng rng(7);
  Embedding emb(10, 4, &rng);
  Tensor e = emb.Forward({1, 2, -1, 3, 4, 5}, {2, 3});
  EXPECT_EQ(e.dim(), 3);
  EXPECT_EQ(e.size(2), 4);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(e.at({0, 2, i}), 0.0f);
}

TEST(InitTest, XavierBoundsRespected) {
  Rng rng(8);
  Tensor w = nn::XavierUniform({64, 64}, &rng);
  float bound = std::sqrt(6.0f / 128.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w.data()[i]), bound + 1e-6f);
  }
}

TEST(LayerNormModuleTest, NormalizesAndLearnsAffine) {
  Rng rng(9);
  LayerNormM ln(6);
  Tensor x = Tensor::Randn({3, 6}, &rng, 5.0f);
  Tensor y = ln.Forward(x);
  float mu = 0;
  for (int64_t i = 0; i < 6; ++i) mu += y.data()[i];
  EXPECT_NEAR(mu / 6.0f, 0.0f, 1e-4f);
  EXPECT_EQ(ln.NumParams(), 12);
}

TEST(MaskTest, KeyPaddingMaskMarksNegativeIds) {
  Tensor m = KeyPaddingMask({1, -1, 2, -1, -1, 3}, 2, 3);
  EXPECT_EQ(m.size(0), 2);
  EXPECT_EQ(m.size(1), 1);
  EXPECT_EQ(m.size(2), 3);
  EXPECT_EQ(m.at({0, 0, 0}), 0.0f);
  EXPECT_EQ(m.at({0, 0, 1}), -1e9f);
  EXPECT_EQ(m.at({1, 0, 0}), -1e9f);
  EXPECT_EQ(m.at({1, 0, 2}), 0.0f);
}

TEST(MaskTest, CausalMaskUpperTriangle) {
  Tensor m = CausalMask(3);
  EXPECT_EQ(m.at({0, 0}), 0.0f);
  EXPECT_EQ(m.at({0, 1}), -1e9f);
  EXPECT_EQ(m.at({2, 1}), 0.0f);
  EXPECT_EQ(m.at({1, 2}), -1e9f);
}

TEST(AttentionTest, OutputShape) {
  Rng rng(10);
  MultiHeadAttention mha(8, 2, 0.0f, &rng);
  Tensor x = Tensor::Randn({2, 5, 8}, &rng);
  Tensor y = mha.Forward(x, x, x);
  EXPECT_EQ(y.size(0), 2);
  EXPECT_EQ(y.size(1), 5);
  EXPECT_EQ(y.size(2), 8);
}

TEST(AttentionTest, CrossAttentionDifferentLengths) {
  Rng rng(11);
  MultiHeadAttention mha(8, 2, 0.0f, &rng);
  Tensor q = Tensor::Randn({2, 3, 8}, &rng);
  Tensor kv = Tensor::Randn({2, 7, 8}, &rng);
  Tensor y = mha.Forward(q, kv, kv);
  EXPECT_EQ(y.size(1), 3);
}

TEST(AttentionTest, PaddingMaskBlocksPaddedKeys) {
  // With all keys masked except one, attention output equals that key's
  // value projection regardless of other key contents.
  Rng rng(12);
  MultiHeadAttention mha(4, 1, 0.0f, &rng);
  Tensor q = Tensor::Randn({1, 1, 4}, &rng);
  Tensor kv1 = Tensor::Randn({1, 3, 4}, &rng);
  Tensor kv2 = kv1.Clone();
  // Change masked positions only (positions 1 and 2).
  for (int64_t t = 1; t < 3; ++t)
    for (int64_t d = 0; d < 4; ++d) kv2.data()[t * 4 + d] += 5.0f;
  Tensor mask = KeyPaddingMask({0, -1, -1}, 1, 3);
  Tensor y1 = mha.Forward(q, kv1, kv1, mask);
  Tensor y2 = mha.Forward(q, kv2, kv2, mask);
  for (int64_t i = 0; i < y1.numel(); ++i)
    EXPECT_NEAR(y1.data()[i], y2.data()[i], 1e-4f);
}

TEST(AttentionTest, GradReachesAllProjections) {
  Rng rng(13);
  MultiHeadAttention mha(8, 2, 0.0f, &rng);
  Tensor x = Tensor::Randn({2, 4, 8}, &rng);
  Sum(Square(mha.Forward(x, x, x))).Backward();
  for (const auto& p : mha.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(TransformerTest, EncoderShapeAndParamCount) {
  Rng rng(14);
  TransformerConfig cfg;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 2;
  cfg.ffn_hidden = 16;
  cfg.dropout = 0.0f;
  TransformerEncoder enc(cfg, &rng);
  Tensor x = Tensor::Randn({3, 6, 8}, &rng);
  Tensor y = enc.Forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  EXPECT_GT(enc.NumParams(), 0);
}

TEST(TransformerTest, CausalEncoderIgnoresFuture) {
  // With a causal mask, output at position 0 must not change when we
  // perturb positions > 0.
  Rng rng(15);
  TransformerConfig cfg;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn_hidden = 16;
  cfg.dropout = 0.0f;
  cfg.causal = true;
  TransformerEncoder enc(cfg, &rng);
  enc.SetTraining(false);
  Tensor x1 = Tensor::Randn({1, 4, 8}, &rng);
  Tensor x2 = x1.Clone();
  for (int64_t t = 1; t < 4; ++t)
    for (int64_t d = 0; d < 8; ++d) x2.data()[t * 8 + d] += 3.0f;
  Tensor y1 = enc.Forward(x1);
  Tensor y2 = enc.Forward(x2);
  for (int64_t d = 0; d < 8; ++d)
    EXPECT_NEAR(y1.at({0, 0, d}), y2.at({0, 0, d}), 1e-4f);
}

TEST(TransformerTest, FeedForwardShape) {
  Rng rng(16);
  FeedForward ffn(8, 32, 0.0f, &rng);
  Tensor x = Tensor::Randn({2, 3, 8}, &rng);
  EXPECT_EQ(ffn.Forward(x).shape(), x.shape());
}

TEST(GruTest, OutputShapesAndLastState) {
  Rng rng(17);
  GRU gru(6, 10, &rng);
  Tensor x = Tensor::Randn({3, 5, 6}, &rng);
  Tensor last;
  Tensor all = gru.Forward(x, &last);
  EXPECT_EQ(all.size(0), 3);
  EXPECT_EQ(all.size(1), 5);
  EXPECT_EQ(all.size(2), 10);
  EXPECT_EQ(last.size(0), 3);
  EXPECT_EQ(last.size(1), 10);
  // Last slice of `all` equals `last`.
  for (int64_t b = 0; b < 3; ++b)
    for (int64_t d = 0; d < 10; ++d)
      EXPECT_NEAR(all.at({b, 4, d}), last.at({b, d}), 1e-6f);
}

TEST(GruTest, StepIsStateful) {
  Rng rng(18);
  GRU gru(4, 4, &rng);
  Tensor x = Tensor::Randn({2, 4}, &rng);
  Tensor h0 = Tensor::Zeros({2, 4});
  Tensor h1 = gru.Step(x, h0);
  Tensor h2 = gru.Step(x, h1);
  bool differs = false;
  for (int64_t i = 0; i < h1.numel(); ++i)
    differs |= std::fabs(h1.data()[i] - h2.data()[i]) > 1e-6f;
  EXPECT_TRUE(differs);
}

TEST(GruTest, GradFlowsThroughTime) {
  Rng rng(19);
  GRU gru(4, 4, &rng);
  Tensor x = Tensor::Randn({2, 6, 4}, &rng).set_requires_grad(true);
  Tensor last;
  gru.Forward(x, &last);
  Sum(Square(last)).Backward();
  ASSERT_TRUE(x.has_grad());
  // Early timesteps must receive some gradient through the recurrence.
  float g0 = 0;
  for (int64_t d = 0; d < 4; ++d) g0 += std::fabs(x.grad().at({0, 0, d}));
  EXPECT_GT(g0, 0.0f);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(20);
  TransformerConfig cfg;
  cfg.dim = 8;
  cfg.heads = 2;
  cfg.layers = 1;
  cfg.ffn_hidden = 16;
  TransformerEncoder enc1(cfg, &rng);
  std::string path = ::testing::TempDir() + "/missl_ckpt.bin";
  ASSERT_TRUE(nn::SaveParameters(enc1, path).ok());

  Rng rng2(999);
  TransformerEncoder enc2(cfg, &rng2);
  ASSERT_TRUE(nn::LoadParameters(&enc2, path).ok());
  auto p1 = enc1.NamedParameters();
  auto p2 = enc2.NamedParameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    for (int64_t j = 0; j < p1[i].second.numel(); ++j)
      ASSERT_EQ(p1[i].second.data()[j], p2[i].second.data()[j]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadRejectsWrongModel) {
  Rng rng(21);
  Linear small(2, 2, &rng);
  std::string path = ::testing::TempDir() + "/missl_ckpt2.bin";
  ASSERT_TRUE(nn::SaveParameters(small, path).ok());
  Linear big(4, 4, &rng);
  Status s = nn::LoadParameters(&big, path);
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadMissingFileFails) {
  Rng rng(22);
  Linear fc(2, 2, &rng);
  Status s = nn::LoadParameters(&fc, "/nonexistent/path/ckpt.bin");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(SerializeTest, TruncatedFileIsCorruptionNotCrash) {
  Rng rng(23);
  Linear fc(4, 4, &rng);
  std::string path = ::testing::TempDir() + "/missl_ckpt_trunc.bin";
  ASSERT_TRUE(nn::SaveParameters(fc, path).ok());

  // Cut the file at several points (mid-header, mid-name, mid-data): every
  // prefix must fail with a descriptive Corruption status, never crash.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_GT(bytes.size(), 16u);
  for (size_t cut : {size_t{2}, size_t{9}, size_t{21}, bytes.size() - 5}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    Status s = nn::LoadParameters(&fc, path);
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << "cut at " << cut;
    EXPECT_FALSE(s.ToString().empty());
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, WrongShapeIsDescriptiveError) {
  Rng rng(24);
  // Same parameter names ("weight"/"bias"), transposed shapes.
  Linear saved(2, 3, &rng);
  std::string path = ::testing::TempDir() + "/missl_ckpt_shape.bin";
  ASSERT_TRUE(nn::SaveParameters(saved, path).ok());
  Linear loaded(3, 2, &rng);
  Status s = nn::LoadParameters(&loaded, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("shape mismatch"), std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, ParameterCountMismatchIsDescriptiveError) {
  Rng rng(25);
  TransformerConfig cfg;
  cfg.dim = 4;
  cfg.heads = 1;
  cfg.layers = 1;
  cfg.ffn_hidden = 8;
  TransformerEncoder enc(cfg, &rng);  // many params
  std::string path = ::testing::TempDir() + "/missl_ckpt_count.bin";
  ASSERT_TRUE(nn::SaveParameters(enc, path).ok());
  Linear fc(4, 4, &rng);  // only two params
  Status s = nn::LoadParameters(&fc, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("parameter count mismatch"), std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, GarbageMagicIsCorruption) {
  Rng rng(26);
  Linear fc(2, 2, &rng);
  std::string path = ::testing::TempDir() + "/missl_ckpt_magic.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a checkpoint at all";
  }
  Status s = nn::LoadParameters(&fc, path);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.ToString().find("magic"), std::string::npos) << s.ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace missl
