// Tests for the latent-interest synthetic generator: structural guarantees
// (eligibility, determinism) and statistical properties the experiments rely
// on (interest alignment, behavior noise ordering, funnel reuse).
#include "data/synthetic.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

namespace missl::data {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig cfg;
  cfg.num_users = 120;
  cfg.num_items = 300;
  cfg.num_clusters = 10;
  cfg.interests_per_user = 3;
  cfg.min_events = 25;
  cfg.max_events = 60;
  cfg.seed = 3;
  return cfg;
}

TEST(SyntheticTest, DimensionsMatchConfig) {
  SyntheticConfig cfg = SmallConfig();
  Dataset ds = GenerateSynthetic(cfg);
  EXPECT_EQ(ds.num_users(), cfg.num_users);
  EXPECT_EQ(ds.num_items(), cfg.num_items);
  EXPECT_EQ(ds.num_behaviors(), 4);
  EXPECT_EQ(ds.name(), "TaobaoSim");
}

TEST(SyntheticTest, DeterministicPerSeed) {
  Dataset a = GenerateSynthetic(SmallConfig());
  Dataset b = GenerateSynthetic(SmallConfig());
  ASSERT_EQ(a.user(5).events.size(), b.user(5).events.size());
  for (size_t i = 0; i < a.user(5).events.size(); ++i) {
    EXPECT_EQ(a.user(5).events[i].item, b.user(5).events[i].item);
    EXPECT_EQ(a.user(5).events[i].behavior, b.user(5).events[i].behavior);
  }
  SyntheticConfig other = SmallConfig();
  other.seed = 4;
  Dataset c = GenerateSynthetic(other);
  bool identical = a.user(5).events.size() == c.user(5).events.size();
  if (identical) {
    for (size_t i = 0; i < a.user(5).events.size(); ++i)
      identical &= a.user(5).events[i].item == c.user(5).events[i].item;
  }
  EXPECT_FALSE(identical);
}

TEST(SyntheticTest, EveryUserEligibleForLeaveOneOut) {
  Dataset ds = GenerateSynthetic(SmallConfig());
  SplitView split(ds, 3);
  EXPECT_EQ(split.NumEvalUsers(), ds.num_users());
}

TEST(SyntheticTest, ClicksDominateTargets) {
  Dataset ds = GenerateSynthetic(SmallConfig());
  DatasetStats s = ds.Stats();
  EXPECT_GT(s.per_behavior[0], s.per_behavior[3] * 2);
  EXPECT_GT(s.per_behavior[3], 0);
}

TEST(SyntheticTest, TargetEventsConcentrateOnUserInterests) {
  // For each user, the top-3 clusters by target-event count should cover a
  // large majority of non-noise target events, because targets are clean.
  SyntheticConfig cfg = SmallConfig();
  cfg.funnel_reuse = 0.0f;  // isolate interest alignment from funnel reuse
  Dataset ds = GenerateSynthetic(cfg);
  double aligned = 0, total = 0;
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    std::map<int32_t, int> counts;
    for (const auto& e : ds.user(u).events) {
      if (e.behavior != Behavior::kBuy) continue;
      counts[ItemCluster(e.item, cfg.num_clusters)]++;
    }
    std::vector<int> sorted;
    int sum = 0;
    for (auto& [c, n] : counts) {
      sorted.push_back(n);
      sum += n;
    }
    std::sort(sorted.rbegin(), sorted.rend());
    int top = 0;
    for (size_t i = 0; i < sorted.size() && i < 3; ++i) top += sorted[i];
    aligned += top;
    total += sum;
  }
  EXPECT_GT(aligned / total, 0.80);
}

TEST(SyntheticTest, ClickChannelIsNoisierThanTargetChannel) {
  // Measure cluster-concentration per channel: fraction of events landing in
  // the user's top-K clusters of that channel. Clicks should be less
  // concentrated than buys.
  SyntheticConfig cfg = SmallConfig();
  cfg.funnel_reuse = 0.0f;
  Dataset ds = GenerateSynthetic(cfg);
  auto concentration = [&](Behavior beh) {
    double aligned = 0, total = 0;
    for (int32_t u = 0; u < ds.num_users(); ++u) {
      std::map<int32_t, int> counts;
      for (const auto& e : ds.user(u).events) {
        if (e.behavior != beh) continue;
        counts[ItemCluster(e.item, cfg.num_clusters)]++;
      }
      std::vector<int> sorted;
      int sum = 0;
      for (auto& [c, n] : counts) {
        sorted.push_back(n);
        sum += n;
      }
      std::sort(sorted.rbegin(), sorted.rend());
      int top = 0;
      for (size_t i = 0; i < sorted.size() && i < 3; ++i) top += sorted[i];
      aligned += top;
      total += sum;
    }
    return total > 0 ? aligned / total : 0.0;
  };
  EXPECT_LT(concentration(Behavior::kClick), concentration(Behavior::kBuy));
}

TEST(SyntheticTest, FunnelReuseLinksDeepEventsToClicks) {
  // With heavy funnel reuse, most deep events repeat a previously clicked
  // item; with reuse off, far fewer do.
  auto reuse_rate = [](float funnel) {
    SyntheticConfig cfg = SmallConfig();
    cfg.funnel_reuse = funnel;
    Dataset ds = GenerateSynthetic(cfg);
    double reused = 0, total = 0;
    for (int32_t u = 0; u < ds.num_users(); ++u) {
      std::set<int32_t> clicked;
      for (const auto& e : ds.user(u).events) {
        if (e.behavior == Behavior::kClick) {
          clicked.insert(e.item);
        } else {
          total += 1;
          reused += clicked.count(e.item) > 0 ? 1 : 0;
        }
      }
    }
    return reused / total;
  };
  EXPECT_GT(reuse_rate(0.8f), reuse_rate(0.0f) + 0.2);
}

TEST(SyntheticTest, PresetsDiffer) {
  Dataset taobao = GenerateSynthetic(TaobaoSimConfig());
  Dataset tmall = GenerateSynthetic(TmallSimConfig());
  Dataset yelp = GenerateSynthetic(YelpSimConfig());
  EXPECT_EQ(taobao.num_behaviors(), 4);
  EXPECT_EQ(yelp.num_behaviors(), 3);
  EXPECT_NE(taobao.num_users(), tmall.num_users());
  EXPECT_EQ(yelp.name(), "YelpSim");
}

TEST(SyntheticTest, ItemClusterRoundRobin) {
  EXPECT_EQ(ItemCluster(0, 10), 0);
  EXPECT_EQ(ItemCluster(13, 10), 3);
  EXPECT_EQ(ItemCluster(25, 10), 5);
}

// Property sweep: noise knob monotonically reduces click concentration.
class NoiseSweep : public ::testing::TestWithParam<float> {};

TEST_P(NoiseSweep, ClickNoiseReducesConcentration) {
  SyntheticConfig cfg = SmallConfig();
  cfg.funnel_reuse = 0.0f;
  cfg.noise[0] = GetParam();
  Dataset ds = GenerateSynthetic(cfg);
  double aligned = 0, total = 0;
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    std::map<int32_t, int> counts;
    for (const auto& e : ds.user(u).events) {
      if (e.behavior != Behavior::kClick) continue;
      counts[ItemCluster(e.item, cfg.num_clusters)]++;
    }
    std::vector<int> sorted;
    int sum = 0;
    for (auto& [c, n] : counts) {
      sorted.push_back(n);
      sum += n;
    }
    std::sort(sorted.rbegin(), sorted.rend());
    int top = 0;
    for (size_t i = 0; i < sorted.size() && i < 3; ++i) top += sorted[i];
    aligned += top;
    total += sum;
  }
  double conc = aligned / total;
  // Record expectation: concentration shrinks as noise grows. We assert a
  // loose band per noise level rather than cross-instance ordering.
  if (GetParam() <= 0.1f) {
    EXPECT_GT(conc, 0.85);
  } else if (GetParam() >= 0.7f) {
    EXPECT_LT(conc, 0.75);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, NoiseSweep,
                         ::testing::Values(0.0f, 0.1f, 0.4f, 0.7f, 0.9f));

}  // namespace
}  // namespace missl::data
