// Cross-model contract tests: every model in the zoo must produce a finite
// loss that decreases under a few optimizer steps, score candidates with the
// right shape, route gradients into all parameters, and behave
// deterministically given a seed. Plus MISSL-specific behaviors (ablation
// switches, interest extraction).
#include <memory>

#include <gtest/gtest.h>

#include "baselines/cl4srec.h"
#include "baselines/zoo.h"
#include "core/missl.h"
#include "data/batch.h"
#include "data/synthetic.h"
#include "optim/optimizer.h"
#include "test_util.h"

namespace missl {
namespace {

using baselines::CreateModel;
using baselines::ModelZooNames;
using baselines::ZooConfig;

struct Fixture {
  data::Dataset ds;
  data::SplitView split;
  data::BatchBuilder builder;
  data::Batch batch;

  explicit Fixture(int32_t behaviors = 4)
      : ds(MakeDataset(behaviors)), split(ds), builder(ds, 12),
        batch(MakeBatch()) {}

  static data::Dataset MakeDataset(int32_t behaviors) {
    data::SyntheticConfig cfg;
    cfg.num_users = 40;
    cfg.num_items = 80;
    cfg.num_clusters = 8;
    cfg.num_behaviors = behaviors;
    cfg.min_events = 15;
    cfg.max_events = 30;
    cfg.seed = 5;
    return data::GenerateSynthetic(cfg);
  }

  data::Batch MakeBatch() {
    std::vector<data::SplitView::TrainExample> ex(
        split.train_examples.begin(),
        split.train_examples.begin() +
            std::min<size_t>(8, split.train_examples.size()));
    return builder.Build(ex);
  }

  ZooConfig zoo() const {
    ZooConfig zc;
    zc.dim = 16;
    zc.max_len = 12;
    zc.num_interests = 2;
    return zc;
  }
};

class ZooContract : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooContract, LossIsFiniteAndPositive) {
  Fixture f;
  auto model = CreateModel(GetParam(), f.ds,
                           f.zoo());
  Tensor loss = model->Loss(f.batch);
  EXPECT_EQ(loss.numel(), 1);
  EXPECT_TRUE(std::isfinite(loss.item()));
  if (model->Parameters().empty()) {
    // Statistics-based references have nothing to optimize.
    EXPECT_EQ(loss.item(), 0.0f);
  } else {
    EXPECT_GT(loss.item(), 0.0f);
  }
}

TEST_P(ZooContract, LossDecreasesUnderTraining) {
  Fixture f;
  auto model = CreateModel(GetParam(), f.ds,
                           f.zoo());
  if (model->Parameters().empty()) {
    GTEST_SKIP() << GetParam() << " is a non-learned reference";
  }
  optim::Adam opt(model->Parameters(), 5e-3f);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 12; ++step) {
    opt.ZeroGrad();
    Tensor loss = model->Loss(f.batch);
    if (step == 0) first = loss.item();
    last = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, first) << GetParam() << " failed to reduce its own loss";
}

TEST_P(ZooContract, ScoreCandidatesShapeAndFinite) {
  Fixture f;
  auto model = CreateModel(GetParam(), f.ds,
                           f.zoo());
  model->SetTraining(false);
  NoGradGuard ng;
  int64_t c = 5;
  std::vector<int32_t> cands;
  for (int64_t row = 0; row < f.batch.batch_size; ++row)
    for (int64_t j = 0; j < c; ++j)
      cands.push_back(static_cast<int32_t>((row * c + j) % f.ds.num_items()));
  Tensor s = model->ScoreCandidates(f.batch, cands, c);
  ASSERT_EQ(s.dim(), 2);
  EXPECT_EQ(s.size(0), f.batch.batch_size);
  EXPECT_EQ(s.size(1), c);
  for (int64_t i = 0; i < s.numel(); ++i)
    EXPECT_TRUE(std::isfinite(s.data()[i]));
}

TEST_P(ZooContract, AllParametersReceiveGradient) {
  Fixture f;
  auto model = CreateModel(GetParam(), f.ds,
                           f.zoo());
  model->Loss(f.batch).Backward();
  auto named = model->NamedParameters();
  int64_t with_grad = 0;
  for (const auto& [name, p] : named) {
    if (p.has_grad()) ++with_grad;
  }
  // At least 90% of parameters must be touched (positional rows beyond the
  // sequence length legitimately get none).
  EXPECT_GE(with_grad * 10, static_cast<int64_t>(named.size()) * 9)
      << GetParam() << ": only " << with_grad << "/" << named.size()
      << " params got gradient";
}

TEST_P(ZooContract, DeterministicGivenSeed) {
  Fixture f;
  auto m1 = CreateModel(GetParam(), f.ds,
                        f.zoo());
  auto m2 = CreateModel(GetParam(), f.ds,
                        f.zoo());
  EXPECT_FLOAT_EQ(m1->Loss(f.batch).item(), m2->Loss(f.batch).item());
}

TEST_P(ZooContract, EvalModeIsDeterministic) {
  Fixture f;
  auto model = CreateModel(GetParam(), f.ds,
                           f.zoo());
  model->SetTraining(false);
  NoGradGuard ng;
  std::vector<int32_t> cands;
  for (int64_t i = 0; i < f.batch.batch_size * 3; ++i)
    cands.push_back(static_cast<int32_t>(i % f.ds.num_items()));
  Tensor s1 = model->ScoreCandidates(f.batch, cands, 3);
  Tensor s2 = model->ScoreCandidates(f.batch, cands, 3);
  for (int64_t i = 0; i < s1.numel(); ++i)
    EXPECT_EQ(s1.data()[i], s2.data()[i]) << GetParam() << " nondeterministic";
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooContract,
                         ::testing::ValuesIn(ModelZooNames()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(ZooTest, UnknownNameAborts) {
  Fixture f;
  EXPECT_DEATH(CreateModel("NoSuchModel", f.ds, f.zoo()), "unknown model");
}

TEST(ZooTest, NamesMatchModels) {
  Fixture f;
  for (const auto& name : ModelZooNames()) {
    auto m = CreateModel(name, f.ds, f.zoo());
    EXPECT_EQ(m->Name(), name);
  }
}

TEST(MisslTest, InterestShapes) {
  Fixture f;
  core::MisslConfig cfg;
  cfg.dim = 16;
  cfg.num_interests = 3;
  core::MisslModel model(f.ds.num_items(), f.ds.num_behaviors(), 12, cfg);
  Tensor v = model.UserInterests(f.batch);
  EXPECT_EQ(v.size(0), f.batch.batch_size);
  EXPECT_EQ(v.size(1), 3);
  EXPECT_EQ(v.size(2), 16);
  Tensor vb = model.BehaviorInterests(f.batch, 0);
  EXPECT_EQ(vb.shape(), v.shape());
}

TEST(MisslTest, SingleInterestAblationForcesK1) {
  Fixture f;
  core::MisslConfig cfg;
  cfg.dim = 16;
  cfg.num_interests = 4;
  cfg.use_multi_interest = false;
  core::MisslModel model(f.ds.num_items(), f.ds.num_behaviors(), 12, cfg);
  EXPECT_EQ(model.num_interests(), 1);
  EXPECT_EQ(model.UserInterests(f.batch).size(1), 1);
}

TEST(MisslTest, AblationSwitchesChangeLoss) {
  Fixture f;
  auto loss_with = [&](auto mutate) {
    core::MisslConfig cfg;
    cfg.dim = 16;
    cfg.num_interests = 2;
    cfg.dropout = 0.0f;
    mutate(&cfg);
    core::MisslModel model(f.ds.num_items(), f.ds.num_behaviors(), 12, cfg);
    return model.Loss(f.batch).item();
  };
  float full = loss_with([](core::MisslConfig*) {});
  float no_ssl = loss_with([](core::MisslConfig* c) { c->use_ssl = false; });
  float no_hg =
      loss_with([](core::MisslConfig* c) { c->use_hypergraph = false; });
  float no_aux =
      loss_with([](core::MisslConfig* c) { c->use_aux_behaviors = false; });
  EXPECT_NE(full, no_ssl);
  EXPECT_NE(full, no_hg);
  EXPECT_NE(full, no_aux);
}

TEST(MisslTest, AuxAblationIgnoresAuxEvents) {
  // With use_aux_behaviors=false, scores must not change when click-channel
  // items are permuted (they are invisible to the model).
  Fixture f;
  core::MisslConfig cfg;
  cfg.dim = 16;
  cfg.num_interests = 2;
  cfg.dropout = 0.0f;
  cfg.use_aux_behaviors = false;
  core::MisslModel model(f.ds.num_items(), f.ds.num_behaviors(), 12, cfg);
  model.SetTraining(false);
  NoGradGuard ng;
  data::Batch batch = f.batch;
  std::vector<int32_t> cands;
  for (int64_t i = 0; i < batch.batch_size * 4; ++i)
    cands.push_back(static_cast<int32_t>(i % f.ds.num_items()));
  Tensor s1 = model.ScoreCandidates(batch, cands, 4);
  // Perturb all non-target merged events.
  int32_t target_beh = f.ds.num_behaviors() - 1;
  for (size_t i = 0; i < batch.merged_items.size(); ++i) {
    if (batch.merged_items[i] >= 0 &&
        batch.merged_behaviors[i] != target_beh) {
      batch.merged_items[i] =
          (batch.merged_items[i] + 7) % f.ds.num_items();
    }
  }
  Tensor s2 = model.ScoreCandidates(batch, cands, 4);
  for (int64_t i = 0; i < s1.numel(); ++i)
    EXPECT_NEAR(s1.data()[i], s2.data()[i], 1e-5f);
}

TEST(MisslTest, WorksWithTwoAndThreeBehaviorDatasets) {
  for (int32_t nb : {2, 3}) {
    Fixture f(nb);
    core::MisslConfig cfg;
    cfg.dim = 16;
    cfg.num_interests = 2;
    core::MisslModel model(f.ds.num_items(), f.ds.num_behaviors(), 12, cfg);
    EXPECT_TRUE(std::isfinite(model.Loss(f.batch).item()));
  }
}

TEST(Cl4SRecTest, AugmentPreservesFrontPaddingInvariant) {
  Fixture f;
  baselines::Cl4SRecConfig cfg;
  cfg.base.dim = 16;
  baselines::Cl4SRec model(f.ds.num_items(), 12, cfg);
  auto aug = model.Augment(f.batch.merged_items, f.batch.batch_size, 12);
  ASSERT_EQ(aug.size(), f.batch.merged_items.size());
  for (int64_t row = 0; row < f.batch.batch_size; ++row) {
    bool seen_valid = false;
    for (int64_t i = 0; i < 12; ++i) {
      int32_t id = aug[static_cast<size_t>(row * 12 + i)];
      if (id >= 0) {
        seen_valid = true;
      } else {
        EXPECT_FALSE(seen_valid) << "padding after a valid item (row " << row
                                 << ", pos " << i << ")";
      }
    }
    EXPECT_TRUE(seen_valid) << "augmentation erased the whole row";
  }
}

}  // namespace
}  // namespace missl
