// ComiRec-SA (Cen et al., 2020): multi-interest extraction with K attention
// queries over the merged stream (behavior-agnostic), hard interest routing
// at train time and max-over-interests scoring at inference — the
// single-behavior multi-interest baseline.
#ifndef MISSL_BASELINES_COMIREC_H_
#define MISSL_BASELINES_COMIREC_H_

#include <string>

#include "core/model.h"
#include "nn/embedding.h"
#include "nn/linear.h"

namespace missl::baselines {

struct ComiRecConfig {
  int64_t dim = 48;
  int64_t num_interests = 4;
  float dropout = 0.1f;
  uint64_t seed = 17;
};

class ComiRec : public core::SeqRecModel {
 public:
  ComiRec(int32_t num_items, int64_t max_len, const ComiRecConfig& config);

  std::string Name() const override { return "ComiRec"; }
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

  /// Interest matrix [B, K, d] (exposed for tests).
  Tensor Interests(const data::Batch& batch);

 private:
  ComiRecConfig config_;
  Rng rng_;
  nn::Embedding item_emb_;
  nn::Embedding pos_emb_;
  nn::Linear key_proj_;
  Tensor queries_;  ///< [K, d]
};

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_COMIREC_H_
