#include "baselines/mb_gru.h"

#include "core/common.h"

namespace missl::baselines {

MbGru::MbGru(int32_t num_items, int32_t num_behaviors, int64_t max_len,
             const MbGruConfig& config)
    : config_(config),
      num_behaviors_(num_behaviors),
      rng_(config.seed),
      item_emb_(num_items, config.dim, &rng_),
      beh_emb_(num_behaviors, config.dim, &rng_),
      gru_(config.dim, config.dim, &rng_) {
  MISSL_CHECK(max_len > 0);
  RegisterModule("item_emb", &item_emb_);
  RegisterModule("beh_emb", &beh_emb_);
  RegisterModule("gru", &gru_);
}

Tensor MbGru::Encode(const data::Batch& batch) {
  int64_t b = batch.batch_size, t = batch.max_len;
  Tensor x = item_emb_.Forward(batch.merged_items, {b, t});
  x = Add(x, beh_emb_.Forward(batch.merged_behaviors, {b, t}));
  x = Dropout(x, config_.dropout, training(), &rng_);
  Tensor last;
  gru_.Forward(x, &last);
  return last;
}

Tensor MbGru::ChannelSummary(const data::Batch& batch, int32_t behavior) {
  int64_t b = batch.batch_size, t = batch.max_len;
  const auto& ids = batch.beh_items[static_cast<size_t>(behavior)];
  Tensor e = item_emb_.Forward(ids, {b, t});
  return core::MaskedMeanPool(e, ids, b, t);
}

Tensor MbGru::Loss(const data::Batch& batch) {
  Tensor user = Encode(batch);
  Tensor loss = CrossEntropyLoss(core::FullCatalogLogits(user, item_emb_),
                                 batch.targets);
  if (config_.lambda_aux > 0.0f && num_behaviors_ >= 2) {
    // Cascading transfer: the shallowest channel's summary should also rank
    // the purchased item highly.
    Tensor clicks = ChannelSummary(batch, 0);
    Tensor aux = CrossEntropyLoss(core::FullCatalogLogits(clicks, item_emb_),
                                  batch.targets);
    loss = Add(loss, MulScalar(aux, config_.lambda_aux));
  }
  return loss;
}

Tensor MbGru::ScoreCandidates(const data::Batch& batch,
                              const std::vector<int32_t>& cand_ids,
                              int64_t num_cands) {
  Tensor user = Encode(batch);
  return core::ScoreCandidatesSingle(user, item_emb_, cand_ids,
                                     batch.batch_size, num_cands);
}

}  // namespace missl::baselines
