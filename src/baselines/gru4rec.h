// GRU4Rec (Hidasi et al., 2015) adapted to the shared protocol: GRU over the
// merged interaction stream (behavior-agnostic), last hidden state readout,
// full-softmax next-item loss.
#ifndef MISSL_BASELINES_GRU4REC_H_
#define MISSL_BASELINES_GRU4REC_H_

#include <string>

#include "core/model.h"
#include "nn/embedding.h"
#include "nn/gru.h"

namespace missl::baselines {

struct Gru4RecConfig {
  int64_t dim = 48;
  int64_t hidden = 48;
  float dropout = 0.1f;
  uint64_t seed = 17;
};

class Gru4Rec : public core::SeqRecModel {
 public:
  Gru4Rec(int32_t num_items, int64_t max_len, const Gru4RecConfig& config);

  std::string Name() const override { return "GRU4Rec"; }
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

 private:
  /// Final user representation [B, d].
  Tensor Encode(const data::Batch& batch);

  Gru4RecConfig config_;
  Rng rng_;
  nn::Embedding item_emb_;
  nn::GRU gru_;
};

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_GRU4REC_H_
