// MB-STR-lite (Yuan et al., 2022): multi-behavior sequential transformer.
// Causal transformer over the merged stream with item + behavior + position
// embeddings and a behavior-aware prediction projection for the target
// channel. (The full model's per-behavior multi-task heads would be dead
// parameters under this repo's single-target-behavior protocol, so the lite
// version keeps exactly one head.)
#ifndef MISSL_BASELINES_MB_STR_H_
#define MISSL_BASELINES_MB_STR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/transformer.h"

namespace missl::baselines {

struct MbStrConfig {
  int64_t dim = 48;
  int64_t heads = 2;
  int64_t layers = 2;
  float dropout = 0.1f;
  uint64_t seed = 17;
};

class MbStr : public core::SeqRecModel {
 public:
  MbStr(int32_t num_items, int32_t num_behaviors, int64_t max_len,
        const MbStrConfig& config);

  std::string Name() const override { return "MB-STR"; }
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

 private:
  /// [B, d] readout already passed through the behavior-specific head of
  /// the target behavior.
  Tensor Encode(const data::Batch& batch);

  MbStrConfig config_;
  int32_t num_behaviors_;
  Rng rng_;
  nn::Embedding item_emb_;
  nn::Embedding beh_emb_;
  nn::Embedding pos_emb_;
  nn::TransformerEncoder encoder_;
  nn::Linear head_;  ///< behavior-aware projection for the target channel
};

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_MB_STR_H_
