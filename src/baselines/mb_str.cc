#include "baselines/mb_str.h"

#include "core/common.h"
#include "nn/attention.h"

namespace missl::baselines {

namespace {
nn::TransformerConfig EncoderConfig(const MbStrConfig& cfg) {
  nn::TransformerConfig tc;
  tc.dim = cfg.dim;
  tc.heads = cfg.heads;
  tc.layers = cfg.layers;
  tc.ffn_hidden = 2 * cfg.dim;
  tc.dropout = cfg.dropout;
  tc.causal = true;
  return tc;
}
}  // namespace

MbStr::MbStr(int32_t num_items, int32_t num_behaviors, int64_t max_len,
             const MbStrConfig& config)
    : config_(config),
      num_behaviors_(num_behaviors),
      rng_(config.seed),
      item_emb_(num_items, config.dim, &rng_),
      beh_emb_(num_behaviors, config.dim, &rng_),
      pos_emb_(max_len, config.dim, &rng_),
      encoder_(EncoderConfig(config), &rng_),
      head_(config.dim, config.dim, &rng_) {
  RegisterModule("item_emb", &item_emb_);
  RegisterModule("beh_emb", &beh_emb_);
  RegisterModule("pos_emb", &pos_emb_);
  RegisterModule("encoder", &encoder_);
  RegisterModule("head", &head_);
}

Tensor MbStr::Encode(const data::Batch& batch) {
  int64_t b = batch.batch_size, t = batch.max_len;
  Tensor h = core::EmbedWithPositions(item_emb_, pos_emb_, batch.merged_items,
                                      b, t);
  h = Add(h, beh_emb_.Forward(batch.merged_behaviors, {b, t}));
  h = Dropout(h, config_.dropout, training(), &rng_);
  Tensor mask = nn::KeyPaddingMask(batch.merged_items, b, t);
  Tensor user = core::LastPosition(encoder_.Forward(h, mask));
  // Behavior-aware prediction projection for the target channel.
  (void)num_behaviors_;
  return head_.Forward(user);
}

Tensor MbStr::Loss(const data::Batch& batch) {
  Tensor user = Encode(batch);
  return CrossEntropyLoss(core::FullCatalogLogits(user, item_emb_),
                          batch.targets);
}

Tensor MbStr::ScoreCandidates(const data::Batch& batch,
                              const std::vector<int32_t>& cand_ids,
                              int64_t num_cands) {
  Tensor user = Encode(batch);
  return core::ScoreCandidatesSingle(user, item_emb_, cand_ids,
                                     batch.batch_size, num_cands);
}

}  // namespace missl::baselines
