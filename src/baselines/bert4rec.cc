#include "baselines/bert4rec.h"

#include "core/common.h"
#include "nn/attention.h"
#include "tensor/ops.h"

namespace missl::baselines {

namespace {
nn::TransformerConfig EncoderConfig(const Bert4RecConfig& cfg) {
  nn::TransformerConfig tc;
  tc.dim = cfg.dim;
  tc.heads = cfg.heads;
  tc.layers = cfg.layers;
  tc.ffn_hidden = 2 * cfg.dim;
  tc.dropout = cfg.dropout;
  tc.causal = false;
  return tc;
}
}  // namespace

Bert4Rec::Bert4Rec(int32_t num_items, int64_t max_len,
                   const Bert4RecConfig& config)
    : config_(config),
      num_items_(num_items),
      mask_id_(num_items),
      rng_(config.seed),
      item_emb_(num_items + 1, config.dim, &rng_),
      pos_emb_(max_len, config.dim, &rng_),
      encoder_(EncoderConfig(config), &rng_) {
  RegisterModule("item_emb", &item_emb_);
  RegisterModule("pos_emb", &pos_emb_);
  RegisterModule("encoder", &encoder_);
}

Tensor Bert4Rec::EncodeIds(const std::vector<int32_t>& ids, int64_t b,
                           int64_t t) {
  Tensor h = core::EmbedWithPositions(item_emb_, pos_emb_, ids, b, t);
  h = Dropout(h, config_.dropout, training(), &rng_);
  Tensor mask = nn::KeyPaddingMask(ids, b, t);
  return encoder_.Forward(h, mask);
}

Tensor Bert4Rec::Loss(const data::Batch& batch) {
  int64_t b = batch.batch_size, t = batch.max_len;
  // Cloze: replace a random subset of valid positions with [MASK]; predict
  // the originals at those positions. The last valid position is always
  // masked so training matches the evaluation query.
  std::vector<int32_t> ids = batch.merged_items;
  std::vector<int32_t> cloze_targets(static_cast<size_t>(b * t), -1);
  for (int64_t row = 0; row < b; ++row) {
    int64_t last_valid = -1;
    for (int64_t i = 0; i < t; ++i) {
      size_t idx = static_cast<size_t>(row * t + i);
      if (batch.merged_items[idx] < 0) continue;
      last_valid = i;
      if (rng_.Bernoulli(config_.mask_prob)) {
        cloze_targets[idx] = batch.merged_items[idx];
        ids[idx] = mask_id_;
      }
    }
    if (last_valid >= 0) {
      size_t idx = static_cast<size_t>(row * t + last_valid);
      cloze_targets[idx] = batch.merged_items[idx];
      ids[idx] = mask_id_;
    }
  }
  Tensor h = EncodeIds(ids, b, t);                       // [B, T, d]
  Tensor flat = Reshape(h, {b * t, config_.dim});        // [B*T, d]
  // Score against real items only (exclude the [MASK] row).
  Tensor items = Slice(item_emb_.weight(), 0, 0, num_items_);
  Tensor logits = MatMul(flat, Transpose(items));        // [B*T, V]
  return CrossEntropyLoss(logits, cloze_targets);
}

Tensor Bert4Rec::ScoreCandidates(const data::Batch& batch,
                                 const std::vector<int32_t>& cand_ids,
                                 int64_t num_cands) {
  int64_t b = batch.batch_size, t = batch.max_len;
  // Shift history left one slot and append [MASK] as the query position.
  std::vector<int32_t> ids(static_cast<size_t>(b * t), -1);
  for (int64_t row = 0; row < b; ++row) {
    for (int64_t i = 1; i < t; ++i) {
      ids[static_cast<size_t>(row * t + i - 1)] =
          batch.merged_items[static_cast<size_t>(row * t + i)];
    }
    ids[static_cast<size_t>(row * t + t - 1)] = mask_id_;
  }
  Tensor h = EncodeIds(ids, b, t);
  Tensor user = core::LastPosition(h);
  return core::ScoreCandidatesSingle(user, item_emb_, cand_ids, b, num_cands);
}

}  // namespace missl::baselines
