#include "baselines/pop.h"

#include <cmath>

#include "utils/check.h"

namespace missl::baselines {

namespace {

// Visits every training-visible event: all events of each user strictly
// before that user's validation cut (or the whole stream for users excluded
// from evaluation, whose last two target events were never split off).
template <typename Fn>
void ForEachTrainEvent(const data::Dataset& ds, Fn&& fn) {
  data::SplitView split(ds);
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    const auto& events = ds.user(u).events;
    int64_t limit = split.valid_pos[static_cast<size_t>(u)];
    if (limit < 0) limit = static_cast<int64_t>(events.size());
    for (int64_t i = 0; i < limit; ++i) {
      fn(u, i, events[static_cast<size_t>(i)]);
    }
  }
}

}  // namespace

Pop::Pop(const data::Dataset& ds) {
  popularity_.assign(static_cast<size_t>(ds.num_items()), 0.0f);
  ForEachTrainEvent(ds, [this](int32_t, int64_t, const data::Interaction& e) {
    popularity_[static_cast<size_t>(e.item)] += 1.0f;
  });
  for (auto& p : popularity_) p = std::log1p(p);
}

Tensor Pop::Loss(const data::Batch& batch) {
  (void)batch;
  return Tensor::Scalar(0.0f);
}

Tensor Pop::ScoreCandidates(const data::Batch& batch,
                            const std::vector<int32_t>& cand_ids,
                            int64_t num_cands) {
  MISSL_CHECK(static_cast<int64_t>(cand_ids.size()) ==
              batch.batch_size * num_cands)
      << "cand ids size";
  Tensor s = Tensor::Zeros({batch.batch_size, num_cands});
  for (size_t i = 0; i < cand_ids.size(); ++i) {
    s.data()[i] = popularity_[static_cast<size_t>(cand_ids[i])];
  }
  return s;
}

ItemKnn::ItemKnn(const data::Dataset& ds, int64_t window, int64_t recent)
    : recent_(recent) {
  MISSL_CHECK(window > 0 && recent > 0);
  sim_.resize(static_cast<size_t>(ds.num_items()));
  std::vector<float> count(static_cast<size_t>(ds.num_items()), 0.0f);
  // Raw windowed co-occurrence counts.
  data::SplitView split(ds);
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    const auto& events = ds.user(u).events;
    int64_t limit = split.valid_pos[static_cast<size_t>(u)];
    if (limit < 0) limit = static_cast<int64_t>(events.size());
    for (int64_t i = 0; i < limit; ++i) {
      int32_t a = events[static_cast<size_t>(i)].item;
      count[static_cast<size_t>(a)] += 1.0f;
      for (int64_t j = i + 1; j < std::min(limit, i + 1 + window); ++j) {
        int32_t b = events[static_cast<size_t>(j)].item;
        if (a == b) continue;
        sim_[static_cast<size_t>(a)][b] += 1.0f;
        sim_[static_cast<size_t>(b)][a] += 1.0f;
      }
    }
  }
  // Cosine normalization: c(a,b) / sqrt(c(a) * c(b)).
  for (int32_t a = 0; a < ds.num_items(); ++a) {
    for (auto& [b, v] : sim_[static_cast<size_t>(a)]) {
      float denom = std::sqrt(count[static_cast<size_t>(a)] *
                              count[static_cast<size_t>(b)]);
      if (denom > 0) v /= denom;
    }
  }
}

float ItemKnn::Similarity(int32_t a, int32_t b) const {
  const auto& row = sim_[static_cast<size_t>(a)];
  auto it = row.find(b);
  return it == row.end() ? 0.0f : it->second;
}

Tensor ItemKnn::Loss(const data::Batch& batch) {
  (void)batch;
  return Tensor::Scalar(0.0f);
}

Tensor ItemKnn::ScoreCandidates(const data::Batch& batch,
                                const std::vector<int32_t>& cand_ids,
                                int64_t num_cands) {
  MISSL_CHECK(static_cast<int64_t>(cand_ids.size()) ==
              batch.batch_size * num_cands)
      << "cand ids size";
  Tensor s = Tensor::Zeros({batch.batch_size, num_cands});
  int64_t t = batch.max_len;
  for (int64_t row = 0; row < batch.batch_size; ++row) {
    // Most recent `recent_` history items (front-padded layout).
    std::vector<int32_t> hist;
    for (int64_t i = t - 1; i >= 0 && static_cast<int64_t>(hist.size()) < recent_;
         --i) {
      int32_t id = batch.merged_items[static_cast<size_t>(row * t + i)];
      if (id >= 0) hist.push_back(id);
    }
    for (int64_t c = 0; c < num_cands; ++c) {
      int32_t cand = cand_ids[static_cast<size_t>(row * num_cands + c)];
      float acc = 0;
      for (int32_t h : hist) acc += Similarity(h, cand);
      s.data()[row * num_cands + c] = acc;
    }
  }
  return s;
}

}  // namespace missl::baselines
