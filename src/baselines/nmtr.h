// NMTR-lite (Gao et al., ICDE 2019): neural multi-task recommendation with
// cascaded behavior prediction. A shared GRU encodes the behavior-tagged
// stream; per-behavior heads produce cascaded logits (each channel's logit
// is the previous channel's plus its own head), trained multi-task with
// weights increasing toward the target channel. Adapted to this repo's
// next-item protocol (the original is rating-style).
#ifndef MISSL_BASELINES_NMTR_H_
#define MISSL_BASELINES_NMTR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "nn/embedding.h"
#include "nn/gru.h"
#include "nn/linear.h"

namespace missl::baselines {

struct NmtrConfig {
  int64_t dim = 48;
  float dropout = 0.1f;
  uint64_t seed = 17;
};

class Nmtr : public core::SeqRecModel {
 public:
  Nmtr(int32_t num_items, int32_t num_behaviors, int64_t max_len,
       const NmtrConfig& config);

  std::string Name() const override { return "NMTR"; }
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

 private:
  /// Per-behavior cascaded user vectors; element b is the representation
  /// used to predict under channel b (cumulative over heads 0..b).
  std::vector<Tensor> CascadedUsers(const data::Batch& batch);

  NmtrConfig config_;
  int32_t num_behaviors_;
  Rng rng_;
  nn::Embedding item_emb_;
  nn::Embedding beh_emb_;
  nn::GRU gru_;
  std::vector<std::unique_ptr<nn::Linear>> heads_;
};

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_NMTR_H_
