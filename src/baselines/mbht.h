// MBHT-lite (Yang et al., 2022): multi-behavior hypergraph-enhanced
// transformer. Shares MISSL's hypergraph + transformer encoder stack over the
// behavior-tagged merged stream, but with a single-vector readout and no
// self-supervision — isolating exactly what MISSL's multi-interest SSL adds.
#ifndef MISSL_BASELINES_MBHT_H_
#define MISSL_BASELINES_MBHT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "hypergraph/hgat.h"
#include "hypergraph/incidence.h"
#include "nn/embedding.h"
#include "nn/transformer.h"

namespace missl::baselines {

struct MbhtConfig {
  int64_t dim = 48;
  int64_t heads = 2;
  int64_t layers = 1;
  int64_t hgat_layers = 1;
  float dropout = 0.1f;
  hypergraph::HypergraphConfig hg;
  uint64_t seed = 17;
};

class Mbht : public core::SeqRecModel {
 public:
  Mbht(int32_t num_items, int32_t num_behaviors, int64_t max_len,
       const MbhtConfig& config);

  std::string Name() const override { return "MBHT"; }
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

 private:
  Tensor Encode(const data::Batch& batch);

  MbhtConfig config_;
  int32_t num_behaviors_;
  Rng rng_;
  nn::Embedding item_emb_;
  nn::Embedding beh_emb_;
  nn::Embedding pos_emb_;
  std::vector<std::unique_ptr<hypergraph::HypergraphAttentionLayer>> hgat_;
  nn::TransformerEncoder encoder_;
};

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_MBHT_H_
