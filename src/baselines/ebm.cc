#include "baselines/ebm.h"

#include "core/common.h"
#include "nn/attention.h"

namespace missl::baselines {

namespace {
nn::TransformerConfig EncoderConfig(const EbmConfig& cfg) {
  nn::TransformerConfig tc;
  tc.dim = cfg.dim;
  tc.heads = cfg.heads;
  tc.layers = cfg.layers;
  tc.ffn_hidden = 2 * cfg.dim;
  tc.dropout = cfg.dropout;
  tc.causal = true;
  return tc;
}
}  // namespace

Ebm::Ebm(int32_t num_items, int32_t num_behaviors, int64_t max_len,
         const EbmConfig& config)
    : config_(config),
      rng_(config.seed),
      item_emb_(num_items, config.dim, &rng_),
      beh_emb_(num_behaviors, config.dim, &rng_),
      pos_emb_(max_len, config.dim, &rng_),
      encoder_(EncoderConfig(config), &rng_),
      gate_(config.dim, 1, &rng_) {
  RegisterModule("item_emb", &item_emb_);
  RegisterModule("beh_emb", &beh_emb_);
  RegisterModule("pos_emb", &pos_emb_);
  RegisterModule("encoder", &encoder_);
  RegisterModule("gate", &gate_);
}

Tensor Ebm::Encode(const data::Batch& batch, Tensor* gates_out) {
  int64_t b = batch.batch_size, t = batch.max_len;
  Tensor h = core::EmbedWithPositions(item_emb_, pos_emb_, batch.merged_items,
                                      b, t);
  h = Add(h, beh_emb_.Forward(batch.merged_behaviors, {b, t}));
  h = Dropout(h, config_.dropout, training(), &rng_);
  Tensor mask = nn::KeyPaddingMask(batch.merged_items, b, t);
  h = encoder_.Forward(h, mask);
  // Soft denoising: keep-probability per position, zeroed on padding.
  Tensor g = Sigmoid(gate_.Forward(h));                         // [B, T, 1]
  Tensor valid = core::ValidMask3d(batch.merged_items, b, t);   // [B, T, 1]
  g = Mul(g, valid);
  if (gates_out != nullptr) *gates_out = g;
  // Gated mean pool + (always-kept) last position.
  Tensor gated = Mul(h, g);
  Tensor denom = AddScalar(Sum(Reshape(g, {b, t}), 1, true), 1e-6f);  // [B,1]
  Tensor pooled = Div(Sum(gated, 1, false), denom);
  return Add(pooled, core::LastPosition(h));
}

Tensor Ebm::Gates(const data::Batch& batch) {
  Tensor g;
  Encode(batch, &g);
  return g;
}

Tensor Ebm::Loss(const data::Batch& batch) {
  Tensor g;
  Tensor user = Encode(batch, &g);
  Tensor loss = CrossEntropyLoss(core::FullCatalogLogits(user, item_emb_),
                                 batch.targets);
  if (config_.lambda_gate > 0.0f) {
    // Sparsity pressure: noisy events should be gated off, so penalize the
    // average keep-probability over valid positions.
    int64_t b = batch.batch_size, t = batch.max_len;
    Tensor valid = core::ValidMask3d(batch.merged_items, b, t);
    Tensor total = AddScalar(Sum(valid), 1e-6f);
    Tensor mean_gate = Div(Sum(g), total);
    loss = Add(loss, MulScalar(mean_gate, config_.lambda_gate));
  }
  return loss;
}

Tensor Ebm::ScoreCandidates(const data::Batch& batch,
                            const std::vector<int32_t>& cand_ids,
                            int64_t num_cands) {
  Tensor user = Encode(batch, nullptr);
  return core::ScoreCandidatesSingle(user, item_emb_, cand_ids,
                                     batch.batch_size, num_cands);
}

}  // namespace missl::baselines
