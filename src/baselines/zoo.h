// Model factory: creates any model in the library by name with a shared
// budget (embedding dim, seed), so bench harnesses can sweep the whole zoo.
#ifndef MISSL_BASELINES_ZOO_H_
#define MISSL_BASELINES_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/dataset.h"

namespace missl::baselines {

/// Common knobs shared by every model created through the zoo.
struct ZooConfig {
  int64_t dim = 48;
  int64_t max_len = 50;
  uint64_t seed = 17;
  int64_t num_interests = 4;  ///< for multi-interest models
};

/// Names accepted by CreateModel, in table order: non-learned references,
/// traditional sequential, SSL / multi-interest, multi-behavior, then MISSL.
const std::vector<std::string>& ModelZooNames();

/// Creates a model by name. Statistics-based references (POP, ItemKNN) fit
/// themselves from the dataset's training-visible events; learned models
/// only read its dimensions. CHECK-fails on unknown names.
std::unique_ptr<core::SeqRecModel> CreateModel(const std::string& name,
                                               const data::Dataset& ds,
                                               const ZooConfig& config);

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_ZOO_H_
