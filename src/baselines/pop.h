// Non-learned reference models: global popularity (POP) and item-item
// co-occurrence (ItemKNN). Classic table rows that anchor the learned
// models' gains. Both are fitted from training-visible events only (every
// event strictly before each user's validation cut) to avoid label leakage.
#ifndef MISSL_BASELINES_POP_H_
#define MISSL_BASELINES_POP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/model.h"
#include "data/dataset.h"

namespace missl::baselines {

/// Ranks every candidate by its global interaction count.
class Pop : public core::SeqRecModel {
 public:
  explicit Pop(const data::Dataset& ds);

  std::string Name() const override { return "POP"; }
  /// Constant zero — POP has nothing to learn.
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

 private:
  std::vector<float> popularity_;  ///< per item, log-scaled count
};

/// Item-to-item collaborative filtering: cosine-normalized co-occurrence
/// counts within user histories; a candidate scores by its summed
/// similarity to the user's most recent items.
class ItemKnn : public core::SeqRecModel {
 public:
  /// `window`: events co-occur when within this many positions of each
  /// other; `recent`: history items used at scoring time.
  ItemKnn(const data::Dataset& ds, int64_t window = 10, int64_t recent = 10);

  std::string Name() const override { return "ItemKNN"; }
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

 private:
  float Similarity(int32_t a, int32_t b) const;

  int64_t recent_;
  std::vector<std::unordered_map<int32_t, float>> sim_;  ///< per item
};

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_POP_H_
