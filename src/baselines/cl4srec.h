// CL4SRec-style self-supervised baseline: SASRec plus a contrastive loss
// between two stochastic augmentations (crop / mask / reorder) of each
// sequence.
#ifndef MISSL_BASELINES_CL4SREC_H_
#define MISSL_BASELINES_CL4SREC_H_

#include "baselines/sasrec.h"

namespace missl::baselines {

struct Cl4SRecConfig {
  SasRecConfig base;
  float lambda_cl = 0.1f;
  float temperature = 0.5f;
  float crop_ratio = 0.6f;   ///< span kept by the crop augmentation
  float mask_ratio = 0.3f;   ///< positions dropped by the mask augmentation
  int64_t reorder_span = 4;  ///< window shuffled by the reorder augmentation
};

class Cl4SRec : public SasRec {
 public:
  Cl4SRec(int32_t num_items, int64_t max_len, const Cl4SRecConfig& config);

  std::string Name() const override { return "CL4SRec"; }
  Tensor Loss(const data::Batch& batch) override;

  /// One stochastic augmentation of a front-padded id row (public for
  /// tests). Augmentation kind is drawn uniformly from {crop, mask,
  /// reorder}.
  std::vector<int32_t> Augment(const std::vector<int32_t>& ids, int64_t b,
                               int64_t t);

 private:
  Cl4SRecConfig cl_config_;
};

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_CL4SREC_H_
