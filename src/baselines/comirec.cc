#include "baselines/comirec.h"

#include "core/common.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace missl::baselines {

ComiRec::ComiRec(int32_t num_items, int64_t max_len, const ComiRecConfig& config)
    : config_(config),
      rng_(config.seed),
      item_emb_(num_items, config.dim, &rng_),
      pos_emb_(max_len, config.dim, &rng_),
      key_proj_(config.dim, config.dim, &rng_) {
  MISSL_CHECK(config.num_interests >= 1);
  RegisterModule("item_emb", &item_emb_);
  RegisterModule("pos_emb", &pos_emb_);
  RegisterModule("key_proj", &key_proj_);
  queries_ = RegisterParameter(
      "queries", nn::XavierUniform({config.num_interests, config.dim}, &rng_));
}

Tensor ComiRec::Interests(const data::Batch& batch) {
  int64_t b = batch.batch_size, t = batch.max_len;
  Tensor h = core::EmbedWithPositions(item_emb_, pos_emb_, batch.merged_items,
                                      b, t);
  h = Dropout(h, config_.dropout, training(), &rng_);
  Tensor keys = key_proj_.Forward(h);             // [B, T, d]
  Tensor scores = Transpose(MatMul(keys, Transpose(queries_)));  // [B, K, T]
  // Mask padded positions.
  Tensor mask = Tensor::Zeros({b, 1, t});
  float* mp = mask.data();
  for (int64_t i = 0; i < b * t; ++i) {
    if (batch.merged_items[static_cast<size_t>(i)] < 0) mp[i] = -1e9f;
  }
  Tensor probs = Softmax(Add(scores, mask));
  return MatMul(probs, h);  // [B, K, d]
}

Tensor ComiRec::Loss(const data::Batch& batch) {
  Tensor interests = Interests(batch);
  Tensor v = core::SelectInterestByTarget(interests, item_emb_, batch.targets);
  return CrossEntropyLoss(core::FullCatalogLogits(v, item_emb_), batch.targets);
}

Tensor ComiRec::ScoreCandidates(const data::Batch& batch,
                                const std::vector<int32_t>& cand_ids,
                                int64_t num_cands) {
  Tensor interests = Interests(batch);
  return core::ScoreCandidatesMultiInterest(interests, item_emb_, cand_ids,
                                            batch.batch_size, num_cands);
}

}  // namespace missl::baselines
