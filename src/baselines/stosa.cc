#include "baselines/stosa.h"

#include <cmath>

#include "core/common.h"
#include "nn/attention.h"
#include "tensor/ops.h"

namespace missl::baselines {

namespace {

// Numerically-safe softplus built from primitive ops.
Tensor Softplus(const Tensor& x) {
  return Log(AddScalar(Exp(Clamp(x, -15.0f, 15.0f)), 1.0f));
}

// Pairwise squared distances between row sets: a [B, T, d], b [B, T, d]
// -> [B, T, T] with entry ||a_i - b_j||^2.
Tensor PairwiseSq(const Tensor& a, const Tensor& b) {
  Tensor an = Sum(Square(a), -1, true);          // [B, T, 1]
  Tensor bn = Transpose(Sum(Square(b), -1, true));  // [B, 1, T]
  Tensor cross = MatMul(a, Transpose(b));        // [B, T, T]
  return Sub(Add(an, bn), MulScalar(cross, 2.0f));
}

}  // namespace

Stosa::Stosa(int32_t num_items, int64_t max_len, const StosaConfig& config)
    : config_(config),
      rng_(config.seed),
      mean_emb_(num_items, config.dim, &rng_),
      std_emb_(num_items, config.dim, &rng_),
      pos_emb_(max_len, config.dim, &rng_),
      vm_(config.dim, config.dim, &rng_),
      vs_(config.dim, config.dim, &rng_),
      ln_m_(config.dim) {
  RegisterModule("mean_emb", &mean_emb_);
  RegisterModule("std_emb", &std_emb_);
  RegisterModule("pos_emb", &pos_emb_);
  RegisterModule("vm", &vm_);
  RegisterModule("vs", &vs_);
  RegisterModule("ln_m", &ln_m_);
}

void Stosa::Encode(const data::Batch& batch, Tensor* mean, Tensor* stddev) {
  int64_t b = batch.batch_size, t = batch.max_len;
  Tensor m = core::EmbedWithPositions(mean_emb_, pos_emb_, batch.merged_items,
                                      b, t);
  Tensor s_raw = std_emb_.Forward(batch.merged_items, {b, t});
  Tensor s = Softplus(s_raw);
  m = Dropout(m, config_.dropout, training(), &rng_);

  // Wasserstein self-attention: w_ij ∝ exp(-(||μi-μj||² + ||σi-σj||²)/√d).
  float scale = 1.0f / std::sqrt(static_cast<float>(config_.dim));
  Tensor dist = MulScalar(Add(PairwiseSq(m, m), PairwiseSq(s, s)), scale);
  Tensor scores = Neg(dist);
  Tensor mask = Add(nn::KeyPaddingMask(batch.merged_items, b, t),
                    nn::CausalMask(t));
  Tensor probs = Softmax(Add(scores, mask));
  Tensor m_out = ln_m_.Forward(Add(m, MatMul(probs, vm_.Forward(m))));
  Tensor s_out = Softplus(Add(s, MatMul(probs, vs_.Forward(s))));
  *mean = core::LastPosition(m_out);
  *stddev = core::LastPosition(s_out);
}

Tensor Stosa::Loss(const data::Batch& batch) {
  Tensor mu, sd;
  Encode(batch, &mu, &sd);
  // Full-catalog logits = negative W2² distance to every item distribution.
  Tensor item_mu = mean_emb_.weight();              // [V, d]
  Tensor item_sd = Softplus(std_emb_.weight());     // [V, d]
  Tensor mu_n = Sum(Square(mu), -1, true);          // [B, 1]
  Tensor it_n = Sum(Square(item_mu), -1, false);    // [V]
  Tensor dm = Sub(Add(mu_n, it_n),
                  MulScalar(MatMul(mu, Transpose(item_mu)), 2.0f));
  Tensor sd_n = Sum(Square(sd), -1, true);
  Tensor is_n = Sum(Square(item_sd), -1, false);
  Tensor dsd = Sub(Add(sd_n, is_n),
                   MulScalar(MatMul(sd, Transpose(item_sd)), 2.0f));
  Tensor logits = Neg(Add(dm, dsd));
  return CrossEntropyLoss(logits, batch.targets);
}

Tensor Stosa::ScoreCandidates(const data::Batch& batch,
                              const std::vector<int32_t>& cand_ids,
                              int64_t num_cands) {
  Tensor mu, sd;
  Encode(batch, &mu, &sd);
  int64_t b = batch.batch_size, d = config_.dim;
  Tensor cmu = mean_emb_.Forward(cand_ids, {b, num_cands});          // [B,C,d]
  Tensor csd = Softplus(std_emb_.Forward(cand_ids, {b, num_cands}));
  auto dist = [&](const Tensor& u, const Tensor& c) {
    Tensor un = Sum(Square(u), -1, true);                    // [B, 1]
    Tensor cn = Sum(Square(c), -1, false);                   // [B, C]
    Tensor cross = Reshape(
        MatMul(Reshape(u, {b, 1, d}), Transpose(c)), {b, num_cands});
    return Sub(Add(un, cn), MulScalar(cross, 2.0f));
  };
  return Neg(Add(dist(mu, cmu), dist(sd, csd)));
}

}  // namespace missl::baselines
