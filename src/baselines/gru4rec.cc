#include "baselines/gru4rec.h"

#include "core/common.h"

namespace missl::baselines {

Gru4Rec::Gru4Rec(int32_t num_items, int64_t max_len, const Gru4RecConfig& config)
    : config_(config),
      rng_(config.seed),
      item_emb_(num_items, config.dim, &rng_),
      gru_(config.dim, config.hidden, &rng_) {
  MISSL_CHECK(max_len > 0);
  MISSL_CHECK(config.hidden == config.dim)
      << "GRU4Rec scores against the item table; hidden must equal dim";
  RegisterModule("item_emb", &item_emb_);
  RegisterModule("gru", &gru_);
}

Tensor Gru4Rec::Encode(const data::Batch& batch) {
  int64_t b = batch.batch_size, t = batch.max_len;
  Tensor x = item_emb_.Forward(batch.merged_items, {b, t});
  x = Dropout(x, config_.dropout, training(), &rng_);
  Tensor last;
  gru_.Forward(x, &last);
  return last;
}

Tensor Gru4Rec::Loss(const data::Batch& batch) {
  Tensor user = Encode(batch);
  return CrossEntropyLoss(core::FullCatalogLogits(user, item_emb_),
                          batch.targets);
}

Tensor Gru4Rec::ScoreCandidates(const data::Batch& batch,
                                const std::vector<int32_t>& cand_ids,
                                int64_t num_cands) {
  Tensor user = Encode(batch);
  return core::ScoreCandidatesSingle(user, item_emb_, cand_ids,
                                     batch.batch_size, num_cands);
}

}  // namespace missl::baselines
