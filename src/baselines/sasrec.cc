#include "baselines/sasrec.h"

#include "core/common.h"
#include "nn/attention.h"

namespace missl::baselines {

namespace {
nn::TransformerConfig EncoderConfig(const SasRecConfig& cfg) {
  nn::TransformerConfig tc;
  tc.dim = cfg.dim;
  tc.heads = cfg.heads;
  tc.layers = cfg.layers;
  tc.ffn_hidden = 2 * cfg.dim;
  tc.dropout = cfg.dropout;
  tc.causal = true;
  return tc;
}
}  // namespace

SasRec::SasRec(int32_t num_items, int64_t max_len, const SasRecConfig& config)
    : config_(config),
      rng_(config.seed),
      item_emb_(num_items, config.dim, &rng_),
      pos_emb_(max_len, config.dim, &rng_),
      encoder_(EncoderConfig(config), &rng_) {
  RegisterModule("item_emb", &item_emb_);
  RegisterModule("pos_emb", &pos_emb_);
  RegisterModule("encoder", &encoder_);
}

Tensor SasRec::EncodeIds(const std::vector<int32_t>& ids, int64_t b, int64_t t) {
  Tensor h = core::EmbedWithPositions(item_emb_, pos_emb_, ids, b, t);
  h = Dropout(h, config_.dropout, training(), &rng_);
  Tensor mask = nn::KeyPaddingMask(ids, b, t);
  h = encoder_.Forward(h, mask);
  return core::LastPosition(h);
}

Tensor SasRec::Encode(const data::Batch& batch) {
  return EncodeIds(batch.merged_items, batch.batch_size, batch.max_len);
}

Tensor SasRec::Loss(const data::Batch& batch) {
  Tensor user = Encode(batch);
  return CrossEntropyLoss(core::FullCatalogLogits(user, item_emb_),
                          batch.targets);
}

Tensor SasRec::ScoreCandidates(const data::Batch& batch,
                               const std::vector<int32_t>& cand_ids,
                               int64_t num_cands) {
  Tensor user = Encode(batch);
  return core::ScoreCandidatesSingle(user, item_emb_, cand_ids,
                                     batch.batch_size, num_cands);
}

}  // namespace missl::baselines
