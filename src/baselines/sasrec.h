// SASRec (Kang & McAuley, 2018): causal self-attention over the merged
// stream, last-position readout.
#ifndef MISSL_BASELINES_SASREC_H_
#define MISSL_BASELINES_SASREC_H_

#include <string>

#include "core/model.h"
#include "nn/embedding.h"
#include "nn/transformer.h"

namespace missl::baselines {

struct SasRecConfig {
  int64_t dim = 48;
  int64_t heads = 2;
  int64_t layers = 2;
  float dropout = 0.1f;
  uint64_t seed = 17;
};

class SasRec : public core::SeqRecModel {
 public:
  SasRec(int32_t num_items, int64_t max_len, const SasRecConfig& config);

  std::string Name() const override { return "SASRec"; }
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

 protected:
  /// Final user representation [B, d] (overridable readout for variants).
  virtual Tensor Encode(const data::Batch& batch);

  /// Causal encoding of an arbitrary id sequence, last-position readout
  /// [B, d]; shared with augmentation-based variants (CL4SRec).
  Tensor EncodeIds(const std::vector<int32_t>& ids, int64_t b, int64_t t);

  SasRecConfig config_;
  Rng rng_;
  nn::Embedding item_emb_;
  nn::Embedding pos_emb_;
  nn::TransformerEncoder encoder_;
};

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_SASREC_H_
