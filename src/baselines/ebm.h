// EBM-lite (Han et al., 2024): efficient noise-decoupling for multi-behavior
// sequences. A causal transformer over the behavior-tagged stream feeds a
// learned soft-denoising gate per position; the user representation pools
// gated states, and a sparsity regularizer pressures the gates to switch
// noisy events off.
#ifndef MISSL_BASELINES_EBM_H_
#define MISSL_BASELINES_EBM_H_

#include <string>

#include "core/model.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/transformer.h"

namespace missl::baselines {

struct EbmConfig {
  int64_t dim = 48;
  int64_t heads = 2;
  int64_t layers = 1;
  float dropout = 0.1f;
  float lambda_gate = 0.05f;  ///< sparsity pressure on the denoising gates
  uint64_t seed = 17;
};

class Ebm : public core::SeqRecModel {
 public:
  Ebm(int32_t num_items, int32_t num_behaviors, int64_t max_len,
      const EbmConfig& config);

  std::string Name() const override { return "EBM"; }
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

  /// Per-position keep-gates [B, T, 1] (exposed for denoising diagnostics).
  Tensor Gates(const data::Batch& batch);

 private:
  /// Returns the user vector [B, d]; if `gates` non-null also the gates.
  Tensor Encode(const data::Batch& batch, Tensor* gates);

  EbmConfig config_;
  Rng rng_;
  nn::Embedding item_emb_;
  nn::Embedding beh_emb_;
  nn::Embedding pos_emb_;
  nn::TransformerEncoder encoder_;
  nn::Linear gate_;
};

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_EBM_H_
