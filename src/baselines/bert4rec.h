// BERT4Rec-lite (Sun et al., 2019): bidirectional transformer trained with
// masked-item (cloze) prediction. The item vocabulary is extended with one
// [MASK] token. At evaluation time the history is shifted left by one slot
// and a [MASK] is placed at the last position, whose representation scores
// candidates.
#ifndef MISSL_BASELINES_BERT4REC_H_
#define MISSL_BASELINES_BERT4REC_H_

#include <string>

#include "core/model.h"
#include "nn/embedding.h"
#include "nn/transformer.h"

namespace missl::baselines {

struct Bert4RecConfig {
  int64_t dim = 48;
  int64_t heads = 2;
  int64_t layers = 2;
  float dropout = 0.1f;
  float mask_prob = 0.3f;  ///< cloze masking rate during training
  uint64_t seed = 17;
};

class Bert4Rec : public core::SeqRecModel {
 public:
  Bert4Rec(int32_t num_items, int64_t max_len, const Bert4RecConfig& config);

  std::string Name() const override { return "BERT4Rec"; }
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

 private:
  /// Encodes an (already masked) id sequence bidirectionally: [B, T, d].
  Tensor EncodeIds(const std::vector<int32_t>& ids, int64_t b, int64_t t);

  Bert4RecConfig config_;
  int32_t num_items_;
  int32_t mask_id_;  ///< == num_items (extra embedding row)
  Rng rng_;
  nn::Embedding item_emb_;  ///< [num_items + 1, d]
  nn::Embedding pos_emb_;
  nn::TransformerEncoder encoder_;
};

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_BERT4REC_H_
