// MB-GRU: recurrent multi-behavior baseline (NMTR-flavored stand-in). A GRU
// consumes the merged stream with behavior-type embeddings added, plus an
// auxiliary multi-task term that predicts the target from the click-channel
// summary (cascading-behavior transfer).
#ifndef MISSL_BASELINES_MB_GRU_H_
#define MISSL_BASELINES_MB_GRU_H_

#include <string>

#include "core/model.h"
#include "nn/embedding.h"
#include "nn/gru.h"

namespace missl::baselines {

struct MbGruConfig {
  int64_t dim = 48;
  float dropout = 0.1f;
  float lambda_aux = 0.2f;
  uint64_t seed = 17;
};

class MbGru : public core::SeqRecModel {
 public:
  MbGru(int32_t num_items, int32_t num_behaviors, int64_t max_len,
        const MbGruConfig& config);

  std::string Name() const override { return "MB-GRU"; }
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

 private:
  Tensor Encode(const data::Batch& batch);
  /// Mean-pooled embedding of one behavior channel [B, d].
  Tensor ChannelSummary(const data::Batch& batch, int32_t behavior);

  MbGruConfig config_;
  int32_t num_behaviors_;
  Rng rng_;
  nn::Embedding item_emb_;
  nn::Embedding beh_emb_;
  nn::GRU gru_;
};

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_MB_GRU_H_
