#include "baselines/cl4srec.h"

#include <algorithm>

#include "core/common.h"
#include "core/ssl.h"

namespace missl::baselines {

Cl4SRec::Cl4SRec(int32_t num_items, int64_t max_len, const Cl4SRecConfig& config)
    : SasRec(num_items, max_len, config.base), cl_config_(config) {}

std::vector<int32_t> Cl4SRec::Augment(const std::vector<int32_t>& ids, int64_t b,
                                      int64_t t) {
  std::vector<int32_t> out(static_cast<size_t>(b * t), -1);
  for (int64_t row = 0; row < b; ++row) {
    // Collect the valid (non-pad) suffix of this row.
    std::vector<int32_t> valid;
    for (int64_t i = 0; i < t; ++i) {
      int32_t id = ids[static_cast<size_t>(row * t + i)];
      if (id >= 0) valid.push_back(id);
    }
    if (valid.size() >= 2) {
      switch (rng_.UniformInt(3)) {
        case 0: {  // crop: keep a contiguous span
          int64_t keep = std::max<int64_t>(
              1, static_cast<int64_t>(cl_config_.crop_ratio *
                                      static_cast<double>(valid.size())));
          int64_t start = static_cast<int64_t>(
              rng_.UniformInt(static_cast<uint64_t>(valid.size()) -
                              static_cast<uint64_t>(keep) + 1));
          valid = std::vector<int32_t>(valid.begin() + start,
                                       valid.begin() + start + keep);
          break;
        }
        case 1: {  // mask: drop random positions
          std::vector<int32_t> kept;
          for (int32_t id : valid) {
            if (!rng_.Bernoulli(cl_config_.mask_ratio)) kept.push_back(id);
          }
          if (!kept.empty()) valid = std::move(kept);
          break;
        }
        default: {  // reorder: shuffle a random window
          int64_t span = std::min<int64_t>(cl_config_.reorder_span,
                                           static_cast<int64_t>(valid.size()));
          int64_t start = static_cast<int64_t>(
              rng_.UniformInt(static_cast<uint64_t>(valid.size()) -
                              static_cast<uint64_t>(span) + 1));
          for (int64_t i = span; i > 1; --i) {
            int64_t j = static_cast<int64_t>(rng_.UniformInt(
                static_cast<uint64_t>(i)));
            std::swap(valid[static_cast<size_t>(start + i - 1)],
                      valid[static_cast<size_t>(start + j)]);
          }
          break;
        }
      }
    }
    // Re-pack front-padded.
    int64_t n = static_cast<int64_t>(valid.size());
    for (int64_t i = 0; i < n; ++i) {
      out[static_cast<size_t>(row * t + (t - n + i))] =
          valid[static_cast<size_t>(i)];
    }
  }
  return out;
}

Tensor Cl4SRec::Loss(const data::Batch& batch) {
  Tensor main = SasRec::Loss(batch);
  if (cl_config_.lambda_cl <= 0.0f) return main;
  int64_t b = batch.batch_size, t = batch.max_len;
  Tensor z1 = EncodeIds(Augment(batch.merged_items, b, t), b, t);
  Tensor z2 = EncodeIds(Augment(batch.merged_items, b, t), b, t);
  Tensor cl = core::InfoNce(z1, z2, cl_config_.temperature);
  return Add(main, MulScalar(cl, cl_config_.lambda_cl));
}

}  // namespace missl::baselines
