// STOSA-lite (Fan et al., 2022): stochastic self-attention. Items embed as
// Gaussians (mean + uncertainty); attention weights and candidate scores
// come from negative 2-Wasserstein distances between distributions instead
// of dot products.
#ifndef MISSL_BASELINES_STOSA_H_
#define MISSL_BASELINES_STOSA_H_

#include <string>

#include "core/model.h"
#include "nn/embedding.h"
#include "nn/layernorm.h"
#include "nn/linear.h"

namespace missl::baselines {

struct StosaConfig {
  int64_t dim = 48;
  float dropout = 0.1f;
  uint64_t seed = 17;
};

class Stosa : public core::SeqRecModel {
 public:
  Stosa(int32_t num_items, int64_t max_len, const StosaConfig& config);

  std::string Name() const override { return "STOSA"; }
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

 private:
  /// Encodes the merged stream into a user distribution: mean and
  /// (softplus-positive) std, both [B, d].
  void Encode(const data::Batch& batch, Tensor* mean, Tensor* std);

  StosaConfig config_;
  Rng rng_;
  nn::Embedding mean_emb_;
  nn::Embedding std_emb_;  ///< raw; softplus applied at use sites
  nn::Embedding pos_emb_;
  nn::Linear vm_, vs_;     ///< value projections for the two streams
  nn::LayerNormM ln_m_;
};

}  // namespace missl::baselines

#endif  // MISSL_BASELINES_STOSA_H_
