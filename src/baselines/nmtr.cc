#include "baselines/nmtr.h"

#include "core/common.h"

namespace missl::baselines {

Nmtr::Nmtr(int32_t num_items, int32_t num_behaviors, int64_t max_len,
           const NmtrConfig& config)
    : config_(config),
      num_behaviors_(num_behaviors),
      rng_(config.seed),
      item_emb_(num_items, config.dim, &rng_),
      beh_emb_(num_behaviors, config.dim, &rng_),
      gru_(config.dim, config.dim, &rng_) {
  MISSL_CHECK(max_len > 0);
  RegisterModule("item_emb", &item_emb_);
  RegisterModule("beh_emb", &beh_emb_);
  RegisterModule("gru", &gru_);
  for (int32_t b = 0; b < num_behaviors; ++b) {
    heads_.push_back(std::make_unique<nn::Linear>(config.dim, config.dim, &rng_));
    RegisterModule("head" + std::to_string(b), heads_.back().get());
  }
}

std::vector<Tensor> Nmtr::CascadedUsers(const data::Batch& batch) {
  int64_t b = batch.batch_size, t = batch.max_len;
  Tensor x = item_emb_.Forward(batch.merged_items, {b, t});
  x = Add(x, beh_emb_.Forward(batch.merged_behaviors, {b, t}));
  x = Dropout(x, config_.dropout, training(), &rng_);
  Tensor last;
  gru_.Forward(x, &last);
  // Cascade: u_b = u_{b-1} + head_b(shared); deeper channels refine the
  // shallower prediction instead of starting over.
  std::vector<Tensor> users;
  Tensor acc;
  for (int32_t beh = 0; beh < num_behaviors_; ++beh) {
    Tensor h = heads_[static_cast<size_t>(beh)]->Forward(last);
    acc = acc.defined() ? Add(acc, h) : h;
    users.push_back(acc);
  }
  return users;
}

Tensor Nmtr::Loss(const data::Batch& batch) {
  std::vector<Tensor> users = CascadedUsers(batch);
  // Multi-task: every channel predicts the target item, with weight rising
  // toward the deepest (target) channel.
  Tensor loss;
  float weight_sum = 0;
  for (int32_t beh = 0; beh < num_behaviors_; ++beh) {
    float w = static_cast<float>(beh + 1) / static_cast<float>(num_behaviors_);
    Tensor term = MulScalar(
        CrossEntropyLoss(
            core::FullCatalogLogits(users[static_cast<size_t>(beh)], item_emb_),
            batch.targets),
        w);
    loss = loss.defined() ? Add(loss, term) : term;
    weight_sum += w;
  }
  return MulScalar(loss, 1.0f / weight_sum);
}

Tensor Nmtr::ScoreCandidates(const data::Batch& batch,
                             const std::vector<int32_t>& cand_ids,
                             int64_t num_cands) {
  std::vector<Tensor> users = CascadedUsers(batch);
  return core::ScoreCandidatesSingle(users.back(), item_emb_, cand_ids,
                                     batch.batch_size, num_cands);
}

}  // namespace missl::baselines
