#include "baselines/zoo.h"

#include "baselines/bert4rec.h"
#include "baselines/cl4srec.h"
#include "baselines/comirec.h"
#include "baselines/ebm.h"
#include "baselines/gru4rec.h"
#include "baselines/mb_gru.h"
#include "baselines/mb_str.h"
#include "baselines/mbht.h"
#include "baselines/nmtr.h"
#include "baselines/pop.h"
#include "baselines/sasrec.h"
#include "baselines/stosa.h"
#include "core/missl.h"
#include "utils/check.h"

namespace missl::baselines {

const std::vector<std::string>& ModelZooNames() {
  static const std::vector<std::string> kNames = {
      "POP",     "ItemKNN",                       // non-learned references
      "GRU4Rec", "SASRec",  "BERT4Rec", "STOSA",  // traditional sequential
      "CL4SRec", "ComiRec",                       // SSL / multi-interest
      "NMTR",    "MB-GRU",  "MB-STR",   "MBHT",   // multi-behavior
      "EBM",                                      // denoising multi-behavior
      "MISSL",                                    // ours
  };
  return kNames;
}

std::unique_ptr<core::SeqRecModel> CreateModel(const std::string& name,
                                               const data::Dataset& ds,
                                               const ZooConfig& zc) {
  int32_t num_items = ds.num_items();
  int32_t num_behaviors = ds.num_behaviors();
  if (name == "POP") return std::make_unique<Pop>(ds);
  if (name == "ItemKNN") return std::make_unique<ItemKnn>(ds);
  if (name == "GRU4Rec") {
    Gru4RecConfig cfg;
    cfg.dim = zc.dim;
    cfg.hidden = zc.dim;
    cfg.seed = zc.seed;
    return std::make_unique<Gru4Rec>(num_items, zc.max_len, cfg);
  }
  if (name == "SASRec") {
    SasRecConfig cfg;
    cfg.dim = zc.dim;
    cfg.seed = zc.seed;
    return std::make_unique<SasRec>(num_items, zc.max_len, cfg);
  }
  if (name == "BERT4Rec") {
    Bert4RecConfig cfg;
    cfg.dim = zc.dim;
    cfg.seed = zc.seed;
    return std::make_unique<Bert4Rec>(num_items, zc.max_len, cfg);
  }
  if (name == "STOSA") {
    StosaConfig cfg;
    cfg.dim = zc.dim;
    cfg.seed = zc.seed;
    return std::make_unique<Stosa>(num_items, zc.max_len, cfg);
  }
  if (name == "CL4SRec") {
    Cl4SRecConfig cfg;
    cfg.base.dim = zc.dim;
    cfg.base.seed = zc.seed;
    return std::make_unique<Cl4SRec>(num_items, zc.max_len, cfg);
  }
  if (name == "ComiRec") {
    ComiRecConfig cfg;
    cfg.dim = zc.dim;
    cfg.num_interests = zc.num_interests;
    cfg.seed = zc.seed;
    return std::make_unique<ComiRec>(num_items, zc.max_len, cfg);
  }
  if (name == "NMTR") {
    NmtrConfig cfg;
    cfg.dim = zc.dim;
    cfg.seed = zc.seed;
    return std::make_unique<Nmtr>(num_items, num_behaviors, zc.max_len, cfg);
  }
  if (name == "MB-GRU") {
    MbGruConfig cfg;
    cfg.dim = zc.dim;
    cfg.seed = zc.seed;
    return std::make_unique<MbGru>(num_items, num_behaviors, zc.max_len, cfg);
  }
  if (name == "MB-STR") {
    MbStrConfig cfg;
    cfg.dim = zc.dim;
    cfg.seed = zc.seed;
    return std::make_unique<MbStr>(num_items, num_behaviors, zc.max_len, cfg);
  }
  if (name == "MBHT") {
    MbhtConfig cfg;
    cfg.dim = zc.dim;
    cfg.seed = zc.seed;
    return std::make_unique<Mbht>(num_items, num_behaviors, zc.max_len, cfg);
  }
  if (name == "EBM") {
    EbmConfig cfg;
    cfg.dim = zc.dim;
    cfg.seed = zc.seed;
    return std::make_unique<Ebm>(num_items, num_behaviors, zc.max_len, cfg);
  }
  if (name == "MISSL") {
    core::MisslConfig cfg;
    cfg.dim = zc.dim;
    cfg.num_interests = zc.num_interests;
    cfg.seed = zc.seed;
    return std::make_unique<core::MisslModel>(num_items, num_behaviors,
                                              zc.max_len, cfg);
  }
  MISSL_CHECK(false) << "unknown model name: " << name;
}

}  // namespace missl::baselines
