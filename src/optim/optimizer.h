// First-order optimizers over parameter tensors: SGD (+momentum), Adam and
// AdamW, plus global-norm gradient clipping and LR schedules.
#ifndef MISSL_OPTIM_OPTIMIZER_H_
#define MISSL_OPTIM_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace missl::optim {

/// Base optimizer interface; parameters are captured at construction.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params, float lr);
  virtual ~Optimizer() = default;

  /// Applies one update using the parameters' accumulated gradients.
  /// Parameters with no allocated gradient buffer are skipped.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  size_t num_params() const { return params_.size(); }

 protected:
  std::vector<Tensor> params_;
  float lr_;
};

/// Stochastic gradient descent with optional momentum and L2 weight decay.
class SGD : public Optimizer {
 public:
  SGD(std::vector<Tensor> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);
  void Step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba). `weight_decay` is classic L2 added to the gradient.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

 protected:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
  bool decoupled_ = false;  ///< AdamW-style decay when true
};

/// AdamW: decoupled weight decay applied directly to the parameter.
class AdamW : public Adam {
 public:
  AdamW(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
        float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.01f);
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

/// Step-decay learning-rate schedule: lr = base * gamma^(epoch / step_size).
class StepDecaySchedule {
 public:
  StepDecaySchedule(float base_lr, int64_t step_size, float gamma)
      : base_lr_(base_lr), step_size_(step_size), gamma_(gamma) {}
  float LrAt(int64_t epoch) const;

 private:
  float base_lr_;
  int64_t step_size_;
  float gamma_;
};

/// Linear warmup followed by inverse-sqrt decay (transformer-style).
class WarmupInvSqrtSchedule {
 public:
  WarmupInvSqrtSchedule(float base_lr, int64_t warmup_steps)
      : base_lr_(base_lr), warmup_(warmup_steps) {}
  float LrAt(int64_t step) const;

 private:
  float base_lr_;
  int64_t warmup_;
};

}  // namespace missl::optim

#endif  // MISSL_OPTIM_OPTIMIZER_H_
