#include "optim/optimizer.h"

#include <cmath>

#include "utils/check.h"

namespace missl::optim {

Optimizer::Optimizer(std::vector<Tensor> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  MISSL_CHECK(lr > 0.0f) << "learning rate must be positive";
  for (const auto& p : params_) {
    MISSL_CHECK(p.defined() && p.requires_grad())
        << "optimizer parameter must require grad";
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

SGD::SGD(std::vector<Tensor> params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.resize(params_.size());
}

void SGD::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.impl()->grad.data();
    int64_t n = p.numel();
    if (momentum_ > 0.0f) {
      auto& vel = velocity_[i];
      if (vel.empty()) vel.assign(static_cast<size_t>(n), 0.0f);
      for (int64_t j = 0; j < n; ++j) {
        float grad = g[j] + weight_decay_ * w[j];
        vel[static_cast<size_t>(j)] =
            momentum_ * vel[static_cast<size_t>(j)] + grad;
        w[j] -= lr_ * vel[static_cast<size_t>(j)];
      }
    } else {
      for (int64_t j = 0; j < n; ++j) {
        w[j] -= lr_ * (g[j] + weight_decay_ * w[j]);
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::Step() {
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.data();
    const float* g = p.impl()->grad.data();
    int64_t n = p.numel();
    auto& m = m_[i];
    auto& v = v_[i];
    if (m.empty()) {
      m.assign(static_cast<size_t>(n), 0.0f);
      v.assign(static_cast<size_t>(n), 0.0f);
    }
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j];
      if (!decoupled_) grad += weight_decay_ * w[j];
      size_t js = static_cast<size_t>(j);
      m[js] = beta1_ * m[js] + (1.0f - beta1_) * grad;
      v[js] = beta2_ * v[js] + (1.0f - beta2_) * grad * grad;
      float mhat = m[js] / bc1;
      float vhat = v[js] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
      if (decoupled_) w[j] -= lr_ * weight_decay_ * w[j];
    }
  }
}

AdamW::AdamW(std::vector<Tensor> params, float lr, float beta1, float beta2,
             float eps, float weight_decay)
    : Adam(std::move(params), lr, beta1, beta2, eps, weight_decay) {
  decoupled_ = true;
}

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  MISSL_CHECK(max_norm > 0.0f) << "max_norm must be positive";
  double total = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.impl()->grad.data();
    for (int64_t j = 0; j < p.numel(); ++j) total += double(g[j]) * g[j];
  }
  float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    float scale = max_norm / norm;
    for (const auto& p : params) {
      if (!p.has_grad()) continue;
      float* g = p.impl()->grad.data();
      for (int64_t j = 0; j < p.numel(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

float StepDecaySchedule::LrAt(int64_t epoch) const {
  MISSL_CHECK(epoch >= 0);
  int64_t k = step_size_ > 0 ? epoch / step_size_ : 0;
  return base_lr_ * std::pow(gamma_, static_cast<float>(k));
}

float WarmupInvSqrtSchedule::LrAt(int64_t step) const {
  MISSL_CHECK(step >= 0);
  if (warmup_ <= 0) return base_lr_;
  if (step < warmup_) {
    return base_lr_ * static_cast<float>(step + 1) / static_cast<float>(warmup_);
  }
  return base_lr_ * std::sqrt(static_cast<float>(warmup_) /
                              static_cast<float>(step + 1));
}

}  // namespace missl::optim
