#include "utils/table.h"

#include <cstdio>
#include <sstream>

#include "utils/check.h"

namespace missl {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(const std::string& s) {
  MISSL_CHECK(!rows_.empty()) << "call Row() before Cell()";
  rows_.back().push_back(s);
  return *this;
}

Table& Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return Cell(buf);
}

Table& Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return Cell(buf);
}

std::string Table::ToString() const {
  size_t ncol = header_.size();
  std::vector<size_t> width(ncol, 0);
  for (size_t c = 0; c < ncol; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < ncol; ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto rule = [&] {
    std::string s = "+";
    for (size_t c = 0; c < ncol; ++c) s += std::string(width[c] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t c = 0; c < ncol; ++c) {
      std::string v = c < cells.size() ? cells[c] : "";
      s += " " + v + std::string(width[c] - v.size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

namespace {
std::function<void(const Table&)>& PrintHook() {
  static std::function<void(const Table&)> hook;
  return hook;
}
}  // namespace

void SetTablePrintHook(std::function<void(const Table&)> hook) {
  PrintHook() = std::move(hook);
}

void Table::Print() const {
  std::fputs(ToString().c_str(), stdout);
  if (PrintHook()) PrintHook()(*this);
}

}  // namespace missl
