// Exact (O(n^2)) t-SNE for small point sets — used by the F8 interest
// visualization. Deterministic given the seed; suitable for the few hundred
// interest vectors the experiment projects.
#ifndef MISSL_UTILS_TSNE_H_
#define MISSL_UTILS_TSNE_H_

#include <cstdint>
#include <vector>

namespace missl {

struct TsneConfig {
  double perplexity = 15.0;
  int64_t iterations = 300;
  double learning_rate = 100.0;
  double early_exaggeration = 4.0;   ///< applied for the first quarter
  uint64_t seed = 42;
};

/// Embeds `n` row-major `d`-dimensional points into 2-D with exact t-SNE
/// (full pairwise affinities, gradient descent with momentum). Returns an
/// n x 2 row-major matrix.
std::vector<float> TsneProject(const std::vector<float>& data, int64_t n,
                               int64_t d, const TsneConfig& config = {});

}  // namespace missl

#endif  // MISSL_UTILS_TSNE_H_
