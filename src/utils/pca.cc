#include "utils/pca.h"

#include <cmath>

#include "utils/check.h"

namespace missl {

std::vector<float> PcaProject(const std::vector<float>& data, int64_t n,
                              int64_t d, int64_t k) {
  MISSL_CHECK(static_cast<int64_t>(data.size()) == n * d) << "PCA size mismatch";
  MISSL_CHECK(k > 0 && k <= d && n > 1) << "PCA bad dims";
  // Center.
  std::vector<double> mean(static_cast<size_t>(d), 0.0);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < d; ++j)
      mean[static_cast<size_t>(j)] += data[static_cast<size_t>(i * d + j)];
  for (auto& m : mean) m /= static_cast<double>(n);
  std::vector<double> x(static_cast<size_t>(n * d));
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < d; ++j)
      x[static_cast<size_t>(i * d + j)] =
          data[static_cast<size_t>(i * d + j)] - mean[static_cast<size_t>(j)];

  // Covariance (d x d).
  std::vector<double> cov(static_cast<size_t>(d * d), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const double* xi = x.data() + i * d;
    for (int64_t a = 0; a < d; ++a) {
      double va = xi[a];
      if (va == 0.0) continue;
      double* row = cov.data() + a * d;
      for (int64_t b = 0; b < d; ++b) row[b] += va * xi[b];
    }
  }
  for (auto& c : cov) c /= static_cast<double>(n - 1);

  // Power iteration with deflation for top-k eigenvectors.
  std::vector<std::vector<double>> comps;
  for (int64_t c = 0; c < k; ++c) {
    std::vector<double> v(static_cast<size_t>(d));
    // Deterministic pseudo-random start.
    for (int64_t j = 0; j < d; ++j)
      v[static_cast<size_t>(j)] =
          std::sin(static_cast<double>(j + 1) * (c + 1) * 0.7) + 0.01;
    double eig = 0.0;
    for (int iter = 0; iter < 200; ++iter) {
      std::vector<double> w(static_cast<size_t>(d), 0.0);
      for (int64_t a = 0; a < d; ++a) {
        const double* row = cov.data() + a * d;
        double acc = 0.0;
        for (int64_t b = 0; b < d; ++b) acc += row[b] * v[static_cast<size_t>(b)];
        w[static_cast<size_t>(a)] = acc;
      }
      double nrm = 0.0;
      for (double wv : w) nrm += wv * wv;
      nrm = std::sqrt(nrm);
      if (nrm < 1e-12) break;  // degenerate direction
      for (int64_t j = 0; j < d; ++j) w[static_cast<size_t>(j)] /= nrm;
      eig = nrm;
      v = std::move(w);
    }
    comps.push_back(v);
    // Deflate: cov -= eig * v v^T.
    for (int64_t a = 0; a < d; ++a)
      for (int64_t b = 0; b < d; ++b)
        cov[static_cast<size_t>(a * d + b)] -=
            eig * v[static_cast<size_t>(a)] * v[static_cast<size_t>(b)];
  }

  std::vector<float> out(static_cast<size_t>(n * k));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < k; ++c) {
      double acc = 0.0;
      for (int64_t j = 0; j < d; ++j)
        acc += x[static_cast<size_t>(i * d + j)] *
               comps[static_cast<size_t>(c)][static_cast<size_t>(j)];
      out[static_cast<size_t>(i * k + c)] = static_cast<float>(acc);
    }
  }
  return out;
}

}  // namespace missl
