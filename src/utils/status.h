// Minimal Status / Result types for recoverable errors on I/O and parsing
// paths. Programmer errors (shape mismatches, out-of-range indices) abort via
// MISSL_CHECK instead; following the RocksDB idiom, Status is reserved for
// conditions a caller can meaningfully handle.
#ifndef MISSL_UTILS_STATUS_H_
#define MISSL_UTILS_STATUS_H_

#include <string>
#include <utility>

namespace missl {

/// Error codes for recoverable failures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kOutOfRange,
  kInternal,
};

/// Lightweight status object carrying a code and message. Cheap to copy when
/// ok (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

}  // namespace missl

#endif  // MISSL_UTILS_STATUS_H_
