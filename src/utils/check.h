// Fatal-check macros for programmer errors (shape mismatches, bad indices).
// These fire in all build types: a recommender trainer that silently reads
// out of bounds produces garbage metrics, which is worse than an abort.
#ifndef MISSL_UTILS_CHECK_H_
#define MISSL_UTILS_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace missl::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "MISSL_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

}  // namespace missl::internal

/// Aborts with a message when `cond` is false. Usage:
///   MISSL_CHECK(a.numel() == b.numel()) << "numel mismatch";
#define MISSL_CHECK(cond)                                              \
  if (cond) {                                                          \
  } else                                                               \
    ::missl::internal::CheckStream(__FILE__, __LINE__, #cond)

namespace missl::internal {

class CheckStream {
 public:
  CheckStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckStream() { CheckFailed(file_, line_, expr_, ss_.str()); }
  template <typename T>
  CheckStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream ss_;
};

}  // namespace missl::internal

#endif  // MISSL_UTILS_CHECK_H_
