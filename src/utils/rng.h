// Deterministic, seedable random number generation. We use our own PCG64
// variant rather than std::mt19937 so that every platform and libstdc++
// version reproduces the exact same streams (std distributions are not
// portable across standard library implementations).
#ifndef MISSL_UTILS_RNG_H_
#define MISSL_UTILS_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace missl {

/// PCG64-style generator (xsl-rr output over a 128-bit LCG emulated with two
/// 64-bit halves is overkill here; we use the well-tested PCG32 core widened
/// via two draws). Deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  /// Independent sub-stream `stream` of `seed` (PCG stream selection via the
  /// increment). Same (seed, stream) -> same draws, regardless of what any
  /// other stream has consumed; used for per-user / per-task RNG so results
  /// do not depend on iteration or scheduling order.
  Rng(uint64_t seed, uint64_t stream) { Seed(seed, stream); }

  /// Re-seeds the generator; identical seeds give identical streams.
  void Seed(uint64_t seed) {
    state_ = 0;
    inc_ = (seed << 1u) | 1u;
    Next32();
    state_ += 0x9e3779b97f4a7c15ULL + seed;
    Next32();
  }

  /// Re-seeds onto sub-stream `stream` of `seed`. The stream id is bit-mixed
  /// (splitmix64 finalizer) before becoming the LCG increment so that nearby
  /// ids (0, 1, 2, ...) still select well-separated sequences.
  void Seed(uint64_t seed, uint64_t stream) {
    uint64_t z = stream + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    state_ = 0;
    inc_ = (z << 1u) | 1u;
    Next32();
    state_ += 0x9e3779b97f4a7c15ULL + seed;
    Next32();
    has_cached_ = false;
  }

  /// Uniform 32-bit draw.
  uint32_t Next32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform 64-bit draw.
  uint64_t Next64() {
    return (static_cast<uint64_t>(Next32()) << 32) | Next32();
  }

  /// Uniform integer in [0, n). Uses rejection to avoid modulo bias.
  uint64_t UniformInt(uint64_t n) {
    if (n <= 1) return 0;
    uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
    for (;;) {
      uint64_t r = Next64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform float in [0, 1).
  float Uniform() { return static_cast<float>(Next32() >> 8) * 0x1.0p-24f; }

  /// Uniform float in [lo, hi).
  float Uniform(float lo, float hi) { return lo + (hi - lo) * Uniform(); }

  /// Standard normal draw (Box–Muller; caches the second value).
  float Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    float u1, u2;
    do {
      u1 = Uniform();
    } while (u1 <= 1e-12f);
    u2 = Uniform();
    float r = std::sqrt(-2.0f * std::log(u1));
    float theta = 6.28318530717958647692f * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal draw with given mean / stddev.
  float Normal(float mean, float stddev) { return mean + stddev * Normal(); }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(float p) { return Uniform() < p; }

  /// Samples an index from unnormalized non-negative weights.
  size_t Categorical(const std::vector<float>& weights);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Geometric-ish Zipf sampler over [0, n) with exponent s (used by the
  /// synthetic data generator for popularity-skewed item draws).
  size_t Zipf(size_t n, double s);

 private:
  uint64_t state_ = 0;
  uint64_t inc_ = 0;
  float cached_ = 0.0f;
  bool has_cached_ = false;
};

}  // namespace missl

#endif  // MISSL_UTILS_RNG_H_
