#include "utils/logging.h"

#include <cstdio>

namespace missl {

namespace {
LogLevel g_level = LogLevel::kInfo;
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

void LogEmit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kWarn: tag = "W"; break;
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kOff: return;
  }
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

}  // namespace internal
}  // namespace missl
