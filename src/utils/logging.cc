#include "utils/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace missl {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

std::mutex& EmitMutex() {
  // Leaked so logging from late-exiting threads (pool workers during static
  // teardown) never touches a destroyed mutex.
  static std::mutex* mu = new std::mutex();
  return *mu;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace internal {

void LogEmit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) <
      static_cast<int>(g_level.load(std::memory_order_relaxed)))
    return;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug: tag = "D"; break;
    case LogLevel::kInfo: tag = "I"; break;
    case LogLevel::kWarn: tag = "W"; break;
    case LogLevel::kError: tag = "E"; break;
    case LogLevel::kOff: return;
  }
  std::lock_guard<std::mutex> l(EmitMutex());
  std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

}  // namespace internal
}  // namespace missl
