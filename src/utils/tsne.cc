#include "utils/tsne.h"

#include <algorithm>
#include <cmath>

#include "utils/check.h"
#include "utils/rng.h"

namespace missl {

namespace {

// Binary-searches the Gaussian bandwidth of row i so the conditional
// distribution's perplexity matches the target; writes p_{j|i} into `row`.
void FitRowAffinities(const std::vector<double>& sqdist, int64_t n, int64_t i,
                      double perplexity, double* row) {
  double lo = 1e-20, hi = 1e20, beta = 1.0;
  double target_entropy = std::log(perplexity);
  for (int iter = 0; iter < 60; ++iter) {
    double sum = 0.0, esum = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) {
        row[j] = 0.0;
        continue;
      }
      row[j] = std::exp(-beta * sqdist[static_cast<size_t>(i * n + j)]);
      sum += row[j];
    }
    if (sum < 1e-300) sum = 1e-300;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double p = row[j] / sum;
      if (p > 1e-12) esum -= p * std::log(p);
    }
    if (std::fabs(esum - target_entropy) < 1e-5) break;
    if (esum > target_entropy) {
      lo = beta;
      beta = hi > 1e19 ? beta * 2.0 : (beta + hi) / 2.0;
    } else {
      hi = beta;
      beta = lo < 1e-19 ? beta / 2.0 : (beta + lo) / 2.0;
    }
  }
  double sum = 0.0;
  for (int64_t j = 0; j < n; ++j) sum += row[j];
  if (sum < 1e-300) sum = 1e-300;
  for (int64_t j = 0; j < n; ++j) row[j] /= sum;
}

}  // namespace

std::vector<float> TsneProject(const std::vector<float>& data, int64_t n,
                               int64_t d, const TsneConfig& cfg) {
  MISSL_CHECK(static_cast<int64_t>(data.size()) == n * d) << "t-SNE size";
  MISSL_CHECK(n >= 4) << "t-SNE needs at least 4 points";
  MISSL_CHECK(cfg.perplexity > 1.0 && cfg.perplexity < static_cast<double>(n))
      << "perplexity out of range";

  // Pairwise squared distances in the input space.
  std::vector<double> sqdist(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (int64_t k = 0; k < d; ++k) {
        double diff = double(data[static_cast<size_t>(i * d + k)]) -
                      double(data[static_cast<size_t>(j * d + k)]);
        acc += diff * diff;
      }
      sqdist[static_cast<size_t>(i * n + j)] = acc;
      sqdist[static_cast<size_t>(j * n + i)] = acc;
    }
  }

  // Symmetrized joint affinities P.
  std::vector<double> p(static_cast<size_t>(n * n), 0.0);
  {
    std::vector<double> row(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      FitRowAffinities(sqdist, n, i, cfg.perplexity, row.data());
      for (int64_t j = 0; j < n; ++j) p[static_cast<size_t>(i * n + j)] = row[j];
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double v = (p[static_cast<size_t>(i * n + j)] +
                  p[static_cast<size_t>(j * n + i)]) /
                 (2.0 * static_cast<double>(n));
      v = std::max(v, 1e-12);
      p[static_cast<size_t>(i * n + j)] = v;
      p[static_cast<size_t>(j * n + i)] = v;
    }
  }

  // Init and gradient descent with momentum + per-coordinate gains (the
  // adaptive scheme of the reference implementation; plain momentum at this
  // learning rate diverges).
  Rng rng(cfg.seed);
  std::vector<double> y(static_cast<size_t>(n * 2));
  for (auto& v : y) v = rng.Normal() * 1e-2;
  std::vector<double> vel(static_cast<size_t>(n * 2), 0.0);
  std::vector<double> gain(static_cast<size_t>(n * 2), 1.0);
  std::vector<double> q(static_cast<size_t>(n * n), 0.0);

  for (int64_t iter = 0; iter < cfg.iterations; ++iter) {
    double exag = iter < cfg.iterations / 4 ? cfg.early_exaggeration : 1.0;
    // Student-t affinities Q.
    double qsum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        double dx = y[static_cast<size_t>(i * 2)] - y[static_cast<size_t>(j * 2)];
        double dy =
            y[static_cast<size_t>(i * 2 + 1)] - y[static_cast<size_t>(j * 2 + 1)];
        double t = 1.0 / (1.0 + dx * dx + dy * dy);
        q[static_cast<size_t>(i * n + j)] = t;
        q[static_cast<size_t>(j * n + i)] = t;
        qsum += 2.0 * t;
      }
    }
    if (qsum < 1e-300) qsum = 1e-300;
    // Gradients from the position snapshot (updating in place would break
    // the force antisymmetry and make the embedding drift).
    double momentum = iter < 60 ? 0.5 : 0.8;
    std::vector<double> grad(static_cast<size_t>(n * 2), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      double gx = 0.0, gy = 0.0;
      for (int64_t j = 0; j < n; ++j) {
        if (j == i) continue;
        double t = q[static_cast<size_t>(i * n + j)];
        double coeff =
            4.0 * (exag * p[static_cast<size_t>(i * n + j)] - t / qsum) * t;
        gx += coeff *
              (y[static_cast<size_t>(i * 2)] - y[static_cast<size_t>(j * 2)]);
        gy += coeff * (y[static_cast<size_t>(i * 2 + 1)] -
                       y[static_cast<size_t>(j * 2 + 1)]);
      }
      grad[static_cast<size_t>(i * 2)] = gx;
      grad[static_cast<size_t>(i * 2 + 1)] = gy;
    }
    // Jacobs gain update (as in the reference implementation): accelerate
    // while descent is consistent (gradient opposes velocity), damp on sign
    // flips; floor at 0.01.
    for (size_t idx = 0; idx < grad.size(); ++idx) {
      double g = grad[idx];
      bool same_sign = (g > 0) == (vel[idx] > 0);
      gain[idx] = same_sign ? std::max(gain[idx] * 0.8, 0.01) : gain[idx] + 0.2;
      vel[idx] = momentum * vel[idx] - cfg.learning_rate * gain[idx] * g;
      y[idx] += vel[idx];
    }
    // Re-center to keep the embedding bounded.
    double mx = 0, my = 0;
    for (int64_t i = 0; i < n; ++i) {
      mx += y[static_cast<size_t>(i * 2)];
      my += y[static_cast<size_t>(i * 2 + 1)];
    }
    mx /= n;
    my /= n;
    for (int64_t i = 0; i < n; ++i) {
      y[static_cast<size_t>(i * 2)] -= mx;
      y[static_cast<size_t>(i * 2 + 1)] -= my;
    }
  }

  std::vector<float> out(static_cast<size_t>(n * 2));
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<float>(y[i]);
  return out;
}

}  // namespace missl
