// Small principal-component analysis used by the interest-visualization
// experiment (F8) — the documented substitution for the paper's t-SNE plot
// (see DESIGN.md): we only need relative cluster separation, which PCA's
// top-2 projection already exposes, and it is deterministic.
#ifndef MISSL_UTILS_PCA_H_
#define MISSL_UTILS_PCA_H_

#include <cstdint>
#include <vector>

namespace missl {

/// Projects `n` row-major `d`-dimensional points onto their top `k`
/// principal components (power iteration with deflation on the covariance).
/// Returns an n x k row-major matrix. Deterministic.
std::vector<float> PcaProject(const std::vector<float>& data, int64_t n,
                              int64_t d, int64_t k);

}  // namespace missl

#endif  // MISSL_UTILS_PCA_H_
