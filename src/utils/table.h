// ASCII table printer used by the bench harnesses to emit paper-style tables.
#ifndef MISSL_UTILS_TABLE_H_
#define MISSL_UTILS_TABLE_H_

#include <functional>
#include <string>
#include <vector>

namespace missl {

/// Accumulates rows of string cells and renders an aligned ASCII table.
/// Numeric helpers format floats with fixed precision so metric tables line
/// up the way the paper prints them (4 decimal places).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; cells are appended with Cell()/Num().
  Table& Row();
  /// Appends a string cell to the current row.
  Table& Cell(const std::string& s);
  /// Appends a float cell formatted with `precision` decimals.
  Table& Num(double v, int precision = 4);
  /// Appends an integer cell.
  Table& Int(long long v);

  /// Renders the table (with +--+ rules) to a string.
  std::string ToString() const;
  /// Renders and prints to stdout.
  void Print() const;

  /// Number of data rows added so far.
  size_t num_rows() const { return rows_.size(); }

  /// Raw cells, for machine-readable mirroring (bench JSON output).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Observer invoked by Table::Print after rendering; the bench harness uses
/// it to mirror every printed table into a JSON results file without each
/// bench knowing about it. Pass nullptr to clear. Not thread-safe: install
/// before any table is printed (benches print from the main thread).
void SetTablePrintHook(std::function<void(const Table&)> hook);

}  // namespace missl

#endif  // MISSL_UTILS_TABLE_H_
