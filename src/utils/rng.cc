#include "utils/rng.h"

#include "utils/check.h"

namespace missl {

size_t Rng::Categorical(const std::vector<float>& weights) {
  MISSL_CHECK(!weights.empty());
  double total = 0.0;
  for (float w : weights) {
    MISSL_CHECK(w >= 0.0f) << "negative categorical weight";
    total += w;
  }
  MISSL_CHECK(total > 0.0) << "all categorical weights are zero";
  double r = static_cast<double>(Uniform()) * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double s) {
  MISSL_CHECK(n > 0);
  // Inverse-CDF on the continuous approximation, clamped to [0, n).
  // For s == 1 the CDF is log-shaped; handle separately to avoid 1/(1-s).
  double u = static_cast<double>(Uniform());
  double x;
  if (s > 0.999 && s < 1.001) {
    x = std::exp(u * std::log(static_cast<double>(n) + 1.0)) - 1.0;
  } else {
    double one_minus_s = 1.0 - s;
    double hi = std::pow(static_cast<double>(n) + 1.0, one_minus_s);
    x = std::pow(u * (hi - 1.0) + 1.0, 1.0 / one_minus_s) - 1.0;
  }
  if (x < 0.0) x = 0.0;
  size_t idx = static_cast<size_t>(x);
  if (idx >= n) idx = n - 1;
  return idx;
}

}  // namespace missl
