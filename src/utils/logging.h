// Tiny leveled logger used by the trainer and benches; writes to stderr.
// Safe to call from any thread: each statement is formatted in its own
// stream and emitted under a global mutex, so concurrent messages never
// interleave mid-line. Hot loops should still prefer metrics/tracing
// (src/obs/) over logging — a log statement costs a lock and an fprintf.
#ifndef MISSL_UTILS_LOGGING_H_
#define MISSL_UTILS_LOGGING_H_

#include <sstream>
#include <string>

namespace missl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogEmit(LogLevel level, const std::string& msg);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogEmit(level_, ss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace internal

}  // namespace missl

#define MISSL_LOG_DEBUG ::missl::internal::LogStream(::missl::LogLevel::kDebug)
#define MISSL_LOG_INFO ::missl::internal::LogStream(::missl::LogLevel::kInfo)
#define MISSL_LOG_WARN ::missl::internal::LogStream(::missl::LogLevel::kWarn)
#define MISSL_LOG_ERROR ::missl::internal::LogStream(::missl::LogLevel::kError)

#endif  // MISSL_UTILS_LOGGING_H_
