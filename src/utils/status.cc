#include "utils/status.h"

namespace missl {

std::string Status::ToString() const {
  const char* name = "UNKNOWN";
  switch (code_) {
    case StatusCode::kOk: name = "OK"; break;
    case StatusCode::kInvalidArgument: name = "INVALID_ARGUMENT"; break;
    case StatusCode::kNotFound: name = "NOT_FOUND"; break;
    case StatusCode::kIOError: name = "IO_ERROR"; break;
    case StatusCode::kCorruption: name = "CORRUPTION"; break;
    case StatusCode::kOutOfRange: name = "OUT_OF_RANGE"; break;
    case StatusCode::kInternal: name = "INTERNAL"; break;
  }
  if (msg_.empty()) return name;
  return std::string(name) + ": " + msg_;
}

}  // namespace missl
