// Per-sequence hypergraph construction. For each batch row we build a fixed
// layout of hyperedges over the sequence positions:
//   [0, num_behaviors)              behavior-channel edges (positions whose
//                                   event carries behavior b)
//   [B0, B0 + num_windows)          temporal sliding-window edges
//   [W0, W0 + max_repeat_edges)     repeated-item edges (positions sharing
//                                   one item id, largest groups first)
// The incidence is returned dense as a 0/1 tensor [B, E, T] so the
// attention convolution stays in the rank-3 op set.
#ifndef MISSL_HYPERGRAPH_INCIDENCE_H_
#define MISSL_HYPERGRAPH_INCIDENCE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace missl::hypergraph {

struct HypergraphConfig {
  bool behavior_edges = true;
  bool window_edges = true;
  int64_t window_size = 8;
  int64_t window_stride = 4;
  bool repeat_edges = true;
  int64_t max_repeat_edges = 6;
};

/// Number of hyperedges per row implied by the config for sequences of
/// length `t` with `num_behaviors` channels.
int64_t NumEdges(const HypergraphConfig& config, int64_t t, int32_t num_behaviors);

/// Fills one row's dense incidence block: `row` must point at
/// NumEdges(config, t, num_behaviors) * t floats, already zeroed; `items` /
/// `behaviors` are that row's merged-stream ids ([t], -1 pad). This is the
/// single source of truth for the edge layout, shared by BuildIncidence and
/// the planned inference executor (src/infer/), so the two paths cannot
/// drift.
void FillIncidenceRow(const int32_t* items, const int32_t* behaviors,
                      int64_t t, int32_t num_behaviors,
                      const HypergraphConfig& config, float* row);

/// Builds the dense incidence tensor [batch, E, t]. `items`/`behaviors` are
/// the merged-stream arrays from data::Batch (flattened [batch * t], -1 pad).
/// Padded positions belong to no hyperedge.
Tensor BuildIncidence(const std::vector<int32_t>& items,
                      const std::vector<int32_t>& behaviors, int64_t batch,
                      int64_t t, int32_t num_behaviors,
                      const HypergraphConfig& config);

}  // namespace missl::hypergraph

#endif  // MISSL_HYPERGRAPH_INCIDENCE_H_
