#include "hypergraph/hgat.h"

#include "nn/init.h"
#include "tensor/ops.h"

namespace missl::hypergraph {

namespace {

// Masked softmax over the last dim where `mask` is 0/1: rows whose mask is
// all-zero yield all-zero weights (not NaN).
Tensor MaskedNormalize(const Tensor& scores, const Tensor& mask) {
  // exp of clamped scores keeps the magnitudes tame; multiply by the mask to
  // zero out non-members, then normalize by the row sum (+eps).
  Tensor expd = Exp(Clamp(scores, -10.0f, 10.0f));
  Tensor masked = Mul(expd, mask);
  Tensor denom = AddScalar(Sum(masked, -1, /*keepdim=*/true), 1e-9f);
  return Div(masked, denom);
}

}  // namespace

HypergraphAttentionLayer::HypergraphAttentionLayer(int64_t dim, float dropout,
                                                   Rng* rng)
    : wa_(dim, dim, rng),
      wb_(dim, dim, rng),
      wo_(dim, dim, rng),
      ln_(dim),
      dropout_(dropout),
      rng_(rng) {
  RegisterModule("wa", &wa_);
  RegisterModule("wb", &wb_);
  RegisterModule("wo", &wo_);
  RegisterModule("ln", &ln_);
  wn_ = RegisterParameter("wn", nn::XavierUniform({dim, 1}, rng));
  we_ = RegisterParameter("we", nn::XavierUniform({dim, 1}, rng));
}

Tensor HypergraphAttentionLayer::Forward(const Tensor& x,
                                         const Tensor& incidence) const {
  MISSL_CHECK(x.dim() == 3) << "HGAT expects node features [B, T, d]";
  MISSL_CHECK(incidence.dim() == 3 && incidence.size(0) == x.size(0) &&
              incidence.size(2) == x.size(1))
      << "incidence " << ShapeToString(incidence.shape()) << " vs x "
      << ShapeToString(x.shape());
  int64_t b = x.size(0), t = x.size(1), e = incidence.size(1);

  // Node scores: [B, T, 1] -> [B, 1, T] broadcastable against [B, E, T].
  Tensor node_scores = MatMul(Tanh(wa_.Forward(x)), wn_);        // [B, T, 1]
  Tensor node_scores_row = Transpose(node_scores);               // [B, 1, T]
  Tensor edge_attn = MaskedNormalize(
      Add(node_scores_row, Tensor::Zeros({b, e, t})), incidence);  // [B, E, T]
  Tensor edge_feats = MatMul(edge_attn, x);  // [B, E, d]

  // Edge scores: [B, E, 1] -> [B, 1, E] against incidence^T [B, T, E].
  Tensor edge_scores = MatMul(Tanh(wb_.Forward(edge_feats)), we_);  // [B, E, 1]
  Tensor edge_scores_row = Transpose(edge_scores);                  // [B, 1, E]
  Tensor inc_t = Transpose(incidence);                              // [B, T, E]
  Tensor node_attn = MaskedNormalize(
      Add(edge_scores_row, Tensor::Zeros({b, t, e})), inc_t);  // [B, T, E]
  Tensor agg = MatMul(node_attn, edge_feats);                  // [B, T, d]

  agg = Dropout(wo_.Forward(agg), dropout_, training(), rng_);
  return ln_.Forward(Add(x, agg));
}

}  // namespace missl::hypergraph
