#include "hypergraph/incidence.h"

#include <algorithm>
#include <map>

#include "utils/check.h"

namespace missl::hypergraph {

namespace {

int64_t NumWindows(const HypergraphConfig& cfg, int64_t t) {
  if (!cfg.window_edges || cfg.window_size >= t) return cfg.window_edges ? 1 : 0;
  MISSL_CHECK(cfg.window_stride > 0) << "window_stride must be positive";
  return (t - cfg.window_size + cfg.window_stride - 1) / cfg.window_stride + 1;
}

}  // namespace

int64_t NumEdges(const HypergraphConfig& cfg, int64_t t, int32_t num_behaviors) {
  int64_t e = 0;
  if (cfg.behavior_edges) e += num_behaviors;
  e += NumWindows(cfg, t);
  if (cfg.repeat_edges) e += cfg.max_repeat_edges;
  return e;
}

void FillIncidenceRow(const int32_t* it, const int32_t* bh, int64_t t,
                      int32_t num_behaviors, const HypergraphConfig& cfg,
                      float* pr) {
  int64_t e = NumEdges(cfg, t, num_behaviors);
  int64_t n_windows = NumWindows(cfg, t);
  int64_t edge = 0;

  if (cfg.behavior_edges) {
    for (int32_t b = 0; b < num_behaviors; ++b, ++edge) {
      for (int64_t i = 0; i < t; ++i) {
        if (it[i] >= 0 && bh[i] == b) pr[edge * t + i] = 1.0f;
      }
    }
  }

  for (int64_t w = 0; w < n_windows; ++w, ++edge) {
    int64_t start = std::min(w * cfg.window_stride,
                             std::max<int64_t>(0, t - cfg.window_size));
    int64_t stop = std::min(t, start + cfg.window_size);
    for (int64_t i = start; i < stop; ++i) {
      if (it[i] >= 0) pr[edge * t + i] = 1.0f;
    }
  }

  if (cfg.repeat_edges) {
    // Group valid positions by item id; emit the largest groups (>= 2
    // occurrences) as hyperedges, deterministically ordered.
    std::map<int32_t, std::vector<int64_t>> groups;
    for (int64_t i = 0; i < t; ++i) {
      if (it[i] >= 0) groups[it[i]].push_back(i);
    }
    std::vector<std::pair<int32_t, const std::vector<int64_t>*>> repeated;
    for (const auto& [item, positions] : groups) {
      if (positions.size() >= 2) repeated.emplace_back(item, &positions);
    }
    std::sort(repeated.begin(), repeated.end(),
              [](const auto& a, const auto& b) {
                if (a.second->size() != b.second->size())
                  return a.second->size() > b.second->size();
                return a.first < b.first;
              });
    for (int64_t r = 0; r < cfg.max_repeat_edges; ++r, ++edge) {
      if (r >= static_cast<int64_t>(repeated.size())) continue;
      for (int64_t i : *repeated[static_cast<size_t>(r)].second) {
        pr[edge * t + i] = 1.0f;
      }
    }
  }
  MISSL_CHECK(edge == e) << "edge layout mismatch: " << edge << " vs " << e;
}

Tensor BuildIncidence(const std::vector<int32_t>& items,
                      const std::vector<int32_t>& behaviors, int64_t batch,
                      int64_t t, int32_t num_behaviors,
                      const HypergraphConfig& cfg) {
  MISSL_CHECK(static_cast<int64_t>(items.size()) == batch * t)
      << "items size mismatch";
  MISSL_CHECK(behaviors.size() == items.size()) << "behaviors size mismatch";
  int64_t e = NumEdges(cfg, t, num_behaviors);
  MISSL_CHECK(e > 0) << "hypergraph config yields zero edges";
  Tensor inc = Tensor::Zeros({batch, e, t});
  float* p = inc.data();

  for (int64_t row = 0; row < batch; ++row) {
    FillIncidenceRow(items.data() + row * t, behaviors.data() + row * t, t,
                     num_behaviors, cfg, p + row * e * t);
  }
  return inc;
}

}  // namespace missl::hypergraph
