// Hypergraph attention convolution: node -> hyperedge attention pooling
// followed by hyperedge -> node attention aggregation, with residual + LN.
// This is the set-level encoder MISSL alternates with the order-level
// transformer (see DESIGN.md §Model reconstruction).
#ifndef MISSL_HYPERGRAPH_HGAT_H_
#define MISSL_HYPERGRAPH_HGAT_H_

#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace missl::hypergraph {

/// One hypergraph attention layer.
///
/// Given node features X [B, T, d] and incidence M [B, E, T]:
///   node scores  s = w_n · tanh(X W_a)            [B, T]
///   edge pooling A_e = softmax over members of e  (masked by M)
///   edge feats   H_e = A_e X                      [B, E, d]
///   edge scores  q = w_e · tanh(H_e W_b)          [B, E]
///   node gather  A_n = softmax over edges owning the node (masked by Mᵀ)
///   out          LN(X + (A_n H_e) W_o)
class HypergraphAttentionLayer : public nn::Module {
 public:
  HypergraphAttentionLayer(int64_t dim, float dropout, Rng* rng);

  /// x: [B, T, d]; incidence: [B, E, T] with 0/1 entries. Positions in no
  /// edge (and edges with no member) contribute nothing.
  Tensor Forward(const Tensor& x, const Tensor& incidence) const;

 private:
  nn::Linear wa_, wb_, wo_;
  Tensor wn_;  ///< [d, 1] node-score context
  Tensor we_;  ///< [d, 1] edge-score context
  nn::LayerNormM ln_;
  float dropout_;
  Rng* rng_;
};

}  // namespace missl::hypergraph

#endif  // MISSL_HYPERGRAPH_HGAT_H_
