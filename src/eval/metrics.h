// Ranking metrics for leave-one-out evaluation.
#ifndef MISSL_EVAL_METRICS_H_
#define MISSL_EVAL_METRICS_H_

#include <cstdint>

namespace missl::eval {

/// Hit rate at K: 1 if the 0-based rank is inside the top K.
double HitRate(int64_t rank, int64_t k);

/// NDCG at K for a single relevant item: 1/log2(rank+2) inside top K else 0.
double Ndcg(int64_t rank, int64_t k);

/// Reciprocal rank: 1/(rank+1).
double ReciprocalRank(int64_t rank);

/// Accumulator for the standard metric set (K in {5, 10, 20} plus MRR).
struct MetricAccumulator {
  double hr5 = 0, hr10 = 0, hr20 = 0;
  double ndcg5 = 0, ndcg10 = 0, ndcg20 = 0;
  double mrr = 0;
  int64_t count = 0;

  /// Adds one ranked test case.
  void Add(int64_t rank);
  /// Adds another (un-finalized) accumulator's sums into this one. The
  /// parallel evaluator computes one accumulator per user batch and merges
  /// them in batch order, so the totals do not depend on the thread count.
  void Merge(const MetricAccumulator& other);
  /// Divides all sums by count (no-op when count == 0).
  void Finalize();
};

}  // namespace missl::eval

#endif  // MISSL_EVAL_METRICS_H_
