#include "eval/metrics.h"

#include <cmath>

#include "utils/check.h"

namespace missl::eval {

double HitRate(int64_t rank, int64_t k) {
  MISSL_CHECK(rank >= 0 && k > 0);
  return rank < k ? 1.0 : 0.0;
}

double Ndcg(int64_t rank, int64_t k) {
  MISSL_CHECK(rank >= 0 && k > 0);
  if (rank >= k) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
}

double ReciprocalRank(int64_t rank) {
  MISSL_CHECK(rank >= 0);
  return 1.0 / static_cast<double>(rank + 1);
}

void MetricAccumulator::Add(int64_t rank) {
  hr5 += HitRate(rank, 5);
  hr10 += HitRate(rank, 10);
  hr20 += HitRate(rank, 20);
  ndcg5 += Ndcg(rank, 5);
  ndcg10 += Ndcg(rank, 10);
  ndcg20 += Ndcg(rank, 20);
  mrr += ReciprocalRank(rank);
  ++count;
}

void MetricAccumulator::Merge(const MetricAccumulator& other) {
  hr5 += other.hr5;
  hr10 += other.hr10;
  hr20 += other.hr20;
  ndcg5 += other.ndcg5;
  ndcg10 += other.ndcg10;
  ndcg20 += other.ndcg20;
  mrr += other.mrr;
  count += other.count;
}

void MetricAccumulator::Finalize() {
  if (count == 0) return;
  double inv = 1.0 / static_cast<double>(count);
  hr5 *= inv;
  hr10 *= inv;
  hr20 *= inv;
  ndcg5 *= inv;
  ndcg10 *= inv;
  ndcg20 *= inv;
  mrr *= inv;
}

}  // namespace missl::eval
