#include "eval/evaluator.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"
#include "tensor/ops.h"
#include "utils/check.h"
#include "utils/rng.h"

namespace missl::eval {

Evaluator::Evaluator(const data::Dataset& ds, const data::SplitView& split,
                     const EvalConfig& config)
    : ds_(&ds), split_(&split), config_(config), builder_(ds, config.max_len) {
  data::NegativeSampler sampler(ds);
  test_negs_.resize(static_cast<size_t>(ds.num_users()));
  valid_negs_.resize(static_cast<size_t>(ds.num_users()));
  seen_.resize(static_cast<size_t>(ds.num_users()));
  bool pop = config.mode == CandidateMode::kPopularityNegatives;
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    int64_t tp = split.test_pos[static_cast<size_t>(u)];
    if (tp < 0) continue;
    eval_users_.push_back(u);
    seen_[static_cast<size_t>(u)] = sampler.SeenItems(u);
    if (config.mode == CandidateMode::kFullRanking) continue;
    int64_t vp = split.valid_pos[static_cast<size_t>(u)];
    const auto& events = ds.user(u).events;
    int32_t test_target = events[static_cast<size_t>(tp)].item;
    int32_t valid_target = events[static_cast<size_t>(vp)].item;
    // One independent stream per user (seed x user id), so a user's
    // candidate set never depends on which other users are eligible —
    // filtering a user out of the split must not perturb anyone else's
    // negatives (see EvalTest.NegativesInvariantToOtherUsers).
    Rng rng(config_.seed, static_cast<uint64_t>(u));
    test_negs_[static_cast<size_t>(u)] =
        pop ? sampler.SamplePopularity(u, test_target, config.num_negatives,
                                       &rng)
            : sampler.Sample(u, test_target, config.num_negatives, &rng);
    valid_negs_[static_cast<size_t>(u)] =
        pop ? sampler.SamplePopularity(u, valid_target, config.num_negatives,
                                       &rng)
            : sampler.Sample(u, valid_target, config.num_negatives, &rng);
  }
}

EvalResult Evaluator::Evaluate(core::SeqRecModel* model, bool test) const {
  return EvaluateSubset(model, eval_users_, test);
}

EvalResult Evaluator::EvaluateSubset(core::SeqRecModel* model,
                                     const std::vector<int32_t>& users,
                                     bool test) const {
  MISSL_CHECK(model != nullptr);
  obs::TraceSpan eval_span(
      "eval.evaluate", "eval",
      obs::TracingEnabled()
          ? "{\"users\":" + std::to_string(users.size()) +
                ",\"test\":" + (test ? "true" : "false") + "}"
          : std::string());
  static obs::Counter& user_counter =
      obs::MetricsRegistry::Global().GetCounter("eval.users");
  user_counter.Add(static_cast<int64_t>(users.size()));
  NoGradGuard ng;
  bool was_training = model->training();
  model->SetTraining(false);

  bool full = config_.mode == CandidateMode::kFullRanking;
  int64_t c = full ? ds_->num_items() : config_.num_negatives + 1;
  // Full ranking scores the whole catalog per user; keep batches small so
  // the [B, V, d] candidate embedding stays modest.
  int64_t batch_size = full ? std::min<int64_t>(config_.batch_size, 32)
                            : config_.batch_size;
  const auto& pos = test ? split_->test_pos : split_->valid_pos;
  const auto& negs = test ? test_negs_ : valid_negs_;

  // User batches are scored in parallel: the batch boundaries depend only
  // on batch_size, each batch's metrics land in its own accumulator, and
  // the partials merge in batch order below — so metrics are bitwise
  // identical at any thread count. The model must be re-entrant in eval
  // mode (forward passes allocate fresh tensors and, with training off,
  // never touch the model's RNG).
  int64_t num_batches =
      (static_cast<int64_t>(users.size()) + batch_size - 1) / batch_size;
  std::vector<MetricAccumulator> partials(static_cast<size_t>(num_batches));
  runtime::ParallelFor(0, num_batches, 1, [&](int64_t b0, int64_t b1) {
    obs::TraceSpan batch_span("eval.batch", "eval");
    for (int64_t bi = b0; bi < b1; ++bi) {
      size_t start = static_cast<size_t>(bi * batch_size);
      size_t end =
          std::min(users.size(), start + static_cast<size_t>(batch_size));
      std::vector<data::SplitView::TrainExample> examples;
      std::vector<int32_t> cand_ids;
      std::vector<int32_t> targets;
      for (size_t i = start; i < end; ++i) {
        int32_t u = users[i];
        int64_t p = pos[static_cast<size_t>(u)];
        MISSL_CHECK(p >= 0) << "user " << u << " not eligible for evaluation";
        examples.push_back({u, p});
        const auto& events = ds_->user(u).events;
        int32_t target = events[static_cast<size_t>(p)].item;
        targets.push_back(target);
        if (full) {
          for (int32_t item = 0; item < ds_->num_items(); ++item) {
            cand_ids.push_back(item);
          }
        } else {
          cand_ids.push_back(target);  // index 0 = target
          const auto& n = negs[static_cast<size_t>(u)];
          cand_ids.insert(cand_ids.end(), n.begin(), n.end());
        }
      }
      data::Batch batch = builder_.Build(examples);
      Tensor scores = model->ScoreCandidates(batch, cand_ids, c);
      MISSL_CHECK(scores.dim() == 2 && scores.size(0) == batch.batch_size &&
                  scores.size(1) == c)
          << "ScoreCandidates returned " << ShapeToString(scores.shape());
      const float* s = scores.data();
      MetricAccumulator& acc = partials[static_cast<size_t>(bi)];
      for (int64_t row = 0; row < batch.batch_size; ++row) {
        const float* rs = s + row * c;
        int64_t rank = 0;
        if (full) {
          int32_t target = targets[static_cast<size_t>(row)];
          float target_score = rs[target];
          const auto& seen = seen_[static_cast<size_t>(
              users[start + static_cast<size_t>(row)])];
          for (int32_t j = 0; j < ds_->num_items(); ++j) {
            if (j == target) continue;
            // Standard protocol: seen items are removed from the candidate
            // pool before ranking.
            if (std::binary_search(seen.begin(), seen.end(), j)) continue;
            if (rs[j] > target_score) ++rank;
          }
        } else {
          float target_score = rs[0];
          for (int64_t j = 1; j < c; ++j) {
            if (rs[j] > target_score) ++rank;
          }
        }
        acc.Add(rank);
      }
    }
  });
  MetricAccumulator acc;
  for (const MetricAccumulator& p : partials) acc.Merge(p);
  acc.Finalize();
  model->SetTraining(was_training);

  EvalResult r;
  r.hr5 = acc.hr5;
  r.hr10 = acc.hr10;
  r.hr20 = acc.hr20;
  r.ndcg5 = acc.ndcg5;
  r.ndcg10 = acc.ndcg10;
  r.ndcg20 = acc.ndcg20;
  r.mrr = acc.mrr;
  r.num_users = acc.count;
  return r;
}

}  // namespace missl::eval
