// Leave-one-out evaluator with the 1-positive + N-sampled-negatives
// protocol. Negatives are pre-drawn once per user from an independent
// per-user RNG stream (seed x user id), so every model is ranked against
// identical candidate lists and a user's candidates are invariant to which
// other users are eligible. Evaluation parallelizes over user batches (see
// runtime/parallel_for.h) with per-batch metric accumulators merged in
// batch order, so results are bitwise identical at any thread count.
#ifndef MISSL_EVAL_EVALUATOR_H_
#define MISSL_EVAL_EVALUATOR_H_

#include <vector>

#include "core/model.h"
#include "data/batch.h"
#include "data/dataset.h"
#include "eval/metrics.h"

namespace missl::eval {

/// How evaluation candidates are drawn.
enum class CandidateMode {
  kUniformNegatives,     ///< 1 positive + N uniformly sampled negatives
  kPopularityNegatives,  ///< negatives popularity-weighted (harder protocol)
  kFullRanking,          ///< rank against the entire catalog
};

struct EvalConfig {
  int32_t num_negatives = 99;
  int64_t batch_size = 128;
  int64_t max_len = 50;
  uint64_t seed = 20240613;
  CandidateMode mode = CandidateMode::kUniformNegatives;
};

/// Averaged metrics over evaluated users.
struct EvalResult {
  double hr5 = 0, hr10 = 0, hr20 = 0;
  double ndcg5 = 0, ndcg10 = 0, ndcg20 = 0;
  double mrr = 0;
  int64_t num_users = 0;
};

class Evaluator {
 public:
  Evaluator(const data::Dataset& ds, const data::SplitView& split,
            const EvalConfig& config);

  /// Evaluates on the test (or validation) cut of every eligible user.
  EvalResult Evaluate(core::SeqRecModel* model, bool test = true) const;

  /// Evaluates only the given users (for cold-start / bucket analyses).
  EvalResult EvaluateSubset(core::SeqRecModel* model,
                            const std::vector<int32_t>& users, bool test) const;

  /// Users eligible for evaluation.
  const std::vector<int32_t>& eval_users() const { return eval_users_; }
  const EvalConfig& config() const { return config_; }

  /// Pre-drawn candidate negatives for one user (empty in full-ranking
  /// mode or for non-eligible users); exposed for protocol tests.
  const std::vector<int32_t>& test_negatives(int32_t u) const {
    return test_negs_[static_cast<size_t>(u)];
  }
  const std::vector<int32_t>& valid_negatives(int32_t u) const {
    return valid_negs_[static_cast<size_t>(u)];
  }

 private:
  const data::Dataset* ds_;
  const data::SplitView* split_;
  EvalConfig config_;
  /// Build() is state-free while train negatives stay disabled (they always
  /// are here), which is what makes concurrent per-batch Build calls safe.
  mutable data::BatchBuilder builder_;
  std::vector<int32_t> eval_users_;
  /// Pre-drawn negatives: per user, num_negatives ids for test and valid
  /// (unused in full-ranking mode).
  std::vector<std::vector<int32_t>> test_negs_;
  std::vector<std::vector<int32_t>> valid_negs_;
  /// Per-user seen-item sets (full-ranking mode excludes these from ranks).
  std::vector<std::vector<int32_t>> seen_;
};

}  // namespace missl::eval

#endif  // MISSL_EVAL_EVALUATOR_H_
