// A deliberately simple thread pool for deterministic data parallelism.
// There is no work stealing and no dynamic chunk claiming: a job is a fixed
// number of chunks, and chunk c is executed by participant (c mod P) — the
// caller is participant 0, pool workers are participants 1..P-1. Which
// thread runs a chunk therefore never depends on timing, and because every
// kernel built on top writes disjoint outputs per chunk (see
// docs/RUNTIME.md), results are bitwise identical at any thread count.
//
// Most code should not use this class directly; use ParallelFor from
// runtime/parallel_for.h.
#ifndef MISSL_RUNTIME_THREAD_POOL_H_
#define MISSL_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace missl::runtime {

class ThreadPool {
 public:
  ThreadPool() = default;
  /// Joins all workers. Any job must have completed before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Executes fn(c) for every chunk c in [0, nchunks) across `participants`
  /// threads (the caller plus participants-1 workers, spawned on demand).
  /// Blocks until every chunk has run. Jobs are serialized: concurrent Run
  /// calls from different threads queue behind one mutex. `fn` must be safe
  /// to invoke concurrently from several threads on distinct chunks.
  void Run(int64_t nchunks, int participants,
           const std::function<void(int64_t)>& fn);

  /// Pre-spawns enough workers for a `participants`-thread job so the first
  /// job after startup does not pay thread-creation latency. Used by the
  /// serving path (src/serve/), where the first request's tail latency
  /// matters. Safe to call concurrently with running jobs; never shrinks.
  void Prewarm(int participants);

  /// Workers currently alive (grows on demand, never shrinks).
  int num_workers() const;

  /// Process-wide pool shared by all ParallelFor call sites.
  static ThreadPool& Global();

 private:
  void WorkerLoop(int worker_index, uint64_t initial_gen);
  /// Spawns workers until at least `n` exist. Caller must hold job_mu_.
  void EnsureWorkers(int n);

  /// Serializes whole jobs (one Run at a time).
  std::mutex job_mu_;

  /// Guards the per-job state below.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait here for a new job
  std::condition_variable done_cv_;  ///< the caller waits here for completion
  std::vector<std::thread> workers_;
  const std::function<void(int64_t)>* fn_ = nullptr;
  int64_t nchunks_ = 0;
  int participants_ = 0;
  uint64_t gen_ = 0;     ///< job generation counter (workers detect new jobs)
  int remaining_ = 0;    ///< participating workers that have not finished
  int64_t publish_ns_ = 0;  ///< when the current job was posted (metrics only)
  bool shutdown_ = false;
};

}  // namespace missl::runtime

#endif  // MISSL_RUNTIME_THREAD_POOL_H_
