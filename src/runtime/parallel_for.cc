#include "runtime/parallel_for.h"

#include <algorithm>

#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "tensor/tensor.h"
#include "utils/check.h"

namespace missl::runtime {

namespace {

thread_local bool t_in_parallel_region = false;

}  // namespace

bool InParallelRegion() { return t_in_parallel_region; }

int64_t GrainForCost(int64_t cost_per_index) {
  if (cost_per_index < 1) cost_per_index = 1;
  int64_t grain = kMinChunkCost / cost_per_index;
  return grain < 1 ? 1 : grain;
}

int64_t GrainForChunks(int64_t range, int64_t chunks_per_thread) {
  int64_t chunks = static_cast<int64_t>(NumThreads()) * chunks_per_thread;
  if (chunks < 1) chunks = 1;
  int64_t grain = (range + chunks - 1) / chunks;
  return grain < 1 ? 1 : grain;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  int64_t range = end - begin;
  int64_t nchunks = (range + grain - 1) / grain;
  int threads = NumThreads();
  static obs::Counter& call_counter =
      obs::MetricsRegistry::Global().GetCounter("runtime.parallel_for.calls");
  static obs::Counter& serial_counter =
      obs::MetricsRegistry::Global().GetCounter("runtime.parallel_for.serial");
  call_counter.Add(1);
  if (threads <= 1 || nchunks <= 1 || t_in_parallel_region) {
    serial_counter.Add(1);
    // Serial fast path: a single call over the whole range, on this thread —
    // the exact pre-runtime code path.
    fn(begin, end);
    return;
  }
  // Pool workers run with gradient recording in whatever state the
  // dispatching thread had (so evaluation under NoGradGuard stays
  // graph-free when fanned out).
  const bool grad_mode = GradEnabled();
  const std::function<void(int64_t)> chunk_fn = [&](int64_t c) {
    bool prev_grad = internal::ExchangeGradEnabled(grad_mode);
    bool prev_region = t_in_parallel_region;
    t_in_parallel_region = true;
    int64_t b = begin + c * grain;
    int64_t e = std::min(end, b + grain);
    fn(b, e);
    t_in_parallel_region = prev_region;
    internal::ExchangeGradEnabled(prev_grad);
  };
  int participants = static_cast<int>(
      std::min<int64_t>(static_cast<int64_t>(threads), nchunks));
  ThreadPool::Global().Run(nchunks, participants, chunk_fn);
}

}  // namespace missl::runtime
