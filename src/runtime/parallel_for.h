// ParallelFor: deterministic data-parallel loops over index ranges.
//
// The contract that makes "parallel" and "deterministic" compatible here is
// that a loop body handed to ParallelFor must
//   (a) write only outputs owned by its index sub-range (disjoint writes:
//       matmul output rows, softmax rows, elementwise slots), or
//   (b) perform reductions owner-computes style: the chunk that owns an
//       output element accumulates *all* of its contributions in the same
//       order the serial loop would (embedding scatter-add partitions the
//       vocab, not the index list, so duplicate ids never race and each
//       weight row sums in input order).
// Under (a)/(b) the floating-point result is independent of the partition
// and of which thread runs which chunk, so any thread count — including the
// serial threads=1 fallback, which is the exact pre-runtime code path —
// produces bitwise-identical outputs. No atomics, no per-thread scratch
// buffers whose merge order could re-associate sums.
//
// Nested ParallelFor calls (e.g. tensor kernels invoked from a parallel
// evaluation batch) execute inline on the calling worker.
#ifndef MISSL_RUNTIME_PARALLEL_FOR_H_
#define MISSL_RUNTIME_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

#include "runtime/runtime.h"

namespace missl::runtime {

/// Invokes fn(sub_begin, sub_end) over a static partition of [begin, end)
/// into chunks of `grain` indices (the last chunk may be smaller), using up
/// to NumThreads() threads. With one thread (or one chunk, or when already
/// inside a ParallelFor body) this degenerates to a single fn(begin, end)
/// call on the current thread. Gradient mode (NoGradGuard state) of the
/// calling thread is inherited by the pool workers for the duration of the
/// job. `fn` must follow the disjoint-write / owner-computes rules above.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// True while the current thread is executing a ParallelFor body (used to
/// run nested parallel loops inline).
bool InParallelRegion();

/// Picks a grain so one chunk amounts to roughly kMinChunkCost units of
/// work, given the per-index cost in arbitrary units (e.g. flops).
int64_t GrainForCost(int64_t cost_per_index);

/// Picks a grain that splits `range` into about `chunks_per_thread` chunks
/// per available thread; used when per-index cost is unknown but chunk
/// count should stay bounded (e.g. owner-computes scatter-add, where every
/// chunk scans the full index list once).
int64_t GrainForChunks(int64_t range, int64_t chunks_per_thread = 4);

/// Work units per chunk targeted by GrainForCost. Small enough to expose
/// parallelism on the kernel shapes used here, large enough that dispatch
/// overhead stays negligible.
inline constexpr int64_t kMinChunkCost = 16384;

}  // namespace missl::runtime

#endif  // MISSL_RUNTIME_PARALLEL_FOR_H_
