#include "runtime/thread_pool.h"

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "utils/check.h"

namespace missl::runtime {

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> l(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Prewarm(int participants) {
  if (participants <= 1) return;
  // job_mu_ orders this against concurrent Run calls, exactly like the
  // EnsureWorkers call inside Run.
  std::lock_guard<std::mutex> job_lock(job_mu_);
  EnsureWorkers(participants - 1);
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> l(mu_);
  return static_cast<int>(workers_.size());
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::EnsureWorkers(int n) {
  std::lock_guard<std::mutex> l(mu_);
  while (static_cast<int>(workers_.size()) < n) {
    int index = static_cast<int>(workers_.size());
    // A freshly spawned worker must not mistake the previous job for a new
    // one, so it starts already acquainted with the current generation.
    workers_.emplace_back(
        [this, index, gen = gen_] { WorkerLoop(index, gen); });
  }
}

void ThreadPool::WorkerLoop(int worker_index, uint64_t initial_gen) {
  // Per-worker instruments, resolved once per thread (the registry lookup
  // takes a lock; Add/Observe afterwards are gated relaxed atomics).
  obs::Counter& chunk_counter = obs::MetricsRegistry::Global().GetCounter(
      "runtime.pool.worker." + std::to_string(worker_index) + ".chunks");
  obs::Histogram& queue_wait =
      obs::MetricsRegistry::Global().GetHistogram("runtime.pool.queue_wait_ns");
  uint64_t seen = initial_gen;
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    work_cv_.wait(l, [&] { return shutdown_ || gen_ != seen; });
    if (shutdown_) return;
    seen = gen_;
    int participant = worker_index + 1;  // participant 0 is the caller
    if (participant >= participants_) continue;
    const std::function<void(int64_t)>* fn = fn_;
    int64_t nchunks = nchunks_;
    int stride = participants_;
    int64_t publish_ns = publish_ns_;
    l.unlock();
    if (obs::MetricsEnabled() && publish_ns != 0) {
      queue_wait.Observe(obs::NowNanos() - publish_ns);
    }
    {
      obs::TraceSpan run_span("pool.run", "runtime");
      for (int64_t c = participant; c < nchunks; c += stride) (*fn)(c);
    }
    chunk_counter.Add((nchunks - participant + stride - 1) / stride);
    l.lock();
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::Run(int64_t nchunks, int participants,
                     const std::function<void(int64_t)>& fn) {
  MISSL_CHECK(nchunks >= 0 && participants >= 1)
      << "bad job: " << nchunks << " chunks, " << participants
      << " participants";
  if (nchunks == 0) return;
  if (participants > nchunks) participants = static_cast<int>(nchunks);
  if (participants == 1) {
    for (int64_t c = 0; c < nchunks; ++c) fn(c);
    return;
  }
  std::lock_guard<std::mutex> job_lock(job_mu_);
  std::string span_args;
  if (obs::TracingEnabled()) {
    span_args = "{\"chunks\":" + std::to_string(nchunks) +
                ",\"participants\":" + std::to_string(participants) + "}";
  }
  obs::TraceSpan job_span("pool.job", "runtime", std::move(span_args));
  static obs::Counter& job_counter =
      obs::MetricsRegistry::Global().GetCounter("runtime.pool.jobs");
  static obs::Counter& total_chunks =
      obs::MetricsRegistry::Global().GetCounter("runtime.pool.chunks");
  static obs::Counter& caller_chunks =
      obs::MetricsRegistry::Global().GetCounter("runtime.pool.caller.chunks");
  job_counter.Add(1);
  total_chunks.Add(nchunks);
  caller_chunks.Add((nchunks + participants - 1) / participants);
  EnsureWorkers(participants - 1);
  {
    std::lock_guard<std::mutex> l(mu_);
    fn_ = &fn;
    nchunks_ = nchunks;
    participants_ = participants;
    remaining_ = participants - 1;
    publish_ns_ = obs::MetricsEnabled() ? obs::NowNanos() : 0;
    ++gen_;
  }
  work_cv_.notify_all();
  for (int64_t c = 0; c < nchunks; c += participants) fn(c);
  std::unique_lock<std::mutex> l(mu_);
  done_cv_.wait(l, [&] { return remaining_ == 0; });
  fn_ = nullptr;
}

}  // namespace missl::runtime
