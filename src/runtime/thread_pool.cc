#include "runtime/thread_pool.h"

#include "utils/check.h"

namespace missl::runtime {

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> l(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> l(mu_);
  return static_cast<int>(workers_.size());
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::EnsureWorkers(int n) {
  std::lock_guard<std::mutex> l(mu_);
  while (static_cast<int>(workers_.size()) < n) {
    int index = static_cast<int>(workers_.size());
    // A freshly spawned worker must not mistake the previous job for a new
    // one, so it starts already acquainted with the current generation.
    workers_.emplace_back(
        [this, index, gen = gen_] { WorkerLoop(index, gen); });
  }
}

void ThreadPool::WorkerLoop(int worker_index, uint64_t initial_gen) {
  uint64_t seen = initial_gen;
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    work_cv_.wait(l, [&] { return shutdown_ || gen_ != seen; });
    if (shutdown_) return;
    seen = gen_;
    int participant = worker_index + 1;  // participant 0 is the caller
    if (participant >= participants_) continue;
    const std::function<void(int64_t)>* fn = fn_;
    int64_t nchunks = nchunks_;
    int stride = participants_;
    l.unlock();
    for (int64_t c = participant; c < nchunks; c += stride) (*fn)(c);
    l.lock();
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::Run(int64_t nchunks, int participants,
                     const std::function<void(int64_t)>& fn) {
  MISSL_CHECK(nchunks >= 0 && participants >= 1)
      << "bad job: " << nchunks << " chunks, " << participants
      << " participants";
  if (nchunks == 0) return;
  if (participants > nchunks) participants = static_cast<int>(nchunks);
  if (participants == 1) {
    for (int64_t c = 0; c < nchunks; ++c) fn(c);
    return;
  }
  std::lock_guard<std::mutex> job_lock(job_mu_);
  EnsureWorkers(participants - 1);
  {
    std::lock_guard<std::mutex> l(mu_);
    fn_ = &fn;
    nchunks_ = nchunks;
    participants_ = participants;
    remaining_ = participants - 1;
    ++gen_;
  }
  work_cv_.notify_all();
  for (int64_t c = 0; c < nchunks; c += participants) fn(c);
  std::unique_lock<std::mutex> l(mu_);
  done_cv_.wait(l, [&] { return remaining_ == 0; });
  fn_ = nullptr;
}

}  // namespace missl::runtime
