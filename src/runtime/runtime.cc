#include "runtime/runtime.h"

#include <cstdlib>
#include <cstring>
#include <thread>

namespace missl::runtime {

namespace {

int ResolveDefault() {
  const char* v = std::getenv("MISSL_NUM_THREADS");
  if (v == nullptr || v[0] == '\0') return 1;
  if (std::strcmp(v, "auto") == 0 || std::strcmp(v, "0") == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  int n = std::atoi(v);
  return n < 1 ? 1 : n;
}

RuntimeConfig& MutableConfig() {
  static RuntimeConfig config{ResolveDefault()};
  return config;
}

}  // namespace

const RuntimeConfig& Config() { return MutableConfig(); }

int NumThreads() { return MutableConfig().num_threads; }

void SetNumThreads(int n) {
  MutableConfig().num_threads = n < 1 ? ResolveDefault() : n;
}

ScopedNumThreads::ScopedNumThreads(int n) : prev_(NumThreads()) {
  SetNumThreads(n);
}

ScopedNumThreads::~ScopedNumThreads() { MutableConfig().num_threads = prev_; }

}  // namespace missl::runtime
