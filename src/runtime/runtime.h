// Execution-runtime configuration: how many threads the ParallelFor layer
// (runtime/parallel_for.h) may use. The default is fully serial execution,
// matching the library's historical behavior; threading is opt-in via the
// MISSL_NUM_THREADS environment variable or SetNumThreads(). All parallel
// kernels are written so results are bitwise identical at any thread count
// (see docs/RUNTIME.md for the determinism rules).
#ifndef MISSL_RUNTIME_RUNTIME_H_
#define MISSL_RUNTIME_RUNTIME_H_

namespace missl::runtime {

/// Runtime knobs. `num_threads` counts the calling thread, so 1 means
/// serial execution and N means the caller plus N-1 pool workers.
struct RuntimeConfig {
  int num_threads = 1;
};

/// Current runtime configuration. Initialized on first use from the
/// MISSL_NUM_THREADS environment variable: unset or "1" keeps serial
/// execution; "0" or "auto" selects std::thread::hardware_concurrency();
/// any other integer is used directly (clamped to >= 1).
const RuntimeConfig& Config();

/// Number of threads ParallelFor may use (always >= 1).
int NumThreads();

/// Overrides the thread count for subsequent ParallelFor calls. n <= 0
/// re-resolves the automatic default (env var / hardware concurrency).
void SetNumThreads(int n);

/// RAII thread-count override, restoring the previous value on scope exit.
/// Used by tests and benches to compare the same computation at several
/// thread counts.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n);
  ~ScopedNumThreads();
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int prev_;
};

}  // namespace missl::runtime

#endif  // MISSL_RUNTIME_RUNTIME_H_
