// Differentiable operations over Tensor. All ops build autograd graph edges
// when gradient mode is enabled (see NoGradGuard) and any input requires
// grad. Binary elementwise ops support full NumPy-style broadcasting.
#ifndef MISSL_TENSOR_OPS_H_
#define MISSL_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

/// Guards op entry points that hand raw pointers to the kernel tier
/// (tensor/simd.h): kernels assume dense row-major storage, so an impl
/// assembled by hand with a storage/shape mismatch (e.g. simulating a
/// strided/transposed view) must fail loudly here instead of reading the
/// wrong elements.
#define MISSL_CHECK_CONTIGUOUS(t)                                       \
  MISSL_CHECK((t).IsContiguous())                                       \
      << "tensor is not contiguous: storage has " << (t).numel()        \
      << " elements but shape is " << ::missl::ShapeToString((t).shape()) \
      << "; kernels require dense row-major layout"

namespace missl {

// ---- Elementwise binary (broadcasting) --------------------------------------

/// Elementwise a + b with broadcasting.
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise a - b with broadcasting.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise a * b with broadcasting.
Tensor Mul(const Tensor& a, const Tensor& b);
/// Elementwise a / b with broadcasting.
Tensor Div(const Tensor& a, const Tensor& b);

/// a + s for scalar s.
Tensor AddScalar(const Tensor& a, float s);
/// a * s for scalar s.
Tensor MulScalar(const Tensor& a, float s);
/// -a.
Tensor Neg(const Tensor& a);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }
inline Tensor operator+(const Tensor& a, float s) { return AddScalar(a, s); }
inline Tensor operator*(const Tensor& a, float s) { return MulScalar(a, s); }
inline Tensor operator-(const Tensor& a) { return Neg(a); }

// ---- Elementwise unary -------------------------------------------------------

Tensor Relu(const Tensor& a);
/// Tanh-approximation GeLU (as used by BERT-family models).
Tensor Gelu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs must be positive.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Abs(const Tensor& a);
/// Clamps to [lo, hi]; gradient is passed through inside the interval only.
Tensor Clamp(const Tensor& a, float lo, float hi);
/// Elementwise power with constant exponent.
Tensor Pow(const Tensor& a, float p);

// ---- Matrix multiplication ---------------------------------------------------

/// Matrix product. Supported shapes:
///   [m,k] x [k,n]     -> [m,n]
///   [b,m,k] x [b,k,n] -> [b,m,n]   (batched)
///   [b,m,k] x [k,n]   -> [b,m,n]   (shared right operand)
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Swaps the last two dimensions (rank 2 or 3).
Tensor Transpose(const Tensor& a);

// ---- Shape manipulation ------------------------------------------------------

/// Reshape preserving element count; one dimension may be -1 (inferred).
Tensor Reshape(const Tensor& a, Shape shape);

/// Slice [start, end) along dimension `dim` (negative dim allowed).
Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t end);

/// Concatenates tensors along `dim`; all other dims must match.
Tensor Concat(const std::vector<Tensor>& ts, int64_t dim);

/// Selects rows of a 2-D+ tensor along dim 0 by index (duplicates allowed).
Tensor IndexSelect0(const Tensor& a, const std::vector<int32_t>& idx);

/// Embedding gather: weight is [V, d]; returns prefix_shape + [d]. Index -1
/// denotes padding and yields a zero row (and receives no gradient).
/// ids.size() must equal NumElements(prefix_shape).
Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int32_t>& ids,
                       Shape prefix_shape);

// ---- Reductions ---------------------------------------------------------------

/// Sum of all elements (scalar output).
Tensor Sum(const Tensor& a);
/// Mean of all elements (scalar output).
Tensor Mean(const Tensor& a);
/// Sum along one dimension.
Tensor Sum(const Tensor& a, int64_t dim, bool keepdim);
/// Mean along one dimension.
Tensor Mean(const Tensor& a, int64_t dim, bool keepdim);
/// Max along one dimension. If `argmax` is non-null it receives the winning
/// indices (size = numel of the reduced tensor). Gradient routes to argmax.
Tensor Max(const Tensor& a, int64_t dim, bool keepdim,
           std::vector<int64_t>* argmax = nullptr);

// ---- Neural-net primitives -----------------------------------------------------

/// Softmax over the last dimension.
Tensor Softmax(const Tensor& a);
/// Log-softmax over the last dimension (numerically stable).
Tensor LogSoftmax(const Tensor& a);

/// Layer normalization over the last dimension with affine params
/// gamma/beta of shape [d].
Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

/// Inverted dropout. Identity when !training or p == 0.
Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng);

/// Mean cross-entropy between logits [B, C] and integer targets (size B).
/// Targets of -1 are ignored (contribute 0 loss); CHECKs at least one valid.
Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int32_t>& targets);

/// L2-normalizes along the last dimension: x / max(||x||, eps).
Tensor L2Normalize(const Tensor& x, float eps = 1e-8f);

}  // namespace missl

#endif  // MISSL_TENSOR_OPS_H_
