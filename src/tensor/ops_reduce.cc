#include <limits>

#include "obs/op_stats.h"
#include "tensor/ops.h"

namespace missl {

using internal::AttachGrad;
using internal::MakeResult;

namespace {

// Decomposes `shape` around `dim` into (outer, mid, inner) extents.
void SplitDims(const Shape& shape, int64_t dim, int64_t* outer, int64_t* mid,
               int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t i = 0; i < dim; ++i) *outer *= shape[static_cast<size_t>(i)];
  *mid = shape[static_cast<size_t>(dim)];
  for (size_t i = static_cast<size_t>(dim) + 1; i < shape.size(); ++i)
    *inner *= shape[i];
}

Shape ReducedShape(const Shape& shape, int64_t dim, bool keepdim) {
  Shape so;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (static_cast<int64_t>(i) == dim) {
      if (keepdim) so.push_back(1);
    } else {
      so.push_back(shape[i]);
    }
  }
  return so;
}

}  // namespace

Tensor Sum(const Tensor& a) {
  MISSL_OP_SCOPE("Sum");
  Tensor out = MakeResult({});
  const float* pa = a.data();
  double acc = 0.0;
  int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) acc += pa[i];
  out.data()[0] = static_cast<float>(acc);
  AttachGrad(&out, {a}, [a, out = TensorRef(out)]() {
    float g = out.impl()->grad[0];
    a.impl()->EnsureGrad();
    float* ga = a.impl()->grad.data();
    int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) ga[i] += g;
  });
  return out;
}

Tensor Mean(const Tensor& a) {
  MISSL_CHECK(a.numel() > 0) << "Mean of empty tensor";
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor Sum(const Tensor& a, int64_t dim, bool keepdim) {
  MISSL_OP_SCOPE("SumDim");
  int64_t r = a.dim();
  if (dim < 0) dim += r;
  MISSL_CHECK(dim >= 0 && dim < r) << "Sum dim out of range";
  int64_t outer, mid, inner;
  SplitDims(a.shape(), dim, &outer, &mid, &inner);
  Tensor out = MakeResult(ReducedShape(a.shape(), dim, keepdim));
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t m = 0; m < mid; ++m) {
      const float* src = pa + (o * mid + m) * inner;
      float* dst = po + o * inner;
      for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  AttachGrad(&out, {a}, [a, out = TensorRef(out), outer, mid, inner]() {
    const float* g = out.impl()->grad.data();
    a.impl()->EnsureGrad();
    float* ga = a.impl()->grad.data();
    for (int64_t o = 0; o < outer; ++o) {
      const float* gs = g + o * inner;
      for (int64_t m = 0; m < mid; ++m) {
        float* dst = ga + (o * mid + m) * inner;
        for (int64_t i = 0; i < inner; ++i) dst[i] += gs[i];
      }
    }
  });
  return out;
}

Tensor Mean(const Tensor& a, int64_t dim, bool keepdim) {
  int64_t r = a.dim();
  int64_t d = dim < 0 ? dim + r : dim;
  MISSL_CHECK(d >= 0 && d < r) << "Mean dim out of range";
  int64_t mid = a.size(d);
  MISSL_CHECK(mid > 0) << "Mean over empty dimension";
  return MulScalar(Sum(a, dim, keepdim), 1.0f / static_cast<float>(mid));
}

Tensor Max(const Tensor& a, int64_t dim, bool keepdim,
           std::vector<int64_t>* argmax) {
  MISSL_OP_SCOPE("Max");
  int64_t r = a.dim();
  if (dim < 0) dim += r;
  MISSL_CHECK(dim >= 0 && dim < r) << "Max dim out of range";
  int64_t outer, mid, inner;
  SplitDims(a.shape(), dim, &outer, &mid, &inner);
  MISSL_CHECK(mid > 0) << "Max over empty dimension";
  Tensor out = MakeResult(ReducedShape(a.shape(), dim, keepdim));
  const float* pa = a.data();
  float* po = out.data();
  auto arg = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(outer * inner), 0);
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t i = 0; i < inner; ++i) {
      float best = -std::numeric_limits<float>::infinity();
      int64_t bi = 0;
      for (int64_t m = 0; m < mid; ++m) {
        float v = pa[(o * mid + m) * inner + i];
        if (v > best) {
          best = v;
          bi = m;
        }
      }
      po[o * inner + i] = best;
      (*arg)[static_cast<size_t>(o * inner + i)] = bi;
    }
  }
  if (argmax != nullptr) *argmax = *arg;
  AttachGrad(&out, {a}, [a, out = TensorRef(out), arg, outer, mid, inner]() {
    const float* g = out.impl()->grad.data();
    a.impl()->EnsureGrad();
    float* ga = a.impl()->grad.data();
    for (int64_t o = 0; o < outer; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        int64_t m = (*arg)[static_cast<size_t>(o * inner + i)];
        ga[(o * mid + m) * inner + i] += g[o * inner + i];
      }
    }
  });
  return out;
}

}  // namespace missl
