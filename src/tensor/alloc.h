// Pooled, aligned tensor storage (see docs/MEMORY.md).
//
// The autograd graph is rebuilt every training step, so every op output and
// every lazily-created grad buffer used to be a fresh heap allocation —
// thousands of malloc/free round-trips per step that recur with identical
// sizes step after step. This module replaces that churn with a size-class
// caching allocator in the style of PyTorch's CUDACachingAllocator /
// tcmalloc's front cache:
//
//   Storage ──► per-thread free lists (no lock) ──► global pool (mutex)
//                                                        │ miss
//                                                        ▼
//                                          32-byte-aligned system allocation
//
//  - size classes are powers of two from 64 B to 64 MiB; larger blocks
//    bypass the cache and go straight to the system;
//  - every block is 32-byte aligned, so the AVX2 kernel tier can use aligned
//    loads/stores on tensor buffers (tensor/simd_avx2.cc checks and falls
//    back to unaligned instructions otherwise);
//  - blocks remember their origin, so flipping the mode at runtime (tests,
//    benches) never frees a block into the wrong allocator;
//  - determinism: the pool hands back recycled blocks without zeroing, but
//    Storage's only mutators (assign / copy_from) overwrite every element
//    they expose, so no computation can observe recycled bytes and results
//    stay bitwise identical between pool and system modes (the seed
//    std::vector semantics — tests/alloc_test.cc holds a 2-epoch training
//    golden to it).
//
// Mode selection: MISSL_ALLOC=pool (default) or system, resolved once on
// first allocation; SetMode/ScopedMode override it at runtime. Under ASan
// the pool is compiled out (PoolAvailable() == false) and every Storage is a
// plain aligned system allocation, so leak detection and use-after-free
// redzones keep working at full fidelity.
#ifndef MISSL_TENSOR_ALLOC_H_
#define MISSL_TENSOR_ALLOC_H_

#include <cstdint>
#include <vector>

namespace missl::alloc {

/// Block alignment guarantee, in bytes, for every Storage buffer in either
/// mode (pool classes and direct system allocations alike).
inline constexpr int64_t kAlignment = 32;

/// Allocation backends. Values are stable (telemetry/bench labels).
enum class Mode : int {
  kSystem = 0,  ///< aligned system malloc/free per allocation, no caching
  kPool = 1,    ///< size-class caching allocator (the default)
};

/// The mode allocations dispatch on. Resolved once from MISSL_ALLOC on first
/// use (thread-safe), then cached; SetMode overrides it. Always kSystem when
/// PoolAvailable() is false.
Mode ActiveMode();

/// Overrides the active mode (tests/benches). Requests for kPool degrade to
/// kSystem with a warning when the pool is unavailable (ASan builds). Safe
/// at any time: live blocks are freed to the allocator that produced them.
void SetMode(Mode m);

/// False when the pool was compiled out (address-sanitized builds, so LSan
/// and use-after-free detection see every tensor buffer individually).
bool PoolAvailable();

/// Human-readable mode name ("system", "pool").
const char* ModeName(Mode m);

/// RAII mode override restoring the previous mode on scope exit; used by
/// tests and benches to compare modes on the same computation.
class ScopedMode {
 public:
  explicit ScopedMode(Mode m);
  ~ScopedMode();
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode prev_;
};

/// Always-on allocator counters (relaxed atomics, negligible next to the
/// allocations they track — same policy as obs/memory.h). The same values
/// are mirrored to the opt-in metrics registry as the alloc.pool_hits /
/// alloc.pool_misses counters and alloc.cached_bytes / alloc.live_bytes
/// gauges.
struct AllocStats {
  int64_t pool_hits = 0;      ///< allocations served from a free list
  int64_t pool_misses = 0;    ///< pool-mode allocations that hit the system
  int64_t system_allocs = 0;  ///< aligned system allocations, either mode
  int64_t system_frees = 0;   ///< blocks returned to the system
  int64_t cached_bytes = 0;   ///< bytes parked in free lists right now
  int64_t live_bytes = 0;     ///< bytes handed out to live Storage objects
};

/// Reads all counters (each individually consistent; the snapshot is not
/// atomic across fields).
AllocStats GetAllocStats();

/// Releases every cached block in the global pool and the calling thread's
/// front cache back to the system; returns the number of bytes released.
/// Other threads' front caches are small (a few blocks per size class) and
/// drain into the global pool when those threads exit.
int64_t Trim();

/// The byte capacity a request of `bytes` is rounded up to: the next
/// power-of-two size class (minimum 64) for cacheable sizes, or the next
/// multiple of kAlignment for oversize direct allocations. Exposed for
/// tests.
int64_t RoundUpBytes(int64_t bytes);

namespace internal {
/// Allocates a 32-byte-aligned block of at least `bytes`; writes the rounded
/// capacity to *cap_bytes and the owning size class (or -1 for a direct
/// system block) to *cls. bytes must be > 0.
void* Acquire(int64_t bytes, int64_t* cap_bytes, int* cls);
/// Returns a block from Acquire. cap_bytes/cls must be the values Acquire
/// produced for it — they route the block back to its origin.
void Release(void* ptr, int64_t cap_bytes, int cls);
}  // namespace internal

}  // namespace missl::alloc

namespace missl {

/// Owning handle to one aligned float buffer from the tensor allocator; the
/// backing store of TensorImpl::data and ::grad. Mimics the slice of the
/// std::vector<float> interface the tensor core used before pooling —
/// data()/size()/empty()/operator[]/begin()/end() — so kernel and op code
/// is agnostic to the storage backend. The only mutators are assign() and
/// copy_from(), both of which overwrite every element they expose (the
/// zero-fill/full-overwrite determinism rule above); there is deliberately
/// no resize() that could surface recycled bytes.
class Storage {
 public:
  Storage() = default;
  ~Storage() { reset(); }
  Storage(Storage&& other) noexcept { MoveFrom(&other); }
  Storage& operator=(Storage&& other) noexcept {
    if (this != &other) {
      reset();
      MoveFrom(&other);
    }
    return *this;
  }
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  /// Sets the buffer to `n` copies of `value`, reusing the current block
  /// when it is large enough (like vector::assign, capacity never shrinks).
  void assign(int64_t n, float value);
  /// Sets the buffer to a copy of src[0, n).
  void copy_from(const float* src, int64_t n);
  /// Releases the block back to the allocator; size and capacity become 0.
  void reset();

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Rounded capacity of the held block (what memory accounting reports).
  int64_t capacity_bytes() const { return cap_bytes_; }

  float& operator[](int64_t i) { return ptr_[i]; }
  const float& operator[](int64_t i) const { return ptr_[i]; }
  float* begin() { return ptr_; }
  float* end() { return ptr_ + size_; }
  const float* begin() const { return ptr_; }
  const float* end() const { return ptr_ + size_; }

  /// Copy of the contents as a plain vector (tests, parameter snapshots).
  std::vector<float> ToVector() const {
    return std::vector<float>(ptr_, ptr_ + size_);
  }

 private:
  void MoveFrom(Storage* other) {
    ptr_ = other->ptr_;
    size_ = other->size_;
    cap_bytes_ = other->cap_bytes_;
    cls_ = other->cls_;
    other->ptr_ = nullptr;
    other->size_ = 0;
    other->cap_bytes_ = 0;
    other->cls_ = -1;
  }
  /// Ensures capacity for n floats, discarding current contents on growth.
  void Reserve(int64_t n);

  float* ptr_ = nullptr;
  int64_t size_ = 0;       ///< floats exposed
  int64_t cap_bytes_ = 0;  ///< rounded block capacity
  int cls_ = -1;           ///< owning size class; -1 = direct system block
};

}  // namespace missl

#endif  // MISSL_TENSOR_ALLOC_H_
