// Dense row-major float tensor with reverse-mode automatic differentiation.
//
// This is the computational substrate for the whole library: every model
// (the MISSL core and all baselines) is built on these ops. Design choices:
//  - contiguous float32 storage only (no strides/views); ops copy, which at
//    the experiment scales used here (d <= 128, seq <= 64, batch <= 256) is
//    dominated by matmul cost anyway;
//  - the autograd graph is built eagerly: each op records its parent impls
//    and a closure that pushes gradient from the output into the parents;
//  - gradient mode is a thread-local flag (see NoGradGuard); ParallelFor
//    workers inherit the dispatching thread's mode for the duration of a
//    job (see runtime/parallel_for.h).
#ifndef MISSL_TENSOR_TENSOR_H_
#define MISSL_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "tensor/alloc.h"
#include "utils/check.h"
#include "utils/rng.h"

namespace missl {

class TensorImpl;
using TensorImplPtr = std::shared_ptr<TensorImpl>;

/// Shape of a tensor; empty vector denotes a scalar (numel == 1).
using Shape = std::vector<int64_t>;

/// Returns the number of elements implied by a shape.
int64_t NumElements(const Shape& shape);

/// Renders a shape as "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

/// Backing storage + autograd bookkeeping for a tensor. Users interact with
/// the `Tensor` handle; TensorImpl is exposed only for op implementations.
/// Construction/destruction and buffer (re)allocation feed the process-wide
/// memory gauges in obs/memory.h.
class TensorImpl {
 public:
  TensorImpl();
  ~TensorImpl();
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  Shape shape;
  Storage data;  ///< pooled, 32-byte-aligned buffer (see tensor/alloc.h)
  Storage grad;  ///< lazily allocated, same numel as data
  bool requires_grad = false;

  /// Parents in the autograd graph (inputs of the op that produced this).
  std::vector<TensorImplPtr> parents;
  /// Propagates this->grad into the parents' grad buffers. Must hold no
  /// owning reference to this impl (see TensorRef) or the node would keep
  /// itself alive forever.
  std::function<void()> backward_fn;

  int64_t numel() const { return static_cast<int64_t>(data.size()); }
  /// True when the buffer is a dense row-major layout of `shape`, i.e. the
  /// storage invariant every kernel relies on before taking raw pointers.
  /// All factory/op paths maintain this; a false return means an impl was
  /// assembled by hand (e.g. simulating a strided view) and must not be fed
  /// to the SIMD kernels — see MISSL_CHECK_CONTIGUOUS in ops.
  bool IsContiguous() const { return numel() == NumElements(shape); }
  /// Allocates (zero-filled) the grad buffer if not present.
  void EnsureGrad();
  /// Adds `n` values from `g` into the grad buffer (allocating if needed).
  void AccumGrad(const float* g, int64_t n);
  /// Re-syncs this impl's contribution to the live-bytes gauge; called after
  /// (re)allocating data or grad.
  void SyncBytesAccounting();

 private:
  int64_t accounted_bytes_ = 0;  ///< bytes currently reported to obs/memory
};

/// Returns true while gradient recording is enabled on the calling thread
/// (default true; fresh threads start enabled).
bool GradEnabled();

/// RAII guard that disables autograd graph construction in its scope; used
/// by evaluation code so forward passes allocate no graph.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// Value-semantics handle to a TensorImpl. Copying a Tensor aliases the same
/// storage (like torch). A default-constructed Tensor is "undefined".
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorImplPtr impl) : impl_(std::move(impl)) {}

  // ---- Factories -----------------------------------------------------------

  /// All-zeros tensor of the given shape.
  static Tensor Zeros(Shape shape, bool requires_grad = false);
  /// All-ones tensor.
  static Tensor Ones(Shape shape, bool requires_grad = false);
  /// Tensor filled with `value`.
  static Tensor Full(Shape shape, float value, bool requires_grad = false);
  /// Tensor wrapping the given data (copied); data.size() must match shape.
  static Tensor FromData(std::vector<float> data, Shape shape,
                         bool requires_grad = false);
  /// Scalar tensor.
  static Tensor Scalar(float value, bool requires_grad = false);
  /// I.i.d. normal(0, stddev) entries.
  static Tensor Randn(Shape shape, Rng* rng, float stddev = 1.0f,
                      bool requires_grad = false);
  /// I.i.d. uniform [lo, hi) entries.
  static Tensor Rand(Shape shape, Rng* rng, float lo = 0.0f, float hi = 1.0f,
                     bool requires_grad = false);

  // ---- Introspection -------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl()->shape; }
  int64_t dim() const { return static_cast<int64_t>(impl()->shape.size()); }
  int64_t numel() const { return impl()->numel(); }
  /// Size along dimension `d`; negative d counts from the end.
  int64_t size(int64_t d) const;
  bool requires_grad() const { return impl()->requires_grad; }
  /// True when storage is dense row-major for shape() (see TensorImpl).
  bool IsContiguous() const { return impl()->IsContiguous(); }
  /// Marks this tensor as a leaf requiring gradient.
  Tensor& set_requires_grad(bool v);

  float* data() { return impl()->data.data(); }
  const float* data() const { return impl()->data.data(); }
  /// Writable pointer to the element buffer (the replacement for the old
  /// vec() accessor — pooled Storage deliberately has no resize, so writers
  /// get a pointer + numel(), never a container they could grow).
  float* mutable_data() { return impl()->data.data(); }

  /// Copy of the elements as a plain vector (snapshots, test expectations).
  std::vector<float> ToVector() const { return impl()->data.ToVector(); }
  /// Overwrites the elements from `values`; CHECKs the size matches numel().
  void CopyFrom(const std::vector<float>& values);
  /// Sets every element to `value`.
  void Fill(float value);

  /// Value of a scalar (numel()==1) tensor.
  float item() const;
  /// Element access by multi-dimensional index (slow; for tests/debug).
  float at(std::initializer_list<int64_t> idx) const;

  /// Gradient buffer as a (non-differentiable) tensor; CHECKs it exists.
  Tensor grad() const;
  /// True if a gradient buffer has been allocated.
  bool has_grad() const { return !impl()->grad.empty(); }
  /// Zeroes the gradient buffer (no-op if unallocated).
  void ZeroGrad();

  /// Runs backpropagation from this scalar tensor (numel()==1). Clears the
  /// graph references of visited nodes afterwards so memory is released.
  void Backward();

  /// Returns a copy detached from the autograd graph.
  Tensor Detach() const;
  /// Deep copy (data only, detached).
  Tensor Clone() const;

  /// Human-readable summary (shape + first few values).
  std::string ToString() const;

  TensorImplPtr impl_ptr() const { return impl_; }
  TensorImpl* impl() const {
    MISSL_CHECK(impl_ != nullptr) << "use of undefined Tensor";
    return impl_.get();
  }

 private:
  TensorImplPtr impl_;
};

/// Non-owning handle to a TensorImpl with the read-only accessors an op's
/// backward closure needs. Backward closures must capture the op's own
/// output through a TensorRef rather than a Tensor: the closure is stored
/// inside that output's impl, so an owning capture would be a shared_ptr
/// self-cycle and every grad-recording forward pass whose result is dropped
/// without Backward() would leak its graph. The ref is valid whenever the
/// closure runs, because the closure lives exactly as long as the impl it
/// points to.
class TensorRef {
 public:
  TensorRef() = default;
  explicit TensorRef(const Tensor& t) : impl_(t.impl()) {}

  TensorImpl* impl() const { return impl_; }
  const Shape& shape() const { return impl_->shape; }
  int64_t numel() const { return impl_->numel(); }
  const float* data() const { return impl_->data.data(); }

 private:
  TensorImpl* impl_ = nullptr;
};

namespace internal {
/// Sets the calling thread's gradient-mode flag and returns the previous
/// value. Used by the runtime to propagate the dispatching thread's mode
/// into pool workers; everyone else should use NoGradGuard.
bool ExchangeGradEnabled(bool enabled);

/// Creates a fresh tensor for op outputs; requires_grad is set if recording
/// is enabled and any parent requires grad, in which case `parents` and the
/// backward closure should be attached by the op.
Tensor MakeResult(Shape shape);
/// Attaches autograd metadata to `out` if grad mode is on and any parent
/// requires grad. `backward` must read out.impl()->grad and accumulate into
/// the parents; it must reference the output only through a TensorRef
/// (never an owning Tensor capture — see TensorRef). Returns true if the
/// graph edge was attached.
bool AttachGrad(Tensor* out, std::vector<Tensor> parents,
                std::function<void()> backward);
}  // namespace internal

}  // namespace missl

#endif  // MISSL_TENSOR_TENSOR_H_
