#include "tensor/broadcast.h"

namespace missl::internal {

Shape BroadcastShape(const Shape& a, const Shape& b) {
  size_t ra = a.size(), rb = b.size();
  size_t r = std::max(ra, rb);
  Shape out(r, 1);
  for (size_t i = 0; i < r; ++i) {
    int64_t da = i < ra ? a[ra - 1 - i] : 1;
    int64_t db = i < rb ? b[rb - 1 - i] : 1;
    if (da == db) {
      out[r - 1 - i] = da;
    } else if (da == 1) {
      out[r - 1 - i] = db;
    } else if (db == 1) {
      out[r - 1 - i] = da;
    } else {
      MISSL_CHECK(false) << "incompatible broadcast " << ShapeToString(a) << " vs "
                         << ShapeToString(b);
    }
  }
  return out;
}

std::vector<int64_t> BroadcastStrides(const Shape& in, const Shape& out) {
  size_t r = out.size(), ri = in.size();
  std::vector<int64_t> strides(r, 0);
  int64_t s = 1;
  for (size_t i = 0; i < ri; ++i) {
    size_t din = ri - 1 - i;   // dim index in `in`
    size_t dout = r - 1 - i;   // aligned dim index in `out`
    if (in[din] == out[dout]) {
      strides[dout] = s;
    } else {
      MISSL_CHECK(in[din] == 1) << "bad broadcast stride " << ShapeToString(in)
                                << " under " << ShapeToString(out);
      strides[dout] = 0;
    }
    s *= in[din];
  }
  return strides;
}

std::vector<float> ReduceGradTo(const float* g, const Shape& out, const Shape& in) {
  std::vector<float> r(static_cast<size_t>(NumElements(in)), 0.0f);
  if (NumElements(out) == 0) return r;
  // Iterate out elements, accumulate into the broadcast-mapped in offset.
  BroadcastIterate(out, in, in, [&](int64_t i, int64_t oin, int64_t) {
    r[static_cast<size_t>(oin)] += g[i];
  });
  return r;
}

}  // namespace missl::internal
