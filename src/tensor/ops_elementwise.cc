#include <cmath>
#include <functional>

#include "obs/op_stats.h"
#include "runtime/parallel_for.h"
#include "tensor/broadcast.h"
#include "tensor/ops.h"
#include "tensor/simd.h"

namespace missl {

using internal::AttachGrad;
using internal::BroadcastIterate;
using internal::BroadcastShape;
using internal::MakeResult;
using internal::ReduceGradTo;

namespace {

// Optional vectorized row kernels for the same-shape fast paths. When set,
// the ParallelFor chunk body hands its [i0, i1) slice to the kernel (which
// dispatches on the active SIMD tier, see tensor/simd.h) instead of running
// the scalar lambda. The kernel's scalar tier replays the lambda's exact
// per-element operation sequence, so enabling a hook never changes results —
// only which instructions produce them. Ops whose scalar backward sequence a
// vector kernel cannot replay bit-for-bit (e.g. Relu's `0.0f * g` keeping
// the sign of -0.0, Div's divide-then-multiply chain) simply leave the hook
// unset and keep the scalar loop on every tier.
using BinaryRowKernel = void (*)(const float*, const float*, float*, int64_t);
// (pa, pb, g, acc, n): accumulate d(op)/d(side) * g into acc.
using BinaryAccumKernel = void (*)(const float*, const float*, const float*,
                                   float*, int64_t);
using UnaryRowKernel = std::function<void(const float*, float*, int64_t)>;
// (pa, po, g, ga, n): accumulate d(op)/dx * g into ga.
using UnaryAccumKernel =
    std::function<void(const float*, const float*, const float*, float*,
                       int64_t)>;

// Generic broadcasting binary op. `fwd(x, y)` computes the value;
// `dfdx(x, y)` / `dfdy(x, y)` compute local partials at the element.
template <typename F, typename Dx, typename Dy>
Tensor BinaryOp(const char* name, const Tensor& a, const Tensor& b, F fwd,
                Dx dfdx, Dy dfdy, BinaryRowKernel vfwd = nullptr,
                BinaryAccumKernel vdx = nullptr,
                BinaryAccumKernel vdy = nullptr) {
  // Each public op instantiates BinaryOp with unique lambda types, so the
  // function-local static inside MISSL_OP_SCOPE is per-op, not shared.
  MISSL_OP_SCOPE(name);
  MISSL_CHECK_CONTIGUOUS(a);
  MISSL_CHECK_CONTIGUOUS(b);
  const Shape& sa = a.shape();
  const Shape& sb = b.shape();
  Shape so = BroadcastShape(sa, sb);
  Tensor out = MakeResult(so);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  if (sa == sb) {
    // Elementwise slots are independent — parallel over the flat index.
    runtime::ParallelFor(0, out.numel(), runtime::GrainForCost(1),
                         [&](int64_t i0, int64_t i1) {
      if (vfwd != nullptr) return vfwd(pa + i0, pb + i0, po + i0, i1 - i0);
      for (int64_t i = i0; i < i1; ++i) po[i] = fwd(pa[i], pb[i]);
    });
  } else {
    // The broadcast walk is a stateful iterator; it stays serial (broadcast
    // operands are small — biases, masks — so this path is never hot).
    BroadcastIterate(so, sa, sb, [&](int64_t i, int64_t ia, int64_t ib) {
      po[i] = fwd(pa[ia], pb[ib]);
    });
  }
  AttachGrad(&out, {a, b},
             [a, b, out = TensorRef(out), dfdx, dfdy, vdx, vdy]() {
    const Shape& sa = a.shape();
    const Shape& sb = b.shape();
    const Shape& so = out.shape();
    const float* g = out.impl()->grad.data();
    const float* pa = a.data();
    const float* pb = b.data();
    bool need_a = a.requires_grad();
    bool need_b = b.requires_grad();
    if (sa == sb) {
      int64_t n = out.numel();
      if (need_a) {
        a.impl()->EnsureGrad();
        float* ga = a.impl()->grad.data();
        runtime::ParallelFor(0, n, runtime::GrainForCost(2),
                             [&](int64_t i0, int64_t i1) {
          if (vdx != nullptr) {
            return vdx(pa + i0, pb + i0, g + i0, ga + i0, i1 - i0);
          }
          for (int64_t i = i0; i < i1; ++i) ga[i] += dfdx(pa[i], pb[i]) * g[i];
        });
      }
      if (need_b) {
        b.impl()->EnsureGrad();
        float* gb = b.impl()->grad.data();
        runtime::ParallelFor(0, n, runtime::GrainForCost(2),
                             [&](int64_t i0, int64_t i1) {
          if (vdy != nullptr) {
            return vdy(pa + i0, pb + i0, g + i0, gb + i0, i1 - i0);
          }
          for (int64_t i = i0; i < i1; ++i) gb[i] += dfdy(pa[i], pb[i]) * g[i];
        });
      }
      return;
    }
    int64_t n = out.numel();
    if (need_a) {
      std::vector<float> full(static_cast<size_t>(n));
      BroadcastIterate(so, sa, sb, [&](int64_t i, int64_t ia, int64_t ib) {
        full[static_cast<size_t>(i)] = dfdx(pa[ia], pb[ib]) * g[i];
      });
      std::vector<float> red = ReduceGradTo(full.data(), so, sa);
      a.impl()->AccumGrad(red.data(), static_cast<int64_t>(red.size()));
    }
    if (need_b) {
      std::vector<float> full(static_cast<size_t>(n));
      BroadcastIterate(so, sa, sb, [&](int64_t i, int64_t ia, int64_t ib) {
        full[static_cast<size_t>(i)] = dfdy(pa[ia], pb[ib]) * g[i];
      });
      std::vector<float> red = ReduceGradTo(full.data(), so, sb);
      b.impl()->AccumGrad(red.data(), static_cast<int64_t>(red.size()));
    }
  });
  return out;
}

// Generic unary op: fwd(x) value, dfd(x, y) local derivative given input x
// and output y (lets tanh/sigmoid reuse the output).
template <typename F, typename D>
Tensor UnaryOp(const char* name, const Tensor& a, F fwd, D dfd,
               UnaryRowKernel vfwd = nullptr, UnaryAccumKernel vbwd = nullptr) {
  MISSL_OP_SCOPE(name);  // per-instantiation static; see BinaryOp
  MISSL_CHECK_CONTIGUOUS(a);
  Tensor out = MakeResult(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  runtime::ParallelFor(0, a.numel(), runtime::GrainForCost(1),
                       [&](int64_t i0, int64_t i1) {
    if (vfwd) return vfwd(pa + i0, po + i0, i1 - i0);
    for (int64_t i = i0; i < i1; ++i) po[i] = fwd(pa[i]);
  });
  AttachGrad(&out, {a}, [a, out = TensorRef(out), dfd, vbwd]() {
    const float* g = out.impl()->grad.data();
    const float* pa = a.data();
    const float* po = out.data();
    a.impl()->EnsureGrad();
    float* ga = a.impl()->grad.data();
    runtime::ParallelFor(0, a.numel(), runtime::GrainForCost(2),
                         [&](int64_t i0, int64_t i1) {
      if (vbwd) return vbwd(pa + i0, po + i0, g + i0, ga + i0, i1 - i0);
      for (int64_t i = i0; i < i1; ++i) ga[i] += dfd(pa[i], po[i]) * g[i];
    });
  });
  return out;
}

}  // namespace

// The `1.0f * g` of the scalar backward lambdas and the plain `+= g` of
// AccumRow are bitwise interchangeable (multiplying by 1.0f is exact for
// every float), so Add/Sub gradients may use the accumulate kernels.
Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "Add", a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; },
      simd::AddRow,
      [](const float*, const float*, const float* g, float* acc, int64_t n) {
        simd::AccumRow(g, acc, n);
      },
      [](const float*, const float*, const float* g, float* acc, int64_t n) {
        simd::AccumRow(g, acc, n);
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "Sub", a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; },
      simd::SubRow,
      [](const float*, const float*, const float* g, float* acc, int64_t n) {
        simd::AccumRow(g, acc, n);
      },
      [](const float*, const float*, const float* g, float* acc, int64_t n) {
        simd::NegAccumRow(g, acc, n);
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "Mul", a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; },
      simd::MulRow,
      [](const float*, const float* pb, const float* g, float* acc,
         int64_t n) { simd::MulAccumRow(pb, g, acc, n); },
      [](const float* pa, const float*, const float* g, float* acc,
         int64_t n) { simd::MulAccumRow(pa, g, acc, n); });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  // Backward stays scalar on every tier: its divide-then-multiply chains
  // ((1/y)*g, (-x/(y*y))*g) are not in the kernel set.
  return BinaryOp(
      "Div", a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); }, simd::DivRow);
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      "AddScalar", a, [s](float x) { return x + s; },
      [](float, float) { return 1.0f; },
      [s](const float* pa, float* po, int64_t n) {
        simd::AddScalarRow(pa, s, po, n);
      },
      [](const float*, const float*, const float* g, float* ga, int64_t n) {
        simd::AccumRow(g, ga, n);
      });
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(
      "MulScalar", a, [s](float x) { return x * s; },
      [s](float, float) { return s; },
      [s](const float* pa, float* po, int64_t n) {
        simd::ScaleRow(pa, s, po, n);
      },
      [s](const float*, const float*, const float* g, float* ga, int64_t n) {
        simd::AxpyRow(s, g, ga, n);
      });
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor Relu(const Tensor& a) {
  // Backward stays scalar: its `0.0f * g[i]` term can be -0.0 where a masked
  // vector select would produce +0.0, and `x + (-0.0)` vs `x + (+0.0)`
  // differ bitwise when the accumulator holds -0.0.
  return UnaryOp(
      "Relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; },
      [](const float* pa, float* po, int64_t n) {
        simd::ReluRow(pa, po, n);
      });
}

Tensor Gelu(const Tensor& a) {
  // tanh approximation: 0.5 x (1 + tanh(c (x + 0.044715 x^3)))
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  return UnaryOp(
      "Gelu", a,
      [](float x) {
        float u = kC * (x + 0.044715f * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(u));
      },
      [](float x, float) {
        float u = kC * (x + 0.044715f * x * x * x);
        float t = std::tanh(u);
        float du = kC * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      "Sigmoid", a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      "Tanh", a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      "Exp", a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      "Log", a, [](float x) { return std::log(x); },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      "Sqrt", a, [](float x) { return std::sqrt(x); },
      [](float, float y) { return 0.5f / (y > 1e-12f ? y : 1e-12f); });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      "Square", a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      "Abs", a, [](float x) { return std::fabs(x); },
      [](float x, float) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  MISSL_CHECK(lo <= hi) << "Clamp with lo > hi";
  return UnaryOp(
      "Clamp", a, [lo, hi](float x) { return x < lo ? lo : (x > hi ? hi : x); },
      [lo, hi](float x, float) { return (x >= lo && x <= hi) ? 1.0f : 0.0f; });
}

Tensor Pow(const Tensor& a, float p) {
  return UnaryOp(
      "Pow", a, [p](float x) { return std::pow(x, p); },
      [p](float x, float) { return p * std::pow(x, p - 1.0f); });
}

}  // namespace missl
