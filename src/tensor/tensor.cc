#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <unordered_set>

#include "obs/memory.h"
#include "obs/trace.h"

namespace missl {

TensorImpl::TensorImpl() { obs::memory_internal::AddTensors(1); }

TensorImpl::~TensorImpl() {
  if (backward_fn) obs::memory_internal::AddAutogradNodes(-1);
  obs::memory_internal::AddBytes(-accounted_bytes_);
  obs::memory_internal::AddTensors(-1);
}

void TensorImpl::SyncBytesAccounting() {
  int64_t now = data.capacity_bytes() + grad.capacity_bytes();
  if (now != accounted_bytes_) {
    obs::memory_internal::AddBytes(now - accounted_bytes_);
    accounted_bytes_ = now;
  }
}

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    MISSL_CHECK(d >= 0) << "negative dimension in shape " << ShapeToString(shape);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream ss;
  ss << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) ss << ", ";
    ss << shape[i];
  }
  ss << "]";
  return ss.str();
}

void TensorImpl::EnsureGrad() {
  if (grad.empty()) {
    grad.assign(data.size(), 0.0f);
    SyncBytesAccounting();
  }
}

void TensorImpl::AccumGrad(const float* g, int64_t n) {
  MISSL_CHECK(n == numel()) << "gradient size mismatch: " << n << " vs " << numel();
  EnsureGrad();
  float* dst = grad.data();
  for (int64_t i = 0; i < n; ++i) dst[i] += g[i];
}

namespace {
thread_local bool t_grad_enabled = true;
}  // namespace

bool GradEnabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(t_grad_enabled) { t_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { t_grad_enabled = prev_; }

namespace internal {
bool ExchangeGradEnabled(bool enabled) {
  bool prev = t_grad_enabled;
  t_grad_enabled = enabled;
  return prev;
}
}  // namespace internal

// ---- Factories --------------------------------------------------------------

Tensor Tensor::Zeros(Shape shape, bool requires_grad) {
  return Full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::Ones(Shape shape, bool requires_grad) {
  return Full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::Full(Shape shape, float value, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->data.assign(NumElements(shape), value);
  impl->shape = std::move(shape);
  impl->requires_grad = requires_grad;
  impl->SyncBytesAccounting();
  return Tensor(std::move(impl));
}

Tensor Tensor::FromData(std::vector<float> data, Shape shape, bool requires_grad) {
  MISSL_CHECK(static_cast<int64_t>(data.size()) == NumElements(shape))
      << "data size " << data.size() << " does not match shape "
      << ShapeToString(shape);
  auto impl = std::make_shared<TensorImpl>();
  impl->data.copy_from(data.data(), static_cast<int64_t>(data.size()));
  impl->shape = std::move(shape);
  impl->requires_grad = requires_grad;
  impl->SyncBytesAccounting();
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData({value}, {}, requires_grad);
}

Tensor Tensor::Randn(Shape shape, Rng* rng, float stddev, bool requires_grad) {
  MISSL_CHECK(rng != nullptr);
  Tensor t = Zeros(std::move(shape), requires_grad);
  float* d = t.mutable_data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) d[i] = rng->Normal(0.0f, stddev);
  return t;
}

Tensor Tensor::Rand(Shape shape, Rng* rng, float lo, float hi, bool requires_grad) {
  MISSL_CHECK(rng != nullptr);
  Tensor t = Zeros(std::move(shape), requires_grad);
  float* d = t.mutable_data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) d[i] = rng->Uniform(lo, hi);
  return t;
}

// ---- Introspection ----------------------------------------------------------

int64_t Tensor::size(int64_t d) const {
  int64_t nd = dim();
  if (d < 0) d += nd;
  MISSL_CHECK(d >= 0 && d < nd) << "size(" << d << ") on " << ShapeToString(shape());
  return shape()[static_cast<size_t>(d)];
}

Tensor& Tensor::set_requires_grad(bool v) {
  impl()->requires_grad = v;
  return *this;
}

float Tensor::item() const {
  MISSL_CHECK(numel() == 1) << "item() on tensor of shape " << ShapeToString(shape());
  return impl()->data[0];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  MISSL_CHECK(static_cast<int64_t>(idx.size()) == dim())
      << "at() rank mismatch on " << ShapeToString(shape());
  int64_t off = 0;
  size_t d = 0;
  for (int64_t i : idx) {
    MISSL_CHECK(i >= 0 && i < shape()[d]) << "index " << i << " out of range in dim "
                                          << d;
    off = off * shape()[d] + i;
    ++d;
  }
  return impl()->data[static_cast<size_t>(off)];
}

Tensor Tensor::grad() const {
  MISSL_CHECK(!impl()->grad.empty()) << "grad() before any backward accumulation";
  auto out = std::make_shared<TensorImpl>();
  out->data.copy_from(impl()->grad.data(), impl()->grad.size());
  out->shape = shape();
  out->SyncBytesAccounting();
  return Tensor(std::move(out));
}

void Tensor::CopyFrom(const std::vector<float>& values) {
  MISSL_CHECK(static_cast<int64_t>(values.size()) == numel())
      << "CopyFrom size " << values.size() << " does not match "
      << ShapeToString(shape());
  impl()->data.copy_from(values.data(), static_cast<int64_t>(values.size()));
}

void Tensor::Fill(float value) {
  impl()->data.assign(numel(), value);
}

void Tensor::ZeroGrad() {
  auto& g = impl()->grad;
  std::fill(g.begin(), g.end(), 0.0f);
}

void Tensor::Backward() {
  MISSL_CHECK(numel() == 1) << "Backward() requires a scalar loss; got "
                            << ShapeToString(shape());
  obs::TraceSpan span("Tensor::Backward", "autograd");
  TensorImpl* root = impl();
  root->EnsureGrad();
  root->grad[0] += 1.0f;

  // Iterative post-order DFS to produce a topological order (children before
  // parents in the reversed result).
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(root).second) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      TensorImpl* p = f.node->parents[f.next_parent++].get();
      if (visited.insert(p).second) stack.push_back({p, 0});
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }
  // topo is post-order: parents appear before children; iterate in reverse so
  // each node's grad is complete before it propagates to its parents.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) node->backward_fn();
  }
  // Release the graph so intermediate buffers can be freed.
  for (TensorImpl* node : topo) {
    if (node->backward_fn) {
      node->backward_fn = nullptr;
      obs::memory_internal::AddAutogradNodes(-1);
    }
    node->parents.clear();
  }
}

Tensor Tensor::Detach() const {
  auto out = std::make_shared<TensorImpl>();
  out->shape = impl()->shape;
  out->data.copy_from(impl()->data.data(), impl()->data.size());
  out->requires_grad = false;
  out->SyncBytesAccounting();
  return Tensor(std::move(out));
}

Tensor Tensor::Clone() const { return Detach(); }

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream ss;
  ss << "Tensor" << ShapeToString(shape()) << " [";
  int64_t n = std::min<int64_t>(numel(), 8);
  for (int64_t i = 0; i < n; ++i) {
    if (i) ss << ", ";
    ss << impl()->data[static_cast<size_t>(i)];
  }
  if (numel() > n) ss << ", ...";
  ss << "]";
  return ss.str();
}

namespace internal {

Tensor MakeResult(Shape shape) { return Tensor::Zeros(std::move(shape), false); }

bool AttachGrad(Tensor* out, std::vector<Tensor> parents,
                std::function<void()> backward) {
  if (!GradEnabled()) return false;
  bool any = false;
  for (const auto& p : parents) {
    if (p.defined() && p.requires_grad()) {
      any = true;
      break;
    }
  }
  if (!any) return false;
  TensorImpl* o = out->impl();
  o->requires_grad = true;
  o->parents.reserve(parents.size());
  for (auto& p : parents) {
    if (p.defined()) o->parents.push_back(p.impl_ptr());
  }
  o->backward_fn = std::move(backward);
  obs::memory_internal::AddAutogradNodes(1);
  return true;
}

}  // namespace internal

}  // namespace missl
