#include <cmath>

#include "obs/op_stats.h"
#include "runtime/parallel_for.h"
#include "tensor/ops.h"
#include "tensor/simd.h"

namespace missl {

using internal::AttachGrad;
using internal::MakeResult;

namespace {

// (rows, d) view of a tensor reduced over its last dimension.
void LastDimView(const Tensor& a, int64_t* rows, int64_t* d) {
  MISSL_CHECK(a.dim() >= 1) << "op requires rank >= 1";
  *d = a.size(-1);
  *rows = a.numel() / (*d == 0 ? 1 : *d);
  MISSL_CHECK(*d > 0) << "op over empty last dimension";
}

}  // namespace

Tensor Softmax(const Tensor& a) {
  MISSL_OP_SCOPE("Softmax");
  MISSL_CHECK_CONTIGUOUS(a);
  int64_t rows, d;
  LastDimView(a, &rows, &d);
  Tensor out = MakeResult(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  // Each softmax row is computed start to finish by one chunk (disjoint
  // writes), so the partition cannot change any output bit.
  runtime::ParallelFor(0, rows, runtime::GrainForCost(4 * d),
                       [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* x = pa + r * d;
      float* y = po + r * d;
      // Max and exp-sum are ordered reductions: scalar on every tier. Only
      // the independent per-element rescale takes the vector path.
      float mx = x[0];
      for (int64_t i = 1; i < d; ++i) mx = std::max(mx, x[i]);
      float sum = 0.0f;
      for (int64_t i = 0; i < d; ++i) {
        y[i] = std::exp(x[i] - mx);
        sum += y[i];
      }
      float inv = 1.0f / sum;
      simd::ScaleRow(y, inv, y, d);
    }
  });
  AttachGrad(&out, {a}, [a, out = TensorRef(out), rows, d]() {
    const float* g = out.impl()->grad.data();
    const float* y = out.data();
    a.impl()->EnsureGrad();
    float* ga = a.impl()->grad.data();
    runtime::ParallelFor(0, rows, runtime::GrainForCost(4 * d),
                         [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* gr = g + r * d;
        const float* yr = y + r * d;
        float* gar = ga + r * d;
        float dot = 0.0f;
        for (int64_t i = 0; i < d; ++i) dot += gr[i] * yr[i];
        simd::SoftmaxGradRow(yr, gr, dot, gar, d);
      }
    });
  });
  return out;
}

Tensor LogSoftmax(const Tensor& a) {
  MISSL_OP_SCOPE("LogSoftmax");
  MISSL_CHECK_CONTIGUOUS(a);
  int64_t rows, d;
  LastDimView(a, &rows, &d);
  Tensor out = MakeResult(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  runtime::ParallelFor(0, rows, runtime::GrainForCost(4 * d),
                       [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* x = pa + r * d;
      float* y = po + r * d;
      float mx = x[0];
      for (int64_t i = 1; i < d; ++i) mx = std::max(mx, x[i]);
      float sum = 0.0f;
      for (int64_t i = 0; i < d; ++i) sum += std::exp(x[i] - mx);
      float lse = mx + std::log(sum);
      // x - lse == x + (-lse) exactly in IEEE arithmetic, so the shift can
      // use the vector add-scalar kernel.
      simd::AddScalarRow(x, -lse, y, d);
    }
  });
  AttachGrad(&out, {a}, [a, out = TensorRef(out), rows, d]() {
    const float* g = out.impl()->grad.data();
    const float* y = out.data();
    a.impl()->EnsureGrad();
    float* ga = a.impl()->grad.data();
    runtime::ParallelFor(0, rows, runtime::GrainForCost(4 * d),
                         [&](int64_t r0, int64_t r1) {
      for (int64_t r = r0; r < r1; ++r) {
        const float* gr = g + r * d;
        const float* yr = y + r * d;
        float* gar = ga + r * d;
        float gsum = 0.0f;
        for (int64_t i = 0; i < d; ++i) gsum += gr[i];
        for (int64_t i = 0; i < d; ++i) gar[i] += gr[i] - std::exp(yr[i]) * gsum;
      }
    });
  });
  return out;
}

Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps) {
  MISSL_OP_SCOPE("LayerNorm");
  MISSL_CHECK_CONTIGUOUS(x);
  MISSL_CHECK_CONTIGUOUS(gamma);
  MISSL_CHECK_CONTIGUOUS(beta);
  int64_t rows, d;
  LastDimView(x, &rows, &d);
  MISSL_CHECK(gamma.dim() == 1 && gamma.size(0) == d)
      << "LayerNorm gamma shape mismatch";
  MISSL_CHECK(beta.dim() == 1 && beta.size(0) == d)
      << "LayerNorm beta shape mismatch";
  Tensor out = MakeResult(x.shape());
  // Cache xhat and inverse stddev for backward.
  auto xhat = std::make_shared<std::vector<float>>(
      static_cast<size_t>(x.numel()));
  auto istd = std::make_shared<std::vector<float>>(static_cast<size_t>(rows));
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pb = beta.data();
  float* po = out.data();
  runtime::ParallelFor(0, rows, runtime::GrainForCost(6 * d),
                       [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xr = px + r * d;
      float mu = 0.0f;
      for (int64_t i = 0; i < d; ++i) mu += xr[i];
      mu /= static_cast<float>(d);
      float var = 0.0f;
      for (int64_t i = 0; i < d; ++i) {
        float c = xr[i] - mu;
        var += c * c;
      }
      var /= static_cast<float>(d);
      float is = 1.0f / std::sqrt(var + eps);
      (*istd)[static_cast<size_t>(r)] = is;
      // Mean/variance above are ordered reductions (scalar on every tier);
      // the normalize+affine pass is elementwise and vectorizes.
      simd::LayerNormAffineRow(xr, mu, is, pg, pb, xhat->data() + r * d,
                               po + r * d, d);
    }
  });
  AttachGrad(&out, {x, gamma, beta},
             [x, gamma, beta, out = TensorRef(out), xhat, istd, rows, d]() {
    const float* g = out.impl()->grad.data();
    const float* pg = gamma.data();
    if (gamma.requires_grad()) {
      gamma.impl()->EnsureGrad();
      float* gg = gamma.impl()->grad.data();
      // gg[i] sums over all rows: owner-computes over the feature dims so
      // each gg[i] accumulates in the serial row order on one thread.
      runtime::ParallelFor(0, d, runtime::GrainForCost(2 * rows),
                           [&](int64_t i0, int64_t i1) {
        for (int64_t r = 0; r < rows; ++r) {
          const float* gr = g + r * d;
          const float* xh = xhat->data() + r * d;
          simd::MulAccumRow(gr + i0, xh + i0, gg + i0, i1 - i0);
        }
      });
    }
    if (beta.requires_grad()) {
      beta.impl()->EnsureGrad();
      float* gb = beta.impl()->grad.data();
      runtime::ParallelFor(0, d, runtime::GrainForCost(rows),
                           [&](int64_t i0, int64_t i1) {
        for (int64_t r = 0; r < rows; ++r) {
          simd::AccumRow(g + r * d + i0, gb + i0, i1 - i0);
        }
      });
    }
    if (x.requires_grad()) {
      x.impl()->EnsureGrad();
      float* gx = x.impl()->grad.data();
      float invd = 1.0f / static_cast<float>(d);
      runtime::ParallelFor(0, rows, runtime::GrainForCost(6 * d),
                           [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const float* gr = g + r * d;
          const float* xh = xhat->data() + r * d;
          float is = (*istd)[static_cast<size_t>(r)];
          float m1 = 0.0f, m2 = 0.0f;  // mean(gamma*g), mean(gamma*g*xhat)
          for (int64_t i = 0; i < d; ++i) {
            float gg = pg[i] * gr[i];
            m1 += gg;
            m2 += gg * xh[i];
          }
          m1 *= invd;
          m2 *= invd;
          simd::LayerNormGradRow(gr, pg, xh, m1, m2, is, gx + r * d, d);
        }
      });
    }
  });
  return out;
}

// Dropout stays serial: its mask consumes a sequential RNG stream, so any
// parallel split would either race on the generator or change which draws
// land on which element. The kernel is a single cheap pass; the surrounding
// matmuls dominate.
Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng) {
  MISSL_OP_SCOPE("Dropout");
  MISSL_CHECK(p >= 0.0f && p < 1.0f) << "Dropout p out of range";
  if (!training || p == 0.0f) return x;
  MISSL_CHECK(rng != nullptr);
  Tensor out = MakeResult(x.shape());
  auto mask = std::make_shared<std::vector<float>>(
      static_cast<size_t>(x.numel()));
  float scale = 1.0f / (1.0f - p);
  const float* px = x.data();
  float* po = out.data();
  for (int64_t i = 0; i < x.numel(); ++i) {
    float m = rng->Bernoulli(p) ? 0.0f : scale;
    (*mask)[static_cast<size_t>(i)] = m;
    po[i] = px[i] * m;
  }
  AttachGrad(&out, {x}, [x, out = TensorRef(out), mask]() {
    const float* g = out.impl()->grad.data();
    x.impl()->EnsureGrad();
    float* gx = x.impl()->grad.data();
    for (int64_t i = 0; i < x.numel(); ++i)
      gx[i] += g[i] * (*mask)[static_cast<size_t>(i)];
  });
  return out;
}

Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int32_t>& targets) {
  MISSL_OP_SCOPE("CrossEntropyLoss");
  MISSL_CHECK(logits.dim() == 2) << "CrossEntropyLoss expects [B, C] logits";
  int64_t bsz = logits.size(0);
  int64_t c = logits.size(1);
  MISSL_CHECK(static_cast<int64_t>(targets.size()) == bsz)
      << "targets size mismatch";
  MISSL_CHECK_CONTIGUOUS(logits);
  Tensor out = MakeResult({});
  const float* pl = logits.data();
  // Cache row softmax for backward.
  auto prob = std::make_shared<std::vector<float>>(
      static_cast<size_t>(logits.numel()));
  double loss = 0.0;
  int64_t valid = 0;
  for (int64_t r = 0; r < bsz; ++r) {
    const float* x = pl + r * c;
    float* pr = prob->data() + r * c;
    float mx = x[0];
    for (int64_t i = 1; i < c; ++i) mx = std::max(mx, x[i]);
    float sum = 0.0f;
    for (int64_t i = 0; i < c; ++i) {
      pr[i] = std::exp(x[i] - mx);
      sum += pr[i];
    }
    float inv = 1.0f / sum;
    simd::ScaleRow(pr, inv, pr, c);
    int32_t t = targets[static_cast<size_t>(r)];
    if (t < 0) continue;
    MISSL_CHECK(t < c) << "target " << t << " out of range " << c;
    loss += -std::log(std::max(pr[t], 1e-12f));
    ++valid;
  }
  MISSL_CHECK(valid > 0) << "CrossEntropyLoss with no valid targets";
  out.data()[0] = static_cast<float>(loss / static_cast<double>(valid));
  AttachGrad(&out, {logits},
             [logits, out = TensorRef(out), prob, targets, bsz, c, valid]() {
    float g = out.impl()->grad[0] / static_cast<float>(valid);
    logits.impl()->EnsureGrad();
    float* gl = logits.impl()->grad.data();
    for (int64_t r = 0; r < bsz; ++r) {
      int32_t t = targets[static_cast<size_t>(r)];
      if (t < 0) continue;
      const float* pr = prob->data() + r * c;
      float* gr = gl + r * c;
      simd::AxpyRow(g, pr, gr, c);
      gr[t] -= g;
    }
  });
  return out;
}

Tensor L2Normalize(const Tensor& x, float eps) {
  MISSL_OP_SCOPE("L2Normalize");
  MISSL_CHECK_CONTIGUOUS(x);
  int64_t rows, d;
  LastDimView(x, &rows, &d);
  Tensor out = MakeResult(x.shape());
  auto invnorm = std::make_shared<std::vector<float>>(static_cast<size_t>(rows));
  const float* px = x.data();
  float* po = out.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* xr = px + r * d;
    float nrm = 0.0f;
    for (int64_t i = 0; i < d; ++i) nrm += xr[i] * xr[i];
    nrm = std::sqrt(nrm);
    float inv = 1.0f / std::max(nrm, eps);
    (*invnorm)[static_cast<size_t>(r)] = inv;
    simd::ScaleRow(xr, inv, po + r * d, d);
  }
  AttachGrad(&out, {x}, [x, out = TensorRef(out), invnorm, rows, d]() {
    const float* g = out.impl()->grad.data();
    const float* y = out.data();
    x.impl()->EnsureGrad();
    float* gx = x.impl()->grad.data();
    for (int64_t r = 0; r < rows; ++r) {
      const float* gr = g + r * d;
      const float* yr = y + r * d;
      float inv = (*invnorm)[static_cast<size_t>(r)];
      float dot = 0.0f;
      for (int64_t i = 0; i < d; ++i) dot += gr[i] * yr[i];
      float* gxr = gx + r * d;
      for (int64_t i = 0; i < d; ++i) gxr[i] += (gr[i] - yr[i] * dot) * inv;
    }
  });
  return out;
}

}  // namespace missl
