// Symmetric per-row int8 quantization for the serving catalog tier (see
// docs/KERNELS.md §int8 tier and docs/INFERENCE.md §quantized catalog tier).
//
// Scheme: each row r of a dense [rows, n] fp32 matrix gets one fp32 scale
//   scale[r] = maxabs(row) / 127
// and int8 codes
//   q[i] = clamp(round_half_away_from_zero(x[i] / scale[r]), -127, 127).
// Codes never reach -128, so |q| <= 127 everywhere — the invariant the AVX2
// maddubs kernel relies on (two |a|*|b| pair products fit int16 without
// saturating). All-zero rows store scale 0 and all-zero codes; dequantization
// multiplies by the scale, so a zero scale is never divided by.
//
// Int8DotRef defines the arithmetic contract of the int8 tier: a plain
// int32 sum of int32 element products. Integer addition is associative, so
// every implementation (scalar, AVX2, any blocking) that computes the same
// mathematical sum is bitwise identical — a strictly stronger guarantee than
// the fp32 tier's fixed-accumulation-order rule. simd::Int8DotRows dispatches
// to tiered implementations of exactly this contract.
#ifndef MISSL_TENSOR_QUANT_H_
#define MISSL_TENSOR_QUANT_H_

#include <cstdint>

namespace missl::quant {

/// Aggregate statistics of one QuantizeRowsSymmetric call.
struct RowQuantStats {
  float min_scale = 0.0f;  ///< smallest non-zero row scale (0 if none)
  float max_scale = 0.0f;  ///< largest row scale
  int64_t zero_rows = 0;   ///< rows that were all zero (scale stored as 0)
  int64_t saturated = 0;   ///< codes clamped to ±127 (rounding edge cases)
};

/// max(|x[i]|) over the row; 0 for n == 0. NaN-free inputs assumed.
float RowMaxAbs(const float* x, int64_t n);

/// Quantizes one row with a caller-provided scale. scale == 0 writes all-zero
/// codes (no division). Returns the number of codes clamped to ±127.
int64_t QuantizeRowWithScale(const float* x, int64_t n, float scale, int8_t* q);

/// Symmetric per-row quantization of a dense row-major [rows, n] matrix:
/// scales[r] = RowMaxAbs(row) / 127, codes via QuantizeRowWithScale. `stats`
/// may be null.
void QuantizeRowsSymmetric(const float* x, int64_t rows, int64_t n, int8_t* q,
                           float* scales, RowQuantStats* stats);

/// out[i] = scale * q[i] — the inverse map (up to rounding error; the
/// round-trip bound |x - out| <= scale / 2 is gated in tests/quant_test.cc).
void DequantizeRow(const int8_t* q, float scale, float* out, int64_t n);

/// The scalar reference int8 dot: sum over i of int32(a[i]) * int32(b[i]).
/// This IS the int8 arithmetic contract; simd::Int8DotRows must match it
/// bitwise on every tier.
int32_t Int8DotRef(const int8_t* a, const int8_t* b, int64_t n);

}  // namespace missl::quant

#endif  // MISSL_TENSOR_QUANT_H_
