#include "tensor/quant.h"

#include <cmath>

namespace missl::quant {

float RowMaxAbs(const float* x, int64_t n) {
  float m = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > m) m = a;
  }
  return m;
}

int64_t QuantizeRowWithScale(const float* x, int64_t n, float scale,
                             int8_t* q) {
  if (scale == 0.0f) {
    for (int64_t i = 0; i < n; ++i) q[i] = 0;
    return 0;
  }
  int64_t saturated = 0;
  for (int64_t i = 0; i < n; ++i) {
    // lround rounds half away from zero independent of the FP environment,
    // so quantization is deterministic across compilers and tiers.
    const long v = std::lround(x[i] / scale);
    long c = v;
    if (c > 127) c = 127;
    if (c < -127) c = -127;
    if (c != v) ++saturated;
    q[i] = static_cast<int8_t>(c);
  }
  return saturated;
}

void QuantizeRowsSymmetric(const float* x, int64_t rows, int64_t n, int8_t* q,
                           float* scales, RowQuantStats* stats) {
  RowQuantStats st;
  bool have_nonzero = false;
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = x + r * n;
    const float maxabs = RowMaxAbs(row, n);
    const float scale = maxabs / 127.0f;
    scales[r] = scale;
    st.saturated += QuantizeRowWithScale(row, n, scale, q + r * n);
    if (scale == 0.0f) {
      ++st.zero_rows;
      continue;
    }
    if (!have_nonzero || scale < st.min_scale) st.min_scale = scale;
    if (scale > st.max_scale) st.max_scale = scale;
    have_nonzero = true;
  }
  if (stats != nullptr) *stats = st;
}

void DequantizeRow(const int8_t* q, float scale, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = scale * static_cast<float>(q[i]);
  }
}

int32_t Int8DotRef(const int8_t* a, const int8_t* b, int64_t n) {
  int32_t acc = 0;
  for (int64_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

}  // namespace missl::quant
