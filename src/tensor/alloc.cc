#include "tensor/alloc.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/metrics.h"
#include "utils/check.h"
#include "utils/logging.h"

// Under ASan the pool is compiled out entirely: a cached block would look
// like one long-lived allocation to LSan (hiding genuine tensor leaks) and
// would recycle memory without redzones (hiding use-after-free). Plain
// aligned system allocation keeps both detectors at full fidelity.
#if defined(__SANITIZE_ADDRESS__)
#define MISSL_ALLOC_NO_POOL 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MISSL_ALLOC_NO_POOL 1
#endif
#endif

namespace missl::alloc {

namespace {

// Size classes: powers of two from 2^kMinClassLog (64 B, one cache line
// pair) through 2^kMaxClassLog (64 MiB). Anything larger is rare (full
// catalog score matrices at extreme scale) and goes straight to the system.
constexpr int kMinClassLog = 6;
constexpr int kMaxClassLog = 26;
constexpr int kNumClasses = kMaxClassLog - kMinClassLog + 1;
// Per-thread, per-class front-cache depth. Small on purpose: the front
// cache only has to absorb the free/alloc ping-pong inside one training
// step; the global pool holds everything else, and stays trimmable.
constexpr int kThreadCacheBlocks = 8;

int ClassIndex(int64_t bytes) {
  int cls = 0;
  int64_t cap = int64_t{1} << kMinClassLog;
  while (cap < bytes) {
    cap <<= 1;
    ++cls;
  }
  return cls < kNumClasses ? cls : -1;
}

int64_t ClassBytes(int cls) { return int64_t{1} << (kMinClassLog + cls); }

// ---- Always-on counters -----------------------------------------------------

std::atomic<int64_t> g_pool_hits{0};
std::atomic<int64_t> g_pool_misses{0};
std::atomic<int64_t> g_system_allocs{0};
std::atomic<int64_t> g_system_frees{0};
std::atomic<int64_t> g_cached_bytes{0};
std::atomic<int64_t> g_live_bytes{0};

// Opt-in mirrors in the metrics registry (counters alloc.pool_hits/misses,
// gauges alloc.cached_bytes/live_bytes). Gauges are Set to the authoritative
// atomic value on every change, so they are exact whenever metrics are on.
struct ObsMirror {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Gauge& cached;
  obs::Gauge& live;
  static ObsMirror& Get() {
    static ObsMirror m{
        obs::MetricsRegistry::Global().GetCounter("alloc.pool_hits"),
        obs::MetricsRegistry::Global().GetCounter("alloc.pool_misses"),
        obs::MetricsRegistry::Global().GetGauge("alloc.cached_bytes"),
        obs::MetricsRegistry::Global().GetGauge("alloc.live_bytes")};
    return m;
  }
};

void NoteLiveBytes(int64_t delta) {
  int64_t now = g_live_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  ObsMirror::Get().live.Set(now);
}

void NoteCachedBytes(int64_t delta) {
  int64_t now =
      g_cached_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  ObsMirror::Get().cached.Set(now);
}

// ---- System backend ---------------------------------------------------------

void* SystemAlloc(int64_t cap_bytes) {
  // cap_bytes is always a multiple of kAlignment (RoundUpBytes), which
  // std::aligned_alloc requires.
  void* p = std::aligned_alloc(static_cast<size_t>(kAlignment),
                               static_cast<size_t>(cap_bytes));
  MISSL_CHECK(p != nullptr) << "tensor allocation of " << cap_bytes
                            << " bytes failed";
  g_system_allocs.fetch_add(1, std::memory_order_relaxed);
  return p;
}

void SystemFree(void* p) {
  std::free(p);
  g_system_frees.fetch_add(1, std::memory_order_relaxed);
}

#ifndef MISSL_ALLOC_NO_POOL

// ---- Global pool ------------------------------------------------------------

// Leaky singleton: thread caches flush into it from thread_local
// destructors and static-lifetime tensors release into it after main(), so
// it must never be destroyed.
struct GlobalPool {
  std::mutex mu;
  std::vector<void*> lists[kNumClasses];

  static GlobalPool& Get() {
    static GlobalPool* pool = new GlobalPool();
    return *pool;
  }
};

// ---- Per-thread front cache -------------------------------------------------

struct ThreadCache;
ThreadCache* CurrentThreadCache();

struct ThreadCache {
  std::vector<void*> lists[kNumClasses];
  ~ThreadCache();
};

// Set by ~ThreadCache. Plain bool (zero-initialized, no dynamic dtor), so
// it stays readable during thread teardown after the cache itself is gone;
// releases that happen then skip straight to the global pool.
thread_local bool t_cache_dead = false;
thread_local ThreadCache t_cache;

ThreadCache::~ThreadCache() {
  GlobalPool& pool = GlobalPool::Get();
  std::lock_guard<std::mutex> lock(pool.mu);
  for (int c = 0; c < kNumClasses; ++c) {
    for (void* p : lists[c]) pool.lists[c].push_back(p);
    lists[c].clear();
  }
  t_cache_dead = true;
}

ThreadCache* CurrentThreadCache() {
  return t_cache_dead ? nullptr : &t_cache;
}

#endif  // !MISSL_ALLOC_NO_POOL

// ---- Mode resolution --------------------------------------------------------

// Mirrors the MISSL_SIMD tier resolution (tensor/simd.cc): unknown values
// warn and fall back rather than aborting — a bad env var must not take
// down a serving process.
Mode ResolveMode() {
  const char* env = std::getenv("MISSL_ALLOC");
  Mode want = Mode::kPool;
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "pool") == 0 ||
      std::strcmp(env, "auto") == 0 || std::strcmp(env, "on") == 0 ||
      std::strcmp(env, "1") == 0) {
    want = Mode::kPool;
  } else if (std::strcmp(env, "system") == 0 || std::strcmp(env, "off") == 0 ||
             std::strcmp(env, "0") == 0) {
    want = Mode::kSystem;
  } else {
    MISSL_LOG_WARN << "unknown MISSL_ALLOC value '" << env
                   << "' (want pool|system); using pool";
    want = Mode::kPool;
  }
  if (want == Mode::kPool && !PoolAvailable()) want = Mode::kSystem;
  return want;
}

// -1 = unresolved; otherwise the Mode value. Write-once via CAS (or
// explicitly overridden by SetMode), same pattern as the SIMD tier cache.
std::atomic<int> g_mode{-1};

}  // namespace

bool PoolAvailable() {
#ifdef MISSL_ALLOC_NO_POOL
  return false;
#else
  return true;
#endif
}

Mode ActiveMode() {
  int m = g_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    Mode resolved = ResolveMode();
    int expected = -1;
    if (g_mode.compare_exchange_strong(expected, static_cast<int>(resolved),
                                       std::memory_order_relaxed)) {
      m = static_cast<int>(resolved);
    } else {
      m = expected;  // another thread resolved (or SetMode ran) first
    }
  }
  return static_cast<Mode>(m);
}

void SetMode(Mode m) {
  if (m == Mode::kPool && !PoolAvailable()) {
    MISSL_LOG_WARN << "MISSL allocator pool is unavailable in this build "
                   << "(address-sanitized); staying on system allocation";
    m = Mode::kSystem;
  }
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kSystem: return "system";
    case Mode::kPool: return "pool";
  }
  return "unknown";
}

ScopedMode::ScopedMode(Mode m) : prev_(ActiveMode()) { SetMode(m); }
ScopedMode::~ScopedMode() { SetMode(prev_); }

AllocStats GetAllocStats() {
  AllocStats s;
  s.pool_hits = g_pool_hits.load(std::memory_order_relaxed);
  s.pool_misses = g_pool_misses.load(std::memory_order_relaxed);
  s.system_allocs = g_system_allocs.load(std::memory_order_relaxed);
  s.system_frees = g_system_frees.load(std::memory_order_relaxed);
  s.cached_bytes = g_cached_bytes.load(std::memory_order_relaxed);
  s.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  return s;
}

int64_t RoundUpBytes(int64_t bytes) {
  MISSL_CHECK(bytes > 0) << "RoundUpBytes on non-positive size " << bytes;
  int cls = ClassIndex(bytes);
  if (cls >= 0) return ClassBytes(cls);
  return (bytes + kAlignment - 1) / kAlignment * kAlignment;
}

int64_t Trim() {
#ifdef MISSL_ALLOC_NO_POOL
  return 0;
#else
  int64_t released = 0;
  if (ThreadCache* cache = CurrentThreadCache()) {
    for (int c = 0; c < kNumClasses; ++c) {
      for (void* p : cache->lists[c]) {
        SystemFree(p);
        released += ClassBytes(c);
      }
      cache->lists[c].clear();
    }
  }
  {
    GlobalPool& pool = GlobalPool::Get();
    std::lock_guard<std::mutex> lock(pool.mu);
    for (int c = 0; c < kNumClasses; ++c) {
      for (void* p : pool.lists[c]) {
        SystemFree(p);
        released += ClassBytes(c);
      }
      pool.lists[c].clear();
    }
  }
  if (released > 0) NoteCachedBytes(-released);
  return released;
#endif
}

namespace internal {

void* Acquire(int64_t bytes, int64_t* cap_bytes, int* cls) {
  MISSL_CHECK(bytes > 0);
  const int c = ClassIndex(bytes);
#ifndef MISSL_ALLOC_NO_POOL
  if (c >= 0 && ActiveMode() == Mode::kPool) {
    const int64_t cap = ClassBytes(c);
    void* p = nullptr;
    if (ThreadCache* cache = CurrentThreadCache()) {
      auto& list = cache->lists[c];
      if (!list.empty()) {
        p = list.back();
        list.pop_back();
      }
    }
    if (p == nullptr) {
      GlobalPool& pool = GlobalPool::Get();
      std::lock_guard<std::mutex> lock(pool.mu);
      auto& list = pool.lists[c];
      if (!list.empty()) {
        p = list.back();
        list.pop_back();
      }
    }
    if (p != nullptr) {
      g_pool_hits.fetch_add(1, std::memory_order_relaxed);
      ObsMirror::Get().hits.Add(1);
      NoteCachedBytes(-cap);
    } else {
      g_pool_misses.fetch_add(1, std::memory_order_relaxed);
      ObsMirror::Get().misses.Add(1);
      p = SystemAlloc(cap);
    }
    NoteLiveBytes(cap);
    *cap_bytes = cap;
    *cls = c;
    return p;
  }
#endif
  // System mode, or an oversize block that bypasses the cache. cls -1
  // routes the eventual Release straight back to the system even if the
  // mode has been flipped to pool in between... except cacheable-size
  // blocks allocated in system mode keep their class so a later pool-mode
  // release can still only free them (origin is the allocator, not the
  // class). To keep routing unambiguous, system-mode blocks always record
  // cls -1.
  const int64_t cap = RoundUpBytes(bytes);
  void* p = SystemAlloc(cap);
  NoteLiveBytes(cap);
  *cap_bytes = cap;
  *cls = -1;
  return p;
}

void Release(void* ptr, int64_t cap_bytes, int cls) {
  if (ptr == nullptr) return;
  NoteLiveBytes(-cap_bytes);
#ifndef MISSL_ALLOC_NO_POOL
  if (cls >= 0) {
    // Pool-origin block: park it in a free list regardless of the current
    // mode (its memory came from the pool's accounting).
    if (ThreadCache* cache = CurrentThreadCache()) {
      auto& list = cache->lists[cls];
      if (static_cast<int>(list.size()) < kThreadCacheBlocks) {
        list.push_back(ptr);
        NoteCachedBytes(cap_bytes);
        return;
      }
    }
    GlobalPool& pool = GlobalPool::Get();
    std::lock_guard<std::mutex> lock(pool.mu);
    pool.lists[cls].push_back(ptr);
    NoteCachedBytes(cap_bytes);
    return;
  }
#else
  (void)cls;
#endif
  SystemFree(ptr);
}

}  // namespace internal

}  // namespace missl::alloc

namespace missl {

void Storage::Reserve(int64_t n) {
  const int64_t need = n * static_cast<int64_t>(sizeof(float));
  if (need <= cap_bytes_) return;
  if (ptr_ != nullptr) alloc::internal::Release(ptr_, cap_bytes_, cls_);
  ptr_ = static_cast<float*>(alloc::internal::Acquire(need, &cap_bytes_, &cls_));
}

void Storage::assign(int64_t n, float value) {
  MISSL_CHECK(n >= 0);
  Reserve(n);
  size_ = n;
  for (int64_t i = 0; i < n; ++i) ptr_[i] = value;
}

void Storage::copy_from(const float* src, int64_t n) {
  MISSL_CHECK(n >= 0);
  Reserve(n);
  size_ = n;
  if (n > 0) std::memcpy(ptr_, src, static_cast<size_t>(n) * sizeof(float));
}

void Storage::reset() {
  if (ptr_ != nullptr) {
    alloc::internal::Release(ptr_, cap_bytes_, cls_);
    ptr_ = nullptr;
  }
  size_ = 0;
  cap_bytes_ = 0;
  cls_ = -1;
}

}  // namespace missl
