#include <cstring>

#include "obs/op_stats.h"
#include "runtime/parallel_for.h"
#include "tensor/ops.h"

namespace missl {

using internal::AttachGrad;
using internal::MakeResult;

Tensor Reshape(const Tensor& a, Shape shape) {
  MISSL_OP_SCOPE("Reshape");
  // Resolve a single -1 placeholder.
  int64_t known = 1;
  int64_t infer = -1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      MISSL_CHECK(infer == -1) << "Reshape with multiple -1 dims";
      infer = static_cast<int64_t>(i);
    } else {
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    MISSL_CHECK(known > 0 && a.numel() % known == 0)
        << "cannot infer dim in Reshape to " << ShapeToString(shape) << " from "
        << ShapeToString(a.shape());
    shape[static_cast<size_t>(infer)] = a.numel() / known;
  }
  MISSL_CHECK(NumElements(shape) == a.numel())
      << "Reshape numel mismatch " << ShapeToString(a.shape()) << " -> "
      << ShapeToString(shape);
  Tensor out = MakeResult(shape);
  std::memcpy(out.data(), a.data(), sizeof(float) * static_cast<size_t>(a.numel()));
  AttachGrad(&out, {a}, [a, out = TensorRef(out)]() {
    a.impl()->AccumGrad(out.impl()->grad.data(), out.numel());
  });
  return out;
}

Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t end) {
  MISSL_OP_SCOPE("Slice");
  int64_t r = a.dim();
  if (dim < 0) dim += r;
  MISSL_CHECK(dim >= 0 && dim < r) << "Slice dim out of range";
  int64_t d = a.size(dim);
  if (start < 0) start += d;
  if (end < 0) end += d;
  MISSL_CHECK(0 <= start && start <= end && end <= d)
      << "Slice bounds [" << start << ", " << end << ") invalid for dim size " << d;
  Shape so = a.shape();
  so[static_cast<size_t>(dim)] = end - start;
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= a.size(i);
  for (int64_t i = dim + 1; i < r; ++i) inner *= a.size(i);
  Tensor out = MakeResult(so);
  const float* pa = a.data();
  float* po = out.data();
  int64_t len = end - start;
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(po + o * len * inner, pa + (o * d + start) * inner,
                sizeof(float) * static_cast<size_t>(len * inner));
  }
  AttachGrad(&out, {a},
             [a, out = TensorRef(out), outer, inner, d, start, len]() {
    const float* g = out.impl()->grad.data();
    a.impl()->EnsureGrad();
    float* ga = a.impl()->grad.data();
    for (int64_t o = 0; o < outer; ++o) {
      const float* gs = g + o * len * inner;
      float* gas = ga + (o * d + start) * inner;
      for (int64_t i = 0; i < len * inner; ++i) gas[i] += gs[i];
    }
  });
  return out;
}

Tensor Concat(const std::vector<Tensor>& ts, int64_t dim) {
  MISSL_OP_SCOPE("Concat");
  MISSL_CHECK(!ts.empty()) << "Concat of zero tensors";
  int64_t r = ts[0].dim();
  if (dim < 0) dim += r;
  MISSL_CHECK(dim >= 0 && dim < r) << "Concat dim out of range";
  Shape so = ts[0].shape();
  int64_t total = 0;
  for (const auto& t : ts) {
    MISSL_CHECK(t.dim() == r) << "Concat rank mismatch";
    for (int64_t i = 0; i < r; ++i) {
      if (i != dim) {
        MISSL_CHECK(t.size(i) == so[static_cast<size_t>(i)])
            << "Concat non-concat dim mismatch at dim " << i;
      }
    }
    total += t.size(dim);
  }
  so[static_cast<size_t>(dim)] = total;
  int64_t outer = 1, inner = 1;
  for (int64_t i = 0; i < dim; ++i) outer *= so[static_cast<size_t>(i)];
  for (int64_t i = dim + 1; i < r; ++i) inner *= so[static_cast<size_t>(i)];
  Tensor out = MakeResult(so);
  float* po = out.data();
  int64_t off = 0;  // running offset along `dim`
  for (const auto& t : ts) {
    int64_t len = t.size(dim);
    const float* pt = t.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(po + (o * total + off) * inner, pt + o * len * inner,
                  sizeof(float) * static_cast<size_t>(len * inner));
    }
    off += len;
  }
  AttachGrad(&out, ts, [ts, out = TensorRef(out), outer, inner, total, dim]() {
    const float* g = out.impl()->grad.data();
    int64_t off = 0;
    for (const auto& t : ts) {
      int64_t len = t.size(dim);
      if (t.requires_grad()) {
        t.impl()->EnsureGrad();
        float* gt = t.impl()->grad.data();
        for (int64_t o = 0; o < outer; ++o) {
          const float* gs = g + (o * total + off) * inner;
          float* gd = gt + o * len * inner;
          for (int64_t i = 0; i < len * inner; ++i) gd[i] += gs[i];
        }
      }
      off += len;
    }
  });
  return out;
}

Tensor IndexSelect0(const Tensor& a, const std::vector<int32_t>& idx) {
  MISSL_OP_SCOPE("IndexSelect0");
  MISSL_CHECK(a.dim() >= 1) << "IndexSelect0 on scalar";
  int64_t rows = a.size(0);
  int64_t inner = a.numel() / (rows == 0 ? 1 : rows);
  Shape so = a.shape();
  so[0] = static_cast<int64_t>(idx.size());
  Tensor out = MakeResult(so);
  const float* pa = a.data();
  float* po = out.data();
  for (size_t i = 0; i < idx.size(); ++i) {
    int64_t r = idx[i];
    MISSL_CHECK(r >= 0 && r < rows) << "IndexSelect0 index " << r << " out of range";
    std::memcpy(po + static_cast<int64_t>(i) * inner, pa + r * inner,
                sizeof(float) * static_cast<size_t>(inner));
  }
  AttachGrad(&out, {a}, [a, out = TensorRef(out), idx, rows, inner]() {
    const float* g = out.impl()->grad.data();
    a.impl()->EnsureGrad();
    float* ga = a.impl()->grad.data();
    // Scatter-add with possibly duplicated indices: owner-computes over the
    // source rows. The chunk owning row r applies every idx[i] == r
    // contribution itself, in input order — no races on duplicates and the
    // accumulation order matches the serial loop bit for bit.
    runtime::ParallelFor(
        0, rows, runtime::GrainForChunks(rows), [&](int64_t v0, int64_t v1) {
          for (size_t i = 0; i < idx.size(); ++i) {
            int64_t r = idx[i];
            if (r < v0 || r >= v1) continue;
            float* dst = ga + r * inner;
            const float* src = g + static_cast<int64_t>(i) * inner;
            for (int64_t j = 0; j < inner; ++j) dst[j] += src[j];
          }
        });
  });
  return out;
}

Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int32_t>& ids,
                       Shape prefix_shape) {
  MISSL_OP_SCOPE("EmbeddingLookup");
  MISSL_CHECK(weight.dim() == 2) << "EmbeddingLookup weight must be [V, d]";
  int64_t v = weight.size(0);
  int64_t d = weight.size(1);
  MISSL_CHECK(static_cast<int64_t>(ids.size()) == NumElements(prefix_shape))
      << "EmbeddingLookup ids size " << ids.size() << " vs prefix "
      << ShapeToString(prefix_shape);
  Shape so = prefix_shape;
  so.push_back(d);
  Tensor out = MakeResult(so);
  const float* pw = weight.data();
  float* po = out.data();
  // Gather: every output row is written by exactly one index slot.
  runtime::ParallelFor(
      0, static_cast<int64_t>(ids.size()), runtime::GrainForCost(d),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          int32_t id = ids[static_cast<size_t>(i)];
          if (id < 0) continue;  // padding -> zeros
          MISSL_CHECK(id < v) << "embedding id " << id << " out of vocab " << v;
          std::memcpy(po + i * d, pw + static_cast<int64_t>(id) * d,
                      sizeof(float) * static_cast<size_t>(d));
        }
      });
  AttachGrad(&out, {weight}, [weight, out = TensorRef(out), ids, v, d]() {
    const float* g = out.impl()->grad.data();
    weight.impl()->EnsureGrad();
    float* gw = weight.impl()->grad.data();
    // Scatter-add: owner-computes over the vocab. Each chunk scans the full
    // id list and accumulates only the rows it owns, so duplicate ids (the
    // common case — popular items repeat within a batch) never race, and
    // each weight row sums its contributions in input order, exactly like
    // the serial loop.
    runtime::ParallelFor(
        0, v, runtime::GrainForChunks(v), [&](int64_t v0, int64_t v1) {
          for (size_t i = 0; i < ids.size(); ++i) {
            int64_t id = ids[i];
            if (id < v0 || id >= v1) continue;  // also skips padding (-1)
            float* dst = gw + id * d;
            const float* src = g + static_cast<int64_t>(i) * d;
            for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
          }
        });
  });
  return out;
}

}  // namespace missl
