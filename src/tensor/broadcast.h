// Internal broadcasting helpers shared by op implementations. Not part of
// the public API.
#ifndef MISSL_TENSOR_BROADCAST_H_
#define MISSL_TENSOR_BROADCAST_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace missl::internal {

/// NumPy broadcast of two shapes; CHECKs compatibility.
Shape BroadcastShape(const Shape& a, const Shape& b);

/// Element strides of `in` when iterated under `out` (0 on broadcast dims).
/// `in` is right-aligned to `out`'s rank.
std::vector<int64_t> BroadcastStrides(const Shape& in, const Shape& out);

/// Sums a gradient laid out in `out` shape down to `in` shape (summing the
/// dimensions that were broadcast). Returns a buffer of NumElements(in).
std::vector<float> ReduceGradTo(const float* g, const Shape& out, const Shape& in);

/// Calls fn(out_index, a_offset, b_offset) for every element of `out`,
/// where offsets follow the broadcast strides of the two inputs.
template <typename Fn>
void BroadcastIterate(const Shape& out, const Shape& a, const Shape& b, Fn&& fn) {
  int64_t n = NumElements(out);
  if (n == 0) return;
  size_t rank = out.size();
  std::vector<int64_t> sa = BroadcastStrides(a, out);
  std::vector<int64_t> sb = BroadcastStrides(b, out);
  std::vector<int64_t> idx(rank, 0);
  int64_t oa = 0, ob = 0;
  for (int64_t i = 0;;) {
    fn(i, oa, ob);
    if (++i == n) break;
    // Odometer increment from the innermost dimension.
    for (size_t d = rank; d-- > 0;) {
      ++idx[d];
      oa += sa[d];
      ob += sb[d];
      if (idx[d] < out[d]) break;
      oa -= sa[d] * out[d];
      ob -= sb[d] * out[d];
      idx[d] = 0;
    }
  }
}

}  // namespace missl::internal

#endif  // MISSL_TENSOR_BROADCAST_H_
