#include "tensor/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "utils/check.h"
#include "utils/logging.h"

namespace missl::simd {

// AVX2 implementations live in simd_avx2.cc, which is the only translation
// unit compiled with -mavx2 (and with -ffp-contract=off so nothing is ever
// fused into an FMA). This file only declares and dispatches to them.
#ifdef MISSL_SIMD_AVX2
namespace avx2 {
void GemmRows(const float* a, const float* b, float* c, int64_t k, int64_t n,
              int64_t r0, int64_t r1);
void AxpyRow(float s, const float* x, float* y, int64_t n);
void AddRow(const float* a, const float* b, float* o, int64_t n);
void SubRow(const float* a, const float* b, float* o, int64_t n);
void MulRow(const float* a, const float* b, float* o, int64_t n);
void DivRow(const float* a, const float* b, float* o, int64_t n);
void ReluRow(const float* a, float* o, int64_t n);
void ScaleRow(const float* a, float s, float* o, int64_t n);
void AddScalarRow(const float* a, float s, float* o, int64_t n);
void AccumRow(const float* g, float* acc, int64_t n);
void NegAccumRow(const float* g, float* acc, int64_t n);
void MulAccumRow(const float* b, const float* g, float* acc, int64_t n);
void LayerNormAffineRow(const float* x, float mu, float is, const float* gamma,
                        const float* beta, float* xh, float* y, int64_t n);
void LayerNormGradRow(const float* g, const float* gamma, const float* xh,
                      float m1, float m2, float is, float* gx, int64_t n);
void SoftmaxGradRow(const float* y, const float* g, float dot, float* ga,
                    int64_t n);
void Int8DotRows(const int8_t* a, const int8_t* b, int32_t* o, int64_t k,
                 int64_t r0, int64_t r1);
void DequantRow(const int32_t* acc, float act_scale, const float* scales,
                float* out, int64_t n);
void Int8DotDequantRows(const int8_t* a, float act_scale, const int8_t* b,
                        const float* scales, float* o, int64_t k, int64_t r0,
                        int64_t r1);
void Int8DotDequantTile(const int8_t* a, const float* act_scales, int64_t na,
                        const int8_t* b, const float* scales, float* o,
                        int64_t ldo, int64_t k, int64_t r0, int64_t r1);
}  // namespace avx2
#endif  // MISSL_SIMD_AVX2

namespace {

bool CpuHasAvx2() {
#if defined(MISSL_SIMD_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool CpuHasAvxVnni() {
#if defined(MISSL_SIMD_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avxvnni");
#else
  return false;
#endif
}

void PublishTierGauge(Tier t) {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("simd.tier");
  gauge.Set(static_cast<int64_t>(t));
}

void PublishVnniGauge(bool on) {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("simd.vnni");
  gauge.Set(on ? 1 : 0);
}

// Resolves the startup tier from MISSL_SIMD + CPUID. Unknown values fall
// back to auto-detection with a warning rather than aborting: a bad env var
// must not take down a serving process.
Tier ResolveTier() {
  const char* env = std::getenv("MISSL_SIMD");
  bool want_avx2 = false;
  bool forced_off = false;
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "auto") == 0 ||
      std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0) {
    want_avx2 = true;
  } else if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
             std::strcmp(env, "scalar") == 0) {
    forced_off = true;
  } else if (std::strcmp(env, "avx2") == 0) {
    want_avx2 = true;
    if (!Avx2Available()) {
      MISSL_LOG_WARN << "MISSL_SIMD=avx2 but the AVX2 tier is unavailable "
                     << "(not compiled in or no CPU support); falling back "
                     << "to scalar";
    }
  } else {
    MISSL_LOG_WARN << "unknown MISSL_SIMD value '" << env
                   << "' (want off|scalar|avx2|auto); auto-detecting";
    want_avx2 = true;
  }
  if (!forced_off && want_avx2 && Avx2Available()) return Tier::kAvx2;
  return Tier::kScalar;
}

// -1 = unresolved; otherwise the Tier value. Relaxed loads are fine: the
// value is write-once (or explicitly overridden by SetTier) and any racing
// reader either sees the final tier or resolves the same value itself.
std::atomic<int> g_tier{-1};

// VNNI sub-dispatch state for the int8 kernels, same write-once discipline:
// -1 = unresolved, else 0/1. Resolved from availability + MISSL_SIMD_VNNI.
std::atomic<int> g_vnni{-1};

bool ResolveVnni() {
  if (!AvxVnniAvailable()) return false;
  const char* env = std::getenv("MISSL_SIMD_VNNI");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0)) {
    return false;
  }
  return true;
}

}  // namespace

bool Avx2Available() {
#ifdef MISSL_SIMD_AVX2
  static const bool available = CpuHasAvx2();
  return available;
#else
  return false;
#endif
}

bool AvxVnniAvailable() {
#ifdef MISSL_SIMD_AVX2
  static const bool available = Avx2Available() && CpuHasAvxVnni();
  return available;
#else
  return false;
#endif
}

bool AvxVnniEnabled() {
  int v = g_vnni.load(std::memory_order_relaxed);
  if (v < 0) {
    bool resolved = ResolveVnni();
    int expected = -1;
    if (g_vnni.compare_exchange_strong(expected, resolved ? 1 : 0,
                                       std::memory_order_relaxed)) {
      PublishVnniGauge(resolved);
      v = resolved ? 1 : 0;
    } else {
      v = expected;  // another thread resolved (or SetAvxVnni ran) first
    }
  }
  return v != 0;
}

void SetAvxVnni(bool on) {
  MISSL_CHECK(!on || AvxVnniAvailable())
      << "AVX-VNNI is not available in this build or on this CPU";
  g_vnni.store(on ? 1 : 0, std::memory_order_relaxed);
  PublishVnniGauge(on);
}

ScopedAvxVnni::ScopedAvxVnni(bool on) : prev_(AvxVnniEnabled()) {
  SetAvxVnni(on);
}
ScopedAvxVnni::~ScopedAvxVnni() { SetAvxVnni(prev_); }

Tier ActiveTier() {
  int t = g_tier.load(std::memory_order_relaxed);
  if (t < 0) {
    Tier resolved = ResolveTier();
    int expected = -1;
    if (g_tier.compare_exchange_strong(expected, static_cast<int>(resolved),
                                       std::memory_order_relaxed)) {
      PublishTierGauge(resolved);
      t = static_cast<int>(resolved);
    } else {
      t = expected;  // another thread resolved (or SetTier ran) first
    }
  }
  return static_cast<Tier>(t);
}

void SetTier(Tier t) {
  MISSL_CHECK(t == Tier::kScalar || Avx2Available())
      << "SIMD tier '" << TierName(t) << "' is not available in this build "
      << "or on this CPU";
  g_tier.store(static_cast<int>(t), std::memory_order_relaxed);
  PublishTierGauge(t);
}

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
  }
  return "unknown";
}

ScopedTier::ScopedTier(Tier t) : prev_(ActiveTier()) { SetTier(t); }
ScopedTier::~ScopedTier() { SetTier(prev_); }

// ---- Portable (scalar-tier) kernels -----------------------------------------
// These loops ARE the reference semantics: one rounded multiply and one
// rounded add per accumulation step, reductions in ascending index order.
// The AVX2 paths replay exactly this per-element instruction sequence.

namespace scalar {

void GemmRows(const float* a, const float* b, float* c, int64_t k, int64_t n,
              int64_t r0, int64_t r1) {
  for (int64_t i = r0; i < r1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void AxpyRow(float s, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += s * x[i];
}

void AddRow(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}

void SubRow(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
}

void MulRow(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
}

void DivRow(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] / b[i];
}

void ReluRow(const float* a, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] > 0.0f ? a[i] : 0.0f;
}

void ScaleRow(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * s;
}

void AddScalarRow(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + s;
}

void AccumRow(const float* g, float* acc, int64_t n) {
  for (int64_t i = 0; i < n; ++i) acc[i] += g[i];
}

void NegAccumRow(const float* g, float* acc, int64_t n) {
  for (int64_t i = 0; i < n; ++i) acc[i] += -1.0f * g[i];
}

void MulAccumRow(const float* b, const float* g, float* acc, int64_t n) {
  for (int64_t i = 0; i < n; ++i) acc[i] += b[i] * g[i];
}

void LayerNormAffineRow(const float* x, float mu, float is, const float* gamma,
                        const float* beta, float* xh, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    xh[i] = (x[i] - mu) * is;
    y[i] = gamma[i] * xh[i] + beta[i];
  }
}

void LayerNormGradRow(const float* g, const float* gamma, const float* xh,
                      float m1, float m2, float is, float* gx, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    float gg = gamma[i] * g[i];
    gx[i] += (gg - m1 - xh[i] * m2) * is;
  }
}

void SoftmaxGradRow(const float* y, const float* g, float dot, float* ga,
                    int64_t n) {
  for (int64_t i = 0; i < n; ++i) ga[i] += y[i] * (g[i] - dot);
}

// Integer kernel: unlike the float loops above, this one is the contract
// only up to the mathematical sum — int32 adds are associative, so any
// re-blocking (the AVX2 path uses 32-lane maddubs partials) is bitwise
// identical automatically.
void Int8DotRows(const int8_t* a, const int8_t* b, int32_t* o, int64_t k,
                 int64_t r0, int64_t r1) {
  for (int64_t r = r0; r < r1; ++r) {
    const int8_t* brow = b + r * k;
    int32_t acc = 0;
    for (int64_t i = 0; i < k; ++i) {
      acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(brow[i]);
    }
    o[r] = acc;
  }
}

// Dequant epilogue: per-element fixed rounding sequence (convert, two
// multiplies); the AVX2 path replays it lane-wise, so tiers agree bitwise.
void DequantRow(const int32_t* acc, float act_scale, const float* scales,
                float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = (act_scale * scales[i]) * static_cast<float>(acc[i]);
  }
}

// Fused dot + dequant: the integer sum is exact and the epilogue replays
// DequantRow's per-element sequence, so fused == composed, bitwise.
void Int8DotDequantRows(const int8_t* a, float act_scale, const int8_t* b,
                        const float* scales, float* o, int64_t k, int64_t r0,
                        int64_t r1) {
  for (int64_t r = r0; r < r1; ++r) {
    const int8_t* brow = b + r * k;
    int32_t acc = 0;
    for (int64_t i = 0; i < k; ++i) {
      acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(brow[i]);
    }
    o[r] = (act_scale * scales[r]) * static_cast<float>(acc);
  }
}

// Tile = na independent row-kernel calls; the AVX2 path only changes the
// catalog traversal order (pairing activation rows), never the arithmetic.
void Int8DotDequantTile(const int8_t* a, const float* act_scales, int64_t na,
                        const int8_t* b, const float* scales, float* o,
                        int64_t ldo, int64_t k, int64_t r0, int64_t r1) {
  for (int64_t i = 0; i < na; ++i) {
    Int8DotDequantRows(a + i * k, act_scales[i], b, scales, o + i * ldo, k,
                       r0, r1);
  }
}

}  // namespace scalar

// ---- Dispatch ---------------------------------------------------------------

#ifdef MISSL_SIMD_AVX2
#define MISSL_SIMD_DISPATCH(fn, ...)                                    \
  do {                                                                  \
    if (ActiveTier() == Tier::kAvx2) return avx2::fn(__VA_ARGS__);      \
    return scalar::fn(__VA_ARGS__);                                     \
  } while (0)
#else
#define MISSL_SIMD_DISPATCH(fn, ...) return scalar::fn(__VA_ARGS__)
#endif

void GemmRows(const float* a, const float* b, float* c, int64_t k, int64_t n,
              int64_t r0, int64_t r1) {
  MISSL_SIMD_DISPATCH(GemmRows, a, b, c, k, n, r0, r1);
}

void AxpyRow(float s, const float* x, float* y, int64_t n) {
  MISSL_SIMD_DISPATCH(AxpyRow, s, x, y, n);
}

void AddRow(const float* a, const float* b, float* o, int64_t n) {
  MISSL_SIMD_DISPATCH(AddRow, a, b, o, n);
}

void SubRow(const float* a, const float* b, float* o, int64_t n) {
  MISSL_SIMD_DISPATCH(SubRow, a, b, o, n);
}

void MulRow(const float* a, const float* b, float* o, int64_t n) {
  MISSL_SIMD_DISPATCH(MulRow, a, b, o, n);
}

void DivRow(const float* a, const float* b, float* o, int64_t n) {
  MISSL_SIMD_DISPATCH(DivRow, a, b, o, n);
}

void ReluRow(const float* a, float* o, int64_t n) {
  MISSL_SIMD_DISPATCH(ReluRow, a, o, n);
}

void ScaleRow(const float* a, float s, float* o, int64_t n) {
  MISSL_SIMD_DISPATCH(ScaleRow, a, s, o, n);
}

void AddScalarRow(const float* a, float s, float* o, int64_t n) {
  MISSL_SIMD_DISPATCH(AddScalarRow, a, s, o, n);
}

void AccumRow(const float* g, float* acc, int64_t n) {
  MISSL_SIMD_DISPATCH(AccumRow, g, acc, n);
}

void NegAccumRow(const float* g, float* acc, int64_t n) {
  MISSL_SIMD_DISPATCH(NegAccumRow, g, acc, n);
}

void MulAccumRow(const float* b, const float* g, float* acc, int64_t n) {
  MISSL_SIMD_DISPATCH(MulAccumRow, b, g, acc, n);
}

void LayerNormAffineRow(const float* x, float mu, float is, const float* gamma,
                        const float* beta, float* xh, float* y, int64_t n) {
  MISSL_SIMD_DISPATCH(LayerNormAffineRow, x, mu, is, gamma, beta, xh, y, n);
}

void LayerNormGradRow(const float* g, const float* gamma, const float* xh,
                      float m1, float m2, float is, float* gx, int64_t n) {
  MISSL_SIMD_DISPATCH(LayerNormGradRow, g, gamma, xh, m1, m2, is, gx, n);
}

void SoftmaxGradRow(const float* y, const float* g, float dot, float* ga,
                    int64_t n) {
  MISSL_SIMD_DISPATCH(SoftmaxGradRow, y, g, dot, ga, n);
}

void Int8DotRows(const int8_t* a, const int8_t* b, int32_t* o, int64_t k,
                 int64_t r0, int64_t r1) {
  MISSL_SIMD_DISPATCH(Int8DotRows, a, b, o, k, r0, r1);
}

void DequantRow(const int32_t* acc, float act_scale, const float* scales,
                float* out, int64_t n) {
  MISSL_SIMD_DISPATCH(DequantRow, acc, act_scale, scales, out, n);
}

void Int8DotDequantRows(const int8_t* a, float act_scale, const int8_t* b,
                        const float* scales, float* o, int64_t k, int64_t r0,
                        int64_t r1) {
  MISSL_SIMD_DISPATCH(Int8DotDequantRows, a, act_scale, b, scales, o, k, r0,
                      r1);
}

void Int8DotDequantTile(const int8_t* a, const float* act_scales, int64_t na,
                        const int8_t* b, const float* scales, float* o,
                        int64_t ldo, int64_t k, int64_t r0, int64_t r1) {
  MISSL_SIMD_DISPATCH(Int8DotDequantTile, a, act_scales, na, b, scales, o,
                      ldo, k, r0, r1);
}

#undef MISSL_SIMD_DISPATCH

}  // namespace missl::simd
