#include <cstring>

#include "obs/op_stats.h"
#include "runtime/parallel_for.h"
#include "tensor/ops.h"
#include "tensor/simd.h"

namespace missl {

using internal::AttachGrad;
using internal::MakeResult;

// The row kernel lives in tensor/simd.h (simd::GemmRows): C[i,:] += A[i,:]*B
// for output rows [r0, r1) with ascending-k accumulation per cell on every
// tier — ikj ordering keeps the inner loop contiguous, and each call writes
// only its own output rows, so row ranges parallelize without changing any
// result bit (see runtime/parallel_for.h).

Tensor MatMul(const Tensor& a, const Tensor& b) {
  MISSL_OP_SCOPE("MatMul");
  MISSL_CHECK_CONTIGUOUS(a);
  MISSL_CHECK_CONTIGUOUS(b);
  int64_t ra = a.dim(), rb = b.dim();
  MISSL_CHECK((ra == 2 && rb == 2) || (ra == 3 && rb == 3) || (ra == 3 && rb == 2))
      << "MatMul unsupported ranks " << ShapeToString(a.shape()) << " x "
      << ShapeToString(b.shape());
  int64_t batch = ra == 3 ? a.size(0) : 1;
  int64_t m = a.size(-2), k = a.size(-1);
  int64_t kb = b.size(-2), n = b.size(-1);
  MISSL_CHECK(k == kb) << "MatMul inner-dim mismatch " << ShapeToString(a.shape())
                       << " x " << ShapeToString(b.shape());
  if (ra == 3 && rb == 3) {
    MISSL_CHECK(a.size(0) == b.size(0)) << "batched MatMul batch mismatch";
  }
  Shape so = ra == 3 ? Shape{batch, m, n} : Shape{m, n};
  Tensor out = MakeResult(so);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  bool b_batched = (rb == 3);
  // Parallel over all batch*m output rows; each row is produced start to
  // finish by one chunk, so the partition cannot change the result. Rows
  // sharing a batch slab are handed to GemmRows as one range — the kernel
  // amortizes its B-tile packing over the whole range (see simd_avx2.cc),
  // and row grouping cannot change any bit because every output row is
  // computed independently.
  runtime::ParallelFor(
      0, batch * m, runtime::GrainForCost(2 * k * n),
      [&](int64_t r0, int64_t r1) {
        int64_t r = r0;
        while (r < r1) {
          int64_t s = r / m;
          int64_t end = (s + 1) * m < r1 ? (s + 1) * m : r1;
          simd::GemmRows(pa + s * m * k, pb + (b_batched ? s * k * n : 0),
                         po + s * m * n, k, n, r - s * m, end - s * m);
          r = end;
        }
      });
  AttachGrad(&out, {a, b},
             [a, b, out = TensorRef(out), batch, m, k, n, b_batched]() {
    const float* g = out.impl()->grad.data();
    const float* pa = a.data();
    const float* pb = b.data();
    if (a.requires_grad()) {
      a.impl()->EnsureGrad();
      float* ga = a.impl()->grad.data();
      // dA[i,kk] += sum_j g[i,j] * B[kk,j] — each dA row is owned by one
      // chunk, so rows parallelize with bitwise-stable results.
      runtime::ParallelFor(
          0, batch * m, runtime::GrainForCost(2 * k * n),
          [&](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
              int64_t s = r / m;
              const float* bs = pb + (b_batched ? s * k * n : 0);
              const float* grow = g + r * n;
              float* garow = ga + r * k;
              for (int64_t kk = 0; kk < k; ++kk) {
                const float* brow = bs + kk * n;
                float acc = 0.0f;
                for (int64_t j = 0; j < n; ++j) acc += grow[j] * brow[j];
                garow[kk] += acc;
              }
            }
          });
    }
    if (b.requires_grad()) {
      b.impl()->EnsureGrad();
      float* gb = b.impl()->grad.data();
      // dB[kk,j] += sum_i A[i,kk] * g[i,j]; when B is shared across the
      // batch, contributions also sum over s. Owner-computes over kk: the
      // chunk owning kk accumulates all of row kk's contributions in the
      // serial (s, i) order, so duplicate accumulation never races and the
      // sum order matches the serial path exactly.
      runtime::ParallelFor(
          0, k, runtime::GrainForCost(2 * batch * m * n),
          [&](int64_t k0, int64_t k1) {
            for (int64_t s = 0; s < batch; ++s) {
              const float* as = pa + s * m * k;
              const float* gs = g + s * m * n;
              float* gbs = gb + (b_batched ? s * k * n : 0);
              for (int64_t i = 0; i < m; ++i) {
                const float* arow = as + i * k;
                const float* grow = gs + i * n;
                for (int64_t kk = k0; kk < k1; ++kk) {
                  float av = arow[kk];
                  if (av == 0.0f) continue;
                  simd::AxpyRow(av, grow, gbs + kk * n, n);
                }
              }
            }
          });
    }
  });
  return out;
}

Tensor Transpose(const Tensor& a) {
  MISSL_OP_SCOPE("Transpose");
  int64_t r = a.dim();
  MISSL_CHECK(r == 2 || r == 3) << "Transpose supports rank 2/3, got "
                                << ShapeToString(a.shape());
  int64_t batch = r == 3 ? a.size(0) : 1;
  int64_t m = a.size(-2), n = a.size(-1);
  Shape so = r == 3 ? Shape{batch, n, m} : Shape{n, m};
  Tensor out = MakeResult(so);
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t s = 0; s < batch; ++s) {
    const float* as = pa + s * m * n;
    float* os = po + s * m * n;
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < n; ++j) os[j * m + i] = as[i * n + j];
  }
  AttachGrad(&out, {a}, [a, out = TensorRef(out), batch, m, n]() {
    const float* g = out.impl()->grad.data();
    a.impl()->EnsureGrad();
    float* ga = a.impl()->grad.data();
    for (int64_t s = 0; s < batch; ++s) {
      const float* gs = g + s * m * n;
      float* gas = ga + s * m * n;
      for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) gas[i * n + j] += gs[j * m + i];
    }
  });
  return out;
}

}  // namespace missl
