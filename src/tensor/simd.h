// SIMD kernel tier for the tensor hot paths (see docs/KERNELS.md).
//
// Every kernel here comes in (at least) two implementations — a portable
// scalar loop and an AVX2 vector path — selected once per process by
// runtime dispatch. The defining constraint, inherited from the parallel
// runtime (runtime/parallel_for.h): **tiers change wall clock, never
// numbers.** A vector path may only vectorize ACROSS independent output
// elements (matmul output columns, elementwise slots, softmax/layer-norm
// row entries); each output element's own chain of rounded operations —
// in particular the ascending-k accumulation order of a matmul cell —
// must be instruction-for-instruction the sequence the scalar loop
// performs. Concretely that means:
//   - multiply-then-add, never FMA: a fused multiply-add skips the
//     intermediate rounding of the product and would change low bits, so
//     the AVX2 translation unit is compiled without FMA codegen
//     (-ffp-contract=off and no -mfma) and uses mul/add intrinsics only;
//   - reductions keep the serial order: sums over k (matmul), over a row
//     (softmax's exp-sum, layer-norm's mean/variance) are NOT horizontally
//     vectorized — the vector tier accelerates the surrounding
//     elementwise work and leaves ordered reductions scalar;
//   - branch semantics are preserved exactly (e.g. the matmul zero-skip:
//     a == 0.0f contributes nothing on every tier).
// Under these rules scalar, AVX2, and threaded×AVX2 execution produce
// bitwise-identical tensors, which tests/kernel_property_test.cc enforces.
//
// Selection: the MISSL_SIMD environment variable ("off"/"0"/"scalar"
// forces the portable tier, "avx2" requests AVX2, unset/"auto"/"on"
// picks the best available), gated on the CMake option MISSL_SIMD (which
// compiles the AVX2 translation unit at all) and a CPUID check at
// startup. The resolved tier is published on the "simd.tier" obs gauge.
//
// Within the AVX2 tier, the integer int8 kernels additionally sub-dispatch
// to AVX-VNNI (vpdpbusd) when the CPU has it: one instruction replaces the
// sign-trick maddubs/madd pair and accumulates u8 x s8 quads into int32
// exactly — no int16 intermediate at all, so the result is the same exact
// integer sum and the sub-tier stays bitwise invisible. MISSL_SIMD_VNNI=off
// (or "0") disables it; the resolved state is on the "simd.vnni" gauge.
#ifndef MISSL_TENSOR_SIMD_H_
#define MISSL_TENSOR_SIMD_H_

#include <cstdint>

namespace missl::simd {

/// Kernel tiers, ordered by preference. Values are stable: they are what
/// the "simd.tier" gauge reports.
enum class Tier : int {
  kScalar = 0,  ///< portable loops; the reference semantics
  kAvx2 = 1,    ///< 8-wide AVX2, mul+add only (no FMA)
};

/// The tier kernels dispatch on. Resolved once from MISSL_SIMD + CPUID on
/// first use (thread-safe), then cached; SetTier overrides it.
Tier ActiveTier();

/// Overrides the active tier (tests/benches). CHECK-fails if `t` is not
/// available in this build/on this CPU. Re-publishes the "simd.tier" gauge.
void SetTier(Tier t);

/// True when the AVX2 tier was compiled in (CMake MISSL_SIMD=ON on x86-64)
/// and the running CPU supports it.
bool Avx2Available();

/// True when the AVX2 tier is available AND the CPU supports AVX-VNNI
/// (the 256-bit vpdpbusd extension; CPUID leaf 7.1 EAX bit 4).
bool AvxVnniAvailable();

/// True when the int8 kernels' AVX2 path will use vpdpbusd: available, not
/// disabled by MISSL_SIMD_VNNI=off, and not overridden by SetAvxVnni.
/// Resolved once on first use, then cached.
bool AvxVnniEnabled();

/// Overrides the VNNI sub-dispatch (tests/benches compare the maddubs and
/// vpdpbusd paths on the same machine). CHECK-fails if `on` but AVX-VNNI is
/// unavailable. Re-publishes the "simd.vnni" gauge.
void SetAvxVnni(bool on);

/// RAII VNNI override restoring the previous state on scope exit.
class ScopedAvxVnni {
 public:
  explicit ScopedAvxVnni(bool on);
  ~ScopedAvxVnni();
  ScopedAvxVnni(const ScopedAvxVnni&) = delete;
  ScopedAvxVnni& operator=(const ScopedAvxVnni&) = delete;

 private:
  bool prev_;
};

/// Human-readable tier name ("scalar", "avx2").
const char* TierName(Tier t);

/// RAII tier override restoring the previous tier on scope exit; used by
/// tests and benches to compare tiers on the same computation.
class ScopedTier {
 public:
  explicit ScopedTier(Tier t);
  ~ScopedTier();
  ScopedTier(const ScopedTier&) = delete;
  ScopedTier& operator=(const ScopedTier&) = delete;

 private:
  Tier prev_;
};

// ---- Kernels ----------------------------------------------------------------
// All pointers are to dense row-major float buffers (callers MISSL_CHECK
// tensor contiguity before handing out raw pointers). Unless noted, `o` may
// alias `a` (pure elementwise, in-place safe) but distinct inputs must not
// overlap outputs.

/// C[i,:] += A[i,:] * B for output rows i in [r0, r1) of one [m,k] x [k,n]
/// product. Each C cell accumulates over k in ascending order with a
/// rounded multiply then a rounded add per step, skipping a == 0.0f terms —
/// on every tier, so the result is bitwise tier-independent.
void GemmRows(const float* a, const float* b, float* c, int64_t k, int64_t n,
              int64_t r0, int64_t r1);

/// y[j] += s * x[j]. The matmul dB accumulation row.
void AxpyRow(float s, const float* x, float* y, int64_t n);

/// o[i] = a[i] + b[i] / a[i] - b[i] / a[i] * b[i] / a[i] / b[i].
void AddRow(const float* a, const float* b, float* o, int64_t n);
void SubRow(const float* a, const float* b, float* o, int64_t n);
void MulRow(const float* a, const float* b, float* o, int64_t n);
void DivRow(const float* a, const float* b, float* o, int64_t n);

/// o[i] = max(a[i], 0.0f), with scalar `x > 0 ? x : 0` semantics for
/// -0.0/NaN (both map to +0.0 on every tier).
void ReluRow(const float* a, float* o, int64_t n);

/// o[i] = a[i] * s  and  o[i] = a[i] + s.
void ScaleRow(const float* a, float s, float* o, int64_t n);
void AddScalarRow(const float* a, float s, float* o, int64_t n);

/// acc[i] += g[i]  and  acc[i] += (-1.0f) * g[i]  and  acc[i] += b[i] * g[i]
/// and  acc[i] += s * g[i]. The Add/Sub/Mul/scalar-op backward rows.
void AccumRow(const float* g, float* acc, int64_t n);
void NegAccumRow(const float* g, float* acc, int64_t n);
void MulAccumRow(const float* b, const float* g, float* acc, int64_t n);

/// xh[i] = (x[i] - mu) * is; y[i] = gamma[i] * xh[i] + beta[i].
/// The layer-norm normalize+affine pass (mean/variance stay scalar).
void LayerNormAffineRow(const float* x, float mu, float is, const float* gamma,
                        const float* beta, float* xh, float* y, int64_t n);

/// gx[i] += (gamma[i] * g[i] - m1 - xh[i] * m2) * is. The layer-norm input
/// gradient row (the m1/m2 means stay scalar).
void LayerNormGradRow(const float* g, const float* gamma, const float* xh,
                      float m1, float m2, float is, float* gx, int64_t n);

/// ga[i] += y[i] * (g[i] - dot). The softmax input gradient row (the dot
/// reduction stays scalar).
void SoftmaxGradRow(const float* y, const float* g, float dot, float* ga,
                    int64_t n);

/// o[r] = sum over i of int32(a[i]) * int32(b[r*k + i]) for rows r in
/// [r0, r1): one quantized activation row dotted against rows of a row-major
/// int8 matrix (the item-major quantized catalog). The contract is
/// quant::Int8DotRef (tensor/quant.h): a plain int32 sum of element
/// products. Integer accumulation is order-free, so every tier is bitwise
/// identical by arithmetic — stronger than the fp32 kernels' fixed-order
/// rule, and the AVX2 maddubs path may therefore re-block freely. Inputs
/// must be quantization codes in [-127, 127]; -128 would let a maddubs pair
/// sum saturate int16.
void Int8DotRows(const int8_t* a, const int8_t* b, int32_t* o, int64_t k,
                 int64_t r0, int64_t r1);

/// out[i] = (act_scale * scales[i]) * float(acc[i]) — the fp32 dequant
/// epilogue of the int8 catalog tier. Per element: one int32->fp32 convert
/// and two multiplies, each individually rounded in that fixed sequence; the
/// AVX2 path applies the identical sequence lane-wise (no FMA, no
/// reassociation), so the tiers agree bitwise.
void DequantRow(const int32_t* acc, float act_scale, const float* scales,
                float* out, int64_t n);

/// o[r] = (act_scale * scales[r]) * float(dot(a, b[r,:])) for rows r in
/// [r0, r1): Int8DotRows with the DequantRow epilogue fused per output. The
/// integer dot is exact on every tier and the dequant applies DequantRow's
/// per-element sequence (convert, two rounded multiplies, no FMA), so the
/// fused kernel is bitwise identical to the two-kernel composition — while
/// skipping the int32 scratch row's write+read round trip entirely.
void Int8DotDequantRows(const int8_t* a, float act_scale, const int8_t* b,
                        const float* scales, float* o, int64_t k, int64_t r0,
                        int64_t r1);

/// o[i*ldo + r] = (act_scales[i] * scales[r]) * float(dot(a[i,:], b[r,:]))
/// for activation rows i in [0, na) x catalog rows r in [r0, r1):
/// Int8DotDequantRows over a whole tile of activation rows. Semantically
/// exactly na independent calls of the row kernel — same exact integer dots,
/// same per-element dequant sequence, so bitwise identical on every tier.
/// The AVX2 path walks the catalog once per PAIR of activation rows (each
/// loaded catalog vector feeds two dot chains), halving the kernel's
/// dominant memory stream — the catalog re-read per activation row.
void Int8DotDequantTile(const int8_t* a, const float* act_scales, int64_t na,
                        const int8_t* b, const float* scales, float* o,
                        int64_t ldo, int64_t k, int64_t r0, int64_t r1);

}  // namespace missl::simd

#endif  // MISSL_TENSOR_SIMD_H_
