// AVX2 kernel tier. This is the only translation unit built with -mavx2,
// and it is built with -ffp-contract=off and WITHOUT -mfma: every multiply
// and every add below rounds separately, exactly like the scalar reference
// loops in simd.cc. Vector lanes hold independent output elements; no
// horizontal operations, no reassociated reductions, no FMA.
#ifdef MISSL_SIMD_AVX2

#include <immintrin.h>

#include <cstdint>

namespace missl::simd::avx2 {

namespace {

// ---- Aligned-load fast path -------------------------------------------------
//
// The pooled tensor allocator (tensor/alloc.h) guarantees every Storage
// buffer is 32-byte aligned, so in practice the row kernels below almost
// always see aligned base pointers and can use vmovaps instead of vmovups.
// Alignment is checked per invocation on the actual row pointers (ops hand
// kernels row offsets, and a row stride that is not a multiple of 8 floats
// breaks alignment mid-tensor), and the 8-float step preserves 32-byte
// alignment from one iteration to the next. The unaligned fallback is the
// exact same instruction sequence with vmovups — loads/stores carry no
// rounding, so both paths are bitwise identical (asserted by
// kernel_property_test.cc's pool-vs-system and alignment sweeps).

inline bool Aligned32(const void* p) {
  return (reinterpret_cast<uintptr_t>(p) & 31u) == 0;
}

template <bool kAligned>
inline __m256 Load(const float* p) {
  if constexpr (kAligned) {
    return _mm256_load_ps(p);
  } else {
    return _mm256_loadu_ps(p);
  }
}

template <bool kAligned>
inline void Store(float* p, __m256 v) {
  if constexpr (kAligned) {
    _mm256_store_ps(p, v);
  } else {
    _mm256_storeu_ps(p, v);
  }
}

// o[i] = a[i] OP b[i] for one row, 8 lanes at a time plus a scalar tail.
// The tail uses the same single rounded OP per element, so ragged widths
// (n % 8 != 0) stay bitwise identical to the scalar tier.
template <bool kA, typename VecOp, typename ScalarOp>
inline void BinaryRowImpl(const float* a, const float* b, float* o, int64_t n,
                          VecOp vop, ScalarOp sop) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 av = Load<kA>(a + i);
    __m256 bv = Load<kA>(b + i);
    Store<kA>(o + i, vop(av, bv));
  }
  for (; i < n; ++i) o[i] = sop(a[i], b[i]);
}

template <typename VecOp, typename ScalarOp>
inline void BinaryRow(const float* a, const float* b, float* o, int64_t n,
                      VecOp vop, ScalarOp sop) {
  if (Aligned32(a) && Aligned32(b) && Aligned32(o)) {
    BinaryRowImpl<true>(a, b, o, n, vop, sop);
  } else {
    BinaryRowImpl<false>(a, b, o, n, vop, sop);
  }
}

// crow[j:] += arow * B[:, j:] for one output row starting at column j,
// ascending-k accumulation per cell, zero-skip preserved: a 64-column
// register-blocked loop that keeps eight accumulators in ymm registers
// across the whole k loop (eight independent add chains hide the add
// latency and remove the C load/store per k step), a 32-column block, then
// an 8-wide loop, then a scalar tail. Every variant performs, per C cell
// and per k step, one rounded multiply followed by one rounded add in
// ascending k order — the scalar semantics exactly.
void GemmOneRow(const float* arow, const float* b, float* crow, int64_t k,
                int64_t n, int64_t j) {
  for (; j + 64 <= n; j += 64) {
    __m256 acc0 = _mm256_loadu_ps(crow + j);
    __m256 acc1 = _mm256_loadu_ps(crow + j + 8);
    __m256 acc2 = _mm256_loadu_ps(crow + j + 16);
    __m256 acc3 = _mm256_loadu_ps(crow + j + 24);
    __m256 acc4 = _mm256_loadu_ps(crow + j + 32);
    __m256 acc5 = _mm256_loadu_ps(crow + j + 40);
    __m256 acc6 = _mm256_loadu_ps(crow + j + 48);
    __m256 acc7 = _mm256_loadu_ps(crow + j + 56);
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n + j;
      __m256 avv = _mm256_set1_ps(av);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(avv, _mm256_loadu_ps(brow)));
      acc1 =
          _mm256_add_ps(acc1, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 8)));
      acc2 =
          _mm256_add_ps(acc2, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 16)));
      acc3 =
          _mm256_add_ps(acc3, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 24)));
      acc4 =
          _mm256_add_ps(acc4, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 32)));
      acc5 =
          _mm256_add_ps(acc5, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 40)));
      acc6 =
          _mm256_add_ps(acc6, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 48)));
      acc7 =
          _mm256_add_ps(acc7, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 56)));
    }
    _mm256_storeu_ps(crow + j, acc0);
    _mm256_storeu_ps(crow + j + 8, acc1);
    _mm256_storeu_ps(crow + j + 16, acc2);
    _mm256_storeu_ps(crow + j + 24, acc3);
    _mm256_storeu_ps(crow + j + 32, acc4);
    _mm256_storeu_ps(crow + j + 40, acc5);
    _mm256_storeu_ps(crow + j + 48, acc6);
    _mm256_storeu_ps(crow + j + 56, acc7);
  }
  for (; j + 32 <= n; j += 32) {
    __m256 acc0 = _mm256_loadu_ps(crow + j);
    __m256 acc1 = _mm256_loadu_ps(crow + j + 8);
    __m256 acc2 = _mm256_loadu_ps(crow + j + 16);
    __m256 acc3 = _mm256_loadu_ps(crow + j + 24);
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n + j;
      __m256 avv = _mm256_set1_ps(av);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(avv, _mm256_loadu_ps(brow)));
      acc1 =
          _mm256_add_ps(acc1, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 8)));
      acc2 =
          _mm256_add_ps(acc2, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 16)));
      acc3 =
          _mm256_add_ps(acc3, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 24)));
    }
    _mm256_storeu_ps(crow + j, acc0);
    _mm256_storeu_ps(crow + j + 8, acc1);
    _mm256_storeu_ps(crow + j + 16, acc2);
    _mm256_storeu_ps(crow + j + 24, acc3);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 acc = _mm256_loadu_ps(crow + j);
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      __m256 avv = _mm256_set1_ps(av);
      acc = _mm256_add_ps(
          acc, _mm256_mul_ps(avv, _mm256_loadu_ps(b + kk * n + j)));
    }
    _mm256_storeu_ps(crow + j, acc);
  }
  for (; j < n; ++j) {
    float acc = crow[j];
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      acc += av * b[kk * n + j];
    }
    crow[j] = acc;
  }
}

}  // namespace

// C[i,:] += A[i,:] * B for rows [r0, r1). Cache-aware traversal, not a
// different computation. The naive row-major loop re-streams all of B from
// L2 once per output row, and at power-of-two n the rows of a k x 32
// column strip of B are 4*n bytes apart — they alias onto a handful of L1
// sets and evict each other no matter how small the strip is. So the hot
// path packs each k-tile of the strip into a small contiguous stack buffer
// (a pure copy — bitwise-neutral) and then sweeps all output rows, in
// pairs, against that L1-resident tile; each loaded B vector feeds two
// output rows. Traversal order and copying are the only changes — every C
// cell still receives one rounded multiply followed by one rounded add per
// k step in ascending k order (k-tiles are visited in ascending order and
// accumulate into C), and the zero-skip is applied per row exactly as in
// the scalar tier, so results stay bitwise identical.
void GemmRows(const float* a, const float* b, float* c, int64_t k, int64_t n,
              int64_t r0, int64_t r1) {
  // 64 k-steps x 32 columns = 8 KiB: comfortably L1-resident alongside the
  // A and C lines the sweep touches.
  constexpr int64_t kKTile = 64;
  alignas(32) float pack[kKTile * 32];
  // Last row of an odd-sized range is swept unpaired against the same tile.
  const int64_t rows2 = r0 + ((r1 - r0) / 2) * 2;
  int64_t j = 0;
  for (; j + 32 <= n; j += 32) {
    for (int64_t kk0 = 0; kk0 < k; kk0 += kKTile) {
      const int64_t kt = kk0 + kKTile <= k ? kKTile : k - kk0;
      for (int64_t t = 0; t < kt; ++t) {
        const float* brow = b + (kk0 + t) * n + j;
        float* prow = pack + t * 32;
        _mm256_store_ps(prow, _mm256_loadu_ps(brow));
        _mm256_store_ps(prow + 8, _mm256_loadu_ps(brow + 8));
        _mm256_store_ps(prow + 16, _mm256_loadu_ps(brow + 16));
        _mm256_store_ps(prow + 24, _mm256_loadu_ps(brow + 24));
      }
      for (int64_t i = r0; i < rows2; i += 2) {
        const float* arow0 = a + i * k + kk0;
        const float* arow1 = arow0 + k;
        float* crow0 = c + i * n + j;
        float* crow1 = crow0 + n;
        __m256 p0 = _mm256_loadu_ps(crow0);
        __m256 p1 = _mm256_loadu_ps(crow0 + 8);
        __m256 p2 = _mm256_loadu_ps(crow0 + 16);
        __m256 p3 = _mm256_loadu_ps(crow0 + 24);
        __m256 q0 = _mm256_loadu_ps(crow1);
        __m256 q1 = _mm256_loadu_ps(crow1 + 8);
        __m256 q2 = _mm256_loadu_ps(crow1 + 16);
        __m256 q3 = _mm256_loadu_ps(crow1 + 24);
        for (int64_t t = 0; t < kt; ++t) {
          float av0 = arow0[t];
          float av1 = arow1[t];
          if (av0 == 0.0f && av1 == 0.0f) continue;
          const float* bp = pack + t * 32;
          __m256 b0 = _mm256_load_ps(bp);
          __m256 b1 = _mm256_load_ps(bp + 8);
          __m256 b2 = _mm256_load_ps(bp + 16);
          __m256 b3 = _mm256_load_ps(bp + 24);
          if (av0 != 0.0f) {
            __m256 avv = _mm256_set1_ps(av0);
            p0 = _mm256_add_ps(p0, _mm256_mul_ps(avv, b0));
            p1 = _mm256_add_ps(p1, _mm256_mul_ps(avv, b1));
            p2 = _mm256_add_ps(p2, _mm256_mul_ps(avv, b2));
            p3 = _mm256_add_ps(p3, _mm256_mul_ps(avv, b3));
          }
          if (av1 != 0.0f) {
            __m256 avv = _mm256_set1_ps(av1);
            q0 = _mm256_add_ps(q0, _mm256_mul_ps(avv, b0));
            q1 = _mm256_add_ps(q1, _mm256_mul_ps(avv, b1));
            q2 = _mm256_add_ps(q2, _mm256_mul_ps(avv, b2));
            q3 = _mm256_add_ps(q3, _mm256_mul_ps(avv, b3));
          }
        }
        _mm256_storeu_ps(crow0, p0);
        _mm256_storeu_ps(crow0 + 8, p1);
        _mm256_storeu_ps(crow0 + 16, p2);
        _mm256_storeu_ps(crow0 + 24, p3);
        _mm256_storeu_ps(crow1, q0);
        _mm256_storeu_ps(crow1 + 8, q1);
        _mm256_storeu_ps(crow1 + 16, q2);
        _mm256_storeu_ps(crow1 + 24, q3);
      }
      if (rows2 < r1) {
        const float* arow = a + rows2 * k + kk0;
        float* crow = c + rows2 * n + j;
        __m256 p0 = _mm256_loadu_ps(crow);
        __m256 p1 = _mm256_loadu_ps(crow + 8);
        __m256 p2 = _mm256_loadu_ps(crow + 16);
        __m256 p3 = _mm256_loadu_ps(crow + 24);
        for (int64_t t = 0; t < kt; ++t) {
          float av = arow[t];
          if (av == 0.0f) continue;
          const float* bp = pack + t * 32;
          __m256 avv = _mm256_set1_ps(av);
          p0 = _mm256_add_ps(p0, _mm256_mul_ps(avv, _mm256_load_ps(bp)));
          p1 = _mm256_add_ps(p1, _mm256_mul_ps(avv, _mm256_load_ps(bp + 8)));
          p2 = _mm256_add_ps(p2, _mm256_mul_ps(avv, _mm256_load_ps(bp + 16)));
          p3 = _mm256_add_ps(p3, _mm256_mul_ps(avv, _mm256_load_ps(bp + 24)));
        }
        _mm256_storeu_ps(crow, p0);
        _mm256_storeu_ps(crow + 8, p1);
        _mm256_storeu_ps(crow + 16, p2);
        _mm256_storeu_ps(crow + 24, p3);
      }
    }
  }
  if (j < n) {
    // Ragged column tail (< 32 columns), unpacked per row.
    for (int64_t i = r0; i < r1; ++i) {
      GemmOneRow(a + i * k, b, c + i * n, k, n, j);
    }
  }
}

namespace {
template <bool kA>
inline void AxpyRowImpl(float s, const float* x, float* y, int64_t n) {
  __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 yv = Load<kA>(y + i);
    yv = _mm256_add_ps(yv, _mm256_mul_ps(sv, Load<kA>(x + i)));
    Store<kA>(y + i, yv);
  }
  for (; i < n; ++i) y[i] += s * x[i];
}
}  // namespace

void AxpyRow(float s, const float* x, float* y, int64_t n) {
  if (Aligned32(x) && Aligned32(y)) {
    AxpyRowImpl<true>(s, x, y, n);
  } else {
    AxpyRowImpl<false>(s, x, y, n);
  }
}

void AddRow(const float* a, const float* b, float* o, int64_t n) {
  BinaryRow(
      a, b, o, n, [](__m256 x, __m256 y) { return _mm256_add_ps(x, y); },
      [](float x, float y) { return x + y; });
}

void SubRow(const float* a, const float* b, float* o, int64_t n) {
  BinaryRow(
      a, b, o, n, [](__m256 x, __m256 y) { return _mm256_sub_ps(x, y); },
      [](float x, float y) { return x - y; });
}

void MulRow(const float* a, const float* b, float* o, int64_t n) {
  BinaryRow(
      a, b, o, n, [](__m256 x, __m256 y) { return _mm256_mul_ps(x, y); },
      [](float x, float y) { return x * y; });
}

void DivRow(const float* a, const float* b, float* o, int64_t n) {
  BinaryRow(
      a, b, o, n, [](__m256 x, __m256 y) { return _mm256_div_ps(x, y); },
      [](float x, float y) { return x / y; });
}

// max(a, 0.0f) with the second operand as the max "fallback" matches the
// scalar `a > 0 ? a : 0` exactly: vmaxps returns the SECOND operand when
// either input is NaN or when comparing -0.0 vs +0.0, so NaN -> 0.0f and
// -0.0f -> +0.0f on both tiers.
namespace {
template <bool kA>
inline void ReluRowImpl(const float* a, float* o, int64_t n) {
  __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Store<kA>(o + i, _mm256_max_ps(Load<kA>(a + i), zero));
  }
  for (; i < n; ++i) o[i] = a[i] > 0.0f ? a[i] : 0.0f;
}
}  // namespace

void ReluRow(const float* a, float* o, int64_t n) {
  if (Aligned32(a) && Aligned32(o)) {
    ReluRowImpl<true>(a, o, n);
  } else {
    ReluRowImpl<false>(a, o, n);
  }
}

namespace {
template <bool kA>
inline void ScaleRowImpl(const float* a, float s, float* o, int64_t n) {
  __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Store<kA>(o + i, _mm256_mul_ps(Load<kA>(a + i), sv));
  }
  for (; i < n; ++i) o[i] = a[i] * s;
}
}  // namespace

void ScaleRow(const float* a, float s, float* o, int64_t n) {
  if (Aligned32(a) && Aligned32(o)) {
    ScaleRowImpl<true>(a, s, o, n);
  } else {
    ScaleRowImpl<false>(a, s, o, n);
  }
}

namespace {
template <bool kA>
inline void AddScalarRowImpl(const float* a, float s, float* o, int64_t n) {
  __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Store<kA>(o + i, _mm256_add_ps(Load<kA>(a + i), sv));
  }
  for (; i < n; ++i) o[i] = a[i] + s;
}
}  // namespace

void AddScalarRow(const float* a, float s, float* o, int64_t n) {
  if (Aligned32(a) && Aligned32(o)) {
    AddScalarRowImpl<true>(a, s, o, n);
  } else {
    AddScalarRowImpl<false>(a, s, o, n);
  }
}

namespace {
template <bool kA>
inline void AccumRowImpl(const float* g, float* acc, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 av = Load<kA>(acc + i);
    Store<kA>(acc + i, _mm256_add_ps(av, Load<kA>(g + i)));
  }
  for (; i < n; ++i) acc[i] += g[i];
}
}  // namespace

void AccumRow(const float* g, float* acc, int64_t n) {
  if (Aligned32(g) && Aligned32(acc)) {
    AccumRowImpl<true>(g, acc, n);
  } else {
    AccumRowImpl<false>(g, acc, n);
  }
}

// acc[i] += (-1.0f) * g[i], keeping the scalar's explicit rounded multiply
// (NOT a subtract: -1*g and acc-g differ in sign for g == 0 edge cases of
// the intermediate, so we replay the same instruction sequence).
namespace {
template <bool kA>
inline void NegAccumRowImpl(const float* g, float* acc, int64_t n) {
  __m256 neg1 = _mm256_set1_ps(-1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 av = Load<kA>(acc + i);
    av = _mm256_add_ps(av, _mm256_mul_ps(neg1, Load<kA>(g + i)));
    Store<kA>(acc + i, av);
  }
  for (; i < n; ++i) acc[i] += -1.0f * g[i];
}
}  // namespace

void NegAccumRow(const float* g, float* acc, int64_t n) {
  if (Aligned32(g) && Aligned32(acc)) {
    NegAccumRowImpl<true>(g, acc, n);
  } else {
    NegAccumRowImpl<false>(g, acc, n);
  }
}

namespace {
template <bool kA>
inline void MulAccumRowImpl(const float* b, const float* g, float* acc,
                            int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 av = Load<kA>(acc + i);
    av = _mm256_add_ps(av, _mm256_mul_ps(Load<kA>(b + i), Load<kA>(g + i)));
    Store<kA>(acc + i, av);
  }
  for (; i < n; ++i) acc[i] += b[i] * g[i];
}
}  // namespace

void MulAccumRow(const float* b, const float* g, float* acc, int64_t n) {
  if (Aligned32(b) && Aligned32(g) && Aligned32(acc)) {
    MulAccumRowImpl<true>(b, g, acc, n);
  } else {
    MulAccumRowImpl<false>(b, g, acc, n);
  }
}

namespace {
template <bool kA>
inline void LayerNormAffineRowImpl(const float* x, float mu, float is,
                                   const float* gamma, const float* beta,
                                   float* xh, float* y, int64_t n) {
  __m256 muv = _mm256_set1_ps(mu);
  __m256 isv = _mm256_set1_ps(is);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 xv = Load<kA>(x + i);
    __m256 xhv = _mm256_mul_ps(_mm256_sub_ps(xv, muv), isv);
    Store<kA>(xh + i, xhv);
    __m256 yv =
        _mm256_add_ps(_mm256_mul_ps(Load<kA>(gamma + i), xhv),
                      Load<kA>(beta + i));
    Store<kA>(y + i, yv);
  }
  for (; i < n; ++i) {
    xh[i] = (x[i] - mu) * is;
    y[i] = gamma[i] * xh[i] + beta[i];
  }
}
}  // namespace

void LayerNormAffineRow(const float* x, float mu, float is, const float* gamma,
                        const float* beta, float* xh, float* y, int64_t n) {
  if (Aligned32(x) && Aligned32(gamma) && Aligned32(beta) && Aligned32(xh) &&
      Aligned32(y)) {
    LayerNormAffineRowImpl<true>(x, mu, is, gamma, beta, xh, y, n);
  } else {
    LayerNormAffineRowImpl<false>(x, mu, is, gamma, beta, xh, y, n);
  }
}

namespace {
template <bool kA>
inline void LayerNormGradRowImpl(const float* g, const float* gamma,
                                 const float* xh, float m1, float m2, float is,
                                 float* gx, int64_t n) {
  __m256 m1v = _mm256_set1_ps(m1);
  __m256 m2v = _mm256_set1_ps(m2);
  __m256 isv = _mm256_set1_ps(is);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 gg = _mm256_mul_ps(Load<kA>(gamma + i), Load<kA>(g + i));
    __m256 t = _mm256_sub_ps(_mm256_sub_ps(gg, m1v),
                             _mm256_mul_ps(Load<kA>(xh + i), m2v));
    __m256 gxv = _mm256_add_ps(Load<kA>(gx + i), _mm256_mul_ps(t, isv));
    Store<kA>(gx + i, gxv);
  }
  for (; i < n; ++i) {
    float gg = gamma[i] * g[i];
    gx[i] += (gg - m1 - xh[i] * m2) * is;
  }
}
}  // namespace

void LayerNormGradRow(const float* g, const float* gamma, const float* xh,
                      float m1, float m2, float is, float* gx, int64_t n) {
  if (Aligned32(g) && Aligned32(gamma) && Aligned32(xh) && Aligned32(gx)) {
    LayerNormGradRowImpl<true>(g, gamma, xh, m1, m2, is, gx, n);
  } else {
    LayerNormGradRowImpl<false>(g, gamma, xh, m1, m2, is, gx, n);
  }
}

namespace {
template <bool kA>
inline void SoftmaxGradRowImpl(const float* y, const float* g, float dot,
                               float* ga, int64_t n) {
  __m256 dotv = _mm256_set1_ps(dot);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 t =
        _mm256_mul_ps(Load<kA>(y + i), _mm256_sub_ps(Load<kA>(g + i), dotv));
    Store<kA>(ga + i, _mm256_add_ps(Load<kA>(ga + i), t));
  }
  for (; i < n; ++i) ga[i] += y[i] * (g[i] - dot);
}
}  // namespace

void SoftmaxGradRow(const float* y, const float* g, float dot, float* ga,
                    int64_t n) {
  if (Aligned32(y) && Aligned32(g) && Aligned32(ga)) {
    SoftmaxGradRowImpl<true>(y, g, dot, ga, n);
  } else {
    SoftmaxGradRowImpl<false>(y, g, dot, ga, n);
  }
}

}  // namespace missl::simd::avx2

#endif  // MISSL_SIMD_AVX2
