// AVX2 kernel tier. This is the only translation unit built with -mavx2,
// and it is built with -ffp-contract=off and WITHOUT -mfma: every multiply
// and every add below rounds separately, exactly like the scalar reference
// loops in simd.cc. Vector lanes hold independent output elements; no
// horizontal operations, no reassociated reductions, no FMA.
#ifdef MISSL_SIMD_AVX2

#include <immintrin.h>

#include <cstdint>

#include "tensor/simd.h"

namespace missl::simd::avx2 {

namespace {

// ---- Aligned-load fast path -------------------------------------------------
//
// The pooled tensor allocator (tensor/alloc.h) guarantees every Storage
// buffer is 32-byte aligned, so in practice the row kernels below almost
// always see aligned base pointers and can use vmovaps instead of vmovups.
// Alignment is checked per invocation on the actual row pointers (ops hand
// kernels row offsets, and a row stride that is not a multiple of 8 floats
// breaks alignment mid-tensor), and the 8-float step preserves 32-byte
// alignment from one iteration to the next. The unaligned fallback is the
// exact same instruction sequence with vmovups — loads/stores carry no
// rounding, so both paths are bitwise identical (asserted by
// kernel_property_test.cc's pool-vs-system and alignment sweeps).

inline bool Aligned32(const void* p) {
  return (reinterpret_cast<uintptr_t>(p) & 31u) == 0;
}

template <bool kAligned>
inline __m256 Load(const float* p) {
  if constexpr (kAligned) {
    return _mm256_load_ps(p);
  } else {
    return _mm256_loadu_ps(p);
  }
}

template <bool kAligned>
inline void Store(float* p, __m256 v) {
  if constexpr (kAligned) {
    _mm256_store_ps(p, v);
  } else {
    _mm256_storeu_ps(p, v);
  }
}

// o[i] = a[i] OP b[i] for one row, 8 lanes at a time plus a scalar tail.
// The tail uses the same single rounded OP per element, so ragged widths
// (n % 8 != 0) stay bitwise identical to the scalar tier.
template <bool kA, typename VecOp, typename ScalarOp>
inline void BinaryRowImpl(const float* a, const float* b, float* o, int64_t n,
                          VecOp vop, ScalarOp sop) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 av = Load<kA>(a + i);
    __m256 bv = Load<kA>(b + i);
    Store<kA>(o + i, vop(av, bv));
  }
  for (; i < n; ++i) o[i] = sop(a[i], b[i]);
}

template <typename VecOp, typename ScalarOp>
inline void BinaryRow(const float* a, const float* b, float* o, int64_t n,
                      VecOp vop, ScalarOp sop) {
  if (Aligned32(a) && Aligned32(b) && Aligned32(o)) {
    BinaryRowImpl<true>(a, b, o, n, vop, sop);
  } else {
    BinaryRowImpl<false>(a, b, o, n, vop, sop);
  }
}

// crow[j:] += arow * B[:, j:] for one output row starting at column j,
// ascending-k accumulation per cell, zero-skip preserved: a 64-column
// register-blocked loop that keeps eight accumulators in ymm registers
// across the whole k loop (eight independent add chains hide the add
// latency and remove the C load/store per k step), a 32-column block, then
// an 8-wide loop, then a scalar tail. Every variant performs, per C cell
// and per k step, one rounded multiply followed by one rounded add in
// ascending k order — the scalar semantics exactly.
void GemmOneRow(const float* arow, const float* b, float* crow, int64_t k,
                int64_t n, int64_t j) {
  for (; j + 64 <= n; j += 64) {
    __m256 acc0 = _mm256_loadu_ps(crow + j);
    __m256 acc1 = _mm256_loadu_ps(crow + j + 8);
    __m256 acc2 = _mm256_loadu_ps(crow + j + 16);
    __m256 acc3 = _mm256_loadu_ps(crow + j + 24);
    __m256 acc4 = _mm256_loadu_ps(crow + j + 32);
    __m256 acc5 = _mm256_loadu_ps(crow + j + 40);
    __m256 acc6 = _mm256_loadu_ps(crow + j + 48);
    __m256 acc7 = _mm256_loadu_ps(crow + j + 56);
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n + j;
      __m256 avv = _mm256_set1_ps(av);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(avv, _mm256_loadu_ps(brow)));
      acc1 =
          _mm256_add_ps(acc1, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 8)));
      acc2 =
          _mm256_add_ps(acc2, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 16)));
      acc3 =
          _mm256_add_ps(acc3, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 24)));
      acc4 =
          _mm256_add_ps(acc4, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 32)));
      acc5 =
          _mm256_add_ps(acc5, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 40)));
      acc6 =
          _mm256_add_ps(acc6, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 48)));
      acc7 =
          _mm256_add_ps(acc7, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 56)));
    }
    _mm256_storeu_ps(crow + j, acc0);
    _mm256_storeu_ps(crow + j + 8, acc1);
    _mm256_storeu_ps(crow + j + 16, acc2);
    _mm256_storeu_ps(crow + j + 24, acc3);
    _mm256_storeu_ps(crow + j + 32, acc4);
    _mm256_storeu_ps(crow + j + 40, acc5);
    _mm256_storeu_ps(crow + j + 48, acc6);
    _mm256_storeu_ps(crow + j + 56, acc7);
  }
  for (; j + 32 <= n; j += 32) {
    __m256 acc0 = _mm256_loadu_ps(crow + j);
    __m256 acc1 = _mm256_loadu_ps(crow + j + 8);
    __m256 acc2 = _mm256_loadu_ps(crow + j + 16);
    __m256 acc3 = _mm256_loadu_ps(crow + j + 24);
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n + j;
      __m256 avv = _mm256_set1_ps(av);
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(avv, _mm256_loadu_ps(brow)));
      acc1 =
          _mm256_add_ps(acc1, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 8)));
      acc2 =
          _mm256_add_ps(acc2, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 16)));
      acc3 =
          _mm256_add_ps(acc3, _mm256_mul_ps(avv, _mm256_loadu_ps(brow + 24)));
    }
    _mm256_storeu_ps(crow + j, acc0);
    _mm256_storeu_ps(crow + j + 8, acc1);
    _mm256_storeu_ps(crow + j + 16, acc2);
    _mm256_storeu_ps(crow + j + 24, acc3);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 acc = _mm256_loadu_ps(crow + j);
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      __m256 avv = _mm256_set1_ps(av);
      acc = _mm256_add_ps(
          acc, _mm256_mul_ps(avv, _mm256_loadu_ps(b + kk * n + j)));
    }
    _mm256_storeu_ps(crow + j, acc);
  }
  for (; j < n; ++j) {
    float acc = crow[j];
    for (int64_t kk = 0; kk < k; ++kk) {
      float av = arow[kk];
      if (av == 0.0f) continue;
      acc += av * b[kk * n + j];
    }
    crow[j] = acc;
  }
}

}  // namespace

// C[i,:] += A[i,:] * B for rows [r0, r1). Cache-aware traversal, not a
// different computation. The naive row-major loop re-streams all of B from
// L2 once per output row, and at power-of-two n the rows of a k x 32
// column strip of B are 4*n bytes apart — they alias onto a handful of L1
// sets and evict each other no matter how small the strip is. So the hot
// path packs each k-tile of the strip into a small contiguous stack buffer
// (a pure copy — bitwise-neutral) and then sweeps all output rows, in
// pairs, against that L1-resident tile; each loaded B vector feeds two
// output rows. Traversal order and copying are the only changes — every C
// cell still receives one rounded multiply followed by one rounded add per
// k step in ascending k order (k-tiles are visited in ascending order and
// accumulate into C), and the zero-skip is applied per row exactly as in
// the scalar tier, so results stay bitwise identical.
void GemmRows(const float* a, const float* b, float* c, int64_t k, int64_t n,
              int64_t r0, int64_t r1) {
  // 64 k-steps x 32 columns = 8 KiB: comfortably L1-resident alongside the
  // A and C lines the sweep touches.
  constexpr int64_t kKTile = 64;
  alignas(32) float pack[kKTile * 32];
  // Last row of an odd-sized range is swept unpaired against the same tile.
  const int64_t rows2 = r0 + ((r1 - r0) / 2) * 2;
  int64_t j = 0;
  for (; j + 32 <= n; j += 32) {
    for (int64_t kk0 = 0; kk0 < k; kk0 += kKTile) {
      const int64_t kt = kk0 + kKTile <= k ? kKTile : k - kk0;
      for (int64_t t = 0; t < kt; ++t) {
        const float* brow = b + (kk0 + t) * n + j;
        float* prow = pack + t * 32;
        _mm256_store_ps(prow, _mm256_loadu_ps(brow));
        _mm256_store_ps(prow + 8, _mm256_loadu_ps(brow + 8));
        _mm256_store_ps(prow + 16, _mm256_loadu_ps(brow + 16));
        _mm256_store_ps(prow + 24, _mm256_loadu_ps(brow + 24));
      }
      for (int64_t i = r0; i < rows2; i += 2) {
        const float* arow0 = a + i * k + kk0;
        const float* arow1 = arow0 + k;
        float* crow0 = c + i * n + j;
        float* crow1 = crow0 + n;
        __m256 p0 = _mm256_loadu_ps(crow0);
        __m256 p1 = _mm256_loadu_ps(crow0 + 8);
        __m256 p2 = _mm256_loadu_ps(crow0 + 16);
        __m256 p3 = _mm256_loadu_ps(crow0 + 24);
        __m256 q0 = _mm256_loadu_ps(crow1);
        __m256 q1 = _mm256_loadu_ps(crow1 + 8);
        __m256 q2 = _mm256_loadu_ps(crow1 + 16);
        __m256 q3 = _mm256_loadu_ps(crow1 + 24);
        for (int64_t t = 0; t < kt; ++t) {
          float av0 = arow0[t];
          float av1 = arow1[t];
          if (av0 == 0.0f && av1 == 0.0f) continue;
          const float* bp = pack + t * 32;
          __m256 b0 = _mm256_load_ps(bp);
          __m256 b1 = _mm256_load_ps(bp + 8);
          __m256 b2 = _mm256_load_ps(bp + 16);
          __m256 b3 = _mm256_load_ps(bp + 24);
          if (av0 != 0.0f) {
            __m256 avv = _mm256_set1_ps(av0);
            p0 = _mm256_add_ps(p0, _mm256_mul_ps(avv, b0));
            p1 = _mm256_add_ps(p1, _mm256_mul_ps(avv, b1));
            p2 = _mm256_add_ps(p2, _mm256_mul_ps(avv, b2));
            p3 = _mm256_add_ps(p3, _mm256_mul_ps(avv, b3));
          }
          if (av1 != 0.0f) {
            __m256 avv = _mm256_set1_ps(av1);
            q0 = _mm256_add_ps(q0, _mm256_mul_ps(avv, b0));
            q1 = _mm256_add_ps(q1, _mm256_mul_ps(avv, b1));
            q2 = _mm256_add_ps(q2, _mm256_mul_ps(avv, b2));
            q3 = _mm256_add_ps(q3, _mm256_mul_ps(avv, b3));
          }
        }
        _mm256_storeu_ps(crow0, p0);
        _mm256_storeu_ps(crow0 + 8, p1);
        _mm256_storeu_ps(crow0 + 16, p2);
        _mm256_storeu_ps(crow0 + 24, p3);
        _mm256_storeu_ps(crow1, q0);
        _mm256_storeu_ps(crow1 + 8, q1);
        _mm256_storeu_ps(crow1 + 16, q2);
        _mm256_storeu_ps(crow1 + 24, q3);
      }
      if (rows2 < r1) {
        const float* arow = a + rows2 * k + kk0;
        float* crow = c + rows2 * n + j;
        __m256 p0 = _mm256_loadu_ps(crow);
        __m256 p1 = _mm256_loadu_ps(crow + 8);
        __m256 p2 = _mm256_loadu_ps(crow + 16);
        __m256 p3 = _mm256_loadu_ps(crow + 24);
        for (int64_t t = 0; t < kt; ++t) {
          float av = arow[t];
          if (av == 0.0f) continue;
          const float* bp = pack + t * 32;
          __m256 avv = _mm256_set1_ps(av);
          p0 = _mm256_add_ps(p0, _mm256_mul_ps(avv, _mm256_load_ps(bp)));
          p1 = _mm256_add_ps(p1, _mm256_mul_ps(avv, _mm256_load_ps(bp + 8)));
          p2 = _mm256_add_ps(p2, _mm256_mul_ps(avv, _mm256_load_ps(bp + 16)));
          p3 = _mm256_add_ps(p3, _mm256_mul_ps(avv, _mm256_load_ps(bp + 24)));
        }
        _mm256_storeu_ps(crow, p0);
        _mm256_storeu_ps(crow + 8, p1);
        _mm256_storeu_ps(crow + 16, p2);
        _mm256_storeu_ps(crow + 24, p3);
      }
    }
  }
  if (j < n) {
    // Ragged column tail (< 32 columns), unpacked per row.
    for (int64_t i = r0; i < r1; ++i) {
      GemmOneRow(a + i * k, b, c + i * n, k, n, j);
    }
  }
}

namespace {
template <bool kA>
inline void AxpyRowImpl(float s, const float* x, float* y, int64_t n) {
  __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 yv = Load<kA>(y + i);
    yv = _mm256_add_ps(yv, _mm256_mul_ps(sv, Load<kA>(x + i)));
    Store<kA>(y + i, yv);
  }
  for (; i < n; ++i) y[i] += s * x[i];
}
}  // namespace

void AxpyRow(float s, const float* x, float* y, int64_t n) {
  if (Aligned32(x) && Aligned32(y)) {
    AxpyRowImpl<true>(s, x, y, n);
  } else {
    AxpyRowImpl<false>(s, x, y, n);
  }
}

void AddRow(const float* a, const float* b, float* o, int64_t n) {
  BinaryRow(
      a, b, o, n, [](__m256 x, __m256 y) { return _mm256_add_ps(x, y); },
      [](float x, float y) { return x + y; });
}

void SubRow(const float* a, const float* b, float* o, int64_t n) {
  BinaryRow(
      a, b, o, n, [](__m256 x, __m256 y) { return _mm256_sub_ps(x, y); },
      [](float x, float y) { return x - y; });
}

void MulRow(const float* a, const float* b, float* o, int64_t n) {
  BinaryRow(
      a, b, o, n, [](__m256 x, __m256 y) { return _mm256_mul_ps(x, y); },
      [](float x, float y) { return x * y; });
}

void DivRow(const float* a, const float* b, float* o, int64_t n) {
  BinaryRow(
      a, b, o, n, [](__m256 x, __m256 y) { return _mm256_div_ps(x, y); },
      [](float x, float y) { return x / y; });
}

// max(a, 0.0f) with the second operand as the max "fallback" matches the
// scalar `a > 0 ? a : 0` exactly: vmaxps returns the SECOND operand when
// either input is NaN or when comparing -0.0 vs +0.0, so NaN -> 0.0f and
// -0.0f -> +0.0f on both tiers.
namespace {
template <bool kA>
inline void ReluRowImpl(const float* a, float* o, int64_t n) {
  __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Store<kA>(o + i, _mm256_max_ps(Load<kA>(a + i), zero));
  }
  for (; i < n; ++i) o[i] = a[i] > 0.0f ? a[i] : 0.0f;
}
}  // namespace

void ReluRow(const float* a, float* o, int64_t n) {
  if (Aligned32(a) && Aligned32(o)) {
    ReluRowImpl<true>(a, o, n);
  } else {
    ReluRowImpl<false>(a, o, n);
  }
}

namespace {
template <bool kA>
inline void ScaleRowImpl(const float* a, float s, float* o, int64_t n) {
  __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Store<kA>(o + i, _mm256_mul_ps(Load<kA>(a + i), sv));
  }
  for (; i < n; ++i) o[i] = a[i] * s;
}
}  // namespace

void ScaleRow(const float* a, float s, float* o, int64_t n) {
  if (Aligned32(a) && Aligned32(o)) {
    ScaleRowImpl<true>(a, s, o, n);
  } else {
    ScaleRowImpl<false>(a, s, o, n);
  }
}

namespace {
template <bool kA>
inline void AddScalarRowImpl(const float* a, float s, float* o, int64_t n) {
  __m256 sv = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    Store<kA>(o + i, _mm256_add_ps(Load<kA>(a + i), sv));
  }
  for (; i < n; ++i) o[i] = a[i] + s;
}
}  // namespace

void AddScalarRow(const float* a, float s, float* o, int64_t n) {
  if (Aligned32(a) && Aligned32(o)) {
    AddScalarRowImpl<true>(a, s, o, n);
  } else {
    AddScalarRowImpl<false>(a, s, o, n);
  }
}

namespace {
template <bool kA>
inline void AccumRowImpl(const float* g, float* acc, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 av = Load<kA>(acc + i);
    Store<kA>(acc + i, _mm256_add_ps(av, Load<kA>(g + i)));
  }
  for (; i < n; ++i) acc[i] += g[i];
}
}  // namespace

void AccumRow(const float* g, float* acc, int64_t n) {
  if (Aligned32(g) && Aligned32(acc)) {
    AccumRowImpl<true>(g, acc, n);
  } else {
    AccumRowImpl<false>(g, acc, n);
  }
}

// acc[i] += (-1.0f) * g[i], keeping the scalar's explicit rounded multiply
// (NOT a subtract: -1*g and acc-g differ in sign for g == 0 edge cases of
// the intermediate, so we replay the same instruction sequence).
namespace {
template <bool kA>
inline void NegAccumRowImpl(const float* g, float* acc, int64_t n) {
  __m256 neg1 = _mm256_set1_ps(-1.0f);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 av = Load<kA>(acc + i);
    av = _mm256_add_ps(av, _mm256_mul_ps(neg1, Load<kA>(g + i)));
    Store<kA>(acc + i, av);
  }
  for (; i < n; ++i) acc[i] += -1.0f * g[i];
}
}  // namespace

void NegAccumRow(const float* g, float* acc, int64_t n) {
  if (Aligned32(g) && Aligned32(acc)) {
    NegAccumRowImpl<true>(g, acc, n);
  } else {
    NegAccumRowImpl<false>(g, acc, n);
  }
}

namespace {
template <bool kA>
inline void MulAccumRowImpl(const float* b, const float* g, float* acc,
                            int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 av = Load<kA>(acc + i);
    av = _mm256_add_ps(av, _mm256_mul_ps(Load<kA>(b + i), Load<kA>(g + i)));
    Store<kA>(acc + i, av);
  }
  for (; i < n; ++i) acc[i] += b[i] * g[i];
}
}  // namespace

void MulAccumRow(const float* b, const float* g, float* acc, int64_t n) {
  if (Aligned32(b) && Aligned32(g) && Aligned32(acc)) {
    MulAccumRowImpl<true>(b, g, acc, n);
  } else {
    MulAccumRowImpl<false>(b, g, acc, n);
  }
}

namespace {
template <bool kA>
inline void LayerNormAffineRowImpl(const float* x, float mu, float is,
                                   const float* gamma, const float* beta,
                                   float* xh, float* y, int64_t n) {
  __m256 muv = _mm256_set1_ps(mu);
  __m256 isv = _mm256_set1_ps(is);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 xv = Load<kA>(x + i);
    __m256 xhv = _mm256_mul_ps(_mm256_sub_ps(xv, muv), isv);
    Store<kA>(xh + i, xhv);
    __m256 yv =
        _mm256_add_ps(_mm256_mul_ps(Load<kA>(gamma + i), xhv),
                      Load<kA>(beta + i));
    Store<kA>(y + i, yv);
  }
  for (; i < n; ++i) {
    xh[i] = (x[i] - mu) * is;
    y[i] = gamma[i] * xh[i] + beta[i];
  }
}
}  // namespace

void LayerNormAffineRow(const float* x, float mu, float is, const float* gamma,
                        const float* beta, float* xh, float* y, int64_t n) {
  if (Aligned32(x) && Aligned32(gamma) && Aligned32(beta) && Aligned32(xh) &&
      Aligned32(y)) {
    LayerNormAffineRowImpl<true>(x, mu, is, gamma, beta, xh, y, n);
  } else {
    LayerNormAffineRowImpl<false>(x, mu, is, gamma, beta, xh, y, n);
  }
}

namespace {
template <bool kA>
inline void LayerNormGradRowImpl(const float* g, const float* gamma,
                                 const float* xh, float m1, float m2, float is,
                                 float* gx, int64_t n) {
  __m256 m1v = _mm256_set1_ps(m1);
  __m256 m2v = _mm256_set1_ps(m2);
  __m256 isv = _mm256_set1_ps(is);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 gg = _mm256_mul_ps(Load<kA>(gamma + i), Load<kA>(g + i));
    __m256 t = _mm256_sub_ps(_mm256_sub_ps(gg, m1v),
                             _mm256_mul_ps(Load<kA>(xh + i), m2v));
    __m256 gxv = _mm256_add_ps(Load<kA>(gx + i), _mm256_mul_ps(t, isv));
    Store<kA>(gx + i, gxv);
  }
  for (; i < n; ++i) {
    float gg = gamma[i] * g[i];
    gx[i] += (gg - m1 - xh[i] * m2) * is;
  }
}
}  // namespace

void LayerNormGradRow(const float* g, const float* gamma, const float* xh,
                      float m1, float m2, float is, float* gx, int64_t n) {
  if (Aligned32(g) && Aligned32(gamma) && Aligned32(xh) && Aligned32(gx)) {
    LayerNormGradRowImpl<true>(g, gamma, xh, m1, m2, is, gx, n);
  } else {
    LayerNormGradRowImpl<false>(g, gamma, xh, m1, m2, is, gx, n);
  }
}

namespace {
template <bool kA>
inline void SoftmaxGradRowImpl(const float* y, const float* g, float dot,
                               float* ga, int64_t n) {
  __m256 dotv = _mm256_set1_ps(dot);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 t =
        _mm256_mul_ps(Load<kA>(y + i), _mm256_sub_ps(Load<kA>(g + i), dotv));
    Store<kA>(ga + i, _mm256_add_ps(Load<kA>(ga + i), t));
  }
  for (; i < n; ++i) ga[i] += y[i] * (g[i] - dot);
}
}  // namespace

void SoftmaxGradRow(const float* y, const float* g, float dot, float* ga,
                    int64_t n) {
  if (Aligned32(y) && Aligned32(g) && Aligned32(ga)) {
    SoftmaxGradRowImpl<true>(y, g, dot, ga, n);
  } else {
    SoftmaxGradRowImpl<false>(y, g, dot, ga, n);
  }
}

// ---- Int8 catalog tier ------------------------------------------------------
//
// Unlike the float kernels above, the int8 dot is free to re-block: the
// contract (quant::Int8DotRef) is an int32 sum of int32 products, and
// integer addition is associative, so maddubs pair sums, 32-lane partials
// and the final horizontal reduction all land on exactly the scalar result.
// The signed x signed product runs through the classic sign trick —
// maddubs multiplies u8 x s8, so feed it |a| and b*sign(a). Codes are
// clamped to [-127, 127] at quantization time (tensor/quant.cc), which
// bounds every maddubs pair sum by 2 * 127 * 127 = 32258 < 2^15: the
// intermediate int16 never saturates and the pair sums are exact.
//
// Structure note: the hot shapes (k = 32 and k = 64, the embedding dims the
// serving stack ships) get their own branch-free template instantiations.
// A single generic loop with a runtime block count looks tidier but makes
// GCC merge all paths into one allocation region and bounce every catalog
// load off a stack slot — measured ~2x slower than the fixed-shape loops.

namespace {

// 32 int8 lanes of a * b, pair-summed into 8 exact int32 lanes. `ua` must be
// |va| (hoisted by the caller — it only depends on the activation row).
inline __m256i Int8DotStep(__m256i va, __m256i ua, __m256i vb) {
  const __m256i sb = _mm256_sign_epi8(vb, va);  // b * sign(a); 0 where a == 0
  const __m256i pair16 = _mm256_maddubs_epi16(ua, sb);
  return _mm256_madd_epi16(pair16, _mm256_set1_epi16(1));
}

// Sum of the 8 int32 lanes (exact, order-free).
inline int32_t Hsum256(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

// Reduces four 8-lane int32 accumulators to their four exact totals
// [s0, s1, s2, s3] via a hadd tree — ~4x cheaper than four Hsum256 calls,
// and still exact: every step is an integer add.
inline __m128i Hsum4x256(__m256i a0, __m256i a1, __m256i a2, __m256i a3) {
  const __m256i h01 = _mm256_hadd_epi32(a0, a1);
  const __m256i h23 = _mm256_hadd_epi32(a2, a3);
  const __m256i h = _mm256_hadd_epi32(h01, h23);  // [p0 p1 p2 p3 | q0 q1 q2 q3]
  return _mm_add_epi32(_mm256_castsi256_si128(h),
                       _mm256_extracti128_si256(h, 1));
}

inline __m256i LoadI8(const int8_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

// The activation row's one or two 32-byte blocks, loaded and sign-stripped
// once per kernel call — they are loop-invariant across the whole catalog.
template <int kNB>  // number of 32-byte activation blocks (k = 32 * kNB)
struct ActRegs {
  __m256i va0, ua0, va1, ua1;
  explicit ActRegs(const int8_t* a) {
    va0 = LoadI8(a);
    ua0 = _mm256_sign_epi8(va0, va0);  // |a|, fits u8 (<= 127)
    if constexpr (kNB == 2) {
      va1 = LoadI8(a + 32);
      ua1 = _mm256_sign_epi8(va1, va1);
    } else {
      va1 = ua1 = _mm256_setzero_si256();
    }
  }
};

// Exact totals of four consecutive catalog rows starting at b0.
template <int kNB>
inline __m128i Dot4Fixed(const ActRegs<kNB>& ar, const int8_t* b0) {
  constexpr int64_t k = 32 * kNB;
  __m256i a0 = Int8DotStep(ar.va0, ar.ua0, LoadI8(b0));
  __m256i a1 = Int8DotStep(ar.va0, ar.ua0, LoadI8(b0 + k));
  __m256i a2 = Int8DotStep(ar.va0, ar.ua0, LoadI8(b0 + 2 * k));
  __m256i a3 = Int8DotStep(ar.va0, ar.ua0, LoadI8(b0 + 3 * k));
  if constexpr (kNB == 2) {
    a0 = _mm256_add_epi32(a0, Int8DotStep(ar.va1, ar.ua1, LoadI8(b0 + 32)));
    a1 = _mm256_add_epi32(a1, Int8DotStep(ar.va1, ar.ua1, LoadI8(b0 + k + 32)));
    a2 = _mm256_add_epi32(a2,
                          Int8DotStep(ar.va1, ar.ua1, LoadI8(b0 + 2 * k + 32)));
    a3 = _mm256_add_epi32(a3,
                          Int8DotStep(ar.va1, ar.ua1, LoadI8(b0 + 3 * k + 32)));
  }
  return Hsum4x256(a0, a1, a2, a3);
}

template <int kNB>
inline int32_t Dot1Fixed(const ActRegs<kNB>& ar, const int8_t* brow) {
  __m256i acc = Int8DotStep(ar.va0, ar.ua0, LoadI8(brow));
  if constexpr (kNB == 2) {
    acc = _mm256_add_epi32(acc, Int8DotStep(ar.va1, ar.ua1, LoadI8(brow + 32)));
  }
  return Hsum256(acc);
}

template <int kNB>
void Int8DotRowsFixed(const int8_t* a, const int8_t* b, int32_t* o, int64_t r0,
                      int64_t r1) {
  constexpr int64_t k = 32 * kNB;
  const ActRegs<kNB> ar(a);
  int64_t r = r0;
  // Four catalog rows per iteration share the preloaded activation; their
  // totals come out of one hadd tree as a 4-lane store.
  for (; r + 4 <= r1; r += 4) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o + r),
                     Dot4Fixed(ar, b + r * k));
  }
  for (; r < r1; ++r) o[r] = Dot1Fixed(ar, b + r * k);
}

// Two activation rows per catalog sweep: each loaded catalog vector feeds
// both dot chains, halving the kernel's dominant memory stream (the catalog
// re-read per activation row — at serving scale the catalog lives in L2 and
// its re-streaming, not the integer ALUs, bounds throughput).
template <int kNB>
void Int8DotDequantPairFixed(const int8_t* a, const float* act_scales,
                             const int8_t* b, const float* scales, float* o,
                             int64_t ldo, int64_t r0, int64_t r1) {
  constexpr int64_t k = 32 * kNB;
  const ActRegs<kNB> x(a);
  const ActRegs<kNB> y(a + k);
  const __m128 vsx = _mm_set1_ps(act_scales[0]);
  const __m128 vsy = _mm_set1_ps(act_scales[1]);
  float* ox = o;
  float* oy = o + ldo;
  int64_t r = r0;
  for (; r + 4 <= r1; r += 4) {
    const int8_t* b0 = b + r * k;
    const __m256i v0 = LoadI8(b0);
    const __m256i v1 = LoadI8(b0 + k);
    const __m256i v2 = LoadI8(b0 + 2 * k);
    const __m256i v3 = LoadI8(b0 + 3 * k);
    __m256i x0 = Int8DotStep(x.va0, x.ua0, v0);
    __m256i x1 = Int8DotStep(x.va0, x.ua0, v1);
    __m256i x2 = Int8DotStep(x.va0, x.ua0, v2);
    __m256i x3 = Int8DotStep(x.va0, x.ua0, v3);
    __m256i y0 = Int8DotStep(y.va0, y.ua0, v0);
    __m256i y1 = Int8DotStep(y.va0, y.ua0, v1);
    __m256i y2 = Int8DotStep(y.va0, y.ua0, v2);
    __m256i y3 = Int8DotStep(y.va0, y.ua0, v3);
    if constexpr (kNB == 2) {
      const __m256i w0 = LoadI8(b0 + 32);
      const __m256i w1 = LoadI8(b0 + k + 32);
      const __m256i w2 = LoadI8(b0 + 2 * k + 32);
      const __m256i w3 = LoadI8(b0 + 3 * k + 32);
      x0 = _mm256_add_epi32(x0, Int8DotStep(x.va1, x.ua1, w0));
      x1 = _mm256_add_epi32(x1, Int8DotStep(x.va1, x.ua1, w1));
      x2 = _mm256_add_epi32(x2, Int8DotStep(x.va1, x.ua1, w2));
      x3 = _mm256_add_epi32(x3, Int8DotStep(x.va1, x.ua1, w3));
      y0 = _mm256_add_epi32(y0, Int8DotStep(y.va1, y.ua1, w0));
      y1 = _mm256_add_epi32(y1, Int8DotStep(y.va1, y.ua1, w1));
      y2 = _mm256_add_epi32(y2, Int8DotStep(y.va1, y.ua1, w2));
      y3 = _mm256_add_epi32(y3, Int8DotStep(y.va1, y.ua1, w3));
    }
    const __m128 sc = _mm_loadu_ps(scales + r);
    _mm_storeu_ps(ox + r,
                  _mm_mul_ps(_mm_mul_ps(vsx, sc),
                             _mm_cvtepi32_ps(Hsum4x256(x0, x1, x2, x3))));
    _mm_storeu_ps(oy + r,
                  _mm_mul_ps(_mm_mul_ps(vsy, sc),
                             _mm_cvtepi32_ps(Hsum4x256(y0, y1, y2, y3))));
  }
  for (; r < r1; ++r) {
    const int8_t* brow = b + r * k;
    ox[r] = (act_scales[0] * scales[r]) *
            static_cast<float>(Dot1Fixed(x, brow));
    oy[r] = (act_scales[1] * scales[r]) *
            static_cast<float>(Dot1Fixed(y, brow));
  }
}

template <int kNB>
void Int8DotDequantRowsFixed(const int8_t* a, float act_scale, const int8_t* b,
                             const float* scales, float* o, int64_t r0,
                             int64_t r1) {
  constexpr int64_t k = 32 * kNB;
  const ActRegs<kNB> ar(a);
  const __m128 vas = _mm_set1_ps(act_scale);
  int64_t r = r0;
  // The dequant epilogue applies DequantRow's per-element sequence — cvt,
  // two rounded multiplies, no FMA — four lanes at a time, straight out of
  // the hadd tree: the int32 totals never touch memory.
  for (; r + 4 <= r1; r += 4) {
    const __m128 sc = _mm_mul_ps(vas, _mm_loadu_ps(scales + r));
    _mm_storeu_ps(
        o + r, _mm_mul_ps(sc, _mm_cvtepi32_ps(Dot4Fixed(ar, b + r * k))));
  }
  for (; r < r1; ++r) {
    o[r] = (act_scale * scales[r]) *
           static_cast<float>(Dot1Fixed(ar, b + r * k));
  }
}

// Generic fallback for every other k: reload the activation block inside the
// loop, scalar tail for k % 32. Bitwise identical — every path computes the
// same exact integer sum.
int32_t Int8DotGeneric(const int8_t* a, const int8_t* brow, int64_t k) {
  const int64_t k32 = k - (k % 32);
  __m256i acc = _mm256_setzero_si256();
  for (int64_t i = 0; i < k32; i += 32) {
    const __m256i va = LoadI8(a + i);
    const __m256i ua = _mm256_sign_epi8(va, va);
    acc = _mm256_add_epi32(acc, Int8DotStep(va, ua, LoadI8(brow + i)));
  }
  int32_t s = Hsum256(acc);
  for (int64_t i = k32; i < k; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(brow[i]);
  }
  return s;
}

// ---- AVX-VNNI sub-tier ------------------------------------------------------
//
// vpdpbusd multiplies u8 x s8 and accumulates the four-element quads straight
// into int32 — one instruction where the maddubs path needs three (sign,
// maddubs, madd), and with NO int16 intermediate, so even the [-127, 127]
// clamp argument is unnecessary: the quad sums are exact by construction.
// The sign trick (|a| times b*sign(a)) is still how signed x signed becomes
// u8 x s8, and the hadd reduction trees are shared with the maddubs path.
// Everything is exact integer arithmetic followed by the identical dequant
// epilogue, so this sub-tier is bitwise invisible; tests/quant_test.cc runs
// the int8 parity suites with VNNI forced both off and on.
//
// Only this region is compiled for avxvnni (the pragma below); the public
// entry points choose it per call via simd::AvxVnniEnabled(), which is false
// unless CPUID reports the extension.

#pragma GCC push_options
#pragma GCC target("avx2,avxvnni")

// acc += quad sums of a * b, via the sign trick. `ua` must be |va|.
inline __m256i Int8DotStepVnni(__m256i acc, __m256i va, __m256i ua,
                               __m256i vb) {
  return _mm256_dpbusd_avx_epi32(acc, ua, _mm256_sign_epi8(vb, va));
}

// Exact totals of four consecutive catalog rows starting at b0.
template <int kNB>
inline __m128i Dot4Vnni(const ActRegs<kNB>& ar, const int8_t* b0) {
  constexpr int64_t k = 32 * kNB;
  const __m256i z = _mm256_setzero_si256();
  __m256i a0 = Int8DotStepVnni(z, ar.va0, ar.ua0, LoadI8(b0));
  __m256i a1 = Int8DotStepVnni(z, ar.va0, ar.ua0, LoadI8(b0 + k));
  __m256i a2 = Int8DotStepVnni(z, ar.va0, ar.ua0, LoadI8(b0 + 2 * k));
  __m256i a3 = Int8DotStepVnni(z, ar.va0, ar.ua0, LoadI8(b0 + 3 * k));
  if constexpr (kNB == 2) {
    a0 = Int8DotStepVnni(a0, ar.va1, ar.ua1, LoadI8(b0 + 32));
    a1 = Int8DotStepVnni(a1, ar.va1, ar.ua1, LoadI8(b0 + k + 32));
    a2 = Int8DotStepVnni(a2, ar.va1, ar.ua1, LoadI8(b0 + 2 * k + 32));
    a3 = Int8DotStepVnni(a3, ar.va1, ar.ua1, LoadI8(b0 + 3 * k + 32));
  }
  return Hsum4x256(a0, a1, a2, a3);
}

template <int kNB>
inline int32_t Dot1Vnni(const ActRegs<kNB>& ar, const int8_t* brow) {
  __m256i acc = Int8DotStepVnni(_mm256_setzero_si256(), ar.va0, ar.ua0,
                                LoadI8(brow));
  if constexpr (kNB == 2) {
    acc = Int8DotStepVnni(acc, ar.va1, ar.ua1, LoadI8(brow + 32));
  }
  return Hsum256(acc);
}

template <int kNB>
void Int8DotRowsVnni(const int8_t* a, const int8_t* b, int32_t* o, int64_t r0,
                     int64_t r1) {
  constexpr int64_t k = 32 * kNB;
  const ActRegs<kNB> ar(a);
  int64_t r = r0;
  for (; r + 4 <= r1; r += 4) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o + r),
                     Dot4Vnni(ar, b + r * k));
  }
  for (; r < r1; ++r) o[r] = Dot1Vnni(ar, b + r * k);
}

template <int kNB>
void Int8DotDequantRowsVnni(const int8_t* a, float act_scale, const int8_t* b,
                            const float* scales, float* o, int64_t r0,
                            int64_t r1) {
  constexpr int64_t k = 32 * kNB;
  const ActRegs<kNB> ar(a);
  const __m128 vas = _mm_set1_ps(act_scale);
  int64_t r = r0;
  for (; r + 4 <= r1; r += 4) {
    const __m128 sc = _mm_mul_ps(vas, _mm_loadu_ps(scales + r));
    _mm_storeu_ps(o + r,
                  _mm_mul_ps(sc, _mm_cvtepi32_ps(Dot4Vnni(ar, b + r * k))));
  }
  for (; r < r1; ++r) {
    o[r] =
        (act_scale * scales[r]) * static_cast<float>(Dot1Vnni(ar, b + r * k));
  }
}

// Paired-activation catalog sweep, vpdpbusd edition of
// Int8DotDequantPairFixed: same traversal, a third fewer integer ALU ops.
template <int kNB>
void Int8DotDequantPairVnni(const int8_t* a, const float* act_scales,
                            const int8_t* b, const float* scales, float* o,
                            int64_t ldo, int64_t r0, int64_t r1) {
  constexpr int64_t k = 32 * kNB;
  const ActRegs<kNB> x(a);
  const ActRegs<kNB> y(a + k);
  const __m128 vsx = _mm_set1_ps(act_scales[0]);
  const __m128 vsy = _mm_set1_ps(act_scales[1]);
  float* ox = o;
  float* oy = o + ldo;
  int64_t r = r0;
  for (; r + 4 <= r1; r += 4) {
    const int8_t* b0 = b + r * k;
    const __m256i z = _mm256_setzero_si256();
    const __m256i v0 = LoadI8(b0);
    const __m256i v1 = LoadI8(b0 + k);
    const __m256i v2 = LoadI8(b0 + 2 * k);
    const __m256i v3 = LoadI8(b0 + 3 * k);
    __m256i x0 = Int8DotStepVnni(z, x.va0, x.ua0, v0);
    __m256i x1 = Int8DotStepVnni(z, x.va0, x.ua0, v1);
    __m256i x2 = Int8DotStepVnni(z, x.va0, x.ua0, v2);
    __m256i x3 = Int8DotStepVnni(z, x.va0, x.ua0, v3);
    __m256i y0 = Int8DotStepVnni(z, y.va0, y.ua0, v0);
    __m256i y1 = Int8DotStepVnni(z, y.va0, y.ua0, v1);
    __m256i y2 = Int8DotStepVnni(z, y.va0, y.ua0, v2);
    __m256i y3 = Int8DotStepVnni(z, y.va0, y.ua0, v3);
    if constexpr (kNB == 2) {
      const __m256i w0 = LoadI8(b0 + 32);
      const __m256i w1 = LoadI8(b0 + k + 32);
      const __m256i w2 = LoadI8(b0 + 2 * k + 32);
      const __m256i w3 = LoadI8(b0 + 3 * k + 32);
      x0 = Int8DotStepVnni(x0, x.va1, x.ua1, w0);
      x1 = Int8DotStepVnni(x1, x.va1, x.ua1, w1);
      x2 = Int8DotStepVnni(x2, x.va1, x.ua1, w2);
      x3 = Int8DotStepVnni(x3, x.va1, x.ua1, w3);
      y0 = Int8DotStepVnni(y0, y.va1, y.ua1, w0);
      y1 = Int8DotStepVnni(y1, y.va1, y.ua1, w1);
      y2 = Int8DotStepVnni(y2, y.va1, y.ua1, w2);
      y3 = Int8DotStepVnni(y3, y.va1, y.ua1, w3);
    }
    const __m128 sc = _mm_loadu_ps(scales + r);
    _mm_storeu_ps(ox + r,
                  _mm_mul_ps(_mm_mul_ps(vsx, sc),
                             _mm_cvtepi32_ps(Hsum4x256(x0, x1, x2, x3))));
    _mm_storeu_ps(oy + r,
                  _mm_mul_ps(_mm_mul_ps(vsy, sc),
                             _mm_cvtepi32_ps(Hsum4x256(y0, y1, y2, y3))));
  }
  for (; r < r1; ++r) {
    const int8_t* brow = b + r * k;
    ox[r] =
        (act_scales[0] * scales[r]) * static_cast<float>(Dot1Vnni(x, brow));
    oy[r] =
        (act_scales[1] * scales[r]) * static_cast<float>(Dot1Vnni(y, brow));
  }
}

int32_t Int8DotGenericVnni(const int8_t* a, const int8_t* brow, int64_t k) {
  const int64_t k32 = k - (k % 32);
  __m256i acc = _mm256_setzero_si256();
  for (int64_t i = 0; i < k32; i += 32) {
    const __m256i va = LoadI8(a + i);
    const __m256i ua = _mm256_sign_epi8(va, va);
    acc = Int8DotStepVnni(acc, va, ua, LoadI8(brow + i));
  }
  int32_t s = Hsum256(acc);
  for (int64_t i = k32; i < k; ++i) {
    s += static_cast<int32_t>(a[i]) * static_cast<int32_t>(brow[i]);
  }
  return s;
}

#pragma GCC pop_options

}  // namespace

void Int8DotRows(const int8_t* a, const int8_t* b, int32_t* o, int64_t k,
                 int64_t r0, int64_t r1) {
  if (simd::AvxVnniEnabled()) {
    if (k == 32) return Int8DotRowsVnni<1>(a, b, o, r0, r1);
    if (k == 64) return Int8DotRowsVnni<2>(a, b, o, r0, r1);
    for (int64_t r = r0; r < r1; ++r) {
      o[r] = Int8DotGenericVnni(a, b + r * k, k);
    }
    return;
  }
  if (k == 32) return Int8DotRowsFixed<1>(a, b, o, r0, r1);
  if (k == 64) return Int8DotRowsFixed<2>(a, b, o, r0, r1);
  for (int64_t r = r0; r < r1; ++r) o[r] = Int8DotGeneric(a, b + r * k, k);
}

void Int8DotDequantRows(const int8_t* a, float act_scale, const int8_t* b,
                        const float* scales, float* o, int64_t k, int64_t r0,
                        int64_t r1) {
  // Fused dot + dequant: the integer totals are exact (any blocking agrees
  // with the scalar sum) and the epilogue replays DequantRow's fixed
  // per-element sequence, so fused == Int8DotRows + DequantRow, bitwise, on
  // every tier — while the [V]-sized int32 scratch row disappears entirely.
  if (simd::AvxVnniEnabled()) {
    if (k == 32) return Int8DotDequantRowsVnni<1>(a, act_scale, b, scales, o,
                                                  r0, r1);
    if (k == 64) return Int8DotDequantRowsVnni<2>(a, act_scale, b, scales, o,
                                                  r0, r1);
    for (int64_t r = r0; r < r1; ++r) {
      o[r] = (act_scale * scales[r]) *
             static_cast<float>(Int8DotGenericVnni(a, b + r * k, k));
    }
    return;
  }
  if (k == 32) return Int8DotDequantRowsFixed<1>(a, act_scale, b, scales, o,
                                                 r0, r1);
  if (k == 64) return Int8DotDequantRowsFixed<2>(a, act_scale, b, scales, o,
                                                 r0, r1);
  for (int64_t r = r0; r < r1; ++r) {
    o[r] = (act_scale * scales[r]) *
           static_cast<float>(Int8DotGeneric(a, b + r * k, k));
  }
}

void Int8DotDequantTile(const int8_t* a, const float* act_scales, int64_t na,
                        const int8_t* b, const float* scales, float* o,
                        int64_t ldo, int64_t k, int64_t r0, int64_t r1) {
  // Semantically na independent Int8DotDequantRows calls; the paired sweep
  // only reorders the catalog traversal (exact integer dots, unchanged
  // dequant sequence), so the tile stays bitwise identical to the row
  // kernel on every tier.
  const bool vnni = simd::AvxVnniEnabled();
  int64_t i = 0;
  if (k == 32) {
    for (; i + 2 <= na; i += 2) {
      if (vnni) {
        Int8DotDequantPairVnni<1>(a + i * k, act_scales + i, b, scales,
                                  o + i * ldo, ldo, r0, r1);
      } else {
        Int8DotDequantPairFixed<1>(a + i * k, act_scales + i, b, scales,
                                   o + i * ldo, ldo, r0, r1);
      }
    }
  } else if (k == 64) {
    for (; i + 2 <= na; i += 2) {
      if (vnni) {
        Int8DotDequantPairVnni<2>(a + i * k, act_scales + i, b, scales,
                                  o + i * ldo, ldo, r0, r1);
      } else {
        Int8DotDequantPairFixed<2>(a + i * k, act_scales + i, b, scales,
                                   o + i * ldo, ldo, r0, r1);
      }
    }
  }
  for (; i < na; ++i) {
    Int8DotDequantRows(a + i * k, act_scales[i], b, scales, o + i * ldo, k,
                       r0, r1);
  }
}

void DequantRow(const int32_t* acc, float act_scale, const float* scales,
                float* out, int64_t n) {
  // Lane-wise identical to the scalar loop: per element one int32->fp32
  // convert and two rounded multiplies, no reassociation, no FMA — so the
  // tiers agree bitwise (same argument as the elementwise kernels above).
  const __m256 vs = _mm256_set1_ps(act_scale);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 sc = _mm256_mul_ps(vs, _mm256_loadu_ps(scales + i));
    const __m256 vi = _mm256_cvtepi32_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i)));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(sc, vi));
  }
  for (; i < n; ++i) {
    out[i] = (act_scale * scales[i]) * static_cast<float>(acc[i]);
  }
}

}  // namespace missl::simd::avx2

#endif  // MISSL_SIMD_AVX2
