// Plan compilation: walk a frozen MisslModel once and emit the static op
// sequence + buffer table described in infer/plan.h. Everything here runs
// exactly once per RecoService::Load; nothing in this file is on the
// serving hot path.
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "hypergraph/incidence.h"
#include "infer/plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/quant.h"
#include "utils/check.h"

namespace missl::infer {

namespace {

// LayerNormM is always constructed with its default epsilon and exposes no
// accessor; the contract test (infer_test) would catch any drift.
constexpr float kLayerNormEps = 1e-5f;

std::string ActName(Activation a) {
  switch (a) {
    case Activation::kNone: return "none";
    case Activation::kTanh: return "tanh";
    case Activation::kGelu: return "gelu";
  }
  return "?";
}

const char* KindName(OpKind k) {
  switch (k) {
    case OpKind::kEmbedSum: return "embed_sum";
    case OpKind::kBuildIncidence: return "build_incidence";
    case OpKind::kLinear: return "linear";
    case OpKind::kMaskedNormalize: return "masked_normalize";
    case OpKind::kBatchedGemm: return "batched_gemm";
    case OpKind::kAttention: return "attention";
    case OpKind::kResidualLayerNorm: return "residual_layernorm";
    case OpKind::kInterestExtract: return "interest_extract";
    case OpKind::kAuxMean: return "aux_mean";
    case OpKind::kGatedFuse: return "gated_fuse";
    case OpKind::kCommonPool: return "common_pool";
    case OpKind::kBroadcastAddRow: return "broadcast_add_row";
    case OpKind::kCatalogScore: return "catalog_score";
    case OpKind::kCatalogScoreQ: return "catalog_score_q";
  }
  return "?";
}

}  // namespace

int32_t PlannedExecutor::NewBuffer(int64_t per_b, std::string label) {
  BufferSpec spec;
  spec.per_b = per_b;
  spec.label = std::move(label);
  bufs_.push_back(std::move(spec));
  return static_cast<int32_t>(bufs_.size()) - 1;
}

const float* PlannedExecutor::AddConstant(std::vector<float> values) {
  constants_.push_back(std::move(values));
  return constants_.back().data();
}

std::unique_ptr<PlannedExecutor> PlannedExecutor::Compile(
    const core::MisslModel& model, const Tensor& catalog, int64_t max_batch,
    Status* status) {
  return Compile(model, catalog, max_batch, InferConfig{}, status);
}

std::unique_ptr<PlannedExecutor> PlannedExecutor::Compile(
    const core::MisslModel& model, const Tensor& catalog, int64_t max_batch,
    const InferConfig& options, Status* status) {
  MISSL_CHECK(status != nullptr);
  *status = Status::OK();
  obs::TraceSpan span("infer.compile", "infer");
  int64_t t0 = obs::NowNanos();

  auto ex = std::unique_ptr<PlannedExecutor>(new PlannedExecutor());
  ex->cfg_ = model.config();
  const core::MisslConfig& cfg = ex->cfg_;
  ex->d_ = cfg.dim;
  ex->t_ = model.max_len();
  ex->k_ = model.num_interests();
  ex->max_batch_ = max_batch;
  const int64_t d = ex->d_, t = ex->t_, K = ex->k_;

  if (max_batch < 1) {
    *status = Status::InvalidArgument("planned executor: max_batch must be >= 1");
    return nullptr;
  }

  std::map<std::string, Tensor> params;
  for (auto& [name, tensor] : model.NamedParameters()) {
    params.emplace(name, tensor);
  }
  auto param = [&](const std::string& name) -> Tensor& {
    auto it = params.find(name);
    MISSL_CHECK(it != params.end())
        << "planned executor: model has no parameter '" << name << "'";
    return it->second;
  };
  // Resolves a parameter to its raw float data and shares ownership of its
  // storage, so the plan stays valid even if the model object is destroyed.
  auto need = [&](const std::string& name) -> const float* {
    Tensor& p = param(name);
    ex->keepalive_.push_back(p);
    return p.data();
  };

  Tensor& item_w = param("item_emb.weight");  // [V, d]
  ex->num_items_ = item_w.size(0);
  Tensor& beh_w = param("beh_emb.weight");  // [nb, d]
  ex->num_behaviors_ = static_cast<int32_t>(beh_w.size(0));
  const int32_t nb = ex->num_behaviors_;

  if (!catalog.defined() || catalog.dim() != 2 || catalog.size(0) != d ||
      catalog.size(1) != ex->num_items_) {
    *status = Status::InvalidArgument(
        "planned executor: catalog must be the [dim, num_items] transposed "
        "item table from PrecomputeCatalog");
    return nullptr;
  }
  ex->keepalive_.push_back(catalog);
  ex->catalog_ = ex->keepalive_.back().data();

  MISSL_CHECK(cfg.heads >= 1 && d % cfg.heads == 0)
      << "planned executor: heads must divide dim";
  ex->heads_ = cfg.heads;
  ex->dh_ = d / cfg.heads;
  const int64_t heads = ex->heads_, dh = ex->dh_;

  // Integer scratch for the masked id streams (see MisslModel::Encode);
  // presized so Run never resizes.
  ex->items_.assign(static_cast<size_t>(max_batch * t), -1);
  ex->behs_.assign(static_cast<size_t>(max_batch * t), -1);
  if (cfg.use_recency) ex->rec_.assign(static_cast<size_t>(max_batch * t), -1);

  auto emit = [&](Op op) { ex->ops_.push_back(std::move(op)); };

  // --- Input embedding: fused item + position + behavior (+ recency) sum.
  int32_t cur = ex->NewBuffer(t * d, "embed");
  {
    Op op;
    op.kind = OpKind::kEmbedSum;
    op.label = "embed_sum";
    op.dst = cur;
    op.w = need("item_emb.weight");
    op.w2 = need("pos_emb.weight");
    op.w3 = need("beh_emb.weight");
    if (cfg.use_recency) op.bias = need("recency_emb.weight");
    op.in = d;
    op.t = t;
    emit(op);
  }
  // Dropout is identity in eval mode and therefore absent from the plan.

  // --- Hypergraph attention layers.
  if (cfg.use_hypergraph && cfg.hgat_layers > 0) {
    ex->e_ = hypergraph::NumEdges(cfg.hg, t, nb);
    const int64_t e = ex->e_;
    int32_t inc = ex->NewBuffer(e * t, "incidence");
    {
      Op op;
      op.kind = OpKind::kBuildIncidence;
      op.label = "build_incidence";
      op.dst = inc;
      op.t = t;
      op.e = e;
      emit(op);
    }
    for (int64_t i = 0; i < cfg.hgat_layers; ++i) {
      const std::string p = "hgat" + std::to_string(i) + ".";
      // node_scores = Tanh(wa(x)) * wn  -> per-position scalar.
      int32_t wa_out = ex->NewBuffer(t * d, p + "wa");
      {
        Op op;
        op.kind = OpKind::kLinear;
        op.label = p + "wa+tanh";
        op.src = cur;
        op.dst = wa_out;
        op.w = need(p + "wa.weight");
        op.bias = need(p + "wa.bias");
        op.act = Activation::kTanh;
        op.rows_per_b = t;
        op.in = d;
        op.out = d;
        emit(op);
      }
      int32_t node_scores = ex->NewBuffer(t, p + "node_scores");
      {
        Op op;
        op.kind = OpKind::kLinear;
        op.label = p + "wn";
        op.src = wa_out;
        op.dst = node_scores;
        op.w = need(p + "wn");
        op.rows_per_b = t;
        op.in = d;
        op.out = 1;
        emit(op);
      }
      // edge_attn[b, e, t] = masked row-normalize of node scores over inc.
      int32_t exp_cache_a = ex->NewBuffer(t, p + "exp_a");
      int32_t edge_attn = ex->NewBuffer(e * t, p + "edge_attn");
      {
        Op op;
        op.kind = OpKind::kMaskedNormalize;
        op.label = p + "edge_attn";
        op.src = node_scores;
        op.src2 = inc;
        op.dst = edge_attn;
        op.scratch = exp_cache_a;
        op.rows_per_b = e;
        op.out = t;
        op.t = t;
        op.flag = false;  // mask element (row=edge, col=pos) = inc[edge, pos]
        emit(op);
      }
      int32_t edge_feats = ex->NewBuffer(e * d, p + "edge_feats");
      {
        Op op;
        op.kind = OpKind::kBatchedGemm;
        op.label = p + "edge_feats";
        op.src = edge_attn;
        op.src2 = cur;
        op.dst = edge_feats;
        op.rows_per_b = e;
        op.in = t;
        op.out = d;
        emit(op);
      }
      int32_t wb_out = ex->NewBuffer(e * d, p + "wb");
      {
        Op op;
        op.kind = OpKind::kLinear;
        op.label = p + "wb+tanh";
        op.src = edge_feats;
        op.dst = wb_out;
        op.w = need(p + "wb.weight");
        op.bias = need(p + "wb.bias");
        op.act = Activation::kTanh;
        op.rows_per_b = e;
        op.in = d;
        op.out = d;
        emit(op);
      }
      int32_t edge_scores = ex->NewBuffer(e, p + "edge_scores");
      {
        Op op;
        op.kind = OpKind::kLinear;
        op.label = p + "we";
        op.src = wb_out;
        op.dst = edge_scores;
        op.w = need(p + "we");
        op.rows_per_b = e;
        op.in = d;
        op.out = 1;
        emit(op);
      }
      int32_t exp_cache_b = ex->NewBuffer(e, p + "exp_b");
      int32_t node_attn = ex->NewBuffer(t * e, p + "node_attn");
      {
        Op op;
        op.kind = OpKind::kMaskedNormalize;
        op.label = p + "node_attn";
        op.src = edge_scores;
        op.src2 = inc;
        op.dst = node_attn;
        op.scratch = exp_cache_b;
        op.rows_per_b = t;
        op.out = e;
        op.t = t;
        op.flag = true;  // mask element (row=pos, col=edge) = inc[edge, pos]
        emit(op);
      }
      int32_t agg = ex->NewBuffer(t * d, p + "agg");
      {
        Op op;
        op.kind = OpKind::kBatchedGemm;
        op.label = p + "agg";
        op.src = node_attn;
        op.src2 = edge_feats;
        op.dst = agg;
        op.rows_per_b = t;
        op.in = e;
        op.out = d;
        emit(op);
      }
      int32_t wo_out = ex->NewBuffer(t * d, p + "wo");
      {
        Op op;
        op.kind = OpKind::kLinear;
        op.label = p + "wo";
        op.src = agg;
        op.dst = wo_out;
        op.w = need(p + "wo.weight");
        op.bias = need(p + "wo.bias");
        op.rows_per_b = t;
        op.in = d;
        op.out = d;
        emit(op);
      }
      int32_t ln_sum = ex->NewBuffer(t * d, p + "ln_sum");
      int32_t ln_xh = ex->NewBuffer(t * d, p + "ln_xhat");
      int32_t h_out = ex->NewBuffer(t * d, p + "out");
      {
        Op op;
        op.kind = OpKind::kResidualLayerNorm;
        op.label = p + "ln";
        op.src = cur;
        op.src2 = wo_out;
        op.dst = h_out;
        op.scratch = ln_sum;
        op.scratch2 = ln_xh;
        op.w = need(p + "ln.gamma");
        op.b2 = need(p + "ln.beta");
        op.rows_per_b = t;
        op.in = d;
        op.scale = kLayerNormEps;
        emit(op);
      }
      cur = h_out;
    }
  }

  // --- Transformer encoder layers.
  const float attn_scale = 1.0f / std::sqrt(static_cast<float>(dh));
  for (int64_t i = 0; i < cfg.seq_layers; ++i) {
    const std::string p = "encoder.layer" + std::to_string(i) + ".";
    auto linear = [&](const std::string& name, int32_t src, int64_t rows,
                      int64_t in, int64_t out, Activation act) {
      int32_t dst = ex->NewBuffer(rows * out, p + name);
      Op op;
      op.kind = OpKind::kLinear;
      op.label = p + name;
      op.src = src;
      op.dst = dst;
      op.w = need(p + name + ".weight");
      op.bias = need(p + name + ".bias");
      op.act = act;
      op.rows_per_b = rows;
      op.in = in;
      op.out = out;
      emit(op);
      return dst;
    };
    int32_t q = linear("attn.wq", cur, t, d, d, Activation::kNone);
    int32_t k = linear("attn.wk", cur, t, d, d, Activation::kNone);
    int32_t v = linear("attn.wv", cur, t, d, d, Activation::kNone);
    // Per-(batch, head) packing slabs: q-pack, transposed-k, v-pack,
    // scores, out-pack.
    int32_t attn_scratch =
        ex->NewBuffer(heads * (4 * t * dh + t * t), p + "attn.scratch");
    int32_t concat = ex->NewBuffer(t * d, p + "attn.concat");
    {
      Op op;
      op.kind = OpKind::kAttention;
      op.label = p + "attn.core";
      op.src = q;
      op.src2 = k;
      op.src3 = v;
      op.dst = concat;
      op.scratch = attn_scratch;
      op.t = t;
      op.heads = heads;
      op.dh = dh;
      op.scale = attn_scale;
      emit(op);
    }
    int32_t attn_out = linear("attn.wo", concat, t, d, d, Activation::kNone);
    int32_t ln1_sum = ex->NewBuffer(t * d, p + "ln1_sum");
    int32_t ln1_xh = ex->NewBuffer(t * d, p + "ln1_xhat");
    int32_t h1 = ex->NewBuffer(t * d, p + "ln1");
    {
      Op op;
      op.kind = OpKind::kResidualLayerNorm;
      op.label = p + "ln1";
      op.src = cur;
      op.src2 = attn_out;
      op.dst = h1;
      op.scratch = ln1_sum;
      op.scratch2 = ln1_xh;
      op.w = need(p + "ln1.gamma");
      op.b2 = need(p + "ln1.beta");
      op.rows_per_b = t;
      op.in = d;
      op.scale = kLayerNormEps;
      emit(op);
    }
    Tensor& fc1_w = param(p + "ffn.fc1.weight");  // [d, ffn_hidden]
    const int64_t ffn_hidden = fc1_w.size(1);
    int32_t f1 =
        linear("ffn.fc1", h1, t, d, ffn_hidden, Activation::kGelu);
    int32_t f2 = linear("ffn.fc2", f1, t, ffn_hidden, d, Activation::kNone);
    int32_t ln2_sum = ex->NewBuffer(t * d, p + "ln2_sum");
    int32_t ln2_xh = ex->NewBuffer(t * d, p + "ln2_xhat");
    int32_t h2 = ex->NewBuffer(t * d, p + "ln2");
    {
      Op op;
      op.kind = OpKind::kResidualLayerNorm;
      op.label = p + "ln2";
      op.src = h1;
      op.src2 = f2;
      op.dst = h2;
      op.scratch = ln2_sum;
      op.scratch2 = ln2_xh;
      op.w = need(p + "ln2.gamma");
      op.b2 = need(p + "ln2.beta");
      op.rows_per_b = t;
      op.in = d;
      op.scale = kLayerNormEps;
      emit(op);
    }
    cur = h2;
  }
  const int32_t encoded = cur;

  // --- Per-behavior interest extraction. key_proj is computed once and
  // shared across behavior channels (the training forward recomputes it per
  // channel with bitwise-identical results — see docs/INFERENCE.md).
  int32_t keys = ex->NewBuffer(t * d, "key_proj");
  {
    Op op;
    op.kind = OpKind::kLinear;
    op.label = "key_proj";
    op.src = encoded;
    op.dst = keys;
    op.w = need("key_proj.weight");
    op.bias = need("key_proj.bias");
    op.rows_per_b = t;
    op.in = d;
    op.out = d;
    emit(op);
  }
  // Per-row scratch for scores [T, K] + transposed scores [K, T].
  int32_t interest_scratch = ex->NewBuffer(2 * t * K, "interest_scratch");
  Tensor& queries = param("interest_queries");  // [nb * K, d]
  MISSL_CHECK(queries.dim() == 2 &&
              queries.size(0) == static_cast<int64_t>(nb) * K &&
              queries.size(1) == d)
      << "planned executor: unexpected interest_queries shape";
  const float* queries_data = need("interest_queries");
  const int32_t target = nb - 1;
  const bool use_aux = cfg.use_aux_behaviors && nb >= 2;
  auto extract = [&](int32_t behavior) {
    // Plan-time constant: the transposed query block Transpose(q) with
    // q = interest_queries[behavior*K .. (behavior+1)*K), laid out [d, K].
    std::vector<float> qt(static_cast<size_t>(d * K));
    for (int64_t kk = 0; kk < K; ++kk) {
      const float* row = queries_data + (behavior * K + kk) * d;
      for (int64_t j = 0; j < d; ++j) {
        qt[static_cast<size_t>(j * K + kk)] = row[j];
      }
    }
    int32_t dst =
        ex->NewBuffer(K * d, "interests" + std::to_string(behavior));
    Op op;
    op.kind = OpKind::kInterestExtract;
    op.label = "interests" + std::to_string(behavior);
    op.src = keys;
    op.src2 = encoded;
    op.dst = dst;
    op.scratch = interest_scratch;
    op.w = ex->AddConstant(std::move(qt));
    op.t = t;
    op.k = K;
    op.in = d;
    op.behavior = behavior;
    emit(op);
    return dst;
  };
  int32_t v_tgt = extract(target);
  int32_t fused = v_tgt;

  // --- Auxiliary-view mean + sigmoid-gated fusion.
  if (use_aux) {
    std::vector<int32_t> aux_bufs;
    for (int32_t beh = 0; beh < target; ++beh) aux_bufs.push_back(extract(beh));
    int32_t v_aux = ex->NewBuffer(K * d, "v_aux");
    {
      Op op;
      op.kind = OpKind::kAuxMean;
      op.label = "aux_mean";
      op.srcs = aux_bufs;
      op.dst = v_aux;
      op.rows_per_b = K;
      op.in = d;
      op.scale = 1.0f / static_cast<float>(aux_bufs.size());
      emit(op);
    }
    int32_t aux_proj = ex->NewBuffer(K * d, "aux_fusion");
    {
      Op op;
      op.kind = OpKind::kLinear;
      op.label = "aux_fusion";
      op.src = v_aux;
      op.dst = aux_proj;
      op.w = need("aux_fusion.weight");
      op.bias = need("aux_fusion.bias");
      op.rows_per_b = K;
      op.in = d;
      op.out = d;
      emit(op);
    }
    // Plan-time constant: sigmoid of the (frozen) scalar fusion gate,
    // computed with exactly the Sigmoid op's formula.
    const float gate_raw = param("fusion_gate").data()[0];
    const float gate = 1.0f / (1.0f + std::exp(-gate_raw));
    int32_t fused2 = ex->NewBuffer(K * d, "fused_aux");
    {
      Op op;
      op.kind = OpKind::kGatedFuse;
      op.label = "gated_fuse";
      op.src = fused;
      op.src2 = aux_proj;
      op.dst = fused2;
      op.rows_per_b = K;
      op.in = d;
      op.scale = gate;
      emit(op);
    }
    fused = fused2;
  }

  // --- Common-interest pathway.
  if (cfg.use_common_interest) {
    int32_t common = ex->NewBuffer(d, "common_pool");
    {
      Op op;
      op.kind = OpKind::kCommonPool;
      op.label = "common_pool";
      op.src = encoded;
      op.dst = common;
      op.t = t;
      op.in = d;
      emit(op);
    }
    int32_t cproj = ex->NewBuffer(d, "common_proj");
    {
      Op op;
      op.kind = OpKind::kLinear;
      op.label = "common_proj";
      op.src = common;
      op.dst = cproj;
      op.w = need("common_proj.weight");
      op.bias = need("common_proj.bias");
      op.rows_per_b = 1;
      op.in = d;
      op.out = d;
      emit(op);
    }
    int32_t fused2 = ex->NewBuffer(K * d, "fused_common");
    {
      Op op;
      op.kind = OpKind::kBroadcastAddRow;
      op.label = "add_common";
      op.src = fused;
      op.src2 = cproj;
      op.dst = fused2;
      op.k = K;
      op.in = d;
      emit(op);
    }
    fused = fused2;
  }

  // --- Catalog scoring with interest routing.
  const bool mean_routing = cfg.routing == core::InterestRouting::kMean;
  const int64_t V = ex->num_items_;
  if (!options.quantize_catalog) {
    int32_t score_scratch = mean_routing
                                ? ex->NewBuffer(d, "interest_mean")
                                : ex->NewBuffer(K * V, "logits");
    ex->scores_buf_ = ex->NewBuffer(V, "scores");
    Op op;
    op.kind = OpKind::kCatalogScore;
    op.label = mean_routing ? "catalog_score(mean)" : "catalog_score(max)";
    op.src = fused;
    op.dst = ex->scores_buf_;
    op.scratch = score_scratch;
    op.w = ex->catalog_;
    op.k = K;
    op.in = d;
    op.out = V;
    op.flag = mean_routing;
    emit(op);
  } else {
    // Int8 tier: quantize the catalog once, per item. PrecomputeCatalog
    // hands the [d, V] transposed table; repack item-major [V, d] so each
    // item score is one contiguous int8 row-dot, with one fp32 scale per
    // item (symmetric, zero-safe — tensor/quant.h).
    std::vector<float> rows(static_cast<size_t>(V * d));
    for (int64_t v = 0; v < V; ++v) {
      for (int64_t j = 0; j < d; ++j) {
        rows[static_cast<size_t>(v * d + j)] = ex->catalog_[j * V + v];
      }
    }
    ex->catalog_q_.resize(static_cast<size_t>(V * d));
    ex->catalog_scale_.resize(static_cast<size_t>(V));
    quant::RowQuantStats st;
    quant::QuantizeRowsSymmetric(rows.data(), V, d, ex->catalog_q_.data(),
                                 ex->catalog_scale_.data(), &st);
    ex->qinfo_.enabled = true;
    ex->qinfo_.min_scale = st.min_scale;
    ex->qinfo_.max_scale = st.max_scale;
    ex->qinfo_.zero_rows = st.zero_rows;
    ex->qinfo_.saturated = st.saturated;
    ex->qinfo_.int8_bytes =
        V * d * static_cast<int64_t>(sizeof(int8_t)) +
        V * static_cast<int64_t>(sizeof(float));
    ex->qinfo_.fp32_bytes = V * d * static_cast<int64_t>(sizeof(float));
    // Activation-side scratch: one quantized row per interest row (max
    // routing) or per batch row (mean routing), plus the int32 accumulators
    // the routing pass dequantizes from.
    const int64_t act_rows = mean_routing ? max_batch : max_batch * K;
    ex->act_q_.assign(static_cast<size_t>(act_rows * d), 0);
    ex->act_scale_.assign(static_cast<size_t>(act_rows), 0.0f);
    ex->acc_q_.assign(static_cast<size_t>(act_rows * V), 0);
    int32_t score_scratch = mean_routing ? ex->NewBuffer(d, "interest_mean")
                                         : -1;
    ex->scores_buf_ = ex->NewBuffer(V, "scores");
    Op op;
    op.kind = OpKind::kCatalogScoreQ;
    op.label =
        mean_routing ? "catalog_score_q(mean)" : "catalog_score_q(max)";
    op.src = fused;
    op.dst = ex->scores_buf_;
    op.scratch = score_scratch;
    op.wq = ex->catalog_q_.data();
    op.wscale = ex->catalog_scale_.data();
    op.k = K;
    op.in = d;
    op.out = V;
    op.flag = mean_routing;
    emit(op);
  }

  // --- Lay the buffers out in one pooled arena sized for max_batch.
  int64_t total = 0;
  for (BufferSpec& spec : ex->bufs_) {
    spec.offset = total;
    total += max_batch * spec.per_b;
  }
  ex->arena_.assign(static_cast<size_t>(total), 0.0f);

  if (obs::MetricsEnabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("infer.compiles").Add(1);
    reg.GetHistogram("infer.compile_ns").Observe(obs::NowNanos() - t0);
    reg.GetGauge("infer.plan_ops").Set(ex->num_ops());
    reg.GetGauge("infer.scratch_bytes").Set(ex->scratch_bytes());
    if (ex->qinfo_.enabled) {
      // Gauges are integral; scales are published in microunits.
      reg.GetGauge("infer.quant.scale_min_e6")
          .Set(static_cast<int64_t>(
              std::lround(static_cast<double>(ex->qinfo_.min_scale) * 1e6)));
      reg.GetGauge("infer.quant.scale_max_e6")
          .Set(static_cast<int64_t>(
              std::lround(static_cast<double>(ex->qinfo_.max_scale) * 1e6)));
      reg.GetGauge("infer.quant.zero_rows").Set(ex->qinfo_.zero_rows);
      reg.GetCounter("infer.quant.saturated").Add(ex->qinfo_.saturated);
      reg.GetGauge("infer.quant.catalog_bytes").Set(ex->qinfo_.int8_bytes);
    }
  }
  return ex;
}

std::string PlannedExecutor::ToString() const {
  std::ostringstream os;
  os << "plan: " << ops_.size() << " ops, " << bufs_.size() << " buffers, "
     << scratch_bytes() << " scratch bytes (max_batch=" << max_batch_
     << " t=" << t_ << " d=" << d_ << " k=" << k_ << " items=" << num_items_
     << ")\n";
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    os << "[" << i << "] " << KindName(op.kind) << " " << op.label;
    if (op.rows_per_b > 0) os << " rows=" << op.rows_per_b;
    if (op.in > 0) os << " in=" << op.in;
    if (op.out > 0) os << " out=" << op.out;
    if (op.act != Activation::kNone) os << " act=" << ActName(op.act);
    if (op.behavior >= 0) os << " behavior=" << op.behavior;
    os << "\n";
  }
  return os.str();
}

}  // namespace missl::infer
