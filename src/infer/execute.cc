// Plan execution: the serving hot path. Each Exec* interpreter replicates
// the float-op sequence of the corresponding training-mode tensor op
// (tensor/ops_*.cc) exactly — same kernels (simd.h) where the training op
// uses them, same scalar formulas where it does not, same accumulation
// order everywhere — so Run is bitwise-identical to
// MisslModel::ScoreAllItems on every SIMD tier at every thread count (the
// contract is spelled out in docs/INFERENCE.md and enforced by
// tests/infer_test.cc). Nothing here allocates: all floats live in the
// plan's arena, the integer id streams in vectors presized at compile time.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "hypergraph/incidence.h"
#include "infer/plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel_for.h"
#include "tensor/quant.h"
#include "tensor/simd.h"
#include "utils/check.h"

namespace missl::infer {

namespace {

struct InferMetrics {
  obs::Counter& runs;
  obs::Histogram& run_ns;
  /// Activation-side int8 codes clamped to ±127 (rounding edge cases; the
  /// per-row symmetric scale makes genuine saturation impossible).
  obs::Counter& quant_act_saturated;
  static InferMetrics& Get() {
    static InferMetrics m{
        obs::MetricsRegistry::Global().GetCounter("infer.runs"),
        obs::MetricsRegistry::Global().GetHistogram("infer.run_ns"),
        obs::MetricsRegistry::Global().GetCounter(
            "infer.quant.act_saturated")};
    return m;
  }
};

// Scalar activation formulas, kept character-identical to the lambdas in
// tensor/ops_elementwise.cc (single-rounding elementwise math is
// tier-independent, so applying them here in the GEMM epilogue cannot
// change bits).
inline float GeluF(float x) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  float u = kC * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(u));
}

// In-place softmax over one row, replicating the exact loop structure of
// Softmax in tensor/ops_nn.cc (max from element 0, exp/sum in ascending
// order, ScaleRow by the reciprocal).
inline void SoftmaxRow(float* row, int64_t n) {
  float mx = row[0];
  for (int64_t i = 1; i < n; ++i) mx = std::max(mx, row[i]);
  float sum = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    row[i] = std::exp(row[i] - mx);
    sum += row[i];
  }
  float inv = 1.0f / sum;
  simd::ScaleRow(row, inv, row, n);
}

}  // namespace

const float* PlannedExecutor::Run(const data::Batch& batch) {
  const int64_t b = batch.batch_size, t = t_;
  MISSL_CHECK(b >= 1 && b <= max_batch_)
      << "planned executor: batch size " << b << " exceeds compiled max_batch "
      << max_batch_;
  MISSL_CHECK(batch.max_len == t)
      << "planned executor: batch max_len " << batch.max_len
      << " != compiled max_len " << t;
  const int64_t n = b * t;
  MISSL_CHECK(static_cast<int64_t>(batch.merged_items.size()) == n &&
              static_cast<int64_t>(batch.merged_behaviors.size()) == n)
      << "planned executor: merged stream size mismatch";

  obs::TraceSpan span("infer.run", "infer");
  const int64_t t0 = obs::NowNanos();

  // Masked id streams, exactly as MisslModel::Encode derives them:
  // effective items (aux-ablation hides non-target events), behaviors and
  // recency buckets nulled wherever the effective item is padding.
  const int32_t* mi = batch.merged_items.data();
  const int32_t* mb = batch.merged_behaviors.data();
  const int32_t target = num_behaviors_ - 1;
  for (int64_t i = 0; i < n; ++i) {
    int32_t id = mi[i];
    if (!cfg_.use_aux_behaviors && mb[i] != target) id = -1;
    items_[static_cast<size_t>(i)] = id;
    behs_[static_cast<size_t>(i)] = id < 0 ? -1 : mb[i];
  }
  if (cfg_.use_recency) {
    MISSL_CHECK(static_cast<int64_t>(batch.merged_recency.size()) == n)
        << "planned executor: merged_recency size mismatch";
    for (int64_t i = 0; i < n; ++i) {
      rec_[static_cast<size_t>(i)] =
          items_[static_cast<size_t>(i)] < 0 ? -1 : batch.merged_recency[i];
    }
  }
  orig_behs_ = mb;

  for (const Op& op : ops_) Execute(op, b);

  InferMetrics& m = InferMetrics::Get();
  m.runs.Add(1);
  m.run_ns.Observe(obs::NowNanos() - t0);
  return arena_.data() + bufs_[static_cast<size_t>(scores_buf_)].offset;
}

void PlannedExecutor::Execute(const Op& op, int64_t b) {
  switch (op.kind) {
    case OpKind::kEmbedSum: return ExecEmbedSum(op, b);
    case OpKind::kBuildIncidence: return ExecBuildIncidence(op, b);
    case OpKind::kLinear: return ExecLinear(op, b);
    case OpKind::kMaskedNormalize: return ExecMaskedNormalize(op, b);
    case OpKind::kBatchedGemm: return ExecBatchedGemm(op, b);
    case OpKind::kAttention: return ExecAttention(op, b);
    case OpKind::kResidualLayerNorm: return ExecResidualLayerNorm(op, b);
    case OpKind::kInterestExtract: return ExecInterestExtract(op, b);
    case OpKind::kAuxMean: return ExecAuxMean(op, b);
    case OpKind::kGatedFuse: return ExecGatedFuse(op, b);
    case OpKind::kCommonPool: return ExecCommonPool(op, b);
    case OpKind::kBroadcastAddRow: return ExecBroadcastAddRow(op, b);
    case OpKind::kCatalogScore: return ExecCatalogScore(op, b);
    case OpKind::kCatalogScoreQ: return ExecCatalogScoreQ(op, b);
  }
  MISSL_CHECK(false) << "planned executor: unknown op kind";
}

// (item + position) + behavior (+ recency) lookups summed per position.
// Invalid ids contribute a zero row, and the adds are performed literally
// even then — x + 0.0f normalizes -0.0f to +0.0f exactly like the chain of
// EmbeddingLookup + Add ops does in Encode.
void PlannedExecutor::ExecEmbedSum(const Op& op, int64_t b) {
  const int64_t t = op.t, d = op.in;
  float* dst = BufPtr(op.dst);
  const int32_t* items = items_.data();
  const int32_t* behs = behs_.data();
  const int32_t* rec = cfg_.use_recency ? rec_.data() : nullptr;
  runtime::ParallelFor(
      0, b * t, runtime::GrainForCost(4 * d), [&](int64_t r0, int64_t r1) {
        for (int64_t idx = r0; idx < r1; ++idx) {
          const int64_t i = idx % t;
          const int32_t id = items[idx];
          const int32_t bh = behs[idx];
          const float* it =
              id >= 0 ? op.w + static_cast<int64_t>(id) * d : nullptr;
          const float* ps = id >= 0 ? op.w2 + i * d : nullptr;
          const float* bw =
              bh >= 0 ? op.w3 + static_cast<int64_t>(bh) * d : nullptr;
          const float* rw = nullptr;
          if (op.bias != nullptr && rec[idx] >= 0) {
            rw = op.bias + static_cast<int64_t>(rec[idx]) * d;
          }
          float* o = dst + idx * d;
          for (int64_t j = 0; j < d; ++j) {
            float v = (it ? it[j] : 0.0f) + (ps ? ps[j] : 0.0f);
            v = v + (bw ? bw[j] : 0.0f);
            if (op.bias != nullptr) v = v + (rw ? rw[j] : 0.0f);
            o[j] = v;
          }
        }
      });
}

void PlannedExecutor::ExecBuildIncidence(const Op& op, int64_t b) {
  const int64_t t = op.t, e = op.e;
  float* dst = BufPtr(op.dst);
  runtime::ParallelFor(0, b, 1, [&](int64_t r0, int64_t r1) {
    for (int64_t row = r0; row < r1; ++row) {
      float* pr = dst + row * e * t;
      std::fill(pr, pr + e * t, 0.0f);
      hypergraph::FillIncidenceRow(items_.data() + row * t,
                                   behs_.data() + row * t, t, num_behaviors_,
                                   cfg_.hg, pr);
    }
  });
}

// GEMM with the bias add and activation fused into the epilogue of each
// row chunk. MatMul zero-initializes its output and accumulates with
// GemmRows; doing the fill + GemmRows + AddRow + scalar activation per
// chunk touches each output row once while leaving every rounded operation
// identical to the MatMul / Add / Tanh / Gelu op chain.
void PlannedExecutor::ExecLinear(const Op& op, int64_t b) {
  const float* src = BufPtr(op.src);
  float* dst = BufPtr(op.dst);
  const int64_t in = op.in, out = op.out;
  runtime::ParallelFor(
      0, b * op.rows_per_b, runtime::GrainForCost(2 * in * out),
      [&](int64_t r0, int64_t r1) {
        std::fill(dst + r0 * out, dst + r1 * out, 0.0f);
        simd::GemmRows(src, op.w, dst, in, out, r0, r1);
        for (int64_t r = r0; r < r1; ++r) {
          float* y = dst + r * out;
          if (op.bias != nullptr) simd::AddRow(y, op.bias, y, out);
          switch (op.act) {
            case Activation::kNone:
              break;
            case Activation::kTanh:
              for (int64_t j = 0; j < out; ++j) y[j] = std::tanh(y[j]);
              break;
            case Activation::kGelu:
              for (int64_t j = 0; j < out; ++j) y[j] = GeluF(y[j]);
              break;
          }
        }
      });
}

// The HGAT masked normalizer: exp(clamp(scores)) * mask, row-normalized
// with the +1e-9 guard (hgat.cc MaskedNormalize). The per-column exp is
// computed once per (batch, column) into the scratch row and reused by
// every output row — the training path evaluates exp on the same value
// once per cell, with an identical result (the broadcast Add(scores, Zeros)
// it goes through only flips -0 to +0, which exp cannot distinguish).
void PlannedExecutor::ExecMaskedNormalize(const Op& op, int64_t b) {
  const int64_t rows = op.rows_per_b, cols = op.out, t = op.t;
  const float* scores = BufPtr(op.src);
  const float* mask = BufPtr(op.src2);
  const int64_t mask_per_b = bufs_[static_cast<size_t>(op.src2)].per_b;
  float* ex = BufPtr(op.scratch);
  float* dst = BufPtr(op.dst);
  runtime::ParallelFor(0, b * cols, runtime::GrainForCost(8),
                       [&](int64_t i0, int64_t i1) {
                         for (int64_t i = i0; i < i1; ++i) {
                           float x = scores[i];
                           x = x < -10.0f ? -10.0f : (x > 10.0f ? 10.0f : x);
                           ex[i] = std::exp(x);
                         }
                       });
  runtime::ParallelFor(
      0, b * rows, runtime::GrainForCost(4 * cols),
      [&](int64_t r0, int64_t r1) {
        for (int64_t rr = r0; rr < r1; ++rr) {
          const int64_t bb = rr / rows, r = rr % rows;
          const float* exb = ex + bb * cols;
          const float* mk = mask + bb * mask_per_b;
          float* o = dst + rr * cols;
          float denom = 0.0f;
          for (int64_t c = 0; c < cols; ++c) {
            // Literal multiply by the 0/1 mask (not a branch): x * 0.0f
            // keeps the sign semantics of the training-mode Mul.
            const float m = op.flag ? mk[c * t + r] : mk[r * cols + c];
            const float w = exb[c] * m;
            o[c] = w;
            denom += w;
          }
          denom = denom + 1e-9f;
          for (int64_t c = 0; c < cols; ++c) o[c] = o[c] / denom;
        }
      });
}

// Rank-3 batched matmul, replicating MatMul's slab-split row partition.
void PlannedExecutor::ExecBatchedGemm(const Op& op, int64_t b) {
  const int64_t m = op.rows_per_b, k = op.in, nn = op.out;
  const float* a = BufPtr(op.src);
  const float* bb = BufPtr(op.src2);
  float* dst = BufPtr(op.dst);
  runtime::ParallelFor(
      0, b * m, runtime::GrainForCost(2 * k * nn), [&](int64_t r0, int64_t r1) {
        std::fill(dst + r0 * nn, dst + r1 * nn, 0.0f);
        int64_t r = r0;
        while (r < r1) {
          const int64_t s = r / m;
          const int64_t end = std::min((s + 1) * m, r1);
          simd::GemmRows(a + s * m * k, bb + s * k * nn, dst + s * m * nn, k,
                         nn, r - s * m, end - s * m);
          r = end;
        }
      });
}

// The fused attention core: per-(batch, head) slab packs the head slices,
// runs scores = (q k^T) * scale + pad-mask, softmax, probs x v, and
// scatters the head output into the concat layout — one op instead of the
// Slice / Transpose / MatMul / MulScalar / Add / Softmax / MatMul / Concat
// chain. The packs are pure data movement; the arithmetic per element is
// the training chain verbatim (mask adds are executed literally even when
// the addend is 0.0f).
void PlannedExecutor::ExecAttention(const Op& op, int64_t b) {
  const int64_t t = op.t, heads = op.heads, dh = op.dh, d = d_;
  const float* q = BufPtr(op.src);
  const float* k = BufPtr(op.src2);
  const float* v = BufPtr(op.src3);
  float* dst = BufPtr(op.dst);
  float* scratch = BufPtr(op.scratch);
  const int64_t slab = 4 * t * dh + t * t;
  runtime::ParallelFor(0, b * heads, 1, [&](int64_t s0, int64_t s1) {
    for (int64_t s = s0; s < s1; ++s) {
      const int64_t bb = s / heads, h = s % heads;
      float* qp = scratch + s * slab;   // [t, dh]
      float* kt = qp + t * dh;          // [dh, t]
      float* vp = kt + dh * t;          // [t, dh]
      float* sc = vp + t * dh;          // [t, t]
      float* out = sc + t * t;          // [t, dh]
      for (int64_t i = 0; i < t; ++i) {
        const float* base = q + (bb * t + i) * d + h * dh;
        std::memcpy(qp + i * dh, base, static_cast<size_t>(dh) * sizeof(float));
      }
      for (int64_t i = 0; i < t; ++i) {
        const float* kr = k + (bb * t + i) * d + h * dh;
        for (int64_t c = 0; c < dh; ++c) kt[c * t + i] = kr[c];
      }
      for (int64_t i = 0; i < t; ++i) {
        const float* base = v + (bb * t + i) * d + h * dh;
        std::memcpy(vp + i * dh, base, static_cast<size_t>(dh) * sizeof(float));
      }
      std::fill(sc, sc + t * t, 0.0f);
      simd::GemmRows(qp, kt, sc, dh, t, 0, t);
      const int32_t* it = items_.data() + bb * t;
      for (int64_t i = 0; i < t; ++i) {
        float* row = sc + i * t;
        simd::ScaleRow(row, op.scale, row, t);
        for (int64_t j = 0; j < t; ++j) {
          row[j] = row[j] + (it[j] < 0 ? -1e9f : 0.0f);
        }
        SoftmaxRow(row, t);
      }
      std::fill(out, out + t * dh, 0.0f);
      simd::GemmRows(sc, vp, out, t, dh, 0, t);
      for (int64_t i = 0; i < t; ++i) {
        std::memcpy(dst + (bb * t + i) * d + h * dh, out + i * dh,
                    static_cast<size_t>(dh) * sizeof(float));
      }
    }
  });
}

// Residual add fused into the layer-norm pass: per row, sum = x + a
// (AddRow, the same kernel the Add op uses), then exactly the LayerNorm
// loop of tensor/ops_nn.cc.
void PlannedExecutor::ExecResidualLayerNorm(const Op& op, int64_t b) {
  const int64_t d = op.in;
  const float* x = BufPtr(op.src);
  const float* a = BufPtr(op.src2);
  float* sum = BufPtr(op.scratch);
  float* xh = BufPtr(op.scratch2);
  float* dst = BufPtr(op.dst);
  const float eps = op.scale;
  runtime::ParallelFor(
      0, b * op.rows_per_b, runtime::GrainForCost(6 * d),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          float* s = sum + r * d;
          simd::AddRow(x + r * d, a + r * d, s, d);
          float mu = 0.0f;
          for (int64_t i = 0; i < d; ++i) mu += s[i];
          mu /= static_cast<float>(d);
          float var = 0.0f;
          for (int64_t i = 0; i < d; ++i) {
            const float c = s[i] - mu;
            var += c * c;
          }
          var /= static_cast<float>(d);
          const float is = 1.0f / std::sqrt(var + eps);
          simd::LayerNormAffineRow(s, mu, is, op.w, op.b2, xh + r * d,
                                   dst + r * d, d);
        }
      });
}

// Per-behavior interest pooling: scores = keys x q^T (plan-constant
// transposed query block), transposed, channel-masked, softmaxed, applied
// to the encoded states, and zeroed via the literal 0/1 indicator multiply
// when the row has no event of this channel.
void PlannedExecutor::ExecInterestExtract(const Op& op, int64_t b) {
  const int64_t t = op.t, K = op.k, d = op.in;
  const float* keys = BufPtr(op.src);
  const float* enc = BufPtr(op.src2);
  float* dst = BufPtr(op.dst);
  float* scratch = BufPtr(op.scratch);
  const int64_t slab = 2 * t * K;
  const int32_t* all_items = items_.data();
  const int32_t* all_behs = orig_behs_;
  runtime::ParallelFor(0, b, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t bb = b0; bb < b1; ++bb) {
      float* stk = scratch + bb * slab;  // [t, K]
      float* skt = stk + t * K;          // [K, t]
      std::fill(stk, stk + t * K, 0.0f);
      simd::GemmRows(keys + bb * t * d, op.w, stk, d, K, 0, t);
      for (int64_t i = 0; i < t; ++i) {
        for (int64_t kk = 0; kk < K; ++kk) skt[kk * t + i] = stk[i * K + kk];
      }
      // Membership mask uses the ORIGINAL behavior tags with the effective
      // items, exactly as ExtractInterests builds it.
      const int32_t* it = all_items + bb * t;
      const int32_t* bh = all_behs + bb * t;
      bool any = false;
      for (int64_t j = 0; j < t; ++j) {
        any |= (it[j] >= 0 && bh[j] == op.behavior);
      }
      for (int64_t kk = 0; kk < K; ++kk) {
        float* row = skt + kk * t;
        for (int64_t j = 0; j < t; ++j) {
          const bool member = it[j] >= 0 && bh[j] == op.behavior;
          row[j] = row[j] + (member ? 0.0f : -1e9f);
        }
        SoftmaxRow(row, t);
      }
      float* o = dst + bb * K * d;
      std::fill(o, o + K * d, 0.0f);
      simd::GemmRows(skt, enc + bb * t * d, o, t, d, 0, K);
      const float ind = any ? 1.0f : 0.0f;
      for (int64_t i = 0; i < K * d; ++i) o[i] = o[i] * ind;
    }
  });
}

// Mean of the auxiliary interest views: the same left-associative pairwise
// Add chain as UserInterests, then the 1/n scale.
void PlannedExecutor::ExecAuxMean(const Op& op, int64_t b) {
  float* dst = BufPtr(op.dst);
  const int64_t total = b * op.rows_per_b * op.in;
  const size_t ns = op.srcs.size();
  const float* first = BufPtr(op.srcs[0]);
  runtime::ParallelFor(
      0, total, runtime::GrainForCost(static_cast<int64_t>(ns)),
      [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          float acc = first[i];
          for (size_t s = 1; s < ns; ++s) acc = acc + BufPtr(op.srcs[s])[i];
          dst[i] = acc * op.scale;
        }
      });
}

// fused = v_tgt + aux_proj * sigmoid(gate); the gate is a plan constant.
void PlannedExecutor::ExecGatedFuse(const Op& op, int64_t b) {
  const float* x = BufPtr(op.src);
  const float* a = BufPtr(op.src2);
  float* dst = BufPtr(op.dst);
  const float g = op.scale;
  runtime::ParallelFor(0, b * op.rows_per_b * op.in, runtime::GrainForCost(2),
                       [&](int64_t i0, int64_t i1) {
                         for (int64_t i = i0; i < i1; ++i) {
                           dst[i] = x[i] + a[i] * g;
                         }
                       });
}

// Common interest: masked mean over every visible position plus the last
// position's state, replicating MaskedMeanPool (mask-multiply then
// ascending-t accumulation from 0.0f, count + 1e-9 guard) and LastPosition.
void PlannedExecutor::ExecCommonPool(const Op& op, int64_t b) {
  const int64_t t = op.t, d = op.in;
  const float* h = BufPtr(op.src);
  float* dst = BufPtr(op.dst);
  const int32_t* all_items = items_.data();
  runtime::ParallelFor(0, b, 1, [&](int64_t b0, int64_t b1) {
    for (int64_t bb = b0; bb < b1; ++bb) {
      const int32_t* it = all_items + bb * t;
      float count = 0.0f;
      for (int64_t i = 0; i < t; ++i) count += (it[i] >= 0 ? 1.0f : 0.0f);
      count = count + 1e-9f;
      const float* hb = h + bb * t * d;
      const float* last = hb + (t - 1) * d;
      float* o = dst + bb * d;
      for (int64_t j = 0; j < d; ++j) {
        float acc = 0.0f;
        for (int64_t i = 0; i < t; ++i) {
          acc += hb[i * d + j] * (it[i] >= 0 ? 1.0f : 0.0f);
        }
        o[j] = acc / count + last[j];
      }
    }
  });
}

// Adds the [d] common-interest row to each of the K interest rows.
void PlannedExecutor::ExecBroadcastAddRow(const Op& op, int64_t b) {
  const int64_t K = op.k, d = op.in;
  const float* x = BufPtr(op.src);
  const float* add = BufPtr(op.src2);
  float* dst = BufPtr(op.dst);
  runtime::ParallelFor(0, b * K, runtime::GrainForCost(d),
                       [&](int64_t r0, int64_t r1) {
                         for (int64_t r = r0; r < r1; ++r) {
                           simd::AddRow(x + r * d, add + (r / K) * d,
                                        dst + r * d, d);
                         }
                       });
}

// Catalog scoring: interests x catalog [d, V], then max over K (strict >
// ascending scan, as Max in ops_reduce.cc) or mean-then-GEMM for kMean
// routing (ascending-K sum from 0.0f then the 1/K scale, as Mean).
void PlannedExecutor::ExecCatalogScore(const Op& op, int64_t b) {
  const int64_t K = op.k, d = op.in, V = op.out;
  const float* ints = BufPtr(op.src);
  float* dst = BufPtr(op.dst);
  if (op.flag) {  // mean routing
    float* mean = BufPtr(op.scratch);
    runtime::ParallelFor(0, b, 1, [&](int64_t b0, int64_t b1) {
      for (int64_t bb = b0; bb < b1; ++bb) {
        float* mrow = mean + bb * d;
        for (int64_t j = 0; j < d; ++j) {
          float acc = 0.0f;
          for (int64_t kk = 0; kk < K; ++kk) acc += ints[(bb * K + kk) * d + j];
          mrow[j] = acc * (1.0f / static_cast<float>(K));
        }
      }
    });
    runtime::ParallelFor(
        0, b, runtime::GrainForCost(2 * d * V), [&](int64_t r0, int64_t r1) {
          std::fill(dst + r0 * V, dst + r1 * V, 0.0f);
          simd::GemmRows(mean, op.w, dst, d, V, r0, r1);
        });
    return;
  }
  float* logits = BufPtr(op.scratch);  // [b * K, V]
  runtime::ParallelFor(
      0, b * K, runtime::GrainForCost(2 * d * V), [&](int64_t r0, int64_t r1) {
        std::fill(logits + r0 * V, logits + r1 * V, 0.0f);
        simd::GemmRows(ints, op.w, logits, d, V, r0, r1);
      });
  runtime::ParallelFor(
      0, b * V, runtime::GrainForCost(K), [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const int64_t bb = i / V, vv = i % V;
          float best = -std::numeric_limits<float>::infinity();
          for (int64_t kk = 0; kk < K; ++kk) {
            const float val = logits[(bb * K + kk) * V + vv];
            if (val > best) best = val;
          }
          dst[i] = best;
        }
      });
}

// Int8 catalog scoring. Activation rows (the fused interests — or, for mean
// routing, the per-batch fp32 interest mean computed exactly as the fp32
// plan computes it) are quantized per row per Run; the item scores are int32
// row-dots against the compile-time quantized catalog, dequantized by one
// fp32 multiply fused into the max/mean routing pass. Determinism: the
// integer dot is order-free (any tier blocking lands on quant::Int8DotRef),
// the quantization and dequant epilogue are scalar single-rounded formulas
// evaluated per element — so scores are bitwise identical on every SIMD
// tier at every thread count (tests/quant_test.cc enforces it).
void PlannedExecutor::ExecCatalogScoreQ(const Op& op, int64_t b) {
  const int64_t K = op.k, d = op.in, V = op.out;
  const float* ints = BufPtr(op.src);
  float* dst = BufPtr(op.dst);
  const float* act = ints;
  int64_t rows = b * K;
  if (op.flag) {  // mean routing: fp32 mean first, then quantize the mean row
    float* mean = BufPtr(op.scratch);
    runtime::ParallelFor(0, b, 1, [&](int64_t b0, int64_t b1) {
      for (int64_t bb = b0; bb < b1; ++bb) {
        float* mrow = mean + bb * d;
        for (int64_t j = 0; j < d; ++j) {
          float acc = 0.0f;
          for (int64_t kk = 0; kk < K; ++kk) acc += ints[(bb * K + kk) * d + j];
          mrow[j] = acc * (1.0f / static_cast<float>(K));
        }
      }
    });
    act = mean;
    rows = b;
  }
  // Activation quantization stays serial: at most max_batch * K short rows,
  // and a single scan keeps the saturation count free of atomics.
  quant::RowQuantStats st;
  quant::QuantizeRowsSymmetric(act, rows, d, act_q_.data(), act_scale_.data(),
                               &st);
  if (st.saturated > 0 && obs::MetricsEnabled()) {
    InferMetrics::Get().quant_act_saturated.Add(st.saturated);
  }
  const int8_t* aq = act_q_.data();
  const int8_t* cq = op.wq;
  int32_t* acc = acc_q_.data();
  const float* as = act_scale_.data();
  const float* cs = op.wscale;
  if (op.flag) {  // mean routing: fused dot + dequant, no int32 scratch pass
    // Chunks are PAIRS of activation rows so the tile kernel can walk the
    // catalog once per pair (each loaded catalog vector feeds two dot
    // chains) and dequantize straight out of registers — the [V]-sized
    // int32 row never touches memory at all. Cost per pair is two rows'
    // worth of the fp32 op's per-row granularity.
    runtime::ParallelFor(
        0, (b + 1) / 2, runtime::GrainForCost(4 * d * V),
        [&](int64_t p0, int64_t p1) {
          const int64_t i0 = 2 * p0;
          const int64_t i1 = std::min<int64_t>(b, 2 * p1);
          simd::Int8DotDequantTile(aq + i0 * d, as + i0, i1 - i0, cq, cs,
                                   dst + i0 * V, V, d, 0, V);
        });
    return;
  }
  runtime::ParallelFor(
      0, rows, runtime::GrainForCost(2 * d * V), [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          simd::Int8DotRows(aq + r * d, cq, acc + r * V, d, 0, V);
        }
      });
  // Max routing: dequant fused into the strict-> ascending-K max scan.
  runtime::ParallelFor(
      0, b * V, runtime::GrainForCost(4 * K), [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const int64_t bb = i / V, vv = i % V;
          float best = -std::numeric_limits<float>::infinity();
          for (int64_t kk = 0; kk < K; ++kk) {
            const int64_t r = bb * K + kk;
            const float val =
                (as[r] * cs[vv]) * static_cast<float>(acc[r * V + vv]);
            if (val > best) best = val;
          }
          dst[i] = best;
        }
      });
}

}  // namespace missl::infer
