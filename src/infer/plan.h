// Inference-only planned executor (see docs/INFERENCE.md).
//
// The serving hot path never backpropagates, yet it used to run the
// training-mode forward: every intermediate materialized as an
// autograd-capable Tensor, with shape derivation, graph bookkeeping and a
// fresh round of allocator traffic on every coalesced batch.
// PlannedExecutor removes all of that. Compile() walks a frozen
// core::MisslModel ONCE and captures its serving forward
//
//   embed-sum -> hypergraph attention -> transformer encoder
//     -> per-behavior K-interest extraction -> gated fusion (+ common
//        interest) -> catalog scoring
//
// into a static sequence of Op records over a fixed buffer table. Every
// shape, arena offset, fused weight pointer and plan-time constant (the
// transposed interest-query blocks, the sigmoid of the fusion gate) is
// resolved at compile time for a fixed geometry (max_batch, model max_len);
// Run() then executes the list with zero Tensor construction, zero autograd
// nodes and zero steady-state allocations — all intermediates live in one
// pool-backed scratch arena sized at plan time.
//
// The bitwise contract: Run() produces scores bitwise identical to
// MisslModel::ScoreAllItems on the same batch, on every SIMD tier at every
// thread count. Fusions (bias+activation in the GEMM epilogue,
// residual-add folded into layer-norm, the additive mask folded into the
// softmax pass, the exp/clamp of the hypergraph normalizer computed once
// per column instead of once per cell) only ever reorganize WHICH pass
// computes a value — each output element's chain of rounded float
// operations is kept instruction-for-instruction identical to the
// training-mode ops (tensor/ops_*.cc), which is what makes the training
// forward usable as the oracle in tests/infer_test.cc. See
// docs/INFERENCE.md for the full rule set.
#ifndef MISSL_INFER_PLAN_H_
#define MISSL_INFER_PLAN_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/missl.h"
#include "data/batch.h"
#include "tensor/alloc.h"
#include "tensor/tensor.h"
#include "utils/status.h"

namespace missl::infer {

/// Op kinds of the static plan. Each op reads/writes whole buffers from the
/// plan's buffer table; the per-kind field conventions are documented on Op.
enum class OpKind : int {
  kEmbedSum = 0,        ///< fused item+position+behavior(+recency) gather-sum
  kBuildIncidence,      ///< dense 0/1 hypergraph incidence from the int ids
  kLinear,              ///< dst = act(src x w + bias), GEMM with fused epilogue
  kMaskedNormalize,     ///< hypergraph attention row-normalizer (exp/clamp/mask)
  kBatchedGemm,         ///< dst[s] = a[s] x b[s] per batch slab
  kAttention,           ///< fused per-(batch, head) scaled-dot attention core
  kResidualLayerNorm,   ///< dst = LN(src + src2) with fused residual add
  kInterestExtract,     ///< per-behavior K-interest attention pooling
  kAuxMean,             ///< dst = mean over srcs (left-to-right add chain)
  kGatedFuse,           ///< dst = src + src2 * scale (sigmoid gate folded in)
  kCommonPool,          ///< masked mean pool + last position (common interest)
  kBroadcastAddRow,     ///< dst[b,k,:] = src[b,k,:] + src2[b,:]
  kCatalogScore,        ///< logits = interests x catalog; max/mean routing
  kCatalogScoreQ,       ///< int8 catalog scoring: quantize activations,
                        ///< int32 row-dots, fp32 dequant fused into routing
};

/// Fused activation epilogues applied per element after the bias add of a
/// kLinear op, with exactly the scalar formulas of tensor/ops_elementwise.cc.
enum class Activation : int { kNone = 0, kTanh, kGelu };

/// One entry of the plan's buffer table. Buffers are float regions inside
/// the single scratch arena, sized for max_batch rows at plan time; an op
/// running a smaller batch b touches only the first b * per_b floats.
struct BufferSpec {
  int64_t offset = 0;   ///< float offset into the arena
  int64_t per_b = 0;    ///< floats per batch row
  std::string label;    ///< for ToString / debugging
};

/// One op of the static plan. Field conventions by kind:
///   kEmbedSum:         w/w2/w3 = item/position/behavior tables, bias =
///                      recency table (null unless use_recency); in = dim.
///   kBuildIncidence:   t/e = sequence length / edges; dst = incidence.
///   kLinear:           src [rows_per_b, in] x w [in, out] + bias, act.
///   kMaskedNormalize:  src = per-column scores, src2 = incidence mask,
///                      scratch = exp row cache; rows_per_b x out cells;
///                      flag = read the mask transposed (node gather pass).
///   kBatchedGemm:      src [rows_per_b, in] x src2 [in, out] per batch.
///   kAttention:        src/src2/src3 = q/k/v, dst = head-concat layout,
///                      scratch = per-(batch, head) packing slabs; scale =
///                      1/sqrt(dh).
///   kResidualLayerNorm: w/b2 = gamma/beta, scale = eps, scratch/scratch2 =
///                      residual-sum and xhat rows.
///   kInterestExtract:  src = keys, src2 = encoded, w = transposed query
///                      block [d, K] (plan constant), behavior = channel.
///   kAuxMean:          srcs = per-behavior interests, scale = 1/n.
///   kGatedFuse:        scale = sigmoid(fusion_gate) plan constant.
///   kCommonPool:       src = encoded, dst = [d] pooled common interest.
///   kBroadcastAddRow:  src2 = [d] row added to each of the K interest rows.
///   kCatalogScore:     w = catalog [d, V]; flag = mean routing; scratch =
///                      logits ([K, V]) or interest mean ([d]).
///   kCatalogScoreQ:    wq/wscale = item-major int8 catalog [V, d] + per-item
///                      scales [V]; flag = mean routing; scratch = interest
///                      mean ([d], mean routing only — the int32 accumulators
///                      and int8 activation rows live in presized executor
///                      members, not the float arena).
struct Op {
  OpKind kind = OpKind::kLinear;
  std::string label;
  int32_t src = -1, src2 = -1, src3 = -1;    ///< input buffer ids
  int32_t dst = -1;                          ///< output buffer id
  int32_t scratch = -1, scratch2 = -1;       ///< op-private scratch buffers
  std::vector<int32_t> srcs;                 ///< kAuxMean input list
  const float* w = nullptr;                  ///< primary weight / table
  const int8_t* wq = nullptr;                ///< quantized catalog [V, d]
  const float* wscale = nullptr;             ///< per-item fp32 scales [V]
  const float* w2 = nullptr;                 ///< secondary table (positions)
  const float* w3 = nullptr;                 ///< tertiary table (behaviors)
  const float* bias = nullptr;               ///< bias / recency table
  const float* b2 = nullptr;                 ///< layer-norm beta
  Activation act = Activation::kNone;
  int64_t rows_per_b = 0;                    ///< output rows per batch row
  int64_t in = 0, out = 0;                   ///< GEMM inner/outer dims
  int64_t t = 0, e = 0;                      ///< sequence length / edge count
  int64_t heads = 0, dh = 0, k = 0;          ///< attention / interest dims
  float scale = 0.0f;                        ///< scale / eps / gate constant
  int32_t behavior = -1;                     ///< interest channel
  bool flag = false;                         ///< kind-specific switch
};

/// Compile-time options. The defaults reproduce the fp32 plan exactly.
struct InferConfig {
  /// Quantize the catalog to symmetric per-item int8 at compile time and
  /// emit kCatalogScoreQ instead of kCatalogScore. The int8 path is bitwise
  /// deterministic across SIMD tiers and thread counts (integer
  /// accumulation), but its scores differ from fp32 by quantization error —
  /// accuracy is gated as a ranking-level NDCG@10/Recall@10 bound in
  /// tests/quant_test.cc, never as float equality.
  bool quantize_catalog = false;
};

/// Catalog-quantization statistics, resolved at compile time (plus the
/// running activation-side saturation count). Exposed on /statusz.
struct QuantInfo {
  bool enabled = false;
  float min_scale = 0.0f;     ///< smallest non-zero per-item scale
  float max_scale = 0.0f;     ///< largest per-item scale
  int64_t zero_rows = 0;      ///< all-zero catalog items (scale 0)
  int64_t saturated = 0;      ///< catalog codes clamped to ±127 at compile
  int64_t int8_bytes = 0;     ///< quantized catalog + scales footprint
  int64_t fp32_bytes = 0;     ///< fp32 catalog footprint, for the ratio
};

/// A frozen MisslModel forward compiled to a static op plan. Thread-safety:
/// Compile is safe anywhere; Run mutates the scratch arena, so at most one
/// Run may execute at a time (RecoService calls it from the single
/// dispatcher thread). The model and catalog tensors are kept alive by the
/// executor (shared storage), so the executor may outlive the model object.
class PlannedExecutor {
 public:
  /// Compiles the serving forward of `model` (weights must already be
  /// frozen/loaded) against `catalog` (the [d, V] PrecomputeCatalog matrix)
  /// for batches of at most `max_batch` rows of exactly model.max_len()
  /// positions. Returns nullptr with *status set on an unsupported
  /// model/catalog combination; never allocates after it returns.
  static std::unique_ptr<PlannedExecutor> Compile(const core::MisslModel& model,
                                                  const Tensor& catalog,
                                                  int64_t max_batch,
                                                  Status* status);

  /// Same, with compile-time options (InferConfig::quantize_catalog selects
  /// the int8 catalog tier). The overload above is Compile(..., {} , ...).
  static std::unique_ptr<PlannedExecutor> Compile(const core::MisslModel& model,
                                                  const Tensor& catalog,
                                                  int64_t max_batch,
                                                  const InferConfig& options,
                                                  Status* status);

  /// Executes the plan on `batch` and returns the [batch_size, num_items]
  /// row-major score matrix, resident in the plan's arena (valid until the
  /// next Run). Requires batch.max_len == the compiled max_len and
  /// batch.batch_size <= max_batch. Performs no tensor allocation: the
  /// allocator counters (tensor/alloc.h) are flat across calls, which
  /// tests/infer_test.cc and bench_m1_alloc's churn gate both enforce.
  const float* Run(const data::Batch& batch);

  int64_t num_ops() const { return static_cast<int64_t>(ops_.size()); }
  int64_t num_buffers() const { return static_cast<int64_t>(bufs_.size()); }
  /// Bytes of the pooled scratch arena (all intermediate buffers).
  int64_t scratch_bytes() const {
    return arena_.size() * static_cast<int64_t>(sizeof(float));
  }
  int64_t max_batch() const { return max_batch_; }
  int64_t max_len() const { return t_; }
  int64_t num_items() const { return num_items_; }
  /// True when the plan scores through the int8 catalog tier.
  bool quantized() const { return qinfo_.enabled; }
  /// Catalog-quantization statistics (all zero when !quantized()).
  const QuantInfo& quant_info() const { return qinfo_; }

  /// One line per op ("[12] linear rows=20 in=32 out=64 act=gelu ..."), the
  /// human-readable plan dump used by tests and debugging.
  std::string ToString() const;

 private:
  PlannedExecutor() = default;

  // compile.cc helpers.
  int32_t NewBuffer(int64_t per_b, std::string label);
  const float* AddConstant(std::vector<float> values);
  friend struct PlanBuilder;

  // execute.cc: op interpreters. Each replicates the exact float-op
  // sequence of the corresponding training-mode tensor ops.
  void Execute(const Op& op, int64_t b);
  void ExecEmbedSum(const Op& op, int64_t b);
  void ExecBuildIncidence(const Op& op, int64_t b);
  void ExecLinear(const Op& op, int64_t b);
  void ExecMaskedNormalize(const Op& op, int64_t b);
  void ExecBatchedGemm(const Op& op, int64_t b);
  void ExecAttention(const Op& op, int64_t b);
  void ExecResidualLayerNorm(const Op& op, int64_t b);
  void ExecInterestExtract(const Op& op, int64_t b);
  void ExecAuxMean(const Op& op, int64_t b);
  void ExecGatedFuse(const Op& op, int64_t b);
  void ExecCommonPool(const Op& op, int64_t b);
  void ExecBroadcastAddRow(const Op& op, int64_t b);
  void ExecCatalogScore(const Op& op, int64_t b);
  void ExecCatalogScoreQ(const Op& op, int64_t b);

  float* BufPtr(int32_t id) {
    return arena_.data() + bufs_[static_cast<size_t>(id)].offset;
  }

  // Geometry, resolved at compile time.
  core::MisslConfig cfg_;
  int32_t num_behaviors_ = 0;
  int64_t num_items_ = 0;
  int64_t max_batch_ = 0;
  int64_t t_ = 0;      ///< sequence length (model max_len)
  int64_t d_ = 0;      ///< embedding dim
  int64_t k_ = 0;      ///< interests per behavior channel
  int64_t e_ = 0;      ///< hyperedges per row (0 when hypergraph off)
  int64_t heads_ = 0, dh_ = 0;

  std::vector<Op> ops_;
  std::vector<BufferSpec> bufs_;
  int32_t scores_buf_ = -1;
  Storage arena_;  ///< one pooled allocation holding every buffer

  const float* catalog_ = nullptr;
  std::deque<std::vector<float>> constants_;  ///< plan-time derived weights
  std::vector<Tensor> keepalive_;  ///< shares ownership of referenced params

  // Int8 catalog tier (InferConfig::quantize_catalog). The quantized
  // catalog is repacked item-major so each item score is one contiguous
  // int8 row-dot; the activation-side buffers are presized at compile so
  // Run stays allocation-free (same rule as the integer id scratch below).
  QuantInfo qinfo_;
  std::vector<int8_t> catalog_q_;      ///< [V, d] item-major int8 codes
  std::vector<float> catalog_scale_;   ///< [V] per-item scales
  std::vector<int8_t> act_q_;          ///< per-run quantized activation rows
  std::vector<float> act_scale_;       ///< per-run activation row scales
  std::vector<int32_t> acc_q_;         ///< per-run int32 dot accumulators

  // Per-run integer scratch (presized at compile; Run only overwrites).
  std::vector<int32_t> items_;  ///< effective merged items (ablation-masked)
  std::vector<int32_t> behs_;   ///< behaviors, -1 where items_ < 0
  std::vector<int32_t> rec_;    ///< recency buckets, -1 where items_ < 0
  const int32_t* orig_behs_ = nullptr;  ///< batch.merged_behaviors during Run
};

}  // namespace missl::infer

#endif  // MISSL_INFER_PLAN_H_
