#include "data/types.h"

#include "utils/check.h"

namespace missl::data {

const char* BehaviorName(Behavior b) {
  switch (b) {
    case Behavior::kClick: return "click";
    case Behavior::kCart: return "cart";
    case Behavior::kFav: return "fav";
    case Behavior::kBuy: return "buy";
  }
  MISSL_CHECK(false) << "unknown behavior " << static_cast<int32_t>(b);
}

}  // namespace missl::data
