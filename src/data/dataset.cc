#include "data/dataset.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "utils/check.h"

namespace missl::data {

Dataset::Dataset(int32_t num_users, int32_t num_items, int32_t num_behaviors,
                 std::string name)
    : num_users_(num_users),
      num_items_(num_items),
      num_behaviors_(num_behaviors),
      name_(std::move(name)) {
  MISSL_CHECK(num_users > 0 && num_items > 0) << "empty dataset dims";
  MISSL_CHECK(num_behaviors >= 2 && num_behaviors <= kMaxBehaviors)
      << "num_behaviors must be in [2, " << kMaxBehaviors << "]";
  users_.resize(static_cast<size_t>(num_users));
  for (int32_t u = 0; u < num_users; ++u) users_[static_cast<size_t>(u)].user = u;
}

void Dataset::Add(const Interaction& inter) {
  MISSL_CHECK(inter.user >= 0 && inter.user < num_users_)
      << "user id " << inter.user << " out of range";
  MISSL_CHECK(inter.item >= 0 && inter.item < num_items_)
      << "item id " << inter.item << " out of range";
  MISSL_CHECK(static_cast<int32_t>(inter.behavior) >= 0 &&
              static_cast<int32_t>(inter.behavior) < num_behaviors_)
      << "behavior out of range";
  users_[static_cast<size_t>(inter.user)].events.push_back(inter);
  finalized_ = false;
}

void Dataset::Finalize() {
  for (auto& us : users_) {
    std::stable_sort(us.events.begin(), us.events.end(),
                     [](const Interaction& a, const Interaction& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  finalized_ = true;
}

const UserSequence& Dataset::user(int32_t u) const {
  MISSL_CHECK(u >= 0 && u < num_users_) << "user id out of range";
  MISSL_CHECK(finalized_) << "Dataset::Finalize() not called";
  return users_[static_cast<size_t>(u)];
}

DatasetStats Dataset::Stats() const {
  DatasetStats s;
  s.num_users = num_users_;
  s.num_items = num_items_;
  for (const auto& us : users_) {
    s.num_interactions += static_cast<int64_t>(us.events.size());
    for (const auto& e : us.events) {
      s.per_behavior[static_cast<int32_t>(e.behavior)]++;
    }
  }
  s.avg_seq_len = num_users_ > 0
                      ? static_cast<double>(s.num_interactions) / num_users_
                      : 0.0;
  return s;
}

Status Dataset::LoadTsv(const std::string& path, Dataset* out) {
  MISSL_CHECK(out != nullptr);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "r"), &std::fclose);
  if (!f) return Status::IOError("cannot open " + path);
  std::vector<Interaction> rows;
  int32_t max_user = -1, max_item = -1, max_beh = -1;
  char line[256];
  int64_t lineno = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++lineno;
    if (line[0] == '#' || line[0] == '\n') continue;
    long long u, i, b, t;
    if (std::sscanf(line, "%lld\t%lld\t%lld\t%lld", &u, &i, &b, &t) != 4) {
      return Status::Corruption("bad TSV line " + std::to_string(lineno) + " in " +
                                path);
    }
    if (u < 0 || i < 0 || b < 0 || b >= kMaxBehaviors) {
      return Status::Corruption("out-of-range field at line " +
                                std::to_string(lineno));
    }
    Interaction inter;
    inter.user = static_cast<int32_t>(u);
    inter.item = static_cast<int32_t>(i);
    inter.behavior = static_cast<Behavior>(b);
    inter.timestamp = t;
    rows.push_back(inter);
    max_user = std::max(max_user, inter.user);
    max_item = std::max(max_item, inter.item);
    max_beh = std::max(max_beh, static_cast<int32_t>(b));
  }
  if (rows.empty()) return Status::InvalidArgument("empty dataset file " + path);
  *out = Dataset(max_user + 1, max_item + 1, std::max(max_beh + 1, 2), path);
  for (const auto& r : rows) out->Add(r);
  out->Finalize();
  return Status::OK();
}

Status Dataset::SaveTsv(const std::string& path) const {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "w"), &std::fclose);
  if (!f) return Status::IOError("cannot open for write: " + path);
  for (const auto& us : users_) {
    for (const auto& e : us.events) {
      if (std::fprintf(f.get(), "%d\t%d\t%d\t%lld\n", e.user, e.item,
                       static_cast<int32_t>(e.behavior),
                       static_cast<long long>(e.timestamp)) < 0) {
        return Status::IOError("write failed: " + path);
      }
    }
  }
  return Status::OK();
}

SplitView::SplitView(const Dataset& ds, int32_t min_target_events) : dataset(&ds) {
  Behavior target = ds.target_behavior();
  test_pos.assign(static_cast<size_t>(ds.num_users()), -1);
  valid_pos.assign(static_cast<size_t>(ds.num_users()), -1);
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    const auto& events = ds.user(u).events;
    std::vector<int64_t> targets;
    for (int64_t i = 0; i < static_cast<int64_t>(events.size()); ++i) {
      if (events[static_cast<size_t>(i)].behavior == target) targets.push_back(i);
    }
    if (static_cast<int32_t>(targets.size()) >= min_target_events) {
      test_pos[static_cast<size_t>(u)] = targets[targets.size() - 1];
      valid_pos[static_cast<size_t>(u)] = targets[targets.size() - 2];
    }
    // Training cuts: all target events strictly before the validation one
    // (or all but the last two when the user is excluded from eval).
    int64_t limit = valid_pos[static_cast<size_t>(u)] >= 0
                        ? valid_pos[static_cast<size_t>(u)]
                        : static_cast<int64_t>(events.size());
    for (int64_t cut : targets) {
      if (cut >= limit) break;
      if (cut == 0) continue;  // no history
      train_examples.push_back({u, cut});
    }
  }
}

int64_t SplitView::NumEvalUsers() const {
  int64_t n = 0;
  for (int64_t p : test_pos) {
    if (p >= 0) ++n;
  }
  return n;
}

}  // namespace missl::data
