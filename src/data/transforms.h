// Dataset preparation transforms: k-core filtering, dense id remapping, and
// per-user history truncation — the preprocessing steps the paper family
// applies to raw logs before training.
#ifndef MISSL_DATA_TRANSFORMS_H_
#define MISSL_DATA_TRANSFORMS_H_

#include "data/dataset.h"

namespace missl::data {

/// Result of a transform: the new dataset plus id mappings back to the
/// original (index = new id, value = old id).
struct TransformResult {
  Dataset dataset;
  std::vector<int32_t> user_map;
  std::vector<int32_t> item_map;
};

/// Iterative k-core filter: repeatedly drops users with fewer than
/// `user_core` events and items with fewer than `item_core` occurrences
/// until stable, then remaps ids densely. CHECK-fails if nothing survives.
TransformResult KCoreFilter(const Dataset& ds, int32_t user_core,
                            int32_t item_core);

/// Keeps only each user's most recent `max_events` events (the "retain the
/// 50 most recent records" step).
Dataset TruncateHistories(const Dataset& ds, int64_t max_events);

/// Drops every event with timestamp >= `cutoff` (global time split; useful
/// for building temporally-disjoint train/test datasets).
Dataset FilterBefore(const Dataset& ds, int64_t cutoff);

}  // namespace missl::data

#endif  // MISSL_DATA_TRANSFORMS_H_
