#include "data/synthetic.h"

#include <algorithm>

#include "utils/check.h"
#include "utils/rng.h"

namespace missl::data {

int32_t ItemCluster(int32_t item, int32_t num_clusters) {
  MISSL_CHECK(num_clusters > 0);
  return item % num_clusters;
}

namespace {

// Item for within-cluster rank j of cluster c under round-robin assignment.
int32_t ClusterItem(int32_t cluster, int64_t rank, int32_t num_clusters) {
  return static_cast<int32_t>(rank) * num_clusters + cluster;
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticConfig& cfg) {
  MISSL_CHECK(cfg.num_clusters > 0 && cfg.num_clusters <= cfg.num_items)
      << "bad cluster count";
  MISSL_CHECK(cfg.interests_per_user > 0 &&
              cfg.interests_per_user <= cfg.num_clusters)
      << "bad interests_per_user";
  MISSL_CHECK(cfg.min_events > 0 && cfg.min_events <= cfg.max_events)
      << "bad event range";
  MISSL_CHECK(cfg.num_behaviors >= 2 && cfg.num_behaviors <= kMaxBehaviors);

  Dataset ds(cfg.num_users, cfg.num_items, cfg.num_behaviors, cfg.name);
  Rng rng(cfg.seed);
  int32_t target = cfg.num_behaviors - 1;

  std::vector<float> freq(cfg.freq, cfg.freq + cfg.num_behaviors);

  for (int32_t u = 0; u < cfg.num_users; ++u) {
    // Draw K_true distinct interest clusters with decreasing affinity.
    std::vector<int32_t> clusters(static_cast<size_t>(cfg.num_clusters));
    for (int32_t c = 0; c < cfg.num_clusters; ++c)
      clusters[static_cast<size_t>(c)] = c;
    rng.Shuffle(&clusters);
    clusters.resize(static_cast<size_t>(cfg.interests_per_user));
    std::vector<float> affinity(clusters.size());
    for (size_t k = 0; k < clusters.size(); ++k) {
      float harmonic = 1.0f / static_cast<float>(k + 1);
      affinity[k] =
          (1.0f - cfg.interest_balance) * harmonic + cfg.interest_balance;
    }

    int64_t items_per_cluster = cfg.num_items / cfg.num_clusters;
    int32_t n_events =
        cfg.min_events +
        static_cast<int32_t>(rng.UniformInt(
            static_cast<uint64_t>(cfg.max_events - cfg.min_events + 1)));

    size_t active = 0;  // index into `clusters`: the session's live interest
    std::vector<int32_t> recent_clicks;
    int64_t ts = 0;
    int32_t target_count = 0;

    auto draw_interest_item = [&]() {
      int32_t cluster = clusters[active];
      int64_t rank = static_cast<int64_t>(
          rng.Zipf(static_cast<size_t>(items_per_cluster), cfg.zipf_s));
      return ClusterItem(cluster, rank, cfg.num_clusters);
    };

    auto emit = [&](int32_t beh) {
      // Session dynamics: occasionally switch the active interest.
      if (rng.Bernoulli(cfg.interest_switch)) {
        active = rng.Categorical(affinity);
      }
      int32_t item;
      bool reused = false;
      if (beh != 0 && !recent_clicks.empty() && rng.Bernoulli(cfg.funnel_reuse)) {
        // Deep behavior re-uses a recently clicked item (funnel).
        size_t pick = rng.UniformInt(
            std::min<uint64_t>(recent_clicks.size(), 10));
        item = recent_clicks[recent_clicks.size() - 1 - pick];
        reused = true;
      } else if (rng.Bernoulli(cfg.noise[beh])) {
        item = static_cast<int32_t>(
            rng.UniformInt(static_cast<uint64_t>(cfg.num_items)));
      } else {
        item = draw_interest_item();
      }
      (void)reused;
      Interaction e;
      e.user = u;
      e.item = item;
      e.behavior = static_cast<Behavior>(beh);
      e.timestamp = ts++;
      ds.Add(e);
      if (beh == 0) {
        recent_clicks.push_back(item);
        if (recent_clicks.size() > 32) {
          recent_clicks.erase(recent_clicks.begin());
        }
      }
      if (beh == target) ++target_count;
    };

    for (int32_t i = 0; i < n_events; ++i) {
      emit(static_cast<int32_t>(rng.Categorical(freq)));
    }
    // Guarantee leave-one-out eligibility: at least 3 target events, each
    // preceded by at least one event.
    while (target_count < 3) emit(target);
  }
  ds.Finalize();
  return ds;
}

SyntheticConfig TaobaoSimConfig() {
  SyntheticConfig cfg;
  cfg.name = "TaobaoSim";
  return cfg;
}

SyntheticConfig TmallSimConfig() {
  SyntheticConfig cfg;
  cfg.name = "TmallSim";
  cfg.num_users = 800;
  cfg.num_items = 1000;
  cfg.num_clusters = 20;
  cfg.interests_per_user = 4;
  cfg.min_events = 40;
  cfg.max_events = 110;
  cfg.funnel_reuse = 0.75f;
  cfg.noise[0] = 0.40f;
  cfg.seed = 11;
  return cfg;
}

SyntheticConfig YelpSimConfig() {
  SyntheticConfig cfg;
  cfg.name = "YelpSim";
  cfg.num_users = 700;
  cfg.num_items = 900;
  cfg.num_behaviors = 3;  // e.g. view / tip / like
  cfg.num_clusters = 18;
  cfg.interests_per_user = 2;
  cfg.min_events = 20;
  cfg.max_events = 60;
  cfg.freq[0] = 1.0f;
  cfg.freq[1] = 0.35f;
  cfg.freq[2] = 0.25f;
  cfg.noise[0] = 0.30f;
  cfg.noise[1] = 0.15f;
  cfg.noise[2] = 0.08f;
  cfg.seed = 13;
  return cfg;
}

}  // namespace missl::data
