#include "data/batch.h"

#include <algorithm>

#include "utils/check.h"

namespace missl::data {

int32_t RecencyBucket(int64_t gap) {
  if (gap < 0) gap = 0;
  int32_t bucket = 0;
  while (bucket < kNumRecencyBuckets - 1 &&
         (int64_t{1} << (bucket + 1)) <= gap + 1) {
    ++bucket;
  }
  return bucket;
}

BatchBuilder::BatchBuilder(const Dataset& ds, int64_t max_len)
    : ds_(&ds), max_len_(max_len) {
  MISSL_CHECK(max_len > 0) << "max_len must be positive";
}

void BatchBuilder::EnableTrainNegatives(const NegativeSampler* sampler,
                                        int32_t count, uint64_t seed) {
  MISSL_CHECK(sampler != nullptr && count > 0);
  neg_sampler_ = sampler;
  neg_count_ = count;
  neg_rng_.Seed(seed);
}

Batch BatchBuilder::Build(const std::vector<SplitView::TrainExample>& examples) {
  Batch b;
  b.batch_size = static_cast<int64_t>(examples.size());
  b.max_len = max_len_;
  b.num_behaviors = ds_->num_behaviors();
  MISSL_CHECK(b.batch_size > 0) << "empty batch";
  int64_t bt = b.batch_size * max_len_;
  b.beh_items.assign(static_cast<size_t>(b.num_behaviors),
                     std::vector<int32_t>(static_cast<size_t>(bt), -1));
  b.merged_items.assign(static_cast<size_t>(bt), -1);
  b.merged_behaviors.assign(static_cast<size_t>(bt), -1);
  b.merged_recency.assign(static_cast<size_t>(bt), -1);
  b.users.resize(static_cast<size_t>(b.batch_size));
  b.targets.resize(static_cast<size_t>(b.batch_size));
  b.target_behavior.resize(static_cast<size_t>(b.batch_size));

  for (int64_t row = 0; row < b.batch_size; ++row) {
    const auto& ex = examples[static_cast<size_t>(row)];
    const auto& events = ds_->user(ex.user).events;
    MISSL_CHECK(ex.cut > 0 && ex.cut < static_cast<int64_t>(events.size()))
        << "bad cut " << ex.cut << " for user " << ex.user;
    const Interaction& tgt = events[static_cast<size_t>(ex.cut)];
    b.users[static_cast<size_t>(row)] = ex.user;
    b.targets[static_cast<size_t>(row)] = tgt.item;
    b.target_behavior[static_cast<size_t>(row)] =
        static_cast<int32_t>(tgt.behavior);

    // Merged stream: last max_len events before the cut, front-padded.
    int64_t start = std::max<int64_t>(0, ex.cut - max_len_);
    int64_t n = ex.cut - start;
    for (int64_t i = 0; i < n; ++i) {
      const Interaction& e = events[static_cast<size_t>(start + i)];
      int64_t pos = row * max_len_ + (max_len_ - n + i);
      b.merged_items[static_cast<size_t>(pos)] = e.item;
      b.merged_behaviors[static_cast<size_t>(pos)] =
          static_cast<int32_t>(e.behavior);
      b.merged_recency[static_cast<size_t>(pos)] =
          RecencyBucket(tgt.timestamp - e.timestamp);
    }

    // Per-behavior streams: last max_len events of each channel.
    for (int32_t beh = 0; beh < b.num_behaviors; ++beh) {
      std::vector<int32_t> items;
      for (int64_t i = 0; i < ex.cut; ++i) {
        const Interaction& e = events[static_cast<size_t>(i)];
        if (static_cast<int32_t>(e.behavior) == beh) items.push_back(e.item);
      }
      int64_t cnt = static_cast<int64_t>(items.size());
      int64_t keep = std::min(cnt, max_len_);
      for (int64_t i = 0; i < keep; ++i) {
        int64_t pos = row * max_len_ + (max_len_ - keep + i);
        b.beh_items[static_cast<size_t>(beh)][static_cast<size_t>(pos)] =
            items[static_cast<size_t>(cnt - keep + i)];
      }
    }

    if (neg_sampler_ != nullptr) {
      std::vector<int32_t> negs = neg_sampler_->Sample(
          ex.user, tgt.item, neg_count_, &neg_rng_);
      b.train_negatives.insert(b.train_negatives.end(), negs.begin(),
                               negs.end());
    }
  }
  b.num_train_negatives = neg_sampler_ != nullptr ? neg_count_ : 0;
  return b;
}

NegativeSampler::NegativeSampler(const Dataset& ds) : ds_(&ds) {
  user_items_.resize(static_cast<size_t>(ds.num_users()));
  std::vector<double> counts(static_cast<size_t>(ds.num_items()), 0.0);
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    auto& items = user_items_[static_cast<size_t>(u)];
    for (const auto& e : ds.user(u).events) {
      items.push_back(e.item);
      counts[static_cast<size_t>(e.item)] += 1.0;
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
  }
  // Cumulative popularity with +1 smoothing so never-seen items stay
  // reachable.
  pop_cdf_.resize(counts.size());
  double acc = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    acc += counts[i] + 1.0;
    pop_cdf_[i] = acc;
  }
}

const std::vector<int32_t>& NegativeSampler::SeenItems(int32_t user) const {
  MISSL_CHECK(user >= 0 && user < ds_->num_users());
  return user_items_[static_cast<size_t>(user)];
}

std::vector<int32_t> NegativeSampler::SampleImpl(int32_t user, int32_t target,
                                                 int32_t k, Rng* rng,
                                                 bool popularity) const {
  MISSL_CHECK(user >= 0 && user < ds_->num_users());
  MISSL_CHECK(rng != nullptr);
  const auto& seen = user_items_[static_cast<size_t>(user)];
  MISSL_CHECK(static_cast<int64_t>(seen.size()) + k < ds_->num_items())
      << "not enough unseen items to sample " << k << " negatives";
  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(k));
  std::vector<int32_t> drawn;  // keep negatives distinct within the set
  while (static_cast<int32_t>(out.size()) < k) {
    int32_t cand;
    if (popularity) {
      double r = static_cast<double>(rng->Uniform()) * pop_cdf_.back();
      cand = static_cast<int32_t>(
          std::lower_bound(pop_cdf_.begin(), pop_cdf_.end(), r) -
          pop_cdf_.begin());
      if (cand >= ds_->num_items()) cand = ds_->num_items() - 1;
    } else {
      cand = static_cast<int32_t>(
          rng->UniformInt(static_cast<uint64_t>(ds_->num_items())));
    }
    if (cand == target) continue;
    if (std::binary_search(seen.begin(), seen.end(), cand)) continue;
    if (std::find(drawn.begin(), drawn.end(), cand) != drawn.end()) continue;
    drawn.push_back(cand);
    out.push_back(cand);
  }
  return out;
}

std::vector<int32_t> NegativeSampler::Sample(int32_t user, int32_t target,
                                             int32_t k, Rng* rng) const {
  return SampleImpl(user, target, k, rng, /*popularity=*/false);
}

std::vector<int32_t> NegativeSampler::SamplePopularity(int32_t user,
                                                       int32_t target, int32_t k,
                                                       Rng* rng) const {
  return SampleImpl(user, target, k, rng, /*popularity=*/true);
}

MiniBatcher::MiniBatcher(std::vector<SplitView::TrainExample> examples,
                         int64_t batch_size, uint64_t seed)
    : examples_(std::move(examples)), batch_size_(batch_size), rng_(seed) {
  MISSL_CHECK(batch_size > 0) << "batch_size must be positive";
  Reset();
}

void MiniBatcher::Reset() {
  rng_.Shuffle(&examples_);
  pos_ = 0;
}

bool MiniBatcher::Next(std::vector<SplitView::TrainExample>* out) {
  MISSL_CHECK(out != nullptr);
  if (pos_ >= examples_.size()) return false;
  size_t end = std::min(examples_.size(), pos_ + static_cast<size_t>(batch_size_));
  out->assign(examples_.begin() + static_cast<int64_t>(pos_),
              examples_.begin() + static_cast<int64_t>(end));
  pos_ = end;
  return true;
}

int64_t MiniBatcher::batches_per_epoch() const {
  return (num_examples() + batch_size_ - 1) / batch_size_;
}

}  // namespace missl::data
