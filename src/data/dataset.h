// Multi-behavior interaction dataset: storage, TSV I/O, statistics, and the
// leave-one-out split over the target behavior.
#ifndef MISSL_DATA_DATASET_H_
#define MISSL_DATA_DATASET_H_

#include <string>
#include <vector>

#include "data/types.h"
#include "utils/status.h"

namespace missl::data {

/// Per-behavior interaction counts and averages.
struct DatasetStats {
  int32_t num_users = 0;
  int32_t num_items = 0;
  int64_t num_interactions = 0;
  int64_t per_behavior[kMaxBehaviors] = {0, 0, 0, 0};
  double avg_seq_len = 0.0;
};

/// A complete multi-behavior dataset. Users/items are dense ids
/// [0, num_users) / [0, num_items). Events within a user are sorted by
/// timestamp.
class Dataset {
 public:
  Dataset(int32_t num_users, int32_t num_items, int32_t num_behaviors,
          std::string name = "dataset");

  /// Appends an interaction. Events may arrive unsorted; call Finalize()
  /// before using the dataset.
  void Add(const Interaction& inter);

  /// Sorts each user's events by timestamp (stable). Must be called once
  /// after the last Add and before reads.
  void Finalize();

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  int32_t num_behaviors() const { return num_behaviors_; }
  const std::string& name() const { return name_; }
  /// The deepest behavior channel present — the prediction target.
  Behavior target_behavior() const {
    return static_cast<Behavior>(num_behaviors_ - 1);
  }

  const UserSequence& user(int32_t u) const;
  const std::vector<UserSequence>& users() const { return users_; }

  /// Aggregate statistics (for the dataset-statistics table).
  DatasetStats Stats() const;

  /// Loads "user\titem\tbehavior\ttimestamp" lines; `behavior` is the
  /// integer channel. Infers user/item/behavior counts from the data.
  static Status LoadTsv(const std::string& path, Dataset* out);

  /// Writes the dataset in the TSV format accepted by LoadTsv.
  Status SaveTsv(const std::string& path) const;

 private:
  int32_t num_users_;
  int32_t num_items_;
  int32_t num_behaviors_;
  std::string name_;
  std::vector<UserSequence> users_;
  bool finalized_ = false;

  friend class SplitView;
};

/// Leave-one-out split over the target behavior:
///  - test: the index (into the user's event stream) of the LAST
///    target-behavior event;
///  - valid: the index of the SECOND-TO-LAST target-behavior event;
///  - train: any earlier target-behavior event with non-empty history.
/// Users with fewer than `min_target_events` target events are excluded
/// from evaluation (index -1).
struct SplitView {
  explicit SplitView(const Dataset& ds, int32_t min_target_events = 3);

  const Dataset* dataset;
  std::vector<int64_t> test_pos;   ///< per user; -1 when excluded
  std::vector<int64_t> valid_pos;  ///< per user; -1 when excluded

  /// (user, cut) training examples: events[cut] is a target-behavior event
  /// strictly before valid_pos with at least one preceding event.
  struct TrainExample {
    int32_t user;
    int64_t cut;
  };
  std::vector<TrainExample> train_examples;

  /// Number of users with a usable test position.
  int64_t NumEvalUsers() const;
};

}  // namespace missl::data

#endif  // MISSL_DATA_DATASET_H_
