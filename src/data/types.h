// Core record types for multi-behavior interaction data.
#ifndef MISSL_DATA_TYPES_H_
#define MISSL_DATA_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace missl::data {

/// Behavior channels, ordered from shallow (noisy, dense) to deep (clean,
/// sparse). Datasets may use a prefix of these (e.g. Yelp-style data has 3).
/// The *target* behavior — the one evaluation predicts — is the deepest
/// channel present (kBuy by default).
enum class Behavior : int32_t {
  kClick = 0,
  kCart = 1,
  kFav = 2,
  kBuy = 3,
};

/// Number of defined behavior channels.
inline constexpr int32_t kMaxBehaviors = 4;

/// Short name for logs and tables ("click", "cart", "fav", "buy").
const char* BehaviorName(Behavior b);

/// One user-item interaction event.
struct Interaction {
  int32_t user = 0;
  int32_t item = 0;
  Behavior behavior = Behavior::kClick;
  int64_t timestamp = 0;
};

/// A user's full event stream, sorted by (timestamp, insertion order).
struct UserSequence {
  int32_t user = 0;
  std::vector<Interaction> events;
};

}  // namespace missl::data

#endif  // MISSL_DATA_TYPES_H_
