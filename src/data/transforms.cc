#include "data/transforms.h"

#include <algorithm>

#include "utils/check.h"

namespace missl::data {

TransformResult KCoreFilter(const Dataset& ds, int32_t user_core,
                            int32_t item_core) {
  MISSL_CHECK(user_core >= 0 && item_core >= 0);
  std::vector<bool> keep_user(static_cast<size_t>(ds.num_users()), true);
  std::vector<bool> keep_item(static_cast<size_t>(ds.num_items()), true);

  bool changed = true;
  while (changed) {
    changed = false;
    // Count surviving events per user and per item.
    std::vector<int64_t> ucount(static_cast<size_t>(ds.num_users()), 0);
    std::vector<int64_t> icount(static_cast<size_t>(ds.num_items()), 0);
    for (int32_t u = 0; u < ds.num_users(); ++u) {
      if (!keep_user[static_cast<size_t>(u)]) continue;
      for (const auto& e : ds.user(u).events) {
        if (!keep_item[static_cast<size_t>(e.item)]) continue;
        ucount[static_cast<size_t>(u)]++;
        icount[static_cast<size_t>(e.item)]++;
      }
    }
    for (int32_t u = 0; u < ds.num_users(); ++u) {
      if (keep_user[static_cast<size_t>(u)] &&
          ucount[static_cast<size_t>(u)] < user_core) {
        keep_user[static_cast<size_t>(u)] = false;
        changed = true;
      }
    }
    for (int32_t i = 0; i < ds.num_items(); ++i) {
      if (keep_item[static_cast<size_t>(i)] &&
          icount[static_cast<size_t>(i)] < item_core) {
        keep_item[static_cast<size_t>(i)] = false;
        changed = true;
      }
    }
  }

  TransformResult out{Dataset(1, 1, ds.num_behaviors(), ds.name() + "-kcore"),
                      {}, {}};
  std::vector<int32_t> user_new(static_cast<size_t>(ds.num_users()), -1);
  std::vector<int32_t> item_new(static_cast<size_t>(ds.num_items()), -1);
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    if (keep_user[static_cast<size_t>(u)]) {
      user_new[static_cast<size_t>(u)] =
          static_cast<int32_t>(out.user_map.size());
      out.user_map.push_back(u);
    }
  }
  for (int32_t i = 0; i < ds.num_items(); ++i) {
    if (keep_item[static_cast<size_t>(i)]) {
      item_new[static_cast<size_t>(i)] =
          static_cast<int32_t>(out.item_map.size());
      out.item_map.push_back(i);
    }
  }
  MISSL_CHECK(!out.user_map.empty() && !out.item_map.empty())
      << "k-core filter removed everything (user_core=" << user_core
      << ", item_core=" << item_core << ")";

  out.dataset = Dataset(static_cast<int32_t>(out.user_map.size()),
                        static_cast<int32_t>(out.item_map.size()),
                        ds.num_behaviors(), ds.name() + "-kcore");
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    if (!keep_user[static_cast<size_t>(u)]) continue;
    for (const auto& e : ds.user(u).events) {
      if (!keep_item[static_cast<size_t>(e.item)]) continue;
      Interaction ne = e;
      ne.user = user_new[static_cast<size_t>(u)];
      ne.item = item_new[static_cast<size_t>(e.item)];
      out.dataset.Add(ne);
    }
  }
  out.dataset.Finalize();
  return out;
}

Dataset TruncateHistories(const Dataset& ds, int64_t max_events) {
  MISSL_CHECK(max_events > 0);
  Dataset out(ds.num_users(), ds.num_items(), ds.num_behaviors(),
              ds.name() + "-trunc");
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    const auto& events = ds.user(u).events;
    int64_t start = std::max<int64_t>(
        0, static_cast<int64_t>(events.size()) - max_events);
    for (size_t i = static_cast<size_t>(start); i < events.size(); ++i) {
      out.Add(events[i]);
    }
  }
  out.Finalize();
  return out;
}

Dataset FilterBefore(const Dataset& ds, int64_t cutoff) {
  Dataset out(ds.num_users(), ds.num_items(), ds.num_behaviors(),
              ds.name() + "-before");
  for (int32_t u = 0; u < ds.num_users(); ++u) {
    for (const auto& e : ds.user(u).events) {
      if (e.timestamp < cutoff) out.Add(e);
    }
  }
  out.Finalize();
  return out;
}

}  // namespace missl::data
