// Batch assembly: turns (user, cut) examples into padded id arrays ready for
// embedding lookup. Sequences are FRONT-padded with -1 so the most recent
// event always sits at index max_len - 1.
#ifndef MISSL_DATA_BATCH_H_
#define MISSL_DATA_BATCH_H_

#include <vector>

#include "data/dataset.h"
#include "utils/rng.h"

namespace missl::data {

/// A collated minibatch. All id arrays are flattened row-major [B * max_len]
/// with -1 padding.
struct Batch {
  int64_t batch_size = 0;
  int64_t max_len = 0;
  int32_t num_behaviors = 0;

  /// Per-behavior item sequences: beh_items[b] holds behavior channel b's
  /// items (most recent max_len of that channel before the cut).
  std::vector<std::vector<int32_t>> beh_items;

  /// Merged chronological stream across all behaviors (most recent max_len
  /// events before the cut), with parallel behavior tags.
  std::vector<int32_t> merged_items;
  std::vector<int32_t> merged_behaviors;
  /// Log2-bucketed recency of each merged event relative to the target
  /// event's timestamp: bucket = min(15, floor(log2(1 + gap))); -1 on pad.
  std::vector<int32_t> merged_recency;

  std::vector<int32_t> users;            ///< [B]
  std::vector<int32_t> targets;          ///< [B] next item to predict
  std::vector<int32_t> target_behavior;  ///< [B] behavior of the target event

  /// Optional sampled-softmax negatives: [B * num_train_negatives], filled
  /// only when the builder was configured with EnableTrainNegatives. Empty
  /// means models should train with a full-catalog softmax.
  std::vector<int32_t> train_negatives;
  int32_t num_train_negatives = 0;
};

class NegativeSampler;

/// Builds batches from a dataset given (user, cut) pairs. The event at
/// `cut` is the prediction target; only events strictly before it are
/// visible as history.
class BatchBuilder {
 public:
  BatchBuilder(const Dataset& ds, int64_t max_len);

  /// Enables sampled-softmax training: every built batch carries `count`
  /// uniform negatives per example. `sampler` must outlive the builder.
  void EnableTrainNegatives(const NegativeSampler* sampler, int32_t count,
                            uint64_t seed);

  /// Collates the given examples into one batch.
  Batch Build(const std::vector<SplitView::TrainExample>& examples);

  int64_t max_len() const { return max_len_; }

 private:
  const Dataset* ds_;
  int64_t max_len_;
  const NegativeSampler* neg_sampler_ = nullptr;
  int32_t neg_count_ = 0;
  Rng neg_rng_;
};

/// Number of recency buckets emitted in Batch::merged_recency.
inline constexpr int32_t kNumRecencyBuckets = 16;

/// Log2 recency bucket for a time gap (negative gaps clamp to 0):
/// min(kNumRecencyBuckets - 1, floor(log2(1 + gap))). Shared by the
/// training-time BatchBuilder and the serving-time query collator
/// (src/serve/), which must bucket identically.
int32_t RecencyBucket(int64_t gap);

/// Negative sampler that avoids a user's entire interacted item set.
/// Supports uniform draws and popularity-weighted draws (negatives
/// proportional to global interaction counts — a harder protocol, since
/// popular items are stronger distractors).
class NegativeSampler {
 public:
  explicit NegativeSampler(const Dataset& ds);

  /// Draws k distinct negatives for `user` (never the target, never any item
  /// the user interacted with under any behavior).
  std::vector<int32_t> Sample(int32_t user, int32_t target, int32_t k,
                              Rng* rng) const;

  /// Like Sample but popularity-weighted.
  std::vector<int32_t> SamplePopularity(int32_t user, int32_t target, int32_t k,
                                        Rng* rng) const;

  /// Items the user interacted with (sorted, deduplicated).
  const std::vector<int32_t>& SeenItems(int32_t user) const;

 private:
  std::vector<int32_t> SampleImpl(int32_t user, int32_t target, int32_t k,
                                  Rng* rng, bool popularity) const;

  const Dataset* ds_;
  std::vector<std::vector<int32_t>> user_items_;  ///< sorted per user
  std::vector<double> pop_cdf_;  ///< cumulative interaction counts per item
};

/// Epoch iterator over training examples: shuffles once per epoch and yields
/// fixed-size chunks (last chunk may be smaller).
class MiniBatcher {
 public:
  MiniBatcher(std::vector<SplitView::TrainExample> examples, int64_t batch_size,
              uint64_t seed);

  /// Starts a new epoch (reshuffles).
  void Reset();
  /// Fills `out` with the next chunk; returns false at epoch end.
  bool Next(std::vector<SplitView::TrainExample>* out);

  int64_t num_examples() const { return static_cast<int64_t>(examples_.size()); }
  int64_t batches_per_epoch() const;

 private:
  std::vector<SplitView::TrainExample> examples_;
  int64_t batch_size_;
  Rng rng_;
  size_t pos_ = 0;
};

}  // namespace missl::data

#endif  // MISSL_DATA_BATCH_H_
