// Latent-interest synthetic multi-behavior data generator.
//
// This is the documented substitution for the Taobao/Tmall/Yelp logs the
// original evaluation would use (see DESIGN.md): each user is planted with
// K_true latent interests over item clusters; behavior channels differ in
// frequency and noise rate (clicks are dense and noisy, the target behavior
// is sparse and clean); deep events preferentially re-use recently clicked
// items (funnel structure). These are exactly the structural properties the
// multi-behavior/multi-interest model family exploits, so relative model
// ordering on this data is meaningful.
#ifndef MISSL_DATA_SYNTHETIC_H_
#define MISSL_DATA_SYNTHETIC_H_

#include <string>

#include "data/dataset.h"

namespace missl::data {

/// Knobs for the generator. Defaults give a Taobao-like 4-behavior funnel.
struct SyntheticConfig {
  std::string name = "TaobaoSim";
  int32_t num_users = 1000;
  int32_t num_items = 1200;
  int32_t num_behaviors = 4;

  int32_t num_clusters = 24;        ///< interest atoms items are grouped into
  int32_t interests_per_user = 3;   ///< K_true latent interests per user
  /// Interest-affinity balance: 0 gives harmonic weights (1, 1/2, 1/3, ...,
  /// a dominant main interest), 1 gives equal weights (every interest
  /// equally likely — the regime where multi-interest models matter most).
  float interest_balance = 0.0f;
  int32_t min_events = 30;          ///< events per user, uniform range
  int32_t max_events = 90;

  /// Probability that an event of each channel is pure noise (uniform item).
  float noise[kMaxBehaviors] = {0.35f, 0.20f, 0.12f, 0.06f};
  /// Relative frequency of each channel in the event stream.
  float freq[kMaxBehaviors] = {1.0f, 0.30f, 0.20f, 0.15f};
  /// Probability a deep (non-click) event re-uses a recently clicked item.
  float funnel_reuse = 0.6f;
  /// Per-event probability that the user's active interest switches.
  float interest_switch = 0.2f;
  /// Within-cluster item popularity skew (Zipf exponent).
  double zipf_s = 1.05;

  uint64_t seed = 7;
};

/// Generates a finalized dataset. Guarantees every user has at least 3
/// target-behavior events (so leave-one-out evaluation covers all users).
Dataset GenerateSynthetic(const SyntheticConfig& config);

/// Cluster of an item under the generator's round-robin assignment; exposed
/// so tests and the interest-visualization bench can recover ground truth.
int32_t ItemCluster(int32_t item, int32_t num_clusters);

/// Named presets mimicking the public datasets' shape ratios.
SyntheticConfig TaobaoSimConfig();  ///< 4 behaviors, dense clicks
SyntheticConfig TmallSimConfig();   ///< 4 behaviors, heavier funnel reuse
SyntheticConfig YelpSimConfig();    ///< 3 behaviors, shorter sequences

}  // namespace missl::data

#endif  // MISSL_DATA_SYNTHETIC_H_
