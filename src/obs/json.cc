#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace missl::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace missl::obs
