// Minimal JSON emission helpers shared by the observability exporters
// (metrics registry, trace profiler, training telemetry, bench results).
// This is a writer only — nothing in the library parses JSON.
#ifndef MISSL_OBS_JSON_H_
#define MISSL_OBS_JSON_H_

#include <string>

namespace missl::obs {

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Does not add the surrounding quotes.
std::string JsonEscape(const std::string& s);

/// Renders a double as a JSON number token. Infinities and NaN (which JSON
/// cannot represent) are emitted as 0 so exported documents always parse.
std::string JsonNumber(double v);

}  // namespace missl::obs

#endif  // MISSL_OBS_JSON_H_
