// Always-on flight recorder: a fixed-memory, lock-free ring of the most
// recent trace spans per thread, for tail-latency forensics on a live
// server without pre-arranged StartTracing.
//
// Unlike the tracing profiler (obs/trace.h), which grows unbounded and is
// opt-in per run, the flight recorder is on by default and overwrites its
// oldest records: each thread owns a ring of FlightRingCapacity() slots
// (MISSL_FLIGHT_CAPACITY, default 4096), so memory is capped at
// rings * capacity * sizeof(slot) regardless of uptime. Every TraceSpan
// lands here automatically while the recorder is enabled; per-op kernel
// spans (obs/op_stats.h) stay tracing-only — they are too hot.
//
// Recording takes no lock: each slot is a tiny seqlock built from plain
// std::atomic fields (TSan-clean), written only by the ring's owner thread.
// A dump (FlightRecorderToJson, /tracez, SIGUSR1 in missl_serve) walks the
// rings concurrently with writers and skips slots it catches mid-write, so
// a scrape never stalls the serving path. Span names are interned
// (InternedName) so slots store stable pointers, not strings.
#ifndef MISSL_OBS_FLIGHT_RECORDER_H_
#define MISSL_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "utils/status.h"

namespace missl::obs {

/// True while spans are being recorded into the rings. Defaults to enabled;
/// MISSL_FLIGHT_RECORDER=0 in the environment starts the process disabled.
bool FlightRecorderEnabled();
void SetFlightRecorderEnabled(bool enabled);

/// Slots per thread ring. Read once from MISSL_FLIGHT_CAPACITY at first use
/// and clamped to [64, 1<<20]; fixed for the process lifetime.
size_t FlightRingCapacity();

/// Returns a pointer to a process-lifetime copy of `name`, suitable for
/// FlightRecord. Repeat calls with the same string return the same pointer;
/// the steady-state path is one thread-local hash lookup, no global lock.
const char* InternedName(const std::string& name);

/// Records one complete span into the calling thread's ring, overwriting
/// the oldest record once the ring is full. `name` and `cat` must outlive
/// the process (string literals or InternedName results). No-op while the
/// recorder is disabled.
void FlightRecord(const char* name, const char* cat, int64_t start_ns,
                  int64_t dur_ns);

/// Dumps every ring's surviving records as a Chrome trace-event JSON
/// document (same shape as obs::TraceToJson — open in Perfetto or
/// chrome://tracing). Safe to call at any time from any thread; slots being
/// rewritten during the walk are skipped, not torn.
std::string FlightRecorderToJson();

/// FlightRecorderToJson straight to a file.
Status WriteFlightRecorder(const std::string& path);

/// Total records written and not yet cleared, across all rings — exceeds
/// the number of dumpable records once rings wrap.
int64_t FlightRecorderTotalRecorded();

/// Logically drops all current records (dumps only show spans recorded
/// after the clear). Rings keep their memory; writers are not disturbed.
void ClearFlightRecorder();

}  // namespace missl::obs

#endif  // MISSL_OBS_FLIGHT_RECORDER_H_
