#include "obs/exposition.h"

#include <sstream>

#include "obs/json.h"

#ifndef MISSL_GIT_REV
#define MISSL_GIT_REV "unknown"
#endif

namespace missl::obs {

namespace {

bool PromNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':')
    return true;
  return !first && c >= '0' && c <= '9';
}

void AppendHistogramJson(std::ostringstream& ss, const HistogramSnapshot& h) {
  ss << "{\"count\":" << h.count << ",\"sum\":" << h.sum << ",\"buckets\":[";
  bool first = true;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) ss << ",";
    first = false;
    ss << "{\"le\":" << Histogram::BucketUpperBound(i)
       << ",\"n\":" << h.buckets[i] << "}";
  }
  ss << "]}";
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    if (PromNameChar(c, out.empty())) {
      out.push_back(c);
    } else if (out.empty() && c >= '0' && c <= '9') {
      out.push_back('_');
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string PrometheusLabelEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snap) {
  std::ostringstream ss;
  for (const auto& [name, v] : snap.counters) {
    std::string p = PrometheusName(name);
    ss << "# TYPE " << p << " counter\n" << p << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    std::string p = PrometheusName(name);
    ss << "# TYPE " << p << " gauge\n" << p << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    std::string p = PrometheusName(name);
    ss << "# TYPE " << p << " histogram\n";
    // Cumulative buckets over every finite pow2 bound; the last registry
    // bucket is the overflow catch-all, folded into +Inf.
    int64_t cum = 0;
    for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
      cum += h.buckets[i];
      ss << p << "_bucket{le=\"" << Histogram::BucketUpperBound(i) << "\"} "
         << cum << "\n";
    }
    ss << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    ss << p << "_sum " << h.sum << "\n";
    ss << p << "_count " << h.count << "\n";
  }
  return ss.str();
}

std::string SnapshotToJson(const MetricsSnapshot& snap) {
  std::ostringstream ss;
  ss << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) ss << ",";
    first = false;
    ss << "\"" << JsonEscape(name) << "\":" << v;
  }
  ss << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) ss << ",";
    first = false;
    ss << "\"" << JsonEscape(name) << "\":" << v;
  }
  ss << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) ss << ",";
    first = false;
    ss << "\"" << JsonEscape(name) << "\":";
    AppendHistogramJson(ss, h);
  }
  ss << "}}";
  return ss.str();
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& cur,
                              const MetricsSnapshot& base) {
  MetricsSnapshot d;
  for (const auto& [name, v] : cur.counters) {
    auto it = base.counters.find(name);
    d.counters[name] = it == base.counters.end() ? v : v - it->second;
  }
  d.gauges = cur.gauges;
  for (const auto& [name, h] : cur.histograms) {
    HistogramSnapshot& out = d.histograms[name];
    out = h;
    auto it = base.histograms.find(name);
    if (it == base.histograms.end()) continue;
    out.count -= it->second.count;
    out.sum -= it->second.sum;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      out.buckets[i] -= it->second.buckets[i];
    }
  }
  return d;
}

int64_t SnapshotPercentile(const HistogramSnapshot& h, double p) {
  if (h.count <= 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  int64_t target =
      static_cast<int64_t>(p * static_cast<double>(h.count - 1)) + 1;
  int64_t seen = 0;
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    seen += h.buckets[i];
    if (seen >= target) return Histogram::BucketUpperBound(i);
  }
  return Histogram::BucketUpperBound(Histogram::kNumBuckets - 1);
}

const char* BuildRev() { return MISSL_GIT_REV; }

}  // namespace missl::obs
