#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/json.h"

namespace missl::obs {

namespace {

struct TraceEvent {
  std::string name;
  const char* cat;
  int64_t start_ns;
  int64_t dur_ns;
  std::string args_json;
};

// One buffer per thread. The owning thread appends; the exporter reads from
// another thread — both under the buffer's own mutex, which is uncontended
// except during an export. Buffers are kept alive via shared_ptr in the
// process-wide registry so events survive their thread's exit (pool workers
// live until static teardown; short-lived test threads do not).
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int tid;
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 0;
};

TraceRegistry& Registry() {
  // Leaked: thread_local destructors of late-exiting threads may still touch
  // the registry after main() returns (still reachable, LSan-clean).
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

std::atomic<bool> g_tracing{false};

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceRegistry& reg = Registry();
    std::lock_guard<std::mutex> l(reg.mu);
    b->tid = reg.next_tid++;
    reg.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

bool TracingEnabled() { return g_tracing.load(std::memory_order_relaxed); }

void StartTracing() {
  ClearTrace();
  g_tracing.store(true, std::memory_order_relaxed);
}

void StopTracing() { g_tracing.store(false, std::memory_order_relaxed); }

void ClearTrace() {
  TraceRegistry& reg = Registry();
  std::lock_guard<std::mutex> l(reg.mu);
  for (auto& b : reg.buffers) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->events.clear();
  }
}

size_t TraceEventCount() {
  TraceRegistry& reg = Registry();
  std::lock_guard<std::mutex> l(reg.mu);
  size_t n = 0;
  for (auto& b : reg.buffers) {
    std::lock_guard<std::mutex> bl(b->mu);
    n += b->events.size();
  }
  return n;
}

int64_t NowNanos() {
  static const std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - base)
      .count();
}

void EmitCompleteSpan(std::string name, const char* cat, int64_t start_ns,
                      int64_t dur_ns, std::string args_json) {
  if (FlightRecorderEnabled()) {
    FlightRecord(InternedName(name), cat, start_ns, dur_ns);
  }
  if (!TracingEnabled()) return;
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> l(buf.mu);
  buf.events.push_back(
      {std::move(name), cat, start_ns, dur_ns, std::move(args_json)});
}

std::string TraceToJson() {
  std::ostringstream ss;
  ss << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  TraceRegistry& reg = Registry();
  std::lock_guard<std::mutex> l(reg.mu);
  bool first = true;
  for (auto& b : reg.buffers) {
    std::lock_guard<std::mutex> bl(b->mu);
    for (const TraceEvent& e : b->events) {
      if (!first) ss << ",";
      first = false;
      // Chrome trace timestamps are microseconds; keep ns precision via the
      // fractional part.
      ss << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\"" << e.cat
         << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << b->tid
         << ",\"ts\":" << JsonNumber(static_cast<double>(e.start_ns) / 1e3)
         << ",\"dur\":" << JsonNumber(static_cast<double>(e.dur_ns) / 1e3);
      if (!e.args_json.empty()) ss << ",\"args\":" << e.args_json;
      ss << "}";
    }
  }
  ss << "]}";
  return ss.str();
}

Status WriteTrace(const std::string& path) {
  std::string json = TraceToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_err = std::fclose(f);
  if (written != json.size() || close_err != 0) {
    return Status::IOError("short write to trace file " + path);
  }
  return Status::OK();
}

}  // namespace missl::obs
