// Per-op instrumentation for the tensor dispatch layer: each named op entry
// point opens an OpScope that counts the call and its wall time into the
// metrics registry ("tensor.op.<Name>.calls" / ".nanos") and, while tracing
// is on, records a span on the calling thread's trace track.
//
// With metrics and tracing both disabled the scope is two predictable
// branches and no clock reads — cheap enough to sit on every op, including
// the elementwise ones.
#ifndef MISSL_OBS_OP_STATS_H_
#define MISSL_OBS_OP_STATS_H_

#include "obs/metrics.h"
#include "obs/trace.h"

namespace missl::obs {

/// Cached instrument pair for one op name. Get interns by name and returns
/// a process-lifetime reference; call sites hold it in a function-local
/// static so the registry lock is paid once per site.
struct OpStats {
  const char* name;
  Counter& calls;
  Counter& nanos;

  static const OpStats& Get(const char* name);
};

/// RAII scope doing the actual counting; see file comment.
class OpScope {
 public:
  explicit OpScope(const OpStats& stats) {
    if (MetricsEnabled() || TracingEnabled()) {
      stats_ = &stats;
      start_ = NowNanos();
    }
  }
  ~OpScope() {
    if (stats_ == nullptr) return;
    int64_t dur = NowNanos() - start_;
    stats_->calls.Add(1);
    stats_->nanos.Add(dur);
    if (TracingEnabled()) {
      EmitCompleteSpan(stats_->name, "tensor_op", start_, dur);
    }
  }
  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  const OpStats* stats_ = nullptr;
  int64_t start_ = 0;
};

}  // namespace missl::obs

/// Opens an instrumentation scope for the enclosing op. One use per scope.
#define MISSL_OP_SCOPE(op_name)                       \
  static const ::missl::obs::OpStats& missl_op_stats_ = \
      ::missl::obs::OpStats::Get(op_name);              \
  ::missl::obs::OpScope missl_op_scope_(missl_op_stats_)

#endif  // MISSL_OBS_OP_STATS_H_
