// Exposition layer over the metrics registry: renders a MetricsSnapshot
// (obs/metrics.h) as Prometheus text format or as a JSON document, and diffs
// two snapshots so a scraper can report what happened in a window instead of
// since process start.
//
// Everything here operates on plain-data snapshots — take one with
// MetricsRegistry::Global().Snapshot() (brief registry lock, relaxed loads)
// and render it without blocking instrument updates. The admin HTTP
// endpoint (serve/tcp_server.h) serves PrometheusText at /metrics and
// SnapshotToJson inside /statusz; bench_m1_serve scrapes /metrics and diffs
// with SnapshotDelta.
#ifndef MISSL_OBS_EXPOSITION_H_
#define MISSL_OBS_EXPOSITION_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace missl::obs {

/// Sanitizes an instrument name into a valid Prometheus metric name:
/// [a-zA-Z_:][a-zA-Z0-9_:]* — every other character (the registry's '.'
/// separators included) becomes '_', and a leading digit is prefixed with
/// '_'. "serve.tcp.bytes_in" -> "serve_tcp_bytes_in".
std::string PrometheusName(const std::string& name);

/// Escapes a string for use inside a Prometheus label value (backslash,
/// double quote, newline). Does not add the surrounding quotes.
std::string PrometheusLabelEscape(const std::string& s);

/// Renders the snapshot in Prometheus text exposition format (version
/// 0.0.4): every family gets a "# TYPE" line; counters and gauges one
/// sample line each; histograms the full cumulative form —
/// name_bucket{le="..."} lines for every pow2 bucket bound (the registry's
/// log2 buckets map directly to `le` labels), an le="+Inf" line equal to
/// name_count, plus name_sum and name_count. Families appear in sorted
/// name order, so output for an unchanged snapshot is byte-stable.
std::string PrometheusText(const MetricsSnapshot& snap);

/// Renders the snapshot as a JSON document with explicit histogram buckets:
/// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
/// "sum":..,"buckets":[{"le":..,"n":..},...]},...}}.
std::string SnapshotToJson(const MetricsSnapshot& snap);

/// Window delta `cur - base`: counters and histogram counts/sums/buckets
/// subtract (instruments absent from `base` pass through; a registry reset
/// between the snapshots can produce negative deltas — callers that reset
/// should re-baseline); gauges keep their `cur` point-in-time value.
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& cur,
                              const MetricsSnapshot& base);

/// Nearest-rank percentile over a histogram snapshot's buckets, returning
/// the containing bucket's upper bound (0 when empty) — same contract as
/// Histogram::ApproxPercentile, usable on deltas.
int64_t SnapshotPercentile(const HistogramSnapshot& h, double p);

/// Git revision the library was built from ("unknown" outside a git
/// checkout). Stamped into /statusz so a scraped server can be traced back
/// to its code, like the BENCH_*.json git_rev field.
const char* BuildRev();

}  // namespace missl::obs

#endif  // MISSL_OBS_EXPOSITION_H_
