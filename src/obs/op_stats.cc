#include "obs/op_stats.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace missl::obs {

const OpStats& OpStats::Get(const char* name) {
  // Leaked map so references handed to function-local statics stay valid
  // through static destruction (still reachable, LSan-clean).
  static std::mutex* mu = new std::mutex();
  static auto* stats = new std::map<std::string, std::unique_ptr<OpStats>>();
  std::lock_guard<std::mutex> l(*mu);
  auto it = stats->find(name);
  if (it == stats->end()) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    std::string base = std::string("tensor.op.") + name;
    it = stats->emplace(name, nullptr).first;
    // The name pointer aliases the map key (stable in std::map), so OpStats
    // never dangles even if the caller's string was temporary.
    it->second.reset(new OpStats{it->first.c_str(),
                                 reg.GetCounter(base + ".calls"),
                                 reg.GetCounter(base + ".nanos")});
  }
  return *it->second;
}

}  // namespace missl::obs
