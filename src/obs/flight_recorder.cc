#include "obs/flight_recorder.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "obs/json.h"

namespace missl::obs {

namespace {

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* v = std::getenv("MISSL_FLIGHT_RECORDER");
    // Opt-out, not opt-in: absent/empty/non-"0" all mean enabled.
    return v == nullptr || v[0] == '\0' || v[0] != '0';
  }();
  return enabled;
}

// One record slot, guarded by its own sequence number (seqlock): the owner
// thread bumps seq to odd, stores the fields, bumps it back to even. All
// fields are atomics, so a concurrent dump never has a data race — it just
// discards slots whose seq was odd or changed under it.
struct FlightSlot {
  std::atomic<uint32_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> cat{nullptr};
  std::atomic<int64_t> start_ns{0};
  std::atomic<int64_t> dur_ns{0};
};

// Per-thread ring. Only the owning thread writes slots and head; dumps read
// everything concurrently. `floor` implements ClearFlightRecorder without
// touching the slots: dumps ignore records with index < floor.
struct FlightRing {
  explicit FlightRing(size_t cap) : slots(cap) {}
  std::vector<FlightSlot> slots;
  std::atomic<uint64_t> head{0};   // total records ever written by the owner
  std::atomic<uint64_t> floor{0};  // records before this index are cleared
  int tid = 0;
};

struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<FlightRing>> rings;
  int next_tid = 0;
};

RingRegistry& Registry() {
  // Leaked: thread_local destructors of late-exiting threads may still touch
  // the registry after main() returns (still reachable, LSan-clean).
  static RingRegistry* registry = new RingRegistry();
  return *registry;
}

FlightRing& LocalRing() {
  thread_local std::shared_ptr<FlightRing> ring = [] {
    auto r = std::make_shared<FlightRing>(FlightRingCapacity());
    RingRegistry& reg = Registry();
    std::lock_guard<std::mutex> l(reg.mu);
    r->tid = reg.next_tid++;
    reg.rings.push_back(r);
    return r;
  }();
  return *ring;
}

struct InternTable {
  std::mutex mu;
  std::set<std::string> names;  // node-based: element addresses are stable
};

InternTable& Interns() {
  static InternTable* table = new InternTable();  // leaked, like the registry
  return *table;
}

struct DumpedEvent {
  const char* name;
  const char* cat;
  int64_t start_ns;
  int64_t dur_ns;
};

// Seqlock read of one slot; false when the slot was empty or mid-write.
bool ReadSlot(const FlightSlot& slot, DumpedEvent& out) {
  uint32_t s1 = slot.seq.load(std::memory_order_acquire);
  if (s1 == 0 || (s1 & 1u) != 0) return false;
  out.name = slot.name.load(std::memory_order_relaxed);
  out.cat = slot.cat.load(std::memory_order_relaxed);
  out.start_ns = slot.start_ns.load(std::memory_order_relaxed);
  out.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  uint32_t s2 = slot.seq.load(std::memory_order_relaxed);
  return s1 == s2 && out.name != nullptr;
}

}  // namespace

bool FlightRecorderEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetFlightRecorderEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

size_t FlightRingCapacity() {
  static const size_t capacity = [] {
    size_t cap = 4096;
    if (const char* v = std::getenv("MISSL_FLIGHT_CAPACITY")) {
      char* end = nullptr;
      long long parsed = std::strtoll(v, &end, 10);
      if (end != v && parsed > 0) cap = static_cast<size_t>(parsed);
    }
    if (cap < 64) cap = 64;
    if (cap > (size_t{1} << 20)) cap = size_t{1} << 20;
    return cap;
  }();
  return capacity;
}

const char* InternedName(const std::string& name) {
  // Per-thread cache in front of the global table: steady state (a server
  // emits the same few span names forever) never takes the lock.
  thread_local std::unordered_map<std::string, const char*> cache;
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  InternTable& table = Interns();
  const char* stable = nullptr;
  {
    std::lock_guard<std::mutex> l(table.mu);
    stable = table.names.insert(name).first->c_str();
  }
  cache.emplace(name, stable);
  return stable;
}

void FlightRecord(const char* name, const char* cat, int64_t start_ns,
                  int64_t dur_ns) {
  if (!FlightRecorderEnabled() || name == nullptr) return;
  FlightRing& ring = LocalRing();
  uint64_t h = ring.head.load(std::memory_order_relaxed);
  FlightSlot& slot = ring.slots[h % ring.slots.size()];
  uint32_t s = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(s + 1, std::memory_order_relaxed);  // odd: write in progress
  std::atomic_thread_fence(std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.cat.store(cat != nullptr ? cat : "", std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.seq.store(s + 2, std::memory_order_release);  // even: consistent
  ring.head.store(h + 1, std::memory_order_release);
}

std::string FlightRecorderToJson() {
  std::ostringstream ss;
  ss << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> l(reg.mu);
  bool first = true;
  for (auto& ring : reg.rings) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t floor = ring->floor.load(std::memory_order_relaxed);
    uint64_t cap = ring->slots.size();
    uint64_t lo = head > cap ? head - cap : 0;
    if (floor > lo) lo = floor;
    for (uint64_t i = lo; i < head; ++i) {
      DumpedEvent e;
      if (!ReadSlot(ring->slots[i % cap], e)) continue;
      if (!first) ss << ",";
      first = false;
      // Chrome trace timestamps are microseconds; keep ns precision via the
      // fractional part (same convention as obs::TraceToJson).
      ss << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\""
         << JsonEscape(e.cat) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
         << ring->tid
         << ",\"ts\":" << JsonNumber(static_cast<double>(e.start_ns) / 1e3)
         << ",\"dur\":" << JsonNumber(static_cast<double>(e.dur_ns) / 1e3)
         << "}";
    }
  }
  ss << "]}";
  return ss.str();
}

Status WriteFlightRecorder(const std::string& path) {
  std::string json = FlightRecorderToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open flight recorder file " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_err = std::fclose(f);
  if (written != json.size() || close_err != 0) {
    return Status::IOError("short write to flight recorder file " + path);
  }
  return Status::OK();
}

int64_t FlightRecorderTotalRecorded() {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> l(reg.mu);
  int64_t n = 0;
  for (auto& ring : reg.rings) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t floor = ring->floor.load(std::memory_order_relaxed);
    if (head > floor) n += static_cast<int64_t>(head - floor);
  }
  return n;
}

void ClearFlightRecorder() {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> l(reg.mu);
  for (auto& ring : reg.rings) {
    ring->floor.store(ring->head.load(std::memory_order_acquire),
                      std::memory_order_relaxed);
  }
}

}  // namespace missl::obs
