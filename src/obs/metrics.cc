#include "obs/metrics.h"

#include <bit>
#include <cstdlib>
#include <sstream>

#include "obs/json.h"
#include "obs/memory.h"

namespace missl::obs {

namespace {

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* v = std::getenv("MISSL_METRICS");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
}

}  // namespace

bool MetricsEnabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetMetricsEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

void Histogram::Observe(int64_t v) {
  if (!MetricsEnabled()) return;
  if (v < 0) v = 0;
  int idx = std::bit_width(static_cast<uint64_t>(v));  // 0 -> 0, else log2+1
  if (idx >= kNumBuckets) idx = kNumBuckets - 1;
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::mean() const {
  int64_t n = count();
  return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

int64_t Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 0;
  return (int64_t{1} << i) - 1;
}

int64_t Histogram::ApproxPercentile(double p) const {
  int64_t n = count();
  if (n <= 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  int64_t target = static_cast<int64_t>(p * static_cast<double>(n - 1)) + 1;
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += bucket(i);
    if (seen >= target) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::string Histogram::ToText() const {
  std::ostringstream ss;
  ss << "count=" << count() << " sum=" << sum() << " mean=" << mean()
     << " p50<=" << ApproxPercentile(0.5) << " p99<=" << ApproxPercentile(0.99)
     << " buckets=";
  bool first = true;
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t n = bucket(i);
    if (n == 0) continue;
    if (!first) ss << ",";
    first = false;
    ss << BucketUpperBound(i) << ":" << n;
  }
  if (first) ss << "-";
  return ss.str();
}

std::string Histogram::ToJson() const {
  std::ostringstream ss;
  ss << "{\"count\":" << count() << ",\"sum\":" << sum()
     << ",\"mean\":" << JsonNumber(mean()) << ",\"p50\":" << ApproxPercentile(0.5)
     << ",\"p99\":" << ApproxPercentile(0.99) << ",\"buckets\":[";
  bool first = true;
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t n = bucket(i);
    if (n == 0) continue;
    if (!first) ss << ",";
    first = false;
    ss << "{\"le\":" << BucketUpperBound(i) << ",\"n\":" << n << "}";
  }
  ss << "]}";
  return ss.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so instrument references handed out to worker threads stay valid
  // through static destruction (still reachable, so LSan stays quiet).
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> l(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::ToText() const {
  std::ostringstream ss;
  std::lock_guard<std::mutex> l(mu_);
  for (const auto& [name, c] : counters_) {
    ss << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    ss << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    ss << name << " " << h->ToText() << "\n";
  }
  MemoryStats m = CurrentMemoryStats();
  ss << "memory.live_bytes " << m.live_bytes << "\n";
  ss << "memory.peak_bytes " << m.peak_bytes << "\n";
  ss << "memory.live_tensors " << m.live_tensors << "\n";
  ss << "memory.live_autograd_nodes " << m.live_autograd_nodes << "\n";
  return ss.str();
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream ss;
  std::lock_guard<std::mutex> l(mu_);
  ss << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) ss << ",";
    first = false;
    ss << "\"" << JsonEscape(name) << "\":" << c->value();
  }
  ss << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) ss << ",";
    first = false;
    ss << "\"" << JsonEscape(name) << "\":" << g->value();
  }
  ss << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) ss << ",";
    first = false;
    ss << "\"" << JsonEscape(name) << "\":" << h->ToJson();
  }
  MemoryStats m = CurrentMemoryStats();
  ss << "},\"memory\":{\"live_bytes\":" << m.live_bytes
     << ",\"peak_bytes\":" << m.peak_bytes
     << ",\"live_tensors\":" << m.live_tensors
     << ",\"live_autograd_nodes\":" << m.live_autograd_nodes << "}}";
  return ss.str();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard<std::mutex> l(mu_);
    for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot& hs = snap.histograms[name];
      hs.sum = h->sum();
      // Derive count from the bucket reads instead of loading count_: a
      // racing Observe bumps its bucket before count_, so an independently
      // loaded count can be smaller than the bucket total — and a scraper
      // cross-checking le="+Inf" against _count would see a torn histogram.
      // The bucket sum is self-consistent by construction and monotone
      // across scrapes.
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        hs.buckets[i] = h->bucket(i);
        hs.count += hs.buckets[i];
      }
    }
  }
  MemoryStats m = CurrentMemoryStats();
  snap.gauges["memory.live_bytes"] = m.live_bytes;
  snap.gauges["memory.peak_bytes"] = m.peak_bytes;
  snap.gauges["memory.live_tensors"] = m.live_tensors;
  snap.gauges["memory.live_autograd_nodes"] = m.live_autograd_nodes;
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> l(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace missl::obs
