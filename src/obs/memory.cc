#include "obs/memory.h"

#include <atomic>

namespace missl::obs {

namespace {

std::atomic<int64_t> g_live_bytes{0};
std::atomic<int64_t> g_peak_bytes{0};
std::atomic<int64_t> g_live_tensors{0};
std::atomic<int64_t> g_live_autograd_nodes{0};

}  // namespace

MemoryStats CurrentMemoryStats() {
  MemoryStats s;
  s.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  s.peak_bytes = g_peak_bytes.load(std::memory_order_relaxed);
  s.live_tensors = g_live_tensors.load(std::memory_order_relaxed);
  s.live_autograd_nodes = g_live_autograd_nodes.load(std::memory_order_relaxed);
  return s;
}

void ResetPeakBytes() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

namespace memory_internal {

void AddBytes(int64_t delta) {
  int64_t now = g_live_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (delta > 0) {
    int64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
    while (now > peak && !g_peak_bytes.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
}

void AddTensors(int64_t delta) {
  g_live_tensors.fetch_add(delta, std::memory_order_relaxed);
}

void AddAutogradNodes(int64_t delta) {
  g_live_autograd_nodes.fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace memory_internal

}  // namespace missl::obs
