// Thread-safe metrics registry: named counters, gauges and log2-bucketed
// histograms with O(1) hot-path updates.
//
// Usage pattern: resolve the instrument once (registry lookup takes a mutex)
// and keep the reference — references stay valid for the process lifetime:
//
//   static obs::Counter& c =
//       obs::MetricsRegistry::Global().GetCounter("runtime.pool.jobs");
//   c.Add(1);
//
// Every update is gated on the process-wide enabled flag (default off,
// opt-in via SetMetricsEnabled or MISSL_METRICS=1), so the disabled hot
// path costs one predictable branch on a relaxed atomic load and leaves
// every instrument untouched. Tensor memory accounting is deliberately NOT
// behind this flag — see obs/memory.h.
#ifndef MISSL_OBS_METRICS_H_
#define MISSL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace missl::obs {

/// True while metric updates are recorded. Initialized from MISSL_METRICS
/// ("1" enables) on first use; flipped at runtime with SetMetricsEnabled.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// Monotonically increasing count. Add is safe from any thread.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    if (MetricsEnabled()) v_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Point-in-time value that can move both ways.
class Gauge {
 public:
  void Set(int64_t v) {
    if (MetricsEnabled()) v_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (MetricsEnabled()) v_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Histogram over non-negative integer samples (durations in ns, sizes in
/// bytes, ...) with power-of-two buckets: bucket 0 holds the value 0 and
/// bucket i >= 1 holds values in [2^(i-1), 2^i). Observe is one relaxed
/// atomic increment plus a bit scan.
class Histogram {
 public:
  static constexpr int kNumBuckets = 44;  ///< covers up to ~2^43 (~2.4h in ns)

  void Observe(int64_t v);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (0 for bucket 0, 2^i - 1 otherwise).
  static int64_t BucketUpperBound(int i);
  /// Upper bound of the bucket containing the p-quantile (p in [0, 1]);
  /// 0 when empty.
  int64_t ApproxPercentile(double p) const;
  void Reset();

  /// One-line human form with the full bucket structure spelled out
  /// ("count=N sum=S mean=M p50<=X p99<=Y buckets=le:n,le:n,..."), so
  /// external tools can compute their own percentiles instead of trusting
  /// the factor-of-two ApproxPercentile. Only non-empty buckets appear.
  std::string ToText() const;
  /// JSON object {"count":..,"sum":..,"mean":..,"p50":..,"p99":..,
  /// "buckets":[{"le":bound,"n":count},...]} with non-empty buckets only.
  std::string ToJson() const;

 private:
  std::atomic<int64_t> buckets_[kNumBuckets]{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Plain-data copy of one histogram, taken with relaxed loads. `count` is
/// the sum of the bucket reads (not an independent load of the live
/// counter), so count and buckets always agree — the Prometheus invariant
/// le="+Inf" == _count holds even mid-update. `sum` is read separately and
/// may be off by in-flight observations; scrapers must not cross-check it
/// against count.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t buckets[Histogram::kNumBuckets] = {};
};

/// Point-in-time copy of every registered instrument plus the always-on
/// memory gauges (as "memory.*" gauges). The exposition layer
/// (obs/exposition.h) renders and diffs these without holding the registry
/// lock.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Name -> instrument map. Get* registers on first use and returns a
/// reference that remains valid for the process lifetime (instruments are
/// never destroyed), so callers cache it and pay the lock once.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// One "name value" line per instrument, sorted by name, plus the
  /// always-on memory gauges (obs/memory.h). Histogram lines carry the
  /// explicit bucket structure (Histogram::ToText).
  std::string ToText() const;
  /// JSON document: {"counters":{...},"gauges":{...},"histograms":{...},
  /// "memory":{...}}.
  std::string ToJson() const;
  /// Copies every instrument's current value (relaxed loads under the
  /// registry lock) into a plain-data snapshot, including the memory gauges.
  /// Safe to call at any time from any thread, including while other threads
  /// update instruments; see obs/exposition.h for rendering and deltas.
  MetricsSnapshot Snapshot() const;
  /// Zeroes every registered counter/gauge/histogram (names stay
  /// registered). Does not touch the memory gauges.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace missl::obs

#endif  // MISSL_OBS_METRICS_H_
