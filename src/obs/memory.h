// Process-wide tensor memory accounting. TensorImpl reports allocations,
// frees and autograd-edge attachment here (see tensor/tensor.cc), so the
// cost of live tensors — and of any forgotten autograd graph — is a gauge
// that tests and telemetry can read, instead of a sanitizer footnote.
//
// Unlike the metrics registry (obs/metrics.h), these gauges are always on:
// they are maintained with relaxed atomic adds whose cost is negligible
// next to the allocations they track, and gating them would leave the live
// counts wrong for anything allocated while disabled.
#ifndef MISSL_OBS_MEMORY_H_
#define MISSL_OBS_MEMORY_H_

#include <cstdint>

namespace missl::obs {

/// Snapshot of the tensor-memory gauges.
struct MemoryStats {
  int64_t live_bytes = 0;      ///< bytes currently held by tensor data + grad
  int64_t peak_bytes = 0;      ///< high-water mark since start / ResetPeakBytes
  int64_t live_tensors = 0;    ///< TensorImpl objects currently alive
  int64_t live_autograd_nodes = 0;  ///< impls currently holding a backward_fn
};

/// Reads all gauges (each individually consistent; the snapshot is not
/// atomic across fields).
MemoryStats CurrentMemoryStats();

/// Restarts the peak-bytes high-water mark from the current live bytes.
/// The trainer calls this at each epoch boundary so telemetry reports a
/// per-epoch peak.
void ResetPeakBytes();

namespace memory_internal {
// Accounting entry points for tensor/tensor.cc only.
void AddBytes(int64_t delta);
void AddTensors(int64_t delta);
void AddAutogradNodes(int64_t delta);
}  // namespace memory_internal

}  // namespace missl::obs

#endif  // MISSL_OBS_MEMORY_H_
