// Scoped-timer tracing profiler emitting Chrome trace-event JSON.
//
// Spans are recorded into per-thread buffers (one uncontended mutex lock and
// one vector append per span, paid only while tracing is on; the disabled
// path is a single relaxed atomic load in the TraceSpan constructor).
// WriteTrace exports everything as a Chrome trace-event file: open it at
// https://ui.perfetto.dev or chrome://tracing to see the timeline — tensor
// ops, pool workers, evaluation batches and training epochs each show up as
// nested "X" (complete) events on their thread's track.
//
// Typical use is via TrainConfig::trace_path (the trainer brackets the run),
// or manually:
//
//   obs::StartTracing();
//   { obs::TraceSpan span("my.phase", "app"); ...work...; }
//   obs::StopTracing();
//   obs::WriteTrace("trace.json");
#ifndef MISSL_OBS_TRACE_H_
#define MISSL_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>

#include "obs/flight_recorder.h"
#include "utils/status.h"

namespace missl::obs {

/// True while spans are being recorded.
bool TracingEnabled();

/// Discards previously recorded events and starts recording.
void StartTracing();

/// Stops recording; already-recorded events are kept for WriteTrace.
void StopTracing();

/// Drops all recorded events without touching the enabled flag.
void ClearTrace();

/// Number of events recorded so far (for tests and sanity checks).
size_t TraceEventCount();

/// Writes all recorded events as a Chrome trace-event JSON document.
Status WriteTrace(const std::string& path);

/// Serializes the recorded events to a Chrome trace-event JSON string.
std::string TraceToJson();

/// Monotonic nanoseconds since a process-wide base; the time axis for all
/// spans (and for the metric timers in obs/op_stats.h).
int64_t NowNanos();

/// Appends a complete ("ph":"X") event for the calling thread when tracing
/// is enabled, and mirrors it into the flight recorder's ring
/// (obs/flight_recorder.h, name interned, args dropped) when the recorder
/// is enabled. No-op when both are off. `args_json`, when non-empty, must
/// be a complete JSON object (e.g. "{\"epoch\":3}").
void EmitCompleteSpan(std::string name, const char* cat, int64_t start_ns,
                      int64_t dur_ns, std::string args_json = std::string());

/// RAII span covering its C++ scope. Active when either tracing or the
/// flight recorder is on; constructing one while both are disabled records
/// the disabled state and costs nothing at destruction.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, const char* cat = "missl",
                     std::string args_json = std::string())
      : active_(TracingEnabled() || FlightRecorderEnabled()) {
    if (active_) {
      name_ = std::move(name);
      cat_ = cat;
      args_ = std::move(args_json);
      start_ = NowNanos();
    }
  }
  ~TraceSpan() {
    if (active_) {
      EmitCompleteSpan(std::move(name_), cat_, start_, NowNanos() - start_,
                       std::move(args_));
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  std::string name_;
  const char* cat_ = "";
  std::string args_;
  int64_t start_ = 0;
};

}  // namespace missl::obs

#endif  // MISSL_OBS_TRACE_H_
