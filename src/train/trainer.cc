#include "train/trainer.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>

#include "nn/serialize.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/trace.h"
#include "optim/optimizer.h"
#include "runtime/runtime.h"
#include "tensor/alloc.h"
#include "utils/logging.h"

namespace missl::train {

namespace {

// Snapshot/restore of parameter values for best-checkpoint tracking.
std::vector<std::vector<float>> SnapshotParams(const core::SeqRecModel& model) {
  std::vector<std::vector<float>> snap;
  for (const auto& p : model.Parameters()) snap.push_back(p.ToVector());
  return snap;
}

void RestoreParams(core::SeqRecModel* model,
                   const std::vector<std::vector<float>>& snap) {
  auto params = model->Parameters();
  MISSL_CHECK(params.size() == snap.size()) << "snapshot size mismatch";
  for (size_t i = 0; i < params.size(); ++i) params[i].CopyFrom(snap[i]);
}

// Line-per-event JSON stream (TrainConfig::telemetry_path). A failed open
// degrades to a warning — telemetry must never abort a training run.
class TelemetryWriter {
 public:
  explicit TelemetryWriter(const std::string& path) {
    if (path.empty()) return;
    out_.open(path, std::ios::trunc);
    if (!out_.is_open()) {
      MISSL_LOG_WARN << "cannot open telemetry file " << path;
    }
  }
  bool enabled() const { return out_.is_open(); }
  void WriteLine(const std::string& json) {
    if (!out_.is_open()) return;
    out_ << json << "\n";
    out_.flush();  // keep the stream tailable during long runs
  }

 private:
  std::ofstream out_;
};

}  // namespace

TrainResult Fit(core::SeqRecModel* model, const data::Dataset& ds,
                const data::SplitView& split, const eval::Evaluator& evaluator,
                const TrainConfig& config) {
  MISSL_CHECK(model != nullptr);
  MISSL_CHECK(!split.train_examples.empty()) << "no training examples";
  // Thread count only affects wall clock, never results (see docs/RUNTIME.md);
  // 0 keeps whatever the process-wide setting is.
  std::optional<runtime::ScopedNumThreads> scoped_threads;
  if (config.num_threads > 0) scoped_threads.emplace(config.num_threads);
  if (model->Parameters().empty()) {
    // Statistics-based models (POP, ItemKNN) have nothing to train.
    TrainResult r;
    r.best_valid = evaluator.Evaluate(model, /*test=*/false);
    r.test = evaluator.Evaluate(model, /*test=*/true);
    return r;
  }
  const bool tracing = !config.trace_path.empty();
  if (tracing) obs::StartTracing();
  // Closed (so the "train.fit" span lands in the buffer) before WriteTrace.
  std::optional<obs::TraceSpan> fit_span;
  fit_span.emplace("train.fit", "train");
  TelemetryWriter telemetry(config.telemetry_path);

  data::BatchBuilder builder(ds, config.max_len);
  std::unique_ptr<data::NegativeSampler> neg_sampler;
  if (config.train_negatives > 0) {
    neg_sampler = std::make_unique<data::NegativeSampler>(ds);
    builder.EnableTrainNegatives(neg_sampler.get(), config.train_negatives,
                                 config.seed ^ 0x5eedbeefULL);
  }
  data::MiniBatcher batcher(split.train_examples, config.batch_size, config.seed);
  optim::Adam opt(model->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                  config.weight_decay);

  TrainResult result;
  double best_metric = -1.0;
  std::vector<std::vector<float>> best_snapshot;
  int64_t stale_epochs = 0;

  auto t0 = std::chrono::steady_clock::now();
  for (int64_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    obs::TraceSpan epoch_span(
        "train.epoch", "train",
        tracing ? "{\"epoch\":" + std::to_string(epoch) + "}" : std::string());
    obs::ResetPeakBytes();  // telemetry reports a per-epoch peak
    model->SetTraining(true);
    batcher.Reset();
    std::vector<data::SplitView::TrainExample> chunk;
    double loss_sum = 0.0;
    double gnorm_sum = 0.0;
    int64_t batches = 0;
    int64_t examples = 0;
    auto epoch_t0 = std::chrono::steady_clock::now();
    {
      obs::TraceSpan batches_span("train.batches", "train");
      while (batcher.Next(&chunk)) {
        data::Batch batch = builder.Build(chunk);
        opt.ZeroGrad();
        Tensor loss = model->Loss(batch);
        loss.Backward();
        gnorm_sum += optim::ClipGradNorm(model->Parameters(), config.clip_norm);
        opt.Step();
        loss_sum += loss.item();
        ++batches;
        examples += static_cast<int64_t>(chunk.size());
        if (config.max_batches_per_epoch > 0 &&
            batches >= config.max_batches_per_epoch) {
          break;
        }
      }
    }
    double train_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - epoch_t0)
                               .count();
    result.final_train_loss =
        batches > 0 ? static_cast<float>(loss_sum / batches) : 0.0f;
    ++result.epochs_run;

    eval::EvalResult valid;
    {
      obs::TraceSpan validate_span("train.validate", "train");
      valid = evaluator.Evaluate(model, /*test=*/false);
    }
    if (config.verbose) {
      MISSL_LOG_INFO << model->Name() << " epoch " << epoch
                     << " loss=" << result.final_train_loss
                     << " valid NDCG@10=" << valid.ndcg10;
    }
    if (telemetry.enabled()) {
      obs::MemoryStats mem = obs::CurrentMemoryStats();
      alloc::AllocStats alloc_stats = alloc::GetAllocStats();
      std::ostringstream line;
      line << "{\"event\":\"epoch\",\"model\":\""
           << obs::JsonEscape(model->Name()) << "\",\"epoch\":" << epoch
           << ",\"loss\":" << obs::JsonNumber(result.final_train_loss)
           << ",\"grad_norm\":"
           << obs::JsonNumber(batches > 0 ? gnorm_sum / batches : 0.0)
           << ",\"lr\":" << obs::JsonNumber(config.lr)
           << ",\"examples\":" << examples
           << ",\"train_seconds\":" << obs::JsonNumber(train_seconds)
           << ",\"examples_per_s\":"
           << obs::JsonNumber(train_seconds > 0.0 ? examples / train_seconds
                                                  : 0.0)
           << ",\"valid_hr10\":" << obs::JsonNumber(valid.hr10)
           << ",\"valid_ndcg10\":" << obs::JsonNumber(valid.ndcg10)
           << ",\"valid_mrr\":" << obs::JsonNumber(valid.mrr)
           << ",\"peak_bytes\":" << mem.peak_bytes
           << ",\"live_bytes\":" << mem.live_bytes
           << ",\"live_tensors\":" << mem.live_tensors
           << ",\"live_autograd_nodes\":" << mem.live_autograd_nodes
           << ",\"alloc_mode\":\"" << alloc::ModeName(alloc::ActiveMode())
           << "\",\"alloc_pool_hits\":" << alloc_stats.pool_hits
           << ",\"alloc_pool_misses\":" << alloc_stats.pool_misses
           << ",\"alloc_system_allocs\":" << alloc_stats.system_allocs
           << ",\"alloc_cached_bytes\":" << alloc_stats.cached_bytes
           << ",\"threads\":" << runtime::NumThreads() << "}";
      telemetry.WriteLine(line.str());
    }
    if (valid.ndcg10 > best_metric) {
      best_metric = valid.ndcg10;
      result.best_valid = valid;
      best_snapshot = SnapshotParams(*model);
      stale_epochs = 0;
    } else if (++stale_epochs >= config.patience) {
      break;
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  result.total_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.seconds_per_epoch =
      result.epochs_run > 0 ? result.total_seconds / result.epochs_run : 0.0;

  if (!best_snapshot.empty()) RestoreParams(model, best_snapshot);
  if (!config.checkpoint_path.empty()) {
    Status s = nn::SaveParameters(*model, config.checkpoint_path);
    if (!s.ok()) {
      MISSL_LOG_WARN << "checkpoint save failed: " << s.ToString();
    }
  }
  result.test = evaluator.Evaluate(model, /*test=*/true);

  if (telemetry.enabled()) {
    std::ostringstream line;
    line << "{\"event\":\"final\",\"model\":\"" << obs::JsonEscape(model->Name())
         << "\",\"epochs_run\":" << result.epochs_run
         << ",\"total_seconds\":" << obs::JsonNumber(result.total_seconds)
         << ",\"final_train_loss\":" << obs::JsonNumber(result.final_train_loss)
         << ",\"best_valid_ndcg10\":"
         << obs::JsonNumber(result.best_valid.ndcg10)
         << ",\"test_hr10\":" << obs::JsonNumber(result.test.hr10)
         << ",\"test_ndcg10\":" << obs::JsonNumber(result.test.ndcg10)
         << ",\"test_mrr\":" << obs::JsonNumber(result.test.mrr)
         << ",\"threads\":" << runtime::NumThreads() << "}";
    telemetry.WriteLine(line.str());
  }
  fit_span.reset();
  if (tracing) {
    obs::StopTracing();
    Status s = obs::WriteTrace(config.trace_path);
    if (!s.ok()) {
      MISSL_LOG_WARN << "trace write failed: " << s.ToString();
    }
  }
  return result;
}

}  // namespace missl::train
