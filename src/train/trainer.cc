#include "train/trainer.h"

#include <chrono>
#include <memory>
#include <optional>

#include "nn/serialize.h"
#include "optim/optimizer.h"
#include "runtime/runtime.h"
#include "utils/logging.h"

namespace missl::train {

namespace {

// Snapshot/restore of parameter values for best-checkpoint tracking.
std::vector<std::vector<float>> SnapshotParams(const core::SeqRecModel& model) {
  std::vector<std::vector<float>> snap;
  for (const auto& p : model.Parameters()) snap.push_back(p.vec());
  return snap;
}

void RestoreParams(core::SeqRecModel* model,
                   const std::vector<std::vector<float>>& snap) {
  auto params = model->Parameters();
  MISSL_CHECK(params.size() == snap.size()) << "snapshot size mismatch";
  for (size_t i = 0; i < params.size(); ++i) params[i].vec() = snap[i];
}

}  // namespace

TrainResult Fit(core::SeqRecModel* model, const data::Dataset& ds,
                const data::SplitView& split, const eval::Evaluator& evaluator,
                const TrainConfig& config) {
  MISSL_CHECK(model != nullptr);
  MISSL_CHECK(!split.train_examples.empty()) << "no training examples";
  // Thread count only affects wall clock, never results (see docs/RUNTIME.md);
  // 0 keeps whatever the process-wide setting is.
  std::optional<runtime::ScopedNumThreads> scoped_threads;
  if (config.num_threads > 0) scoped_threads.emplace(config.num_threads);
  if (model->Parameters().empty()) {
    // Statistics-based models (POP, ItemKNN) have nothing to train.
    TrainResult r;
    r.best_valid = evaluator.Evaluate(model, /*test=*/false);
    r.test = evaluator.Evaluate(model, /*test=*/true);
    return r;
  }
  data::BatchBuilder builder(ds, config.max_len);
  std::unique_ptr<data::NegativeSampler> neg_sampler;
  if (config.train_negatives > 0) {
    neg_sampler = std::make_unique<data::NegativeSampler>(ds);
    builder.EnableTrainNegatives(neg_sampler.get(), config.train_negatives,
                                 config.seed ^ 0x5eedbeefULL);
  }
  data::MiniBatcher batcher(split.train_examples, config.batch_size, config.seed);
  optim::Adam opt(model->Parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
                  config.weight_decay);

  TrainResult result;
  double best_metric = -1.0;
  std::vector<std::vector<float>> best_snapshot;
  int64_t stale_epochs = 0;

  auto t0 = std::chrono::steady_clock::now();
  for (int64_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    model->SetTraining(true);
    batcher.Reset();
    std::vector<data::SplitView::TrainExample> chunk;
    double loss_sum = 0.0;
    int64_t batches = 0;
    while (batcher.Next(&chunk)) {
      data::Batch batch = builder.Build(chunk);
      opt.ZeroGrad();
      Tensor loss = model->Loss(batch);
      loss.Backward();
      optim::ClipGradNorm(model->Parameters(), config.clip_norm);
      opt.Step();
      loss_sum += loss.item();
      ++batches;
      if (config.max_batches_per_epoch > 0 &&
          batches >= config.max_batches_per_epoch) {
        break;
      }
    }
    result.final_train_loss =
        batches > 0 ? static_cast<float>(loss_sum / batches) : 0.0f;
    ++result.epochs_run;

    eval::EvalResult valid = evaluator.Evaluate(model, /*test=*/false);
    if (config.verbose) {
      MISSL_LOG_INFO << model->Name() << " epoch " << epoch
                     << " loss=" << result.final_train_loss
                     << " valid NDCG@10=" << valid.ndcg10;
    }
    if (valid.ndcg10 > best_metric) {
      best_metric = valid.ndcg10;
      result.best_valid = valid;
      best_snapshot = SnapshotParams(*model);
      stale_epochs = 0;
    } else if (++stale_epochs >= config.patience) {
      break;
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  result.total_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.seconds_per_epoch =
      result.epochs_run > 0 ? result.total_seconds / result.epochs_run : 0.0;

  if (!best_snapshot.empty()) RestoreParams(model, best_snapshot);
  if (!config.checkpoint_path.empty()) {
    Status s = nn::SaveParameters(*model, config.checkpoint_path);
    if (!s.ok()) {
      MISSL_LOG_WARN << "checkpoint save failed: " << s.ToString();
    }
  }
  result.test = evaluator.Evaluate(model, /*test=*/true);
  return result;
}

}  // namespace missl::train
