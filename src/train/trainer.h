// Training loop shared by every model: minibatch epochs with Adam, gradient
// clipping, early stopping on validation NDCG@10, and best-checkpoint
// restore before the final test evaluation.
#ifndef MISSL_TRAIN_TRAINER_H_
#define MISSL_TRAIN_TRAINER_H_

#include <cstdint>
#include <string>

#include "core/model.h"
#include "data/batch.h"
#include "data/dataset.h"
#include "eval/evaluator.h"

namespace missl::train {

struct TrainConfig {
  int64_t max_epochs = 30;
  int64_t batch_size = 128;
  int64_t max_len = 50;
  float lr = 1e-3f;
  float weight_decay = 0.0f;
  float clip_norm = 5.0f;
  int64_t patience = 5;  ///< epochs without valid NDCG@10 improvement
  uint64_t seed = 1;
  /// Cap on batches per epoch (0 = no cap); used by quick bench sweeps.
  int64_t max_batches_per_epoch = 0;
  /// Sampled-softmax training with this many uniform negatives per example
  /// (0 = full-catalog softmax). Supported by models that honor
  /// Batch::train_negatives (currently MISSL); others ignore it.
  int32_t train_negatives = 0;
  /// Worker threads for the run (forward/backward kernels and evaluation).
  /// 0 = keep the process-wide setting (MISSL_NUM_THREADS, default serial).
  /// Any value produces bitwise-identical results; see docs/RUNTIME.md.
  int num_threads = 0;
  /// When non-empty, the best-validation checkpoint is also written here
  /// (nn::SaveParameters format).
  std::string checkpoint_path;
  /// When non-empty, one JSON object per epoch (loss, grad norm, throughput,
  /// eval metrics, peak tensor memory) is appended to this JSONL file, plus a
  /// final summary line. See docs/OBSERVABILITY.md for the schema.
  std::string telemetry_path;
  /// When non-empty, the run is traced (obs::StartTracing) and a Chrome
  /// trace-event JSON file is written here when Fit returns.
  std::string trace_path;
  bool verbose = false;
};

struct TrainResult {
  eval::EvalResult test;        ///< at the best-validation checkpoint
  eval::EvalResult best_valid;  ///< best validation metrics seen
  int64_t epochs_run = 0;
  double total_seconds = 0.0;
  double seconds_per_epoch = 0.0;
  float final_train_loss = 0.0f;
};

/// Fits `model` on the split's training examples and returns test metrics at
/// the best validation checkpoint.
TrainResult Fit(core::SeqRecModel* model, const data::Dataset& ds,
                const data::SplitView& split, const eval::Evaluator& evaluator,
                const TrainConfig& config);

}  // namespace missl::train

#endif  // MISSL_TRAIN_TRAINER_H_
