// Position-wise feed-forward network, transformer encoder layer and stack.
#ifndef MISSL_NN_TRANSFORMER_H_
#define MISSL_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace missl::nn {

/// Two-layer position-wise FFN with GeLU activation.
class FeedForward : public Module {
 public:
  FeedForward(int64_t dim, int64_t hidden, float dropout, Rng* rng);
  Tensor Forward(const Tensor& x) const;

 private:
  Linear fc1_, fc2_;
  float dropout_;
  Rng* rng_;
};

/// Post-LN transformer encoder layer:
///   x = LN(x + Dropout(MHA(x)));  x = LN(x + Dropout(FFN(x)))
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t dim, int64_t heads, int64_t ffn_hidden,
                          float dropout, Rng* rng);
  /// `mask` is additive, broadcastable to [B, T, T]; pass undefined to skip.
  Tensor Forward(const Tensor& x, const Tensor& mask = Tensor()) const;

 private:
  MultiHeadAttention attn_;
  FeedForward ffn_;
  LayerNormM ln1_, ln2_;
  float dropout_;
  Rng* rng_;
};

/// Configuration for a transformer encoder stack.
struct TransformerConfig {
  int64_t dim = 64;
  int64_t heads = 2;
  int64_t layers = 2;
  int64_t ffn_hidden = 128;
  float dropout = 0.1f;
  bool causal = false;  ///< adds a causal mask to every layer
};

/// Stack of encoder layers with optional causal masking; combines the causal
/// mask with a caller-provided key-padding mask.
class TransformerEncoder : public Module {
 public:
  TransformerEncoder(const TransformerConfig& config, Rng* rng);
  /// x: [B, T, d]; padding_mask additive broadcastable to [B, T, T].
  Tensor Forward(const Tensor& x, const Tensor& padding_mask = Tensor()) const;

  const TransformerConfig& config() const { return config_; }

 private:
  TransformerConfig config_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
};

}  // namespace missl::nn

#endif  // MISSL_NN_TRANSFORMER_H_
