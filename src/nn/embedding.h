// Embedding table with padding-aware lookup (index -1 -> zero vector).
#ifndef MISSL_NN_EMBEDDING_H_
#define MISSL_NN_EMBEDDING_H_

#include <vector>

#include "nn/module.h"
#include "tensor/ops.h"
#include "utils/rng.h"

namespace missl::nn {

/// Learnable embedding table [vocab, dim].
class Embedding : public Module {
 public:
  Embedding(int64_t vocab, int64_t dim, Rng* rng, float init_std = 0.02f);

  /// Looks up ids (row-major layout of `prefix_shape`); returns
  /// prefix_shape + [dim]. Index -1 is padding and yields zeros.
  Tensor Forward(const std::vector<int32_t>& ids, Shape prefix_shape) const;

  /// The full table (e.g. for scoring against all items).
  const Tensor& weight() const { return weight_; }
  int64_t vocab() const { return vocab_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t vocab_;
  int64_t dim_;
  Tensor weight_;
};

}  // namespace missl::nn

#endif  // MISSL_NN_EMBEDDING_H_
