#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

namespace missl::nn {

namespace {

constexpr char kMagic[4] = {'M', 'S', 'S', 'L'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WritePod(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadPod(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for write: " + path);
  auto params = module.NamedParameters();
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4 || !WritePod(f.get(), kVersion) ||
      !WritePod(f.get(), static_cast<uint64_t>(params.size()))) {
    return Status::IOError("write header failed: " + path);
  }
  for (const auto& [name, t] : params) {
    uint32_t nlen = static_cast<uint32_t>(name.size());
    uint32_t rank = static_cast<uint32_t>(t.shape().size());
    if (!WritePod(f.get(), nlen) ||
        std::fwrite(name.data(), 1, nlen, f.get()) != nlen ||
        !WritePod(f.get(), rank)) {
      return Status::IOError("write param header failed: " + name);
    }
    for (int64_t d : t.shape()) {
      if (!WritePod(f.get(), d)) return Status::IOError("write dims failed");
    }
    size_t n = static_cast<size_t>(t.numel());
    if (std::fwrite(t.data(), sizeof(float), n, f.get()) != n) {
      return Status::IOError("write data failed: " + name);
    }
  }
  return Status::OK();
}

Status LoadParameters(Module* module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for read: " + path);
  char magic[4];
  uint32_t version = 0;
  uint64_t count = 0;
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      magic[0] != kMagic[0] || magic[1] != kMagic[1] || magic[2] != kMagic[2] ||
      magic[3] != kMagic[3]) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!ReadPod(f.get(), &version) || version != kVersion) {
    return Status::Corruption("unsupported checkpoint version");
  }
  if (!ReadPod(f.get(), &count)) return Status::Corruption("truncated header");

  std::map<std::string, std::pair<Shape, std::vector<float>>> entries;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t nlen = 0, rank = 0;
    if (!ReadPod(f.get(), &nlen) || nlen > 4096) {
      return Status::Corruption("bad name length");
    }
    std::string name(nlen, '\0');
    if (std::fread(name.data(), 1, nlen, f.get()) != nlen) {
      return Status::Corruption("truncated name");
    }
    if (!ReadPod(f.get(), &rank) || rank > 8) {
      return Status::Corruption("bad rank for " + name);
    }
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadPod(f.get(), &shape[d]) || shape[d] < 0) {
        return Status::Corruption("bad dim for " + name);
      }
    }
    size_t n = static_cast<size_t>(NumElements(shape));
    std::vector<float> data(n);
    if (std::fread(data.data(), sizeof(float), n, f.get()) != n) {
      return Status::Corruption("truncated data for " + name);
    }
    entries[name] = {std::move(shape), std::move(data)};
  }

  auto params = module->NamedParameters();
  if (params.size() != entries.size()) {
    return Status::InvalidArgument("parameter count mismatch: module has " +
                                   std::to_string(params.size()) + ", file has " +
                                   std::to_string(entries.size()));
  }
  for (auto& [name, t] : params) {
    auto it = entries.find(name);
    if (it == entries.end()) {
      return Status::NotFound("missing parameter in file: " + name);
    }
    if (it->second.first != t.shape()) {
      return Status::InvalidArgument("shape mismatch for " + name + ": file " +
                                     ShapeToString(it->second.first) + " vs module " +
                                     ShapeToString(t.shape()));
    }
    t.CopyFrom(it->second.second);
  }
  return Status::OK();
}

Status LoadParametersForInference(Module* module, const std::string& path) {
  Status s = LoadParameters(module, path);
  if (!s.ok()) return s;
  module->SetTraining(false);
  for (Tensor t : module->Parameters()) t.set_requires_grad(false);
  return Status::OK();
}

}  // namespace missl::nn
