// Gated recurrent unit over item sequences (substrate for GRU4Rec-family
// baselines).
#ifndef MISSL_NN_GRU_H_
#define MISSL_NN_GRU_H_

#include "nn/module.h"
#include "tensor/ops.h"
#include "utils/rng.h"

namespace missl::nn {

/// Single-layer GRU. Gate weights are stored fused: W_x [in, 3h] and
/// W_h [h, 3h] with gate order (update z, reset r, candidate n).
class GRU : public Module {
 public:
  GRU(int64_t input_dim, int64_t hidden_dim, Rng* rng);

  /// One recurrence step. x_t: [B, in], h: [B, hidden]. Returns new h.
  Tensor Step(const Tensor& x_t, const Tensor& h) const;

  /// Full unroll over x [B, T, in]; returns all hidden states [B, T, hidden].
  /// If `last` is non-null it receives the final hidden state [B, hidden].
  Tensor Forward(const Tensor& x, Tensor* last = nullptr) const;

  int64_t hidden_dim() const { return hidden_; }

 private:
  int64_t input_;
  int64_t hidden_;
  Tensor wx_;  ///< [in, 3h]
  Tensor wh_;  ///< [h, 3h]
  Tensor bias_;  ///< [3h]
};

}  // namespace missl::nn

#endif  // MISSL_NN_GRU_H_
