#include "nn/layernorm.h"

namespace missl::nn {

LayerNormM::LayerNormM(int64_t dim, float eps) : eps_(eps) {
  MISSL_CHECK(dim > 0) << "LayerNorm dim must be positive";
  gamma_ = RegisterParameter("gamma", Tensor::Ones({dim}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({dim}));
}

Tensor LayerNormM::Forward(const Tensor& x) const {
  return LayerNorm(x, gamma_, beta_, eps_);
}

}  // namespace missl::nn
