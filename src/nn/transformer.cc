#include "nn/transformer.h"

#include "tensor/ops.h"

namespace missl::nn {

FeedForward::FeedForward(int64_t dim, int64_t hidden, float dropout, Rng* rng)
    : fc1_(dim, hidden, rng), fc2_(hidden, dim, rng), dropout_(dropout), rng_(rng) {
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
}

Tensor FeedForward::Forward(const Tensor& x) const {
  Tensor h = Gelu(fc1_.Forward(x));
  h = Dropout(h, dropout_, training(), rng_);
  return fc2_.Forward(h);
}

TransformerEncoderLayer::TransformerEncoderLayer(int64_t dim, int64_t heads,
                                                 int64_t ffn_hidden, float dropout,
                                                 Rng* rng)
    : attn_(dim, heads, dropout, rng),
      ffn_(dim, ffn_hidden, dropout, rng),
      ln1_(dim),
      ln2_(dim),
      dropout_(dropout),
      rng_(rng) {
  RegisterModule("attn", &attn_);
  RegisterModule("ffn", &ffn_);
  RegisterModule("ln1", &ln1_);
  RegisterModule("ln2", &ln2_);
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x, const Tensor& mask) const {
  Tensor a = attn_.Forward(x, x, x, mask);
  a = Dropout(a, dropout_, training(), rng_);
  Tensor h = ln1_.Forward(Add(x, a));
  Tensor f = ffn_.Forward(h);
  f = Dropout(f, dropout_, training(), rng_);
  return ln2_.Forward(Add(h, f));
}

TransformerEncoder::TransformerEncoder(const TransformerConfig& config, Rng* rng)
    : config_(config) {
  MISSL_CHECK(config.layers > 0) << "encoder needs at least one layer";
  for (int64_t i = 0; i < config.layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        config.dim, config.heads, config.ffn_hidden, config.dropout, rng));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
}

Tensor TransformerEncoder::Forward(const Tensor& x,
                                   const Tensor& padding_mask) const {
  MISSL_CHECK(x.dim() == 3) << "encoder expects [B, T, d]";
  Tensor mask = padding_mask;
  if (config_.causal) {
    Tensor causal = CausalMask(x.size(1));
    mask = mask.defined() ? Add(mask, causal) : causal;
  }
  Tensor h = x;
  for (const auto& layer : layers_) h = layer->Forward(h, mask);
  return h;
}

}  // namespace missl::nn
