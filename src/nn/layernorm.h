// LayerNorm module (affine over the last dimension).
#ifndef MISSL_NN_LAYERNORM_H_
#define MISSL_NN_LAYERNORM_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace missl::nn {

/// Layer normalization with learnable gamma/beta over the last dim.
class LayerNormM : public Module {
 public:
  explicit LayerNormM(int64_t dim, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gamma_;
  Tensor beta_;
  float eps_;
};

}  // namespace missl::nn

#endif  // MISSL_NN_LAYERNORM_H_
