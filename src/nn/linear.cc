#include "nn/linear.h"

#include "nn/init.h"

namespace missl::nn {

Linear::Linear(int64_t in, int64_t out, Rng* rng, bool bias) : in_(in), out_(out) {
  MISSL_CHECK(in > 0 && out > 0) << "Linear dims must be positive";
  weight_ = RegisterParameter("weight", XavierUniform({in, out}, rng));
  if (bias) bias_ = RegisterParameter("bias", Tensor::Zeros({out}));
}

Tensor Linear::Forward(const Tensor& x) const {
  MISSL_CHECK(x.size(-1) == in_) << "Linear input dim " << x.size(-1)
                                 << " != " << in_;
  Tensor y = MatMul(x, weight_);
  if (bias_.defined()) y = Add(y, bias_);
  return y;
}

}  // namespace missl::nn
