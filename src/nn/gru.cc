#include "nn/gru.h"

#include "nn/init.h"

namespace missl::nn {

GRU::GRU(int64_t input_dim, int64_t hidden_dim, Rng* rng)
    : input_(input_dim), hidden_(hidden_dim) {
  MISSL_CHECK(input_dim > 0 && hidden_dim > 0) << "GRU dims must be positive";
  wx_ = RegisterParameter("wx", XavierUniform({input_dim, 3 * hidden_dim}, rng));
  wh_ = RegisterParameter("wh", XavierUniform({hidden_dim, 3 * hidden_dim}, rng));
  bias_ = RegisterParameter("bias", Tensor::Zeros({3 * hidden_dim}));
}

Tensor GRU::Step(const Tensor& x_t, const Tensor& h) const {
  MISSL_CHECK(x_t.dim() == 2 && x_t.size(1) == input_) << "GRU step input shape";
  MISSL_CHECK(h.dim() == 2 && h.size(1) == hidden_) << "GRU step hidden shape";
  Tensor gx = Add(MatMul(x_t, wx_), bias_);  // [B, 3h]
  Tensor gh = MatMul(h, wh_);                // [B, 3h]
  Tensor z = Sigmoid(Add(Slice(gx, 1, 0, hidden_), Slice(gh, 1, 0, hidden_)));
  Tensor r = Sigmoid(Add(Slice(gx, 1, hidden_, 2 * hidden_),
                         Slice(gh, 1, hidden_, 2 * hidden_)));
  Tensor n = Tanh(Add(Slice(gx, 1, 2 * hidden_, 3 * hidden_),
                      Mul(r, Slice(gh, 1, 2 * hidden_, 3 * hidden_))));
  // h' = (1 - z) * n + z * h
  return Add(Mul(Sub(Tensor::Ones({1}), z), n), Mul(z, h));
}

Tensor GRU::Forward(const Tensor& x, Tensor* last) const {
  MISSL_CHECK(x.dim() == 3 && x.size(2) == input_) << "GRU expects [B, T, in]";
  int64_t b = x.size(0), t = x.size(1);
  Tensor h = Tensor::Zeros({b, hidden_});
  std::vector<Tensor> outs;
  outs.reserve(static_cast<size_t>(t));
  for (int64_t step = 0; step < t; ++step) {
    Tensor x_t = Reshape(Slice(x, 1, step, step + 1), {b, input_});
    h = Step(x_t, h);
    outs.push_back(Reshape(h, {b, 1, hidden_}));
  }
  if (last != nullptr) *last = h;
  return t == 1 ? outs[0] : Concat(outs, 1);
}

}  // namespace missl::nn
