// Affine layer y = x W + b with W stored [in, out].
#ifndef MISSL_NN_LINEAR_H_
#define MISSL_NN_LINEAR_H_

#include "nn/module.h"
#include "tensor/ops.h"
#include "utils/rng.h"

namespace missl::nn {

/// Fully-connected layer. Accepts inputs of shape [..., in]; the matmul is
/// applied over the last dimension.
class Linear : public Module {
 public:
  /// Creates a layer with Xavier-uniform weights; bias optional.
  Linear(int64_t in, int64_t out, Rng* rng, bool bias = true);

  /// y = x W (+ b). x may be rank 2 or 3.
  Tensor Forward(const Tensor& x) const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  int64_t in_;
  int64_t out_;
  Tensor weight_;  ///< [in, out]
  Tensor bias_;    ///< [out] (undefined when bias=false)
};

}  // namespace missl::nn

#endif  // MISSL_NN_LINEAR_H_
