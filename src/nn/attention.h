// Multi-head scaled dot-product attention plus mask-building helpers.
#ifndef MISSL_NN_ATTENTION_H_
#define MISSL_NN_ATTENTION_H_

#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace missl::nn {

/// Builds an additive key-padding mask of shape [B, 1, T]: 0 where the key is
/// valid (ids[b*T + t] >= 0), -1e9 where it is padding. Broadcasts against
/// attention scores [B, Tq, T].
Tensor KeyPaddingMask(const std::vector<int32_t>& ids, int64_t batch, int64_t t);

/// Builds an additive causal mask of shape [T, T]: 0 on/below the diagonal,
/// -1e9 above (future positions).
Tensor CausalMask(int64_t t);

/// Multi-head attention. Query/key/value projections + output projection.
/// Heads are processed by slicing the projected tensors, which keeps the op
/// set at rank <= 3.
class MultiHeadAttention : public Module {
 public:
  /// `dim` must be divisible by `heads`. `rng` is used for weight init and
  /// attention-dropout sampling; it must outlive the module.
  MultiHeadAttention(int64_t dim, int64_t heads, float dropout, Rng* rng);

  /// query [B, Tq, d]; key/value [B, Tk, d]. `mask` (optional, pass
  /// undefined Tensor to skip) is additive and broadcastable to [B, Tq, Tk].
  Tensor Forward(const Tensor& query, const Tensor& key, const Tensor& value,
                 const Tensor& mask = Tensor()) const;

  int64_t heads() const { return heads_; }

 private:
  int64_t dim_;
  int64_t heads_;
  int64_t dh_;
  float dropout_;
  Rng* rng_;
  Linear wq_, wk_, wv_, wo_;
};

}  // namespace missl::nn

#endif  // MISSL_NN_ATTENTION_H_
