#include "nn/module.h"

#include "utils/check.h"

namespace missl::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, t] : NamedParameters()) out.push_back(t);
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  CollectNamed("", &out);
  return out;
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>* out) const {
  for (const auto& [name, t] : params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, t);
  }
  for (const auto& [name, m] : children_) {
    m->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

int64_t Module::NumParams() const {
  int64_t n = 0;
  for (const auto& t : Parameters()) n += t.numel();
  return n;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, m] : children_) m->SetTraining(training);
}

void Module::ZeroGrad() {
  for (auto& t : Parameters()) t.ZeroGrad();
}

Tensor Module::RegisterParameter(const std::string& name, Tensor t) {
  MISSL_CHECK(t.defined()) << "registering undefined parameter " << name;
  t.set_requires_grad(true);
  params_.emplace_back(name, t);
  return t;
}

void Module::RegisterModule(const std::string& name, Module* m) {
  MISSL_CHECK(m != nullptr) << "registering null submodule " << name;
  children_.emplace_back(name, m);
}

}  // namespace missl::nn
