// Weight initialization helpers (Xavier/Glorot and Kaiming/He schemes).
#ifndef MISSL_NN_INIT_H_
#define MISSL_NN_INIT_H_

#include "tensor/tensor.h"
#include "utils/rng.h"

namespace missl::nn {

/// Xavier-uniform initialized [fan_in, fan_out]-shaped matrix.
Tensor XavierUniform(Shape shape, Rng* rng);

/// Normal(0, stddev) initialization (used for embedding tables).
Tensor NormalInit(Shape shape, Rng* rng, float stddev = 0.02f);

/// Kaiming-uniform for ReLU fan-in.
Tensor KaimingUniform(Shape shape, Rng* rng);

}  // namespace missl::nn

#endif  // MISSL_NN_INIT_H_
