// Binary checkpointing of module parameters.
//
// Format (little-endian):
//   magic "MSSL" | uint32 version | uint64 param_count |
//   per param: uint32 name_len | name bytes | uint32 rank | int64 dims[rank] |
//              float data[numel]
#ifndef MISSL_NN_SERIALIZE_H_
#define MISSL_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"
#include "utils/status.h"

namespace missl::nn {

/// Writes all named parameters of `module` to `path`.
Status SaveParameters(const Module& module, const std::string& path);

/// Loads parameters into `module`. Every parameter name present in the
/// module must exist in the file with matching shape; extra file entries are
/// an error (checkpoints are model-specific).
Status LoadParameters(Module* module, const std::string& path);

/// Loads parameters like LoadParameters, then puts the module in inference
/// state: eval mode (dropout off) and requires_grad cleared on every
/// parameter, so forward passes record no autograd graph even outside a
/// NoGradGuard. This is the entry point of the online serving path
/// (src/serve/); the loaded weights are treated as immutable from here on.
Status LoadParametersForInference(Module* module, const std::string& path);

}  // namespace missl::nn

#endif  // MISSL_NN_SERIALIZE_H_
