#include "nn/attention.h"

#include <cmath>

#include "tensor/ops.h"

namespace missl::nn {

Tensor KeyPaddingMask(const std::vector<int32_t>& ids, int64_t batch, int64_t t) {
  MISSL_CHECK(static_cast<int64_t>(ids.size()) == batch * t)
      << "KeyPaddingMask ids size mismatch";
  Tensor m = Tensor::Zeros({batch, 1, t});
  float* p = m.data();
  for (int64_t i = 0; i < batch * t; ++i) {
    if (ids[static_cast<size_t>(i)] < 0) p[i] = -1e9f;
  }
  return m;
}

Tensor CausalMask(int64_t t) {
  Tensor m = Tensor::Zeros({t, t});
  float* p = m.data();
  for (int64_t i = 0; i < t; ++i)
    for (int64_t j = i + 1; j < t; ++j) p[i * t + j] = -1e9f;
  return m;
}

MultiHeadAttention::MultiHeadAttention(int64_t dim, int64_t heads, float dropout,
                                       Rng* rng)
    : dim_(dim),
      heads_(heads),
      dh_(dim / heads),
      dropout_(dropout),
      rng_(rng),
      wq_(dim, dim, rng),
      wk_(dim, dim, rng),
      wv_(dim, dim, rng),
      wo_(dim, dim, rng) {
  MISSL_CHECK(dim % heads == 0) << "dim " << dim << " not divisible by heads "
                                << heads;
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("wo", &wo_);
}

Tensor MultiHeadAttention::Forward(const Tensor& query, const Tensor& key,
                                   const Tensor& value, const Tensor& mask) const {
  MISSL_CHECK(query.dim() == 3 && key.dim() == 3 && value.dim() == 3)
      << "attention expects [B, T, d] inputs";
  MISSL_CHECK(key.size(1) == value.size(1)) << "key/value length mismatch";
  Tensor q = wq_.Forward(query);
  Tensor k = wk_.Forward(key);
  Tensor v = wv_.Forward(value);
  float scale = 1.0f / std::sqrt(static_cast<float>(dh_));
  std::vector<Tensor> head_outs;
  head_outs.reserve(static_cast<size_t>(heads_));
  for (int64_t h = 0; h < heads_; ++h) {
    Tensor qh = Slice(q, -1, h * dh_, (h + 1) * dh_);  // [B, Tq, dh]
    Tensor kh = Slice(k, -1, h * dh_, (h + 1) * dh_);  // [B, Tk, dh]
    Tensor vh = Slice(v, -1, h * dh_, (h + 1) * dh_);
    Tensor scores = MulScalar(MatMul(qh, Transpose(kh)), scale);  // [B, Tq, Tk]
    if (mask.defined()) scores = Add(scores, mask);
    Tensor probs = Softmax(scores);
    probs = Dropout(probs, dropout_, training(), rng_);
    head_outs.push_back(MatMul(probs, vh));  // [B, Tq, dh]
  }
  Tensor out = heads_ == 1 ? head_outs[0] : Concat(head_outs, -1);
  return wo_.Forward(out);
}

}  // namespace missl::nn
