#include "nn/init.h"

#include <cmath>

#include "utils/check.h"

namespace missl::nn {

namespace {
void FanInOut(const Shape& shape, float* fan_in, float* fan_out) {
  MISSL_CHECK(shape.size() >= 1) << "init on scalar shape";
  if (shape.size() == 1) {
    *fan_in = *fan_out = static_cast<float>(shape[0]);
    return;
  }
  // For [in, out] weight layout used by Linear (x @ W).
  *fan_in = static_cast<float>(shape[0]);
  *fan_out = static_cast<float>(shape[shape.size() - 1]);
}
}  // namespace

Tensor XavierUniform(Shape shape, Rng* rng) {
  float fan_in, fan_out;
  FanInOut(shape, &fan_in, &fan_out);
  float bound = std::sqrt(6.0f / (fan_in + fan_out));
  return Tensor::Rand(std::move(shape), rng, -bound, bound);
}

Tensor NormalInit(Shape shape, Rng* rng, float stddev) {
  return Tensor::Randn(std::move(shape), rng, stddev);
}

Tensor KaimingUniform(Shape shape, Rng* rng) {
  float fan_in, fan_out;
  FanInOut(shape, &fan_in, &fan_out);
  float bound = std::sqrt(6.0f / fan_in);
  return Tensor::Rand(std::move(shape), rng, -bound, bound);
}

}  // namespace missl::nn
