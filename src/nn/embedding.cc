#include "nn/embedding.h"

#include "nn/init.h"

namespace missl::nn {

Embedding::Embedding(int64_t vocab, int64_t dim, Rng* rng, float init_std)
    : vocab_(vocab), dim_(dim) {
  MISSL_CHECK(vocab > 0 && dim > 0) << "Embedding dims must be positive";
  weight_ = RegisterParameter("weight", NormalInit({vocab, dim}, rng, init_std));
}

Tensor Embedding::Forward(const std::vector<int32_t>& ids,
                          Shape prefix_shape) const {
  return EmbeddingLookup(weight_, ids, std::move(prefix_shape));
}

}  // namespace missl::nn
