// Module base class: parameter registration, recursive traversal,
// train/eval mode, and gradient utilities. Submodules are registered as
// non-owning pointers to member objects of the parent (construct members
// first, then register them in the parent's constructor body).
#ifndef MISSL_NN_MODULE_H_
#define MISSL_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace missl::nn {

/// Base class for all neural-net modules.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters of this module and its descendants.
  std::vector<Tensor> Parameters() const;

  /// Parameters with hierarchical dotted names ("encoder.fc.weight").
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total number of trainable scalars.
  int64_t NumParams() const;

  /// Switches this module and all descendants between train and eval mode
  /// (affects dropout).
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Zeroes gradients of all parameters.
  void ZeroGrad();

 protected:
  /// Registers a trainable parameter; returns the same tensor for storing in
  /// a member. The tensor is marked requires_grad.
  Tensor RegisterParameter(const std::string& name, Tensor t);

  /// Registers a submodule (non-owning; must outlive the parent traversals).
  void RegisterModule(const std::string& name, Module* m);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, Tensor>>* out) const;

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace missl::nn

#endif  // MISSL_NN_MODULE_H_
