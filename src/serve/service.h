// Online serving: a thread-safe RecoService that loads a frozen SeqRecModel
// from an nn::SaveParameters checkpoint and answers concurrent top-K queries
// through a micro-batcher.
//
// Request flow (see docs/SERVING.md for the full architecture):
//
//   client threads ──TopK()──► pending queue ──► dispatcher thread
//                                                  │ coalesces up to
//                                                  │ max_batch queries,
//                                                  │ waiting max_wait_us
//                                                  ▼
//                                       one ScoreAllItems forward on the
//                                       runtime pool + per-row TopKRow
//                                                  │
//   client threads ◄──std::future◄─────────────────┘
//
// Determinism: every model op is row-independent, so a query's top-K list is
// bitwise identical no matter which requests it was coalesced with — and
// identical to the offline core::RecommendTopN path on the same history
// (tests/serve_test.cc holds both properties under concurrency).
#ifndef MISSL_SERVE_SERVICE_H_
#define MISSL_SERVE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "data/batch.h"
#include "utils/status.h"

namespace missl::infer {
class PlannedExecutor;
}  // namespace missl::infer

namespace missl::serve {

/// One user query: the recent event history, oldest first.
struct Query {
  std::vector<int32_t> items;       ///< history item ids, oldest first
  std::vector<int32_t> behaviors;   ///< parallel behavior channel per event
  std::vector<int64_t> timestamps;  ///< optional; empty => no recency signal
  int64_t now = 0;       ///< reference time for recency buckets (vs timestamps)
  std::vector<int32_t> exclude;     ///< item ids to exclude (any order)
  int32_t k = 10;                   ///< list length to return
};

/// One answer: top-k items, best first, with their scores.
struct TopKResult {
  std::vector<int32_t> items;
  std::vector<float> scores;
};

/// Which forward implementation scores coalesced batches.
///   kGraph   — the training-mode tensor forward (autograd-capable ops under
///              NoGradGuard); the reference path and bitwise oracle.
///   kPlanned — the inference-only planned executor (src/infer/): the model
///              is compiled once at Load into a static op plan running on
///              pooled scratch, bitwise identical to kGraph by contract
///              (docs/INFERENCE.md). Requires a MISSL model.
enum class ExecutorKind { kGraph, kPlanned };

/// Catalog-scoring precision.
///   kFp32 — full-precision scoring; both executors, the bitwise oracle.
///   kInt8 — the quantized catalog tier (docs/INFERENCE.md): the planned
///           executor quantizes the catalog to symmetric per-item int8 at
///           Load and scores through int32 maddubs dots with an fp32 dequant
///           epilogue. Deterministic across tiers/threads, but NOT bitwise
///           equal to fp32 — accuracy is a ranking-level bound
///           (tests/quant_test.cc). Requires ExecutorKind::kPlanned.
enum class Precision { kFp32, kInt8 };

/// Stable display names ("graph"/"planned", "fp32"/"int8") used by /statusz
/// and the missl_serve flag parser.
const char* ExecutorKindName(ExecutorKind k);
const char* PrecisionName(Precision p);

/// Serving knobs. `max_len` must equal the history window the model was
/// constructed with (its position table size).
struct ServeConfig {
  int64_t max_len = 50;     ///< history window (== model max_len)
  int32_t max_batch = 32;   ///< coalesce at most this many queries per forward
  int64_t max_wait_us = 2000;  ///< how long the batcher waits to fill a batch
  int num_threads = 0;      ///< forward-pass threads; 0 = runtime default
  ExecutorKind executor = ExecutorKind::kGraph;  ///< see ExecutorKind
  Precision precision = Precision::kFp32;        ///< see Precision
};

/// Thread-safe serving front-end around one frozen model. Construct via
/// Load(); destruction drains in-flight queries, then stops the dispatcher.
class RecoService {
 public:
  /// Loads `checkpoint_path` into `model` (nn::LoadParametersForInference:
  /// eval mode, requires_grad off), precomputes the model's catalog scoring
  /// matrix, prewarms the runtime pool, and starts the dispatcher. Returns
  /// nullptr with `*status` set on load failure; `*status` is OK on success.
  static std::unique_ptr<RecoService> Load(
      std::unique_ptr<core::SeqRecModel> model, int32_t num_items,
      int32_t num_behaviors, const std::string& checkpoint_path,
      const ServeConfig& config, Status* status);

  ~RecoService();
  RecoService(const RecoService&) = delete;
  RecoService& operator=(const RecoService&) = delete;

  /// Answers one query, blocking until the coalesced batch containing it has
  /// been scored. Safe to call from any number of threads. Returns
  /// InvalidArgument (without enqueuing) on malformed input: mismatched
  /// history arrays, out-of-range item/behavior ids, or k < 1.
  Status TopK(const Query& query, TopKResult* out);

  const core::SeqRecModel& model() const { return *model_; }
  int32_t num_items() const { return num_items_; }
  int32_t num_behaviors() const { return num_behaviors_; }
  /// Embedding dimension of the precomputed catalog matrix ([d, num_items]).
  int64_t catalog_dim() const {
    return catalog_.shape().empty() ? 0 : catalog_.shape()[0];
  }
  const ServeConfig& config() const { return config_; }
  /// The compiled op plan when running with ExecutorKind::kPlanned; nullptr
  /// on the graph path. Exposed for tests and introspection.
  const infer::PlannedExecutor* planned_executor() const {
    return planned_.get();
  }
  /// Model forwards run so far (each serves one coalesced batch).
  int64_t batches_run() const;
  /// Queries answered so far.
  int64_t requests_served() const;

 private:
  struct Pending {
    const Query* query;  ///< caller blocks on the future, so a pointer is safe
    std::promise<TopKResult> promise;
    int64_t enqueue_ns;
  };

  RecoService(std::unique_ptr<core::SeqRecModel> model, int32_t num_items,
              int32_t num_behaviors, const ServeConfig& config);
  void DispatcherLoop();
  void ProcessBatch(std::vector<Pending>* work);

  std::unique_ptr<core::SeqRecModel> model_;
  int32_t num_items_;
  int32_t num_behaviors_;
  ServeConfig config_;
  Tensor catalog_;  ///< PrecomputeCatalog() result, cached at load time
  /// Static op plan (ExecutorKind::kPlanned only), compiled at Load.
  std::unique_ptr<infer::PlannedExecutor> planned_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  int64_t batches_run_ = 0;
  int64_t requests_served_ = 0;
  std::thread dispatcher_;
};

/// Collates queries into one inference batch: merged stream + per-behavior
/// streams front-padded to `max_len`, recency bucketed against each query's
/// `now`. Row order follows `queries`; `targets` is all -1 (inference
/// batches have no label). Shared with the offline parity tests.
data::Batch BuildQueryBatch(const std::vector<const Query*>& queries,
                            int64_t max_len, int32_t num_behaviors);
data::Batch BuildQueryBatch(const std::vector<Query>& queries, int64_t max_len,
                            int32_t num_behaviors);

}  // namespace missl::serve

#endif  // MISSL_SERVE_SERVICE_H_
