// Closed/open-loop load generator for the TCP serving front-end
// (serve/tcp_server.h). Drives N concurrent connections with a seeded,
// deterministic query mix over the synthetic catalog and reports
// client-observed latency percentiles plus achieved QPS; bench_m1_serve
// feeds the numbers into the BENCH_*.json pipeline next to the server-side
// serve.* histograms.
//
// Two pacing modes:
//   closed loop (target_qps == 0): every connection keeps exactly one
//     request outstanding — send, block for the answer, repeat. Offered
//     load adapts to the server; concurrency is bounded by `connections`
//     (tests/loadgen_test.cc locks that bound).
//   open loop (target_qps > 0): each connection sends on a fixed schedule
//     (target_qps / connections each) regardless of response progress, the
//     regime where queueing delay becomes visible in p99/p999.
//
// Determinism: the query sequence is a pure function of (seed, config) —
// connection c draws from Rng sub-stream c, so the mix is independent of
// scheduling and timing. Same seed, same queries, run to run.
#ifndef MISSL_SERVE_LOADGEN_H_
#define MISSL_SERVE_LOADGEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "utils/rng.h"
#include "utils/status.h"

namespace missl::serve {

/// Load shape + query-mix knobs. The mix must stay inside the served
/// model's (num_items, num_behaviors) ranges or answers come back as
/// protocol errors (counted in LoadGenResult::errors).
struct LoadGenConfig {
  std::string host = "127.0.0.1";
  int port = 0;               ///< required: the server's bound port
  int connections = 4;        ///< concurrent client connections
  double target_qps = 0;      ///< aggregate send rate; 0 = closed loop
  int64_t total_requests = 1000;  ///< across all connections
  uint64_t seed = 1;          ///< query-mix seed (deterministic per seed)

  int32_t num_items = 120;    ///< catalog size of the served model
  int32_t num_behaviors = 3;  ///< behavior channels of the served model
  int min_history = 4;        ///< events per query, inclusive bounds
  int max_history = 24;
  int32_t k = 10;             ///< list length requested
  double timestamp_prob = 0.5;  ///< fraction of queries carrying timestamps
  double exclude_prob = 0.25;   ///< fraction carrying an exclusion list

  int64_t recv_timeout_ms = 30000;  ///< per-read socket timeout (stall guard)
};

/// Aggregated result of one RunLoadGen call. Latencies are client-observed
/// (write first byte → full response line read), exact percentiles over all
/// samples, nearest-rank.
struct LoadGenResult {
  int64_t sent = 0;        ///< requests written
  int64_t ok = 0;          ///< well-formed top-K answers received
  int64_t errors = 0;      ///< error-JSON answers received
  double wall_seconds = 0;
  double achieved_qps = 0;  ///< ok+errors answered / wall_seconds
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  int64_t p999_us = 0;
  int64_t max_us = 0;
  int32_t max_in_flight = 0;  ///< peak outstanding requests, all connections
};

/// Draws the `index`-th query of connection sub-stream `rng` — pure function
/// of the Rng state and config, exposed so tests can pin determinism.
ParsedQuery MakeLoadQuery(Rng* rng, int64_t id, const LoadGenConfig& config);

/// Exact nearest-rank percentile: the smallest sample x such that at least
/// ceil(p * n) samples are <= x (p in (0, 1]; p <= 0 returns the minimum).
/// Returns 0 on an empty sample set. Takes samples by value and sorts.
int64_t PercentileNearestRank(std::vector<int64_t> samples, double p);

/// Runs the configured load against host:port and fills `*out`. Returns
/// non-OK on connection/socket failures or if the server stalls past
/// recv_timeout_ms; protocol-level error answers do NOT fail the run (they
/// are counted in out->errors).
Status RunLoadGen(const LoadGenConfig& config, LoadGenResult* out);

/// One response from HttpGet against the server's admin plane.
struct HttpResponse {
  int code = 0;       ///< status-line code (200, 404, ...)
  std::string body;   ///< everything after the header terminator
};

/// Minimal HTTP/1.0 GET client for the admin endpoint (serve/tcp_server.h):
/// connects, sends one request, reads to EOF, splits status code and body.
/// Returns non-OK on connect/socket failure, a stall past `timeout_ms`, or
/// an unparseable status line; 4xx/5xx responses come back OK with the code
/// set — the caller decides what a "bad" status means.
Status HttpGet(const std::string& host, int port, const std::string& path,
               HttpResponse* out, int64_t timeout_ms = 10000);

/// One Prometheus histogram family parsed back from exposition text:
/// cumulative (le, count) pairs in exposition order, +Inf last.
struct PromHistogram {
  std::vector<std::pair<double, int64_t>> buckets;
  int64_t count = 0;
  int64_t sum = 0;
};

/// Parses the subset of the Prometheus text format that obs::PrometheusText
/// emits and validates it while doing so: every sample must be preceded by
/// its "# TYPE" line, histogram buckets must be cumulative-monotone with a
/// final le="+Inf" equal to _count. Counters and gauges land in *scalars,
/// histograms in *histograms (either may be null to skip). Returns false on
/// the first malformed or inconsistent line — the scrape-smoke failure
/// signal for bench_m1_serve and CI.
bool ParsePrometheusText(const std::string& text,
                         std::map<std::string, double>* scalars,
                         std::map<std::string, PromHistogram>* histograms);

/// Nearest-rank percentile over a parsed histogram's cumulative buckets:
/// the `le` bound of the bucket containing the p-quantile (p in [0, 1]),
/// 0 when empty. When the quantile lands in the +Inf bucket the largest
/// finite bound is returned.
int64_t PromHistogramPercentile(const PromHistogram& h, double p);

/// Element-wise delta `cur - base` of two scrapes of the same histogram
/// family (bucket lists must have identical bounds; returns an empty
/// histogram on mismatch). Turns two /metrics scrapes into a per-window
/// distribution.
PromHistogram PromHistogramDelta(const PromHistogram& cur,
                                 const PromHistogram& base);

}  // namespace missl::serve

#endif  // MISSL_SERVE_LOADGEN_H_
