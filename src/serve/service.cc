#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/missl.h"
#include "core/recommend.h"
#include "infer/plan.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/runtime.h"
#include "runtime/thread_pool.h"
#include "tensor/alloc.h"
#include "utils/check.h"

namespace missl::serve {

namespace {

struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& batches;
  obs::Histogram& batch_size;
  obs::Histogram& queue_wait_ns;
  obs::Histogram& request_ns;
  // Per-request stage breakdown (docs/OBSERVABILITY.md): batch = wait for
  // the coalescing window, score = batch build + model forward, rank =
  // per-row top-K selection. The parse/queue/write stages live in the TCP
  // front-end (serve/tcp_server.cc).
  obs::Histogram& stage_batch_ns;
  obs::Histogram& stage_score_ns;
  obs::Histogram& stage_rank_ns;

  static ServeMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static ServeMetrics m{reg.GetCounter("serve.requests"),
                          reg.GetCounter("serve.batches"),
                          reg.GetHistogram("serve.batch_size"),
                          reg.GetHistogram("serve.queue_wait_ns"),
                          reg.GetHistogram("serve.request_ns"),
                          reg.GetHistogram("serve.stage.batch_ns"),
                          reg.GetHistogram("serve.stage.score_ns"),
                          reg.GetHistogram("serve.stage.rank_ns")};
    return m;
  }
};

}  // namespace

const char* ExecutorKindName(ExecutorKind k) {
  return k == ExecutorKind::kPlanned ? "planned" : "graph";
}

const char* PrecisionName(Precision p) {
  return p == Precision::kInt8 ? "int8" : "fp32";
}

data::Batch BuildQueryBatch(const std::vector<const Query*>& queries,
                            int64_t max_len, int32_t num_behaviors) {
  MISSL_CHECK(!queries.empty() && max_len > 0 && num_behaviors > 0);
  data::Batch b;
  b.batch_size = static_cast<int64_t>(queries.size());
  b.max_len = max_len;
  b.num_behaviors = num_behaviors;
  int64_t bt = b.batch_size * max_len;
  b.beh_items.assign(static_cast<size_t>(num_behaviors),
                     std::vector<int32_t>(static_cast<size_t>(bt), -1));
  b.merged_items.assign(static_cast<size_t>(bt), -1);
  b.merged_behaviors.assign(static_cast<size_t>(bt), -1);
  b.merged_recency.assign(static_cast<size_t>(bt), -1);
  b.users.resize(static_cast<size_t>(b.batch_size));
  // Inference batches carry no label; -1 fails loudly if a training path
  // ever embeds it as a target.
  b.targets.assign(static_cast<size_t>(b.batch_size), -1);
  b.target_behavior.assign(static_cast<size_t>(b.batch_size),
                           num_behaviors - 1);

  for (int64_t row = 0; row < b.batch_size; ++row) {
    const Query& q = *queries[static_cast<size_t>(row)];
    int64_t total = static_cast<int64_t>(q.items.size());
    MISSL_CHECK(static_cast<int64_t>(q.behaviors.size()) == total)
        << "items/behaviors length mismatch";
    MISSL_CHECK(q.timestamps.empty() ||
                static_cast<int64_t>(q.timestamps.size()) == total)
        << "timestamps length mismatch";
    b.users[static_cast<size_t>(row)] = static_cast<int32_t>(row);

    // Merged stream: last max_len events, front-padded.
    int64_t start = std::max<int64_t>(0, total - max_len);
    int64_t n = total - start;
    for (int64_t i = 0; i < n; ++i) {
      size_t src = static_cast<size_t>(start + i);
      int64_t pos = row * max_len + (max_len - n + i);
      b.merged_items[static_cast<size_t>(pos)] = q.items[src];
      b.merged_behaviors[static_cast<size_t>(pos)] = q.behaviors[src];
      int64_t gap = q.timestamps.empty() ? 0 : q.now - q.timestamps[src];
      b.merged_recency[static_cast<size_t>(pos)] = data::RecencyBucket(gap);
    }

    // Per-behavior streams: last max_len events of each channel, taken from
    // the full history (matching data::BatchBuilder).
    for (int32_t beh = 0; beh < num_behaviors; ++beh) {
      std::vector<int32_t> items;
      for (int64_t i = 0; i < total; ++i) {
        if (q.behaviors[static_cast<size_t>(i)] == beh) {
          items.push_back(q.items[static_cast<size_t>(i)]);
        }
      }
      int64_t cnt = static_cast<int64_t>(items.size());
      int64_t keep = std::min(cnt, max_len);
      for (int64_t i = 0; i < keep; ++i) {
        int64_t pos = row * max_len + (max_len - keep + i);
        b.beh_items[static_cast<size_t>(beh)][static_cast<size_t>(pos)] =
            items[static_cast<size_t>(cnt - keep + i)];
      }
    }
  }
  return b;
}

data::Batch BuildQueryBatch(const std::vector<Query>& queries, int64_t max_len,
                            int32_t num_behaviors) {
  std::vector<const Query*> ptrs;
  ptrs.reserve(queries.size());
  for (const Query& q : queries) ptrs.push_back(&q);
  return BuildQueryBatch(ptrs, max_len, num_behaviors);
}

RecoService::RecoService(std::unique_ptr<core::SeqRecModel> model,
                         int32_t num_items, int32_t num_behaviors,
                         const ServeConfig& config)
    : model_(std::move(model)),
      num_items_(num_items),
      num_behaviors_(num_behaviors),
      config_(config) {}

std::unique_ptr<RecoService> RecoService::Load(
    std::unique_ptr<core::SeqRecModel> model, int32_t num_items,
    int32_t num_behaviors, const std::string& checkpoint_path,
    const ServeConfig& config, Status* status) {
  MISSL_CHECK(model != nullptr && status != nullptr);
  // Config validation: a serving front-end is wired to live traffic, so a
  // bad knob must come back as a Status the caller can surface, not as
  // undefined behavior (or a CHECK abort) on the first query.
  if (num_items <= 0 || num_behaviors <= 0) {
    *status = Status::InvalidArgument(
        "num_items and num_behaviors must be >= 1, got " +
        std::to_string(num_items) + " / " + std::to_string(num_behaviors));
    return nullptr;
  }
  if (config.max_len <= 0) {
    *status = Status::InvalidArgument("ServeConfig.max_len must be >= 1, got " +
                                      std::to_string(config.max_len));
    return nullptr;
  }
  if (config.max_batch <= 0) {
    *status = Status::InvalidArgument(
        "ServeConfig.max_batch must be >= 1, got " +
        std::to_string(config.max_batch));
    return nullptr;
  }
  if (config.max_wait_us < 0) {
    *status = Status::InvalidArgument(
        "ServeConfig.max_wait_us must be >= 0, got " +
        std::to_string(config.max_wait_us));
    return nullptr;
  }
  if (config.num_threads < 0) {
    *status = Status::InvalidArgument(
        "ServeConfig.num_threads must be >= 0, got " +
        std::to_string(config.num_threads));
    return nullptr;
  }
  if (config.precision == Precision::kInt8 &&
      config.executor != ExecutorKind::kPlanned) {
    *status = Status::InvalidArgument(
        "Precision::kInt8 (--precision int8) requires the planned executor "
        "(--executor planned); the graph path scores fp32 only");
    return nullptr;
  }
  *status = nn::LoadParametersForInference(model.get(), checkpoint_path);
  if (!status->ok()) return nullptr;
  // The batcher front-pads every query to config.max_len positions; if the
  // checkpoint's position table is shorter, the first long history would
  // index past it. Checkpoints pin parameter shapes, so the loaded table is
  // exactly what the file carried.
  for (const auto& [name, t] : model->NamedParameters()) {
    const std::string suffix = "pos_emb.weight";
    if (name.size() < suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    int64_t table_rows = t.shape().empty() ? 0 : t.shape()[0];
    if (table_rows != config.max_len) {
      *status = Status::InvalidArgument(
          "ServeConfig.max_len (" + std::to_string(config.max_len) +
          ") does not match the checkpoint's position table (" +
          std::to_string(table_rows) + " rows in '" + name + "')");
      return nullptr;
    }
  }
  std::unique_ptr<RecoService> svc(new RecoService(
      std::move(model), num_items, num_behaviors, config));
  {
    // Weights are frozen from here on, so the catalog matrix stays valid for
    // the service lifetime.
    NoGradGuard ng;
    svc->catalog_ = svc->model_->PrecomputeCatalog();
  }
  if (config.executor == ExecutorKind::kPlanned) {
    // The plan compiler walks the concrete MISSL forward; other SeqRecModel
    // implementations keep the graph path.
    auto* missl = dynamic_cast<const core::MisslModel*>(svc->model_.get());
    if (missl == nullptr) {
      *status = Status::InvalidArgument(
          "ExecutorKind::kPlanned requires a MISSL model, got '" +
          svc->model_->Name() + "'");
      return nullptr;
    }
    infer::InferConfig icfg;
    icfg.quantize_catalog = config.precision == Precision::kInt8;
    svc->planned_ = infer::PlannedExecutor::Compile(
        *missl, svc->catalog_, config.max_batch, icfg, status);
    if (svc->planned_ == nullptr) return nullptr;
  }
  int threads = config.num_threads > 0 ? config.num_threads
                                       : runtime::NumThreads();
  runtime::ThreadPool::Global().Prewarm(threads);
  // Load-time work (parameter deserialization, catalog precompute) churns
  // through large one-off buffers; return them to the system so the
  // steady-state footprint reflects only what serving re-uses.
  alloc::Trim();
  svc->dispatcher_ = std::thread([s = svc.get()] { s->DispatcherLoop(); });
  return svc;
}

RecoService::~RecoService() {
  {
    std::lock_guard<std::mutex> l(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

Status RecoService::TopK(const Query& query, TopKResult* out) {
  MISSL_CHECK(out != nullptr);
  if (query.k < 1) return Status::InvalidArgument("k must be >= 1");
  if (query.items.size() != query.behaviors.size()) {
    return Status::InvalidArgument("items/behaviors length mismatch");
  }
  if (!query.timestamps.empty() &&
      query.timestamps.size() != query.items.size()) {
    return Status::InvalidArgument("timestamps length mismatch");
  }
  for (size_t i = 0; i < query.items.size(); ++i) {
    if (query.items[i] < 0 || query.items[i] >= num_items_) {
      return Status::InvalidArgument(
          "history item id out of range: " + std::to_string(query.items[i]));
    }
    if (query.behaviors[i] < 0 || query.behaviors[i] >= num_behaviors_) {
      return Status::InvalidArgument(
          "behavior id out of range: " + std::to_string(query.behaviors[i]));
    }
  }

  std::future<TopKResult> future;
  int64_t enqueue_ns = obs::NowNanos();
  {
    std::lock_guard<std::mutex> l(mu_);
    if (stop_) return Status::Internal("service is shutting down");
    queue_.push_back(Pending{&query, std::promise<TopKResult>(), enqueue_ns});
    future = queue_.back().promise.get_future();
  }
  cv_.notify_all();
  *out = future.get();
  ServeMetrics::Get().request_ns.Observe(obs::NowNanos() - enqueue_ns);
  return Status::OK();
}

void RecoService::DispatcherLoop() {
  // The whole serving path is inference-only; the guard (inherited by pool
  // workers, see runtime/parallel_for.h) makes that structural.
  NoGradGuard ng;
  ServeMetrics& metrics = ServeMetrics::Get();
  std::unique_lock<std::mutex> l(mu_);
  for (;;) {
    cv_.wait(l, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained: only exit once no work remains
      continue;
    }
    if (static_cast<int32_t>(queue_.size()) < config_.max_batch &&
        config_.max_wait_us > 0 && !stop_) {
      // Hold the batch open briefly so concurrent callers coalesce into one
      // forward instead of paying a model pass each.
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(config_.max_wait_us);
      cv_.wait_until(l, deadline, [&] {
        return stop_ ||
               static_cast<int32_t>(queue_.size()) >= config_.max_batch;
      });
    }
    size_t take = std::min<size_t>(queue_.size(),
                                   static_cast<size_t>(config_.max_batch));
    std::vector<Pending> work;
    work.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      work.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    // Account for the batch before releasing the lock: ProcessBatch resolves
    // the client futures, and a client that returns from TopK must observe
    // counters that already include its own batch.
    batches_run_ += 1;
    requests_served_ += static_cast<int64_t>(work.size());
    metrics.batches.Add(1);
    metrics.requests.Add(static_cast<int64_t>(work.size()));
    metrics.batch_size.Observe(static_cast<int64_t>(work.size()));
    l.unlock();
    ProcessBatch(&work);
    l.lock();
  }
}

void RecoService::ProcessBatch(std::vector<Pending>* work) {
  ServeMetrics& metrics = ServeMetrics::Get();
  int64_t start_ns = obs::NowNanos();
  for (const Pending& p : *work) {
    metrics.queue_wait_ns.Observe(start_ns - p.enqueue_ns);
    metrics.stage_batch_ns.Observe(start_ns - p.enqueue_ns);
  }
  obs::TraceSpan span(
      "serve.batch", "serve",
      obs::TracingEnabled()
          ? "{\"size\":" + std::to_string(work->size()) + "}"
          : std::string());

  runtime::ScopedNumThreads threads_override(
      config_.num_threads > 0 ? config_.num_threads : runtime::NumThreads());
  std::vector<const Query*> queries;
  queries.reserve(work->size());
  for (const Pending& p : *work) queries.push_back(p.query);
  data::Batch batch =
      BuildQueryBatch(queries, config_.max_len, num_behaviors_);
  // Both executors produce bitwise-identical [B, num_items] scores
  // (docs/INFERENCE.md); the planned path returns a pointer into its own
  // scratch arena instead of materializing a Tensor.
  Tensor scores;
  const float* score_data = nullptr;
  if (planned_ != nullptr) {
    score_data = planned_->Run(batch);
  } else {
    scores = model_->ScoreAllItems(batch, num_items_, catalog_);
    score_data = scores.data();
  }
  int64_t scored_ns = obs::NowNanos();

  std::vector<TopKResult> results(work->size());
  std::vector<int32_t> sorted_excl;
  for (size_t row = 0; row < work->size(); ++row) {
    const Pending& p = (*work)[row];
    const float* rs = score_data + static_cast<int64_t>(row) * num_items_;
    const std::vector<int32_t>* excl = nullptr;
    if (!p.query->exclude.empty()) {
      sorted_excl = p.query->exclude;
      std::sort(sorted_excl.begin(), sorted_excl.end());
      excl = &sorted_excl;
    }
    core::TopKRow(rs, num_items_, excl, p.query->k, &results[row].items,
                  &results[row].scores);
  }
  int64_t ranked_ns = obs::NowNanos();
  // Observe the stage samples before resolving any future, so a client that
  // returns from TopK (and immediately scrapes /metrics) sees its own batch.
  for (size_t row = 0; row < work->size(); ++row) {
    metrics.stage_score_ns.Observe(scored_ns - start_ns);
    metrics.stage_rank_ns.Observe(ranked_ns - scored_ns);
  }
  for (size_t row = 0; row < work->size(); ++row) {
    (*work)[row].promise.set_value(std::move(results[row]));
  }
}

int64_t RecoService::batches_run() const {
  std::lock_guard<std::mutex> l(mu_);
  return batches_run_;
}

int64_t RecoService::requests_served() const {
  std::lock_guard<std::mutex> l(mu_);
  return requests_served_;
}

}  // namespace missl::serve
