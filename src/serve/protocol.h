// Line protocol for the serving CLI (examples/missl_serve.cpp): TSV queries
// in, one JSON object per answer out. Kept in the library so tests can pin
// the format and CI can drive the server headlessly.
//
// Query line (tab-separated):
//   id <TAB> k <TAB> history [<TAB> exclude]
//     id       non-negative integer echoed back in the response
//     k        list length to return (>= 1)
//     history  comma-separated item:behavior[:timestamp] events, oldest
//              first (timestamps optional but all-or-none within a line)
//     exclude  comma-separated item ids to exclude, or "-" / omitted for none
// Blank lines and lines starting with '#' are for the caller to skip.
//
// Response line:
//   {"id":7,"k":3,"items":[12,5,40],"scores":[1.25,1.1,0.9]}
#ifndef MISSL_SERVE_PROTOCOL_H_
#define MISSL_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "serve/service.h"
#include "utils/status.h"

namespace missl::serve {

/// A parsed query line: the protocol id plus the service-level query.
struct ParsedQuery {
  int64_t id = 0;
  Query query;
};

/// Parses one protocol line into `out`. Returns InvalidArgument with a
/// descriptive message on malformed input (live request streams must not
/// crash the server). Blank/comment lines are not accepted here — filter
/// them before calling.
Status ParseQueryLine(const std::string& line, ParsedQuery* out);

/// Renders one response line (no trailing newline).
std::string TopKToJson(int64_t id, const TopKResult& result);

/// Renders one error-response line (no trailing newline), e.g.
///   {"id":7,"error":"bad k: 'x'"}
/// The TCP front-end answers malformed or rejected queries with these so a
/// client can keep its pipeline aligned; `id` is -1 when the offending line
/// never yielded one (parse failures, connection refusals).
std::string ErrorToJson(int64_t id, const std::string& message);

/// Renders a query as one protocol line (no trailing newline) — the exact
/// inverse of ParseQueryLine for queries whose `now` is the newest timestamp
/// (the only form the wire can carry). Used by the load generator and the
/// socket tests to speak the protocol from the client side.
std::string QueryToLine(int64_t id, const Query& query);

}  // namespace missl::serve

#endif  // MISSL_SERVE_PROTOCOL_H_
