#include "serve/protocol.h"

#include <cstdlib>
#include <vector>

#include "obs/json.h"

namespace missl::serve {

namespace {

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  // strtoll alone would accept leading whitespace and '+', and its
  // end-pointer check cannot see past an embedded NUL; require the token to
  // start with a digit (or a sign followed by one) and to contain no NUL so
  // only canonical decimal integers pass.
  if (s.find('\0') != std::string::npos) return false;
  size_t first = s[0] == '-' ? 1 : 0;
  if (first >= s.size() || s[first] < '0' || s[first] > '9') return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseInt32(const std::string& s, int32_t* out) {
  int64_t v = 0;
  if (!ParseInt64(s, &v) || v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<int32_t>(v);
  return true;
}

}  // namespace

Status ParseQueryLine(const std::string& line, ParsedQuery* out) {
  std::vector<std::string> fields = SplitOn(line, '\t');
  if (fields.size() < 3 || fields.size() > 4) {
    return Status::InvalidArgument(
        "expected 'id<TAB>k<TAB>history[<TAB>exclude]', got " +
        std::to_string(fields.size()) + " fields");
  }
  ParsedQuery parsed;
  if (!ParseInt64(fields[0], &parsed.id) || parsed.id < 0) {
    return Status::InvalidArgument("bad query id: '" + fields[0] + "'");
  }
  if (!ParseInt32(fields[1], &parsed.query.k) || parsed.query.k < 1) {
    return Status::InvalidArgument("bad k: '" + fields[1] + "'");
  }
  if (fields[2].empty()) {
    return Status::InvalidArgument("empty history");
  }
  bool has_timestamps = false;
  std::vector<std::string> events = SplitOn(fields[2], ',');
  for (size_t i = 0; i < events.size(); ++i) {
    std::vector<std::string> parts = SplitOn(events[i], ':');
    if (parts.size() != 2 && parts.size() != 3) {
      return Status::InvalidArgument("bad history event '" + events[i] +
                                     "' (want item:behavior[:timestamp])");
    }
    int32_t item = 0, behavior = 0;
    if (!ParseInt32(parts[0], &item) || item < 0 ||
        !ParseInt32(parts[1], &behavior) || behavior < 0) {
      return Status::InvalidArgument("bad history event '" + events[i] + "'");
    }
    if (i == 0) {
      has_timestamps = parts.size() == 3;
    } else if (has_timestamps != (parts.size() == 3)) {
      return Status::InvalidArgument(
          "timestamps must be present on all events or none");
    }
    parsed.query.items.push_back(item);
    parsed.query.behaviors.push_back(behavior);
    if (parts.size() == 3) {
      int64_t ts = 0;
      if (!ParseInt64(parts[2], &ts)) {
        return Status::InvalidArgument("bad timestamp in '" + events[i] + "'");
      }
      parsed.query.timestamps.push_back(ts);
    }
  }
  if (has_timestamps && !parsed.query.timestamps.empty()) {
    // Recency buckets are relative to the most recent event by default.
    parsed.query.now = parsed.query.timestamps.back();
  }
  if (fields.size() == 4 && !fields[3].empty() && fields[3] != "-") {
    for (const std::string& tok : SplitOn(fields[3], ',')) {
      int32_t item = 0;
      if (!ParseInt32(tok, &item) || item < 0) {
        return Status::InvalidArgument("bad exclude id: '" + tok + "'");
      }
      parsed.query.exclude.push_back(item);
    }
  }
  *out = std::move(parsed);
  return Status::OK();
}

std::string ErrorToJson(int64_t id, const std::string& message) {
  return "{\"id\":" + std::to_string(id) + ",\"error\":\"" +
         obs::JsonEscape(message) + "\"}";
}

std::string QueryToLine(int64_t id, const Query& query) {
  std::string line = std::to_string(id) + '\t' + std::to_string(query.k) +
                     '\t';
  for (size_t i = 0; i < query.items.size(); ++i) {
    if (i > 0) line += ',';
    line += std::to_string(query.items[i]) + ':' +
            std::to_string(query.behaviors[i]);
    if (!query.timestamps.empty()) {
      line += ':' + std::to_string(query.timestamps[i]);
    }
  }
  if (!query.exclude.empty()) {
    line += '\t';
    for (size_t i = 0; i < query.exclude.size(); ++i) {
      if (i > 0) line += ',';
      line += std::to_string(query.exclude[i]);
    }
  }
  return line;
}

std::string TopKToJson(int64_t id, const TopKResult& result) {
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"k\":" + std::to_string(result.items.size()) +
                    ",\"items\":[";
  for (size_t i = 0; i < result.items.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(result.items[i]);
  }
  out += "],\"scores\":[";
  for (size_t i = 0; i < result.scores.size(); ++i) {
    if (i > 0) out += ',';
    out += obs::JsonNumber(result.scores[i]);
  }
  out += "]}";
  return out;
}

}  // namespace missl::serve
