#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <utility>

#include "infer/plan.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/alloc.h"
#include "utils/check.h"

namespace missl::serve {

namespace {

struct TcpMetrics {
  obs::Counter& accepted;
  obs::Counter& refused;
  obs::Counter& closed;
  obs::Gauge& active;
  obs::Counter& lines;
  obs::Counter& malformed;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;

  static TcpMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static TcpMetrics m{reg.GetCounter("serve.tcp.accepted"),
                        reg.GetCounter("serve.tcp.refused"),
                        reg.GetCounter("serve.tcp.closed"),
                        reg.GetGauge("serve.tcp.active"),
                        reg.GetCounter("serve.tcp.lines"),
                        reg.GetCounter("serve.tcp.malformed"),
                        reg.GetCounter("serve.tcp.bytes_in"),
                        reg.GetCounter("serve.tcp.bytes_out")};
    return m;
  }
};

// Front-end stages of the per-request breakdown; the batcher-side stages
// (batch/score/rank) live in serve/service.cc.
struct StageMetrics {
  obs::Histogram& parse_ns;
  obs::Histogram& queue_ns;
  obs::Histogram& write_ns;

  static StageMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static StageMetrics m{reg.GetHistogram("serve.stage.parse_ns"),
                          reg.GetHistogram("serve.stage.queue_ns"),
                          reg.GetHistogram("serve.stage.write_ns")};
    return m;
  }
};

struct AdminMetrics {
  obs::Counter& requests;
  obs::Counter& bad_requests;

  static AdminMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static AdminMetrics m{reg.GetCounter("serve.admin.requests"),
                          reg.GetCounter("serve.admin.bad_requests")};
    return m;
  }
};

// Compact a partially-sent write buffer once this many bytes are dead prefix.
constexpr size_t kCompactThreshold = 64 * 1024;

// Admin plane bounds: a request head larger than this is rejected, and at
// most this many admin connections are served at once (the query plane's
// max_connections does not apply — a saturated query plane must still be
// scrapeable, but a scraper cannot balloon the server either).
constexpr size_t kMaxAdminRequestBytes = 8 * 1024;
constexpr size_t kMaxAdminConns = 16;

// Splits "GET /path HTTP/1.0" into method and target; false when the line
// is not three space-separated tokens with an HTTP/1.x version.
bool ParseHttpRequestLine(const std::string& head, std::string* method,
                          std::string* target) {
  size_t eol = head.find_first_of("\r\n");
  std::string line = head.substr(0, eol);
  size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return false;
  *method = line.substr(0, sp1);
  *target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  return true;
}

const char* HttpReason(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace

TcpServer::TcpServer(RecoService* service, const TcpServerConfig& config)
    : service_(service), config_(config) {}

std::unique_ptr<TcpServer> TcpServer::Start(RecoService* service,
                                            const TcpServerConfig& config,
                                            Status* status) {
  MISSL_CHECK(service != nullptr && status != nullptr);
  if (config.port < 0 || config.port > 65535) {
    *status = Status::InvalidArgument("TcpServerConfig.port out of range: " +
                                      std::to_string(config.port));
    return nullptr;
  }
  if (config.admin_port < -1 || config.admin_port > 65535) {
    *status = Status::InvalidArgument(
        "TcpServerConfig.admin_port out of range: " +
        std::to_string(config.admin_port));
    return nullptr;
  }
  if (config.max_connections < 1) {
    *status = Status::InvalidArgument(
        "TcpServerConfig.max_connections must be >= 1");
    return nullptr;
  }
  if (config.num_workers < 1) {
    *status =
        Status::InvalidArgument("TcpServerConfig.num_workers must be >= 1");
    return nullptr;
  }
  if (config.max_line_bytes < 1 || config.max_buffered_write_bytes < 1) {
    *status = Status::InvalidArgument(
        "TcpServerConfig byte limits must be >= 1");
    return nullptr;
  }

  std::unique_ptr<TcpServer> srv(new TcpServer(service, config));
  srv->listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (srv->listen_fd_ < 0) {
    *status = Status::IOError(std::string("socket: ") + std::strerror(errno));
    return nullptr;
  }
  int one = 1;
  ::setsockopt(srv->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(config.port));
  if (::bind(srv->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *status = Status::IOError(std::string("bind 127.0.0.1:") +
                              std::to_string(config.port) + ": " +
                              std::strerror(errno));
    return nullptr;
  }
  if (::listen(srv->listen_fd_, config.backlog) != 0) {
    *status = Status::IOError(std::string("listen: ") + std::strerror(errno));
    return nullptr;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(srv->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    *status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    return nullptr;
  }
  srv->port_ = static_cast<int>(ntohs(addr.sin_port));

  if (config.admin_port >= 0) {
    srv->admin_listen_fd_ =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (srv->admin_listen_fd_ < 0) {
      *status =
          Status::IOError(std::string("socket(admin): ") +
                          std::strerror(errno));
      return nullptr;
    }
    ::setsockopt(srv->admin_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in aaddr{};
    aaddr.sin_family = AF_INET;
    aaddr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    aaddr.sin_port = htons(static_cast<uint16_t>(config.admin_port));
    if (::bind(srv->admin_listen_fd_, reinterpret_cast<sockaddr*>(&aaddr),
               sizeof(aaddr)) != 0 ||
        ::listen(srv->admin_listen_fd_, config.backlog) != 0) {
      *status = Status::IOError(std::string("bind/listen admin 127.0.0.1:") +
                                std::to_string(config.admin_port) + ": " +
                                std::strerror(errno));
      return nullptr;
    }
    socklen_t alen = sizeof(aaddr);
    if (::getsockname(srv->admin_listen_fd_,
                      reinterpret_cast<sockaddr*>(&aaddr), &alen) != 0) {
      *status = Status::IOError(std::string("getsockname(admin): ") +
                                std::strerror(errno));
      return nullptr;
    }
    srv->admin_port_ = static_cast<int>(ntohs(aaddr.sin_port));
  }

  srv->epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  srv->wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (srv->epoll_fd_ < 0 || srv->wake_fd_ < 0) {
    *status = Status::IOError(std::string("epoll/eventfd: ") +
                              std::strerror(errno));
    return nullptr;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = srv->listen_fd_;
  if (::epoll_ctl(srv->epoll_fd_, EPOLL_CTL_ADD, srv->listen_fd_, &ev) != 0) {
    *status = Status::IOError(std::string("epoll_ctl(listen): ") +
                              std::strerror(errno));
    return nullptr;
  }
  ev.events = EPOLLIN;
  ev.data.fd = srv->wake_fd_;
  if (::epoll_ctl(srv->epoll_fd_, EPOLL_CTL_ADD, srv->wake_fd_, &ev) != 0) {
    *status = Status::IOError(std::string("epoll_ctl(wake): ") +
                              std::strerror(errno));
    return nullptr;
  }
  if (srv->admin_listen_fd_ >= 0) {
    ev.events = EPOLLIN;
    ev.data.fd = srv->admin_listen_fd_;
    if (::epoll_ctl(srv->epoll_fd_, EPOLL_CTL_ADD, srv->admin_listen_fd_,
                    &ev) != 0) {
      *status = Status::IOError(std::string("epoll_ctl(admin): ") +
                                std::strerror(errno));
      return nullptr;
    }
  }

  srv->start_ns_ = obs::NowNanos();
  srv->epoll_thread_ = std::thread([s = srv.get()] { s->EpollLoop(); });
  srv->workers_.reserve(static_cast<size_t>(config.num_workers));
  for (int i = 0; i < config.num_workers; ++i) {
    srv->workers_.emplace_back([s = srv.get()] { s->WorkerLoop(); });
  }
  *status = Status::OK();
  return srv;
}

TcpServer::~TcpServer() {
  Shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (admin_listen_fd_ >= 0) ::close(admin_listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void TcpServer::BeginShutdown() {
  draining_.store(true, std::memory_order_release);
  WakeEpoll();
}

void TcpServer::Shutdown() {
  if (!epoll_thread_.joinable()) return;  // Start failed or already shut down
  BeginShutdown();
  {
    std::unique_lock<std::mutex> l(mu_);
    drained_cv_.wait(l, [&] { return query_conns_ == 0; });
  }
  stop_.store(true, std::memory_order_release);
  WakeEpoll();
  epoll_thread_.join();
  // No accept loop remains; close the listeners so post-shutdown connects
  // are refused by the kernel instead of parking in the backlog forever.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (admin_listen_fd_ >= 0) {
    ::close(admin_listen_fd_);
    admin_listen_fd_ = -1;
  }
  // Admin connections are exempt from the drain; with the epoll thread gone,
  // flush whatever response bytes fit and close them.
  std::vector<std::shared_ptr<Conn>> leftover;
  {
    std::lock_guard<std::mutex> l(mu_);
    for (const auto& [fd, c] : conns_) leftover.push_back(c);
    conns_.clear();
  }
  for (const auto& conn : leftover) {
    std::lock_guard<std::mutex> l(conn->mu);
    if (conn->closed) continue;
    if (conn->woff < conn->wbuf.size()) {
      ssize_t ignored =
          ::send(conn->fd, conn->wbuf.data() + conn->woff,
                 conn->wbuf.size() - conn->woff, MSG_NOSIGNAL | MSG_DONTWAIT);
      (void)ignored;
    }
    conn->closed = true;
    ::close(conn->fd);
    TcpMetrics::Get().closed.Add(1);
  }
  TcpMetrics::Get().active.Set(0);
  {
    std::lock_guard<std::mutex> l(jobs_mu_);
    jobs_stop_ = true;
  }
  jobs_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

int64_t TcpServer::active_connections() const {
  std::lock_guard<std::mutex> l(mu_);
  return static_cast<int64_t>(conns_.size());
}

int64_t TcpServer::connections_accepted() const {
  std::lock_guard<std::mutex> l(mu_);
  return accepted_;
}

int64_t TcpServer::connections_refused() const {
  std::lock_guard<std::mutex> l(mu_);
  return refused_;
}

void TcpServer::WakeEpoll() {
  uint64_t v = 1;
  ssize_t ignored = ::write(wake_fd_, &v, sizeof(v));
  (void)ignored;  // eventfd writes only fail if the counter saturates
}

void TcpServer::EpollLoop() {
  std::vector<epoll_event> events(64);
  while (!stop_.load(std::memory_order_acquire)) {
    // The eventfd wakes us for flushes and shutdown; the timeout is only a
    // safety net so a missed edge can never wedge the loop.
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure; Shutdown still drains workers
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[static_cast<size_t>(i)].data.fd;
      uint32_t mask = events[static_cast<size_t>(i)].events;
      if (fd == wake_fd_) {
        uint64_t v = 0;
        ssize_t ignored = ::read(wake_fd_, &v, sizeof(v));
        (void)ignored;
        continue;
      }
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      if (fd == admin_listen_fd_) {
        AcceptAdminPending();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> l(mu_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) conn = it->second;
      }
      if (conn == nullptr) continue;  // closed earlier in this batch
      if ((mask & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        HandleReadable(conn);
      }
      {
        std::lock_guard<std::mutex> l(mu_);
        if (conns_.count(fd) == 0) continue;  // HandleReadable closed it
      }
      if ((mask & EPOLLOUT) != 0) FlushConn(conn);
    }

    // Flush requests queued by workers since the last pass.
    std::vector<std::shared_ptr<Conn>> to_flush;
    {
      std::lock_guard<std::mutex> l(mu_);
      to_flush.swap(flush_);
    }
    for (const auto& conn : to_flush) FlushConn(conn);

    if (draining_.load(std::memory_order_acquire)) {
      // Drain pass: stop reading query connections, forget partial lines,
      // and close each one once nothing is left in flight or buffered.
      // Admin connections keep being served — a draining server must stay
      // observable.
      std::vector<std::shared_ptr<Conn>> snapshot;
      {
        std::lock_guard<std::mutex> l(mu_);
        snapshot.reserve(conns_.size());
        for (const auto& [cfd, c] : conns_) {
          if (!c->admin) snapshot.push_back(c);
        }
      }
      for (const auto& conn : snapshot) {
        SetReading(conn, false);
        conn->rbuf.clear();
        conn->discarding = false;
        FlushConn(conn);
      }
      std::lock_guard<std::mutex> l(mu_);
      if (query_conns_ == 0) drained_cv_.notify_all();
    }
  }
}

void TcpServer::AcceptPending() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (no more pending) or transient accept failure
    }
    if (draining_.load(std::memory_order_acquire)) {
      RefuseConnection(fd, "shutting down");
      continue;
    }
    size_t active = 0;
    {
      std::lock_guard<std::mutex> l(mu_);
      active = conns_.size();
    }
    if (active >= static_cast<size_t>(config_.max_connections)) {
      RefuseConnection(fd, "connection limit reached");
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    size_t now_active = 0;
    {
      std::lock_guard<std::mutex> l(mu_);
      conns_.emplace(fd, std::move(conn));
      ++accepted_;
      ++query_conns_;
      now_active = conns_.size();
    }
    TcpMetrics::Get().accepted.Add(1);
    TcpMetrics::Get().active.Set(static_cast<int64_t>(now_active));
  }
}

void TcpServer::AcceptAdminPending() {
  for (;;) {
    int fd = ::accept4(admin_listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (no more pending) or transient accept failure
    }
    // Admin connects are accepted even while draining — observability during
    // a drain is the point — but are capped independently of the query plane.
    size_t admin_active = 0;
    {
      std::lock_guard<std::mutex> l(mu_);
      admin_active = conns_.size() - static_cast<size_t>(query_conns_);
    }
    if (admin_active >= kMaxAdminConns) {
      static const char kBusy[] =
          "HTTP/1.0 503 Service Unavailable\r\n"
          "Content-Type: text/plain\r\nContent-Length: 5\r\n"
          "Connection: close\r\n\r\nbusy\n";
      ssize_t ignored = ::send(fd, kBusy, sizeof(kBusy) - 1, MSG_NOSIGNAL);
      (void)ignored;
      ::close(fd);
      AdminMetrics::Get().bad_requests.Add(1);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->admin = true;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> l(mu_);
    conns_.emplace(fd, std::move(conn));
  }
}

void TcpServer::RefuseConnection(int fd, const std::string& reason) {
  std::string line = ErrorToJson(-1, reason) + "\n";
  // Best effort: the socket buffer of a fresh connection always has room for
  // one short line, and a peer that vanished mid-refusal loses nothing.
  ssize_t ignored = ::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
  (void)ignored;
  ::close(fd);
  {
    std::lock_guard<std::mutex> l(mu_);
    ++refused_;
  }
  TcpMetrics::Get().refused.Add(1);
}

void TcpServer::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[65536];
  // Bounded reads per wake-up: a peer that streams without pause cannot
  // starve other connections; level-triggered epoll re-arms for the rest.
  for (int rounds = 0; rounds < 16; ++rounds) {
    ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (r > 0) {
      conn->rbuf.append(buf, static_cast<size_t>(r));
      if (conn->admin) {
        ProcessAdminBuffer(conn);
      } else {
        TcpMetrics::Get().bytes_in.Add(r);
        ProcessReadBuffer(conn);
      }
      {
        // An admin response can close the connection inline; stop reading.
        std::lock_guard<std::mutex> l(conn->mu);
        if (conn->closed) return;
      }
      continue;
    }
    if (r == 0) {
      // Peer half-closed its write side. Whatever partial line remains can
      // never complete; answers still in flight are flushed before close.
      conn->rd_eof = true;
      conn->rbuf.clear();
      conn->discarding = false;
      SetReading(conn, false);
      FlushConn(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    // Hard error (ECONNRESET...): the peer is gone, drop it entirely.
    CloseConn(conn);
    return;
  }
}

void TcpServer::ProcessReadBuffer(const std::shared_ptr<Conn>& conn) {
  size_t start = 0;
  for (;;) {
    size_t nl = conn->rbuf.find('\n', start);
    if (nl == std::string::npos) break;
    if (conn->discarding) {
      // End of an over-long line we already answered: resynchronize.
      conn->discarding = false;
    } else {
      std::string line = conn->rbuf.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      HandleLine(conn, line);
    }
    start = nl + 1;
  }
  conn->rbuf.erase(0, start);
  if (conn->discarding) {
    conn->rbuf.clear();
  } else if (static_cast<int64_t>(conn->rbuf.size()) > config_.max_line_bytes) {
    conn->discarding = true;
    conn->rbuf.clear();
    TcpMetrics::Get().malformed.Add(1);
    EnqueueResponse(
        conn, ErrorToJson(-1, "request line exceeds " +
                                  std::to_string(config_.max_line_bytes) +
                                  " bytes"));
  }
}

void TcpServer::HandleLine(const std::shared_ptr<Conn>& conn,
                           const std::string& line) {
  if (line.empty() || line[0] == '#') return;  // protocol: caller-skippable
  TcpMetrics::Get().lines.Add(1);
  int64_t parse_start_ns = obs::NowNanos();
  ParsedQuery parsed;
  Status s = ParseQueryLine(line, &parsed);
  int64_t parsed_ns = obs::NowNanos();
  StageMetrics::Get().parse_ns.Observe(parsed_ns - parse_start_ns);
  if (!s.ok()) {
    TcpMetrics::Get().malformed.Add(1);
    EnqueueResponse(conn, ErrorToJson(-1, s.message()));
    return;
  }
  {
    std::lock_guard<std::mutex> l(conn->mu);
    ++conn->in_flight;
  }
  {
    std::lock_guard<std::mutex> l(jobs_mu_);
    jobs_.push_back(Job{conn, std::move(parsed), parsed_ns});
  }
  jobs_cv_.notify_one();
}

void TcpServer::ProcessAdminBuffer(const std::shared_ptr<Conn>& conn) {
  // One HTTP/1.0 request per connection: wait for the full request head,
  // answer, flush, close. Anything after the head (a body, a pipelined
  // second request) is ignored.
  size_t head_end = conn->rbuf.find("\r\n\r\n");
  size_t skip = 4;
  if (head_end == std::string::npos) {
    head_end = conn->rbuf.find("\n\n");
    skip = 2;
  }
  if (head_end == std::string::npos) {
    if (conn->rbuf.size() > kMaxAdminRequestBytes) {
      AdminMetrics::Get().bad_requests.Add(1);
      SendHttpResponse(conn, 400, "text/plain", "request head too large\n");
    }
    return;
  }
  (void)skip;
  std::string head = conn->rbuf.substr(0, head_end);
  conn->rbuf.clear();
  SetReading(conn, false);  // one-shot: nothing further will be parsed
  std::string method, target;
  if (!ParseHttpRequestLine(head, &method, &target)) {
    AdminMetrics::Get().bad_requests.Add(1);
    SendHttpResponse(conn, 400, "text/plain", "malformed request line\n");
    return;
  }
  HandleAdminRequest(conn, method, target);
}

void TcpServer::HandleAdminRequest(const std::shared_ptr<Conn>& conn,
                                   const std::string& method,
                                   const std::string& target) {
  AdminMetrics::Get().requests.Add(1);
  if (method != "GET") {
    AdminMetrics::Get().bad_requests.Add(1);
    SendHttpResponse(conn, 405, "text/plain", "method not allowed\n");
    return;
  }
  std::string path = target.substr(0, target.find('?'));
  if (path == "/metrics") {
    SendHttpResponse(
        conn, 200, "text/plain; version=0.0.4",
        obs::PrometheusText(obs::MetricsRegistry::Global().Snapshot()));
  } else if (path == "/healthz") {
    if (draining_.load(std::memory_order_acquire)) {
      SendHttpResponse(conn, 503, "text/plain", "draining\n");
    } else {
      SendHttpResponse(conn, 200, "text/plain", "ok\n");
    }
  } else if (path == "/statusz") {
    SendHttpResponse(conn, 200, "application/json", StatuszJson());
  } else if (path == "/tracez") {
    SendHttpResponse(conn, 200, "application/json",
                     obs::FlightRecorderToJson());
  } else {
    AdminMetrics::Get().bad_requests.Add(1);
    SendHttpResponse(conn, 404, "text/plain", "not found\n");
  }
}

void TcpServer::SendHttpResponse(const std::shared_ptr<Conn>& conn, int code,
                                 const char* content_type,
                                 const std::string& body) {
  std::string resp;
  resp.reserve(body.size() + 128);
  resp += "HTTP/1.0 " + std::to_string(code) + " " + HttpReason(code) + "\r\n";
  resp += "Content-Type: ";
  resp += content_type;
  resp += "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n";
  resp += "Connection: close\r\n\r\n";
  resp += body;
  {
    std::lock_guard<std::mutex> l(conn->mu);
    if (conn->closed) return;
    conn->wbuf += resp;
    conn->bytes_enqueued += resp.size();
    conn->close_after_flush = true;
  }
  FlushConn(conn);  // epoll thread: flush (and maybe close) inline
}

std::string TcpServer::StatuszJson() const {
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  alloc::AllocStats astats = alloc::GetAllocStats();
  obs::MemoryStats mstats = obs::CurrentMemoryStats();
  const ServeConfig& sc = service_->config();
  int64_t active = 0, accepted = 0, refused = 0;
  {
    std::lock_guard<std::mutex> l(mu_);
    active = static_cast<int64_t>(conns_.size());
    accepted = accepted_;
    refused = refused_;
  }
  std::ostringstream ss;
  ss << "{\"build_rev\":\"" << obs::JsonEscape(obs::BuildRev()) << "\""
     << ",\"uptime_ns\":" << (obs::NowNanos() - start_ns_)
     << ",\"draining\":"
     << (draining_.load(std::memory_order_acquire) ? "true" : "false")
     << ",\"port\":" << port_ << ",\"admin_port\":" << admin_port_
     << ",\"serve_config\":{\"max_len\":" << sc.max_len
     << ",\"max_batch\":" << sc.max_batch
     << ",\"max_wait_us\":" << sc.max_wait_us
     << ",\"num_threads\":" << sc.num_threads
     << ",\"executor\":\"" << ExecutorKindName(sc.executor) << "\""
     << ",\"precision\":\"" << PrecisionName(sc.precision) << "\"}"
     << ",\"tcp_config\":{\"max_connections\":" << config_.max_connections
     << ",\"num_workers\":" << config_.num_workers
     << ",\"max_line_bytes\":" << config_.max_line_bytes
     << ",\"max_buffered_write_bytes\":" << config_.max_buffered_write_bytes
     << "}"
     << ",\"catalog\":{\"num_items\":" << service_->num_items()
     << ",\"num_behaviors\":" << service_->num_behaviors()
     << ",\"dim\":" << service_->catalog_dim() << "}";
  // Quantized-catalog stats (docs/INFERENCE.md): enabled only when the
  // planned executor was compiled with the int8 tier.
  const infer::PlannedExecutor* plan = service_->planned_executor();
  if (plan != nullptr && plan->quantized()) {
    const infer::QuantInfo& qi = plan->quant_info();
    ss << ",\"quant\":{\"enabled\":true"
       << ",\"min_scale\":" << qi.min_scale
       << ",\"max_scale\":" << qi.max_scale
       << ",\"zero_rows\":" << qi.zero_rows
       << ",\"saturated\":" << qi.saturated
       << ",\"int8_bytes\":" << qi.int8_bytes
       << ",\"fp32_bytes\":" << qi.fp32_bytes << "}";
  } else {
    ss << ",\"quant\":{\"enabled\":false}";
  }
  ss
     << ",\"requests_served\":" << service_->requests_served()
     << ",\"batches_run\":" << service_->batches_run()
     << ",\"connections\":{\"active\":" << active
     << ",\"accepted\":" << accepted << ",\"refused\":" << refused << "}"
     << ",\"alloc\":{\"mode\":\"" << alloc::ModeName(alloc::ActiveMode())
     << "\",\"pool_hits\":" << astats.pool_hits
     << ",\"pool_misses\":" << astats.pool_misses
     << ",\"system_allocs\":" << astats.system_allocs
     << ",\"system_frees\":" << astats.system_frees
     << ",\"cached_bytes\":" << astats.cached_bytes
     << ",\"live_bytes\":" << astats.live_bytes << "}"
     << ",\"memory\":{\"live_bytes\":" << mstats.live_bytes
     << ",\"peak_bytes\":" << mstats.peak_bytes
     << ",\"live_tensors\":" << mstats.live_tensors
     << ",\"live_autograd_nodes\":" << mstats.live_autograd_nodes << "}"
     << ",\"stages\":{";
  bool first = true;
  const std::string prefix = "serve.stage.";
  for (const auto& [name, h] : snap.histograms) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (!first) ss << ",";
    first = false;
    ss << "\"" << obs::JsonEscape(name.substr(prefix.size()))
       << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"p50\":" << obs::SnapshotPercentile(h, 0.5)
       << ",\"p99\":" << obs::SnapshotPercentile(h, 0.99) << "}";
  }
  ss << "},\"flight_recorder\":{\"enabled\":"
     << (obs::FlightRecorderEnabled() ? "true" : "false")
     << ",\"ring_capacity\":" << obs::FlightRingCapacity()
     << ",\"recorded\":" << obs::FlightRecorderTotalRecorded() << "}}";
  return ss.str();
}

void TcpServer::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> l(jobs_mu_);
      jobs_cv_.wait(l, [&] { return jobs_stop_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (jobs_stop_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    StageMetrics::Get().queue_ns.Observe(obs::NowNanos() - job.enqueue_ns);
    TopKResult result;
    Status s = service_->TopK(job.parsed.query, &result);
    std::string line = s.ok() ? TopKToJson(job.parsed.id, result)
                              : ErrorToJson(job.parsed.id, s.message());
    {
      // Decrement and append under one lock: the epoll thread may only close
      // a draining connection when it can see BOTH in_flight == 0 and the
      // answer bytes, never a window in between (the drain guarantee).
      std::lock_guard<std::mutex> l(job.conn->mu);
      --job.conn->in_flight;
      if (!job.conn->closed) {
        job.conn->wbuf += line;
        job.conn->wbuf += '\n';
        job.conn->bytes_enqueued += line.size() + 1;
        // serve.stage.write_ns: from answer enqueued to its last byte sent.
        job.conn->write_marks.emplace_back(job.conn->bytes_enqueued,
                                           obs::NowNanos());
      }
    }
    ScheduleFlush(job.conn);
  }
}

void TcpServer::EnqueueResponse(const std::shared_ptr<Conn>& conn,
                                const std::string& line) {
  {
    std::lock_guard<std::mutex> l(conn->mu);
    if (conn->closed) return;
    conn->wbuf += line;
    conn->wbuf += '\n';
    conn->bytes_enqueued += line.size() + 1;  // keep write marks aligned
  }
  ScheduleFlush(conn);
}

void TcpServer::ScheduleFlush(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> l(mu_);
    flush_.push_back(conn);
  }
  WakeEpoll();
}

void TcpServer::FlushConn(const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  bool want_write = false;
  size_t pending = 0;
  {
    std::lock_guard<std::mutex> l(conn->mu);
    if (conn->closed) return;
    while (conn->woff < conn->wbuf.size()) {
      ssize_t w = ::send(conn->fd, conn->wbuf.data() + conn->woff,
                         conn->wbuf.size() - conn->woff, MSG_NOSIGNAL);
      if (w > 0) {
        conn->woff += static_cast<size_t>(w);
        conn->bytes_sent += static_cast<uint64_t>(w);
        TcpMetrics::Get().bytes_out.Add(w);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_now = true;  // EPIPE/ECONNRESET: peer gone
      break;
    }
    if (!conn->write_marks.empty() &&
        conn->bytes_sent >= conn->write_marks.front().first) {
      int64_t now_ns = obs::NowNanos();
      do {
        StageMetrics::Get().write_ns.Observe(
            now_ns - conn->write_marks.front().second);
        conn->write_marks.pop_front();
      } while (!conn->write_marks.empty() &&
               conn->bytes_sent >= conn->write_marks.front().first);
    }
    if (conn->woff == conn->wbuf.size()) {
      conn->wbuf.clear();
      conn->woff = 0;
    } else if (conn->woff > kCompactThreshold) {
      conn->wbuf.erase(0, conn->woff);
      conn->woff = 0;
    }
    pending = conn->wbuf.size() - conn->woff;
    want_write = pending > 0 && !close_now;
    if (!close_now && pending == 0 && conn->in_flight == 0 &&
        (conn->rd_eof || conn->close_after_flush ||
         (!conn->admin && draining_.load(std::memory_order_acquire)))) {
      close_now = true;  // fully answered and no more input possible
    }
  }
  if (close_now) {
    CloseConn(conn);
    return;
  }
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    UpdateEvents(conn);
  }
  // Backpressure: a reader that cannot keep up stops being read from until
  // its buffered output drains below half the cap.
  bool drain_mode = conn->rd_eof || draining_.load(std::memory_order_acquire);
  if (!drain_mode && conn->reading &&
      pending > static_cast<size_t>(config_.max_buffered_write_bytes)) {
    SetReading(conn, false);
  } else if (!drain_mode && !conn->reading &&
             pending <
                 static_cast<size_t>(config_.max_buffered_write_bytes) / 2) {
    SetReading(conn, true);
  }
}

void TcpServer::SetReading(const std::shared_ptr<Conn>& conn, bool enable) {
  if (conn->reading == enable) return;
  conn->reading = enable;
  UpdateEvents(conn);
}

void TcpServer::UpdateEvents(const std::shared_ptr<Conn>& conn) {
  epoll_event ev{};
  ev.events = (conn->reading ? EPOLLIN : 0u) |
              (conn->want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void TcpServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> l(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    conn->wbuf.clear();
    conn->woff = 0;
    conn->write_marks.clear();
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  size_t now_active = 0;
  bool drained = false;
  {
    std::lock_guard<std::mutex> l(mu_);
    conns_.erase(conn->fd);
    if (!conn->admin) --query_conns_;
    now_active = conns_.size();
    drained = draining_.load(std::memory_order_acquire) && query_conns_ == 0;
  }
  TcpMetrics::Get().closed.Add(1);
  TcpMetrics::Get().active.Set(static_cast<int64_t>(now_active));
  if (drained) drained_cv_.notify_all();
}

}  // namespace missl::serve
