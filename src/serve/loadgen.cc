#include "serve/loadgen.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <thread>
#include <unordered_map>

#include "obs/trace.h"
#include "utils/check.h"

namespace missl::serve {

namespace {

// Connects a blocking TCP socket to host:port (IPv4 dotted quad).
int ConnectTo(const std::string& host, int port, std::string* err) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *err = "bad host (want IPv4 dotted quad): " + host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *err = "connect " + host + ":" + std::to_string(port) + ": " +
           std::strerror(errno);
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

// Extracts the echoed "id" field and error-ness of one response line.
bool ParseResponseLine(const std::string& line, int64_t* id, bool* is_error) {
  size_t pos = line.find("\"id\":");
  if (pos == std::string::npos) return false;
  pos += 5;
  bool neg = pos < line.size() && line[pos] == '-';
  if (neg) ++pos;
  if (pos >= line.size() || line[pos] < '0' || line[pos] > '9') return false;
  int64_t v = 0;
  while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
    v = v * 10 + (line[pos] - '0');
    ++pos;
  }
  *id = neg ? -v : v;
  *is_error = line.find("\"error\"") != std::string::npos;
  return true;
}

// Tracks the peak of a concurrently-updated counter.
struct PeakCounter {
  std::atomic<int32_t> cur{0};
  std::atomic<int32_t> peak{0};

  void Up() {
    int32_t now = cur.fetch_add(1, std::memory_order_relaxed) + 1;
    int32_t prev = peak.load(std::memory_order_relaxed);
    while (prev < now &&
           !peak.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }
  void Down() { cur.fetch_sub(1, std::memory_order_relaxed); }
};

// Per-connection worker state shared with the main thread.
struct ConnRun {
  int fd = -1;
  std::vector<std::string> lines;  ///< request lines, pre-generated
  std::vector<int64_t> ids;        ///< parallel to lines
  std::vector<int64_t> latencies_ns;
  int64_t ok = 0;
  int64_t errors = 0;
  Status status;
};

// Reads from fd until `buf` holds a full line; returns the line without the
// trailing '\n' via *line. Blocking socket with SO_RCVTIMEO as stall guard.
Status ReadLine(int fd, std::string* buf, std::string* line) {
  for (;;) {
    size_t nl = buf->find('\n');
    if (nl != std::string::npos) {
      line->assign(*buf, 0, nl);
      buf->erase(0, nl + 1);
      return Status::OK();
    }
    char tmp[4096];
    ssize_t r = ::recv(fd, tmp, sizeof(tmp), 0);
    if (r > 0) {
      buf->append(tmp, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) return Status::IOError("server closed the connection");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("recv timed out waiting for a response");
    }
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
}

Status SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t w =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 100);
      continue;
    }
    return Status::IOError(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

// Closed loop: one request outstanding per connection at all times.
void RunClosedLoop(ConnRun* run, PeakCounter* in_flight) {
  std::string buf, line;
  for (size_t i = 0; i < run->lines.size(); ++i) {
    int64_t t0 = obs::NowNanos();
    in_flight->Up();
    run->status = SendAll(run->fd, run->lines[i]);
    if (run->status.ok()) run->status = ReadLine(run->fd, &buf, &line);
    in_flight->Down();
    if (!run->status.ok()) return;
    run->latencies_ns.push_back(obs::NowNanos() - t0);
    int64_t id = 0;
    bool is_error = false;
    if (!ParseResponseLine(line, &id, &is_error)) {
      run->status = Status::Corruption("unparseable response: " + line);
      return;
    }
    if (id != run->ids[i]) {
      run->status = Status::Corruption(
          "response id " + std::to_string(id) + " does not match request id " +
          std::to_string(run->ids[i]) + " (closed loop is strictly ordered)");
      return;
    }
    if (is_error) {
      ++run->errors;
    } else {
      ++run->ok;
    }
  }
}

// Open loop: send on a fixed schedule regardless of responses.
void RunOpenLoop(ConnRun* run, PeakCounter* in_flight, double conn_qps,
                 int64_t stall_timeout_ms) {
  const int64_t interval_ns =
      static_cast<int64_t>(1e9 / (conn_qps > 0 ? conn_qps : 1.0));
  std::unordered_map<int64_t, int64_t> send_ns;
  send_ns.reserve(run->lines.size());
  std::string buf;
  size_t next = 0;
  int64_t answered = 0;
  const int64_t start = obs::NowNanos();
  int64_t last_progress = start;

  while (answered < static_cast<int64_t>(run->lines.size())) {
    int64_t now = obs::NowNanos();
    // Send every request whose scheduled time has arrived.
    while (next < run->lines.size() &&
           now >= start + static_cast<int64_t>(next) * interval_ns) {
      in_flight->Up();
      send_ns[run->ids[next]] = obs::NowNanos();
      run->status = SendAll(run->fd, run->lines[next]);
      if (!run->status.ok()) return;
      ++next;
      last_progress = now = obs::NowNanos();
    }
    // Wait for either the next scheduled send or response bytes.
    int timeout_ms = 50;
    if (next < run->lines.size()) {
      int64_t until =
          start + static_cast<int64_t>(next) * interval_ns - obs::NowNanos();
      timeout_ms = static_cast<int>(std::max<int64_t>(0, until / 1000000));
      timeout_ms = std::min(timeout_ms, 50);
    }
    pollfd pfd{run->fd, POLLIN, 0};
    int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
      char tmp[4096];
      ssize_t r = ::recv(run->fd, tmp, sizeof(tmp), 0);
      if (r > 0) {
        buf.append(tmp, static_cast<size_t>(r));
      } else if (r == 0) {
        run->status = Status::IOError("server closed the connection");
        return;
      } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        run->status = Status::IOError(std::string("recv: ") +
                                      std::strerror(errno));
        return;
      }
      for (;;) {
        size_t nl = buf.find('\n');
        if (nl == std::string::npos) break;
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        int64_t id = 0;
        bool is_error = false;
        if (!ParseResponseLine(line, &id, &is_error) ||
            send_ns.count(id) == 0) {
          run->status = Status::Corruption("unexpected response: " + line);
          return;
        }
        run->latencies_ns.push_back(obs::NowNanos() - send_ns[id]);
        send_ns.erase(id);
        in_flight->Down();
        ++answered;
        if (is_error) {
          ++run->errors;
        } else {
          ++run->ok;
        }
        last_progress = obs::NowNanos();
      }
    }
    if (obs::NowNanos() - last_progress > stall_timeout_ms * 1000000) {
      run->status = Status::IOError(
          "open-loop stall: no response for " +
          std::to_string(stall_timeout_ms) + "ms with " +
          std::to_string(send_ns.size()) + " requests outstanding");
      return;
    }
  }
}

}  // namespace

ParsedQuery MakeLoadQuery(Rng* rng, int64_t id, const LoadGenConfig& config) {
  MISSL_CHECK(rng != nullptr && config.num_items > 0 &&
              config.num_behaviors > 0 && config.min_history >= 1 &&
              config.max_history >= config.min_history);
  ParsedQuery parsed;
  parsed.id = id;
  Query& q = parsed.query;
  int len = config.min_history +
            static_cast<int>(rng->UniformInt(static_cast<uint64_t>(
                config.max_history - config.min_history + 1)));
  bool with_ts = rng->Bernoulli(static_cast<float>(config.timestamp_prob));
  int64_t ts = 1000;
  for (int i = 0; i < len; ++i) {
    q.items.push_back(static_cast<int32_t>(
        rng->UniformInt(static_cast<uint64_t>(config.num_items))));
    q.behaviors.push_back(static_cast<int32_t>(
        rng->UniformInt(static_cast<uint64_t>(config.num_behaviors))));
    if (with_ts) {
      ts += 1 + static_cast<int64_t>(rng->UniformInt(500));
      q.timestamps.push_back(ts);
    }
  }
  // The wire carries `now` implicitly as the newest timestamp, so only that
  // form round-trips through QueryToLine → ParseQueryLine.
  if (with_ts) q.now = q.timestamps.back();
  if (rng->Bernoulli(static_cast<float>(config.exclude_prob))) {
    int n_excl = 1 + static_cast<int>(rng->UniformInt(3));
    for (int i = 0; i < n_excl; ++i) {
      q.exclude.push_back(
          q.items[rng->UniformInt(static_cast<uint64_t>(q.items.size()))]);
    }
  }
  q.k = config.k;
  return parsed;
}

int64_t PercentileNearestRank(std::vector<int64_t> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0) return samples.front();
  if (p > 1) p = 1;
  size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(samples.size())));
  if (rank < 1) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

Status RunLoadGen(const LoadGenConfig& config, LoadGenResult* out) {
  MISSL_CHECK(out != nullptr);
  if (config.port <= 0 || config.port > 65535) {
    return Status::InvalidArgument("LoadGenConfig.port must be set");
  }
  if (config.connections < 1) {
    return Status::InvalidArgument("LoadGenConfig.connections must be >= 1");
  }
  if (config.total_requests < 1) {
    return Status::InvalidArgument(
        "LoadGenConfig.total_requests must be >= 1");
  }
  if (config.target_qps < 0) {
    return Status::InvalidArgument("LoadGenConfig.target_qps must be >= 0");
  }

  const int conns = config.connections;
  std::vector<ConnRun> runs(static_cast<size_t>(conns));
  // Deterministic mix: connection c draws from sub-stream c and owns global
  // ids c, c + conns, c + 2*conns, ... — identical per seed no matter how
  // the runtime schedules the client threads.
  for (int c = 0; c < conns; ++c) {
    Rng rng(config.seed, static_cast<uint64_t>(c));
    ConnRun& run = runs[static_cast<size_t>(c)];
    for (int64_t id = c; id < config.total_requests; id += conns) {
      ParsedQuery pq = MakeLoadQuery(&rng, id, config);
      run.ids.push_back(pq.id);
      run.lines.push_back(QueryToLine(pq.id, pq.query) + "\n");
    }
  }

  // Connect everything up front so wall-clock measures serving, not dials.
  for (int c = 0; c < conns; ++c) {
    std::string err;
    int fd = ConnectTo(config.host, config.port, &err);
    if (fd < 0) {
      for (int j = 0; j < c; ++j) ::close(runs[static_cast<size_t>(j)].fd);
      return Status::IOError(err);
    }
    timeval tv{};
    tv.tv_sec = config.recv_timeout_ms / 1000;
    tv.tv_usec = (config.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    runs[static_cast<size_t>(c)].fd = fd;
  }

  PeakCounter in_flight;
  const double conn_qps = config.target_qps / conns;
  const int64_t t0 = obs::NowNanos();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    ConnRun* run = &runs[static_cast<size_t>(c)];
    if (run->lines.empty()) continue;  // more connections than requests
    threads.emplace_back([run, &in_flight, &config, conn_qps] {
      if (config.target_qps > 0) {
        RunOpenLoop(run, &in_flight, conn_qps, config.recv_timeout_ms);
      } else {
        RunClosedLoop(run, &in_flight);
      }
    });
  }
  for (auto& t : threads) t.join();
  const int64_t t1 = obs::NowNanos();
  for (auto& run : runs) ::close(run.fd);

  *out = LoadGenResult();
  std::vector<int64_t> latencies;
  for (const auto& run : runs) {
    if (!run.status.ok()) return run.status;
    out->sent += static_cast<int64_t>(run.lines.size());
    out->ok += run.ok;
    out->errors += run.errors;
    latencies.insert(latencies.end(), run.latencies_ns.begin(),
                     run.latencies_ns.end());
  }
  out->wall_seconds = static_cast<double>(t1 - t0) / 1e9;
  int64_t answered = out->ok + out->errors;
  out->achieved_qps = out->wall_seconds > 0
                          ? static_cast<double>(answered) / out->wall_seconds
                          : 0;
  out->p50_us = PercentileNearestRank(latencies, 0.50) / 1000;
  out->p99_us = PercentileNearestRank(latencies, 0.99) / 1000;
  out->p999_us = PercentileNearestRank(latencies, 0.999) / 1000;
  out->max_us = latencies.empty()
                    ? 0
                    : *std::max_element(latencies.begin(), latencies.end()) /
                          1000;
  out->max_in_flight = in_flight.peak.load(std::memory_order_relaxed);
  return Status::OK();
}

Status HttpGet(const std::string& host, int port, const std::string& path,
               HttpResponse* out, int64_t timeout_ms) {
  MISSL_CHECK(out != nullptr);
  std::string err;
  int fd = ConnectTo(host, port, &err);
  if (fd < 0) return Status::IOError(err);
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                    "\r\nConnection: close\r\n\r\n";
  size_t off = 0;
  while (off < req.size()) {
    ssize_t w = ::send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    return Status::IOError(std::string("send: ") + std::strerror(errno));
  }
  std::string raw;
  char buf[65536];
  for (;;) {
    ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r > 0) {
      raw.append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) break;
    if (errno == EINTR) continue;
    ::close(fd);
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
  ::close(fd);
  // Status line: "HTTP/1.x <code> <reason>".
  if (raw.rfind("HTTP/1.", 0) != 0) {
    return Status::IOError("malformed HTTP status line");
  }
  size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    return Status::IOError("malformed HTTP status line");
  }
  int code = 0;
  for (size_t i = sp + 1; i < sp + 4 && i < raw.size(); ++i) {
    if (raw[i] < '0' || raw[i] > '9') {
      return Status::IOError("malformed HTTP status code");
    }
    code = code * 10 + (raw[i] - '0');
  }
  size_t body_at = raw.find("\r\n\r\n");
  size_t skip = 4;
  if (body_at == std::string::npos) {
    body_at = raw.find("\n\n");
    skip = 2;
  }
  if (body_at == std::string::npos) {
    return Status::IOError("HTTP response missing header terminator");
  }
  out->code = code;
  out->body = raw.substr(body_at + skip);
  return Status::OK();
}

namespace {

// Strips a trailing "_bucket"/"_sum"/"_count" suffix; empty when absent.
std::string StripSuffix(const std::string& name, const char* suffix) {
  size_t n = std::strlen(suffix);
  if (name.size() <= n ||
      name.compare(name.size() - n, n, suffix) != 0) {
    return std::string();
  }
  return name.substr(0, name.size() - n);
}

}  // namespace

bool ParsePrometheusText(const std::string& text,
                         std::map<std::string, double>* scalars,
                         std::map<std::string, PromHistogram>* histograms) {
  std::map<std::string, std::string> types;  // family -> counter|gauge|histogram
  std::map<std::string, PromHistogram> hists;
  std::map<std::string, double> vals;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // The exporter only emits "# TYPE <name> <type>" comments.
      if (line.rfind("# TYPE ", 0) != 0) return false;
      std::string rest = line.substr(7);
      size_t sp = rest.find(' ');
      if (sp == std::string::npos) return false;
      std::string name = rest.substr(0, sp);
      std::string type = rest.substr(sp + 1);
      if (type != "counter" && type != "gauge" && type != "histogram") {
        return false;
      }
      if (types.count(name) != 0) return false;  // duplicate family
      types[name] = type;
      continue;
    }
    // Sample line: name[{labels}] SP value
    size_t brace = line.find('{');
    size_t name_end = std::min(brace, line.find(' '));
    if (name_end == 0 || name_end == std::string::npos) return false;
    std::string name = line.substr(0, name_end);
    std::string le;
    size_t value_at;
    if (brace != std::string::npos && brace == name_end) {
      size_t close = line.find('}', brace);
      if (close == std::string::npos || close + 2 > line.size() ||
          line[close + 1] != ' ') {
        return false;
      }
      std::string labels = line.substr(brace + 1, close - brace - 1);
      if (labels.rfind("le=\"", 0) != 0 || labels.size() < 5 ||
          labels.back() != '"') {
        return false;  // the exporter only emits the le label
      }
      le = labels.substr(4, labels.size() - 5);
      value_at = close + 2;
    } else {
      value_at = name_end + 1;
    }
    if (value_at >= line.size()) return false;
    char* end = nullptr;
    std::string value_str = line.substr(value_at);
    double value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str() || *end != '\0') return false;

    std::string base;
    if (!le.empty()) {
      base = StripSuffix(name, "_bucket");
      if (base.empty() || types.count(base) == 0 ||
          types[base] != "histogram") {
        return false;
      }
      double bound;
      if (le == "+Inf") {
        bound = std::numeric_limits<double>::infinity();
      } else {
        char* lend = nullptr;
        bound = std::strtod(le.c_str(), &lend);
        if (lend == le.c_str() || *lend != '\0') return false;
      }
      PromHistogram& h = hists[base];
      // Cumulative-monotone in exposition order, strictly increasing bounds.
      if (!h.buckets.empty() &&
          (bound <= h.buckets.back().first ||
           static_cast<int64_t>(value) < h.buckets.back().second)) {
        return false;
      }
      h.buckets.emplace_back(bound, static_cast<int64_t>(value));
      continue;
    }
    if (std::string b = StripSuffix(name, "_sum");
        !b.empty() && types.count(b) != 0 && types[b] == "histogram") {
      hists[b].sum = static_cast<int64_t>(value);
      continue;
    }
    if (std::string b = StripSuffix(name, "_count");
        !b.empty() && types.count(b) != 0 && types[b] == "histogram") {
      hists[b].count = static_cast<int64_t>(value);
      continue;
    }
    if (types.count(name) == 0 || types[name] == "histogram") {
      return false;  // scalar sample without a matching TYPE line
    }
    if (vals.count(name) != 0) return false;  // duplicate sample
    vals[name] = value;
  }
  // Histogram consistency: a +Inf bucket exists and equals _count.
  for (const auto& [name, h] : hists) {
    if (h.buckets.empty() || !std::isinf(h.buckets.back().first) ||
        h.buckets.back().second != h.count) {
      return false;
    }
  }
  if (scalars != nullptr) *scalars = std::move(vals);
  if (histograms != nullptr) *histograms = std::move(hists);
  return true;
}

int64_t PromHistogramPercentile(const PromHistogram& h, double p) {
  if (h.count <= 0 || h.buckets.empty()) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  int64_t target =
      static_cast<int64_t>(p * static_cast<double>(h.count - 1)) + 1;
  double finite_max = 0;
  for (const auto& [le, cum] : h.buckets) {
    if (!std::isinf(le)) finite_max = le;
    if (cum >= target) {
      return static_cast<int64_t>(std::isinf(le) ? finite_max : le);
    }
  }
  return static_cast<int64_t>(finite_max);
}

PromHistogram PromHistogramDelta(const PromHistogram& cur,
                                 const PromHistogram& base) {
  PromHistogram d;
  if (cur.buckets.size() != base.buckets.size()) return d;
  for (size_t i = 0; i < cur.buckets.size(); ++i) {
    if (cur.buckets[i].first != base.buckets[i].first &&
        !(std::isinf(cur.buckets[i].first) &&
          std::isinf(base.buckets[i].first))) {
      return d;
    }
  }
  d.count = cur.count - base.count;
  d.sum = cur.sum - base.sum;
  d.buckets.reserve(cur.buckets.size());
  for (size_t i = 0; i < cur.buckets.size(); ++i) {
    d.buckets.emplace_back(cur.buckets[i].first,
                           cur.buckets[i].second - base.buckets[i].second);
  }
  return d;
}

}  // namespace missl::serve
