// Epoll TCP front-end for RecoService: speaks the serving line protocol
// (serve/protocol.h) over loopback/LAN sockets so the micro-batcher can be
// driven by real concurrent network traffic.
//
// Architecture (see docs/SERVING.md for the full picture):
//
//   clients ══socket══►  epoll loop (1 thread)          worker threads (N)
//                          │ accept / read / write        │
//                          │ split-line buffering         │ RecoService::TopK
//                          │ per conn; parse lines        │ (blocks inside the
//                          ├─── job queue ───────────────►│  micro-batcher)
//                          │                              │
//                          ◄── response buffer + eventfd ─┘
//                          │ backpressure-aware flush
//   clients ◄══socket══════┘
//
// The epoll thread owns every socket: it accepts connections, buffers reads
// until a full '\n'-terminated line is available (lines may arrive split
// across any number of packets), parses each line, and hands well-formed
// queries to a small worker pool. Workers block inside RecoService::TopK —
// that is what lets concurrent connections coalesce in the micro-batcher —
// then append the JSON answer to the connection's write buffer and wake the
// epoll thread through an eventfd to flush it. Responses on one connection
// may be answered out of order when the client pipelines; the echoed "id"
// field is the correlation key.
//
// Robustness contract (locked by tests/tcp_server_test.cc and the socket
// sweep in tests/serve_fuzz_test.cc):
//   - malformed lines are answered with {"id":-1,"error":...} and the
//     connection stays usable; an over-long line (no '\n' within
//     max_line_bytes) is answered with one error and discarded up to the
//     next newline;
//   - a peer may disconnect at any byte offset without affecting other
//     connections (in-flight answers to a dead peer are dropped);
//   - at most max_connections clients are served; extra connects receive a
//     clean {"id":-1,"error":"connection limit reached"} and are closed;
//   - writes are backpressure-aware: when a slow reader's buffered output
//     exceeds max_buffered_write_bytes the server stops reading from that
//     connection until the buffer drains, so one slow client cannot balloon
//     server memory;
//   - Shutdown() drains: queries already handed to workers complete and
//     their answers are flushed before connections close, while connects
//     arriving after drain begins get {"id":-1,"error":"shutting down"}.
//
// Admin plane: a second loopback listener (TcpServerConfig::admin_port)
// multiplexed on the same epoll loop answers HTTP/1.0 GETs — /metrics
// (Prometheus text), /healthz (serving vs draining), /statusz (JSON status),
// /tracez (flight-recorder Chrome trace). Admin connections are one-shot
// (Connection: close), exempt from max_connections and from the query-plane
// drain (scraping a draining server is the point), and are force-closed only
// when the epoll thread exits. Rendering happens on the epoll thread; admin
// traffic never touches the worker pool or the micro-batcher, so it cannot
// perturb query answers.
#ifndef MISSL_SERVE_TCP_SERVER_H_
#define MISSL_SERVE_TCP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/protocol.h"
#include "serve/service.h"
#include "utils/status.h"

namespace missl::serve {

/// TCP front-end knobs. Defaults suit tests and loopback benches; a real
/// deployment would raise max_connections and num_workers.
struct TcpServerConfig {
  int port = 0;             ///< 0 = ephemeral; TcpServer::port() reports it
  int admin_port = 0;       ///< admin HTTP port: 0 = ephemeral, -1 = disabled
  int max_connections = 256;   ///< concurrent clients before refusals
  int num_workers = 4;         ///< threads blocking in RecoService::TopK
  int64_t max_line_bytes = 1 << 20;  ///< longest accepted request line
  int64_t max_buffered_write_bytes = 4 << 20;  ///< per-conn backpressure cap
  int backlog = 128;           ///< listen(2) backlog
};

/// Serves one RecoService over TCP on 127.0.0.1. Construct via Start();
/// destruction performs a full drain-and-join Shutdown(). The service must
/// outlive the server.
class TcpServer {
 public:
  /// Binds 127.0.0.1:config.port (0 picks an ephemeral port), starts the
  /// epoll thread and the worker pool. Returns nullptr with `*status` set on
  /// bind/listen failure or invalid config; `*status` is OK on success.
  static std::unique_ptr<TcpServer> Start(RecoService* service,
                                          const TcpServerConfig& config,
                                          Status* status);

  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Actual bound port (resolves an ephemeral config.port = 0).
  int port() const { return port_; }
  /// Actual admin HTTP port (-1 when the admin plane is disabled).
  int admin_port() const { return admin_port_; }
  const TcpServerConfig& config() const { return config_; }

  /// Starts draining without blocking: new query connects are refused,
  /// reading stops on existing query connections, queries already accepted
  /// still complete and their answers are flushed before each connection
  /// closes. The admin plane keeps answering (/healthz reports draining).
  void BeginShutdown();

  /// BeginShutdown() + blocks until every query connection has drained and
  /// all threads are joined (remaining admin connections are flushed
  /// best-effort and closed). Idempotent; called by the destructor.
  void Shutdown();

  /// Connections currently open (draining ones included).
  int64_t active_connections() const;
  /// Total connections accepted / refused since Start.
  int64_t connections_accepted() const;
  int64_t connections_refused() const;

 private:
  /// One client socket, shared between the epoll thread (all socket I/O)
  /// and workers (response enqueue only, under `mu`).
  struct Conn {
    int fd = -1;
    bool admin = false;        ///< accepted on the admin listener (HTTP)
    std::string rbuf;          ///< bytes read, not yet forming a full line
    bool discarding = false;   ///< over-long line: drop until next '\n'
    bool rd_eof = false;       ///< peer half-closed; still flush answers
    bool reading = true;       ///< EPOLLIN armed (epoll thread only)
    bool want_write = false;   ///< EPOLLOUT armed (epoll thread only)

    std::mutex mu;
    std::string wbuf;          ///< pending response bytes (guarded by mu)
    size_t woff = 0;           ///< bytes of wbuf already sent
    int in_flight = 0;         ///< queries handed to workers, unanswered
    bool closed = false;       ///< fd closed; workers drop late answers
    bool close_after_flush = false;  ///< one-shot (admin): close when drained
    // serve.stage.write_ns bookkeeping (query conns only): total bytes ever
    // appended to / sent from wbuf, plus (enqueued-watermark, enqueue-time)
    // marks observed when bytes_sent crosses them.
    uint64_t bytes_enqueued = 0;
    uint64_t bytes_sent = 0;
    std::deque<std::pair<uint64_t, int64_t>> write_marks;
  };

  struct Job {
    std::shared_ptr<Conn> conn;
    ParsedQuery parsed;
    int64_t enqueue_ns = 0;  ///< serve.stage.queue_ns start
  };

  TcpServer(RecoService* service, const TcpServerConfig& config);

  void EpollLoop();
  void WorkerLoop();
  void AcceptPending();
  void AcceptAdminPending();
  /// Writes `line` + '\n' to a fresh fd best-effort and closes it.
  void RefuseConnection(int fd, const std::string& reason);
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  /// Splits rbuf into complete lines; parses and dispatches each.
  void ProcessReadBuffer(const std::shared_ptr<Conn>& conn);
  void HandleLine(const std::shared_ptr<Conn>& conn, const std::string& line);
  /// Admin-plane read path: waits for a full HTTP request head, answers it,
  /// and schedules the connection to close once the response is flushed.
  void ProcessAdminBuffer(const std::shared_ptr<Conn>& conn);
  void HandleAdminRequest(const std::shared_ptr<Conn>& conn,
                          const std::string& method, const std::string& target);
  /// Appends a full HTTP/1.0 response to the connection's write buffer and
  /// flushes (epoll thread only).
  void SendHttpResponse(const std::shared_ptr<Conn>& conn, int code,
                        const char* content_type, const std::string& body);
  /// /statusz body: build rev, uptime, configs, catalog dims, counters,
  /// alloc/memory stats, serve.stage.* summaries.
  std::string StatuszJson() const;
  /// Appends one response line and schedules a flush (any thread).
  void EnqueueResponse(const std::shared_ptr<Conn>& conn,
                       const std::string& line);
  /// Queues the connection for a flush on the epoll thread (any thread).
  void ScheduleFlush(const std::shared_ptr<Conn>& conn);
  /// Re-arms the connection's epoll mask from reading/want_write.
  void UpdateEvents(const std::shared_ptr<Conn>& conn);
  /// Sends as much buffered output as the socket accepts; arms EPOLLOUT for
  /// the rest, applies backpressure, closes drained connections during
  /// shutdown. Epoll thread only.
  void FlushConn(const std::shared_ptr<Conn>& conn);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void SetReading(const std::shared_ptr<Conn>& conn, bool enable);
  void WakeEpoll();
  /// True once draining and no connection remains.
  bool Drained() const;

  RecoService* service_;
  TcpServerConfig config_;
  int port_ = 0;
  int admin_port_ = -1;
  int listen_fd_ = -1;
  int admin_listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: workers → epoll thread
  int64_t start_ns_ = 0;  ///< obs::NowNanos() at Start, for /statusz uptime

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  std::map<int, std::shared_ptr<Conn>> conns_;   ///< fd → connection
  std::vector<std::shared_ptr<Conn>> flush_;     ///< response-ready conns
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  int64_t accepted_ = 0;
  int64_t refused_ = 0;
  int64_t query_conns_ = 0;  ///< open non-admin conns; drain waits on 0

  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;
  bool jobs_stop_ = false;

  std::thread epoll_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace missl::serve

#endif  // MISSL_SERVE_TCP_SERVER_H_
