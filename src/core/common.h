// Building blocks shared by the MISSL core model and the baselines:
// sequence embedding with positions, pooling/readout, and scoring helpers.
#ifndef MISSL_CORE_COMMON_H_
#define MISSL_CORE_COMMON_H_

#include <vector>

#include "data/batch.h"
#include "nn/embedding.h"
#include "tensor/ops.h"

namespace missl::core {

/// Item + positional embedding of a front-padded id sequence:
/// returns [B, T, d]. Padded ids (-1) embed to zero and get no position.
Tensor EmbedWithPositions(const nn::Embedding& item_emb,
                          const nn::Embedding& pos_emb,
                          const std::vector<int32_t>& ids, int64_t batch,
                          int64_t t);

/// Reads out the representation at the last position: [B, T, d] -> [B, d].
/// With front padding the last position always holds the most recent event.
Tensor LastPosition(const Tensor& h);

/// Mean over non-padded positions: [B, T, d] -> [B, d]. Rows with no valid
/// position yield zeros.
Tensor MaskedMeanPool(const Tensor& h, const std::vector<int32_t>& ids,
                      int64_t batch, int64_t t);

/// Scores user vectors [B, d] against explicit candidates (flattened
/// [B * C] ids): returns [B, C].
Tensor ScoreCandidatesSingle(const Tensor& user, const nn::Embedding& item_emb,
                             const std::vector<int32_t>& cand_ids, int64_t batch,
                             int64_t num_cands);

/// Scores interest matrices [B, K, d] against candidates with max-over-
/// interest routing: returns [B, C].
Tensor ScoreCandidatesMultiInterest(const Tensor& interests,
                                    const nn::Embedding& item_emb,
                                    const std::vector<int32_t>& cand_ids,
                                    int64_t batch, int64_t num_cands);

/// Full-catalog logits for a single user vector: [B, d] -> [B, V].
Tensor FullCatalogLogits(const Tensor& user, const nn::Embedding& item_emb);

/// Selects, per row, the interest whose dot product with the target item is
/// highest (ComiRec-style hard routing; selection itself is not
/// differentiated) and returns the selected vectors [B, d].
Tensor SelectInterestByTarget(const Tensor& interests,
                              const nn::Embedding& item_emb,
                              const std::vector<int32_t>& targets);

/// 0/1 validity mask [B, T, 1] for front-padded ids (1 where id >= 0).
Tensor ValidMask3d(const std::vector<int32_t>& ids, int64_t batch, int64_t t);

/// Sampled-softmax logits: scores the user vectors against
/// [target, negatives...] per row using the batch's train_negatives (which
/// must be present). Returns [B, 1 + num_train_negatives]; the target is
/// always column 0, so CE targets are all-zero.
Tensor SampledLogits(const Tensor& user, const nn::Embedding& item_emb,
                     const data::Batch& batch);

}  // namespace missl::core

#endif  // MISSL_CORE_COMMON_H_
