#include "core/recommend.h"

#include <algorithm>
#include <cmath>

#include "utils/check.h"

namespace missl::core {

void TopKRow(const float* scores, int32_t num_items,
             const std::vector<int32_t>* seen_sorted, int32_t k,
             std::vector<int32_t>* out_items, std::vector<float>* out_scores) {
  MISSL_CHECK(scores != nullptr && num_items > 0 && k > 0);
  out_items->clear();
  out_scores->clear();
  std::vector<std::pair<float, int32_t>> ranked;
  ranked.reserve(static_cast<size_t>(num_items));
  for (int32_t i = 0; i < num_items; ++i) {
    if (seen_sorted != nullptr &&
        std::binary_search(seen_sorted->begin(), seen_sorted->end(), i)) {
      continue;
    }
    ranked.push_back({scores[i], i});
  }
  int32_t take = std::min<int32_t>(k, static_cast<int32_t>(ranked.size()));
  std::partial_sort(ranked.begin(), ranked.begin() + take, ranked.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  for (int32_t i = 0; i < take; ++i) {
    out_scores->push_back(ranked[static_cast<size_t>(i)].first);
    out_items->push_back(ranked[static_cast<size_t>(i)].second);
  }
}

std::vector<Recommendation> RecommendTopN(
    SeqRecModel* model, const data::Batch& batch,
    const std::vector<std::vector<int32_t>>& seen, int32_t n,
    int32_t num_items) {
  MISSL_CHECK(model != nullptr && n > 0 && num_items > 0);
  MISSL_CHECK(seen.empty() ||
              static_cast<int64_t>(seen.size()) == batch.batch_size)
      << "seen-set count mismatch";
  NoGradGuard ng;
  bool was_training = model->training();
  model->SetTraining(false);

  Tensor scores = model->ScoreAllItems(batch, num_items);

  std::vector<Recommendation> out;
  std::vector<int32_t> sorted_copy;  // scratch for unsorted seen rows
  for (int64_t row = 0; row < batch.batch_size; ++row) {
    const float* rs = scores.data() + row * num_items;
    const std::vector<int32_t>* excl =
        seen.empty() ? nullptr : &seen[static_cast<size_t>(row)];
    if (excl != nullptr && !std::is_sorted(excl->begin(), excl->end())) {
      // Live histories arrive in event order; binary_search on an unsorted
      // set would silently skip exclusions, so sort a defensive copy.
      sorted_copy = *excl;
      std::sort(sorted_copy.begin(), sorted_copy.end());
      excl = &sorted_copy;
    }
    Recommendation rec;
    rec.user = batch.users[static_cast<size_t>(row)];
    TopKRow(rs, num_items, excl, n, &rec.items, &rec.scores);
    out.push_back(std::move(rec));
  }
  model->SetTraining(was_training);
  return out;
}

ListStats ComputeListStats(const std::vector<Recommendation>& recs,
                           int32_t num_items, const Tensor& item_embedding,
                           const std::vector<int64_t>& popularity) {
  ListStats s;
  MISSL_CHECK(num_items > 0);
  std::vector<bool> covered(static_cast<size_t>(num_items), false);
  double pop_sum = 0;
  int64_t pop_n = 0;
  double dist_sum = 0;
  int64_t dist_n = 0;
  for (const auto& rec : recs) {
    for (int32_t it : rec.items) {
      MISSL_CHECK(it >= 0 && it < num_items) << "recommended id out of range";
      covered[static_cast<size_t>(it)] = true;
      if (!popularity.empty()) {
        pop_sum += std::log1p(
            static_cast<double>(popularity[static_cast<size_t>(it)]));
        ++pop_n;
      }
    }
    if (item_embedding.defined() && rec.items.size() >= 2) {
      int64_t d = item_embedding.size(1);
      for (size_t a = 0; a < rec.items.size(); ++a) {
        for (size_t b = a + 1; b < rec.items.size(); ++b) {
          const float* ea = item_embedding.data() + rec.items[a] * d;
          const float* eb = item_embedding.data() + rec.items[b] * d;
          double dot = 0, na = 0, nb = 0;
          for (int64_t j = 0; j < d; ++j) {
            dot += double(ea[j]) * eb[j];
            na += double(ea[j]) * ea[j];
            nb += double(eb[j]) * eb[j];
          }
          if (na > 1e-12 && nb > 1e-12) {
            dist_sum += 1.0 - dot / std::sqrt(na * nb);
            ++dist_n;
          }
        }
      }
    }
  }
  int64_t cov = 0;
  for (bool c : covered) cov += c ? 1 : 0;
  s.item_coverage = static_cast<double>(cov) / num_items;
  s.mean_intra_list_distance = dist_n > 0 ? dist_sum / dist_n : 0.0;
  s.mean_popularity = pop_n > 0 ? pop_sum / pop_n : 0.0;
  return s;
}

}  // namespace missl::core
