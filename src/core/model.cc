#include "core/model.h"

#include "utils/check.h"

namespace missl::core {

Tensor SeqRecModel::ScoreAllItems(const data::Batch& batch, int32_t num_items,
                                  const Tensor& /*catalog*/) {
  MISSL_CHECK(num_items > 0);
  std::vector<int32_t> cand_ids;
  cand_ids.reserve(static_cast<size_t>(batch.batch_size) *
                   static_cast<size_t>(num_items));
  for (int64_t row = 0; row < batch.batch_size; ++row) {
    for (int32_t i = 0; i < num_items; ++i) cand_ids.push_back(i);
  }
  return ScoreCandidates(batch, cand_ids, num_items);
}

}  // namespace missl::core
