#include "core/ssl.h"

#include "utils/check.h"

namespace missl::core {

Tensor InfoNce(const Tensor& a, const Tensor& b, float temperature) {
  MISSL_CHECK(a.dim() == 2 && b.dim() == 2 && a.shape() == b.shape())
      << "InfoNce expects matching [N, d] views";
  MISSL_CHECK(temperature > 0.0f) << "temperature must be positive";
  int64_t n = a.size(0);
  Tensor an = L2Normalize(a);
  Tensor bn = L2Normalize(b);
  Tensor logits = MulScalar(MatMul(an, Transpose(bn)), 1.0f / temperature);
  std::vector<int32_t> diag(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) diag[static_cast<size_t>(i)] = static_cast<int32_t>(i);
  Tensor l1 = CrossEntropyLoss(logits, diag);
  Tensor l2 = CrossEntropyLoss(Transpose(logits), diag);
  return MulScalar(Add(l1, l2), 0.5f);
}

Tensor DisentanglePenalty(const Tensor& interests) {
  MISSL_CHECK(interests.dim() == 3) << "DisentanglePenalty expects [B, K, d]";
  int64_t k = interests.size(1);
  if (k <= 1) return Tensor::Scalar(0.0f);
  Tensor vn = L2Normalize(interests);          // [B, K, d]
  Tensor gram = MatMul(vn, Transpose(vn));     // [B, K, K]
  // Zero the diagonal with a constant mask, square, and average over the
  // K(K-1) off-diagonal entries per user.
  Tensor off_mask = Tensor::Ones({k, k});
  for (int64_t i = 0; i < k; ++i) off_mask.data()[i * k + i] = 0.0f;
  Tensor off = Mul(gram, off_mask);
  float denom = static_cast<float>(k * (k - 1));
  return MulScalar(Mean(Sum(Sum(Square(off), -1, false), -1, false)),
                   1.0f / denom);
}

}  // namespace missl::core
