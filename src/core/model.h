// Common interface every sequential recommender in this library implements
// (the MISSL core model and all baselines), so the trainer, evaluator and
// bench harnesses treat them uniformly.
#ifndef MISSL_CORE_MODEL_H_
#define MISSL_CORE_MODEL_H_

#include <string>
#include <vector>

#include "data/batch.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace missl::core {

/// Abstract sequential recommendation model.
class SeqRecModel : public nn::Module {
 public:
  ~SeqRecModel() override = default;

  /// Short model name for tables ("MISSL", "SASRec", ...).
  virtual std::string Name() const = 0;

  /// Training loss for one batch (includes any auxiliary/SSL terms).
  virtual Tensor Loss(const data::Batch& batch) = 0;

  /// Scores for explicit candidate lists: `cand_ids` is flattened
  /// [batch_size * num_cands]; returns a [batch_size, num_cands] tensor.
  /// Used by the 1-plus-99-negatives evaluation protocol.
  virtual Tensor ScoreCandidates(const data::Batch& batch,
                                 const std::vector<int32_t>& cand_ids,
                                 int64_t num_cands) = 0;
};

}  // namespace missl::core

#endif  // MISSL_CORE_MODEL_H_
