// Common interface every sequential recommender in this library implements
// (the MISSL core model and all baselines), so the trainer, evaluator and
// bench harnesses treat them uniformly.
#ifndef MISSL_CORE_MODEL_H_
#define MISSL_CORE_MODEL_H_

#include <string>
#include <vector>

#include "data/batch.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace missl::core {

/// Abstract sequential recommendation model.
class SeqRecModel : public nn::Module {
 public:
  ~SeqRecModel() override = default;

  /// Short model name for tables ("MISSL", "SASRec", ...).
  virtual std::string Name() const = 0;

  /// Training loss for one batch (includes any auxiliary/SSL terms).
  virtual Tensor Loss(const data::Batch& batch) = 0;

  /// Scores for explicit candidate lists: `cand_ids` is flattened
  /// [batch_size * num_cands]; returns a [batch_size, num_cands] tensor.
  /// Used by the 1-plus-99-negatives evaluation protocol.
  virtual Tensor ScoreCandidates(const data::Batch& batch,
                                 const std::vector<int32_t>& cand_ids,
                                 int64_t num_cands) = 0;

  /// Inference entry: scores the whole catalog [0, num_items) and returns
  /// [batch_size, num_items]. `catalog` may carry the model-specific matrix
  /// returned by PrecomputeCatalog() — the serving path (src/serve/) computes
  /// it once at load time and reuses it across requests; an undefined tensor
  /// means "derive everything from the current weights". Both code paths
  /// must produce bitwise-identical scores (the serve-vs-offline parity
  /// tests depend on it). The default implementation ignores `catalog` and
  /// scores via ScoreCandidates over an explicit full-catalog id list.
  virtual Tensor ScoreAllItems(const data::Batch& batch, int32_t num_items,
                               const Tensor& catalog = Tensor());

  /// Precomputed full-catalog scoring matrix for ScoreAllItems (e.g. the
  /// transposed item-embedding table). Only meaningful while the weights do
  /// not change — callers are expected to hold frozen (inference-loaded)
  /// parameters. Default: undefined tensor (no fast path).
  virtual Tensor PrecomputeCatalog() const { return Tensor(); }
};

}  // namespace missl::core

#endif  // MISSL_CORE_MODEL_H_
