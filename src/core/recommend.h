// Top-N recommendation API on top of any SeqRecModel: full-catalog scoring
// with seen-item exclusion, plus beyond-accuracy list metrics (coverage,
// intra-list diversity, popularity bias) used in recommendation audits.
#ifndef MISSL_CORE_RECOMMEND_H_
#define MISSL_CORE_RECOMMEND_H_

#include <vector>

#include "core/model.h"
#include "data/dataset.h"

namespace missl::core {

/// One recommendation list.
struct Recommendation {
  int32_t user = 0;
  std::vector<int32_t> items;   ///< top-N, best first
  std::vector<float> scores;    ///< parallel to items
};

/// Scores the full catalog [0, num_items) for every example in `batch` and
/// returns the top-N unseen items per row. `seen` gives, per row, the item
/// set to exclude — sorted ascending is the fast path, but unsorted input
/// (live user histories arrive in event order) is detected and sorted
/// defensively. Pass an empty outer vector to disable exclusion.
std::vector<Recommendation> RecommendTopN(
    SeqRecModel* model, const data::Batch& batch,
    const std::vector<std::vector<int32_t>>& seen, int32_t n,
    int32_t num_items);

/// Selects the top-k items of one score row, skipping ids found in
/// `seen_sorted` (must be sorted ascending; nullptr disables exclusion).
/// Appends best-first into `out_items`/`out_scores` (cleared first). Shared
/// by RecommendTopN and the online serving path (src/serve/), which must
/// rank bitwise-identically.
void TopKRow(const float* scores, int32_t num_items,
             const std::vector<int32_t>* seen_sorted, int32_t k,
             std::vector<int32_t>* out_items, std::vector<float>* out_scores);

/// Beyond-accuracy statistics of a set of recommendation lists.
struct ListStats {
  double item_coverage = 0;    ///< distinct recommended items / catalog size
  double mean_intra_list_distance = 0;  ///< 1 - mean pairwise cosine (needs emb)
  double mean_popularity = 0;  ///< mean log-popularity of recommended items
};

/// Computes list statistics. `item_embedding` ([V, d]) may be undefined, in
/// which case intra-list distance is reported as 0. `popularity` is a per-
/// item count vector (raw counts; log1p applied internally); may be empty.
ListStats ComputeListStats(const std::vector<Recommendation>& recs,
                           int32_t num_items, const Tensor& item_embedding,
                           const std::vector<int64_t>& popularity);

}  // namespace missl::core

#endif  // MISSL_CORE_RECOMMEND_H_
