// Self-supervised objectives: cross-view InfoNCE and interest
// disentanglement.
#ifndef MISSL_CORE_SSL_H_
#define MISSL_CORE_SSL_H_

#include "tensor/ops.h"

namespace missl::core {

/// Symmetric InfoNCE between two aligned view matrices [N, d]: row i of `a`
/// and row i of `b` are positives; all other rows are in-batch negatives.
/// Views are L2-normalized internally; `temperature` scales the similarity.
Tensor InfoNce(const Tensor& a, const Tensor& b, float temperature);

/// Interest disentanglement penalty for [B, K, d]: mean squared cosine
/// similarity over the off-diagonal interest pairs of each user. Zero when
/// K == 1.
Tensor DisentanglePenalty(const Tensor& interests);

}  // namespace missl::core

#endif  // MISSL_CORE_SSL_H_
