#include "core/missl.h"

#include "core/common.h"
#include "core/ssl.h"
#include "nn/attention.h"
#include "nn/init.h"

namespace missl::core {

namespace {

nn::TransformerConfig MakeEncoderConfig(const MisslConfig& cfg) {
  nn::TransformerConfig tc;
  tc.dim = cfg.dim;
  tc.heads = cfg.heads;
  tc.layers = cfg.seq_layers;
  tc.ffn_hidden = 2 * cfg.dim;
  tc.dropout = cfg.dropout;
  tc.causal = false;  // history is already cut before the target
  return tc;
}

}  // namespace

MisslModel::MisslModel(int32_t num_items, int32_t num_behaviors, int64_t max_len,
                       const MisslConfig& config)
    : config_(config),
      num_items_(num_items),
      num_behaviors_(num_behaviors),
      max_len_(max_len),
      k_(config.use_multi_interest ? config.num_interests : 1),
      rng_(config.seed),
      item_emb_(num_items, config.dim, &rng_),
      beh_emb_(num_behaviors, config.dim, &rng_),
      pos_emb_(max_len, config.dim, &rng_),
      recency_emb_(data::kNumRecencyBuckets, config.dim, &rng_),
      encoder_(MakeEncoderConfig(config), &rng_),
      key_proj_(config.dim, config.dim, &rng_),
      aux_fusion_(config.dim, config.dim, &rng_),
      common_proj_(config.dim, config.dim, &rng_) {
  MISSL_CHECK(k_ >= 1) << "num_interests must be >= 1";
  RegisterModule("item_emb", &item_emb_);
  RegisterModule("beh_emb", &beh_emb_);
  RegisterModule("pos_emb", &pos_emb_);
  if (config.use_recency) RegisterModule("recency_emb", &recency_emb_);
  RegisterModule("encoder", &encoder_);
  RegisterModule("key_proj", &key_proj_);
  RegisterModule("aux_fusion", &aux_fusion_);
  if (config.use_common_interest) RegisterModule("common_proj", &common_proj_);
  for (int64_t i = 0; i < config.hgat_layers; ++i) {
    hgat_.push_back(std::make_unique<hypergraph::HypergraphAttentionLayer>(
        config.dim, config.dropout, &rng_));
    RegisterModule("hgat" + std::to_string(i), hgat_.back().get());
  }
  interest_queries_ = RegisterParameter(
      "interest_queries",
      nn::XavierUniform({static_cast<int64_t>(num_behaviors) * k_, config.dim},
                        &rng_));
  fusion_gate_ = RegisterParameter("fusion_gate", Tensor::Zeros({1}));
}

std::vector<int32_t> MisslModel::EffectiveMergedItems(
    const data::Batch& batch) const {
  if (config_.use_aux_behaviors) return batch.merged_items;
  // Ablation: hide every non-target event from the input stream.
  int32_t target = num_behaviors_ - 1;
  std::vector<int32_t> items = batch.merged_items;
  for (size_t i = 0; i < items.size(); ++i) {
    if (batch.merged_behaviors[i] != target) items[i] = -1;
  }
  return items;
}

Tensor MisslModel::Encode(const data::Batch& batch) {
  int64_t b = batch.batch_size, t = batch.max_len;
  std::vector<int32_t> items = EffectiveMergedItems(batch);
  Tensor h = EmbedWithPositions(item_emb_, pos_emb_, items, b, t);
  // Behavior-type embedding distinguishes channels inside the shared stream.
  std::vector<int32_t> behs = batch.merged_behaviors;
  for (size_t i = 0; i < behs.size(); ++i) {
    if (items[i] < 0) behs[i] = -1;
  }
  h = Add(h, beh_emb_.Forward(behs, {b, t}));
  if (config_.use_recency) {
    std::vector<int32_t> rec = batch.merged_recency;
    for (size_t i = 0; i < rec.size(); ++i) {
      if (items[i] < 0) rec[i] = -1;
    }
    h = Add(h, recency_emb_.Forward(rec, {b, t}));
  }
  h = Dropout(h, config_.dropout, training(), &rng_);

  if (config_.use_hypergraph && !hgat_.empty()) {
    Tensor incidence = hypergraph::BuildIncidence(items, behs, b, t,
                                                  num_behaviors_, config_.hg);
    for (const auto& layer : hgat_) h = layer->Forward(h, incidence);
  }
  Tensor pad_mask = nn::KeyPaddingMask(items, b, t);
  return encoder_.Forward(h, pad_mask);
}

Tensor MisslModel::ExtractInterests(const Tensor& encoded,
                                    const data::Batch& batch,
                                    int32_t behavior) const {
  int64_t b = batch.batch_size, t = batch.max_len, d = config_.dim;
  // Queries for this channel: [K, d].
  Tensor q = Slice(interest_queries_, 0, behavior * k_, (behavior + 1) * k_);
  Tensor keys = key_proj_.Forward(encoded);              // [B, T, d]
  Tensor scores_tk = MatMul(keys, Transpose(q));         // [B, T, K]
  Tensor scores = Transpose(scores_tk);                  // [B, K, T]
  // Mask out positions of other behaviors and padding.
  Tensor mask = Tensor::Zeros({b, 1, t});
  Tensor indicator = Tensor::Zeros({b, 1, 1});
  {
    float* mp = mask.data();
    float* ip = indicator.data();
    const std::vector<int32_t> items = EffectiveMergedItems(batch);
    for (int64_t row = 0; row < b; ++row) {
      bool any = false;
      for (int64_t i = 0; i < t; ++i) {
        size_t idx = static_cast<size_t>(row * t + i);
        bool member = items[idx] >= 0 && batch.merged_behaviors[idx] == behavior;
        if (!member) mp[row * t + i] = -1e9f;
        any |= member;
      }
      ip[row] = any ? 1.0f : 0.0f;
    }
  }
  Tensor probs = Softmax(Add(scores, mask));  // [B, K, T]
  Tensor interests = MatMul(probs, encoded);  // [B, K, d]
  (void)d;
  // Rows with no events of this channel produce zeros instead of an
  // attention average over noise.
  return Mul(interests, indicator);
}

Tensor MisslModel::FuseInterests(const Tensor& encoded, const data::Batch& batch,
                                 const Tensor& v_tgt,
                                 const Tensor& v_aux) const {
  Tensor fused = v_tgt;
  if (v_aux.defined()) {
    // Sigmoid-gated residual of the projected auxiliary interests.
    Tensor gate = Sigmoid(fusion_gate_);  // [1], initialized to 0.5
    fused = Add(fused, Mul(aux_fusion_.Forward(v_aux), gate));
  }
  if (config_.use_common_interest) {
    // Common interest: long-term (mean over every visible event) plus
    // short-term (most recent state) behavior-independent preference,
    // shared by all K slots.
    Tensor common = Add(MaskedMeanPool(encoded, EffectiveMergedItems(batch),
                                       batch.batch_size, batch.max_len),
                        LastPosition(encoded));                       // [B, d]
    Tensor proj = common_proj_.Forward(common);                       // [B, d]
    fused = Add(fused, Reshape(proj, {batch.batch_size, 1, config_.dim}));
  }
  return fused;
}

Tensor MisslModel::UserInterests(const data::Batch& batch) {
  Tensor encoded = Encode(batch);
  int32_t target = num_behaviors_ - 1;
  Tensor v_tgt = ExtractInterests(encoded, batch, target);
  Tensor v_aux;
  if (config_.use_aux_behaviors && num_behaviors_ >= 2) {
    std::vector<Tensor> aux;
    for (int32_t beh = 0; beh < target; ++beh) {
      aux.push_back(ExtractInterests(encoded, batch, beh));
    }
    v_aux = aux[0];
    for (size_t i = 1; i < aux.size(); ++i) v_aux = Add(v_aux, aux[i]);
    v_aux = MulScalar(v_aux, 1.0f / static_cast<float>(aux.size()));
  }
  return FuseInterests(encoded, batch, v_tgt, v_aux);
}

Tensor MisslModel::BehaviorInterests(const data::Batch& batch, int32_t behavior) {
  MISSL_CHECK(behavior >= 0 && behavior < num_behaviors_) << "behavior range";
  Tensor encoded = Encode(batch);
  return ExtractInterests(encoded, batch, behavior);
}

Tensor MisslModel::Loss(const data::Batch& batch) {
  Tensor encoded = Encode(batch);
  int32_t target = num_behaviors_ - 1;
  Tensor v_tgt = ExtractInterests(encoded, batch, target);

  Tensor v_aux;
  if (config_.use_aux_behaviors && num_behaviors_ >= 2) {
    std::vector<Tensor> aux;
    for (int32_t beh = 0; beh < target; ++beh) {
      aux.push_back(ExtractInterests(encoded, batch, beh));
    }
    v_aux = aux[0];
    for (size_t i = 1; i < aux.size(); ++i) v_aux = Add(v_aux, aux[i]);
    v_aux = MulScalar(v_aux, 1.0f / static_cast<float>(aux.size()));
  }

  Tensor fused = FuseInterests(encoded, batch, v_tgt, v_aux);

  // Main next-item loss with interest routing.
  Tensor loss = PredictionLoss(fused, batch);

  if (v_aux.defined() && config_.lambda_aux > 0.0f) {
    // Auxiliary view must predict the target too (cross-behavior transfer).
    loss = Add(loss, MulScalar(PredictionLoss(v_aux, batch),
                               config_.lambda_aux));
  }

  if (v_aux.defined() && config_.use_ssl && config_.lambda_cl > 0.0f) {
    // Interest-level contrast: interest k from the auxiliary view should
    // match interest k from the target view of the same user.
    int64_t b = batch.batch_size;
    Tensor za = Reshape(v_aux, {b * k_, config_.dim});
    Tensor zt = Reshape(v_tgt, {b * k_, config_.dim});
    loss = Add(loss, MulScalar(InfoNce(za, zt, config_.temperature),
                               config_.lambda_cl));
  }

  if (config_.use_disentangle && config_.lambda_dis > 0.0f && k_ > 1) {
    // Disentangle the *specific* interests; the common component is shared
    // by construction and must not be penalized.
    loss = Add(loss, MulScalar(DisentanglePenalty(v_tgt), config_.lambda_dis));
  }
  return loss;
}

Tensor MisslModel::PredictionLoss(const Tensor& interests,
                                  const data::Batch& batch) {
  Tensor v = config_.routing == InterestRouting::kMax
                 ? SelectInterestByTarget(interests, item_emb_, batch.targets)
                 : Mean(interests, 1, /*keepdim=*/false);
  if (batch.num_train_negatives > 0) {
    // Sampled softmax: target sits in column 0 of every row.
    std::vector<int32_t> zeros(static_cast<size_t>(batch.batch_size), 0);
    return CrossEntropyLoss(SampledLogits(v, item_emb_, batch), zeros);
  }
  return CrossEntropyLoss(FullCatalogLogits(v, item_emb_), batch.targets);
}

Tensor MisslModel::ScoreCandidates(const data::Batch& batch,
                                   const std::vector<int32_t>& cand_ids,
                                   int64_t num_cands) {
  Tensor interests = UserInterests(batch);
  if (config_.routing == InterestRouting::kMean) {
    return ScoreCandidatesSingle(Mean(interests, 1, false), item_emb_,
                                 cand_ids, batch.batch_size, num_cands);
  }
  return ScoreCandidatesMultiInterest(interests, item_emb_, cand_ids,
                                      batch.batch_size, num_cands);
}

Tensor MisslModel::PrecomputeCatalog() const {
  NoGradGuard ng;
  return Transpose(item_emb_.weight());  // [d, V]
}

Tensor MisslModel::ScoreAllItems(const data::Batch& batch, int32_t num_items,
                                 const Tensor& catalog) {
  MISSL_CHECK(num_items == num_items_)
      << "catalog size mismatch: model has " << num_items_ << " items, caller "
      << "asked for " << num_items;
  Tensor cat = catalog.defined() ? catalog : PrecomputeCatalog();
  MISSL_CHECK(cat.dim() == 2 && cat.size(0) == config_.dim &&
              cat.size(1) == num_items_)
      << "catalog must be the [d, V] transposed item table, got "
      << ShapeToString(cat.shape());
  Tensor interests = UserInterests(batch);  // [B, K, d]
  if (config_.routing == InterestRouting::kMean) {
    return MatMul(Mean(interests, 1, /*keepdim=*/false), cat);  // [B, V]
  }
  return Max(MatMul(interests, cat), 1, /*keepdim=*/false);  // [B, V]
}

}  // namespace missl::core
