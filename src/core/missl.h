// The MISSL core model: multi-behavior sequential recommendation with
// multi-interest self-supervised learning (reconstruction of Wu et al.,
// ICDE 2024 — see the mismatch note in DESIGN.md).
//
// Pipeline:
//   merged multi-behavior stream
//     -> item + behavior + position embeddings
//     -> behavior-aware hypergraph attention layers (set-level)
//     -> transformer encoder (order-level)
//     -> per-behavior multi-interest extraction (K attention queries per
//        behavior channel)
//     -> gated fusion of target-behavior and auxiliary-behavior interests
//   losses: next-item CE with hard interest routing, auxiliary-view CE,
//   cross-behavior interest InfoNCE, interest disentanglement.
#ifndef MISSL_CORE_MISSL_H_
#define MISSL_CORE_MISSL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "hypergraph/hgat.h"
#include "hypergraph/incidence.h"
#include "nn/embedding.h"
#include "nn/transformer.h"

namespace missl::core {

/// How the K interests combine at prediction time: hard max-routing
/// (ComiRec-style, the paper family's default) or mean pooling (an
/// alternative studied by the design-choice ablation bench F9).
enum class InterestRouting { kMax, kMean };

/// Hyper-parameters and ablation switches for the MISSL model.
struct MisslConfig {
  int64_t dim = 48;
  int64_t heads = 2;
  int64_t seq_layers = 1;    ///< transformer encoder layers
  int64_t hgat_layers = 1;   ///< hypergraph attention layers
  int64_t num_interests = 4;
  float dropout = 0.1f;

  float lambda_cl = 0.1f;    ///< cross-behavior interest contrast weight
  float lambda_dis = 0.05f;  ///< disentanglement weight
  float lambda_aux = 0.2f;   ///< auxiliary-view prediction weight
  float temperature = 0.3f;  ///< InfoNCE temperature

  // Ablation switches (F1).
  bool use_hypergraph = true;
  bool use_ssl = true;
  bool use_disentangle = true;
  bool use_multi_interest = true;   ///< false forces K = 1
  bool use_aux_behaviors = true;    ///< false drops non-target channels
  /// Common-interest pathway: a masked mean over the whole encoded stream
  /// (the user's behavior-independent stable preference) added to every
  /// interest slot. The specific interests stay channel-restricted; the SSL
  /// and disentanglement terms act on the specific parts only.
  bool use_common_interest = true;

  InterestRouting routing = InterestRouting::kMax;
  /// Adds a log-bucketed recency (time-gap-to-target) embedding to the
  /// input layer — a temporal extension studied by the F9 design bench.
  bool use_recency = false;
  hypergraph::HypergraphConfig hg;
  uint64_t seed = 17;
};

/// See file comment. Construct once per (dataset, config); the model owns
/// its RNG so runs are reproducible given `config.seed`.
class MisslModel : public SeqRecModel {
 public:
  MisslModel(int32_t num_items, int32_t num_behaviors, int64_t max_len,
             const MisslConfig& config);

  std::string Name() const override { return "MISSL"; }
  Tensor Loss(const data::Batch& batch) override;
  Tensor ScoreCandidates(const data::Batch& batch,
                         const std::vector<int32_t>& cand_ids,
                         int64_t num_cands) override;

  /// Full-catalog scoring without the per-call [B, V, d] candidate gather:
  /// interests [B, K, d] are multiplied against the transposed item table
  /// [d, V] (taken from `catalog` when defined, recomputed otherwise) and
  /// max-reduced over K. Bitwise-identical to scoring the full id list
  /// through ScoreCandidates — the GEMM accumulates over d in the same
  /// order either way.
  Tensor ScoreAllItems(const data::Batch& batch, int32_t num_items,
                       const Tensor& catalog = Tensor()) override;

  /// The transposed item-embedding table [d, V], the `catalog` argument of
  /// ScoreAllItems. Servers cache this once after freezing the weights.
  Tensor PrecomputeCatalog() const override;

  /// Fused user interests [B, K, d] (exposed for the visualization bench
  /// and the interest-explorer example).
  Tensor UserInterests(const data::Batch& batch);

  /// Interests extracted from one behavior channel only [B, K, d].
  Tensor BehaviorInterests(const data::Batch& batch, int32_t behavior);

  const MisslConfig& config() const { return config_; }
  int64_t num_interests() const { return k_; }
  /// History window the position table was sized for; serving batches must
  /// use exactly this length.
  int64_t max_len() const { return max_len_; }
  /// The learned item table [V, d] (for catalog scoring / introspection).
  const Tensor& item_embedding() const { return item_emb_.weight(); }

 private:
  /// Encodes the merged stream -> [B, T, d] (hypergraph + transformer).
  Tensor Encode(const data::Batch& batch);
  /// Attention-pools K interests for channel `behavior` from encoded states.
  Tensor ExtractInterests(const Tensor& encoded, const data::Batch& batch,
                          int32_t behavior) const;
  /// Ids of the merged stream after the aux-behavior ablation filter.
  std::vector<int32_t> EffectiveMergedItems(const data::Batch& batch) const;
  /// Routed next-item CE for an interest matrix (sampled or full softmax).
  Tensor PredictionLoss(const Tensor& interests, const data::Batch& batch);
  /// Fuses target/aux/common components into the final interests [B, K, d].
  Tensor FuseInterests(const Tensor& encoded, const data::Batch& batch,
                       const Tensor& v_tgt, const Tensor& v_aux) const;

  MisslConfig config_;
  int32_t num_items_;
  int32_t num_behaviors_;
  int64_t max_len_;
  int64_t k_;
  Rng rng_;

  nn::Embedding item_emb_;
  nn::Embedding beh_emb_;
  nn::Embedding pos_emb_;
  nn::Embedding recency_emb_;  ///< used only when config.use_recency
  std::vector<std::unique_ptr<hypergraph::HypergraphAttentionLayer>> hgat_;
  nn::TransformerEncoder encoder_;
  nn::Linear key_proj_;     ///< projects states to interest-query keys
  nn::Linear aux_fusion_;   ///< maps pooled auxiliary interests before gating
  nn::Linear common_proj_;  ///< maps the common-interest pool before fusion
  Tensor interest_queries_; ///< [num_behaviors * K, d]
  Tensor fusion_gate_;      ///< [1] sigmoid-gated aux contribution
};

}  // namespace missl::core

#endif  // MISSL_CORE_MISSL_H_
